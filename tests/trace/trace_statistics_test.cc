// Statistical validation of the synthetic trace generator using the
// chi-square / KS helpers: zone popularity must follow the configured Zipf
// law, timestamps must be uniform over the window, and the observation
// noise of the quality environment must match its truncated-Gaussian spec.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "bandit/environment.h"
#include "stats/distributions.h"
#include "stats/tests.h"
#include "trace/generator.h"

namespace cdt {
namespace trace {
namespace {

TEST(TraceStatisticsTest, PickupZonesFollowConfiguredZipf) {
  TraceConfig config;
  config.num_records = 40000;
  config.num_zones = 20;
  config.zone_zipf_exponent = 1.0;
  config.seed = 3;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());

  std::vector<std::uint64_t> counts(20, 0);
  for (const TripRecord& trip : trace.value().trips) {
    ++counts[static_cast<std::size_t>(trip.pickup_zone)];
  }
  std::vector<double> expected(20);
  for (int k = 0; k < 20; ++k) {
    expected[static_cast<std::size_t>(k)] = 1.0 / static_cast<double>(k + 1);
  }
  auto result = stats::ChiSquareGoodnessOfFit(counts, expected);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().p_value, 0.001)
      << "chi2=" << result.value().statistic;
}

TEST(TraceStatisticsTest, PickupZonesRejectWrongExponent) {
  TraceConfig config;
  config.num_records = 40000;
  config.num_zones = 20;
  config.zone_zipf_exponent = 1.0;
  config.seed = 3;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  std::vector<std::uint64_t> counts(20, 0);
  for (const TripRecord& trip : trace.value().trips) {
    ++counts[static_cast<std::size_t>(trip.pickup_zone)];
  }
  // Test the same counts against a much flatter law: must be rejected.
  std::vector<double> wrong(20);
  for (int k = 0; k < 20; ++k) {
    wrong[static_cast<std::size_t>(k)] =
        1.0 / std::sqrt(static_cast<double>(k + 1));
  }
  auto result = stats::ChiSquareGoodnessOfFit(counts, wrong);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().p_value, 1e-6);
}

TEST(TraceStatisticsTest, TimestampsUniformOverWindow) {
  TraceConfig config;
  config.num_records = 20000;
  config.seed = 9;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  double window = static_cast<double>(config.duration_seconds);
  std::vector<double> samples;
  samples.reserve(trace.value().trips.size());
  for (const TripRecord& trip : trace.value().trips) {
    samples.push_back(static_cast<double>(trip.timestamp) / window);
  }
  auto d = stats::KolmogorovSmirnovStatistic(
      samples, [](double x) { return std::min(1.0, std::max(0.0, x)); });
  ASSERT_TRUE(d.ok());
  EXPECT_GT(stats::KolmogorovSmirnovPValue(d.value(), samples.size()),
            0.001);
}

TEST(TraceStatisticsTest, QualityObservationsMatchTruncatedGaussianCdf) {
  auto env =
      bandit::QualityEnvironment::CreateWithQualities({0.7}, 10, 0.15, 27);
  ASSERT_TRUE(env.ok());
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) {
    for (double q : env.value().ObserveSeller(0)) samples.push_back(q);
  }
  // Truncated-Gaussian CDF on [0,1] centred at 0.7 with σ=0.15.
  double z0 = stats::NormalCdf((0.0 - 0.7) / 0.15);
  double z1 = stats::NormalCdf((1.0 - 0.7) / 0.15);
  auto cdf = [z0, z1](double x) {
    double zx = stats::NormalCdf((x - 0.7) / 0.15);
    return std::min(1.0, std::max(0.0, (zx - z0) / (z1 - z0)));
  };
  auto d = stats::KolmogorovSmirnovStatistic(samples, cdf);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(stats::KolmogorovSmirnovPValue(d.value(), samples.size()),
            0.001);
}

}  // namespace
}  // namespace trace
}  // namespace cdt
