#include "trace/trip.h"

#include <gtest/gtest.h>

namespace cdt {
namespace trace {
namespace {

TEST(TripCsvTest, HeaderHasFiveFields) {
  EXPECT_EQ(TripCsvHeader().size(), 5u);
  EXPECT_EQ(TripCsvHeader()[0], "taxi_id");
}

TEST(TripCsvTest, RoundTrip) {
  TripRecord trip;
  trip.taxi_id = 42;
  trip.timestamp = 123456;
  trip.trip_miles = 3.25;
  trip.pickup_zone = 7;
  trip.dropoff_zone = 12;
  auto parsed = TripFromCsvRow(TripToCsvRow(trip));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().taxi_id, 42);
  EXPECT_EQ(parsed.value().timestamp, 123456);
  EXPECT_NEAR(parsed.value().trip_miles, 3.25, 1e-9);
  EXPECT_EQ(parsed.value().pickup_zone, 7);
  EXPECT_EQ(parsed.value().dropoff_zone, 12);
}

TEST(TripCsvTest, RejectsWrongFieldCount) {
  EXPECT_FALSE(TripFromCsvRow({"1", "2", "3"}).ok());
  EXPECT_FALSE(TripFromCsvRow({"1", "2", "3", "4", "5", "6"}).ok());
}

TEST(TripCsvTest, RejectsNonNumericFields) {
  EXPECT_FALSE(TripFromCsvRow({"x", "2", "3.0", "4", "5"}).ok());
  EXPECT_FALSE(TripFromCsvRow({"1", "y", "3.0", "4", "5"}).ok());
  EXPECT_FALSE(TripFromCsvRow({"1", "2", "zz", "4", "5"}).ok());
}

TEST(TripCsvTest, RejectsNegativeMiles) {
  EXPECT_FALSE(TripFromCsvRow({"1", "2", "-3.0", "4", "5"}).ok());
}

}  // namespace
}  // namespace trace
}  // namespace cdt
