#include "trace/seller_mapping.h"

#include <gtest/gtest.h>

namespace cdt {
namespace trace {
namespace {

Trace MakeTrace() {
  Trace trace;
  trace.zones.resize(5);
  auto add = [&trace](int taxi, int pickup, int dropoff) {
    TripRecord t;
    t.taxi_id = taxi;
    t.pickup_zone = pickup;
    t.dropoff_zone = dropoff;
    trace.trips.push_back(t);
  };
  // PoIs will be zones {0, 1}.
  add(1, 0, 1);  // taxi 1: 2 PoI visits, 2 distinct
  add(1, 0, 4);  // taxi 1: +1 visit
  add(2, 1, 4);  // taxi 2: 1 visit
  add(3, 4, 3);  // taxi 3: no PoI contact
  return trace;
}

std::vector<Poi> MakePois() {
  Poi a, b;
  a.zone_id = 0;
  b.zone_id = 1;
  return {a, b};
}

TEST(MapSellersTest, OnlyPoiTouchingTaxisAreEligible) {
  auto sellers = MapSellers(MakeTrace(), MakePois());
  ASSERT_TRUE(sellers.ok());
  ASSERT_EQ(sellers.value().size(), 2u);
  EXPECT_EQ(sellers.value()[0].taxi_id, 1);
  EXPECT_EQ(sellers.value()[0].poi_visits, 3);
  EXPECT_EQ(sellers.value()[0].distinct_pois, 2);
  EXPECT_EQ(sellers.value()[1].taxi_id, 2);
  EXPECT_EQ(sellers.value()[1].poi_visits, 1);
  EXPECT_EQ(sellers.value()[1].distinct_pois, 1);
}

TEST(MapSellersTest, RejectsEmptyPois) {
  EXPECT_FALSE(MapSellers(MakeTrace(), {}).ok());
}

TEST(SelectSellerPoolTest, TruncatesToTopM) {
  auto sellers = MapSellers(MakeTrace(), MakePois());
  ASSERT_TRUE(sellers.ok());
  auto pool = SelectSellerPool(sellers.value(), 1);
  ASSERT_TRUE(pool.ok());
  ASSERT_EQ(pool.value().size(), 1u);
  EXPECT_EQ(pool.value()[0].taxi_id, 1);
}

TEST(SelectSellerPoolTest, ErrorsWhenPoolTooSmall) {
  auto sellers = MapSellers(MakeTrace(), MakePois());
  ASSERT_TRUE(sellers.ok());
  EXPECT_FALSE(SelectSellerPool(sellers.value(), 5).ok());
  EXPECT_FALSE(SelectSellerPool(sellers.value(), 0).ok());
}

TEST(MapSellersTest, PaperScalePipelineYields300Sellers) {
  TraceConfig config;  // paper defaults: 27465 records / 300 taxis
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  auto pois = ExtractPois(trace.value(), 10);
  ASSERT_TRUE(pois.ok());
  auto sellers = MapSellers(trace.value(), pois.value());
  ASSERT_TRUE(sellers.ok());
  // The top-10 zones concentrate traffic, so nearly every taxi qualifies.
  EXPECT_GE(sellers.value().size(), 250u);
  auto pool = SelectSellerPool(sellers.value(), 250);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ(pool.value().size(), 250u);
}

}  // namespace
}  // namespace trace
}  // namespace cdt
