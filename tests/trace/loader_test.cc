#include "trace/loader.h"

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

#include "trace/generator.h"

namespace cdt {
namespace trace {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("cdt_trips_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(LoaderTest, SaveLoadRoundTrip) {
  TraceConfig config;
  config.num_taxis = 20;
  config.num_records = 500;
  config.num_zones = 10;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(SaveTrips(path_.string(), trace.value().trips).ok());

  auto loaded = LoadTrips(path_.string());
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), trace.value().trips.size());
  for (std::size_t i = 0; i < loaded.value().size(); ++i) {
    EXPECT_EQ(loaded.value()[i].taxi_id, trace.value().trips[i].taxi_id);
    EXPECT_EQ(loaded.value()[i].pickup_zone,
              trace.value().trips[i].pickup_zone);
    EXPECT_NEAR(loaded.value()[i].trip_miles,
                trace.value().trips[i].trip_miles, 1e-3);
  }
}

TEST_F(LoaderTest, RejectsWrongHeader) {
  {
    std::ofstream out(path_);
    out << "a,b,c,d,e\n1,2,3,4,5\n";
  }
  EXPECT_FALSE(LoadTrips(path_.string()).ok());
}

TEST_F(LoaderTest, RejectsBadRowWithLineNumber) {
  {
    std::ofstream out(path_);
    out << "taxi_id,timestamp,trip_miles,pickup_zone,dropoff_zone\n"
        << "1,2,3.0,4,5\n"
        << "x,2,3.0,4,5\n";
  }
  auto loaded = LoadTrips(path_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("row 2"), std::string::npos);
}

TEST_F(LoaderTest, MissingFileErrors) {
  EXPECT_FALSE(LoadTrips("/nonexistent/trips.csv").ok());
}

TEST_F(LoaderTest, RejectsEmptyFile) {
  { std::ofstream out(path_); }
  auto loaded = LoadTrips(path_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("no header"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(LoaderTest, HeaderOnlyYieldsNoTrips) {
  {
    std::ofstream out(path_);
    out << "taxi_id,timestamp,trip_miles,pickup_zone,dropoff_zone\n";
  }
  auto loaded = LoadTrips(path_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST_F(LoaderTest, RejectsTruncatedRow) {
  {
    std::ofstream out(path_);
    out << "taxi_id,timestamp,trip_miles,pickup_zone,dropoff_zone\n"
        << "1,2,3.0,4\n";  // one field short
  }
  auto loaded = LoadTrips(path_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("expected 5 fields, got 4"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(LoaderTest, RejectsNonNumericMiles) {
  {
    std::ofstream out(path_);
    out << "taxi_id,timestamp,trip_miles,pickup_zone,dropoff_zone\n"
        << "1,2,not-a-number,4,5\n";
  }
  auto loaded = LoadTrips(path_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("row 1"), std::string::npos)
      << loaded.status().ToString();
}

}  // namespace
}  // namespace trace
}  // namespace cdt
