#include "trace/poi.h"

#include <gtest/gtest.h>

namespace cdt {
namespace trace {
namespace {

Trace MakeTinyTrace() {
  Trace trace;
  trace.zones.resize(4);
  auto add = [&trace](int taxi, int pickup, int dropoff) {
    TripRecord t;
    t.taxi_id = taxi;
    t.pickup_zone = pickup;
    t.dropoff_zone = dropoff;
    trace.trips.push_back(t);
  };
  // Zone traffic: z0 appears 5x, z1 3x, z2 2x, z3 0x.
  add(1, 0, 1);
  add(1, 0, 1);
  add(2, 0, 2);
  add(2, 1, 0);
  add(3, 2, 0);
  return trace;
}

TEST(ExtractPoisTest, RanksByTraffic) {
  auto pois = ExtractPois(MakeTinyTrace(), 3);
  ASSERT_TRUE(pois.ok());
  ASSERT_EQ(pois.value().size(), 3u);
  EXPECT_EQ(pois.value()[0].zone_id, 0);
  EXPECT_EQ(pois.value()[0].visit_count, 5);
  EXPECT_EQ(pois.value()[1].zone_id, 1);
  EXPECT_EQ(pois.value()[1].visit_count, 3);
  EXPECT_EQ(pois.value()[2].zone_id, 2);
}

TEST(ExtractPoisTest, RejectsZeroPois) {
  EXPECT_FALSE(ExtractPois(MakeTinyTrace(), 0).ok());
}

TEST(ExtractPoisTest, ErrorsWhenNotEnoughActiveZones) {
  // Only 3 active zones in the tiny trace.
  EXPECT_FALSE(ExtractPois(MakeTinyTrace(), 4).ok());
}

TEST(ExtractPoisTest, AttachesZoneLocations) {
  Trace trace = MakeTinyTrace();
  trace.zones[0] = {3.0, 4.0};
  auto pois = ExtractPois(trace, 1);
  ASSERT_TRUE(pois.ok());
  EXPECT_DOUBLE_EQ(pois.value()[0].location.x, 3.0);
  EXPECT_DOUBLE_EQ(pois.value()[0].location.y, 4.0);
}

TEST(ExtractPoisTest, PaperDefaultTenPois) {
  TraceConfig config;
  config.num_records = 5000;
  config.seed = 3;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  auto pois = ExtractPois(trace.value(), 10);
  ASSERT_TRUE(pois.ok());
  EXPECT_EQ(pois.value().size(), 10u);
  // Descending traffic.
  for (std::size_t i = 1; i < pois.value().size(); ++i) {
    EXPECT_GE(pois.value()[i - 1].visit_count, pois.value()[i].visit_count);
  }
}

}  // namespace
}  // namespace trace
}  // namespace cdt
