#include "trace/generator.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

namespace cdt {
namespace trace {
namespace {

TraceConfig SmallConfig() {
  TraceConfig config;
  config.num_taxis = 50;
  config.num_records = 4000;
  config.num_zones = 20;
  config.seed = 7;
  return config;
}

TEST(TraceConfigTest, ValidatesRanges) {
  TraceConfig config = SmallConfig();
  EXPECT_TRUE(config.Validate().ok());
  config.num_taxis = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.num_records = -1;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.num_zones = 1;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.zone_zipf_exponent = -0.5;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.duration_seconds = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallConfig();
  config.grid_extent_miles = 0.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(TraceGeneratorTest, ProducesRequestedRecordCount) {
  auto trace = GenerateTrace(SmallConfig());
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace.value().trips.size(), 4000u);
  EXPECT_EQ(trace.value().zones.size(), 20u);
}

TEST(TraceGeneratorTest, DeterministicForSeed) {
  auto a = GenerateTrace(SmallConfig());
  auto b = GenerateTrace(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().trips, b.value().trips);
}

TEST(TraceGeneratorTest, DifferentSeedsDiffer) {
  TraceConfig other = SmallConfig();
  other.seed = 8;
  auto a = GenerateTrace(SmallConfig());
  auto b = GenerateTrace(other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().trips, b.value().trips);
}

TEST(TraceGeneratorTest, TripsSortedByTimestamp) {
  auto trace = GenerateTrace(SmallConfig());
  ASSERT_TRUE(trace.ok());
  for (std::size_t i = 1; i < trace.value().trips.size(); ++i) {
    EXPECT_LE(trace.value().trips[i - 1].timestamp,
              trace.value().trips[i].timestamp);
  }
}

TEST(TraceGeneratorTest, FieldsWithinConfiguredRanges) {
  TraceConfig config = SmallConfig();
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  for (const TripRecord& t : trace.value().trips) {
    EXPECT_GE(t.taxi_id, 1);
    EXPECT_LE(t.taxi_id, config.num_taxis);
    EXPECT_GE(t.timestamp, 0);
    EXPECT_LT(t.timestamp, config.duration_seconds);
    EXPECT_GE(t.pickup_zone, 0);
    EXPECT_LT(t.pickup_zone, config.num_zones);
    EXPECT_GE(t.dropoff_zone, 0);
    EXPECT_LT(t.dropoff_zone, config.num_zones);
    EXPECT_GT(t.trip_miles, 0.0);
  }
}

TEST(TraceGeneratorTest, ZonePopularityIsSkewed) {
  auto trace = GenerateTrace(SmallConfig());
  ASSERT_TRUE(trace.ok());
  std::map<int, int> pickups;
  for (const TripRecord& t : trace.value().trips) ++pickups[t.pickup_zone];
  // Zipf rank 0 should dominate the least popular active zone clearly.
  int max_count = 0, min_count = 1 << 30;
  for (const auto& [zone, count] : pickups) {
    max_count = std::max(max_count, count);
    min_count = std::min(min_count, count);
  }
  EXPECT_GT(max_count, 3 * min_count);
}

TEST(TraceGeneratorTest, PaperScaleDefaultsWork) {
  TraceConfig config;  // 27465 records, 300 taxis, 77 zones
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace.value().trips.size(), 27465u);
  // Nearly all taxis should appear somewhere in 27k records.
  EXPECT_GE(trace.value().DistinctTaxis(), 290);
}

}  // namespace
}  // namespace trace
}  // namespace cdt
