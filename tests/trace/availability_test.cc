#include "trace/availability.h"

#include <gtest/gtest.h>

#include "trace/generator.h"

namespace cdt {
namespace trace {
namespace {

std::vector<TripRecord> MakeTrips() {
  // Taxi 1: trips at hours 0 and 1; taxi 2: hour 5 only; taxi 3: none.
  auto trip = [](std::int64_t taxi, std::int64_t hour) {
    TripRecord t;
    t.taxi_id = taxi;
    t.timestamp = hour * 3600 + 100;
    return t;
  };
  return {trip(1, 0), trip(1, 1), trip(1, 25) /* day 2, hour 1 */,
          trip(2, 5)};
}

TEST(AvailabilityModelTest, Validation) {
  EXPECT_FALSE(AvailabilityModel::FromTrips(MakeTrips(), {}, 24).ok());
  EXPECT_FALSE(AvailabilityModel::FromTrips(MakeTrips(), {1}, 0).ok());
  EXPECT_FALSE(
      AvailabilityModel::FromTrips(MakeTrips(), {1}, 24, 0).ok());
  EXPECT_FALSE(
      AvailabilityModel::FromTrips(MakeTrips(), {1, 1}, 24).ok());
}

TEST(AvailabilityModelTest, MasksFollowTripHours) {
  auto model = AvailabilityModel::FromTrips(MakeTrips(), {1, 2}, 24);
  ASSERT_TRUE(model.ok());
  // Seller 0 (taxi 1): hours 0, 1 active (hour 1 has two trips).
  EXPECT_TRUE(model.value().IsAvailable(0, 1));   // round 1 -> bucket 0
  EXPECT_TRUE(model.value().IsAvailable(0, 2));   // bucket 1
  EXPECT_FALSE(model.value().IsAvailable(0, 6));  // bucket 5
  // Seller 1 (taxi 2): hour 5 only.
  EXPECT_FALSE(model.value().IsAvailable(1, 1));
  EXPECT_TRUE(model.value().IsAvailable(1, 6));
  // Periodicity: round 25 maps back to bucket 0.
  EXPECT_TRUE(model.value().IsAvailable(0, 25));
}

TEST(AvailabilityModelTest, MinTripsThreshold) {
  // With min_trips=2, only taxi 1's hour 1 (two trips) qualifies.
  auto model = AvailabilityModel::FromTrips(MakeTrips(), {1}, 24, 3600, 2);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model.value().IsAvailable(0, 1));
  EXPECT_TRUE(model.value().IsAvailable(0, 2));
  EXPECT_NEAR(model.value().AvailabilityRate(0), 1.0 / 24.0, 1e-12);
}

TEST(AvailabilityModelTest, TripLessSellerStaysReachable) {
  // Taxi 9 has no trips: it gets one fallback bucket rather than never
  // being selectable.
  auto model = AvailabilityModel::FromTrips(MakeTrips(), {9}, 24);
  ASSERT_TRUE(model.ok());
  int available_buckets = 0;
  for (std::int64_t r = 1; r <= 24; ++r) {
    if (model.value().IsAvailable(0, r)) ++available_buckets;
  }
  EXPECT_EQ(available_buckets, 1);
}

TEST(AvailabilityModelTest, AlwaysAvailable) {
  AvailabilityModel model = AvailabilityModel::AlwaysAvailable(3);
  for (std::int64_t r = 1; r <= 100; ++r) {
    EXPECT_EQ(model.AvailableCount(r), 3);
  }
  EXPECT_DOUBLE_EQ(model.AvailabilityRate(1), 1.0);
}

TEST(AvailabilityModelTest, SyntheticTraceGivesPartialAvailability) {
  TraceConfig config;
  config.num_taxis = 50;
  config.num_records = 3000;
  config.seed = 19;
  auto trace = GenerateTrace(config);
  ASSERT_TRUE(trace.ok());
  std::vector<std::int64_t> ids;
  for (std::int64_t i = 1; i <= 50; ++i) ids.push_back(i);
  auto model = AvailabilityModel::FromTrips(trace.value().trips, ids, 24);
  ASSERT_TRUE(model.ok());
  // With ~60 trips per taxi spread over 30 days, most taxis are active in
  // many but not all hour buckets.
  double mean_rate = 0.0;
  for (int i = 0; i < 50; ++i) mean_rate += model.value().AvailabilityRate(i);
  mean_rate /= 50.0;
  EXPECT_GT(mean_rate, 0.2);
  EXPECT_LT(mean_rate, 1.0);
}

}  // namespace
}  // namespace trace
}  // namespace cdt
