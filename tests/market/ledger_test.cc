#include "market/ledger.h"

#include <gtest/gtest.h>

namespace cdt {
namespace market {
namespace {

TEST(LedgerTest, RecordsTransfersAndBalances) {
  Ledger ledger(3);
  ASSERT_TRUE(
      ledger.Record(1, kConsumerAccount, kPlatformAccount, 10.0, "reward")
          .ok());
  ASSERT_TRUE(ledger.Record(1, kPlatformAccount, 0, 4.0, "pay").ok());
  ASSERT_TRUE(ledger.Record(1, kPlatformAccount, 1, 3.0, "pay").ok());

  EXPECT_DOUBLE_EQ(ledger.Balance(kConsumerAccount).value(), -10.0);
  EXPECT_DOUBLE_EQ(ledger.Balance(kPlatformAccount).value(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.Balance(0).value(), 4.0);
  EXPECT_DOUBLE_EQ(ledger.Balance(1).value(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.Balance(2).value(), 0.0);
  EXPECT_EQ(ledger.transfers().size(), 3u);
}

TEST(LedgerTest, MoneyConservation) {
  Ledger ledger(2);
  ASSERT_TRUE(
      ledger.Record(1, kConsumerAccount, kPlatformAccount, 7.5, "").ok());
  ASSERT_TRUE(ledger.Record(1, kPlatformAccount, 0, 2.5, "").ok());
  ASSERT_TRUE(ledger.Record(2, kPlatformAccount, 1, 1.0, "").ok());
  EXPECT_NEAR(ledger.NetPosition(), 0.0, 1e-12);
}

TEST(LedgerTest, AggregateFlows) {
  Ledger ledger(2);
  ASSERT_TRUE(
      ledger.Record(1, kConsumerAccount, kPlatformAccount, 9.0, "").ok());
  ASSERT_TRUE(ledger.Record(1, kPlatformAccount, 0, 4.0, "").ok());
  ASSERT_TRUE(ledger.Record(1, kPlatformAccount, 1, 2.0, "").ok());
  EXPECT_DOUBLE_EQ(ledger.ConsumerOutflow(), 9.0);
  EXPECT_DOUBLE_EQ(ledger.SellerInflow(), 6.0);
}

TEST(LedgerTest, RejectsInvalidTransfers) {
  Ledger ledger(2);
  EXPECT_FALSE(ledger.Record(1, 5, kPlatformAccount, 1.0, "").ok());
  EXPECT_FALSE(ledger.Record(1, kConsumerAccount, 9, 1.0, "").ok());
  EXPECT_FALSE(
      ledger.Record(1, kConsumerAccount, kConsumerAccount, 1.0, "").ok());
  EXPECT_FALSE(
      ledger.Record(1, kConsumerAccount, kPlatformAccount, -1.0, "").ok());
  EXPECT_FALSE(ledger.Balance(99).ok());
}

TEST(LedgerTest, HistorylessModeKeepsBalancesOnly) {
  Ledger ledger(1, /*keep_history=*/false);
  ASSERT_TRUE(
      ledger.Record(1, kConsumerAccount, kPlatformAccount, 5.0, "").ok());
  ASSERT_TRUE(ledger.Record(1, kPlatformAccount, 0, 2.0, "").ok());
  EXPECT_TRUE(ledger.transfers().empty());
  EXPECT_DOUBLE_EQ(ledger.Balance(0).value(), 2.0);
  EXPECT_DOUBLE_EQ(ledger.ConsumerOutflow(), 5.0);
  EXPECT_DOUBLE_EQ(ledger.SellerInflow(), 2.0);
  EXPECT_NEAR(ledger.NetPosition(), 0.0, 1e-12);
}

}  // namespace
}  // namespace market
}  // namespace cdt
