// Unit tests for the economic-invariant checker: clean engine runs stay
// violation-free, and deliberately broken states (mutated ledger entries,
// loss-making sellers, frozen bandit counters, doctored prices) are caught
// with structured violation records.

#include "market/invariants.h"

#include <memory>

#include <gtest/gtest.h>

#include "bandit/cucb_policy.h"
#include "core/cmab_hs.h"
#include "game/profit.h"
#include "game/stackelberg.h"
#include "market/trading_engine.h"
#include "stats/rng.h"

namespace cdt {
namespace market {
namespace {

// --- fabricated-state helpers -------------------------------------------

// A two-seller exploration round whose report is internally consistent;
// tests then mutate one side of it. Exploration rounds skip the IR and
// stationarity families, isolating the ledger checks. (The view holds
// pointers into the scenario, so it is built in place, never copied.)
struct BrokenScenario {
  Ledger ledger{2, true};
  std::vector<game::SellerCostParams> costs{{0.2, 0.5}, {0.3, 0.4}};
  EngineStateView view;
  RoundReport report;

  BrokenScenario() {
    view.seller_costs = &costs;
    view.ledger = &ledger;
    view.platform_cost = {0.1, 1.0};
    view.valuation = {100.0};
    view.consumer_price_bounds = {0.01, 100.0};
    view.collection_price_bounds = {0.01, 5.0};
    view.max_sensing_time = 1000.0;
    view.num_pois = 4;
    view.num_selected = 2;

    RoundReport& r = report;
    r.round = 1;
    r.initial_exploration = true;
    r.selected = {0, 1};
    r.tau = {1.0, 2.0};
    r.total_time = 3.0;
    r.collection_price = 1.0;
    r.consumer_price = 3.0;
    r.game_qualities = {0.5, 0.5};
    r.seller_profits.resize(2);
    for (int j = 0; j < 2; ++j) {
      r.seller_profits[j] = game::SellerProfit(
          r.collection_price, r.tau[j], costs[j], r.game_qualities[j]);
      r.seller_profit_total += r.seller_profits[j];
    }
    r.platform_profit =
        game::PlatformProfit(r.consumer_price, r.collection_price,
                             r.total_time, view.platform_cost);
    r.consumer_profit = game::ConsumerProfit(r.consumer_price, 0.5,
                                             r.total_time, view.valuation);
  }
};

// Settles the scenario's payments faithfully, with `skim` withheld from
// seller 0's payment (skim = 0 reproduces the engine's settlement exactly).
void Settle(BrokenScenario& s, double skim) {
  const RoundReport& r = s.report;
  ASSERT_TRUE(s.ledger
                  .Record(r.round, kConsumerAccount, kPlatformAccount,
                          r.consumer_price * r.total_time, "reward")
                  .ok());
  ASSERT_TRUE(s.ledger
                  .Record(r.round, kPlatformAccount, 0,
                          r.collection_price * r.tau[0] - skim, "pay")
                  .ok());
  ASSERT_TRUE(s.ledger
                  .Record(r.round, kPlatformAccount, 1,
                          r.collection_price * r.tau[1], "pay")
                  .ok());
}

TEST(InvariantCheckerTest, ConsistentFabricatedRoundPasses) {
  BrokenScenario s;
  Settle(s, 0.0);
  InvariantChecker checker;
  EXPECT_TRUE(checker.Check(s.view, s.report).ok());
  EXPECT_EQ(checker.violation_count(), 0u);
}

TEST(InvariantCheckerTest, MutatedLedgerEntryIsDetected) {
  BrokenScenario s;
  Settle(s, 0.25);  // platform skims a quarter from seller 0's payment
  InvariantChecker checker;
  util::Status status = checker.Check(s.view, s.report);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("invariant violation in round 1"),
            std::string::npos)
      << status.ToString();

  ASSERT_GE(checker.violation_count(), 1u);
  bool found = false;
  for (const InvariantViolation& v : checker.violations()) {
    EXPECT_EQ(v.kind, InvariantKind::kLedgerConservation);
    EXPECT_EQ(v.round, 1);
    if (v.check == "ledger.seller_balance") {
      found = true;
      EXPECT_NEAR(v.magnitude, 0.25, 1e-9);
      EXPECT_NE(v.detail.find("seller 0"), std::string::npos) << v.detail;
    }
  }
  EXPECT_TRUE(found) << "no ledger.seller_balance record";
}

TEST(InvariantCheckerTest, DoctoredReportProfitIsDetected) {
  BrokenScenario s;
  Settle(s, 0.0);
  s.report.platform_profit += 0.5;  // report inflates the platform's profit
  InvariantChecker checker;
  EXPECT_FALSE(checker.Check(s.view, s.report).ok());
  bool flow = false, profit = false;
  for (const InvariantViolation& v : checker.violations()) {
    flow = flow || v.check == "ledger.flow_identity";
    profit = profit || v.check == "report.platform_profit";
  }
  EXPECT_TRUE(flow);
  EXPECT_TRUE(profit);
}

TEST(InvariantCheckerTest, LossMakingSellerViolatesIr) {
  BrokenScenario s;
  // Regular round: τ = 2 at a collection price far below marginal cost.
  s.report.initial_exploration = false;
  s.report.collection_price = 0.1;
  s.report.consumer_price = 3.0;
  for (int j = 0; j < 2; ++j) {
    s.report.seller_profits[j] =
        game::SellerProfit(s.report.collection_price, s.report.tau[j],
                           s.costs[j], s.report.game_qualities[j]);
  }
  s.report.seller_profit_total =
      s.report.seller_profits[0] + s.report.seller_profits[1];
  s.report.platform_profit =
      game::PlatformProfit(s.report.consumer_price, s.report.collection_price,
                           s.report.total_time, s.view.platform_cost);
  Settle(s, 0.0);
  ASSERT_LT(s.report.seller_profits[1], 0.0);

  InvariantOptions options;
  options.check_stationarity = false;  // the round is deliberately off-path
  InvariantChecker checker(options);
  EXPECT_FALSE(checker.Check(s.view, s.report).ok());
  bool found = false;
  for (const InvariantViolation& v : checker.violations()) {
    if (v.check == "ir.seller") {
      found = true;
      EXPECT_EQ(v.kind, InvariantKind::kIndividualRationality);
    }
  }
  EXPECT_TRUE(found);
}

TEST(InvariantCheckerTest, SuboptimalCollectionPriceViolatesStationarity) {
  // Solve a real game, then report the platform charging the box floor
  // instead of its best response (sellers re-respond, profits recomputed:
  // every other family stays consistent).
  game::GameConfig config;
  config.sellers = {{0.2, 0.5}, {0.3, 0.4}};
  config.qualities = {0.8, 0.8};
  config.platform = {0.1, 1.0};
  config.valuation = {100.0};
  config.consumer_price_bounds = {0.01, 100.0};
  config.collection_price_bounds = {0.01, 10.0};
  config.max_sensing_time = 1e6;
  auto solver = game::StackelbergSolver::Create(config);
  ASSERT_TRUE(solver.ok());
  game::StrategyProfile eq = solver.value().Solve();

  std::vector<game::SellerCostParams> costs = config.sellers;
  EngineStateView view;
  view.seller_costs = &costs;
  view.platform_cost = config.platform;
  view.valuation = config.valuation;
  view.consumer_price_bounds = config.consumer_price_bounds;
  view.collection_price_bounds = config.collection_price_bounds;
  view.max_sensing_time = config.max_sensing_time;
  view.num_pois = 4;
  view.num_selected = 2;

  RoundReport report;
  report.round = 1;
  report.selected = {0, 1};
  report.consumer_price = eq.consumer_price;
  report.collection_price = config.collection_price_bounds.lo;
  report.tau = solver.value().SellerBestTimes(report.collection_price);
  report.total_time = game::TotalTime(report.tau);
  report.game_qualities = config.qualities;
  report.seller_profits.resize(2);
  for (int j = 0; j < 2; ++j) {
    report.seller_profits[j] =
        game::SellerProfit(report.collection_price, report.tau[j], costs[j],
                           report.game_qualities[j]);
    report.seller_profit_total += report.seller_profits[j];
  }
  report.platform_profit =
      game::PlatformProfit(report.consumer_price, report.collection_price,
                           report.total_time, view.platform_cost);
  report.consumer_profit = game::ConsumerProfit(
      report.consumer_price, 0.8, report.total_time, view.valuation);

  InvariantChecker checker;
  EXPECT_FALSE(checker.Check(view, report).ok());
  bool found = false;
  for (const InvariantViolation& v : checker.violations()) {
    if (v.check == "stationarity.platform_opt") {
      found = true;
      EXPECT_EQ(v.kind, InvariantKind::kStationarity);
      EXPECT_GT(v.magnitude, 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(InvariantCheckerTest, FrozenBanditCounterIsDetected) {
  BrokenScenario s;
  auto bank = bandit::EstimatorBank::Create(2, 1.0);
  ASSERT_TRUE(bank.ok());
  std::vector<double> obs(4, 0.5);
  ASSERT_TRUE(bank.value().Update(0, obs).ok());
  ASSERT_TRUE(bank.value().Update(1, obs).ok());
  s.view.estimates = &bank.value();

  InvariantChecker checker;
  Settle(s, 0.0);
  ASSERT_TRUE(checker.Check(s.view, s.report).ok());

  // Round 2 reuses the same bank without new observations: both the total
  // and the per-arm counters fail to advance by L per selected seller.
  BrokenScenario s2;
  s2.report.round = 2;
  s2.view.estimates = &bank.value();
  // Rebuild the cumulative ledger the checker expects after two rounds.
  Settle(s2, 0.0);
  s2.report.round = 2;  // re-settle under round 2's id for entry bookkeeping
  util::Status status = checker.Check(s2.view, s2.report);
  // The fresh scenario's ledger only holds one round of money, so ledger
  // violations fire too; the bandit family must be among them.
  ASSERT_FALSE(status.ok());
  bool counter = false;
  for (const InvariantViolation& v : checker.violations()) {
    if (v.check == "bandit.total_counter" || v.check == "bandit.arm_counter") {
      counter = true;
      EXPECT_EQ(v.kind, InvariantKind::kBanditSanity);
    }
  }
  EXPECT_TRUE(counter);
}

TEST(InvariantCheckerTest, RegretMonotonicityViolationIsDetected) {
  BrokenScenario s;
  Settle(s, 0.0);
  s.view.oracle_round_revenue = 1.0;
  s.report.expected_quality_revenue = 2.0;  // "beats" the oracle: impossible
  InvariantChecker checker;
  EXPECT_FALSE(checker.Check(s.view, s.report).ok());
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].check, "bandit.regret_monotone");
  EXPECT_NEAR(checker.violations()[0].magnitude, 1.0, 1e-9);
}

TEST(InvariantCheckerTest, NonMonotoneRoundNumbersAreDetected) {
  BrokenScenario s;
  Settle(s, 0.0);
  InvariantChecker checker;
  ASSERT_TRUE(checker.Check(s.view, s.report).ok());
  util::Status status = checker.Check(s.view, s.report);  // round 1 again
  ASSERT_FALSE(status.ok());
  bool found = false;
  for (const InvariantViolation& v : checker.violations()) {
    found = found || v.check == "round.monotone";
  }
  EXPECT_TRUE(found);
}

TEST(InvariantCheckerTest, MalformedReportShapeIsDetected) {
  BrokenScenario s;
  Settle(s, 0.0);
  s.report.tau.pop_back();  // selected/tau now disagree
  InvariantChecker checker;
  EXPECT_FALSE(checker.Check(s.view, s.report).ok());
  ASSERT_EQ(checker.violations().size(), 1u);
  EXPECT_EQ(checker.violations()[0].check, "report.shape");
}

TEST(InvariantCheckerTest, ViolationRecordsTruncateAtTheCap) {
  BrokenScenario s;
  Settle(s, 0.5);  // skim: several ledger identities break at once
  InvariantOptions options;
  options.max_violations = 1;
  InvariantChecker checker(options);
  EXPECT_FALSE(checker.Check(s.view, s.report).ok());
  EXPECT_EQ(checker.violations().size(), 1u);
  EXPECT_GT(checker.violation_count(), 1u);
  EXPECT_TRUE(checker.violations_truncated());
}

TEST(InvariantViolationTest, ToStringCarriesTheRecord) {
  InvariantViolation v;
  v.kind = InvariantKind::kStationarity;
  v.round = 7;
  v.check = "stationarity.tau";
  v.detail = "seller 3 tau 1, best response 2";
  v.magnitude = 1.0;
  std::string text = v.ToString();
  EXPECT_NE(text.find("[Stationarity]"), std::string::npos);
  EXPECT_NE(text.find("round 7"), std::string::npos);
  EXPECT_NE(text.find("stationarity.tau"), std::string::npos);
}

// --- live-engine integration --------------------------------------------

TEST(InvariantCheckerEngineTest, CleanRunStaysViolationFree) {
  core::MechanismConfig config;
  config.num_sellers = 12;
  config.num_selected = 3;
  config.num_pois = 4;
  config.num_rounds = 40;
  config.seed = 11;
  ASSERT_TRUE(config.check_invariants);  // armed by default
  auto run = core::CmabHs::Create(config);
  ASSERT_TRUE(run.ok());
  util::Status status = run.value()->RunAll();
  EXPECT_TRUE(status.ok()) << status.ToString();
  const InvariantChecker* checker =
      run.value()->engine().invariant_checker();
  ASSERT_NE(checker, nullptr);
  EXPECT_EQ(checker->violation_count(), 0u);
}

TEST(InvariantCheckerEngineTest, DisarmedEngineInstallsNoChecker) {
  core::MechanismConfig config;
  config.num_sellers = 6;
  config.num_selected = 2;
  config.num_pois = 2;
  config.num_rounds = 5;
  config.check_invariants = false;
  auto run = core::CmabHs::Create(config);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value()->engine().invariant_checker(), nullptr);
  EXPECT_TRUE(run.value()->RunAll().ok());
}

// An observer that rejects a configured round, proving observer failures
// propagate out of RunRound, plus a counting observer for coverage of
// multiple observers on one engine.
class CountingObserver : public RoundObserver {
 public:
  util::Status OnRound(const TradingEngine&,
                       const RoundReport& report) override {
    ++rounds_;
    if (report.round == fail_round_) {
      return util::Status::Internal("observer rejected round");
    }
    return util::Status::OK();
  }

  void set_fail_round(std::int64_t round) { fail_round_ = round; }
  int rounds() const { return rounds_; }

 private:
  std::int64_t fail_round_ = -1;
  int rounds_ = 0;
};

TEST(InvariantCheckerEngineTest, CustomObserversSeeEveryRound) {
  EngineConfig config;
  config.job.num_pois = 3;
  config.job.num_rounds = 10;
  config.job.round_duration = 1000.0;
  config.job.description = "observer test";
  config.num_selected = 2;
  stats::Xoshiro256 rng(5);
  for (int i = 0; i < 6; ++i) {
    config.seller_costs.push_back(
        {rng.NextDouble(0.1, 0.5), rng.NextDouble(0.1, 1.0)});
  }
  config.platform_cost = {0.1, 1.0};
  config.valuation = {1000.0};
  config.consumer_price_bounds = {0.01, 100.0};
  config.collection_price_bounds = {0.01, 5.0};

  bandit::EnvironmentConfig env_config;
  env_config.num_sellers = 6;
  env_config.num_pois = 3;
  env_config.seed = 3;
  auto env = bandit::QualityEnvironment::Create(env_config);
  ASSERT_TRUE(env.ok());
  bandit::CucbOptions options;
  options.num_sellers = 6;
  options.num_selected = 2;
  auto policy = bandit::CucbPolicy::Create(options);
  ASSERT_TRUE(policy.ok());

  auto engine = TradingEngine::Create(
      config, &env.value(),
      std::make_unique<bandit::CucbPolicy>(std::move(policy).value()));
  ASSERT_TRUE(engine.ok());
  auto counting = std::make_unique<CountingObserver>();
  auto* counter = static_cast<CountingObserver*>(
      engine.value()->AddObserver(std::move(counting)));
  counter->set_fail_round(4);

  util::Status status = engine.value()->RunAll();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("observer rejected round"),
            std::string::npos);
  EXPECT_EQ(counter->rounds(), 4);  // rounds 1..4, aborted at 4
}

}  // namespace
}  // namespace market
}  // namespace cdt
