#include "market/trading_engine.h"

#include <memory>

#include <gtest/gtest.h>

#include "bandit/baseline_policies.h"
#include "bandit/cucb_policy.h"
#include "stats/rng.h"

namespace cdt {
namespace market {
namespace {

constexpr int kSellers = 12;
constexpr int kSelected = 3;
constexpr int kPois = 4;

EngineConfig MakeConfig(std::int64_t rounds = 20) {
  EngineConfig config;
  config.job.num_pois = kPois;
  config.job.num_rounds = rounds;
  config.job.round_duration = 1000.0;
  config.job.description = "test job";
  config.num_selected = kSelected;
  stats::Xoshiro256 rng(5);
  for (int i = 0; i < kSellers; ++i) {
    config.seller_costs.push_back(
        {rng.NextDouble(0.1, 0.5), rng.NextDouble(0.1, 1.0)});
  }
  config.platform_cost = {0.1, 1.0};
  config.valuation = {1000.0};
  config.consumer_price_bounds = {0.01, 100.0};
  config.collection_price_bounds = {0.01, 5.0};
  config.track_transfers = true;
  return config;
}

bandit::QualityEnvironment MakeEnvironment(std::uint64_t seed = 3) {
  bandit::EnvironmentConfig env_config;
  env_config.num_sellers = kSellers;
  env_config.num_pois = kPois;
  env_config.seed = seed;
  auto env = bandit::QualityEnvironment::Create(env_config);
  EXPECT_TRUE(env.ok());
  return std::move(env).value();
}

std::unique_ptr<bandit::SelectionPolicy> MakeCucb() {
  bandit::CucbOptions options;
  options.num_sellers = kSellers;
  options.num_selected = kSelected;
  auto policy = bandit::CucbPolicy::Create(options);
  EXPECT_TRUE(policy.ok());
  return std::make_unique<bandit::CucbPolicy>(std::move(policy).value());
}

TEST(TradingEngineTest, CreateValidation) {
  auto env = MakeEnvironment();
  EXPECT_FALSE(
      TradingEngine::Create(MakeConfig(), nullptr, MakeCucb()).ok());
  EXPECT_FALSE(TradingEngine::Create(MakeConfig(), &env, nullptr).ok());

  EngineConfig bad = MakeConfig();
  bad.num_selected = kSellers + 1;
  EXPECT_FALSE(TradingEngine::Create(bad, &env, MakeCucb()).ok());

  bad = MakeConfig();
  bad.seller_costs.pop_back();
  EXPECT_FALSE(TradingEngine::Create(bad, &env, MakeCucb()).ok());

  bad = MakeConfig();
  bad.job.num_pois = kPois + 1;  // disagrees with environment
  EXPECT_FALSE(TradingEngine::Create(bad, &env, MakeCucb()).ok());

  bad = MakeConfig();
  bad.initial_tau = 0.0;
  EXPECT_FALSE(TradingEngine::Create(bad, &env, MakeCucb()).ok());
}

TEST(TradingEngineTest, ValidateRejectionsCarryDescriptiveMessages) {
  EngineConfig config = MakeConfig();
  config.num_selected = kSellers + 1;  // K > M
  util::Status status = config.Validate(kSellers);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("K <= M"), std::string::npos)
      << status.ToString();

  config = MakeConfig();
  config.seller_costs.pop_back();  // mismatched cost vector size
  status = config.Validate(kSellers);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("one cost parameter set per seller"),
            std::string::npos)
      << status.ToString();

  config = MakeConfig();
  config.quality_floor = 0.0;  // non-positive floor
  status = config.Validate(kSellers);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("quality_floor"), std::string::npos)
      << status.ToString();

  config = MakeConfig();
  config.consumer_price_bounds = {10.0, 1.0};  // inverted interval
  status = config.Validate(kSellers);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("price bounds"), std::string::npos)
      << status.ToString();

  config = MakeConfig();
  config.collection_price_bounds = {5.0, 0.01};  // inverted interval
  EXPECT_FALSE(config.Validate(kSellers).ok());
}

TEST(TradingEngineTest, FirstRoundIsInitialExploration) {
  auto env = MakeEnvironment();
  auto engine = TradingEngine::Create(MakeConfig(), &env, MakeCucb());
  ASSERT_TRUE(engine.ok());
  auto report = engine.value()->RunRound();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().initial_exploration);
  EXPECT_EQ(report.value().selected.size(), kSellers);
  // Algorithm 1: p^1 = p_max; every seller senses τ^0.
  EXPECT_DOUBLE_EQ(report.value().collection_price, 5.0);
  for (double tau : report.value().tau) EXPECT_DOUBLE_EQ(tau, 1.0);
  // Consumer price set to the platform's break-even point.
  EXPECT_NEAR(report.value().platform_profit, 0.0, 1e-9);
}

TEST(TradingEngineTest, SubsequentRoundsSelectKAndPlayGame) {
  auto env = MakeEnvironment();
  auto engine = TradingEngine::Create(MakeConfig(), &env, MakeCucb());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->RunRound().ok());
  auto report = engine.value()->RunRound();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().initial_exploration);
  EXPECT_EQ(report.value().selected.size(), kSelected);
  EXPECT_GT(report.value().consumer_price, report.value().collection_price);
  EXPECT_GT(report.value().total_time, 0.0);
  EXPECT_GT(report.value().consumer_profit, 0.0);
  EXPECT_GT(report.value().platform_profit, 0.0);
}

TEST(TradingEngineTest, LedgerConservesMoneyAcrossRun) {
  auto env = MakeEnvironment();
  auto engine = TradingEngine::Create(MakeConfig(30), &env, MakeCucb());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->RunAll().ok());
  const Ledger& ledger = engine.value()->ledger();
  EXPECT_NEAR(ledger.NetPosition(), 0.0, 1e-6);
  EXPECT_GT(ledger.ConsumerOutflow(), 0.0);
  EXPECT_GT(ledger.SellerInflow(), 0.0);
  // The platform's ledger balance equals rewards minus payouts: for every
  // round that is (p^J − p)·Στ, i.e. platform profit before aggregation
  // cost — so it must be at least total platform profit.
  EXPECT_GE(ledger.Balance(kPlatformAccount).value(), 0.0);
}

TEST(TradingEngineTest, PaymentsMatchReports) {
  auto env = MakeEnvironment();
  auto engine = TradingEngine::Create(MakeConfig(5), &env, MakeCucb());
  ASSERT_TRUE(engine.ok());
  double expected_outflow = 0.0;
  double expected_seller_inflow = 0.0;
  ASSERT_TRUE(engine.value()
                  ->RunAll([&](const RoundReport& report) {
                    expected_outflow +=
                        report.consumer_price * report.total_time;
                    for (double tau : report.tau) {
                      expected_seller_inflow +=
                          report.collection_price * tau;
                    }
                  })
                  .ok());
  EXPECT_NEAR(engine.value()->ledger().ConsumerOutflow(), expected_outflow,
              1e-6);
  EXPECT_NEAR(engine.value()->ledger().SellerInflow(),
              expected_seller_inflow, 1e-6);
}

TEST(TradingEngineTest, StopsAfterConfiguredRounds) {
  auto env = MakeEnvironment();
  auto engine = TradingEngine::Create(MakeConfig(3), &env, MakeCucb());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->RunAll().ok());
  EXPECT_EQ(engine.value()->current_round(), 3);
  EXPECT_FALSE(engine.value()->RunRound().ok());
}

TEST(TradingEngineTest, OracleModeUsesTrueQualities) {
  auto env = MakeEnvironment();
  EngineConfig config = MakeConfig(5);
  config.use_true_qualities_for_game = true;
  auto oracle_policy = bandit::OraclePolicy::Create(
      env.effective_qualities(), kSelected);
  ASSERT_TRUE(oracle_policy.ok());
  auto engine = TradingEngine::Create(
      config, &env,
      std::make_unique<bandit::OraclePolicy>(std::move(oracle_policy).value()));
  ASSERT_TRUE(engine.ok());
  auto r1 = engine.value()->RunRound();
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.value().initial_exploration);  // oracle never selects all
  EXPECT_EQ(r1.value().selected, env.OptimalSet(kSelected));
  // Round 2 must pick the identical set with identical strategies (true
  // qualities do not drift).
  auto r2 = engine.value()->RunRound();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().selected, r1.value().selected);
  EXPECT_DOUBLE_EQ(r2.value().consumer_price, r1.value().consumer_price);
}

TEST(TradingEngineTest, ExpectedRevenueUsesEffectiveQualities) {
  auto env = MakeEnvironment();
  auto engine = TradingEngine::Create(MakeConfig(2), &env, MakeCucb());
  ASSERT_TRUE(engine.ok());
  auto report = engine.value()->RunRound();
  ASSERT_TRUE(report.ok());
  double expected = 0.0;
  for (int i : report.value().selected) {
    expected += kPois * env.effective_quality(i);
  }
  EXPECT_NEAR(report.value().expected_quality_revenue, expected, 1e-9);
  EXPECT_GT(report.value().observed_quality_revenue, 0.0);
}

TEST(TradingEngineTest, SetSellerActiveValidatesAndTracksDepartures) {
  auto env = MakeEnvironment();
  auto engine = TradingEngine::Create(MakeConfig(), &env, MakeCucb());
  ASSERT_TRUE(engine.ok());

  // Everyone starts active; re-activating is a no-op.
  EXPECT_TRUE(engine.value()->seller_active(0));
  EXPECT_TRUE(engine.value()->SetSellerActive(0, true).ok());
  EXPECT_TRUE(engine.value()->seller_active(0));

  EXPECT_EQ(engine.value()->SetSellerActive(-1, false).code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ(engine.value()->SetSellerActive(kSellers, false).code(),
            util::StatusCode::kOutOfRange);

  EXPECT_TRUE(engine.value()->SetSellerActive(4, false).ok());
  EXPECT_FALSE(engine.value()->seller_active(4));
  EXPECT_TRUE(engine.value()->SetSellerActive(4, false).ok());  // no-op
  EXPECT_FALSE(engine.value()->seller_active(4));
  EXPECT_TRUE(engine.value()->SetSellerActive(4, true).ok());
  EXPECT_TRUE(engine.value()->seller_active(4));
}

TEST(TradingEngineTest, DeactivatingLastSellerIsRefused) {
  auto env = MakeEnvironment();
  auto engine = TradingEngine::Create(MakeConfig(), &env, MakeCucb());
  ASSERT_TRUE(engine.ok());
  for (int i = 0; i < kSellers - 1; ++i) {
    ASSERT_TRUE(engine.value()->SetSellerActive(i, false).ok());
  }
  // The marketplace may degrade but never deadlock: the final active
  // seller cannot depart.
  EXPECT_EQ(engine.value()->SetSellerActive(kSellers - 1, false).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(engine.value()->seller_active(kSellers - 1));
}

TEST(TradingEngineTest, DepartedSellersSitOutRounds) {
  auto env = MakeEnvironment();
  auto engine = TradingEngine::Create(MakeConfig(), &env, MakeCucb());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->RunRound().ok());  // round 1 selects all
  // With K=3 and only two departures the departed-filter can never empty
  // the coalition, so it always applies (no degrade fallback).
  ASSERT_TRUE(engine.value()->SetSellerActive(2, false).ok());
  ASSERT_TRUE(engine.value()->SetSellerActive(7, false).ok());
  for (int round = 0; round < 8; ++round) {
    auto report = engine.value()->RunRound();
    ASSERT_TRUE(report.ok());
    for (int seller : report.value().selected) {
      EXPECT_TRUE(seller != 2 && seller != 7)
          << "departed seller " << seller << " settled a round";
    }
  }
}

TEST(TradingEngineTest, SnapshotRoundTripsSellerActivityBitmap) {
  auto env = MakeEnvironment();
  auto engine = TradingEngine::Create(MakeConfig(), &env, MakeCucb());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->RunRound().ok());
  ASSERT_TRUE(engine.value()->SetSellerActive(3, false).ok());
  ASSERT_TRUE(engine.value()->SetSellerActive(9, false).ok());
  const EngineSnapshot snapshot = engine.value()->CaptureSnapshot();

  auto env2 = MakeEnvironment();
  auto restored = TradingEngine::Create(MakeConfig(), &env2, MakeCucb());
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(restored.value()->RestoreSnapshot(snapshot).ok());
  EXPECT_FALSE(restored.value()->seller_active(3));
  EXPECT_FALSE(restored.value()->seller_active(9));
  EXPECT_TRUE(restored.value()->seller_active(0));

  // A return after restore clears the departure, and once everyone is
  // back the bitmap resets to the compact "all active" form.
  ASSERT_TRUE(restored.value()->SetSellerActive(3, true).ok());
  ASSERT_TRUE(restored.value()->SetSellerActive(9, true).ok());
  const EngineSnapshot all_back = restored.value()->CaptureSnapshot();
  EXPECT_TRUE(all_back.seller_active.empty());
}

}  // namespace
}  // namespace market
}  // namespace cdt
