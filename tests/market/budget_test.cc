// Tests for the consumer-budget extension (EngineConfig::consumer_budget):
// clean early stop, no partial payments, spend accounting, and the
// interaction with the CmabHs facade.

#include <gtest/gtest.h>

#include "bandit/cucb_policy.h"
#include "core/cmab_hs.h"
#include "market/trading_engine.h"
#include "stats/rng.h"

namespace cdt {
namespace market {
namespace {

constexpr int kSellers = 8;
constexpr int kSelected = 2;
constexpr int kPois = 3;

EngineConfig MakeConfig(double budget) {
  EngineConfig config;
  config.job.num_pois = kPois;
  config.job.num_rounds = 100;
  config.job.round_duration = 1000.0;
  config.num_selected = kSelected;
  stats::Xoshiro256 rng(2);
  for (int i = 0; i < kSellers; ++i) {
    config.seller_costs.push_back(
        {rng.NextDouble(0.1, 0.5), rng.NextDouble(0.1, 1.0)});
  }
  config.platform_cost = {0.1, 1.0};
  config.valuation = {1000.0};
  config.consumer_price_bounds = {0.01, 100.0};
  config.collection_price_bounds = {0.01, 5.0};
  config.consumer_budget = budget;
  return config;
}

std::unique_ptr<TradingEngine> MakeEngine(bandit::QualityEnvironment* env,
                                          double budget) {
  bandit::CucbOptions options;
  options.num_sellers = kSellers;
  options.num_selected = kSelected;
  auto policy = bandit::CucbPolicy::Create(options);
  EXPECT_TRUE(policy.ok());
  auto engine = TradingEngine::Create(
      MakeConfig(budget), env,
      std::make_unique<bandit::CucbPolicy>(std::move(policy).value()));
  EXPECT_TRUE(engine.ok());
  return std::move(engine).value();
}

bandit::QualityEnvironment MakeEnv() {
  bandit::EnvironmentConfig config;
  config.num_sellers = kSellers;
  config.num_pois = kPois;
  config.seed = 4;
  auto env = bandit::QualityEnvironment::Create(config);
  EXPECT_TRUE(env.ok());
  return std::move(env).value();
}

TEST(BudgetTest, NegativeBudgetRejected) {
  auto env = MakeEnv();
  bandit::CucbOptions options;
  options.num_sellers = kSellers;
  options.num_selected = kSelected;
  auto policy = bandit::CucbPolicy::Create(options);
  ASSERT_TRUE(policy.ok());
  auto engine = TradingEngine::Create(
      MakeConfig(-1.0), &env,
      std::make_unique<bandit::CucbPolicy>(std::move(policy).value()));
  EXPECT_FALSE(engine.ok());
}

TEST(BudgetTest, ZeroBudgetMeansUnlimited) {
  auto env = MakeEnv();
  auto engine = MakeEngine(&env, 0.0);
  ASSERT_TRUE(engine->RunAll().ok());
  EXPECT_EQ(engine->current_round(), 100);
  EXPECT_FALSE(engine->budget_exhausted());
  EXPECT_GT(engine->consumer_spend(), 0.0);
}

TEST(BudgetTest, StopsWhenBudgetRunsOut) {
  // First find the unconstrained spend, then re-run with half the budget.
  auto env_probe = MakeEnv();
  auto probe = MakeEngine(&env_probe, 0.0);
  ASSERT_TRUE(probe->RunAll().ok());
  double full_spend = probe->consumer_spend();

  auto env = MakeEnv();
  auto engine = MakeEngine(&env, full_spend / 2.0);
  ASSERT_TRUE(engine->RunAll().ok());  // clean stop, not an error
  EXPECT_TRUE(engine->budget_exhausted());
  EXPECT_LT(engine->current_round(), 100);
  EXPECT_GT(engine->current_round(), 0);
  // Never overspends.
  EXPECT_LE(engine->consumer_spend(), full_spend / 2.0 + 1e-9);
}

TEST(BudgetTest, AbandonedRoundLeavesNoTrace) {
  auto env = MakeEnv();
  // Budget below even the initial-exploration reward: round 1 aborts with
  // zero spend and zero executed rounds.
  auto engine = MakeEngine(&env, 1e-6);
  auto report = engine->RunRound();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(engine->budget_exhausted());
  EXPECT_EQ(engine->current_round(), 0);
  EXPECT_DOUBLE_EQ(engine->consumer_spend(), 0.0);
  EXPECT_NEAR(engine->ledger().NetPosition(), 0.0, 1e-12);
}

TEST(BudgetTest, FacadeStopsCleanly) {
  core::MechanismConfig config;
  config.num_sellers = 10;
  config.num_selected = 2;
  config.num_pois = 3;
  config.num_rounds = 200;
  config.consumer_budget = 5000.0;
  config.seed = 9;
  auto run = core::CmabHs::Create(config);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value()->RunAll().ok());
  EXPECT_TRUE(run.value()->engine().budget_exhausted());
  EXPECT_LT(run.value()->metrics().rounds(), 200);
  EXPECT_LE(run.value()->engine().consumer_spend(), 5000.0);
}

TEST(BudgetTest, LargerBudgetBuysMoreRounds) {
  auto env_a = MakeEnv();
  auto env_b = MakeEnv();
  auto small = MakeEngine(&env_a, 2000.0);
  auto large = MakeEngine(&env_b, 8000.0);
  ASSERT_TRUE(small->RunAll().ok());
  ASSERT_TRUE(large->RunAll().ok());
  EXPECT_LE(small->current_round(), large->current_round());
}

}  // namespace
}  // namespace market
}  // namespace cdt
