#include "market/run_log.h"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/cmab_hs.h"

namespace cdt {
namespace market {
namespace {

class RunLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("cdt_runlog_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

RoundReport MakeReport(std::int64_t round) {
  RoundReport report;
  report.round = round;
  report.initial_exploration = round == 1;
  report.selected = {3, 1, 4};
  report.consumer_price = 12.5;
  report.collection_price = 1.75;
  report.tau = {2.0, 3.0, 1.0};
  report.total_time = 6.0;
  report.consumer_profit = 100.0;
  report.platform_profit = 20.0;
  report.seller_profit_total = 5.5;
  report.expected_quality_revenue = 13.0;
  report.observed_quality_revenue = 12.8;
  return report;
}

TEST(RunLogRowTest, ConvertsAndJoinsSelected) {
  RunLogRow row = ToRunLogRow(MakeReport(7));
  EXPECT_EQ(row.round, 7);
  EXPECT_EQ(row.selected, "3+1+4");
  EXPECT_FALSE(row.initial_exploration);
  EXPECT_DOUBLE_EQ(row.total_time, 6.0);
}

TEST(ParseSelectedSetTest, RoundTripsAndValidates) {
  auto ids = ParseSelectedSet("3+1+4");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids.value(), (std::vector<int>{3, 1, 4}));
  EXPECT_TRUE(ParseSelectedSet("").value().empty());
  EXPECT_FALSE(ParseSelectedSet("3+x").ok());
}

TEST_F(RunLogTest, WriteThenLoadRoundTrip) {
  auto writer = RunLogWriter::Open(path_.string());
  ASSERT_TRUE(writer.ok());
  for (std::int64_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(writer.value().Append(MakeReport(t)).ok());
  }
  EXPECT_EQ(writer.value().rows_written(), 5);
  ASSERT_TRUE(writer.value().Close().ok());
  EXPECT_FALSE(writer.value().Append(MakeReport(6)).ok());

  auto rows = LoadRunLog(path_.string());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 5u);
  EXPECT_EQ(rows.value()[0].round, 1);
  EXPECT_TRUE(rows.value()[0].initial_exploration);
  EXPECT_FALSE(rows.value()[1].initial_exploration);
  EXPECT_NEAR(rows.value()[4].consumer_price, 12.5, 1e-9);
  EXPECT_NEAR(rows.value()[4].observed_quality_revenue, 12.8, 1e-9);
  EXPECT_EQ(rows.value()[4].selected, "3+1+4");
}

TEST_F(RunLogTest, LoadRejectsWrongHeader) {
  {
    std::ofstream out(path_);
    out << "a,b\n1,2\n";
  }
  EXPECT_FALSE(LoadRunLog(path_.string()).ok());
}

TEST_F(RunLogTest, LoadRejectsCorruptRow) {
  auto writer = RunLogWriter::Open(path_.string());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().Append(MakeReport(1)).ok());
  ASSERT_TRUE(writer.value().Close().ok());
  {
    std::ofstream out(path_, std::ios::app);
    out << "2,0,1+2,bad,1,1,1,1,1,1,1,0,0,0,\n";
  }
  auto rows = LoadRunLog(path_.string());
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("row 2"), std::string::npos);
}

TEST_F(RunLogTest, FlushSurfacesDataAndCloseIsIdempotent) {
  auto writer = RunLogWriter::Open(path_.string());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value().Append(MakeReport(1)).ok());
  ASSERT_TRUE(writer.value().Flush().ok());
  // After an explicit flush the row is durable even with the writer open.
  {
    std::ifstream in(path_);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("3+1+4"), std::string::npos);
  }
  ASSERT_TRUE(writer.value().Close().ok());
  // Repeat Close reports the same (successful) status.
  EXPECT_TRUE(writer.value().Close().ok());
  // Flush after close is a precondition error, not a crash.
  EXPECT_FALSE(writer.value().Flush().ok());
}

TEST_F(RunLogTest, WriteFailureIsStickyThroughClose) {
  // /dev/full accepts opens but fails every write with ENOSPC, which is
  // exactly the disk-full path the sticky error is designed for.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  auto writer = RunLogWriter::Open("/dev/full");
  ASSERT_TRUE(writer.ok());
  // The header and first rows may sit in the stream buffer; pumping rows
  // through Flush forces the failure to surface.
  util::Status status = util::Status::OK();
  for (int t = 1; t <= 4 && status.ok(); ++t) {
    status = writer.value().Append(MakeReport(t));
    if (status.ok()) status = writer.value().Flush();
  }
  ASSERT_FALSE(status.ok());
  // Every later operation reports the original failure: no silent loss.
  EXPECT_FALSE(writer.value().Append(MakeReport(99)).ok());
  EXPECT_FALSE(writer.value().Flush().ok());
  EXPECT_FALSE(writer.value().Close().ok());
  EXPECT_FALSE(writer.value().Close().ok());  // still sticky after close
}

TEST_F(RunLogTest, StreamsAFullSimulation) {
  core::MechanismConfig config;
  config.num_sellers = 10;
  config.num_selected = 3;
  config.num_pois = 3;
  config.num_rounds = 25;
  config.seed = 3;
  auto run = core::CmabHs::Create(config);
  ASSERT_TRUE(run.ok());
  auto writer = RunLogWriter::Open(path_.string());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(run.value()
                  ->RunAll([&](const RoundReport& report) {
                    EXPECT_TRUE(writer.value().Append(report).ok());
                  })
                  .ok());
  ASSERT_TRUE(writer.value().Close().ok());

  auto rows = LoadRunLog(path_.string());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 25u);
  // The persisted revenue matches the in-memory metrics.
  double observed = 0.0;
  for (const RunLogRow& row : rows.value()) {
    observed += row.observed_quality_revenue;
  }
  EXPECT_NEAR(observed, run.value()->metrics().observed_revenue(), 1e-6);
}

}  // namespace
}  // namespace market
}  // namespace cdt
