// Unit tests for the fault-injection subsystem: profile validation,
// injector determinism and rate calibration, corruption, backoff delays and
// the circuit-breaker state machine.

#include "market/faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace cdt {
namespace market {
namespace {

// ---------------------------------------------------------------- profile

TEST(FaultProfileTest, DefaultProfileIsInertAndValid) {
  FaultProfile profile;
  EXPECT_FALSE(profile.any());
  EXPECT_TRUE(profile.Validate().ok());
}

TEST(FaultProfileTest, AnyDetectsEachRate) {
  for (double FaultProfile::*member :
       {&FaultProfile::default_rate, &FaultProfile::corrupt_rate,
        &FaultProfile::partial_rate, &FaultProfile::settlement_failure_rate}) {
    FaultProfile profile;
    profile.*member = 0.1;
    EXPECT_TRUE(profile.any());
    EXPECT_TRUE(profile.Validate().ok());
  }
}

TEST(FaultProfileTest, RejectsOutOfRangeAndNonFiniteRates) {
  FaultProfile profile;
  profile.default_rate = -0.1;
  EXPECT_FALSE(profile.Validate().ok());
  profile.default_rate = 1.5;
  EXPECT_FALSE(profile.Validate().ok());
  profile.default_rate = std::nan("");
  EXPECT_FALSE(profile.Validate().ok());
}

TEST(FaultProfileTest, RejectsOutcomeRatesSummingPastOne) {
  FaultProfile profile;
  profile.default_rate = 0.5;
  profile.corrupt_rate = 0.4;
  profile.partial_rate = 0.2;
  EXPECT_FALSE(profile.Validate().ok());
  profile.partial_rate = 0.1;
  EXPECT_TRUE(profile.Validate().ok());
}

TEST(FaultProfileTest, RejectsBadPartialFractionBounds) {
  FaultProfile profile;
  profile.partial_fraction_lo = 0.0;  // must be > 0
  EXPECT_FALSE(profile.Validate().ok());
  profile.partial_fraction_lo = 0.8;
  profile.partial_fraction_hi = 0.5;  // lo > hi
  EXPECT_FALSE(profile.Validate().ok());
  profile.partial_fraction_lo = 0.5;
  profile.partial_fraction_hi = 1.0;  // must be < 1
  EXPECT_FALSE(profile.Validate().ok());
}

TEST(FaultProfileTest, RejectsCertainSettlementFailure) {
  FaultProfile profile;
  profile.settlement_failure_rate = 1.0;
  EXPECT_FALSE(profile.Validate().ok());
}

// --------------------------------------------------------------- injector

TEST(FaultInjectorTest, DrawsAreDeterministicAndOrderIndependent) {
  FaultProfile profile;
  profile.default_rate = 0.3;
  profile.corrupt_rate = 0.1;
  profile.partial_rate = 0.1;
  profile.seed = 99;
  FaultInjector a(profile), b(profile);

  // Query b in reverse order: draws are pure functions of (round, seller).
  std::vector<SellerFaultDraw> forward, backward;
  for (int round = 0; round < 50; ++round) {
    for (int seller = 0; seller < 10; ++seller) {
      forward.push_back(a.DrawSeller(round, seller));
    }
  }
  for (int round = 49; round >= 0; --round) {
    for (int seller = 9; seller >= 0; --seller) {
      backward.push_back(b.DrawSeller(round, seller));
    }
  }
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    const SellerFaultDraw& f = forward[i];
    const SellerFaultDraw& r = backward[backward.size() - 1 - i];
    EXPECT_EQ(f.outcome, r.outcome);
    EXPECT_EQ(f.fraction, r.fraction);
  }
}

TEST(FaultInjectorTest, EmpiricalRatesMatchTheProfile) {
  FaultProfile profile;
  profile.default_rate = 0.2;
  profile.corrupt_rate = 0.1;
  profile.partial_rate = 0.15;
  profile.seed = 7;
  FaultInjector injector(profile);

  const int kRounds = 2000, kSellers = 10;
  int defaults = 0, corruptions = 0, partials = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int seller = 0; seller < kSellers; ++seller) {
      switch (injector.DrawSeller(round, seller).outcome) {
        case DeliveryOutcome::kDefaulted: ++defaults; break;
        case DeliveryOutcome::kCorrupted: ++corruptions; break;
        case DeliveryOutcome::kPartial: ++partials; break;
        case DeliveryOutcome::kDelivered: break;
      }
    }
  }
  const double n = static_cast<double>(kRounds * kSellers);
  EXPECT_NEAR(defaults / n, 0.2, 0.01);
  EXPECT_NEAR(corruptions / n, 0.1, 0.01);
  EXPECT_NEAR(partials / n, 0.15, 0.01);
}

TEST(FaultInjectorTest, PartialFractionsStayInsideTheConfiguredRange) {
  FaultProfile profile;
  profile.partial_rate = 1.0;
  profile.partial_fraction_lo = 0.3;
  profile.partial_fraction_hi = 0.6;
  FaultInjector injector(profile);
  bool saw_spread = false;
  double first = -1.0;
  for (int round = 0; round < 200; ++round) {
    SellerFaultDraw draw = injector.DrawSeller(round, 0);
    ASSERT_EQ(draw.outcome, DeliveryOutcome::kPartial);
    EXPECT_GE(draw.fraction, 0.3);
    EXPECT_LE(draw.fraction, 0.6);
    if (first < 0.0) first = draw.fraction;
    if (draw.fraction != first) saw_spread = true;
  }
  EXPECT_TRUE(saw_spread);
}

TEST(FaultInjectorTest, ZeroSettlementRateNeverFails) {
  FaultInjector injector(FaultProfile{});
  for (int round = 0; round < 100; ++round) {
    EXPECT_FALSE(injector.SettlementAttemptFails(round, 0));
  }
}

TEST(FaultInjectorTest, SettlementFailuresTrackTheConfiguredRate) {
  FaultProfile profile;
  profile.settlement_failure_rate = 0.25;
  profile.seed = 11;
  FaultInjector injector(profile);
  int failures = 0;
  const int kRounds = 5000;
  for (int round = 0; round < kRounds; ++round) {
    if (injector.SettlementAttemptFails(round, 0)) ++failures;
  }
  EXPECT_NEAR(failures / static_cast<double>(kRounds), 0.25, 0.02);
}

TEST(FaultInjectorTest, CorruptAlwaysInvalidatesTheBatch) {
  FaultProfile profile;
  profile.corrupt_rate = 1.0;
  FaultInjector injector(profile);
  for (int seller = 0; seller < 8; ++seller) {
    std::vector<double> batch(10, 0.5);
    ASSERT_TRUE(ValidObservationBatch(batch));
    injector.Corrupt(3, seller, &batch);
    EXPECT_FALSE(ValidObservationBatch(batch));
  }
  // Empty / null batches are a no-op, not a crash.
  std::vector<double> empty;
  injector.Corrupt(3, 0, &empty);
  injector.Corrupt(3, 0, nullptr);
}

TEST(ValidObservationBatchTest, AcceptsUnitIntervalRejectsEverythingElse) {
  EXPECT_TRUE(ValidObservationBatch({0.0, 0.5, 1.0}));
  EXPECT_TRUE(ValidObservationBatch({}));
  EXPECT_FALSE(ValidObservationBatch({0.5, -0.01}));
  EXPECT_FALSE(ValidObservationBatch({1.01}));
  EXPECT_FALSE(ValidObservationBatch({std::nan("")}));
  EXPECT_FALSE(
      ValidObservationBatch({std::numeric_limits<double>::infinity()}));
}

// ---------------------------------------------------------------- backoff

TEST(RecoveryOptionsTest, DefaultsValidateAndBadKnobsFail) {
  RecoveryOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.max_settlement_retries = -1;
  EXPECT_FALSE(options.Validate().ok());
  options = RecoveryOptions{};
  options.backoff_multiplier = 0.5;
  EXPECT_FALSE(options.Validate().ok());
  options = RecoveryOptions{};
  options.backoff_cap = options.backoff_initial / 2.0;
  EXPECT_FALSE(options.Validate().ok());
  options = RecoveryOptions{};
  options.quarantine_threshold = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = RecoveryOptions{};
  options.quarantine_cooldown = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = RecoveryOptions{};
  options.probation_successes = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(BackoffDelayTest, GrowsExponentiallyThenCaps) {
  RecoveryOptions options;
  options.backoff_initial = 0.5;
  options.backoff_multiplier = 2.0;
  options.backoff_cap = 4.0;
  EXPECT_DOUBLE_EQ(BackoffDelay(options, 0), 0.5);
  EXPECT_DOUBLE_EQ(BackoffDelay(options, 1), 1.0);
  EXPECT_DOUBLE_EQ(BackoffDelay(options, 2), 2.0);
  EXPECT_DOUBLE_EQ(BackoffDelay(options, 3), 4.0);
  EXPECT_DOUBLE_EQ(BackoffDelay(options, 10), 4.0);  // capped forever after
}

// ---------------------------------------------------------------- breaker

RecoveryOptions BreakerOptions() {
  RecoveryOptions options;
  options.quarantine_threshold = 3;
  options.quarantine_cooldown = 10;
  options.probation_successes = 2;
  return options;
}

TEST(ReliabilityTrackerTest, ConsecutiveFaultsOpenTheBreaker) {
  ReliabilityTracker tracker(4, BreakerOptions());
  EXPECT_TRUE(tracker.Available(1, 0));
  tracker.RecordFault(1, 1, FaultKind::kSellerDefault);
  tracker.RecordFault(1, 2, FaultKind::kSellerDefault);
  EXPECT_EQ(tracker.seller(1).state, BreakerState::kClosed);
  tracker.RecordFault(1, 3, FaultKind::kCorruptedReport);
  EXPECT_EQ(tracker.seller(1).state, BreakerState::kOpen);
  EXPECT_EQ(tracker.seller(1).times_opened, 1);
  EXPECT_EQ(tracker.seller(1).opened_round, 3);
  EXPECT_FALSE(tracker.Available(1, 3));
  EXPECT_FALSE(tracker.Available(1, 12));   // still cooling down
  EXPECT_TRUE(tracker.Available(1, 13));    // cooldown elapsed
  EXPECT_EQ(tracker.QuarantinedCount(5), 1);
  EXPECT_EQ(tracker.QuarantinedCount(13), 0);
  // Other sellers are untouched.
  EXPECT_EQ(tracker.seller(0).state, BreakerState::kClosed);
}

TEST(ReliabilityTrackerTest, DeliveryResetsTheConsecutiveRun) {
  ReliabilityTracker tracker(2, BreakerOptions());
  tracker.RecordFault(0, 1, FaultKind::kSellerDefault);
  tracker.RecordFault(0, 2, FaultKind::kSellerDefault);
  tracker.RecordDelivery(0, 3, /*partial=*/false);
  tracker.RecordFault(0, 4, FaultKind::kSellerDefault);
  tracker.RecordFault(0, 5, FaultKind::kSellerDefault);
  EXPECT_EQ(tracker.seller(0).state, BreakerState::kClosed);
}

TEST(ReliabilityTrackerTest, ProbationClosesAfterCleanDeliveries) {
  ReliabilityTracker tracker(1, BreakerOptions());
  for (std::int64_t round = 1; round <= 3; ++round) {
    tracker.RecordFault(0, round, FaultKind::kSellerDefault);
  }
  ASSERT_EQ(tracker.seller(0).state, BreakerState::kOpen);
  // First post-cooldown delivery lazily enters probation, then counts.
  tracker.RecordDelivery(0, 14, /*partial=*/true);
  EXPECT_EQ(tracker.seller(0).state, BreakerState::kProbation);
  tracker.RecordDelivery(0, 15, /*partial=*/false);
  EXPECT_EQ(tracker.seller(0).state, BreakerState::kClosed);
  EXPECT_EQ(tracker.seller(0).partials, 1);
  EXPECT_EQ(tracker.seller(0).deliveries, 2);
}

TEST(ReliabilityTrackerTest, FaultDuringProbationReopensImmediately) {
  ReliabilityTracker tracker(1, BreakerOptions());
  for (std::int64_t round = 1; round <= 3; ++round) {
    tracker.RecordFault(0, round, FaultKind::kSellerDefault);
  }
  ASSERT_EQ(tracker.seller(0).state, BreakerState::kOpen);
  tracker.RecordDelivery(0, 14, /*partial=*/false);
  ASSERT_EQ(tracker.seller(0).state, BreakerState::kProbation);
  tracker.RecordFault(0, 15, FaultKind::kSellerDefault);
  EXPECT_EQ(tracker.seller(0).state, BreakerState::kOpen);
  EXPECT_EQ(tracker.seller(0).opened_round, 15);
  EXPECT_EQ(tracker.seller(0).times_opened, 2);
}

TEST(ReliabilityTrackerTest, DeliveryRateAndTotals) {
  ReliabilityTracker tracker(2, BreakerOptions());
  EXPECT_DOUBLE_EQ(tracker.seller(0).delivery_rate(), 1.0);  // unseen
  tracker.RecordDelivery(0, 1, false);
  tracker.RecordDelivery(0, 2, false);
  tracker.RecordFault(0, 3, FaultKind::kSellerDefault);
  tracker.RecordFault(0, 4, FaultKind::kCorruptedReport);
  EXPECT_DOUBLE_EQ(tracker.seller(0).delivery_rate(), 0.5);
  EXPECT_EQ(tracker.seller(0).defaults, 1);
  EXPECT_EQ(tracker.seller(0).corruptions, 1);
  EXPECT_EQ(tracker.total_faults(), 2);
  tracker.RecordQuarantineDrop(1);
  EXPECT_EQ(tracker.seller(1).quarantine_drops, 1);
}

TEST(ReliabilityTrackerTest, QuarantineAvailabilityAdapterMatchesGate) {
  ReliabilityTracker tracker(3, BreakerOptions());
  bandit::AvailabilityFn gate = QuarantineAvailability(&tracker);
  for (std::int64_t round = 1; round <= 3; ++round) {
    tracker.RecordFault(2, round, FaultKind::kSellerDefault);
  }
  EXPECT_TRUE(gate(0, 5));
  EXPECT_FALSE(gate(2, 5));
  EXPECT_TRUE(gate(2, 13));
}

// --------------------------------------------------------------- encoding

TEST(FaultEventTest, ToStringAndSummaryEncoding) {
  FaultEvent partial{7, FaultKind::kPartialDelivery, 3, 0.42, true};
  EXPECT_EQ(partial.ToString(), "[partial] round 7 seller 3 severity=0.42");
  FaultEvent settlement{9, FaultKind::kSettlementFailure, -1, 2.0, false};
  EXPECT_EQ(settlement.ToString(),
            "[settlement] round 9 severity=2 UNRECOVERED");

  EXPECT_EQ(EncodeFaultSummary({}), "");
  EXPECT_EQ(EncodeFaultSummary({partial, settlement}),
            "partial:3@0.42;settlement:-1@2!");
}

}  // namespace
}  // namespace market
}  // namespace cdt
