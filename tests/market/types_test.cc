#include "market/types.h"

#include <gtest/gtest.h>

namespace cdt {
namespace market {
namespace {

Job ValidJob() {
  Job job;
  job.num_pois = 10;
  job.num_rounds = 1000;
  job.round_duration = 5.0;
  job.description = "collect air-quality data";
  return job;
}

TEST(JobTest, ValidJobPasses) {
  EXPECT_TRUE(ValidJob().Validate().ok());
}

TEST(JobTest, RejectsNonPositivePois) {
  Job job = ValidJob();
  job.num_pois = 0;
  EXPECT_FALSE(job.Validate().ok());
}

TEST(JobTest, RejectsNonPositiveRounds) {
  Job job = ValidJob();
  job.num_rounds = 0;
  EXPECT_FALSE(job.Validate().ok());
}

TEST(JobTest, RejectsNonPositiveDuration) {
  Job job = ValidJob();
  job.round_duration = 0.0;
  EXPECT_FALSE(job.Validate().ok());
  job.round_duration = -1.0;
  EXPECT_FALSE(job.Validate().ok());
}

TEST(RoundReportTest, DefaultsAreEmpty) {
  RoundReport report;
  EXPECT_EQ(report.round, 0);
  EXPECT_FALSE(report.initial_exploration);
  EXPECT_TRUE(report.selected.empty());
  EXPECT_TRUE(report.game_qualities.empty());
  EXPECT_DOUBLE_EQ(report.seller_profit_total, 0.0);
}

}  // namespace
}  // namespace market
}  // namespace cdt
