#include "market/marketplace.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace cdt {
namespace market {
namespace {

constexpr int kSellers = 20;
constexpr int kPois = 4;

MarketplaceConfig MakeConfig(std::int64_t rounds = 30) {
  MarketplaceConfig config;
  config.base_job.num_pois = kPois;
  config.base_job.num_rounds = rounds;
  config.base_job.round_duration = 1000.0;
  config.base_job.description = "shared";

  MarketplaceJob a;
  a.name = "ml-training";
  a.num_selected = 4;
  a.valuation = {1000.0};
  a.consumer_price_bounds = {0.01, 100.0};
  a.collection_price_bounds = {0.01, 5.0};
  MarketplaceJob b;
  b.name = "env-monitoring";
  b.num_selected = 3;
  b.valuation = {600.0};
  b.consumer_price_bounds = {0.01, 100.0};
  b.collection_price_bounds = {0.01, 5.0};
  config.jobs = {a, b};

  stats::Xoshiro256 rng(8);
  for (int i = 0; i < kSellers; ++i) {
    config.seller_costs.push_back(
        {rng.NextDouble(0.1, 0.5), rng.NextDouble(0.1, 1.0)});
  }
  config.platform_cost = {0.1, 1.0};
  return config;
}

bandit::QualityEnvironment MakeEnv() {
  bandit::EnvironmentConfig env_config;
  env_config.num_sellers = kSellers;
  env_config.num_pois = kPois;
  env_config.seed = 21;
  auto env = bandit::QualityEnvironment::Create(env_config);
  EXPECT_TRUE(env.ok());
  return std::move(env).value();
}

TEST(MarketplaceTest, CreateValidation) {
  auto env = MakeEnv();
  EXPECT_FALSE(Marketplace::Create(MakeConfig(), nullptr).ok());

  MarketplaceConfig bad = MakeConfig();
  bad.jobs.clear();
  EXPECT_FALSE(Marketplace::Create(bad, &env).ok());

  bad = MakeConfig();
  bad.jobs[0].num_selected = 18;  // 18 + 3 > 20 sellers
  EXPECT_FALSE(Marketplace::Create(bad, &env).ok());

  bad = MakeConfig();
  bad.jobs[1].name = "";
  EXPECT_FALSE(Marketplace::Create(bad, &env).ok());

  bad = MakeConfig();
  bad.jobs[0].valuation.omega = 0.5;
  EXPECT_FALSE(Marketplace::Create(bad, &env).ok());

  bad = MakeConfig();
  bad.base_job.num_pois = kPois + 1;
  EXPECT_FALSE(Marketplace::Create(bad, &env).ok());

  // Parity with EngineConfig::Validate through the shared helpers: the
  // marketplace must reject bad quality floors and price intervals (NaN
  // included) rather than admit a job its engine would refuse.
  bad = MakeConfig();
  bad.quality_floor = 0.0;
  EXPECT_FALSE(Marketplace::Create(bad, &env).ok());

  bad = MakeConfig();
  bad.quality_floor = std::nan("");
  EXPECT_FALSE(Marketplace::Create(bad, &env).ok());

  bad = MakeConfig();
  bad.jobs[0].consumer_price_bounds = {10.0, 1.0};  // inverted
  EXPECT_FALSE(Marketplace::Create(bad, &env).ok());

  bad = MakeConfig();
  bad.jobs[1].collection_price_bounds = {std::nan(""), 5.0};
  EXPECT_FALSE(Marketplace::Create(bad, &env).ok());
}

TEST(MarketplaceTest, JobsGetDisjointSellersEveryRound) {
  auto env = MakeEnv();
  auto marketplace = Marketplace::Create(MakeConfig(), &env);
  ASSERT_TRUE(marketplace.ok());
  for (int t = 0; t < 30; ++t) {
    auto report = marketplace.value()->RunRound();
    ASSERT_TRUE(report.ok());
    std::set<int> all;
    std::size_t total = 0;
    for (const JobRoundReport& job : report.value().jobs) {
      all.insert(job.report.selected.begin(), job.report.selected.end());
      total += job.report.selected.size();
    }
    EXPECT_EQ(all.size(), total);  // no seller serves two jobs
    EXPECT_EQ(total, 7u);          // 4 + 3
  }
}

TEST(MarketplaceTest, PriorityRotatesAcrossRounds) {
  auto env = MakeEnv();
  auto marketplace = Marketplace::Create(MakeConfig(), &env);
  ASSERT_TRUE(marketplace.ok());
  auto r1 = marketplace.value()->RunRound();
  auto r2 = marketplace.value()->RunRound();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().jobs[0].job_name, "ml-training");
  EXPECT_EQ(r2.value().jobs[0].job_name, "env-monitoring");
}

TEST(MarketplaceTest, FirstPickerGetsTheBestUcb) {
  auto env = MakeEnv();
  auto marketplace = Marketplace::Create(MakeConfig(), &env);
  ASSERT_TRUE(marketplace.ok());
  // Warm up the shared estimates.
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(marketplace.value()->RunRound().ok());
  }
  // On round 11 (odd), ml-training picks first; its first seller must have
  // the globally maximal UCB at the time of selection.
  std::vector<double> ucb = marketplace.value()->shared_estimates()
                                .UcbValues();
  int argmax = 0;
  for (int i = 1; i < kSellers; ++i) {
    if (ucb[static_cast<std::size_t>(i)] >
        ucb[static_cast<std::size_t>(argmax)]) {
      argmax = i;
    }
  }
  auto report = marketplace.value()->RunRound();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().jobs[0].report.selected.front(), argmax);
}

TEST(MarketplaceTest, SummariesAccumulate) {
  auto env = MakeEnv();
  auto marketplace = Marketplace::Create(MakeConfig(20), &env);
  ASSERT_TRUE(marketplace.ok());
  ASSERT_TRUE(marketplace.value()->RunAll().ok());
  ASSERT_EQ(marketplace.value()->summaries().size(), 2u);
  for (const JobSummary& summary : marketplace.value()->summaries()) {
    EXPECT_EQ(summary.rounds, 20);
    EXPECT_GT(summary.consumer_profit_total, 0.0);
    EXPECT_GT(summary.expected_quality_revenue, 0.0);
  }
  EXPECT_EQ(marketplace.value()->current_round(), 20);
  EXPECT_FALSE(marketplace.value()->RunRound().ok());
}

TEST(MarketplaceTest, SharedLearningCoversBothJobsSelections) {
  auto env = MakeEnv();
  auto marketplace = Marketplace::Create(MakeConfig(15), &env);
  ASSERT_TRUE(marketplace.ok());
  ASSERT_TRUE(marketplace.value()->RunAll().ok());
  // Total observations = rounds * (K_a + K_b) * L.
  EXPECT_EQ(marketplace.value()->shared_estimates().total_observations(),
            15u * 7u * static_cast<std::size_t>(kPois));
}

TEST(MarketplaceTest, HigherOmegaJobPaysMore) {
  auto env = MakeEnv();
  auto marketplace = Marketplace::Create(MakeConfig(40), &env);
  ASSERT_TRUE(marketplace.ok());
  double price_a = 0.0, price_b = 0.0;
  int n = 0;
  for (int t = 0; t < 40; ++t) {
    auto report = marketplace.value()->RunRound();
    ASSERT_TRUE(report.ok());
    for (const JobRoundReport& job : report.value().jobs) {
      if (job.job_name == "ml-training") price_a += job.report.consumer_price;
      if (job.job_name == "env-monitoring") {
        price_b += job.report.consumer_price;
      }
    }
    ++n;
  }
  // ω=1000 consumer values data more and pays a higher unit price than the
  // ω=600 consumer on average.
  EXPECT_GT(price_a / n, price_b / n);
}

}  // namespace
}  // namespace market
}  // namespace cdt
