#include "market/aggregation.h"

#include <gtest/gtest.h>

namespace cdt {
namespace market {
namespace {

TEST(AggregateRoundTest, ComputesPerPoiAndOverallMeans) {
  std::vector<std::vector<double>> obs{{0.8, 0.6}, {0.4, 0.2}};
  auto stats = AggregateRound(obs, {1.0, 1.0});
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().poi_means.size(), 2u);
  EXPECT_NEAR(stats.value().poi_means[0], 0.6, 1e-12);
  EXPECT_NEAR(stats.value().poi_means[1], 0.4, 1e-12);
  EXPECT_NEAR(stats.value().overall_mean, 0.5, 1e-12);
  EXPECT_EQ(stats.value().num_sellers, 2);
}

TEST(AggregateRoundTest, WeightedMeanFavoursLongerSensing) {
  // Seller 0 (high quality) works 3x longer than seller 1.
  std::vector<std::vector<double>> obs{{0.9}, {0.1}};
  auto stats = AggregateRound(obs, {3.0, 1.0});
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats.value().overall_mean, 0.5, 1e-12);
  EXPECT_NEAR(stats.value().weighted_mean, (3 * 0.9 + 0.1) / 4.0, 1e-12);
}

TEST(AggregateRoundTest, ZeroWeightsFallBackToUnweighted) {
  std::vector<std::vector<double>> obs{{0.6}, {0.2}};
  auto stats = AggregateRound(obs, {0.0, 0.0});
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats.value().weighted_mean, 0.4, 1e-12);
}

TEST(AggregateRoundTest, Validation) {
  EXPECT_FALSE(AggregateRound({}, {}).ok());
  EXPECT_FALSE(AggregateRound({{0.5}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(AggregateRound({{0.5}, {0.5, 0.6}}, {1.0, 1.0}).ok());
  EXPECT_FALSE(AggregateRound({{}}, {1.0}).ok());
}

}  // namespace
}  // namespace market
}  // namespace cdt
