#include "game/stackelberg.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "game/numeric.h"
#include "stats/rng.h"

namespace cdt {
namespace game {
namespace {

// A small deterministic game with paper-scale parameters (Table II ranges).
GameConfig PaperishConfig(int k = 10, std::uint64_t seed = 1) {
  stats::Xoshiro256 rng(seed);
  GameConfig config;
  for (int i = 0; i < k; ++i) {
    SellerCostParams s;
    s.a = rng.NextDouble(0.1, 0.5);
    s.b = rng.NextDouble(0.1, 1.0);
    config.sellers.push_back(s);
    config.qualities.push_back(rng.NextDouble(0.05, 1.0));
  }
  config.platform = {0.1, 1.0};
  config.valuation = {1000.0};
  config.consumer_price_bounds = {0.01, 1e5};
  config.collection_price_bounds = {0.01, 1e5};
  return config;
}

TEST(GameConfigTest, Validation) {
  GameConfig config = PaperishConfig(3);
  EXPECT_TRUE(config.Validate().ok());

  GameConfig bad = config;
  bad.qualities[0] = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.qualities.pop_back();
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.sellers[0].a = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.valuation.omega = 0.9;
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.consumer_price_bounds = {5.0, 1.0};
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.max_sensing_time = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.sellers.clear();
  bad.qualities.clear();
  EXPECT_FALSE(bad.Validate().ok());

  // Non-finite inputs must be rejected before they reach the closed forms
  // (Thm 14-16 divide by q̄·a and the ω-dependent discriminant), otherwise
  // a corrupted estimate would propagate NaN prices into settlement.
  bad = config;
  bad.qualities[0] = std::nan("");
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.qualities[0] = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.sellers[0].a = std::nan("");
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.sellers[0].b = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.platform.theta = std::nan("");
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.valuation.omega = std::nan("");
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(AggregatesTest, MatchTheorem15Definitions) {
  GameConfig config;
  config.sellers = {{0.2, 0.4}, {0.5, 1.0}};
  config.qualities = {0.5, 0.8};
  config.platform = {0.1, 1.0};
  config.valuation = {100.0};
  ASSERT_TRUE(config.Validate().ok());
  Aggregates agg = ComputeAggregates(config);
  double a_expected = 1.0 / (2 * 0.5 * 0.2) + 1.0 / (2 * 0.8 * 0.5);
  double b_expected = 0.4 / (2 * 0.2) + 1.0 / (2 * 0.5);
  EXPECT_NEAR(agg.a_sum, a_expected, 1e-12);
  EXPECT_NEAR(agg.b_sum, b_expected, 1e-12);
  EXPECT_NEAR(agg.mean_quality, 0.65, 1e-12);
  EXPECT_NEAR(agg.theta_coef,
              a_expected / (2.0 * (1.0 + 0.1 * a_expected)), 1e-12);
}

TEST(StackelbergTest, SellerBestTimeMatchesEq20) {
  auto solver = StackelbergSolver::Create(PaperishConfig(5));
  ASSERT_TRUE(solver.ok());
  double p = 1.7;
  for (int i = 0; i < 5; ++i) {
    double q = solver.value().config().qualities[i];
    double a = solver.value().config().sellers[i].a;
    double b = solver.value().config().sellers[i].b;
    double expected = std::max(0.0, (p - q * b) / (2.0 * q * a));
    EXPECT_NEAR(solver.value().SellerBestTime(i, p), expected, 1e-12);
  }
}

TEST(StackelbergTest, SellerBestTimeClampsToZeroAndT) {
  GameConfig config = PaperishConfig(1);
  config.max_sensing_time = 0.5;
  auto solver = StackelbergSolver::Create(config);
  ASSERT_TRUE(solver.ok());
  EXPECT_DOUBLE_EQ(solver.value().SellerBestTime(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(solver.value().SellerBestTime(0, 1e6), 0.5);
}

// ---- Numeric verification of every stage's closed form -------------------

TEST(StackelbergTest, SellerClosedFormIsNumericOptimum) {
  auto solver = StackelbergSolver::Create(PaperishConfig(6, 3));
  ASSERT_TRUE(solver.ok());
  double p = 2.3;
  for (int i = 0; i < 6; ++i) {
    const auto& config = solver.value().config();
    auto profit = [&](double tau) {
      return SellerProfit(p, tau, config.sellers[i], config.qualities[i]);
    };
    auto numeric = MaximizeOnInterval(profit, {0.0, 100.0}, 512);
    ASSERT_TRUE(numeric.ok());
    EXPECT_NEAR(solver.value().SellerBestTime(i, p),
                numeric.value().argmax, 1e-4);
  }
}

TEST(StackelbergTest, PlatformClosedFormIsNumericOptimum) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    auto solver = StackelbergSolver::Create(PaperishConfig(10, seed));
    ASSERT_TRUE(solver.ok());
    double pj = 12.0;
    auto profit = [&](double p) {
      return solver.value().PlatformProfitAnticipating(pj, p);
    };
    auto numeric = MaximizeOnInterval(profit, {0.01, 50.0}, 2048);
    ASSERT_TRUE(numeric.ok());
    double closed = solver.value().PlatformBestPrice(pj);
    EXPECT_NEAR(closed, numeric.value().argmax, 1e-3) << "seed " << seed;
    EXPECT_NEAR(profit(closed), numeric.value().max_value, 1e-6);
  }
}

TEST(StackelbergTest, ConsumerClosedFormIsNumericOptimum) {
  for (std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    auto solver = StackelbergSolver::Create(PaperishConfig(10, seed));
    ASSERT_TRUE(solver.ok());
    auto profit = [&](double pj) {
      return solver.value().ConsumerProfitAnticipating(pj);
    };
    auto numeric = MaximizeOnInterval(profit, {0.01, 200.0}, 4096);
    ASSERT_TRUE(numeric.ok());
    double closed = solver.value().ConsumerBestPrice();
    EXPECT_NEAR(closed, numeric.value().argmax, 1e-2) << "seed " << seed;
    EXPECT_NEAR(profit(closed), numeric.value().max_value, 1e-5);
  }
}

// The paper's printed Theorem-15 constant (λA − 2θBA + B) is a typo: the
// derivative of Eq. (7) yields (λA − 2θAB − B). This test documents that
// the printed form yields strictly less platform profit.
TEST(StackelbergTest, PrintedThm15IsNotOptimal) {
  auto solver = StackelbergSolver::Create(PaperishConfig(10, 7));
  ASSERT_TRUE(solver.ok());
  double pj = 12.0;
  double corrected = solver.value().PlatformBestPrice(pj);
  double printed = solver.value().PlatformBestPricePaperPrinted(pj);
  EXPECT_GT(std::fabs(corrected - printed), 1e-6);
  double profit_corrected =
      solver.value().PlatformProfitAnticipating(pj, corrected);
  double profit_printed =
      solver.value().PlatformProfitAnticipating(pj, printed);
  EXPECT_GT(profit_corrected, profit_printed + 1e-9);
}

TEST(StackelbergTest, InteriorFormulaMatchesExactSweepInInteriorRegime) {
  // With healthy qualities and a generous price box, no clamp binds and the
  // exact kink-sweep must coincide with the Theorem-15 interior formula.
  GameConfig config;
  stats::Xoshiro256 rng(31);
  for (int i = 0; i < 10; ++i) {
    config.sellers.push_back(
        {rng.NextDouble(0.1, 0.5), rng.NextDouble(0.1, 1.0)});
    config.qualities.push_back(rng.NextDouble(0.4, 1.0));  // healthy
  }
  config.platform = {0.1, 1.0};
  config.valuation = {1000.0};
  config.consumer_price_bounds = {0.01, 1e5};
  config.collection_price_bounds = {0.01, 1e5};
  auto solver = StackelbergSolver::Create(config);
  ASSERT_TRUE(solver.ok());
  for (double pj : {5.0, 10.0, 20.0, 40.0}) {
    double interior = solver.value().PlatformBestPriceInterior(pj);
    double exact = solver.value().PlatformBestPrice(pj);
    if (interior > 1.0) {  // every activation threshold q·b <= 1
      EXPECT_NEAR(interior, exact, 1e-9) << "pj=" << pj;
    }
  }
}

TEST(StackelbergTest, ExactSweepHandlesSaturationCap) {
  // Tiny T forces saturation: every seller pegs at T once p is high, and
  // the platform's best response must respect the capped supply curve.
  GameConfig config = PaperishConfig(5, 23);
  config.max_sensing_time = 0.25;
  auto solver = StackelbergSolver::Create(config);
  ASSERT_TRUE(solver.ok());
  double pj = 15.0;
  double exact = solver.value().PlatformBestPrice(pj);
  auto profit = [&](double p) {
    return solver.value().PlatformProfitAnticipating(pj, p);
  };
  auto numeric = MaximizeOnInterval(profit, {0.01, 50.0}, 4096);
  ASSERT_TRUE(numeric.ok());
  EXPECT_NEAR(profit(exact), numeric.value().max_value, 1e-6);
  // And the resulting times actually clamp at T.
  for (double tau : solver.value().SellerBestTimes(50.0)) {
    EXPECT_DOUBLE_EQ(tau, 0.25);
  }
}

TEST(StackelbergTest, SolveProducesConsistentProfile) {
  auto solver = StackelbergSolver::Create(PaperishConfig(10, 11));
  ASSERT_TRUE(solver.ok());
  StrategyProfile profile = solver.value().Solve();
  EXPECT_EQ(profile.tau.size(), 10u);
  EXPECT_GT(profile.total_time, 0.0);
  EXPECT_GT(profile.consumer_price, profile.collection_price);
  // Profile totals agree with EvaluateProfile re-evaluation.
  StrategyProfile re = solver.value().EvaluateProfile(
      profile.consumer_price, profile.collection_price, profile.tau);
  EXPECT_NEAR(re.consumer_profit, profile.consumer_profit, 1e-9);
  EXPECT_NEAR(re.platform_profit, profile.platform_profit, 1e-9);
}

TEST(StackelbergTest, AllPartiesProfitAtEquilibrium) {
  // Under paper-scale parameters everyone should participate gainfully.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto solver = StackelbergSolver::Create(PaperishConfig(10, seed));
    ASSERT_TRUE(solver.ok());
    StrategyProfile profile = solver.value().Solve();
    EXPECT_GT(profile.consumer_profit, 0.0) << "seed " << seed;
    EXPECT_GT(profile.platform_profit, 0.0) << "seed " << seed;
    for (double psi : profile.seller_profits) {
      EXPECT_GE(psi, -1e-9) << "seed " << seed;
    }
  }
}

TEST(StackelbergTest, ConsumerPriceClampsToBox) {
  GameConfig config = PaperishConfig(10, 13);
  auto unbounded = StackelbergSolver::Create(config);
  ASSERT_TRUE(unbounded.ok());
  double interior = unbounded.value().ConsumerBestPrice();

  config.consumer_price_bounds = {0.01, interior * 0.5};
  auto clamped = StackelbergSolver::Create(config);
  ASSERT_TRUE(clamped.ok());
  EXPECT_DOUBLE_EQ(clamped.value().ConsumerBestPrice(), interior * 0.5);
}

TEST(StackelbergTest, DeltaDiscriminantAlwaysPositive) {
  // Δ = (q̄Λ−2)² + 8Θωq̄² > 0, so ConsumerBestPrice is total. Fuzz it.
  stats::Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    GameConfig config = PaperishConfig(1 + static_cast<int>(
                                               rng.NextBounded(20)),
                                       rng.Next());
    config.platform.theta = rng.NextDouble(0.01, 2.0);
    config.platform.lambda = rng.NextDouble(0.0, 3.0);
    config.valuation.omega = rng.NextDouble(1.01, 2000.0);
    auto solver = StackelbergSolver::Create(config);
    ASSERT_TRUE(solver.ok());
    double pj = solver.value().ConsumerBestPrice();
    EXPECT_TRUE(std::isfinite(pj));
    StrategyProfile profile = solver.value().Solve();
    EXPECT_TRUE(std::isfinite(profile.consumer_profit));
    EXPECT_TRUE(std::isfinite(profile.platform_profit));
  }
}

// Parameterized sweep: the closed-form stage-1 optimum beats a dense grid
// of alternative consumer prices across K values.
class StackelbergSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(StackelbergSweepTest, ConsumerOptimumDominatesGrid) {
  int k = GetParam();
  auto solver = StackelbergSolver::Create(PaperishConfig(k, 17 + k));
  ASSERT_TRUE(solver.ok());
  double best_pj = solver.value().ConsumerBestPrice();
  double best_profit = solver.value().ConsumerProfitAnticipating(best_pj);
  for (int i = 1; i <= 400; ++i) {
    double pj = 0.1 * i;
    EXPECT_LE(solver.value().ConsumerProfitAnticipating(pj),
              best_profit + 1e-7)
        << "K=" << k << " pj=" << pj;
  }
}

INSTANTIATE_TEST_SUITE_P(VaryK, StackelbergSweepTest,
                         ::testing::Values(1, 2, 5, 10, 20, 40, 60));

}  // namespace
}  // namespace game
}  // namespace cdt
