#include "game/auction.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace cdt {
namespace game {
namespace {

AuctionConfig MakeConfig(int m = 6, int k = 2, std::uint64_t seed = 1) {
  stats::Xoshiro256 rng(seed);
  AuctionConfig config;
  for (int i = 0; i < m; ++i) {
    config.sellers.push_back(
        {rng.NextDouble(0.1, 0.5), rng.NextDouble(0.1, 1.0)});
    config.qualities.push_back(rng.NextDouble(0.1, 1.0));
  }
  config.num_winners = k;
  config.platform = {0.1, 1.0};
  config.valuation = {1000.0};
  return config;
}

TEST(AuctionConfigTest, Validation) {
  AuctionConfig config = MakeConfig();
  EXPECT_TRUE(config.Validate().ok());

  AuctionConfig bad = config;
  bad.num_winners = 0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.num_winners = 6;  // == M: no rejected ask to price from
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.reference_time = 0.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.platform_margin = -0.1;
  EXPECT_FALSE(bad.Validate().ok());

  bad = config;
  bad.qualities[0] = 0.0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(AuctionTest, SelectsCheapestQualityAdjustedAsks) {
  AuctionConfig config;
  config.sellers = {{0.5, 1.0}, {0.1, 0.1}, {0.3, 0.5}, {0.2, 0.2}};
  config.qualities = {0.9, 0.5, 0.7, 0.3};
  config.num_winners = 2;
  config.platform = {0.1, 1.0};
  config.valuation = {1000.0};
  // Asks at τ̂=1: 1.5, 0.2, 0.8, 0.4 -> winners {1, 3}, clearing 0.8.
  auto outcome = RunProcurementAuction(config);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().winners, (std::vector<int>{1, 3}));
  EXPECT_NEAR(outcome.value().clearing_price, 0.8, 1e-12);
}

TEST(AuctionTest, CriticalPaymentIsTruthful) {
  // Each winner's own ask is below the clearing price; each loser's ask is
  // at or above it — no bidder gains by misreporting around the boundary.
  auto config = MakeConfig(10, 4, 3);
  auto outcome = RunProcurementAuction(config);
  ASSERT_TRUE(outcome.ok());
  for (int w : outcome.value().winners) {
    EXPECT_LE(QualityAdjustedAsk(config.sellers[static_cast<std::size_t>(w)],
                                 config.reference_time),
              outcome.value().clearing_price + 1e-12);
  }
  std::vector<bool> is_winner(config.sellers.size(), false);
  for (int w : outcome.value().winners) {
    is_winner[static_cast<std::size_t>(w)] = true;
  }
  for (std::size_t i = 0; i < config.sellers.size(); ++i) {
    if (!is_winner[i]) {
      EXPECT_GE(QualityAdjustedAsk(config.sellers[i], config.reference_time),
                outcome.value().clearing_price - 1e-12);
    }
  }
}

TEST(AuctionTest, WinnersNeverLoseMoney) {
  // Individual rationality: paid at/above own unit cost at the chosen τ.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto outcome = RunProcurementAuction(MakeConfig(12, 5, seed));
    ASSERT_TRUE(outcome.ok());
    for (double psi : outcome.value().winner_profits) {
      EXPECT_GE(psi, -1e-9) << "seed " << seed;
    }
  }
}

TEST(AuctionTest, PlatformEarnsConfiguredMargin) {
  auto config = MakeConfig(8, 3, 7);
  config.platform_margin = 0.25;
  auto outcome = RunProcurementAuction(config);
  ASSERT_TRUE(outcome.ok());
  // Ω = reward − cost = margin · cost, so Ω / (reward − Ω) = margin.
  double reward =
      outcome.value().consumer_price * outcome.value().total_time;
  double cost = reward - outcome.value().platform_profit;
  EXPECT_NEAR(outcome.value().platform_profit / cost, 0.25, 1e-9);
}

TEST(AuctionTest, TauRespectsCap) {
  auto config = MakeConfig(8, 3, 11);
  config.max_sensing_time = 0.05;
  auto outcome = RunProcurementAuction(config);
  ASSERT_TRUE(outcome.ok());
  for (double tau : outcome.value().tau) {
    EXPECT_GE(tau, 0.0);
    EXPECT_LE(tau, 0.05);
  }
}

TEST(AuctionTest, DeterministicGivenConfig) {
  auto a = RunProcurementAuction(MakeConfig(10, 4, 5));
  auto b = RunProcurementAuction(MakeConfig(10, 4, 5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().winners, b.value().winners);
  EXPECT_DOUBLE_EQ(a.value().consumer_profit, b.value().consumer_profit);
}

}  // namespace
}  // namespace game
}  // namespace cdt
