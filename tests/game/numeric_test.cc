#include "game/numeric.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cdt {
namespace game {
namespace {

TEST(MaximizeOnIntervalTest, Validation) {
  auto f = [](double x) { return -x * x; };
  EXPECT_FALSE(MaximizeOnInterval(f, {1.0, 0.0}).ok());
  EXPECT_FALSE(MaximizeOnInterval(f, {0.0, 1.0}, 2).ok());
}

TEST(MaximizeOnIntervalTest, DegenerateIntervalReturnsPoint) {
  auto f = [](double x) { return 3.0 * x; };
  auto r = MaximizeOnInterval(f, {2.0, 2.0});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().argmax, 2.0);
  EXPECT_DOUBLE_EQ(r.value().max_value, 6.0);
}

TEST(MaximizeOnIntervalTest, FindsInteriorPeak) {
  auto f = [](double x) { return -(x - 3.7) * (x - 3.7) + 2.0; };
  auto r = MaximizeOnInterval(f, {0.0, 10.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().argmax, 3.7, 1e-6);
  EXPECT_NEAR(r.value().max_value, 2.0, 1e-10);
}

TEST(MaximizeOnIntervalTest, FindsBoundaryMaximum) {
  auto inc = [](double x) { return x; };
  auto r = MaximizeOnInterval(inc, {0.0, 5.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().argmax, 5.0, 1e-6);

  auto dec = [](double x) { return -x; };
  auto r2 = MaximizeOnInterval(dec, {0.0, 5.0});
  ASSERT_TRUE(r2.ok());
  EXPECT_NEAR(r2.value().argmax, 0.0, 1e-6);
}

TEST(MaximizeOnIntervalTest, HandlesMultimodalWithDenseGrid) {
  // Two peaks: x=1 (height 1) and x=4 (height 2). The grid localises the
  // global one.
  auto f = [](double x) {
    return std::exp(-10 * (x - 1) * (x - 1)) +
           2.0 * std::exp(-10 * (x - 4) * (x - 4));
  };
  auto r = MaximizeOnInterval(f, {0.0, 6.0}, 512);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().argmax, 4.0, 1e-4);
}

TEST(MaximizeOnIntervalTest, PiecewiseLinearKink) {
  auto f = [](double x) { return x < 2.0 ? x : 4.0 - x; };
  auto r = MaximizeOnInterval(f, {0.0, 4.0}, 128);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().argmax, 2.0, 1e-4);
  EXPECT_NEAR(r.value().max_value, 2.0, 1e-6);
}

}  // namespace
}  // namespace game
}  // namespace cdt
