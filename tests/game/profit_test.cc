#include "game/profit.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cdt {
namespace game {
namespace {

TEST(SellerProfitTest, MatchesEq5) {
  SellerCostParams cost{0.2, 0.4};
  // p τ − C = 1.5·3 − (0.2·9 + 0.4·3)·0.5 = 4.5 − 1.5 = 3.0
  EXPECT_NEAR(SellerProfit(1.5, 3.0, cost, 0.5), 3.0, 1e-12);
}

TEST(SellerProfitTest, ZeroTimeZeroProfit) {
  SellerCostParams cost{0.2, 0.4};
  EXPECT_DOUBLE_EQ(SellerProfit(2.0, 0.0, cost, 0.5), 0.0);
}

TEST(SellerProfitTest, CanBeNegativeWhenOverworking) {
  SellerCostParams cost{1.0, 0.0};
  // Marginal cost exceeds price for large τ.
  EXPECT_LT(SellerProfit(1.0, 10.0, cost, 1.0), 0.0);
}

TEST(PlatformProfitTest, MatchesEq7) {
  PlatformCostParams cost{0.1, 1.0};
  // (p^J − p)Στ − C^J = (7 − 2)·5 − (0.1·25 + 5) = 25 − 7.5 = 17.5
  EXPECT_NEAR(PlatformProfit(7.0, 2.0, 5.0, cost), 17.5, 1e-12);
}

TEST(PlatformProfitTest, NegativeWhenMarginBelowCost) {
  PlatformCostParams cost{0.1, 1.0};
  EXPECT_LT(PlatformProfit(2.0, 2.0, 5.0, cost), 0.0);
}

TEST(ConsumerProfitTest, MatchesEq9) {
  ValuationParams v{1000.0};
  double expected = 1000.0 * std::log(1.0 + 0.5 * 10.0) - 7.0 * 10.0;
  EXPECT_NEAR(ConsumerProfit(7.0, 0.5, 10.0, v), expected, 1e-9);
}

TEST(TotalTimeTest, SumsVector) {
  EXPECT_DOUBLE_EQ(TotalTime({1.0, 2.5, 0.5}), 4.0);
  EXPECT_DOUBLE_EQ(TotalTime({}), 0.0);
}

}  // namespace
}  // namespace game
}  // namespace cdt
