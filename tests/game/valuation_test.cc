#include "game/valuation.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cdt {
namespace game {
namespace {

TEST(ValuationTest, Validation) {
  EXPECT_TRUE(ValuationParams{1000.0}.Validate().ok());
  EXPECT_FALSE(ValuationParams{1.0}.Validate().ok());
  EXPECT_FALSE(ValuationParams{0.5}.Validate().ok());
}

TEST(ValuationTest, MatchesEq10) {
  ValuationParams v{1000.0};
  EXPECT_NEAR(ConsumerValuation(v, 0.5, 10.0), 1000.0 * std::log(6.0),
              1e-9);
  EXPECT_DOUBLE_EQ(ConsumerValuation(v, 0.5, 0.0), 0.0);
}

TEST(ValuationTest, DiminishingMarginalReturn) {
  ValuationParams v{100.0};
  double prev = 0.0, prev_delta = 1e18;
  for (int i = 1; i <= 10; ++i) {
    double phi = ConsumerValuation(v, 0.7, 2.0 * i);
    double delta = phi - prev;
    EXPECT_GT(phi, prev);          // increasing
    EXPECT_LT(delta, prev_delta);  // concave
    prev = phi;
    prev_delta = delta;
  }
}

TEST(ValuationTest, MarginalIsDerivative) {
  ValuationParams v{500.0};
  double q = 0.6, t = 7.0, h = 1e-6;
  double fd =
      (ConsumerValuation(v, q, t + h) - ConsumerValuation(v, q, t - h)) /
      (2 * h);
  EXPECT_NEAR(ConsumerMarginalValuation(v, q, t), fd, 1e-5);
}

TEST(ValuationTest, HigherQualityHigherValue) {
  ValuationParams v{100.0};
  EXPECT_GT(ConsumerValuation(v, 0.9, 5.0), ConsumerValuation(v, 0.3, 5.0));
}

}  // namespace
}  // namespace game
}  // namespace cdt
