#include "game/cost.h"

#include <gtest/gtest.h>

namespace cdt {
namespace game {
namespace {

TEST(SellerCostTest, Validation) {
  SellerCostParams p{0.3, 0.5};
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_FALSE((SellerCostParams{0.0, 0.5}).Validate().ok());
  EXPECT_FALSE((SellerCostParams{-0.1, 0.5}).Validate().ok());
  EXPECT_FALSE((SellerCostParams{0.3, -0.1}).Validate().ok());
  EXPECT_TRUE((SellerCostParams{0.3, 0.0}).Validate().ok());
}

TEST(SellerCostTest, MatchesEq6) {
  SellerCostParams p{0.2, 0.4};
  // (a τ² + b τ) q̄ = (0.2·9 + 0.4·3)·0.5 = (1.8 + 1.2)·0.5 = 1.5
  EXPECT_NEAR(SellerCost(p, 3.0, 0.5), 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(SellerCost(p, 0.0, 0.5), 0.0);
}

TEST(SellerCostTest, StrictlyConvexIncreasing) {
  SellerCostParams p{0.3, 0.1};
  double prev = 0.0, prev_delta = 0.0;
  for (int i = 1; i <= 10; ++i) {
    double c = SellerCost(p, 0.5 * i, 0.8);
    double delta = c - prev;
    EXPECT_GT(c, prev);
    if (i > 1) {
      EXPECT_GT(delta, prev_delta);  // increasing marginal cost
    }
    prev = c;
    prev_delta = delta;
  }
}

TEST(SellerCostTest, MarginalIsDerivative) {
  SellerCostParams p{0.25, 0.7};
  double tau = 2.0, q = 0.6, h = 1e-6;
  double fd =
      (SellerCost(p, tau + h, q) - SellerCost(p, tau - h, q)) / (2 * h);
  EXPECT_NEAR(SellerMarginalCost(p, tau, q), fd, 1e-6);
}

TEST(SellerCostTest, ScalesWithQuality) {
  SellerCostParams p{0.2, 0.4};
  EXPECT_NEAR(SellerCost(p, 2.0, 1.0), 2.0 * SellerCost(p, 2.0, 0.5), 1e-12);
}

TEST(PlatformCostTest, Validation) {
  EXPECT_TRUE((PlatformCostParams{0.1, 1.0}).Validate().ok());
  EXPECT_FALSE((PlatformCostParams{0.0, 1.0}).Validate().ok());
  EXPECT_FALSE((PlatformCostParams{0.1, -1.0}).Validate().ok());
}

TEST(PlatformCostTest, MatchesEq8) {
  PlatformCostParams p{0.1, 1.0};
  // θ(Στ)² + λΣτ = 0.1·25 + 5 = 7.5
  EXPECT_NEAR(PlatformCost(p, 5.0), 7.5, 1e-12);
  EXPECT_DOUBLE_EQ(PlatformCost(p, 0.0), 0.0);
}

}  // namespace
}  // namespace game
}  // namespace cdt
