#include "game/equilibrium.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace cdt {
namespace game {
namespace {

GameConfig RandomConfig(int k, std::uint64_t seed) {
  stats::Xoshiro256 rng(seed);
  GameConfig config;
  for (int i = 0; i < k; ++i) {
    config.sellers.push_back(
        {rng.NextDouble(0.1, 0.5), rng.NextDouble(0.1, 1.0)});
    config.qualities.push_back(rng.NextDouble(0.05, 1.0));
  }
  config.platform = {rng.NextDouble(0.05, 1.0), rng.NextDouble(0.5, 2.0)};
  config.valuation = {rng.NextDouble(600.0, 1400.0)};
  config.consumer_price_bounds = {0.01, 500.0};
  config.collection_price_bounds = {0.01, 100.0};
  return config;
}

TEST(EquilibriumTest, SolvedProfileIsEquilibrium) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto solver = StackelbergSolver::Create(RandomConfig(10, seed));
    ASSERT_TRUE(solver.ok());
    StrategyProfile profile = solver.value().Solve();
    auto report = CheckEquilibrium(solver.value(), profile);
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report.value().is_equilibrium)
        << "seed " << seed << " worst deviator "
        << report.value().worst_deviator << " gain "
        << report.value().max_violation;
  }
}

TEST(EquilibriumTest, PerturbedConsumerPriceIsNotEquilibrium) {
  auto solver = StackelbergSolver::Create(RandomConfig(10, 3));
  ASSERT_TRUE(solver.ok());
  StrategyProfile eq = solver.value().Solve();
  // Move the consumer off its optimum with followers re-solving.
  double bad_pj = eq.consumer_price * 2.0;
  double p = solver.value().PlatformBestPrice(bad_pj);
  StrategyProfile deviated = solver.value().EvaluateProfile(
      bad_pj, p, solver.value().SellerBestTimes(p));
  auto report = CheckEquilibrium(solver.value(), deviated);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().is_equilibrium);
  EXPECT_EQ(report.value().worst_deviator, "consumer");
}

TEST(EquilibriumTest, PerturbedSellerTimeIsNotEquilibrium) {
  auto solver = StackelbergSolver::Create(RandomConfig(5, 4));
  ASSERT_TRUE(solver.ok());
  StrategyProfile eq = solver.value().Solve();
  std::vector<double> tau = eq.tau;
  tau[2] *= 3.0;  // seller 2 overworks
  StrategyProfile deviated = solver.value().EvaluateProfile(
      eq.consumer_price, eq.collection_price, tau);
  auto report = CheckEquilibrium(solver.value(), deviated);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().is_equilibrium);
  EXPECT_EQ(report.value().worst_deviator, "seller2");
}

TEST(EquilibriumTest, HoldsWhenConsumerPriceClampedAtBox) {
  // Case 2 of Theorem 20: p^{J*} projected onto the box boundary is still
  // an equilibrium *within the box*.
  GameConfig config = RandomConfig(10, 5);
  auto wide = StackelbergSolver::Create(config);
  ASSERT_TRUE(wide.ok());
  double interior = wide.value().ConsumerBestPrice();

  config.consumer_price_bounds = {0.01, interior * 0.6};
  auto solver = StackelbergSolver::Create(config);
  ASSERT_TRUE(solver.ok());
  StrategyProfile profile = solver.value().Solve();
  EXPECT_DOUBLE_EQ(profile.consumer_price, interior * 0.6);
  auto report = CheckEquilibrium(solver.value(), profile);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().is_equilibrium)
      << report.value().worst_deviator;
}

TEST(EquilibriumTest, OptionsValidation) {
  auto solver = StackelbergSolver::Create(RandomConfig(3, 6));
  ASSERT_TRUE(solver.ok());
  StrategyProfile profile = solver.value().Solve();
  EquilibriumCheckOptions options;
  options.probes = 1;
  EXPECT_FALSE(CheckEquilibrium(solver.value(), profile, options).ok());

  StrategyProfile wrong_size = profile;
  wrong_size.tau.pop_back();
  EXPECT_FALSE(CheckEquilibrium(solver.value(), wrong_size).ok());
}

// Equilibrium property over many random instances (the Theorem-20 claim).
class EquilibriumPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquilibriumPropertyTest, SolveAlwaysYieldsEquilibrium) {
  stats::Xoshiro256 rng(GetParam());
  int k = 1 + static_cast<int>(rng.NextBounded(30));
  auto solver = StackelbergSolver::Create(RandomConfig(k, rng.Next()));
  ASSERT_TRUE(solver.ok());
  StrategyProfile profile = solver.value().Solve();
  auto report = CheckEquilibrium(solver.value(), profile);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().is_equilibrium)
      << "K=" << k << " worst=" << report.value().worst_deviator
      << " gain=" << report.value().max_violation;
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, EquilibriumPropertyTest,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace game
}  // namespace cdt
