// Randomised differential testing of the Stackelberg solver against the
// derivative-free numeric optimiser, across regimes the paper's interior
// closed forms do not cover: tight sensing-time caps, tight price boxes,
// near-zero qualities, and extreme platform costs.

#include <cmath>

#include <gtest/gtest.h>

#include "game/equilibrium.h"
#include "game/numeric.h"
#include "game/stackelberg.h"
#include "stats/rng.h"
#include "support/generators.h"

namespace cdt {
namespace game {
namespace {

using testsupport::RandomGameConfig;

class SolverFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverFuzzTest, PlatformBestResponseMatchesNumeric) {
  stats::Xoshiro256 rng(GetParam());
  auto solver = StackelbergSolver::Create(RandomGameConfig(rng));
  ASSERT_TRUE(solver.ok());
  const util::Interval& box =
      solver.value().config().collection_price_bounds;
  for (double pj : {2.0, 8.0, 30.0}) {
    double exact = solver.value().PlatformBestPrice(pj);
    auto profit = [&](double p) {
      return solver.value().PlatformProfitAnticipating(pj, p);
    };
    auto numeric = MaximizeOnInterval(profit, box, 4096);
    ASSERT_TRUE(numeric.ok());
    // Value comparison (argmax can differ across profit plateaus).
    EXPECT_GE(profit(exact), numeric.value().max_value - 1e-6)
        << "pj=" << pj;
  }
}

TEST_P(SolverFuzzTest, ConsumerBestPriceMatchesNumeric) {
  stats::Xoshiro256 rng(GetParam() ^ 0xABCDEF);
  auto solver = StackelbergSolver::Create(RandomGameConfig(rng));
  ASSERT_TRUE(solver.ok());
  double pj = solver.value().ConsumerBestPrice();
  double value = solver.value().ConsumerProfitAnticipating(pj);
  auto numeric = MaximizeOnInterval(
      [&](double x) { return solver.value().ConsumerProfitAnticipating(x); },
      solver.value().config().consumer_price_bounds, 4096);
  ASSERT_TRUE(numeric.ok());
  EXPECT_GE(value, numeric.value().max_value - 1e-5);
}

TEST_P(SolverFuzzTest, SolvedProfileIsEquilibriumAndFinite) {
  stats::Xoshiro256 rng(GetParam() ^ 0x55AA55);
  auto solver = StackelbergSolver::Create(RandomGameConfig(rng));
  ASSERT_TRUE(solver.ok());
  StrategyProfile profile = solver.value().Solve();
  EXPECT_TRUE(std::isfinite(profile.consumer_profit));
  EXPECT_TRUE(std::isfinite(profile.platform_profit));
  EXPECT_GE(profile.total_time, 0.0);
  for (double tau : profile.tau) {
    EXPECT_GE(tau, 0.0);
    EXPECT_LE(tau, solver.value().config().max_sensing_time + 1e-12);
  }
  EquilibriumCheckOptions options;
  options.tolerance = 1e-5;
  auto report = CheckEquilibrium(solver.value(), profile, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().is_equilibrium)
      << "deviator " << report.value().worst_deviator << " gain "
      << report.value().max_violation;
}

TEST_P(SolverFuzzTest, TotalTimeAtMatchesDirectSum) {
  stats::Xoshiro256 rng(GetParam() ^ 0x777);
  auto solver = StackelbergSolver::Create(RandomGameConfig(rng));
  ASSERT_TRUE(solver.ok());
  const util::Interval& box =
      solver.value().config().collection_price_bounds;
  for (int i = 0; i <= 20; ++i) {
    double p = box.lo + box.width() * static_cast<double>(i) / 20.0;
    double direct = 0.0;
    for (double tau : solver.value().SellerBestTimes(p)) direct += tau;
    EXPECT_NEAR(solver.value().TotalTimeAt(p), direct, 1e-9)
        << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzzTest,
                         ::testing::Range<std::uint64_t>(1000, 1040));

}  // namespace
}  // namespace game
}  // namespace cdt
