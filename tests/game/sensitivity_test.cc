#include "game/sensitivity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace cdt {
namespace game {
namespace {

GameConfig HealthyConfig(std::uint64_t seed = 1) {
  stats::Xoshiro256 rng(seed);
  GameConfig config;
  for (int i = 0; i < 10; ++i) {
    config.sellers.push_back(
        {rng.NextDouble(0.1, 0.5), rng.NextDouble(0.1, 1.0)});
    config.qualities.push_back(rng.NextDouble(0.4, 0.95));
  }
  config.platform = {0.1, 1.0};
  config.valuation = {1000.0};
  config.consumer_price_bounds = {0.01, 1e5};
  config.collection_price_bounds = {0.01, 1e5};
  return config;
}

TEST(ParameterRefTest, Names) {
  EXPECT_EQ((ParameterRef{ParameterRef::Kind::kSellerA, 3}).Name(), "a_3");
  EXPECT_EQ((ParameterRef{ParameterRef::Kind::kSellerB, 0}).Name(), "b_0");
  EXPECT_EQ((ParameterRef{ParameterRef::Kind::kQuality, 7}).Name(), "q_7");
  EXPECT_EQ((ParameterRef{ParameterRef::Kind::kTheta, 0}).Name(), "theta");
  EXPECT_EQ((ParameterRef{ParameterRef::Kind::kOmega, 0}).Name(), "omega");
}

TEST(SensitivityTest, Validation) {
  GameConfig config = HealthyConfig();
  EXPECT_FALSE(ComputeSensitivity(config,
                                  {ParameterRef::Kind::kSellerA, 99})
                   .ok());
  EXPECT_FALSE(
      ComputeSensitivity(config, {ParameterRef::Kind::kTheta, 0}, 0.0).ok());
}

TEST(SensitivityTest, SignsMatchFigs17And18) {
  // The θ derivatives quantify Figs. 17-18: raising the aggregation cost
  // lowers every profit, raises p^J and lowers p / Στ.
  auto row = ComputeSensitivity(HealthyConfig(),
                                {ParameterRef::Kind::kTheta, 0});
  ASSERT_TRUE(row.ok());
  EXPECT_GT(row.value().d_consumer_price, 0.0);     // SoC rises with θ
  EXPECT_LT(row.value().d_collection_price, 0.0);   // SoP falls
  EXPECT_LT(row.value().d_total_time, 0.0);         // Στ falls
  EXPECT_LT(row.value().d_consumer_profit, 0.0);    // PoC falls
  EXPECT_LT(row.value().d_seller_profit, 0.0);      // PoS falls
}

TEST(SensitivityTest, OmegaRaisesEverything) {
  // A consumer who values data more raises prices, time and all profits
  // (Fig. 13's ω sweep).
  auto row = ComputeSensitivity(HealthyConfig(),
                                {ParameterRef::Kind::kOmega, 0});
  ASSERT_TRUE(row.ok());
  EXPECT_GT(row.value().d_consumer_price, 0.0);
  EXPECT_GT(row.value().d_collection_price, 0.0);
  EXPECT_GT(row.value().d_total_time, 0.0);
  EXPECT_GT(row.value().d_consumer_profit, 0.0);
  EXPECT_GT(row.value().d_platform_profit, 0.0);
  EXPECT_GT(row.value().d_seller_profit, 0.0);
}

TEST(SensitivityTest, SellerCostDerivativeMatchesFig15Direction) {
  // Raising a_0 lowers total time (seller 0 works less) — Fig. 15/16.
  auto row = ComputeSensitivity(HealthyConfig(),
                                {ParameterRef::Kind::kSellerA, 0});
  ASSERT_TRUE(row.ok());
  EXPECT_LT(row.value().d_total_time, 0.0);
  EXPECT_LT(row.value().d_consumer_profit, 0.0);
}

TEST(SensitivityTest, MatchesWiderFiniteDifference) {
  // The reported derivative agrees with an independent, coarser stencil.
  GameConfig config = HealthyConfig(5);
  auto row =
      ComputeSensitivity(config, {ParameterRef::Kind::kOmega, 0});
  ASSERT_TRUE(row.ok());

  auto poc_at = [&](double omega) {
    GameConfig c = config;
    c.valuation.omega = omega;
    auto solver = StackelbergSolver::Create(c);
    EXPECT_TRUE(solver.ok());
    return solver.value().Solve().consumer_profit;
  };
  double h = 1.0;
  double coarse = (poc_at(1001.0) - poc_at(999.0)) / (2.0 * h);
  EXPECT_NEAR(row.value().d_consumer_profit, coarse,
              1e-3 * std::max(1.0, std::fabs(coarse)));
}

TEST(SensitivityTest, StepShrinksNearDomainBoundary) {
  // q̄_0 close to 1: the default relative step would push q̄ above 1; the
  // implementation must shrink it rather than fail.
  GameConfig config = HealthyConfig();
  config.qualities[0] = 1.0 - 1e-9;
  auto row =
      ComputeSensitivity(config, {ParameterRef::Kind::kQuality, 0});
  EXPECT_TRUE(row.ok());
}

TEST(SensitivityTest, StandardTableHasSixRows) {
  auto rows = ComputeStandardSensitivities(HealthyConfig(), 2);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 6u);
  EXPECT_EQ(rows.value()[0].parameter, "theta");
  EXPECT_EQ(rows.value()[3].parameter, "a_2");
  EXPECT_EQ(rows.value()[5].parameter, "q_2");
}

}  // namespace
}  // namespace game
}  // namespace cdt
