// End-to-end integration tests: trace pipeline → mechanism → market,
// cross-module invariants (equilibrium per round, money conservation,
// regret ordering, Theorem-19 bound) on realistic small instances.

#include <cmath>

#include <gtest/gtest.h>

#include "bandit/regret.h"
#include "core/cmab_hs.h"
#include "core/comparison.h"
#include "game/equilibrium.h"
#include "trace/generator.h"
#include "trace/poi.h"
#include "trace/seller_mapping.h"

namespace cdt {
namespace {

TEST(IntegrationTest, TraceToMechanismPipeline) {
  // Build the paper's setup end to end: synthesize the taxi trace, extract
  // L=10 PoIs, derive the seller pool, and run a CDT simulation over it.
  trace::TraceConfig trace_config;
  trace_config.num_records = 8000;
  trace_config.seed = 41;
  auto tr = trace::GenerateTrace(trace_config);
  ASSERT_TRUE(tr.ok());
  auto pois = trace::ExtractPois(tr.value(), 10);
  ASSERT_TRUE(pois.ok());
  auto eligible = trace::MapSellers(tr.value(), pois.value());
  ASSERT_TRUE(eligible.ok());
  auto pool = trace::SelectSellerPool(eligible.value(), 50);
  ASSERT_TRUE(pool.ok());

  core::MechanismConfig config;
  config.num_sellers = static_cast<int>(pool.value().size());
  config.num_selected = 5;
  config.num_pois = 10;
  config.num_rounds = 100;
  config.seed = trace_config.seed;
  auto run = core::CmabHs::Create(config);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value()->RunAll().ok());
  EXPECT_EQ(run.value()->metrics().rounds(), 100);
  EXPECT_GT(run.value()->metrics().expected_revenue(), 0.0);
}

TEST(IntegrationTest, EveryRoundProfileIsStackelbergEquilibrium) {
  core::MechanismConfig config;
  config.num_sellers = 12;
  config.num_selected = 3;
  config.num_pois = 4;
  config.num_rounds = 25;
  config.seed = 17;
  auto run = core::CmabHs::Create(config);
  ASSERT_TRUE(run.ok());

  int checked = 0;
  ASSERT_TRUE(
      run.value()
          ->RunAll([&](const market::RoundReport& report) {
            if (report.initial_exploration) return;
            // Rebuild the round's game and verify Def. 13 at the reported
            // strategies.
            game::GameConfig game_config;
            const auto& engine = run.value()->engine();
            for (int i : report.selected) {
              game_config.sellers.push_back(
                  engine.config().seller_costs[static_cast<std::size_t>(i)]);
            }
            // The exact estimates the round was priced with (pre-update).
            game_config.qualities = report.game_qualities;
            game_config.platform = engine.config().platform_cost;
            game_config.valuation = engine.config().valuation;
            game_config.consumer_price_bounds =
                engine.config().consumer_price_bounds;
            game_config.collection_price_bounds =
                engine.config().collection_price_bounds;
            game_config.max_sensing_time =
                engine.config().job.round_duration;
            auto solver =
                game::StackelbergSolver::Create(std::move(game_config));
            ASSERT_TRUE(solver.ok());
            game::StrategyProfile profile = solver.value().EvaluateProfile(
                report.consumer_price, report.collection_price, report.tau);
            auto eq = game::CheckEquilibrium(solver.value(), profile);
            ASSERT_TRUE(eq.ok());
            EXPECT_TRUE(eq.value().is_equilibrium)
                << "round " << report.round << " deviator "
                << eq.value().worst_deviator << " gain "
                << eq.value().max_violation;
            ++checked;
          })
          .ok());
  EXPECT_GE(checked, 20);
}

TEST(IntegrationTest, RegretOrderingAcrossAlgorithms) {
  core::MechanismConfig config;
  config.num_sellers = 30;
  config.num_selected = 5;
  config.num_pois = 5;
  config.num_rounds = 1500;
  config.seed = 23;
  auto result = core::RunComparison(config, {});
  ASSERT_TRUE(result.ok());

  double regret_optimal = -1, regret_cmab = -1, regret_random = -1;
  for (const auto& algo : result.value().algorithms) {
    if (algo.name == "optimal") regret_optimal = algo.regret;
    if (algo.name == "cmab-hs") regret_cmab = algo.regret;
    if (algo.name == "random") regret_random = algo.regret;
  }
  EXPECT_NEAR(regret_optimal, 0.0, 1e-6);
  EXPECT_LT(regret_cmab, regret_random);
  // Theorem 19: CMAB-HS regret below the analytic bound.
  EXPECT_LT(regret_cmab, result.value().theorem19_bound);
}

TEST(IntegrationTest, DeltaProfitsShrinkWithMoreRounds) {
  // Δ-PoC decreases as N grows (Fig. 8's headline trend), averaged over
  // the exploitation phase.
  core::MechanismConfig config;
  config.num_sellers = 20;
  config.num_selected = 4;
  config.num_pois = 5;
  config.seed = 31;

  auto delta_at = [&](std::int64_t rounds) {
    config.num_rounds = rounds;
    auto result = core::RunComparison(config, {});
    EXPECT_TRUE(result.ok());
    for (const auto& algo : result.value().algorithms) {
      if (algo.name == "cmab-hs") return algo.delta_consumer;
    }
    return -1.0;
  };
  double small_n = delta_at(100);
  double large_n = delta_at(3000);
  EXPECT_LT(large_n, small_n);
}

TEST(IntegrationTest, MoneyConservationOverFullRun) {
  core::MechanismConfig config;
  config.num_sellers = 10;
  config.num_selected = 3;
  config.num_pois = 3;
  config.num_rounds = 50;
  config.track_transfers = true;
  config.seed = 5;
  auto run = core::CmabHs::Create(config);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value()->RunAll().ok());
  const market::Ledger& ledger = run.value()->engine().ledger();
  EXPECT_NEAR(ledger.NetPosition(), 0.0, 1e-6);
  EXPECT_EQ(ledger.transfers().size(),
            50u /*reward rows*/ + 49u * 3u + 10u /*round-1 payouts*/);
}

}  // namespace
}  // namespace cdt
