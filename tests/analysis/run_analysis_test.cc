#include "analysis/run_analysis.h"

#include <gtest/gtest.h>

#include "core/cmab_hs.h"
#include "market/run_log.h"

namespace cdt {
namespace analysis {
namespace {

market::RunLogRow MakeRow(std::int64_t round, const std::string& selected,
                          double poc = 10.0, double revenue = 5.0) {
  market::RunLogRow row;
  row.round = round;
  row.initial_exploration = round == 1;
  row.selected = selected;
  row.consumer_price = 2.0;
  row.collection_price = 1.0;
  row.total_time = 4.0;
  row.consumer_profit = poc;
  row.platform_profit = 3.0;
  row.seller_profit_total = 1.5;
  row.expected_quality_revenue = revenue;
  row.observed_quality_revenue = revenue - 0.1;
  return row;
}

TEST(SummarizeTest, ErrorsOnEmpty) {
  EXPECT_FALSE(Summarize({}).ok());
}

TEST(SummarizeTest, AggregatesCorrectly) {
  std::vector<market::RunLogRow> rows{MakeRow(1, "0+1", 10.0, 5.0),
                                      MakeRow(2, "0+1", 20.0, 6.0)};
  auto stats = Summarize(rows);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().rounds, 2);
  EXPECT_DOUBLE_EQ(stats.value().total_consumer_profit, 30.0);
  EXPECT_DOUBLE_EQ(stats.value().total_expected_revenue, 11.0);
  EXPECT_NEAR(stats.value().total_observed_revenue, 10.8, 1e-12);
  EXPECT_DOUBLE_EQ(stats.value().mean_consumer_price, 2.0);
  EXPECT_EQ(stats.value().exploration_rounds, 1);
}

TEST(ExtractMetricTest, AllColumns) {
  std::vector<market::RunLogRow> rows{MakeRow(1, "0")};
  EXPECT_DOUBLE_EQ(ExtractMetric(rows, Metric::kConsumerProfit)[0], 10.0);
  EXPECT_DOUBLE_EQ(ExtractMetric(rows, Metric::kPlatformProfit)[0], 3.0);
  EXPECT_DOUBLE_EQ(ExtractMetric(rows, Metric::kSellerProfitTotal)[0], 1.5);
  EXPECT_DOUBLE_EQ(ExtractMetric(rows, Metric::kConsumerPrice)[0], 2.0);
  EXPECT_DOUBLE_EQ(ExtractMetric(rows, Metric::kCollectionPrice)[0], 1.0);
  EXPECT_DOUBLE_EQ(ExtractMetric(rows, Metric::kTotalTime)[0], 4.0);
  EXPECT_DOUBLE_EQ(
      ExtractMetric(rows, Metric::kExpectedQualityRevenue)[0], 5.0);
  EXPECT_DOUBLE_EQ(
      ExtractMetric(rows, Metric::kObservedQualityRevenue)[0], 4.9);
}

TEST(MovingAverageTest, Validation) {
  EXPECT_FALSE(MovingAverage({1.0}, 0).ok());
}

TEST(MovingAverageTest, SmoothsWithPrefixHandling) {
  auto ma = MovingAverage({2.0, 4.0, 6.0, 8.0}, 2);
  ASSERT_TRUE(ma.ok());
  EXPECT_DOUBLE_EQ(ma.value()[0], 2.0);   // prefix of 1
  EXPECT_DOUBLE_EQ(ma.value()[1], 3.0);
  EXPECT_DOUBLE_EQ(ma.value()[2], 5.0);
  EXPECT_DOUBLE_EQ(ma.value()[3], 7.0);
}

TEST(MovingAverageTest, WindowOneIsIdentity) {
  std::vector<double> xs{1.0, 5.0, 2.0};
  auto ma = MovingAverage(xs, 1);
  ASSERT_TRUE(ma.ok());
  EXPECT_EQ(ma.value(), xs);
}

TEST(CumulativeRegretCurveTest, PrefixSums) {
  std::vector<market::RunLogRow> rows{MakeRow(1, "0", 0, 4.0),
                                      MakeRow(2, "0", 0, 5.0),
                                      MakeRow(3, "0", 0, 5.0)};
  auto curve = CumulativeRegretCurve(rows, 5.0);
  ASSERT_TRUE(curve.ok());
  EXPECT_DOUBLE_EQ(curve.value()[0], 1.0);
  EXPECT_DOUBLE_EQ(curve.value()[1], 1.0);
  EXPECT_DOUBLE_EQ(curve.value()[2], 1.0);
  EXPECT_FALSE(CumulativeRegretCurve(rows, 0.0).ok());
}

TEST(ConvergenceTest, DetectsFinalStableStreak) {
  std::vector<market::RunLogRow> rows{
      MakeRow(1, "0+1+2"), MakeRow(2, "1+3"), MakeRow(3, "3+1"),
      MakeRow(4, "1+3"),   MakeRow(5, "1+3")};
  // Rounds 2-5 share the set {1,3} (order ignored) -> converged at 2.
  auto converged = DetectSelectionConvergence(rows, 3);
  ASSERT_TRUE(converged.ok());
  EXPECT_EQ(converged.value(), 2);
}

TEST(ConvergenceTest, ZeroWhenUnstable) {
  std::vector<market::RunLogRow> rows{MakeRow(1, "0"), MakeRow(2, "1"),
                                      MakeRow(3, "0")};
  auto converged = DetectSelectionConvergence(rows, 2);
  ASSERT_TRUE(converged.ok());
  EXPECT_EQ(converged.value(), 0);
}

TEST(ConvergenceTest, Validation) {
  EXPECT_FALSE(DetectSelectionConvergence({MakeRow(1, "0")}, 0).ok());
  EXPECT_FALSE(
      DetectSelectionConvergence({MakeRow(1, "0+x")}, 1).ok());
}

TEST(AnalysisIntegrationTest, EndToEndOverRealRunLog) {
  core::MechanismConfig config;
  config.num_sellers = 8;
  config.num_selected = 2;
  config.num_pois = 3;
  config.num_rounds = 200;
  config.seed = 15;
  auto run = core::CmabHs::Create(config);
  ASSERT_TRUE(run.ok());
  std::vector<market::RunLogRow> rows;
  ASSERT_TRUE(run.value()
                  ->RunAll([&](const market::RoundReport& report) {
                    rows.push_back(market::ToRunLogRow(report));
                  })
                  .ok());
  auto stats = Summarize(rows);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().rounds, 200);
  EXPECT_EQ(stats.value().exploration_rounds, 1);
  EXPECT_NEAR(stats.value().total_expected_revenue,
              run.value()->metrics().expected_revenue(), 1e-6);

  // Regret from the log matches the in-memory tracker.
  double optimal_round =
      run.value()->environment().OptimalSetQuality(2) * 3;
  auto curve = CumulativeRegretCurve(
      std::vector<market::RunLogRow>(rows.begin(), rows.end()),
      optimal_round);
  ASSERT_TRUE(curve.ok());
  EXPECT_NEAR(curve.value().back(), run.value()->metrics().regret(), 1e-6);

  // The selection eventually stabilises on this easy instance.
  auto converged = DetectSelectionConvergence(rows, 20);
  ASSERT_TRUE(converged.ok());
}

}  // namespace
}  // namespace analysis
}  // namespace cdt
