#include "util/csv.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

namespace cdt {
namespace util {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  auto row = ParseCsvLine("a,b,c");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, EmptyFields) {
  auto row = ParseCsvLine(",x,");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"", "x", ""}));
}

TEST(ParseCsvLineTest, QuotedFieldWithDelimiter) {
  auto row = ParseCsvLine("\"a,b\",c");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"a,b", "c"}));
}

TEST(ParseCsvLineTest, EscapedQuote) {
  auto row = ParseCsvLine("\"he said \"\"hi\"\"\",x");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"he said \"hi\"", "x"}));
}

TEST(ParseCsvLineTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsvLine("\"abc").ok());
}

TEST(ParseCsvLineTest, RejectsMidFieldQuote) {
  EXPECT_FALSE(ParseCsvLine("ab\"c\",x").ok());
}

TEST(FormatCsvLineTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(FormatCsvLine({"a", "b"}), "a,b");
  EXPECT_EQ(FormatCsvLine({"a,b", "c\"d"}), "\"a,b\",\"c\"\"d\"");
}

TEST(FormatCsvLineTest, RoundTripsThroughParse) {
  CsvRow original{"plain", "with,comma", "with\"quote", ""};
  auto parsed = ParseCsvLine(FormatCsvLine(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), original);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("cdt_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(CsvFileTest, WriteThenReadRoundTrip) {
  CsvTable table;
  table.header = {"id", "name"};
  table.rows = {{"1", "alpha"}, {"2", "beta,comma"}};
  ASSERT_TRUE(WriteCsvFile(path_.string(), table).ok());

  auto loaded = ReadCsvFile(path_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().header, table.header);
  EXPECT_EQ(loaded.value().rows, table.rows);
}

TEST_F(CsvFileTest, ColumnIndexLookup) {
  CsvTable table;
  table.header = {"x", "y", "z"};
  EXPECT_EQ(table.ColumnIndex("y").value(), 1u);
  EXPECT_FALSE(table.ColumnIndex("w").ok());
}

TEST_F(CsvFileTest, RejectsMissingFile) {
  EXPECT_FALSE(ReadCsvFile("/nonexistent/dir/file.csv").ok());
}

TEST_F(CsvFileTest, RejectsRaggedRows) {
  {
    std::ofstream out(path_);
    out << "a,b\n1,2\n3\n";
  }
  EXPECT_FALSE(ReadCsvFile(path_.string()).ok());
}

TEST_F(CsvFileTest, RejectsEmptyFile) {
  { std::ofstream out(path_); }
  auto loaded = ReadCsvFile(path_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("no header"), std::string::npos)
      << loaded.status().ToString();
}

TEST_F(CsvFileTest, HeaderOnlyFileYieldsNoRows) {
  {
    std::ofstream out(path_);
    out << "a,b,c\n";
  }
  auto loaded = ReadCsvFile(path_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().header.size(), 3u);
  EXPECT_TRUE(loaded.value().rows.empty());
}

TEST_F(CsvFileTest, RejectsUnterminatedQuoteWithLineNumber) {
  {
    std::ofstream out(path_);
    out << "a,b\n\"unterminated,2\n";
  }
  auto loaded = ReadCsvFile(path_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
      << loaded.status().ToString();
}

}  // namespace
}  // namespace util
}  // namespace cdt
