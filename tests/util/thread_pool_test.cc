#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cdt {
namespace util {
namespace {

TEST(ThreadPoolTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultJobs(), 1);
}

TEST(ThreadPoolTest, JobsAreClampedToAtLeastOne) {
  EXPECT_EQ(ThreadPool(0).jobs(), 1);
  EXPECT_EQ(ThreadPool(-3).jobs(), 1);
  EXPECT_EQ(ThreadPool(4).jobs(), 4);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  Status st = pool.ParallelFor(5, 5, [&](std::size_t) {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  Status st = pool.ParallelFor(0, kCount, [&](std::size_t i) {
    ++hits[i];
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  Status st = pool.ParallelFor(0, 1000, [&](std::size_t) {
    ++total;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPoolTest, JobsOneRunsInlineOnCallingThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  Status st = pool.ParallelFor(0, 8, [&](std::size_t) {
    seen.insert(std::this_thread::get_id());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

TEST(ThreadPoolTest, PropagatesLowestFailingIndex) {
  // The lowest failing index is always popped (FIFO) before any other
  // failure can mark the loop failed, so its status wins deterministically.
  ThreadPool pool(4);
  Status st = pool.ParallelFor(0, 100, [&](std::size_t i) {
    if (i == 3 || i == 7 || i == 50) {
      return Status::InvalidArgument("bad index " + std::to_string(i));
    }
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad index 3");
}

TEST(ThreadPoolTest, SerialErrorShortCircuits) {
  ThreadPool pool(1);
  std::atomic<int> calls{0};
  Status st = pool.ParallelFor(0, 10, [&](std::size_t i) {
    ++calls;
    if (i == 2) return Status::Internal("stop");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "stop");
  EXPECT_EQ(calls.load(), 3);  // 0, 1, 2 then stop
}

TEST(ThreadPoolTest, ExceptionBecomesInternalStatus) {
  ThreadPool pool(4);
  Status st = pool.ParallelFor(0, 16, [&](std::size_t i) -> Status {
    if (i == 5) throw std::runtime_error("boom");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("threw"), std::string::npos);
  EXPECT_NE(st.message().find("boom"), std::string::npos);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  // A body that re-enters the pool must not wait on its own worker slot;
  // nested calls run inline on the worker thread.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  Status st = pool.ParallelFor(0, 4, [&](std::size_t) {
    return pool.ParallelFor(0, 8, [&](std::size_t) {
      ++total;
      return Status::OK();
    });
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, NestedErrorPropagatesThroughOuterLoop) {
  ThreadPool pool(2);
  Status st = pool.ParallelFor(0, 4, [&](std::size_t outer) {
    return pool.ParallelFor(0, 4, [&](std::size_t inner) {
      if (outer == 0 && inner == 2) {
        return Status::FailedPrecondition("inner failure");
      }
      return Status::OK();
    });
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "inner failure");
}

TEST(ThreadPoolTest, SubmitReturnsFutureResult) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitRunsInlineWhenSerial) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  auto future = pool.Submit([] { return std::this_thread::get_id(); });
  EXPECT_EQ(future.get(), caller);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("bad"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossLoops) {
  ThreadPool pool(3);
  for (int iteration = 0; iteration < 5; ++iteration) {
    std::atomic<int> total{0};
    Status st = pool.ParallelFor(0, 20, [&](std::size_t) {
      ++total;
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(total.load(), 20);
  }
}

}  // namespace
}  // namespace util
}  // namespace cdt
