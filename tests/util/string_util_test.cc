#include "util/string_util.h"

#include <gtest/gtest.h>

namespace cdt {
namespace util {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "", "z"};
  EXPECT_EQ(Split(Join(parts, ';'), ';'), parts);
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(PrefixSuffixTest, StartsAndEndsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(EndsWith("table.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(ToLowerTest, LowersAscii) {
  EXPECT_EQ(ToLower("MiXeD123"), "mixed123");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3").value(), -1e-3);
  EXPECT_DOUBLE_EQ(ParseDouble("  7 ").value(), 7.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("nan").ok());
}

TEST(ParseIntTest, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-7").value(), -7);
  EXPECT_EQ(ParseInt(" 100 ").value(), 100);
}

TEST(ParseIntTest, RejectsGarbageAndOverflow) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12.5").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace util
}  // namespace cdt
