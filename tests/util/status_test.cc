#include "util/status.h"

#include <gtest/gtest.h>

namespace cdt {
namespace util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::IoError("disk"); };
  auto outer = [&]() -> Status {
    CDT_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace util
}  // namespace cdt
