#include "util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cdt {
namespace util {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"N", "revenue"});
  tp.AddRow({"5000", "1.5"});
  tp.AddRow({"100000", "123456.75"});
  std::ostringstream os;
  tp.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("N"), std::string::npos);
  EXPECT_NE(out.find("100000"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(tp.num_rows(), 2u);
}

TEST(TablePrinterTest, NumericRowFormatsWithPrecision) {
  TablePrinter tp({"a", "b"});
  tp.AddNumericRow({1.23456, 2.0}, 2);
  std::ostringstream os;
  tp.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1.23,2.00\n");
}

TEST(TablePrinterDeathTest, RejectsWidthMismatch) {
  TablePrinter tp({"one", "two"});
  EXPECT_DEATH(tp.AddRow({"only-one"}), "row width");
}

}  // namespace
}  // namespace util
}  // namespace cdt
