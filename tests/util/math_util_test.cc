#include "util/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cdt {
namespace util {
namespace {

TEST(IntervalTest, ContainsAndClamp) {
  Interval box{1.0, 5.0};
  EXPECT_TRUE(box.valid());
  EXPECT_TRUE(box.Contains(1.0));
  EXPECT_TRUE(box.Contains(5.0));
  EXPECT_FALSE(box.Contains(0.999));
  EXPECT_DOUBLE_EQ(box.Clamp(0.0), 1.0);
  EXPECT_DOUBLE_EQ(box.Clamp(9.0), 5.0);
  EXPECT_DOUBLE_EQ(box.Clamp(3.0), 3.0);
  EXPECT_DOUBLE_EQ(box.width(), 4.0);
}

TEST(IntervalTest, InvalidWhenReversed) {
  Interval box{2.0, 1.0};
  EXPECT_FALSE(box.valid());
}

TEST(AlmostEqualTest, RelativeAndAbsolute) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_TRUE(AlmostEqual(1e12, 1e12 * (1 + 1e-10)));
  EXPECT_TRUE(AlmostEqual(0.0, 1e-12));
}

TEST(SolveQuadraticTest, TwoRealRootsAscending) {
  // (x-1)(x-3) = x^2 - 4x + 3
  auto roots = SolveQuadratic(1.0, -4.0, 3.0);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(roots[0], 1.0, 1e-12);
  EXPECT_NEAR(roots[1], 3.0, 1e-12);
}

TEST(SolveQuadraticTest, DoubleRoot) {
  auto roots = SolveQuadratic(1.0, -2.0, 1.0);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 1.0, 1e-12);
}

TEST(SolveQuadraticTest, NoRealRoots) {
  EXPECT_TRUE(SolveQuadratic(1.0, 0.0, 1.0).empty());
}

TEST(SolveQuadraticTest, LinearFallback) {
  auto roots = SolveQuadratic(0.0, 2.0, -4.0);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0], 2.0, 1e-12);
}

TEST(SolveQuadraticTest, NumericallyStableForSmallRoot) {
  // x^2 - (1e8 + 1e-8)x + 1: roots ~1e8 and ~1e-8; the naive formula loses
  // the small root to cancellation.
  auto roots = SolveQuadratic(1.0, -(1e8 + 1e-8), 1.0);
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_NEAR(roots[0], 1e-8, 1e-14);
  EXPECT_NEAR(roots[1], 1e8, 1.0);
}

TEST(LinspaceTest, EvenSpacingWithExactEndpoints) {
  auto grid = Linspace(0.0, 1.0, 5);
  ASSERT_TRUE(grid.ok());
  ASSERT_EQ(grid.value().size(), 5u);
  EXPECT_DOUBLE_EQ(grid.value().front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.value().back(), 1.0);
  EXPECT_DOUBLE_EQ(grid.value()[2], 0.5);
}

TEST(LinspaceTest, RejectsTooFewPoints) {
  EXPECT_FALSE(Linspace(0.0, 1.0, 1).ok());
}

TEST(GoldenSectionMaxTest, FindsParabolaPeak) {
  auto [x, v] = GoldenSectionMax(
      [](double t) { return -(t - 2.5) * (t - 2.5) + 7.0; }, 0.0, 10.0);
  EXPECT_NEAR(x, 2.5, 1e-7);
  EXPECT_NEAR(v, 7.0, 1e-12);
}

TEST(GoldenSectionMaxTest, HandlesEndpointMaximum) {
  auto [x, v] = GoldenSectionMax([](double t) { return t; }, 0.0, 4.0);
  EXPECT_NEAR(x, 4.0, 1e-6);
  EXPECT_NEAR(v, 4.0, 1e-6);
}

}  // namespace
}  // namespace util
}  // namespace cdt
