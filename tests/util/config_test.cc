#include "util/config.h"

#include <gtest/gtest.h>

namespace cdt {
namespace util {
namespace {

TEST(ConfigMapTest, ParsesArgsWithDashes) {
  const char* argv[] = {"prog", "--n=100", "-k=5", "name=test"};
  auto config = ConfigMap::FromArgs(4, argv);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().GetInt("n", 0).value(), 100);
  EXPECT_EQ(config.value().GetInt("k", 0).value(), 5);
  EXPECT_EQ(config.value().GetString("name", "").value(), "test");
}

TEST(ConfigMapTest, RejectsMissingEquals) {
  const char* argv[] = {"prog", "--verbose"};
  EXPECT_FALSE(ConfigMap::FromArgs(2, argv).ok());
}

TEST(ConfigMapTest, ParsesLinesSkippingComments) {
  auto config = ConfigMap::FromLines({"# comment", "", "omega = 1000",
                                      "theta=0.1"});
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config.value().GetDouble("omega", 0).value(), 1000.0);
  EXPECT_DOUBLE_EQ(config.value().GetDouble("theta", 0).value(), 0.1);
}

TEST(ConfigMapTest, FallbacksWhenAbsent) {
  ConfigMap config;
  EXPECT_EQ(config.GetInt("missing", 7).value(), 7);
  EXPECT_DOUBLE_EQ(config.GetDouble("missing", 1.5).value(), 1.5);
  EXPECT_EQ(config.GetString("missing", "dflt").value(), "dflt");
  EXPECT_TRUE(config.GetBool("missing", true).value());
}

TEST(ConfigMapTest, MalformedValueIsHardError) {
  ConfigMap config;
  config.Set("n", "abc");
  EXPECT_FALSE(config.GetInt("n", 0).ok());
  config.Set("x", "1.2.3");
  EXPECT_FALSE(config.GetDouble("x", 0.0).ok());
  config.Set("b", "maybe");
  EXPECT_FALSE(config.GetBool("b", false).ok());
}

TEST(ConfigMapTest, BooleanSpellings) {
  ConfigMap config;
  for (const char* t : {"true", "1", "yes", "on", "TRUE"}) {
    config.Set("b", t);
    EXPECT_TRUE(config.GetBool("b", false).value()) << t;
  }
  for (const char* f : {"false", "0", "no", "off", "False"}) {
    config.Set("b", f);
    EXPECT_FALSE(config.GetBool("b", true).value()) << f;
  }
}

TEST(ConfigMapTest, LaterSetOverwrites) {
  ConfigMap config;
  config.Set("k", "1");
  config.Set("k", "2");
  EXPECT_EQ(config.GetInt("k", 0).value(), 2);
  EXPECT_EQ(config.size(), 1u);
}

}  // namespace
}  // namespace util
}  // namespace cdt
