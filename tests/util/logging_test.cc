#include "util/logging.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace cdt {
namespace util {
namespace {

/// Installs a capturing sink for the test's lifetime, restoring the
/// previous sink (and the log level) on destruction.
class SinkCapture {
 public:
  SinkCapture() : saved_level_(GetLogLevel()) {
    previous_ = SetLogSink([this](LogLevel level, const std::string& line) {
      records_.emplace_back(level, line);
    });
  }
  ~SinkCapture() {
    SetLogSink(std::move(previous_));
    SetLogLevel(saved_level_);
  }

  const std::vector<std::pair<LogLevel, std::string>>& records() const {
    return records_;
  }

 private:
  LogLevel saved_level_;
  LogSink previous_;
  std::vector<std::pair<LogLevel, std::string>> records_;
};

TEST(LoggingTest, SinkReceivesFormattedRecords) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kInfo);
  CDT_LOG(Info) << "selected " << 3 << " sellers";
  ASSERT_EQ(capture.records().size(), 1u);
  EXPECT_EQ(capture.records()[0].first, LogLevel::kInfo);
  const std::string& line = capture.records()[0].second;
  EXPECT_NE(line.find("[INFO "), std::string::npos);
  EXPECT_NE(line.find("logging_test.cc:"), std::string::npos);
  EXPECT_NE(line.find("selected 3 sellers"), std::string::npos);
  EXPECT_TRUE(line.empty() || line.back() != '\n');  // no trailing newline
}

TEST(LoggingTest, ThresholdStillFiltersBeforeTheSink) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kError);
  CDT_LOG(Warning) << "suppressed";
  CDT_LOG(Error) << "delivered";
  ASSERT_EQ(capture.records().size(), 1u);
  EXPECT_EQ(capture.records()[0].first, LogLevel::kError);
}

TEST(LoggingTest, SetLogSinkReturnsThePreviousSink) {
  std::vector<std::string> first_lines;
  LogSink original = SetLogSink(
      [&](LogLevel, const std::string& line) { first_lines.push_back(line); });

  std::vector<std::string> second_lines;
  LogSink first = SetLogSink(
      [&](LogLevel, const std::string& line) { second_lines.push_back(line); });
  EXPECT_TRUE(static_cast<bool>(first));

  SetLogLevel(LogLevel::kInfo);
  CDT_LOG(Info) << "to second";
  EXPECT_TRUE(first_lines.empty());
  ASSERT_EQ(second_lines.size(), 1u);

  // Re-install the first sink from the returned handle; it works again.
  SetLogSink(std::move(first));
  CDT_LOG(Info) << "to first";
  ASSERT_EQ(first_lines.size(), 1u);
  EXPECT_EQ(second_lines.size(), 1u);

  SetLogSink(std::move(original));
  SetLogLevel(LogLevel::kWarning);
}

TEST(LoggingTest, NullSinkRestoresTheDefault) {
  // Install-then-clear must leave logging functional (writes to stderr)
  // and the cleared state must report no previous custom sink.
  std::vector<std::string> lines;
  SetLogSink([&](LogLevel, const std::string& line) { lines.push_back(line); });
  LogSink removed = SetLogSink(nullptr);
  EXPECT_TRUE(static_cast<bool>(removed));
  LogSink none = SetLogSink(nullptr);
  EXPECT_FALSE(static_cast<bool>(none));
  EXPECT_TRUE(lines.empty());
}

}  // namespace
}  // namespace util
}  // namespace cdt
