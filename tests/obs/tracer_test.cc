#include "obs/tracer.h"

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace cdt {
namespace obs {
namespace {

TEST(TracerTest, RecordsAndSnapshotsOldestFirst) {
  Tracer tracer(8);
  tracer.Record("a", 10, 20);
  tracer.Record("b", 30, 45);
  std::vector<SpanEvent> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "a");
  EXPECT_EQ(spans[0].start_ns, 10);
  EXPECT_EQ(spans[0].duration_ns(), 10);
  EXPECT_STREQ(spans[1].name, "b");
  EXPECT_EQ(spans[1].duration_ns(), 15);
  EXPECT_EQ(tracer.total_recorded(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, RingWrapKeepsTheNewestWindow) {
  Tracer tracer(4);
  for (int i = 0; i < 7; ++i) {
    tracer.Record("s", i, i + 1);
  }
  std::vector<SpanEvent> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Spans 0..2 were evicted; 3..6 retained, oldest first.
  EXPECT_EQ(spans.front().start_ns, 3);
  EXPECT_EQ(spans.back().start_ns, 6);
  EXPECT_EQ(tracer.total_recorded(), 7u);
  EXPECT_EQ(tracer.dropped(), 3u);
}

TEST(TracerTest, ClearForgetsEverything) {
  Tracer tracer(4);
  tracer.Record("s", 0, 1);
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ScopedSpanTest, TestConstructorRecordsUnconditionally) {
  Tracer tracer(8);
  {
    ScopedSpan span("scoped", &tracer);
  }
  std::vector<SpanEvent> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "scoped");
  EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
  EXPECT_EQ(spans[0].tid, CurrentThreadId());
}

TEST(ScopedSpanTest, FeedsTheLatencyHistogram) {
  Tracer tracer(8);
  Histogram hist({1.0, 10.0});
  {
    ScopedSpan span("timed", &tracer, &hist);
  }
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_GE(hist.sum(), 0.0);
  EXPECT_LT(hist.sum(), 1.0);  // a no-op block lasts well under a second
}

TEST(ScopedSpanTest, DormantGlobalSpanRecordsNothing) {
  ResetForTesting();  // disabled
  {
    CDT_SPAN("dormant");
  }
#if CDT_TELEMETRY
  EXPECT_EQ(tracer().total_recorded(), 0u);
#endif
}

#if CDT_TELEMETRY
TEST(ScopedSpanTest, ArmedGlobalSpanRecords) {
  ResetForTesting();
  Enable();
  {
    CDT_SPAN("armed");
  }
  Disable();
  std::vector<SpanEvent> spans = tracer().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "armed");
  ResetForTesting();
}
#endif

TEST(TracerThreadSafetyTest, ConcurrentProducersLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;
  Tracer tracer(1 << 12);  // smaller than the total: wrap under contention
  std::vector<std::thread> threads;
  std::vector<std::uint32_t> tids(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, &tids, t] {
      tids[static_cast<std::size_t>(t)] = CurrentThreadId();
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("worker", &tracer);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(tracer.total_recorded(),
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  std::vector<SpanEvent> spans = tracer.Snapshot();
  EXPECT_EQ(spans.size(), tracer.capacity());
  EXPECT_EQ(tracer.dropped(),
            tracer.total_recorded() - tracer.capacity());
  for (const SpanEvent& s : spans) {
    EXPECT_STREQ(s.name, "worker");
    EXPECT_GE(s.end_ns, s.start_ns);
  }
  // Thread ids are process-unique.
  std::set<std::uint32_t> unique(tids.begin(), tids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
}

}  // namespace
}  // namespace obs
}  // namespace cdt
