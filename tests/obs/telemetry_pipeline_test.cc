// End-to-end telemetry tests over the real trading pipeline: runtime
// enablement must never perturb the economics (bit-identical reports), and
// an armed run must populate the span tracer and the metric catalogue that
// docs/OBSERVABILITY.md promises.

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cmab_hs.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace cdt {
namespace obs {
namespace {

core::MechanismConfig SmallConfig(bool with_faults) {
  core::MechanismConfig config;
  config.num_sellers = 6;
  config.num_selected = 2;
  config.num_pois = 3;
  config.num_rounds = 40;
  config.omega = 100.0;
  config.seed = 20210419;
  if (with_faults) {
    config.faults.default_rate = 0.2;
    config.faults.partial_rate = 0.1;
    config.faults.corrupt_rate = 0.05;
    config.faults.settlement_failure_rate = 0.1;
  }
  return config;
}

/// The full economic outcome of a run, flattened for exact comparison.
std::vector<double> RunEconomics(const core::MechanismConfig& config) {
  auto run = core::CmabHs::Create(config);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  std::vector<double> out;
  util::Status status =
      run.value()->RunAll([&](const market::RoundReport& r) {
        out.push_back(static_cast<double>(r.round));
        out.push_back(r.consumer_price);
        out.push_back(r.collection_price);
        out.push_back(r.total_time);
        out.push_back(r.consumer_profit);
        out.push_back(r.platform_profit);
        out.push_back(r.seller_profit_total);
        out.push_back(r.expected_quality_revenue);
        out.push_back(r.observed_quality_revenue);
        out.push_back(r.degraded ? 1.0 : 0.0);
        out.push_back(r.voided ? 1.0 : 0.0);
        for (int s : r.selected) out.push_back(static_cast<double>(s));
        for (double t : r.tau) out.push_back(t);
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

class TelemetryPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetForTesting(); }
  void TearDown() override { ResetForTesting(); }
};

TEST_F(TelemetryPipelineTest, EnablingTelemetryIsBitIdenticalEconomics) {
  std::vector<double> disabled = RunEconomics(SmallConfig(true));
  Enable();
  std::vector<double> enabled = RunEconomics(SmallConfig(true));
  Disable();
  ASSERT_EQ(disabled.size(), enabled.size());
  // Bit-level equality, not epsilon equality: telemetry must not touch a
  // single FP operation of the pipeline.
  EXPECT_EQ(0, std::memcmp(disabled.data(), enabled.data(),
                           disabled.size() * sizeof(double)));
}

#if CDT_TELEMETRY

TEST_F(TelemetryPipelineTest, ArmedRunRecordsNestedSpans) {
  Enable();
  RunEconomics(SmallConfig(true));
  Disable();
  std::vector<SpanEvent> spans = tracer().Snapshot();
  ASSERT_FALSE(spans.empty());
  std::set<std::string> names;
  for (const SpanEvent& s : spans) names.insert(s.name);
  for (const char* required :
       {"round", "bandit.select", "game.solve", "game.stage1.consumer_price",
        "game.stage2.platform_price", "game.stage3.seller_times",
        "engine.settlement", "engine.collect"}) {
    EXPECT_TRUE(names.count(required)) << "missing span " << required;
  }
  // Nesting: every non-round span lies inside some "round" span on the
  // same thread — that containment is what Perfetto renders as a tree.
  for (const SpanEvent& s : spans) {
    if (std::string(s.name) == "round") continue;
    bool contained = false;
    for (const SpanEvent& r : spans) {
      if (std::string(r.name) == "round" && r.tid == s.tid &&
          r.start_ns <= s.start_ns && s.end_ns <= r.end_ns) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << s.name << " not nested in any round span";
  }
}

TEST_F(TelemetryPipelineTest, ArmedRunPopulatesTheMetricCatalogue) {
  core::MechanismConfig config = SmallConfig(true);
  Enable();
  RunEconomics(config);
  Disable();

  std::vector<MetricsRegistry::MetricSnapshot> all = registry().Collect();
  std::set<std::string> names;
  for (const auto& m : all) names.insert(m.name);
  for (const char* required :
       {"cdt_rounds_total", "cdt_rounds_exploration_total",
        "cdt_rounds_degraded_total", "cdt_rounds_voided_total",
        "cdt_faults_total", "cdt_settlement_retries_total",
        "cdt_regret", "cdt_profit_cumulative", "cdt_ledger_consumer_outflow",
        "cdt_ledger_seller_inflow", "cdt_breaker_open_sellers",
        "cdt_bandit_picks_total", "cdt_bandit_exploration_ratio",
        "cdt_round_latency_seconds", "cdt_bandit_select_seconds",
        "cdt_stage_solve_seconds"}) {
    EXPECT_TRUE(names.count(required)) << "missing metric " << required;
  }

  EXPECT_DOUBLE_EQ(
      registry().GetCounter("cdt_rounds_total", "")->value(),
      static_cast<double>(config.num_rounds));
  EXPECT_DOUBLE_EQ(
      registry().GetCounter("cdt_rounds_exploration_total", "")->value(),
      1.0);
  Histogram* latency = registry().GetHistogram(
      "cdt_round_latency_seconds", "", DefaultLatencyBuckets());
  EXPECT_EQ(latency->count(),
            static_cast<std::uint64_t>(config.num_rounds));
  EXPECT_GT(
      registry().GetGauge("cdt_ledger_consumer_outflow", "")->value(), 0.0);
  double ratio =
      registry().GetGauge("cdt_bandit_exploration_ratio", "")->value();
  EXPECT_GE(ratio, 0.0);
  EXPECT_LE(ratio, 1.0);

  // The exports of a real run must be non-empty and structurally sane.
  std::string prom = PrometheusText(registry());
  EXPECT_NE(prom.find("# TYPE cdt_rounds_total counter"), std::string::npos);
  EXPECT_NE(prom.find("cdt_round_latency_seconds_bucket"),
            std::string::npos);
  std::string jsonl = MetricsJsonl(registry());
  EXPECT_NE(jsonl.find("\"name\":\"cdt_rounds_total\""), std::string::npos);
}

TEST_F(TelemetryPipelineTest, DormantEngineTouchesNoGlobals) {
  // Telemetry compiled in but not armed: a full run must record no spans
  // and leave every metric at zero (the TelemetryObserver early-returns).
  RunEconomics(SmallConfig(false));
  EXPECT_EQ(tracer().total_recorded(), 0u);
  for (const auto& m : registry().Collect()) {
    if (m.type == MetricsRegistry::Type::kHistogram) {
      EXPECT_EQ(m.histogram.count, 0u) << m.name;
    } else {
      EXPECT_DOUBLE_EQ(m.value, 0.0) << m.name;
    }
  }
}

#endif  // CDT_TELEMETRY

}  // namespace
}  // namespace obs
}  // namespace cdt
