#include "obs/metrics.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace cdt {
namespace obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(CounterTest, AccumulatesAndIgnoresInvalid) {
  Counter c;
  c.Increment();
  c.Add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.Add(-1.0);   // negative: ignored (counters are monotone)
  c.Add(kNan);   // non-finite: ignored
  c.Add(kInf);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  c.Reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(4.0);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Set(-7.0);  // gauges may go negative
  EXPECT_DOUBLE_EQ(g.value(), -7.0);
}

TEST(HistogramTest, InclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  h.Record(1.0);  // le=1 bucket (inclusive)
  h.Record(1.5);  // le=2
  h.Record(4.0);  // le=4 (inclusive)
  Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 0u);
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 6.5);
}

TEST(HistogramTest, ZeroAndNegativeLandInFirstBucket) {
  Histogram h({1.0, 2.0});
  h.Record(0.0);
  h.Record(-3.0);
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.sum, -3.0);
}

TEST(HistogramTest, AboveMaxBoundLandsInOverflowBucket) {
  Histogram h({1.0, 2.0});
  h.Record(2.0000001);
  h.Record(1e12);
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.counts.back(), 2u);
  EXPECT_EQ(s.count, 2u);
}

TEST(HistogramTest, InfGuardRejectsNonFiniteSamples) {
  Histogram h({1.0});
  h.Record(kNan);
  h.Record(kInf);
  h.Record(-kInf);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.rejected(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);  // sum can never be poisoned
  h.Record(0.5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.rejected(), 3u);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h({1.0});
  h.Record(0.5);
  h.Record(kNan);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.rejected(), 0u);
  Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.counts[0], 0u);
  EXPECT_EQ(s.counts[1], 0u);
}

TEST(LogBucketsTest, GeometricWithExactEndpoints) {
  std::vector<double> b = LogBuckets(1e-3, 10.0, 5);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_DOUBLE_EQ(b.front(), 1e-3);
  EXPECT_DOUBLE_EQ(b.back(), 10.0);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_LT(b[i - 1], b[i]);
    // Constant ratio between consecutive bounds.
    EXPECT_NEAR(b[i] / b[i - 1], b[1] / b[0], 1e-9);
  }
}

TEST(LogBucketsTest, DefaultLatencyBucketsSpanNanosToSeconds) {
  const std::vector<double>& b = DefaultLatencyBuckets();
  ASSERT_EQ(b.size(), 16u);
  EXPECT_DOUBLE_EQ(b.front(), 1e-7);
  EXPECT_DOUBLE_EQ(b.back(), 10.0);
}

TEST(MetricsRegistryTest, SameNameAndLabelsShareTheHandle) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total", "help");
  Counter* b = reg.GetCounter("x_total", "ignored on re-registration");
  EXPECT_EQ(a, b);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistryTest, LabelOrderIsNormalized) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x_total", "h", {{"a", "1"}, {"b", "2"}});
  Counter* b = reg.GetCounter("x_total", "h", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
  Counter* c = reg.GetCounter("x_total", "h", {{"a", "1"}, {"b", "3"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistryTest, CollectIsSortedAndTyped) {
  MetricsRegistry reg;
  reg.GetGauge("zz", "last")->Set(1.0);
  reg.GetCounter("aa", "first")->Add(2.0);
  reg.GetHistogram("mm", "middle", {1.0})->Record(0.5);
  std::vector<MetricsRegistry::MetricSnapshot> out = reg.Collect();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].name, "aa");
  EXPECT_EQ(out[0].type, MetricsRegistry::Type::kCounter);
  EXPECT_DOUBLE_EQ(out[0].value, 2.0);
  EXPECT_EQ(out[1].name, "mm");
  EXPECT_EQ(out[1].type, MetricsRegistry::Type::kHistogram);
  EXPECT_EQ(out[1].histogram.count, 1u);
  EXPECT_EQ(out[2].name, "zz");
  EXPECT_EQ(out[2].type, MetricsRegistry::Type::kGauge);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c_total", "h");
  Histogram* h = reg.GetHistogram("h_seconds", "h", {1.0});
  c->Add(5.0);
  h->Record(0.5);
  reg.Reset();
  EXPECT_DOUBLE_EQ(c->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(reg.GetCounter("c_total", "h"), c);  // same handle survives
}

TEST(MetricsRegistryDeathTest, TypeCollisionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MetricsRegistry reg;
  reg.GetCounter("dual", "h");
  EXPECT_DEATH(reg.GetGauge("dual", "h"), "");
}

}  // namespace
}  // namespace obs
}  // namespace cdt
