#include "obs/exporters.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace cdt {
namespace obs {
namespace {

// Golden files live next to the test sources; regenerate with
//   CDT_REGEN_GOLDEN=1 ./exporters_test
// and re-review the diff — the export formats are a public API.
std::string GoldenPath(const std::string& name) {
  return std::string(CDT_TEST_DATA_DIR) + "/obs/golden/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void CompareToGolden(const std::string& actual, const std::string& name) {
  if (std::getenv("CDT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(name), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open());
    out << actual;
    return;
  }
  EXPECT_EQ(actual, ReadFileOrDie(GoldenPath(name))) << "golden: " << name;
}

/// The deterministic registry content both golden tests export.
void PopulateRegistry(MetricsRegistry* reg) {
  reg->GetCounter("cdt_rounds_total", "Rounds settled by the engine.")
      ->Add(42.0);
  reg->GetCounter("cdt_faults_total", "Fault events by kind.",
                  {{"kind", "default"}})
      ->Add(3.0);
  reg->GetCounter("cdt_faults_total", "Fault events by kind.",
                  {{"kind", "partial"}})
      ->Add(1.0);
  reg->GetGauge("cdt_regret", "Cumulative regret vs the oracle.")
      ->Set(12.625);
  Histogram* h = reg->GetHistogram(
      "cdt_round_latency_seconds", "Round latency.", {0.001, 0.1, 10.0});
  h->Record(0.0005);
  h->Record(0.05);
  h->Record(0.05);
  h->Record(3.0);
  h->Record(1e6);  // overflow bucket
}

TEST(FormatMetricValueTest, IntegralAndShortestRoundTrip) {
  EXPECT_EQ(FormatMetricValue(0.0), "0");
  EXPECT_EQ(FormatMetricValue(42.0), "42");
  EXPECT_EQ(FormatMetricValue(-7.0), "-7");
  EXPECT_EQ(FormatMetricValue(0.1), "0.1");
  EXPECT_EQ(FormatMetricValue(12.625), "12.625");
  EXPECT_EQ(FormatMetricValue(std::numeric_limits<double>::quiet_NaN()),
            "NaN");
  EXPECT_EQ(FormatMetricValue(std::numeric_limits<double>::infinity()),
            "+Inf");
  EXPECT_EQ(FormatMetricValue(-std::numeric_limits<double>::infinity()),
            "-Inf");
  // Shortest representation still parses back to the exact double.
  for (double v : {1.0 / 3.0, 1e-7, 123456.789, 2.5e17}) {
    EXPECT_EQ(std::strtod(FormatMetricValue(v).c_str(), nullptr), v);
  }
}

TEST(PrometheusTextTest, MatchesGolden) {
  MetricsRegistry reg;
  PopulateRegistry(&reg);
  CompareToGolden(PrometheusText(reg), "metrics.prom.golden");
}

TEST(MetricsJsonlTest, MatchesGolden) {
  MetricsRegistry reg;
  PopulateRegistry(&reg);
  CompareToGolden(MetricsJsonl(reg), "metrics.jsonl.golden");
}

TEST(ChromeTraceJsonTest, MatchesGolden) {
  std::vector<SpanEvent> events;
  events.push_back({"round", 1, 1000, 14500});
  events.push_back({"bandit.select", 1, 1500, 2750});
  events.push_back({"game.solve", 2, 3000, 9000});
  CompareToGolden(ChromeTraceJson(events), "trace.json.golden");
}

TEST(ChromeTraceJsonTest, EscapesAndMicrosecondUnits) {
  std::vector<SpanEvent> events;
  events.push_back({"quo\"te", 7, 2500, 4000});
  std::string json = ChromeTraceJson(events);
  EXPECT_NE(json.find("\"name\":\"quo\\\"te\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.500"), std::string::npos);   // ns -> us
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(WriteExportersTest, WritesFilesAndFailsOnBadPath) {
  MetricsRegistry reg;
  PopulateRegistry(&reg);
  Tracer tracer(8);
  tracer.Record("x", 0, 1000);

  std::string dir = ::testing::TempDir();
  EXPECT_TRUE(WritePrometheusText(reg, dir + "/m.prom").ok());
  EXPECT_TRUE(WriteMetricsJsonl(reg, dir + "/m.jsonl").ok());
  EXPECT_TRUE(WriteChromeTrace(tracer, dir + "/t.json").ok());
  EXPECT_EQ(ReadFileOrDie(dir + "/m.prom"), PrometheusText(reg));

  EXPECT_FALSE(
      WritePrometheusText(reg, "/nonexistent-dir/metrics.prom").ok());
}

}  // namespace
}  // namespace obs
}  // namespace cdt
