// Regression test for the parallel experiment runtime: running the same
// comparison or sweep with any job count must produce bit-identical
// results — every policy run and sweep point is an independent,
// identically seeded simulation, so parallelism may only change wall
// clock, never output.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/comparison.h"
#include "sim/series.h"
#include "sim/sweep.h"
#include "stats/rng.h"
#include "util/csv.h"

namespace cdt {
namespace core {
namespace {

MechanismConfig SmallConfig() {
  MechanismConfig config;
  config.num_sellers = 20;
  config.num_selected = 5;
  config.num_rounds = 200;
  config.seed = 424242;
  return config;
}

util::Result<ComparisonResult> RunWithJobs(int jobs) {
  ComparisonOptions options;
  options.checkpoints = {50, 100, 200};
  options.compute_deltas = true;
  options.jobs = jobs;
  return RunComparison(SmallConfig(), options);
}

void ExpectBitIdentical(const AlgorithmResult& a, const AlgorithmResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.expected_revenue, b.expected_revenue);
  EXPECT_EQ(a.observed_revenue, b.observed_revenue);
  EXPECT_EQ(a.regret, b.regret);
  EXPECT_EQ(a.mean_consumer_profit, b.mean_consumer_profit);
  EXPECT_EQ(a.mean_platform_profit, b.mean_platform_profit);
  EXPECT_EQ(a.mean_seller_profit_total, b.mean_seller_profit_total);
  EXPECT_EQ(a.mean_seller_profit_each, b.mean_seller_profit_each);
  EXPECT_EQ(a.delta_consumer, b.delta_consumer);
  EXPECT_EQ(a.delta_platform, b.delta_platform);
  EXPECT_EQ(a.delta_seller, b.delta_seller);
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  for (std::size_t c = 0; c < a.checkpoints.size(); ++c) {
    EXPECT_EQ(a.checkpoints[c].round, b.checkpoints[c].round);
    EXPECT_EQ(a.checkpoints[c].expected_revenue,
              b.checkpoints[c].expected_revenue);
    EXPECT_EQ(a.checkpoints[c].observed_revenue,
              b.checkpoints[c].observed_revenue);
    EXPECT_EQ(a.checkpoints[c].regret, b.checkpoints[c].regret);
    EXPECT_EQ(a.checkpoints[c].mean_consumer_profit,
              b.checkpoints[c].mean_consumer_profit);
    EXPECT_EQ(a.checkpoints[c].mean_platform_profit,
              b.checkpoints[c].mean_platform_profit);
    EXPECT_EQ(a.checkpoints[c].mean_seller_profit_total,
              b.checkpoints[c].mean_seller_profit_total);
    EXPECT_EQ(a.checkpoints[c].mean_seller_profit_each,
              b.checkpoints[c].mean_seller_profit_each);
  }
}

TEST(ParallelDeterminismTest, ComparisonIsBitIdenticalAcrossJobCounts) {
  auto serial = RunWithJobs(1);
  auto parallel = RunWithJobs(8);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(serial.value().algorithms.size(),
            parallel.value().algorithms.size());
  for (std::size_t i = 0; i < serial.value().algorithms.size(); ++i) {
    ExpectBitIdentical(serial.value().algorithms[i],
                       parallel.value().algorithms[i]);
  }
  EXPECT_EQ(serial.value().gaps.delta_min, parallel.value().gaps.delta_min);
  EXPECT_EQ(serial.value().gaps.delta_max, parallel.value().gaps.delta_max);
  EXPECT_EQ(serial.value().theorem19_bound,
            parallel.value().theorem19_bound);
}

// A sweep body whose value depends only on the point index (derived seed),
// mirroring how every figure harness derives per-point state.
util::Result<double> SweepPoint(std::size_t i) {
  stats::Xoshiro256 rng(1000003ULL * (i + 1));
  double total = 0.0;
  for (int draw = 0; draw < 100; ++draw) total += rng.NextDouble(0.0, 1.0);
  return total;
}

TEST(ParallelDeterminismTest, SweepPreservesIndexOrderAndValues) {
  auto serial = sim::RunSweep(32, 1, SweepPoint);
  auto parallel = sim::RunSweep(32, 8, SweepPoint);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial.value().size(), 32u);
  ASSERT_EQ(parallel.value().size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    // Slot i holds exactly point i's value regardless of completion order.
    EXPECT_EQ(serial.value()[i], SweepPoint(i).value());
    EXPECT_EQ(parallel.value()[i], serial.value()[i]);
  }
}

TEST(ParallelDeterminismTest, SweepPropagatesPointFailure) {
  auto result = sim::RunSweep(16, 4, [](std::size_t i) -> util::Result<int> {
    if (i == 5) return util::Status::InvalidArgument("point 5 is broken");
    return static_cast<int>(i);
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(result.status().message(), "point 5 is broken");
}

TEST(ParallelDeterminismTest, CsvRowsAreBitIdenticalAcrossJobCounts) {
  auto make_csv = [](int jobs) {
    auto values = sim::RunSweep(20, jobs, SweepPoint);
    sim::FigureData fig("determinism", "determinism", "i", "value");
    sim::Series* series = fig.AddSeries("sweep");
    for (std::size_t i = 0; i < values.value().size(); ++i) {
      series->Add(static_cast<double>(i), values.value()[i]);
    }
    util::CsvTable table = fig.ToCsvLong();
    std::vector<std::string> lines;
    lines.push_back(util::FormatCsvLine(table.header));
    for (const util::CsvRow& row : table.rows) {
      lines.push_back(util::FormatCsvLine(row));
    }
    return lines;
  };
  EXPECT_EQ(make_csv(1), make_csv(8));
}

}  // namespace
}  // namespace core
}  // namespace cdt
