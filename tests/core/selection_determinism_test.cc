// Determinism suite for the selection-path split: the optimized path (SoA
// bank + lazy top-K + kink reuse) and the reference path (full Eq. 19 scan
// + partial_sort) must produce byte-identical economics. Runs the fig07 and
// fig09 evaluation configs plus a 1e4-arm synthetic campaign through both
// paths and asserts every AlgorithmResult field — and the CSV rows derived
// from them — bit for bit.

#include "core/comparison.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv.h"

namespace cdt {
namespace core {
namespace {

std::string Format17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

// One CSV row per algorithm, every double at full precision, so a single
// flipped bit anywhere in the economics shows up as a string mismatch.
std::string ResultCsvRow(const AlgorithmResult& algo) {
  util::CsvRow row{algo.name,
                   Format17(algo.expected_revenue),
                   Format17(algo.observed_revenue),
                   Format17(algo.regret),
                   Format17(algo.mean_consumer_profit),
                   Format17(algo.mean_platform_profit),
                   Format17(algo.mean_seller_profit_total),
                   Format17(algo.mean_seller_profit_each),
                   Format17(algo.delta_consumer),
                   Format17(algo.delta_platform),
                   Format17(algo.delta_seller)};
  for (const MetricsCheckpoint& cp : algo.checkpoints) {
    row.push_back(std::to_string(cp.round));
    row.push_back(Format17(cp.expected_revenue));
    row.push_back(Format17(cp.observed_revenue));
    row.push_back(Format17(cp.regret));
    row.push_back(Format17(cp.mean_consumer_profit));
    row.push_back(Format17(cp.mean_platform_profit));
    row.push_back(Format17(cp.mean_seller_profit_total));
    row.push_back(Format17(cp.mean_seller_profit_each));
  }
  return util::FormatCsvLine(row);
}

void ExpectBitIdentical(const MechanismConfig& base,
                        const ComparisonOptions& options) {
  MechanismConfig optimized = base;
  optimized.reference_selection_path = false;
  MechanismConfig reference = base;
  reference.reference_selection_path = true;

  auto lhs = RunComparison(optimized, options);
  auto rhs = RunComparison(reference, options);
  ASSERT_TRUE(lhs.ok()) << lhs.status().ToString();
  ASSERT_TRUE(rhs.ok()) << rhs.status().ToString();

  const auto& a = lhs.value().algorithms;
  const auto& b = rhs.value().algorithms;
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(ResultCsvRow(a[i]), ResultCsvRow(b[i])) << a[i].name;
  }
  EXPECT_EQ(Format17(lhs.value().gaps.delta_min),
            Format17(rhs.value().gaps.delta_min));
  EXPECT_EQ(Format17(lhs.value().gaps.delta_max),
            Format17(rhs.value().gaps.delta_max));
  EXPECT_EQ(Format17(lhs.value().theorem19_bound),
            Format17(rhs.value().theorem19_bound));
}

TEST(SelectionDeterminismTest, Fig07ConfigBothPathsBitIdentical) {
  // Fig. 7 shape: Table-II economics at reduced horizon, with checkpoints
  // so mid-campaign state is pinned too, not just the final tallies.
  MechanismConfig config;
  config.num_sellers = 300;
  config.num_selected = 10;
  config.num_pois = 10;
  config.num_rounds = 400;
  config.seed = 7;
  ComparisonOptions options;
  options.checkpoints = {100, 250, 400};
  ExpectBitIdentical(config, options);
}

TEST(SelectionDeterminismTest, Fig09ConfigBothPathsBitIdentical) {
  // Fig. 9 shape: larger pool, same K, different seed/horizon.
  MechanismConfig config;
  config.num_sellers = 500;
  config.num_selected = 10;
  config.num_pois = 10;
  config.num_rounds = 300;
  config.seed = 9;
  ComparisonOptions options;
  options.checkpoints = {150, 300};
  ExpectBitIdentical(config, options);
}

TEST(SelectionDeterminismTest, TenThousandArmSyntheticBitIdentical) {
  // Large-M synthetic: K ~ sqrt(M). Round 1 observes all 10^4 arms, so the
  // lazy selector starts from a fully invalidated bank; the remaining
  // rounds exercise the steady-state incremental path. Only CMAB-HS is run
  // (the policy whose selection path forked); deltas off to keep the
  // runtime down.
  MechanismConfig config;
  config.num_sellers = 10000;
  config.num_selected = 100;
  config.num_pois = 4;
  config.num_rounds = 25;
  config.seed = 10007;
  config.check_invariants = false;
  ComparisonOptions options;
  options.policies = {{PolicyKind::kCmabHs, 0.0}};
  options.compute_deltas = false;
  options.checkpoints = {10, 25};
  ExpectBitIdentical(config, options);
}

}  // namespace
}  // namespace core
}  // namespace cdt
