#include "core/comparison.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cdt {
namespace core {
namespace {

MechanismConfig SmallConfig(std::int64_t rounds = 300) {
  MechanismConfig config;
  config.num_sellers = 20;
  config.num_selected = 4;
  config.num_pois = 5;
  config.num_rounds = rounds;
  config.seed = 9;
  return config;
}

TEST(RunComparisonTest, RunsDefaultAlgorithmSet) {
  ComparisonOptions options;
  auto result = RunComparison(SmallConfig(), options);
  ASSERT_TRUE(result.ok());
  // optimal + cmab-hs + 0.1-first + 0.5-first + random
  ASSERT_EQ(result.value().algorithms.size(), 5u);
  EXPECT_EQ(result.value().algorithms[0].name, "optimal");
  EXPECT_EQ(result.value().algorithms[1].name, "cmab-hs");
}

TEST(RunComparisonTest, OptimalDominatesAndRegretOrdering) {
  auto result = RunComparison(SmallConfig(), {});
  ASSERT_TRUE(result.ok());
  const auto& algos = result.value().algorithms;
  double optimal_revenue = algos[0].expected_revenue;
  double cmab_regret = 0.0, random_regret = 0.0;
  for (const auto& algo : algos) {
    EXPECT_LE(algo.expected_revenue, optimal_revenue + 1e-6) << algo.name;
    EXPECT_GE(algo.regret, -1e-6) << algo.name;
    if (algo.name == "cmab-hs") cmab_regret = algo.regret;
    if (algo.name == "random") random_regret = algo.regret;
  }
  EXPECT_LT(cmab_regret, random_regret);
}

TEST(RunComparisonTest, DeltaMetricsZeroForOptimalPositiveForOthers) {
  auto result = RunComparison(SmallConfig(), {});
  ASSERT_TRUE(result.ok());
  const auto& algos = result.value().algorithms;
  EXPECT_DOUBLE_EQ(algos[0].delta_consumer, 0.0);
  for (std::size_t i = 1; i < algos.size(); ++i) {
    EXPECT_GE(algos[i].delta_consumer, 0.0);
    EXPECT_GE(algos[i].delta_platform, 0.0);
    EXPECT_GE(algos[i].delta_seller, 0.0);
  }
}

TEST(RunComparisonTest, GapsAndBoundArePopulated) {
  auto result = RunComparison(SmallConfig(), {});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().gaps.delta_min, 0.0);
  EXPECT_GT(result.value().gaps.delta_max,
            result.value().gaps.delta_min - 1e-12);
  EXPECT_TRUE(std::isfinite(result.value().theorem19_bound));
  EXPECT_GT(result.value().theorem19_bound, 0.0);
}

TEST(RunComparisonTest, RegretBelowTheorem19Bound) {
  auto result = RunComparison(SmallConfig(500), {});
  ASSERT_TRUE(result.ok());
  for (const auto& algo : result.value().algorithms) {
    if (algo.name == "cmab-hs") {
      EXPECT_LT(algo.regret, result.value().theorem19_bound);
    }
  }
}

TEST(RunComparisonTest, CheckpointsFlowThrough) {
  ComparisonOptions options;
  options.checkpoints = {100, 200, 300};
  auto result = RunComparison(SmallConfig(300), options);
  ASSERT_TRUE(result.ok());
  for (const auto& algo : result.value().algorithms) {
    ASSERT_EQ(algo.checkpoints.size(), 3u) << algo.name;
    EXPECT_EQ(algo.checkpoints[0].round, 100);
    // Cumulative revenue is non-decreasing across checkpoints.
    EXPECT_LE(algo.checkpoints[0].expected_revenue,
              algo.checkpoints[2].expected_revenue);
  }
}

TEST(RunComparisonTest, DeltasCanBeDisabled) {
  ComparisonOptions options;
  options.compute_deltas = false;
  auto result = RunComparison(SmallConfig(100), options);
  ASSERT_TRUE(result.ok());
  for (const auto& algo : result.value().algorithms) {
    EXPECT_DOUBLE_EQ(algo.delta_consumer, 0.0);
  }
}

}  // namespace
}  // namespace core
}  // namespace cdt
