#include "core/metrics.h"

#include <gtest/gtest.h>

namespace cdt {
namespace core {
namespace {

market::RoundReport MakeReport(std::int64_t round, std::vector<int> selected,
                               double poc, double pop, double pos) {
  market::RoundReport report;
  report.round = round;
  report.selected = std::move(selected);
  report.consumer_profit = poc;
  report.platform_profit = pop;
  report.seller_profit_total = pos;
  report.expected_quality_revenue = 0.0;
  report.observed_quality_revenue = 1.0;
  return report;
}

TEST(MetricsCollectorTest, CreateValidation) {
  EXPECT_FALSE(MetricsCollector::Create({}, 1, 2).ok());
  EXPECT_FALSE(MetricsCollector::Create({0.5, 0.6}, 1, 2, {5, 5}).ok());
  EXPECT_FALSE(MetricsCollector::Create({0.5, 0.6}, 1, 2, {5, 3}).ok());
  EXPECT_TRUE(MetricsCollector::Create({0.5, 0.6}, 1, 2, {3, 5}).ok());
}

TEST(MetricsCollectorTest, AccumulatesProfitsAndRegret) {
  auto collector = MetricsCollector::Create({0.9, 0.5}, 1, 2);
  ASSERT_TRUE(collector.ok());
  // Optimal pick (seller 0), then suboptimal (seller 1).
  ASSERT_TRUE(
      collector.value().Record(MakeReport(1, {0}, 10.0, 5.0, 2.0)).ok());
  ASSERT_TRUE(
      collector.value().Record(MakeReport(2, {1}, 8.0, 4.0, 1.0)).ok());
  EXPECT_EQ(collector.value().rounds(), 2);
  EXPECT_NEAR(collector.value().expected_revenue(), 2 * 0.9 + 2 * 0.5,
              1e-12);
  EXPECT_NEAR(collector.value().regret(), 2 * 0.9 * 2 - (1.8 + 1.0), 1e-12);
  EXPECT_NEAR(collector.value().consumer_profit().mean(), 9.0, 1e-12);
  EXPECT_NEAR(collector.value().platform_profit().mean(), 4.5, 1e-12);
  EXPECT_NEAR(collector.value().seller_profit_total().mean(), 1.5, 1e-12);
  EXPECT_NEAR(collector.value().observed_revenue(), 2.0, 1e-12);
}

TEST(MetricsCollectorTest, PerSellerMeanDividesBySelectionSize) {
  auto collector = MetricsCollector::Create({0.9, 0.5, 0.1}, 2, 2);
  ASSERT_TRUE(collector.ok());
  ASSERT_TRUE(
      collector.value().Record(MakeReport(1, {0, 1}, 0, 0, 6.0)).ok());
  EXPECT_NEAR(collector.value().seller_profit_each().mean(), 3.0, 1e-12);
}

TEST(MetricsCollectorTest, CheckpointsFireAtRequestedRounds) {
  auto collector = MetricsCollector::Create({0.9, 0.5}, 1, 2, {2, 4});
  ASSERT_TRUE(collector.ok());
  for (std::int64_t t = 1; t <= 5; ++t) {
    ASSERT_TRUE(
        collector.value().Record(MakeReport(t, {0}, 1.0, 1.0, 1.0)).ok());
  }
  ASSERT_EQ(collector.value().checkpoints().size(), 2u);
  EXPECT_EQ(collector.value().checkpoints()[0].round, 2);
  EXPECT_EQ(collector.value().checkpoints()[1].round, 4);
  EXPECT_NEAR(collector.value().checkpoints()[1].expected_revenue,
              4 * 2 * 0.9, 1e-12);
}

TEST(MetricsCollectorTest, TrajectoriesKeptOnlyWhenEnabled) {
  auto collector = MetricsCollector::Create({0.9}, 1, 1);
  ASSERT_TRUE(collector.ok());
  ASSERT_TRUE(
      collector.value().Record(MakeReport(1, {0}, 1.0, 2.0, 3.0)).ok());
  EXPECT_TRUE(collector.value().consumer_trajectory().empty());

  collector.value().set_keep_trajectories(true);
  ASSERT_TRUE(
      collector.value().Record(MakeReport(2, {0}, 4.0, 5.0, 6.0)).ok());
  ASSERT_EQ(collector.value().consumer_trajectory().size(), 1u);
  EXPECT_DOUBLE_EQ(collector.value().consumer_trajectory()[0], 4.0);
  EXPECT_DOUBLE_EQ(collector.value().platform_trajectory()[0], 5.0);
  EXPECT_DOUBLE_EQ(collector.value().seller_trajectory()[0], 6.0);
}

}  // namespace
}  // namespace core
}  // namespace cdt
