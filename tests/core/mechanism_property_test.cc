// Cross-module property tests: invariants that must hold for every
// mechanism configuration, swept over (M, K) shapes and seeds.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/cmab_hs.h"
#include "core/comparison.h"

namespace cdt {
namespace core {
namespace {

struct Shape {
  int m;
  int k;
  std::uint64_t seed;
};

class MechanismPropertyTest : public ::testing::TestWithParam<Shape> {};

TEST_P(MechanismPropertyTest, PerRoundInvariantsHold) {
  const Shape& shape = GetParam();
  MechanismConfig config;
  config.num_sellers = shape.m;
  config.num_selected = shape.k;
  config.num_pois = 4;
  config.num_rounds = 60;
  config.seed = shape.seed;
  auto run = CmabHs::Create(config);
  ASSERT_TRUE(run.ok());

  util::Status status =
      run.value()->RunAll([&](const market::RoundReport& report) {
        // Selection shape: all M in round 1 (initial exploration), K after.
        // With K == M the round-1 selection equals K and is indistinct
        // from a regular round, so the exploration flag stays false.
        if (report.round == 1) {
          EXPECT_EQ(report.initial_exploration, shape.m > shape.k);
          EXPECT_EQ(report.selected.size(),
                    static_cast<std::size_t>(shape.m));
        } else {
          EXPECT_EQ(report.selected.size(),
                    static_cast<std::size_t>(shape.k));
        }
        // Distinct sellers, in range.
        std::set<int> unique(report.selected.begin(), report.selected.end());
        EXPECT_EQ(unique.size(), report.selected.size());
        for (int i : report.selected) {
          EXPECT_GE(i, 0);
          EXPECT_LT(i, shape.m);
        }
        // Prices inside their boxes.
        EXPECT_GE(report.consumer_price, config.consumer_price_min - 1e-12);
        EXPECT_LE(report.consumer_price, config.consumer_price_max + 1e-12);
        EXPECT_GE(report.collection_price,
                  config.collection_price_min - 1e-12);
        EXPECT_LE(report.collection_price,
                  config.collection_price_max + 1e-12);
        // Times in [0, T] and consistent totals.
        double total = 0.0;
        for (double tau : report.tau) {
          EXPECT_GE(tau, 0.0);
          EXPECT_LE(tau, config.round_duration + 1e-9);
          total += tau;
        }
        EXPECT_NEAR(total, report.total_time, 1e-9);
        // Profits finite; game qualities in (0, 1].
        EXPECT_TRUE(std::isfinite(report.consumer_profit));
        EXPECT_TRUE(std::isfinite(report.platform_profit));
        EXPECT_TRUE(std::isfinite(report.seller_profit_total));
        for (double q : report.game_qualities) {
          EXPECT_GT(q, 0.0);
          EXPECT_LE(q, 1.0);
        }
        // Seller participation is individually rational at the interior
        // best response (profit >= 0 up to noise).
        for (double psi : report.seller_profits) {
          EXPECT_GE(psi, -1e-9);
        }
        // Revenue accounting: L * K qualities max.
        EXPECT_GE(report.expected_quality_revenue, 0.0);
        EXPECT_LE(report.expected_quality_revenue,
                  static_cast<double>(config.num_pois) *
                      static_cast<double>(report.selected.size()) + 1e-9);
      });
  ASSERT_TRUE(status.ok()) << status.ToString();

  // Whole-run accounting.
  const market::Ledger& ledger = run.value()->engine().ledger();
  EXPECT_NEAR(ledger.NetPosition(), 0.0, 1e-6);
  EXPECT_GE(run.value()->metrics().regret(), -1e-6);
  EXPECT_GT(run.value()->metrics().expected_revenue(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MechanismPropertyTest,
    ::testing::Values(Shape{5, 1, 1}, Shape{5, 5, 2}, Shape{12, 3, 3},
                      Shape{12, 11, 4}, Shape{30, 10, 5}, Shape{30, 29, 6},
                      Shape{50, 2, 7}, Shape{2, 1, 8}, Shape{1, 1, 9}));

class ComparisonPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ComparisonPropertyTest, OracleDominatesEveryAlgorithm) {
  MechanismConfig config;
  config.num_sellers = 15;
  config.num_selected = 4;
  config.num_pois = 4;
  config.num_rounds = 250;
  config.seed = GetParam();
  ComparisonOptions options;
  options.compute_deltas = false;
  auto result = RunComparison(config, options);
  ASSERT_TRUE(result.ok());
  const auto& algos = result.value().algorithms;
  ASSERT_FALSE(algos.empty());
  ASSERT_EQ(algos[0].name, "optimal");
  EXPECT_NEAR(algos[0].regret, 0.0, 1e-6);
  for (std::size_t i = 1; i < algos.size(); ++i) {
    EXPECT_LE(algos[i].expected_revenue,
              algos[0].expected_revenue + 1e-6)
        << algos[i].name;
    EXPECT_GE(algos[i].regret, -1e-6) << algos[i].name;
    // Regret + revenue must add to the oracle total (accounting identity).
    EXPECT_NEAR(algos[i].regret + algos[i].expected_revenue,
                algos[0].expected_revenue, 1e-6)
        << algos[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComparisonPropertyTest,
                         ::testing::Range<std::uint64_t>(200, 212));

}  // namespace
}  // namespace core
}  // namespace cdt
