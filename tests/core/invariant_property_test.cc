// Property suite for the invariant checker: randomized full CMAB-HS runs
// (random scale, economics, price boxes and sensing caps) must finish with
// the armed checker reporting zero violations. Each seed drives one
// complete rounds-loop, so the suite sweeps well over 50 independent runs.

#include <gtest/gtest.h>

#include "core/cmab_hs.h"
#include "market/invariants.h"
#include "stats/rng.h"
#include "support/generators.h"

namespace cdt {
namespace core {
namespace {

class InvariantPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(InvariantPropertyTest, RandomizedRunIsViolationFree) {
  stats::Xoshiro256 rng(GetParam());
  MechanismConfig config = testsupport::RandomMechanismConfig(rng);
  ASSERT_TRUE(config.Validate().ok());
  ASSERT_TRUE(config.check_invariants);

  auto run = CmabHs::Create(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  util::Status status = run.value()->RunAll();
  EXPECT_TRUE(status.ok()) << status.ToString();

  const market::InvariantChecker* checker =
      run.value()->engine().invariant_checker();
  ASSERT_NE(checker, nullptr);
  EXPECT_EQ(checker->violation_count(), 0u);
  EXPECT_FALSE(checker->violations_truncated());
}

// Every CMAB policy variant must pass under the same net (the checker sees
// the engine's flows, not the policy internals, so any selection rule that
// produces legal rounds must be violation-free).
TEST_P(InvariantPropertyTest, RandomizedRunIsViolationFreeAcrossPolicies) {
  stats::Xoshiro256 rng(GetParam() ^ 0xB0B0B0B0ULL);
  MechanismConfig config = testsupport::RandomMechanismConfig(rng);
  config.num_rounds = 25;
  for (PolicyKind kind : {PolicyKind::kCmabHs, PolicyKind::kEpsilonGreedy,
                          PolicyKind::kRandom, PolicyKind::kThompson}) {
    PolicySpec spec;
    spec.kind = kind;
    auto run = CmabHs::Create(config, spec);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    util::Status status = run.value()->RunAll();
    EXPECT_TRUE(status.ok()) << status.ToString();
    const market::InvariantChecker* checker =
        run.value()->engine().invariant_checker();
    ASSERT_NE(checker, nullptr);
    EXPECT_EQ(checker->violation_count(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantPropertyTest,
                         ::testing::Range<std::uint64_t>(3000, 3060));

}  // namespace
}  // namespace core
}  // namespace cdt
