#include "core/cmab_hs.h"

#include <gtest/gtest.h>

namespace cdt {
namespace core {
namespace {

MechanismConfig SmallConfig(std::int64_t rounds = 50) {
  MechanismConfig config;
  config.num_sellers = 15;
  config.num_selected = 3;
  config.num_pois = 4;
  config.num_rounds = rounds;
  config.seed = 11;
  return config;
}

TEST(PolicySpecTest, Names) {
  EXPECT_EQ((PolicySpec{PolicyKind::kCmabHs, 0.0}).Name(), "cmab-hs");
  EXPECT_EQ((PolicySpec{PolicyKind::kOptimal, 0.0}).Name(), "optimal");
  EXPECT_EQ((PolicySpec{PolicyKind::kEpsilonFirst, 0.1}).Name(),
            "0.1-first");
  EXPECT_EQ((PolicySpec{PolicyKind::kRandom, 0.0}).Name(), "random");
  EXPECT_EQ((PolicySpec{PolicyKind::kEpsilonGreedy, 0.2}).Name(),
            "0.2-greedy");
  EXPECT_EQ((PolicySpec{PolicyKind::kThompson, 0.0}).Name(), "thompson");
}

TEST(CmabHsTest, CreateRejectsInvalidConfig) {
  MechanismConfig config = SmallConfig();
  config.num_selected = 0;
  EXPECT_FALSE(CmabHs::Create(config).ok());
}

TEST(CmabHsTest, RunsAllRoundsAndCollectsMetrics) {
  auto run = CmabHs::Create(SmallConfig());
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value()->RunAll().ok());
  EXPECT_EQ(run.value()->metrics().rounds(), 50);
  EXPECT_GT(run.value()->metrics().expected_revenue(), 0.0);
  EXPECT_GE(run.value()->metrics().regret(), -1e-9);
}

TEST(CmabHsTest, CallbackSeesEveryRound) {
  auto run = CmabHs::Create(SmallConfig(10));
  ASSERT_TRUE(run.ok());
  int calls = 0;
  ASSERT_TRUE(run.value()
                  ->RunAll([&](const market::RoundReport& report) {
                    ++calls;
                    EXPECT_EQ(report.round, calls);
                  })
                  .ok());
  EXPECT_EQ(calls, 10);
}

TEST(CmabHsTest, EveryPolicyKindRuns) {
  for (PolicyKind kind :
       {PolicyKind::kCmabHs, PolicyKind::kOptimal, PolicyKind::kEpsilonFirst,
        PolicyKind::kRandom, PolicyKind::kEpsilonGreedy,
        PolicyKind::kThompson}) {
    auto run = CmabHs::Create(SmallConfig(20), {kind, 0.2});
    ASSERT_TRUE(run.ok()) << static_cast<int>(kind);
    EXPECT_TRUE(run.value()->RunAll().ok()) << static_cast<int>(kind);
    EXPECT_EQ(run.value()->metrics().rounds(), 20);
  }
}

TEST(CmabHsTest, OptimalPolicyHasZeroRegret) {
  auto run = CmabHs::Create(SmallConfig(100), {PolicyKind::kOptimal, 0.0});
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value()->RunAll().ok());
  EXPECT_NEAR(run.value()->metrics().regret(), 0.0, 1e-6);
}

TEST(CmabHsTest, CmabHsBeatsRandomOnRegret) {
  MechanismConfig config = SmallConfig(400);
  auto cmab = CmabHs::Create(config, {PolicyKind::kCmabHs, 0.0});
  auto random = CmabHs::Create(config, {PolicyKind::kRandom, 0.0});
  ASSERT_TRUE(cmab.ok());
  ASSERT_TRUE(random.ok());
  ASSERT_TRUE(cmab.value()->RunAll().ok());
  ASSERT_TRUE(random.value()->RunAll().ok());
  EXPECT_LT(cmab.value()->metrics().regret(),
            random.value()->metrics().regret());
}

TEST(CmabHsTest, DeterministicForSeed) {
  auto a = CmabHs::Create(SmallConfig(30));
  auto b = CmabHs::Create(SmallConfig(30));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a.value()->RunAll().ok());
  ASSERT_TRUE(b.value()->RunAll().ok());
  EXPECT_DOUBLE_EQ(a.value()->metrics().expected_revenue(),
                   b.value()->metrics().expected_revenue());
  EXPECT_DOUBLE_EQ(a.value()->metrics().consumer_profit().mean(),
                   b.value()->metrics().consumer_profit().mean());
}

TEST(CmabHsTest, CheckpointsPropagate) {
  auto run = CmabHs::Create(SmallConfig(20), {PolicyKind::kCmabHs, 0.0},
                            {5, 10, 20});
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run.value()->RunAll().ok());
  ASSERT_EQ(run.value()->metrics().checkpoints().size(), 3u);
  EXPECT_EQ(run.value()->metrics().checkpoints()[2].round, 20);
}

}  // namespace
}  // namespace core
}  // namespace cdt
