#include "core/config.h"

#include <gtest/gtest.h>

namespace cdt {
namespace core {
namespace {

TEST(MechanismConfigTest, TableIIDefaultsAreValid) {
  MechanismConfig config;
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.num_sellers, 300);
  EXPECT_EQ(config.num_selected, 10);
  EXPECT_EQ(config.num_pois, 10);
  EXPECT_EQ(config.num_rounds, 100000);
  EXPECT_DOUBLE_EQ(config.theta, 0.1);
  EXPECT_DOUBLE_EQ(config.lambda, 1.0);
  EXPECT_DOUBLE_EQ(config.omega, 1000.0);
}

TEST(MechanismConfigTest, ValidationCatchesBadRanges) {
  MechanismConfig config;
  config.num_selected = 301;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.omega = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.seller_a_lo = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.quality_lo = 0.5;
  config.quality_hi = 0.4;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.collection_price_min = 2.0;
  config.collection_price_max = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.initial_tau = 2000.0;  // exceeds round duration
  EXPECT_FALSE(config.Validate().ok());
}

TEST(MechanismConfigTest, RejectionsCarryDescriptiveMessages) {
  MechanismConfig config;
  config.num_selected = config.num_sellers + 1;  // K > M
  util::Status status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("K <= M"), std::string::npos)
      << status.ToString();

  config = {};
  config.quality_floor = 0.0;
  status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("quality_floor"), std::string::npos)
      << status.ToString();
  config.quality_floor = -0.5;
  EXPECT_FALSE(config.Validate().ok());

  config = {};
  config.consumer_price_min = 200.0;  // inverted interval
  status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("consumer price bounds"), std::string::npos)
      << status.ToString();

  config = {};
  config.collection_price_min = 50.0;  // inverted interval
  status = config.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("collection price bounds"),
            std::string::npos)
      << status.ToString();
}

TEST(MechanismConfigTest, CheckInvariantsFlagFlowsToEngineConfig) {
  MechanismConfig config;
  EXPECT_TRUE(config.check_invariants);  // armed by default
  EXPECT_TRUE(config.MakeEngineConfig().check_invariants);
  config.check_invariants = false;
  EXPECT_FALSE(config.MakeEngineConfig().check_invariants);
}

TEST(MechanismConfigTest, SellerCostsWithinConfiguredRanges) {
  MechanismConfig config;
  auto costs = config.MakeSellerCosts();
  ASSERT_EQ(costs.size(), 300u);
  for (const auto& c : costs) {
    EXPECT_GE(c.a, 0.1);
    EXPECT_LE(c.a, 0.5);
    EXPECT_GE(c.b, 0.1);
    EXPECT_LE(c.b, 1.0);
  }
}

TEST(MechanismConfigTest, SellerCostsDeterministicInSeed) {
  MechanismConfig a, b;
  a.seed = b.seed = 77;
  auto ca = a.MakeSellerCosts();
  auto cb = b.MakeSellerCosts();
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_DOUBLE_EQ(ca[i].a, cb[i].a);
    EXPECT_DOUBLE_EQ(ca[i].b, cb[i].b);
  }
  b.seed = 78;
  auto cc = b.MakeSellerCosts();
  EXPECT_NE(ca[0].a, cc[0].a);
}

TEST(MechanismConfigTest, DerivedConfigsAreConsistent) {
  MechanismConfig config;
  config.num_sellers = 50;
  config.num_pois = 7;
  auto env = config.MakeEnvironmentConfig();
  EXPECT_EQ(env.num_sellers, 50);
  EXPECT_EQ(env.num_pois, 7);
  auto engine = config.MakeEngineConfig();
  EXPECT_EQ(engine.job.num_pois, 7);
  EXPECT_EQ(engine.seller_costs.size(), 50u);
  EXPECT_TRUE(engine.Validate(50).ok());
}

}  // namespace
}  // namespace core
}  // namespace cdt
