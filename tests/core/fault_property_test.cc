// Property suite for the fault-injection / graceful-degradation layer:
// campaigns at 0%, 10% and 30% seller-default rates must finish OK with
// the armed invariant checker silent, a conserved ledger, monotone regret
// and every injected fault accounted for in the structured logs. A
// borrowed zero-fault tracker must leave runs bit-for-bit unchanged, and
// a budget stop must surface as a clean, callback-visible early exit.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>

#include "bandit/cucb_policy.h"
#include "core/cmab_hs.h"
#include "market/faults.h"
#include "market/invariants.h"
#include "market/trading_engine.h"

namespace cdt {
namespace core {
namespace {

MechanismConfig SmallConfig(std::uint64_t seed, std::int64_t rounds = 300) {
  MechanismConfig config;
  config.num_sellers = 20;
  config.num_selected = 5;
  config.num_pois = 5;
  config.num_rounds = rounds;
  config.seed = seed;
  config.check_invariants = true;
  config.track_transfers = true;
  return config;
}

void ArmFaults(MechanismConfig* config, double default_rate) {
  config->faults.default_rate = default_rate;
  config->faults.corrupt_rate = default_rate / 4.0;
  config->faults.partial_rate = default_rate / 4.0;
  config->faults.settlement_failure_rate = default_rate / 4.0;
}

// Sums the per-report fault events and cross-checks them against the
// engine's cumulative log and the metrics collector's tallies.
void ExpectFaultsFullyAccounted(
    const CmabHs& run, const std::vector<market::RoundReport>& reports) {
  std::size_t report_events = 0;
  std::array<std::int64_t, market::kNumFaultKinds> by_kind{};
  for (const market::RoundReport& r : reports) {
    report_events += r.faults.size();
    for (const market::FaultEvent& e : r.faults) {
      ++by_kind[static_cast<std::size_t>(e.kind)];
      EXPECT_EQ(e.round, r.round);
    }
  }
  const market::TradingEngine& engine = run.engine();
  EXPECT_EQ(engine.fault_log().size(), report_events);
  EXPECT_EQ(run.metrics().fault_events(),
            static_cast<std::int64_t>(report_events));
  for (int k = 0; k < market::kNumFaultKinds; ++k) {
    const market::FaultKind kind = static_cast<market::FaultKind>(k);
    EXPECT_EQ(engine.fault_count(kind), by_kind[static_cast<std::size_t>(k)])
        << market::FaultKindName(kind);
    EXPECT_EQ(run.metrics().fault_count(kind),
              by_kind[static_cast<std::size_t>(k)])
        << market::FaultKindName(kind);
  }
}

class FaultCampaignTest : public ::testing::TestWithParam<double> {};

TEST_P(FaultCampaignTest, CampaignIsViolationFreeConservedAndAccounted) {
  MechanismConfig config = SmallConfig(/*seed=*/404);
  ArmFaults(&config, GetParam());
  ASSERT_TRUE(config.Validate().ok());

  auto run = CmabHs::Create(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  std::vector<market::RoundReport> reports;
  // The round-1 select-all exploration beats the top-K oracle, so its
  // regret increment is negative by design; monotonicity starts after it.
  double last_regret = -std::numeric_limits<double>::infinity();
  bool regret_monotone = true;
  util::Status status =
      run.value()->RunAll([&](const market::RoundReport& r) {
        reports.push_back(r);
        const double regret = run.value()->metrics().regret();
        if (!r.initial_exploration && regret < last_regret - 1e-9) {
          regret_monotone = false;
        }
        last_regret = regret;
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(reports.size(), static_cast<std::size_t>(config.num_rounds));
  EXPECT_TRUE(regret_monotone);

  const market::TradingEngine& engine = run.value()->engine();
  ASSERT_NE(engine.invariant_checker(), nullptr);
  EXPECT_EQ(engine.invariant_checker()->violation_count(), 0u);
  EXPECT_NEAR(engine.ledger().NetPosition(), 0.0, 1e-6);
  ExpectFaultsFullyAccounted(*run.value(), reports);

  if (GetParam() == 0.0) {
    EXPECT_TRUE(engine.fault_log().empty());
    EXPECT_EQ(run.value()->metrics().degraded_rounds(), 0);
  } else {
    EXPECT_FALSE(engine.fault_log().empty());
    EXPECT_GT(run.value()->metrics().degraded_rounds(), 0);
    // Only genuinely delivering rounds feed the bandit: voided rounds
    // never contribute observations, so every degraded round still left
    // estimator means inside [0, 1] (checked by the armed checker).
  }
}

INSTANTIATE_TEST_SUITE_P(DefaultRates, FaultCampaignTest,
                         ::testing::Values(0.0, 0.1, 0.3));

TEST(FaultDeterminismTest, ArmedRunsReplayBitForBit) {
  MechanismConfig config = SmallConfig(/*seed=*/77, /*rounds=*/150);
  ArmFaults(&config, 0.25);

  std::vector<market::RoundReport> first, second;
  for (std::vector<market::RoundReport>* sink : {&first, &second}) {
    auto run = CmabHs::Create(config);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    util::Status status = run.value()->RunAll(
        [&](const market::RoundReport& r) { sink->push_back(r); });
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    const market::RoundReport& a = first[i];
    const market::RoundReport& b = second[i];
    EXPECT_EQ(a.selected, b.selected);
    EXPECT_EQ(a.consumer_price, b.consumer_price);
    EXPECT_EQ(a.collection_price, b.collection_price);
    EXPECT_EQ(a.tau, b.tau);
    EXPECT_EQ(a.contracted_tau, b.contracted_tau);
    EXPECT_EQ(a.consumer_profit, b.consumer_profit);
    EXPECT_EQ(a.platform_profit, b.platform_profit);
    EXPECT_EQ(a.degraded, b.degraded);
    EXPECT_EQ(a.resettled, b.resettled);
    EXPECT_EQ(a.voided, b.voided);
    EXPECT_EQ(a.settlement_attempts, b.settlement_attempts);
    EXPECT_EQ(market::EncodeFaultSummary(a.faults),
              market::EncodeFaultSummary(b.faults));
  }
}

// The quarantine gate and reliability bookkeeping run whenever a tracker is
// present — a borrowed tracker with zero fault rates must therefore leave
// every round bit-for-bit identical to a plain, uninjected engine.
TEST(FaultFreePathTest, ZeroRateTrackerIsBitForBitTransparent) {
  MechanismConfig mc = SmallConfig(/*seed=*/31, /*rounds=*/80);
  ASSERT_FALSE(mc.faults.any());

  auto make_env = [&]() {
    auto env = bandit::QualityEnvironment::Create(mc.MakeEnvironmentConfig());
    EXPECT_TRUE(env.ok());
    return std::move(env).value();
  };
  auto make_policy = [&]() {
    bandit::CucbOptions options;
    options.num_sellers = mc.num_sellers;
    options.num_selected = mc.num_selected;
    auto policy = bandit::CucbPolicy::Create(options);
    EXPECT_TRUE(policy.ok());
    return std::make_unique<bandit::CucbPolicy>(std::move(policy).value());
  };

  auto plain_env = make_env();
  auto plain = market::TradingEngine::Create(mc.MakeEngineConfig(),
                                             &plain_env, make_policy());
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  market::ReliabilityTracker tracker(mc.num_sellers, market::RecoveryOptions{});
  market::EngineConfig gated_config = mc.MakeEngineConfig();
  gated_config.reliability = &tracker;
  auto gated_env = make_env();
  auto gated = market::TradingEngine::Create(gated_config, &gated_env,
                                             make_policy());
  ASSERT_TRUE(gated.ok()) << gated.status().ToString();

  for (std::int64_t round = 0; round < mc.num_rounds; ++round) {
    auto a = plain.value()->RunRound();
    auto b = gated.value()->RunRound();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a.value().selected, b.value().selected);
    EXPECT_EQ(a.value().consumer_price, b.value().consumer_price);
    EXPECT_EQ(a.value().collection_price, b.value().collection_price);
    EXPECT_EQ(a.value().tau, b.value().tau);
    EXPECT_EQ(a.value().consumer_profit, b.value().consumer_profit);
    EXPECT_EQ(a.value().platform_profit, b.value().platform_profit);
    EXPECT_EQ(a.value().observed_quality_revenue,
              b.value().observed_quality_revenue);
    EXPECT_FALSE(b.value().degraded);
    EXPECT_TRUE(b.value().faults.empty());
  }
  EXPECT_EQ(gated.value()->fault_log().size(), 0u);
  EXPECT_EQ(tracker.total_faults(), 0);
}

TEST(FaultBudgetTest, BudgetStopIsCleanAndVisibleInTheFaultLog) {
  MechanismConfig config = SmallConfig(/*seed=*/5, /*rounds=*/200);
  config.consumer_budget = 5000.0;  // exhausts well before 200 rounds

  auto run = CmabHs::Create(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  std::int64_t rounds_seen = 0;
  util::Status status = run.value()->RunAll(
      [&](const market::RoundReport& r) { rounds_seen = r.round; });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(run.value()->engine().budget_exhausted());
  EXPECT_LT(rounds_seen, config.num_rounds);
  EXPECT_GT(rounds_seen, 0);

  const market::TradingEngine& engine = run.value()->engine();
  ASSERT_EQ(engine.fault_count(market::FaultKind::kBudgetStop), 1);
  const market::FaultEvent& stop = engine.fault_log().back();
  EXPECT_EQ(stop.kind, market::FaultKind::kBudgetStop);
  EXPECT_TRUE(stop.recovered);
}

// The issue's acceptance campaign: a long run at a 30% default rate (side
// fault families riding along) completes OK with zero invariant violations,
// a conserved ledger, quarantines actually firing, and the structured logs
// accounting for every event.
TEST(FaultAcceptanceTest, LongCampaignAtThirtyPercentDefaults) {
  MechanismConfig config;
  config.num_sellers = 15;
  config.num_selected = 4;
  config.num_pois = 4;
  config.num_rounds = 5000;
  config.seed = 20260805;
  config.check_invariants = true;
  config.track_transfers = false;  // keep memory flat over 5k rounds
  ArmFaults(&config, 0.3);
  ASSERT_TRUE(config.Validate().ok());

  auto run = CmabHs::Create(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  std::vector<market::RoundReport> reports;
  reports.reserve(static_cast<std::size_t>(config.num_rounds));
  util::Status status = run.value()->RunAll(
      [&](const market::RoundReport& r) { reports.push_back(r); });
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(reports.size(), static_cast<std::size_t>(config.num_rounds));

  const market::TradingEngine& engine = run.value()->engine();
  ASSERT_NE(engine.invariant_checker(), nullptr);
  EXPECT_EQ(engine.invariant_checker()->violation_count(), 0u);
  EXPECT_NEAR(engine.ledger().NetPosition(), 0.0, 1e-6);
  ExpectFaultsFullyAccounted(*run.value(), reports);

  // At this rate every fault family and the breaker must actually fire.
  EXPECT_GT(engine.fault_count(market::FaultKind::kSellerDefault), 0);
  EXPECT_GT(engine.fault_count(market::FaultKind::kCorruptedReport), 0);
  EXPECT_GT(engine.fault_count(market::FaultKind::kPartialDelivery), 0);
  EXPECT_GT(engine.fault_count(market::FaultKind::kSettlementFailure), 0);
  EXPECT_GT(engine.fault_count(market::FaultKind::kQuarantine), 0);
  std::int64_t opened = 0;
  for (int i = 0; i < config.num_sellers; ++i) {
    opened += engine.reliability().seller(i).times_opened;
  }
  EXPECT_GT(opened, 0);

  // Degradation must not have destroyed learning: the collector still saw
  // every round and regret stayed finite.
  EXPECT_EQ(run.value()->metrics().rounds(), config.num_rounds);
  EXPECT_TRUE(std::isfinite(run.value()->metrics().regret()));
}

}  // namespace
}  // namespace core
}  // namespace cdt
