#include "sim/series.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cdt {
namespace sim {
namespace {

TEST(SeriesTest, CollectsPoints) {
  Series s("cmab-hs");
  s.Add(1.0, 2.0);
  s.Add(3.0, 4.0);
  ASSERT_EQ(s.points().size(), 2u);
  EXPECT_DOUBLE_EQ(s.points()[1].x, 3.0);
  EXPECT_DOUBLE_EQ(s.points()[1].y, 4.0);
}

TEST(FigureDataTest, AddSeriesReturnsStablePointers) {
  FigureData fig("fig07", "revenue vs N", "N", "revenue");
  Series* a = fig.AddSeries("a");
  for (int i = 0; i < 50; ++i) fig.AddSeries("s" + std::to_string(i));
  a->Add(1.0, 1.0);  // must not be dangling
  EXPECT_EQ(fig.series()[0]->points().size(), 1u);
}

TEST(FigureDataTest, LongCsvHasOneRowPerPoint) {
  FigureData fig("figX", "t", "x", "y");
  Series* a = fig.AddSeries("a");
  a->Add(1, 10);
  a->Add(2, 20);
  Series* b = fig.AddSeries("b");
  b->Add(1, 30);
  auto csv = fig.ToCsvLong();
  EXPECT_EQ(csv.header,
            (util::CsvRow{"figure", "series", "x", "y"}));
  ASSERT_EQ(csv.rows.size(), 3u);
  EXPECT_EQ(csv.rows[2][1], "b");
}

TEST(FigureDataTest, PrintTableAlignsSharedXGrid) {
  FigureData fig("figY", "title", "N", "val");
  Series* a = fig.AddSeries("alpha");
  Series* b = fig.AddSeries("beta");
  a->Add(5, 1.5);
  a->Add(10, 2.5);
  b->Add(5, 3.5);  // ragged: beta missing second row
  std::ostringstream os;
  fig.PrintTable(os);
  std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("figY"), std::string::npos);
  EXPECT_NE(out.find("2.500"), std::string::npos);
}

TEST(FigureDataTest, EmptyFigurePrintsPlaceholder) {
  FigureData fig("figZ", "empty", "x", "y");
  std::ostringstream os;
  fig.PrintTable(os);
  EXPECT_NE(os.str().find("(no data)"), std::string::npos);
}

}  // namespace
}  // namespace sim
}  // namespace cdt
