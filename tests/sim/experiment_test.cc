#include "sim/experiment.h"

#include <filesystem>
#include <sstream>
#include <unistd.h>

#include <gtest/gtest.h>

namespace cdt {
namespace sim {
namespace {

TEST(ParseBenchFlagsTest, Defaults) {
  const char* argv[] = {"bench"};
  auto flags = ParseBenchFlags(1, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().output_dir, "results");
  EXPECT_FALSE(flags.value().quick);
  EXPECT_EQ(flags.value().seed, 42u);
}

TEST(ParseBenchFlagsTest, Overrides) {
  const char* argv[] = {"bench", "--out=/tmp/x", "--quick=true",
                        "--seed=99"};
  auto flags = ParseBenchFlags(4, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().output_dir, "/tmp/x");
  EXPECT_TRUE(flags.value().quick);
  EXPECT_EQ(flags.value().seed, 99u);
}

TEST(ParseBenchFlagsTest, EmptyOutDisablesCsv) {
  const char* argv[] = {"bench", "--out="};
  auto flags = ParseBenchFlags(2, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags.value().output_dir.empty());
}

TEST(ParseBenchFlagsTest, RejectsMalformedFlags) {
  const char* argv[] = {"bench", "--quick=maybe"};
  EXPECT_FALSE(ParseBenchFlags(2, argv).ok());
  const char* argv2[] = {"bench", "--seed=abc"};
  EXPECT_FALSE(ParseBenchFlags(2, argv2).ok());
}

class ReporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cdt_reporter_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(ReporterTest, WritesCsvAndPrintsTable) {
  std::ostringstream os;
  Reporter reporter(dir_.string(), os);
  reporter.Begin({"figX", "Fig. X", "a test figure", "M=1"});
  FigureData fig("figX", "test", "x", "y");
  Series* s = fig.AddSeries("alpha");
  s->Add(1.0, 2.0);
  ASSERT_TRUE(reporter.Report(fig).ok());
  reporter.Note("done");

  std::string out = os.str();
  EXPECT_NE(out.find("Fig. X"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("done"), std::string::npos);

  auto csv = util::ReadCsvFile((dir_ / "figX.csv").string());
  ASSERT_TRUE(csv.ok());
  ASSERT_EQ(csv.value().rows.size(), 1u);
  EXPECT_EQ(csv.value().rows[0][1], "alpha");
}

TEST_F(ReporterTest, EmptyOutputDirSkipsCsv) {
  std::ostringstream os;
  Reporter reporter("", os);
  FigureData fig("figY", "test", "x", "y");
  fig.AddSeries("s")->Add(1, 1);
  ASSERT_TRUE(reporter.Report(fig).ok());
  EXPECT_EQ(os.str().find("[written"), std::string::npos);
}

}  // namespace
}  // namespace sim
}  // namespace cdt
