// Crash-recovery suite: kill a recorded campaign mid-run at randomized
// round boundaries (no Finish — the log is torn, the snapshot covers an
// earlier checkpoint), restore via snapshot + tail-replay, finish the
// campaign live, and bit-compare the spliced run-log CSV against an
// uninterrupted run of the same config. Faults and invariant checks stay
// armed throughout, so recovery is proven over the degraded path too.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cmab_hs.h"
#include "core/config.h"
#include "market/run_log.h"
#include "persist/atomic_io.h"
#include "persist/recorder.h"
#include "persist/replay.h"
#include "stats/rng.h"

namespace cdt {
namespace persist {
namespace {

constexpr std::int64_t kRounds = 60;
constexpr std::int64_t kSnapshotEvery = 10;

core::MechanismConfig CampaignConfig() {
  core::MechanismConfig config;
  config.num_sellers = 12;
  config.num_selected = 3;
  config.num_pois = 4;
  config.num_rounds = kRounds;
  config.seed = 0x5EED5;
  // Faults armed: recovery must reproduce degraded rounds bit-for-bit.
  config.faults.default_rate = 0.08;
  config.faults.partial_rate = 0.05;
  config.faults.settlement_failure_rate = 0.05;
  return config;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string stem =
        (std::filesystem::temp_directory_path() /
         ("cdt_recovery_" + std::to_string(::getpid())))
            .string();
    log_path_ = stem + ".cdtlog";
    snapshot_path_ = stem + ".cdtsnap";
    baseline_csv_ = stem + "_baseline.csv";
    recovered_csv_ = stem + "_recovered.csv";
  }

  void TearDown() override {
    for (const std::string& path :
         {log_path_, snapshot_path_, baseline_csv_, recovered_csv_}) {
      std::filesystem::remove(path);
    }
  }

  /// Runs the campaign uninterrupted, writing every round to `csv_path`.
  void RunUninterrupted(const std::string& csv_path) {
    auto run = core::CmabHs::Create(CampaignConfig());
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    auto writer = market::RunLogWriter::Open(csv_path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    util::Status status =
        run.value()->RunAll([&](const market::RoundReport& report) {
          ASSERT_TRUE(writer.value().Append(report).ok());
        });
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(writer.value().Close().ok());
  }

  /// Records the campaign but "crashes" after `crash_round` rounds: the
  /// run object is destroyed without RunRecorder::Finish, leaving an
  /// unsealed log and whatever snapshot last checkpointed.
  void RunAndCrash(std::int64_t crash_round) {
    auto run = core::CmabHs::Create(CampaignConfig());
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    RunRecorder::Options options;
    options.log_path = log_path_;
    options.snapshot_path = snapshot_path_;
    options.snapshot_every = kSnapshotEvery;
    auto recorder = RunRecorder::Create(options, CampaignConfig(), {});
    ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
    run.value()->mutable_engine().AddObserver(std::move(recorder).value());
    for (std::int64_t round = 0; round < crash_round; ++round) {
      auto report = run.value()->RunRound();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    }
    // Scope exit destroys the run (and the recorder observer it owns)
    // without sealing the log — the crash.
  }

  /// Recovers from the torn log + snapshot, finishes the campaign live,
  /// and writes the spliced CSV (recorded rounds, then live rounds).
  void RecoverAndFinish(std::int64_t crash_round) {
    auto recorded = LoadRecordedRun(log_path_, /*allow_torn_tail=*/true);
    ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
    EXPECT_FALSE(recorded.value().sealed);
    ASSERT_EQ(recorded.value().rounds.size(),
              static_cast<std::size_t>(crash_round));
    ASSERT_FALSE(recorded.value().snapshot_rounds.empty());
    EXPECT_EQ(recorded.value().snapshot_rounds.back(),
              (crash_round / kSnapshotEvery) * kSnapshotEvery);

    auto snapshot = ReadSnapshotFile(snapshot_path_);
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

    auto resumed = ResumeFromSnapshot(recorded.value(), snapshot.value());
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(resumed.value().snapshot_round,
              recorded.value().snapshot_rounds.back());
    EXPECT_EQ(resumed.value().resumed_round, crash_round);

    auto writer = market::RunLogWriter::Open(recovered_csv_);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const market::RoundReport& report : recorded.value().rounds) {
      ASSERT_TRUE(writer.value().Append(report).ok());
    }
    util::Status status = resumed.value().run->RunAll(
        [&](const market::RoundReport& report) {
          ASSERT_TRUE(writer.value().Append(report).ok());
        });
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_TRUE(writer.value().Close().ok());
  }

  void ExpectCsvIdentical() {
    auto baseline = ReadFileBytes(baseline_csv_);
    auto recovered = ReadFileBytes(recovered_csv_);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    // Byte-identical CSVs: recovery reproduced every round exactly,
    // including fault metadata and formatting.
    EXPECT_EQ(recovered.value(), baseline.value());
  }

  std::string log_path_;
  std::string snapshot_path_;
  std::string baseline_csv_;
  std::string recovered_csv_;
};

TEST_F(RecoveryTest, RandomizedCrashRoundsRecoverBitIdentically) {
  RunUninterrupted(baseline_csv_);
  // Crash at randomized boundaries; every recovery must splice to a CSV
  // byte-identical with the uninterrupted run.
  stats::Xoshiro256 rng(0xC4A5F);
  std::vector<std::int64_t> crash_rounds;
  for (int i = 0; i < 4; ++i) {
    crash_rounds.push_back(static_cast<std::int64_t>(
        rng.NextInt(kSnapshotEvery, kRounds - 1)));
  }
  // Always include a checkpoint-aligned crash (empty tail-replay).
  crash_rounds.push_back(3 * kSnapshotEvery);
  for (std::int64_t crash_round : crash_rounds) {
    SCOPED_TRACE("crash after round " + std::to_string(crash_round));
    RunAndCrash(crash_round);
    RecoverAndFinish(crash_round);
    ExpectCsvIdentical();
    std::filesystem::remove(log_path_);
    std::filesystem::remove(snapshot_path_);
    std::filesystem::remove(recovered_csv_);
  }
}

TEST_F(RecoveryTest, CrashBeforeFirstSnapshotReplaysFromRoundOne) {
  // A crash before the first checkpoint leaves no snapshot; the whole
  // prefix replays from round 1 via VerifyReplay semantics and the run
  // still finishes to a byte-identical CSV.
  const std::int64_t crash_round = kSnapshotEvery - 3;
  RunUninterrupted(baseline_csv_);
  RunAndCrash(crash_round);
  EXPECT_FALSE(std::filesystem::exists(snapshot_path_));

  auto recorded = LoadRecordedRun(log_path_, /*allow_torn_tail=*/true);
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  ASSERT_EQ(recorded.value().rounds.size(),
            static_cast<std::size_t>(crash_round));

  // Rebuild from scratch and replay the recorded prefix by re-running it.
  auto run = core::CmabHs::Create(recorded.value().config,
                                  recorded.value().policy);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  auto writer = market::RunLogWriter::Open(recovered_csv_);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (std::int64_t round = 0; round < crash_round; ++round) {
    auto report = run.value()->RunRound();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    // The re-executed prefix must match the recording bit-for-bit.
    ASSERT_EQ(CanonicalRoundBytes(report.value()),
              recorded.value().round_payloads[static_cast<std::size_t>(
                  round)]);
    ASSERT_TRUE(writer.value().Append(report.value()).ok());
  }
  util::Status status =
      run.value()->RunAll([&](const market::RoundReport& report) {
        ASSERT_TRUE(writer.value().Append(report).ok());
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_TRUE(writer.value().Close().ok());
  ExpectCsvIdentical();
}

TEST_F(RecoveryTest, VerifyReplayPassesOnTornPrefix) {
  // The upgrade gate's core check also holds for crashed recordings: the
  // surviving prefix must re-execute bit-for-bit.
  RunAndCrash(37);
  auto recorded = LoadRecordedRun(log_path_, /*allow_torn_tail=*/true);
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  auto verified = VerifyReplay(recorded.value());
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(verified.value().rounds_verified, 37);
}

TEST_F(RecoveryTest, MismatchedSnapshotConfigIsRejected) {
  // A snapshot from a different campaign (different config CRC) must be
  // refused at resume time, not silently produce a diverged run.
  RunAndCrash(25);
  auto recorded = LoadRecordedRun(log_path_, /*allow_torn_tail=*/true);
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  auto snapshot = ReadSnapshotFile(snapshot_path_);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  SnapshotFile tampered = snapshot.value();
  tampered.config_crc ^= 0x1;
  auto resumed = ResumeFromSnapshot(recorded.value(), tampered);
  EXPECT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(RecoveryTest, SealedLogLoadsStrictAndResumes) {
  // A cleanly finished recording also resumes (restore-from-archive, not
  // just crash recovery): strict load, then snapshot + tail-replay to the
  // end of the campaign.
  {
    auto run = core::CmabHs::Create(CampaignConfig());
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    RunRecorder::Options options;
    options.log_path = log_path_;
    options.snapshot_path = snapshot_path_;
    options.snapshot_every = kSnapshotEvery;
    auto recorder = RunRecorder::Create(options, CampaignConfig(), {});
    ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
    RunRecorder* rec = recorder.value().get();
    run.value()->mutable_engine().AddObserver(std::move(recorder).value());
    ASSERT_TRUE(run.value()->RunAll().ok());
    ASSERT_TRUE(rec->Finish().ok());
  }
  auto recorded = LoadRecordedRun(log_path_);
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  EXPECT_TRUE(recorded.value().sealed);
  EXPECT_EQ(recorded.value().rounds.size(),
            static_cast<std::size_t>(kRounds));
  auto snapshot = ReadSnapshotFile(snapshot_path_);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  auto resumed = ResumeFromSnapshot(recorded.value(), snapshot.value());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed.value().resumed_round, kRounds);
}

}  // namespace
}  // namespace persist
}  // namespace cdt
