// Property / fuzz suite for the persistence codec and file formats: every
// encode→decode round trip is exact (doubles bit-for-bit), and every
// truncated or bit-flipped input is rejected with a clean Status — never a
// crash, hang or out-of-bounds read (run under asan/ubsan by CI).

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/atomic_io.h"
#include "persist/codec.h"
#include "persist/event_log.h"
#include "persist/replay.h"
#include "persist/serialize.h"
#include "stats/rng.h"

namespace cdt {
namespace persist {
namespace {

// --- primitive round trips ---------------------------------------------

TEST(CodecTest, VarintRoundTripsBoundaryValues) {
  const std::uint64_t values[] = {
      0,
      1,
      127,
      128,
      16383,
      16384,
      (1ull << 32) - 1,
      1ull << 32,
      std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : values) {
    std::string buffer;
    PutVarint64(&buffer, v);
    ByteReader reader(buffer);
    std::uint64_t decoded = 0;
    ASSERT_TRUE(reader.ReadVarint64(&decoded).ok());
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(reader.empty());
  }
}

TEST(CodecTest, ZigzagRoundTripsBoundaryValues) {
  const std::int64_t values[] = {0,
                                 -1,
                                 1,
                                 -64,
                                 63,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (std::int64_t v : values) {
    std::string buffer;
    PutZigzag64(&buffer, v);
    ByteReader reader(buffer);
    std::int64_t decoded = 0;
    ASSERT_TRUE(reader.ReadZigzag64(&decoded).ok());
    EXPECT_EQ(decoded, v);
  }
}

TEST(CodecTest, DoubleRoundTripsExactBitPatterns) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0 / 3.0,
                           1e-300,
                           -1e300,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::quiet_NaN()};
  for (double v : values) {
    std::string buffer;
    PutDouble(&buffer, v);
    ByteReader reader(buffer);
    double decoded = 0;
    ASSERT_TRUE(reader.ReadDouble(&decoded).ok());
    std::uint64_t expected_bits, decoded_bits;
    std::memcpy(&expected_bits, &v, 8);
    std::memcpy(&decoded_bits, &decoded, 8);
    EXPECT_EQ(decoded_bits, expected_bits);
  }
}

TEST(CodecTest, RandomizedPrimitiveRoundTrips) {
  stats::Xoshiro256 rng(0xC0DEC);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string buffer;
    const std::uint64_t u = rng.Next();
    const std::int64_t z = static_cast<std::int64_t>(rng.Next());
    const double d = rng.NextDouble(-1e6, 1e6);
    PutVarint64(&buffer, u);
    PutZigzag64(&buffer, z);
    PutDouble(&buffer, d);
    ByteReader reader(buffer);
    std::uint64_t ru = 0;
    std::int64_t rz = 0;
    double rd = 0;
    ASSERT_TRUE(reader.ReadVarint64(&ru).ok());
    ASSERT_TRUE(reader.ReadZigzag64(&rz).ok());
    ASSERT_TRUE(reader.ReadDouble(&rd).ok());
    EXPECT_EQ(ru, u);
    EXPECT_EQ(rz, z);
    EXPECT_EQ(rd, d);
    EXPECT_TRUE(reader.empty());
  }
}

TEST(CodecTest, StringAndVectorRoundTrips) {
  std::string buffer;
  PutString(&buffer, "hello\0world" /* embedded NUL truncates literal */);
  PutDoubleVector(&buffer, {1.5, -2.5, 0.0});
  PutIntVector(&buffer, {-3, 0, 7, 1 << 20});
  ByteReader reader(buffer);
  std::string text;
  std::vector<double> doubles;
  std::vector<int> ints;
  ASSERT_TRUE(reader.ReadString(&text).ok());
  ASSERT_TRUE(reader.ReadDoubleVector(&doubles).ok());
  ASSERT_TRUE(reader.ReadIntVector(&ints).ok());
  EXPECT_EQ(text, "hello");
  EXPECT_EQ(doubles, (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(ints, (std::vector<int>{-3, 0, 7, 1 << 20}));
}

TEST(CodecTest, EveryTruncationFailsCleanly) {
  std::string buffer;
  PutVarint64(&buffer, 1234567);
  PutZigzag64(&buffer, -987654);
  PutDouble(&buffer, 3.14159);
  PutString(&buffer, "payload");
  PutDoubleVector(&buffer, {1.0, 2.0});
  // Decoding any strict prefix must fail with a Status, not crash.
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    ByteReader reader(std::string_view(buffer).substr(0, cut));
    std::uint64_t u;
    std::int64_t z;
    double d;
    std::string s;
    std::vector<double> vec;
    util::Status status = reader.ReadVarint64(&u);
    if (status.ok()) status = reader.ReadZigzag64(&z);
    if (status.ok()) status = reader.ReadDouble(&d);
    if (status.ok()) status = reader.ReadString(&s);
    if (status.ok()) status = reader.ReadDoubleVector(&vec);
    EXPECT_FALSE(status.ok()) << "prefix of length " << cut << " decoded";
    EXPECT_EQ(status.code(), util::StatusCode::kParseError);
  }
}

TEST(CodecTest, AbsurdVectorCountsRejectedBeforeAllocation) {
  std::string buffer;
  PutVarint64(&buffer, std::uint64_t{1} << 40);  // claim 2^40 doubles
  ByteReader reader(buffer);
  std::vector<double> values;
  EXPECT_EQ(reader.ReadDoubleVector(&values).code(),
            util::StatusCode::kParseError);
}

TEST(CodecTest, OverlongVarintRejected) {
  std::string buffer(10, '\xFF');  // continuation bit forever
  buffer.push_back('\x7F');
  ByteReader reader(buffer);
  std::uint64_t value;
  EXPECT_EQ(reader.ReadVarint64(&value).code(),
            util::StatusCode::kParseError);
}

TEST(CodecTest, Crc32MatchesKnownVectorAndChains) {
  // The classic CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  // Chaining two halves equals hashing the whole.
  const std::string data = "the quick brown fox";
  EXPECT_EQ(Crc32(data.substr(10), Crc32(data.substr(0, 10))), Crc32(data));
}

// --- structure round trips ---------------------------------------------

core::MechanismConfig SmallConfig() {
  core::MechanismConfig config;
  config.num_sellers = 12;
  config.num_selected = 3;
  config.num_pois = 4;
  config.num_rounds = 48;
  config.seed = 0xFEED;
  config.consumer_budget = 123.5;
  config.track_transfers = true;
  config.faults.default_rate = 0.1;
  config.faults.partial_rate = 0.05;
  config.faults.settlement_failure_rate = 0.07;
  config.faults.seed = 0xABCD;
  config.recovery.quarantine_threshold = 2;
  config.recovery.quarantine_cooldown = 9;
  return config;
}

TEST(SerializeTest, MechanismConfigRoundTripsEveryField) {
  const core::MechanismConfig config = SmallConfig();
  std::string buffer;
  EncodeMechanismConfig(config, &buffer);
  core::MechanismConfig decoded;
  ByteReader reader(buffer);
  ASSERT_TRUE(DecodeMechanismConfig(&reader, &decoded).ok());
  EXPECT_TRUE(reader.empty());
  // Re-encoding must reproduce the identical bytes (field-order drift or
  // a skipped field would show up here).
  std::string reencoded;
  EncodeMechanismConfig(decoded, &reencoded);
  EXPECT_EQ(reencoded, buffer);
  EXPECT_EQ(decoded.num_sellers, 12);
  EXPECT_EQ(decoded.num_rounds, 48);
  EXPECT_EQ(decoded.faults.seed, 0xABCDu);
  EXPECT_EQ(decoded.recovery.quarantine_cooldown, 9);
  EXPECT_EQ(decoded.consumer_budget, 123.5);
}

market::RoundReport SampleReport() {
  market::RoundReport report;
  report.round = 7;
  report.selected = {4, 1, 9};
  report.game_qualities = {0.5, 0.25, 0.75};
  report.consumer_price = 12.25;
  report.collection_price = 1.5;
  report.tau = {2.0, 0.0, 1.0};
  report.total_time = 3.0;
  report.consumer_profit = 10.0;
  report.platform_profit = 4.0;
  report.seller_profits = {1.0, 0.0, 0.5};
  report.seller_profit_total = 1.5;
  report.expected_quality_revenue = 6.0;
  report.observed_quality_revenue = 5.5;
  report.degraded = true;
  report.resettled = true;
  report.contracted_tau = {2.0, 1.5, 1.0};
  report.faults.push_back(
      {7, market::FaultKind::kSellerDefault, 1, 0.0, true});
  report.faults.push_back(
      {7, market::FaultKind::kSettlementFailure, -1, 2.0, true});
  report.settlement_attempts = 3;
  report.settlement_backoff = 1.5;
  return report;
}

TEST(SerializeTest, RoundReportRoundTripsBitForBit) {
  const market::RoundReport report = SampleReport();
  const std::string bytes = CanonicalRoundBytes(report);
  market::RoundReport decoded;
  ByteReader reader(bytes);
  ASSERT_TRUE(DecodeRoundReport(&reader, &decoded).ok());
  EXPECT_TRUE(reader.empty());
  EXPECT_EQ(CanonicalRoundBytes(decoded), bytes);
  EXPECT_EQ(decoded.selected, report.selected);
  EXPECT_EQ(decoded.faults.size(), 2u);
  EXPECT_EQ(decoded.faults[1].kind, market::FaultKind::kSettlementFailure);
  EXPECT_EQ(decoded.settlement_attempts, 3);
}

TEST(SerializeTest, RoundReportTruncationsFailCleanly) {
  const std::string bytes = CanonicalRoundBytes(SampleReport());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    market::RoundReport decoded;
    ByteReader reader(std::string_view(bytes).substr(0, cut));
    util::Status status = DecodeRoundReport(&reader, &decoded);
    EXPECT_FALSE(status.ok()) << "prefix of length " << cut << " decoded";
  }
}

TEST(SerializeTest, EngineSnapshotRoundTrips) {
  market::EngineSnapshot snapshot;
  snapshot.next_round = 41;
  snapshot.budget_exhausted = false;
  snapshot.consumer_spend = 321.25;
  snapshot.pricing_arms = {{10, 0.5}, {0, 0.0}, {7, 0.25}};
  snapshot.pricing_total_observations = 17;
  snapshot.has_policy_arms = true;
  snapshot.policy_arms = snapshot.pricing_arms;
  snapshot.policy_total_observations = 17;
  snapshot.ledger_balances = {-5.0, 2.0, 1.0, 1.0, 1.0};
  snapshot.ledger_consumer_outflow = 5.0;
  snapshot.ledger_seller_inflow = 3.0;
  snapshot.ledger_transfers.push_back(
      {3, market::kConsumerAccount, market::kPlatformAccount, 2.5,
       "reward"});
  snapshot.reliability.resize(3);
  snapshot.reliability[1].defaults = 2;
  snapshot.reliability[1].state = market::BreakerState::kOpen;
  snapshot.reliability[1].opened_round = 30;
  snapshot.reliability_total_faults = 2;
  snapshot.fault_counts[0] = 2;
  snapshot.environment.rng_state = {1, 2, 3, 4};
  snapshot.environment.has_spare = {1, 0, 1};
  snapshot.environment.spare = {0.25, 0.0, -1.5};

  std::string bytes;
  EncodeEngineSnapshot(snapshot, &bytes);
  market::EngineSnapshot decoded;
  ByteReader reader(bytes);
  ASSERT_TRUE(DecodeEngineSnapshot(&reader, &decoded).ok());
  EXPECT_TRUE(reader.empty());
  std::string reencoded;
  EncodeEngineSnapshot(decoded, &reencoded);
  EXPECT_EQ(reencoded, bytes);
  EXPECT_EQ(decoded.reliability[1].state, market::BreakerState::kOpen);
  EXPECT_EQ(decoded.ledger_transfers[0].memo, "reward");
  EXPECT_EQ(decoded.environment.rng_state[3], 4u);
}

// --- file-level corruption ---------------------------------------------

class EventLogFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("cdt_codec_fuzz_" + std::to_string(::getpid()) + ".cdtlog"))
                .string();
    core::MechanismConfig config = SmallConfig();
    auto writer = EventLogWriter::Open(path_, config, {});
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (std::int64_t round = 1; round <= 5; ++round) {
      market::RoundReport report = SampleReport();
      report.round = round;
      ASSERT_TRUE(writer.value()->AppendRound(report).ok());
    }
    ASSERT_TRUE(writer.value()->Finish().ok());
    auto bytes = ReadFileBytes(path_);
    ASSERT_TRUE(bytes.ok());
    pristine_ = std::move(bytes).value();
  }

  void TearDown() override { std::filesystem::remove(path_); }

  void WriteBytes(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
  std::string pristine_;
};

TEST_F(EventLogFuzzTest, PristineLogLoadsSealed) {
  auto run = LoadRecordedRun(path_);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run.value().sealed);
  EXPECT_EQ(run.value().rounds.size(), 5u);
}

TEST_F(EventLogFuzzTest, EveryBitFlipIsRejectedOrDetectedCleanly) {
  // Flip one bit in every byte of the file; the loader must either reject
  // with a clean Status or (never) silently accept altered round bytes.
  stats::Xoshiro256 rng(0xF11B);
  for (std::size_t i = 0; i < pristine_.size(); ++i) {
    std::string corrupt = pristine_;
    corrupt[i] = static_cast<char>(
        static_cast<std::uint8_t>(corrupt[i]) ^
        (1u << (rng.Next() % 8)));
    WriteBytes(corrupt);
    auto run = LoadRecordedRun(path_);
    if (run.ok()) {
      // The flip must have been somewhere harmless is impossible: every
      // byte is covered by magic, version, framing or a CRC. Accepting a
      // corrupted file is a failure.
      ADD_FAILURE() << "bit flip at byte " << i << " was not detected";
    } else {
      // The taxonomy is part of the contract: framing damage is a parse
      // error, CRC-detected damage in complete records is corruption, and
      // a flipped version byte is version skew — never anything else.
      const util::StatusCode code = run.status().code();
      EXPECT_TRUE(code == util::StatusCode::kParseError ||
                  code == util::StatusCode::kCorruption ||
                  code == util::StatusCode::kVersionMismatch)
          << "byte " << i << ": " << run.status().ToString();
    }
  }
}

TEST_F(EventLogFuzzTest, EveryTruncationIsRejectedWithoutTornTail) {
  for (std::size_t cut = 0; cut < pristine_.size(); ++cut) {
    WriteBytes(pristine_.substr(0, cut));
    auto run = LoadRecordedRun(path_, /*allow_torn_tail=*/false);
    EXPECT_FALSE(run.ok()) << "truncation at byte " << cut << " accepted";
  }
}

TEST_F(EventLogFuzzTest, TornTailRecoversCompletePrefix) {
  // Chop the file at every byte: with allow_torn_tail, a cut past the
  // config record recovers the complete-round prefix (unsealed); a cut
  // inside the header or config record still fails cleanly — a log
  // without its config is unusable even for crash recovery. Recovered
  // round counts must be monotone in the cut point.
  std::size_t recoveries = 0;
  std::size_t max_rounds = 0;
  for (std::size_t cut = 0; cut < pristine_.size(); ++cut) {
    WriteBytes(pristine_.substr(0, cut));
    auto run = LoadRecordedRun(path_, /*allow_torn_tail=*/true);
    if (!run.ok()) {
      // Only acceptable before any recovery succeeded (torn config);
      // once the config record is complete every longer prefix loads.
      EXPECT_EQ(recoveries, 0u)
          << "cut at " << cut << ": " << run.status().ToString();
      continue;
    }
    ++recoveries;
    EXPECT_FALSE(run.value().sealed) << "cut at " << cut;
    EXPECT_GE(run.value().rounds.size(), max_rounds) << "cut at " << cut;
    max_rounds = std::max(max_rounds, run.value().rounds.size());
  }
  EXPECT_GT(recoveries, 0u);
  // Cutting inside the footer leaves all five rounds recoverable.
  EXPECT_EQ(max_rounds, 5u);
}

TEST_F(EventLogFuzzTest, RandomGarbageNeverCrashesTheLoader) {
  stats::Xoshiro256 rng(0xDEAD);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(1 + rng.Next() % 512, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.Next() & 0xFF);
    }
    // Valid magic on some trials so parsing gets past the header.
    if (trial % 2 == 0 && garbage.size() > 9) {
      std::memcpy(&garbage[0], kLogMagic, 8);
      garbage[8] = 1;  // format version varint
    }
    WriteBytes(garbage);
    auto strict = LoadRecordedRun(path_, false);
    auto torn = LoadRecordedRun(path_, true);
    EXPECT_FALSE(strict.ok());
    // With torn-tail tolerance garbage may parse to zero rounds, but a
    // config record can never materialize from noise.
    if (torn.ok()) {
      ADD_FAILURE() << "garbage trial " << trial << " produced a run";
    }
  }
}

TEST_F(EventLogFuzzTest, SnapshotFileCorruptionRejected) {
  const std::string snap_path = path_ + ".snap";
  market::EngineSnapshot snapshot;
  snapshot.next_round = 3;
  snapshot.pricing_arms = {{1, 0.5}};
  snapshot.pricing_total_observations = 1;
  snapshot.ledger_balances = {0.0, 0.0, 0.0};
  snapshot.reliability.resize(1);
  snapshot.environment.rng_state = {1, 2, 3, 4};
  snapshot.environment.has_spare = {0};
  snapshot.environment.spare = {0.0};
  ASSERT_TRUE(WriteSnapshotFile(snap_path, 1234, snapshot).ok());
  auto clean = ReadSnapshotFile(snap_path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean.value().config_crc, 1234u);
  EXPECT_EQ(clean.value().snapshot.next_round, 3);

  auto bytes = ReadFileBytes(snap_path);
  ASSERT_TRUE(bytes.ok());
  std::string pristine = std::move(bytes).value();
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    std::string corrupt = pristine;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    std::ofstream out(snap_path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    auto flipped = ReadSnapshotFile(snap_path);
    ASSERT_FALSE(flipped.ok())
        << "snapshot bit flip at byte " << i << " accepted";
    // Same error taxonomy as the event log: framing = parse error,
    // CRC-caught payload damage = corruption, version byte = skew.
    const util::StatusCode code = flipped.status().code();
    EXPECT_TRUE(code == util::StatusCode::kParseError ||
                code == util::StatusCode::kCorruption ||
                code == util::StatusCode::kVersionMismatch)
        << "byte " << i << ": " << flipped.status().ToString();
  }

  // Every strict prefix must fail too — snapshots are atomic, so a short
  // file is damage, never a torn tail to repair.
  for (std::size_t cut = 0; cut < pristine.size(); ++cut) {
    std::ofstream out(snap_path, std::ios::binary | std::ios::trunc);
    out.write(pristine.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_FALSE(ReadSnapshotFile(snap_path).ok())
        << "snapshot truncated to " << cut << " bytes accepted";
  }

  // Random garbage (with and without a valid magic) never crashes.
  stats::Xoshiro256 rng(0xBEEF);
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage(1 + rng.Next() % 256, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next() & 0xFF);
    if (trial % 2 == 0 && garbage.size() > 9) {
      std::memcpy(&garbage[0], kSnapshotMagic, 8);
      garbage[8] = 1;  // format version varint
    }
    std::ofstream out(snap_path, std::ios::binary | std::ios::trunc);
    out.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
    out.close();
    EXPECT_FALSE(ReadSnapshotFile(snap_path).ok())
        << "garbage snapshot trial " << trial << " accepted";
  }
  std::filesystem::remove(snap_path);
}

}  // namespace
}  // namespace persist
}  // namespace cdt
