// The self-healing scrubber's contract, property-tested:
//
//   * repair is idempotent — scrubbing a repaired artifact changes
//     nothing (byte-for-byte), at every possible tear point;
//   * repaired logs actually load for crash recovery;
//   * irreparable damage is quarantined (moved aside, reason counted),
//     never silently accepted;
//   * version skew is reported distinctly and the file left intact;
//   * orphaned atomic-write temp files are swept.

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/config.h"
#include "market/trading_engine.h"
#include "persist/atomic_io.h"
#include "persist/event_log.h"
#include "persist/replay.h"
#include "persist/scrub.h"
#include "stats/rng.h"

namespace cdt {
namespace persist {
namespace {

namespace fs = std::filesystem;

core::MechanismConfig SmallConfig() {
  core::MechanismConfig config;
  config.num_sellers = 8;
  config.num_selected = 2;
  config.num_pois = 3;
  config.num_rounds = 32;
  config.seed = 0xD15C;
  return config;
}

market::RoundReport SampleReport(std::int64_t round) {
  market::RoundReport report;
  report.round = round;
  report.selected = {1, 3};
  report.game_qualities = {0.5, 0.25};
  report.consumer_price = 2.5;
  report.collection_price = 1.25;
  report.tau = {0.5, 1.0};
  report.total_time = 1.5;
  return report;
}

class ScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("cdt_scrub_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    log_path_ = dir_ + "/m.cdtlog";
    auto writer = EventLogWriter::Open(log_path_, SmallConfig(), {});
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (std::int64_t round = 1; round <= 5; ++round) {
      ASSERT_TRUE(writer.value()->AppendRound(SampleReport(round)).ok());
    }
    ASSERT_TRUE(writer.value()->Finish().ok());
    auto bytes = ReadFileBytes(log_path_);
    ASSERT_TRUE(bytes.ok());
    pristine_ = std::move(bytes).value();
    auto run = LoadRecordedRun(log_path_);
    ASSERT_TRUE(run.ok());
    pristine_payloads_ = std::move(run).value().round_payloads;
  }

  void TearDown() override { fs::remove_all(dir_); }

  void WriteLog(const std::string& bytes) {
    std::ofstream out(log_path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string LogBytes() {
    auto bytes = ReadFileBytes(log_path_);
    EXPECT_TRUE(bytes.ok());
    return bytes.ok() ? std::move(bytes).value() : std::string();
  }

  std::string dir_;
  std::string log_path_;
  std::string pristine_;
  std::vector<std::string> pristine_payloads_;
};

TEST_F(ScrubTest, CleanSealedLogIsClean) {
  auto outcome = ScrubEventLogFile(log_path_, {});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().health, ArtifactHealth::kClean);
  EXPECT_TRUE(outcome.value().sealed);
  EXPECT_EQ(LogBytes(), pristine_);
}

TEST_F(ScrubTest, RepairIsIdempotentAtEveryTearPoint) {
  // Chop the log at every byte. Wherever the scrubber repairs, repairing
  // again must change nothing and the repaired file must load for crash
  // recovery; wherever it quarantines, the original must be gone.
  std::size_t repaired = 0;
  std::size_t quarantined = 0;
  for (std::size_t cut = 0; cut < pristine_.size(); ++cut) {
    WriteLog(pristine_.substr(0, cut));
    auto first = ScrubEventLogFile(log_path_, {});
    ASSERT_TRUE(first.ok()) << "cut " << cut << ": "
                            << first.status().ToString();
    if (first.value().health == ArtifactHealth::kQuarantined) {
      ++quarantined;
      EXPECT_FALSE(fs::exists(log_path_)) << "cut " << cut;
      fs::remove(log_path_ + ".quarantined");
      continue;
    }
    ASSERT_TRUE(first.value().health == ArtifactHealth::kClean ||
                first.value().health == ArtifactHealth::kRepaired)
        << "cut " << cut;
    if (first.value().health == ArtifactHealth::kRepaired) ++repaired;
    const std::string once = LogBytes();
    auto second = ScrubEventLogFile(log_path_, {});
    ASSERT_TRUE(second.ok()) << "cut " << cut;
    EXPECT_EQ(second.value().health, ArtifactHealth::kClean)
        << "cut " << cut << ": repair did not converge";
    EXPECT_EQ(LogBytes(), once)
        << "cut " << cut << ": second scrub changed bytes";
    auto run = LoadRecordedRun(log_path_, /*allow_torn_tail=*/true);
    EXPECT_TRUE(run.ok()) << "cut " << cut << ": repaired log does not "
                          << "load: " << run.status().ToString();
  }
  EXPECT_GT(repaired, 0u);
  // Cuts inside the header / config record are irreparable.
  EXPECT_GT(quarantined, 0u);
}

TEST_F(ScrubTest, BitFlipsQuarantineWithCountedReasons) {
  stats::Xoshiro256 rng(0x5C2B);
  std::size_t quarantined = 0;
  for (std::size_t i = 0; i < pristine_.size(); ++i) {
    std::string corrupt = pristine_;
    corrupt[i] = static_cast<char>(
        static_cast<std::uint8_t>(corrupt[i]) ^ (1u << (rng.Next() % 8)));
    WriteLog(corrupt);
    auto outcome = ScrubEventLogFile(log_path_, {});
    ASSERT_TRUE(outcome.ok()) << "byte " << i;
    ASSERT_NE(outcome.value().health, ArtifactHealth::kClean)
        << "flip at byte " << i << " scrubbed clean";
    if (outcome.value().health == ArtifactHealth::kQuarantined) {
      ++quarantined;
      EXPECT_FALSE(outcome.value().detail.empty()) << "byte " << i;
      fs::remove(log_path_ + ".quarantined");
    } else if (outcome.value().health == ArtifactHealth::kVersionSkew) {
      // The version byte: reported distinctly, file left intact.
      EXPECT_TRUE(fs::exists(log_path_)) << "byte " << i;
    } else {
      // A flip in a length varint can mimic a tear and get "repaired"
      // away. That is fine exactly as long as whatever loads afterwards
      // is a byte-true prefix of the pristine rounds — altered round
      // bytes must never survive.
      auto run = LoadRecordedRun(log_path_, /*allow_torn_tail=*/true);
      if (run.ok()) {
        const auto& payloads = run.value().round_payloads;
        ASSERT_LE(payloads.size(), pristine_payloads_.size())
            << "byte " << i;
        for (std::size_t r = 0; r < payloads.size(); ++r) {
          EXPECT_EQ(payloads[r], pristine_payloads_[r])
              << "byte " << i << " round " << r + 1;
        }
      }
    }
  }
  EXPECT_GT(quarantined, 0u);
}

TEST_F(ScrubTest, SnapshotCorruptionQuarantinesSkewReportsIntact) {
  const std::string snap_path = dir_ + "/m.cdtsnap";
  market::EngineSnapshot snapshot;
  snapshot.next_round = 3;
  snapshot.pricing_arms = {{1, 0.5}};
  snapshot.pricing_total_observations = 1;
  snapshot.ledger_balances = {0.0, 0.0, 0.0};
  snapshot.reliability.resize(1);
  snapshot.environment.rng_state = {1, 2, 3, 4};
  snapshot.environment.has_spare = {0};
  snapshot.environment.spare = {0.0};
  ASSERT_TRUE(WriteSnapshotFile(snap_path, 77, snapshot).ok());

  auto clean = ScrubSnapshotFile(snap_path, {});
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value().health, ArtifactHealth::kClean);

  auto bytes = ReadFileBytes(snap_path);
  ASSERT_TRUE(bytes.ok());
  std::string skewed = bytes.value();
  skewed[8] = '\x7E';  // the format-version varint right after the magic
  {
    std::ofstream out(snap_path, std::ios::binary | std::ios::trunc);
    out.write(skewed.data(), static_cast<std::streamsize>(skewed.size()));
  }
  auto skew = ScrubSnapshotFile(snap_path, {});
  ASSERT_TRUE(skew.ok());
  EXPECT_EQ(skew.value().health, ArtifactHealth::kVersionSkew);
  EXPECT_TRUE(fs::exists(snap_path));

  std::string corrupt = bytes.value();
  corrupt.back() = static_cast<char>(corrupt.back() ^ 0x01);
  {
    std::ofstream out(snap_path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }
  auto bad = ScrubSnapshotFile(snap_path, {});
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().health, ArtifactHealth::kQuarantined);
  EXPECT_EQ(bad.value().detail, "snapshot_corrupt");
  EXPECT_FALSE(fs::exists(snap_path));
  EXPECT_TRUE(fs::exists(snap_path + ".quarantined"));
}

TEST_F(ScrubTest, ReportOnlyModeTouchesNothing) {
  std::string torn = pristine_.substr(0, pristine_.size() - 3);
  WriteLog(torn);
  ScrubOptions options;
  options.repair = false;
  options.quarantine = false;
  auto outcome = ScrubEventLogFile(log_path_, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().health, ArtifactHealth::kRepaired);
  EXPECT_EQ(LogBytes(), torn);  // diagnosis only, no truncation
}

TEST_F(ScrubTest, DirectoryScrubTalliesAndSweepsOrphans) {
  // A second, torn log; a corrupt snapshot; two orphan temp files.
  const std::string torn_path = dir_ + "/n.cdtlog";
  fs::copy_file(log_path_, torn_path);
  fs::resize_file(torn_path, fs::file_size(torn_path) - 2);
  const std::string snap_path = dir_ + "/m.cdtsnap";
  {
    // Valid magic + version 1, then noise: unmistakably bit rot, not
    // version skew.
    std::ofstream out(snap_path, std::ios::binary);
    out << "CDTSNAPS" << '\x01' << "garbage";
  }
  {
    std::ofstream out(dir_ + "/m.cdtsnap.tmp");
    out << "partial";
  }
  {
    std::ofstream out(dir_ + "/n.cdtlog.tmp");
    out << "partial";
  }

  auto report = ScrubWalDirectory(dir_, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().clean, 1);
  EXPECT_EQ(report.value().repaired, 1);
  EXPECT_EQ(report.value().quarantined, 1);
  EXPECT_EQ(report.value().orphan_temps_found, 2);
  EXPECT_EQ(report.value().orphan_temps_removed, 2);
  EXPECT_EQ(report.value().quarantine_reasons.at("snapshot_corrupt"), 1);
  EXPECT_FALSE(fs::exists(dir_ + "/m.cdtsnap.tmp"));
  EXPECT_FALSE(fs::exists(dir_ + "/n.cdtlog.tmp"));
  EXPECT_TRUE(fs::exists(snap_path + ".quarantined"));
  // The repaired log loads; a second directory scrub is a no-op.
  EXPECT_TRUE(LoadRecordedRun(torn_path, /*allow_torn_tail=*/true).ok());
  auto again = ScrubWalDirectory(dir_, {});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().clean, 2);
  EXPECT_EQ(again.value().repaired, 0);
  EXPECT_EQ(again.value().quarantined, 0);
}

TEST_F(ScrubTest, ReportOnlyDirectoryScrubLeavesOrphanTempsInPlace) {
  // --repair=false --quarantine=false is documented as a pure read-only
  // check: orphan temps are counted but must survive.
  const std::string temp_path = dir_ + "/m.cdtsnap.tmp";
  {
    std::ofstream out(temp_path);
    out << "partial";
  }
  ScrubOptions options;
  options.repair = false;
  options.quarantine = false;
  auto report = ScrubWalDirectory(dir_, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().orphan_temps_found, 1);
  EXPECT_EQ(report.value().orphan_temps_removed, 0);
  EXPECT_TRUE(fs::exists(temp_path));

  // A repairing pass then sweeps exactly what the report-only pass saw.
  auto repairing = ScrubWalDirectory(dir_, {});
  ASSERT_TRUE(repairing.ok());
  EXPECT_EQ(repairing.value().orphan_temps_found, 1);
  EXPECT_EQ(repairing.value().orphan_temps_removed, 1);
  EXPECT_FALSE(fs::exists(temp_path));
}

TEST_F(ScrubTest, SweepOrphanTempFilesRemovesOnlyTemps) {
  {
    std::ofstream out(dir_ + "/a.cdtlog.tmp");
    out << "x";
  }
  auto swept = SweepOrphanTempFiles(dir_);
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept.value(), 1);
  EXPECT_TRUE(fs::exists(log_path_));  // real artifacts untouched
}

}  // namespace
}  // namespace persist
}  // namespace cdt
