// The replay upgrade gate: a golden recorded trace checked into
// tests/data/ must replay bit-for-bit on every build. Any change to the
// economics, the bandit updates, the fault draws, the RNG, or the codec
// that alters a single byte of a round fails this suite — which is the
// point: such changes must consciously regenerate the golden trace
// (CDT_REGEN_GOLDEN=1 ./golden_trace_test) and show up in review as a
// tests/data/ diff. Also proves version skew fails closed: a log written
// by a future format version must be rejected, never half-read.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/cmab_hs.h"
#include "core/config.h"
#include "persist/atomic_io.h"
#include "persist/codec.h"
#include "persist/event_log.h"
#include "persist/recorder.h"
#include "persist/replay.h"

namespace cdt {
namespace persist {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(CDT_TEST_DATA_DIR) + "/data/" + name;
}

/// The golden campaign: small enough to replay in well under a second,
/// rich enough to exercise faults, re-settlement, partial delivery,
/// quarantine and transfer history.
core::MechanismConfig GoldenConfig() {
  core::MechanismConfig config;
  config.num_sellers = 12;
  config.num_selected = 3;
  config.num_pois = 4;
  config.num_rounds = 200;
  config.seed = 0x601D;
  config.track_transfers = true;
  config.faults.default_rate = 0.08;
  config.faults.partial_rate = 0.06;
  config.faults.settlement_failure_rate = 0.05;
  return config;
}

class GoldenTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (std::getenv("CDT_REGEN_GOLDEN") == nullptr) return;
    // Regeneration: record the golden campaign straight into the source
    // tree, then write the digest file next to it.
    const core::MechanismConfig config = GoldenConfig();
    auto run = core::CmabHs::Create(config);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    RunRecorder::Options options;
    options.log_path = GoldenPath("golden_trace.cdtlog");
    auto recorder = RunRecorder::Create(options, config, {});
    ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
    RunRecorder* rec = recorder.value().get();
    run.value()->mutable_engine().AddObserver(std::move(recorder).value());
    ASSERT_TRUE(run.value()->RunAll().ok());
    ASSERT_TRUE(rec->Finish().ok());
    auto bytes = ReadFileBytes(options.log_path);
    ASSERT_TRUE(bytes.ok());
    ASSERT_TRUE(AtomicWriteFile(GoldenPath("golden_trace.digest"),
                                std::to_string(Crc32(bytes.value())) + "\n")
                    .ok());
  }

  std::string ReadGolden(const std::string& name) {
    auto bytes = ReadFileBytes(GoldenPath(name));
    EXPECT_TRUE(bytes.ok()) << bytes.status().ToString();
    return bytes.ok() ? std::move(bytes).value() : std::string();
  }
};

TEST_F(GoldenTraceTest, DigestMatchesCheckedInTrace) {
  // First line of defence: the trace file itself is exactly the bytes the
  // digest was computed over (catches accidental edits, EOL mangling,
  // git filters).
  const std::string trace = ReadGolden("golden_trace.cdtlog");
  ASSERT_FALSE(trace.empty());
  const std::string digest = ReadGolden("golden_trace.digest");
  EXPECT_EQ(std::to_string(Crc32(trace)) + "\n", digest);
}

TEST_F(GoldenTraceTest, GoldenTraceLoadsSealed) {
  auto recorded = LoadRecordedRun(GoldenPath("golden_trace.cdtlog"));
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  EXPECT_TRUE(recorded.value().sealed);
  EXPECT_FALSE(recorded.value().torn_tail);
  EXPECT_EQ(recorded.value().rounds.size(), 200u);
  EXPECT_EQ(recorded.value().config.num_sellers, 12);
  EXPECT_EQ(recorded.value().config.seed, 0x601Du);
}

TEST_F(GoldenTraceTest, GoldenTraceReplaysBitForBit) {
  // The gate itself: this build must reproduce the recorded campaign
  // byte-identically, faults and all.
  auto recorded = LoadRecordedRun(GoldenPath("golden_trace.cdtlog"));
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  auto verified = VerifyReplay(recorded.value());
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(verified.value().rounds_verified, 200);
}

TEST_F(GoldenTraceTest, FutureFormatVersionFailsClosed) {
  // A log stamped with a future format version must be rejected up front
  // — layouts may have changed in ways the CRC cannot catch.
  std::string trace = ReadGolden("golden_trace.cdtlog");
  ASSERT_GT(trace.size(), 9u);
  // Byte 8 (after the 8-byte magic) is the format-version varint; the
  // current version 1 encodes as the single byte 0x01.
  ASSERT_EQ(trace[8], '\x01');
  trace[8] = '\x02';
  const std::string skewed =
      (std::filesystem::temp_directory_path() /
       ("cdt_golden_skew_" + std::to_string(::getpid()) + ".cdtlog"))
          .string();
  {
    std::ofstream out(skewed, std::ios::binary | std::ios::trunc);
    out.write(trace.data(), static_cast<std::streamsize>(trace.size()));
  }
  auto strict = LoadRecordedRun(skewed);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), util::StatusCode::kVersionMismatch);
  EXPECT_NE(strict.status().message().find("version"), std::string::npos)
      << strict.status().ToString();
  // Torn-tail tolerance is crash recovery, not version forgiveness.
  auto tolerant = LoadRecordedRun(skewed, /*allow_torn_tail=*/true);
  EXPECT_FALSE(tolerant.ok());
  std::filesystem::remove(skewed);
}

TEST_F(GoldenTraceTest, TamperedGoldenTraceIsRejected) {
  // Flip one bit in the middle of the trace: the record CRC (or the
  // footer's rolling CRC) must catch it.
  std::string trace = ReadGolden("golden_trace.cdtlog");
  trace[trace.size() / 2] = static_cast<char>(trace[trace.size() / 2] ^ 0x10);
  const std::string tampered =
      (std::filesystem::temp_directory_path() /
       ("cdt_golden_tamper_" + std::to_string(::getpid()) + ".cdtlog"))
          .string();
  {
    std::ofstream out(tampered, std::ios::binary | std::ios::trunc);
    out.write(trace.data(), static_cast<std::streamsize>(trace.size()));
  }
  auto recorded = LoadRecordedRun(tampered);
  EXPECT_FALSE(recorded.ok());
  std::filesystem::remove(tampered);
}

}  // namespace
}  // namespace persist
}  // namespace cdt
