// Durability suite: AtomicWriteFile's all-or-nothing contract under
// injected write failures (the destination is never torn, temp files never
// leak), snapshot-write failures propagating out of the recorder, and the
// run-log writer's fsync-on-close path.

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/cmab_hs.h"
#include "core/config.h"
#include "market/run_log.h"
#include "persist/atomic_io.h"
#include "persist/event_log.h"
#include "persist/recorder.h"

namespace cdt {
namespace persist {
namespace {

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stem_ = (std::filesystem::temp_directory_path() /
             ("cdt_durability_" + std::to_string(::getpid())))
                .string();
  }

  void TearDown() override {
    SetAtomicWriteFailureHookForTest(nullptr);
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(
             std::filesystem::temp_directory_path(), ec)) {
      const std::string name = entry.path().string();
      if (name.rfind(stem_, 0) == 0) std::filesystem::remove(name, ec);
    }
  }

  std::string stem_;
};

TEST_F(DurabilityTest, AtomicWriteCreatesAndReplaces) {
  const std::string path = stem_ + "_basic";
  ASSERT_TRUE(AtomicWriteFile(path, "first").ok());
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), "first");
  ASSERT_TRUE(AtomicWriteFile(path, "second, longer content").ok());
  bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), "second, longer content");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST_F(DurabilityTest, FailedWriteLeavesDestinationUntouched) {
  const std::string path = stem_ + "_untouched";
  ASSERT_TRUE(AtomicWriteFile(path, "durable original").ok());

  std::string observed_temp;
  SetAtomicWriteFailureHookForTest(
      [&observed_temp](const std::string& temp_path) {
        observed_temp = temp_path;
        return util::Status::IoError("injected write failure");
      });
  util::Status status = AtomicWriteFile(path, "must never appear");
  SetAtomicWriteFailureHookForTest(nullptr);

  EXPECT_EQ(status.code(), util::StatusCode::kIoError);
  // The hook fired after the temp file's bytes were written...
  EXPECT_FALSE(observed_temp.empty());
  // ...yet the destination still holds the original, and the temp file
  // was cleaned up.
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(), "durable original");
  EXPECT_FALSE(std::filesystem::exists(observed_temp));
}

TEST_F(DurabilityTest, FailedFirstWriteCreatesNothing) {
  const std::string path = stem_ + "_nothing";
  SetAtomicWriteFailureHookForTest([](const std::string&) {
    return util::Status::IoError("injected write failure");
  });
  EXPECT_FALSE(AtomicWriteFile(path, "never lands").ok());
  SetAtomicWriteFailureHookForTest(nullptr);
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST_F(DurabilityTest, ReadFileBytesMissingIsNotFound) {
  auto bytes = ReadFileBytes(stem_ + "_does_not_exist");
  EXPECT_EQ(bytes.status().code(), util::StatusCode::kNotFound);
}

TEST_F(DurabilityTest, SnapshotWriteFailurePreservesPreviousSnapshot) {
  const std::string path = stem_ + ".cdtsnap";
  market::EngineSnapshot snapshot;
  snapshot.next_round = 11;
  snapshot.pricing_arms = {{4, 0.5}};
  snapshot.pricing_total_observations = 4;
  snapshot.ledger_balances = {0.0, 0.0, 0.0};
  snapshot.reliability.resize(1);
  snapshot.environment.rng_state = {9, 8, 7, 6};
  snapshot.environment.has_spare = {0};
  snapshot.environment.spare = {0.0};
  ASSERT_TRUE(WriteSnapshotFile(path, 77, snapshot).ok());

  SetAtomicWriteFailureHookForTest([](const std::string&) {
    return util::Status::IoError("disk full");
  });
  snapshot.next_round = 21;
  EXPECT_FALSE(WriteSnapshotFile(path, 77, snapshot).ok());
  SetAtomicWriteFailureHookForTest(nullptr);

  // The earlier checkpoint must still be readable and intact.
  auto recovered = ReadSnapshotFile(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().config_crc, 77u);
  EXPECT_EQ(recovered.value().snapshot.next_round, 11);
}

TEST_F(DurabilityTest, RecorderPropagatesSnapshotWriteFailure) {
  core::MechanismConfig config;
  config.num_sellers = 12;
  config.num_selected = 3;
  config.num_pois = 4;
  config.num_rounds = 12;
  config.seed = 0xD15C;

  auto run = core::CmabHs::Create(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  RunRecorder::Options options;
  options.log_path = stem_ + ".cdtlog";
  options.snapshot_path = stem_ + ".cdtsnap";
  options.snapshot_every = 5;
  auto recorder = RunRecorder::Create(options, config, {});
  ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
  run.value()->mutable_engine().AddObserver(std::move(recorder).value());

  SetAtomicWriteFailureHookForTest([](const std::string&) {
    return util::Status::IoError("disk full");
  });
  // Rounds 1-4 record fine; the checkpoint at round 5 cannot write its
  // snapshot and the failure must surface through the engine's observer
  // chain as a failed round, not vanish.
  util::Status status = util::Status::OK();
  std::int64_t completed = 0;
  for (std::int64_t round = 1; round <= 12; ++round) {
    auto report = run.value()->RunRound();
    if (!report.ok()) {
      status = report.status();
      break;
    }
    ++completed;
  }
  SetAtomicWriteFailureHookForTest(nullptr);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(completed, 4);
  // The log never claims a snapshot that did not reach disk.
  EXPECT_FALSE(std::filesystem::exists(options.snapshot_path));
}

TEST_F(DurabilityTest, RunLogCloseIsDurableAndPoisonsOnFailure) {
  const std::string path = stem_ + "_runlog.csv";
  auto writer = market::RunLogWriter::Open(path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  market::RoundReport report;
  report.round = 1;
  report.selected = {0};
  report.game_qualities = {0.5};
  report.tau = {1.0};
  ASSERT_TRUE(writer.value().Append(report).ok());
  // Close flushes and fsyncs via reopen; the row must be on disk.
  ASSERT_TRUE(writer.value().Close().ok());
  auto rows = market::LoadRunLog(path);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value().size(), 1u);

  // Removing the file out from under the writer makes the fsync reopen
  // fail; Close must report it (poisoned status), not pretend durability.
  auto writer2 = market::RunLogWriter::Open(path);
  ASSERT_TRUE(writer2.ok());
  ASSERT_TRUE(writer2.value().Append(report).ok());
  std::filesystem::remove(path);
  util::Status closed = writer2.value().Close();
  EXPECT_EQ(closed.code(), util::StatusCode::kIoError);
}

}  // namespace
}  // namespace persist
}  // namespace cdt
