#include "bandit/delayed_feedback.h"

#include <gtest/gtest.h>

#include "bandit/cucb_policy.h"
#include "bandit/environment.h"

namespace cdt {
namespace bandit {
namespace {

std::unique_ptr<SelectionPolicy> MakeInner(int m = 5, int k = 2) {
  CucbOptions options;
  options.num_sellers = m;
  options.num_selected = k;
  auto policy = CucbPolicy::Create(options);
  EXPECT_TRUE(policy.ok());
  return std::make_unique<CucbPolicy>(std::move(policy).value());
}

TEST(DelayedFeedbackTest, Validation) {
  EXPECT_FALSE(DelayedFeedbackPolicy::Create(nullptr, 1).ok());
  EXPECT_FALSE(DelayedFeedbackPolicy::Create(MakeInner(), -1).ok());
  auto ok = DelayedFeedbackPolicy::Create(MakeInner(), 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().name(), "cmab-hs+delay(3)");
  EXPECT_EQ(ok.value().num_sellers(), 5);
}

TEST(DelayedFeedbackTest, ZeroDelayIsPassthrough) {
  auto policy = DelayedFeedbackPolicy::Create(MakeInner(), 0);
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(policy.value().Observe({0}, {{0.7}}).ok());
  EXPECT_EQ(policy.value().estimator()->arm(0).observations, 1u);
  EXPECT_EQ(policy.value().pending(), 0u);
}

TEST(DelayedFeedbackTest, FeedbackArrivesExactlyDelayRoundsLater) {
  auto policy = DelayedFeedbackPolicy::Create(MakeInner(), 2);
  ASSERT_TRUE(policy.ok());
  // Round 1 feedback...
  ASSERT_TRUE(policy.value().Observe({0}, {{0.9}}).ok());
  EXPECT_EQ(policy.value().estimator()->arm(0).observations, 0u);
  EXPECT_EQ(policy.value().pending(), 1u);
  // Round 2 feedback...
  ASSERT_TRUE(policy.value().Observe({1}, {{0.1}}).ok());
  EXPECT_EQ(policy.value().estimator()->arm(0).observations, 0u);
  EXPECT_EQ(policy.value().pending(), 2u);
  // Round 3 feedback triggers delivery of round 1's.
  ASSERT_TRUE(policy.value().Observe({2}, {{0.5}}).ok());
  EXPECT_EQ(policy.value().estimator()->arm(0).observations, 1u);
  EXPECT_EQ(policy.value().estimator()->arm(1).observations, 0u);
  EXPECT_EQ(policy.value().pending(), 2u);  // rounds 2 and 3 still queued
}

TEST(DelayedFeedbackTest, SelectionDelegatesToInner) {
  auto policy = DelayedFeedbackPolicy::Create(MakeInner(4, 2), 1);
  ASSERT_TRUE(policy.ok());
  auto selected = policy.value().SelectRound(1);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value().size(), 4u);  // inner's select-all round 1
  EXPECT_FALSE(policy.value().SelectRound(0).ok());
}

TEST(DelayedFeedbackTest, MismatchedObserveRejected) {
  auto policy = DelayedFeedbackPolicy::Create(MakeInner(), 2);
  ASSERT_TRUE(policy.ok());
  EXPECT_FALSE(policy.value().Observe({0, 1}, {{0.5}}).ok());
}

// Property: learning still converges under delay, but the short-horizon
// regret degrades monotonically-ish with the delay length.
TEST(DelayedFeedbackTest, DelayDegradesShortHorizonQuality) {
  const int kSellers = 8, kSelect = 2, kRounds = 300;
  auto run = [&](int delay) {
    auto env = QualityEnvironment::CreateWithQualities(
        {0.9, 0.85, 0.3, 0.25, 0.2, 0.15, 0.1, 0.05}, 5, 0.05, 51);
    EXPECT_TRUE(env.ok());
    auto policy =
        DelayedFeedbackPolicy::Create(MakeInner(kSellers, kSelect), delay);
    EXPECT_TRUE(policy.ok());
    double quality = 0.0;
    for (int t = 1; t <= kRounds; ++t) {
      auto selected = policy.value().SelectRound(t);
      EXPECT_TRUE(selected.ok());
      std::vector<std::vector<double>> obs;
      for (int i : selected.value()) {
        obs.push_back(env.value().ObserveSeller(i));
        quality += env.value().effective_quality(i);
      }
      EXPECT_TRUE(policy.value().Observe(selected.value(), obs).ok());
    }
    return quality;
  };
  double q0 = run(0);
  double q50 = run(50);
  EXPECT_GT(q0, q50);  // 50-round-stale estimates cost real quality
  // But even heavily delayed learning beats a uniform-random yardstick
  // (expected ~0.35 mean quality * 2 * 300 = 210).
  EXPECT_GT(q50, 250.0);
}

}  // namespace
}  // namespace bandit
}  // namespace cdt
