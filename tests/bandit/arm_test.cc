#include "bandit/arm.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cdt {
namespace bandit {
namespace {

TEST(TopKIndicesTest, OrdersByValueThenIndex) {
  std::vector<double> v{0.2, 0.9, 0.9, 0.1};
  EXPECT_EQ(TopKIndices(v, 2), (std::vector<int>{1, 2}));
  EXPECT_EQ(TopKIndices(v, 3), (std::vector<int>{1, 2, 0}));
}

TEST(TopKIndicesTest, HandlesEdgeSizes) {
  std::vector<double> v{1.0, 2.0};
  EXPECT_TRUE(TopKIndices(v, 0).empty());
  EXPECT_EQ(TopKIndices(v, 5), (std::vector<int>{1, 0}));  // capped at M
}

TEST(EstimatorBankTest, CreateValidatesArgs) {
  EXPECT_FALSE(EstimatorBank::Create(0, 1.0).ok());
  EXPECT_FALSE(EstimatorBank::Create(5, 0.0).ok());
  EXPECT_TRUE(EstimatorBank::Create(5, 2.0).ok());
}

TEST(EstimatorBankTest, UpdateImplementsEq17And18) {
  auto bank = EstimatorBank::Create(2, 2.0);
  ASSERT_TRUE(bank.ok());
  // First batch of L=4 observations for arm 0.
  ASSERT_TRUE(bank.value().Update(0, {0.8, 0.6, 0.7, 0.5}).ok());
  EXPECT_EQ(bank.value().arm(0).observations, 4u);        // Eq. (17): n += L
  EXPECT_NEAR(bank.value().arm(0).mean, 0.65, 1e-12);     // Eq. (18)
  // Second batch merges with the running mean.
  ASSERT_TRUE(bank.value().Update(0, {0.1, 0.1}).ok());
  EXPECT_EQ(bank.value().arm(0).observations, 6u);
  EXPECT_NEAR(bank.value().arm(0).mean, (0.65 * 4 + 0.2) / 6.0, 1e-12);
  // Untouched arm stays zero.
  EXPECT_EQ(bank.value().arm(1).observations, 0u);
  EXPECT_EQ(bank.value().total_observations(), 6u);
}

TEST(EstimatorBankTest, UpdateRejectsBadInput) {
  auto bank = EstimatorBank::Create(2, 2.0);
  ASSERT_TRUE(bank.ok());
  EXPECT_FALSE(bank.value().Update(-1, {0.5}).ok());
  EXPECT_FALSE(bank.value().Update(2, {0.5}).ok());
  EXPECT_FALSE(bank.value().Update(0, {}).ok());
  EXPECT_FALSE(bank.value().Update(0, {1.5}).ok());
  EXPECT_FALSE(bank.value().Update(0, {-0.1}).ok());
}

TEST(EstimatorBankTest, UcbMatchesEq19) {
  auto bank = EstimatorBank::Create(3, 11.0);  // K+1 = 11
  ASSERT_TRUE(bank.ok());
  ASSERT_TRUE(bank.value().Update(0, {0.5, 0.5}).ok());
  ASSERT_TRUE(bank.value().Update(1, {0.9}).ok());
  double total = 3.0;
  double expected0 = 0.5 + std::sqrt(11.0 * std::log(total) / 2.0);
  EXPECT_NEAR(bank.value().UcbValue(0), expected0, 1e-12);
  // Unexplored arm carries infinite bonus.
  EXPECT_TRUE(std::isinf(bank.value().UcbValue(2)));
}

TEST(EstimatorBankTest, UnexploredArmsWinTopK) {
  auto bank = EstimatorBank::Create(3, 2.0);
  ASSERT_TRUE(bank.ok());
  ASSERT_TRUE(bank.value().Update(0, {1.0, 1.0, 1.0}).ok());
  auto top = bank.value().TopKByUcb(2);
  // Arms 1 and 2 are unexplored (infinite UCB) and must come first.
  EXPECT_EQ(top, (std::vector<int>{1, 2}));
}

TEST(EstimatorBankTest, TopKByMeanIgnoresUncertainty) {
  auto bank = EstimatorBank::Create(3, 2.0);
  ASSERT_TRUE(bank.ok());
  ASSERT_TRUE(bank.value().Update(0, {0.9}).ok());
  ASSERT_TRUE(bank.value().Update(1, {0.5, 0.5, 0.5, 0.5}).ok());
  auto top = bank.value().TopKByMean(1);
  EXPECT_EQ(top, (std::vector<int>{0}));
}

TEST(EstimatorBankTest, LessExploredArmHasWiderBonus) {
  auto bank = EstimatorBank::Create(2, 2.0);
  ASSERT_TRUE(bank.ok());
  ASSERT_TRUE(bank.value().Update(0, {0.5}).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bank.value().Update(1, {0.5}).ok());
  }
  double bonus0 = bank.value().UcbValue(0) - 0.5;
  double bonus1 = bank.value().UcbValue(1) - 0.5;
  EXPECT_GT(bonus0, bonus1);
}

}  // namespace
}  // namespace bandit
}  // namespace cdt
