#include "bandit/regret.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace cdt {
namespace bandit {
namespace {

TEST(ComputeGapsTest, MatchesEq35And36) {
  // Sorted descending: 0.9, 0.7, 0.5, 0.2; K = 2.
  auto gaps = ComputeGaps({0.5, 0.9, 0.2, 0.7}, 2);
  ASSERT_TRUE(gaps.ok());
  EXPECT_NEAR(gaps.value().delta_min, 0.7 - 0.5, 1e-12);
  EXPECT_NEAR(gaps.value().delta_max, (0.9 + 0.7) - (0.2 + 0.5), 1e-12);
}

TEST(ComputeGapsTest, TiedBoundaryGivesZeroDeltaMin) {
  auto gaps = ComputeGaps({0.5, 0.5, 0.1}, 1);
  ASSERT_TRUE(gaps.ok());
  EXPECT_DOUBLE_EQ(gaps.value().delta_min, 0.0);
}

TEST(ComputeGapsTest, RejectsDegenerateK) {
  EXPECT_FALSE(ComputeGaps({0.5, 0.6}, 0).ok());
  EXPECT_FALSE(ComputeGaps({0.5, 0.6}, 2).ok());  // K == M
}

TEST(RegretTrackerTest, OptimalSelectionHasZeroRegret) {
  auto tracker = RegretTracker::Create({0.9, 0.5, 0.1}, 2, 4);
  ASSERT_TRUE(tracker.ok());
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(tracker.value().RecordRound({0, 1}).ok());
  }
  EXPECT_NEAR(tracker.value().regret(), 0.0, 1e-9);
  EXPECT_NEAR(tracker.value().cumulative_expected_revenue(),
              10 * 4 * (0.9 + 0.5), 1e-9);
}

TEST(RegretTrackerTest, SuboptimalSelectionAccumulatesGap) {
  auto tracker = RegretTracker::Create({0.9, 0.5, 0.1}, 2, 4);
  ASSERT_TRUE(tracker.ok());
  ASSERT_TRUE(tracker.value().RecordRound({1, 2}).ok());  // misses seller 0
  double per_round_gap = 4 * ((0.9 + 0.5) - (0.5 + 0.1));
  EXPECT_NEAR(tracker.value().regret(), per_round_gap, 1e-9);
}

TEST(RegretTrackerTest, ObservedRevenueAccumulates) {
  auto tracker = RegretTracker::Create({0.9, 0.5}, 1, 2);
  ASSERT_TRUE(tracker.ok());
  ASSERT_TRUE(tracker.value().RecordRoundObserved({0}, {1.7}).ok());
  ASSERT_TRUE(tracker.value().RecordRoundObserved({0}, {1.9}).ok());
  EXPECT_NEAR(tracker.value().cumulative_observed_revenue(), 3.6, 1e-12);
  EXPECT_EQ(tracker.value().rounds(), 2);
}

TEST(RegretTrackerTest, RejectsBadInput) {
  auto tracker = RegretTracker::Create({0.9, 0.5}, 1, 2);
  ASSERT_TRUE(tracker.ok());
  EXPECT_FALSE(tracker.value().RecordRound({5}).ok());
  EXPECT_FALSE(tracker.value().RecordRoundObserved({0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(RegretTracker::Create({}, 1, 2).ok());
  EXPECT_FALSE(RegretTracker::Create({0.5}, 2, 2).ok());
  EXPECT_FALSE(RegretTracker::Create({0.5}, 1, 0).ok());
}

TEST(Lemma18BoundTest, GrowsLogarithmicallyInN) {
  double b1 = Lemma18CounterBound(10, 1000, 10, 0.1);
  double b2 = Lemma18CounterBound(10, 100000, 10, 0.1);
  // ln ratio: bound difference should equal 4K^2(K+1)/Δ² · ln(100).
  double expected_growth =
      4.0 * 100.0 * 11.0 / 0.01 * std::log(100.0);
  EXPECT_NEAR(b2 - b1, expected_growth, 1.0);
}

TEST(Lemma18BoundTest, InfiniteWhenGapZero) {
  EXPECT_TRUE(std::isinf(Lemma18CounterBound(10, 1000, 10, 0.0)));
}

TEST(Lemma18BoundTest, NoOverflowForLargeK) {
  // K = 60 would overflow K^{2K+1} in plain doubles; log-space keeps the
  // tail finite (≈ 0).
  double bound = Lemma18CounterBound(60, 200000, 10, 0.01);
  EXPECT_TRUE(std::isfinite(bound));
  EXPECT_GT(bound, 0.0);
}

TEST(Theorem19BoundTest, ScalesWithM) {
  GapStatistics gaps{0.1, 2.0};
  double b300 = Theorem19RegretBound(300, 10, 100000, 10, gaps);
  double b150 = Theorem19RegretBound(150, 10, 100000, 10, gaps);
  EXPECT_NEAR(b300 / b150, 2.0, 1e-9);
}

TEST(Theorem19BoundTest, InfiniteOnTies) {
  GapStatistics gaps{0.0, 2.0};
  EXPECT_TRUE(std::isinf(Theorem19RegretBound(300, 10, 1000, 10, gaps)));
}

}  // namespace
}  // namespace bandit
}  // namespace cdt
