#include "bandit/availability_policy.h"

#include <gtest/gtest.h>

#include "bandit/cucb_policy.h"
#include "bandit/environment.h"

namespace cdt {
namespace bandit {
namespace {

AvailabilityFn EvenRoundsOnly(int parity_seller) {
  // `parity_seller` is available on even rounds only; everyone else always.
  return [parity_seller](int seller, std::int64_t round) {
    if (seller != parity_seller) return true;
    return round % 2 == 0;
  };
}

TEST(AvailabilityPolicyTest, Validation) {
  auto always = [](int, std::int64_t) { return true; };
  EXPECT_FALSE(
      AvailabilityAwareCucbPolicy::Create(0, 1, always).ok());
  EXPECT_FALSE(
      AvailabilityAwareCucbPolicy::Create(5, 6, always).ok());
  EXPECT_FALSE(
      AvailabilityAwareCucbPolicy::Create(5, 2, nullptr).ok());
  EXPECT_TRUE(AvailabilityAwareCucbPolicy::Create(5, 2, always).ok());
}

TEST(AvailabilityPolicyTest, FirstRoundSelectsAvailableOnly) {
  auto policy = AvailabilityAwareCucbPolicy::Create(4, 2,
                                                    EvenRoundsOnly(1));
  ASSERT_TRUE(policy.ok());
  auto selected = policy.value().SelectRound(1);  // odd: seller 1 off
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value(), (std::vector<int>{0, 2, 3}));
}

TEST(AvailabilityPolicyTest, NeverSelectsUnavailableSeller) {
  auto policy = AvailabilityAwareCucbPolicy::Create(4, 2,
                                                    EvenRoundsOnly(2));
  ASSERT_TRUE(policy.ok());
  for (std::int64_t t = 1; t <= 40; ++t) {
    auto selected = policy.value().SelectRound(t);
    ASSERT_TRUE(selected.ok());
    std::vector<std::vector<double>> obs(selected.value().size(),
                                         std::vector<double>{0.5});
    for (int i : selected.value()) {
      if (t % 2 == 1) {
        EXPECT_NE(i, 2) << "round " << t;
      }
    }
    ASSERT_TRUE(policy.value().Observe(selected.value(), obs).ok());
  }
}

TEST(AvailabilityPolicyTest, SelectsAllWhenFewerThanKAvailable) {
  auto only_seller0 = [](int seller, std::int64_t) { return seller == 0; };
  auto policy = AvailabilityAwareCucbPolicy::Create(5, 3, only_seller0);
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(policy.value().Observe({0}, {{0.5}}).ok());
  auto selected = policy.value().SelectRound(2);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value(), (std::vector<int>{0}));
}

TEST(AvailabilityPolicyTest, ErrorsWhenNobodyAvailable) {
  auto nobody = [](int, std::int64_t) { return false; };
  auto policy = AvailabilityAwareCucbPolicy::Create(3, 1, nobody);
  ASSERT_TRUE(policy.ok());
  EXPECT_FALSE(policy.value().SelectRound(1).ok());
}

TEST(AvailabilityPolicyTest, EmptyObservationBatchesAreSkipped) {
  auto always = [](int, std::int64_t) { return true; };
  auto policy = AvailabilityAwareCucbPolicy::Create(3, 1, always);
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(policy.value().Observe({0, 1}, {{0.8}, {}}).ok());
  EXPECT_EQ(policy.value().estimator()->arm(0).observations, 1u);
  EXPECT_EQ(policy.value().estimator()->arm(1).observations, 0u);
}

// Property: under shift-based availability, the aware policy collects more
// quality than a blind CUCB that wastes slots on off-shift sellers.
TEST(AvailabilityPolicyTest, AwareBeatsBlindUnderShifts) {
  const int kSellers = 12, kSelect = 3, kRounds = 800;
  auto env = QualityEnvironment::Create([] {
    EnvironmentConfig config;
    config.num_sellers = kSellers;
    config.num_pois = 5;
    config.seed = 33;
    return config;
  }());
  ASSERT_TRUE(env.ok());
  // Half the sellers work "odd shifts", half "even shifts".
  auto shift = [](int seller, std::int64_t round) {
    return (seller % 2) == (round % 2);
  };

  auto run = [&](SelectionPolicy& policy, bool blind) {
    auto environment = QualityEnvironment::Create([] {
      EnvironmentConfig config;
      config.num_sellers = kSellers;
      config.num_pois = 5;
      config.seed = 33;
      return config;
    }());
    EXPECT_TRUE(environment.ok());
    (void)blind;
    double collected = 0.0;
    for (std::int64_t t = 1; t <= kRounds; ++t) {
      auto selected = policy.SelectRound(t);
      EXPECT_TRUE(selected.ok());
      // Data flows only from on-shift sellers; off-shift picks waste the
      // slot. Feed back only the non-empty batches (pairs stay aligned).
      std::vector<int> producing;
      std::vector<std::vector<double>> obs;
      for (int i : selected.value()) {
        if (shift(i, t)) {
          producing.push_back(i);
          obs.push_back(environment.value().ObserveSeller(i));
          for (double q : obs.back()) collected += q;
        }
      }
      if (!producing.empty()) {
        EXPECT_TRUE(policy.Observe(producing, obs).ok());
      }
    }
    return collected;
  };

  auto aware =
      AvailabilityAwareCucbPolicy::Create(kSellers, kSelect, shift);
  ASSERT_TRUE(aware.ok());
  CucbOptions options;
  options.num_sellers = kSellers;
  options.num_selected = kSelect;
  auto blind = CucbPolicy::Create(options);
  ASSERT_TRUE(blind.ok());

  double aware_quality = run(aware.value(), false);
  double blind_quality = run(blind.value(), true);
  EXPECT_GT(aware_quality, blind_quality * 1.2);
}

}  // namespace
}  // namespace bandit
}  // namespace cdt
