#include "bandit/cucb_policy.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "bandit/environment.h"

namespace cdt {
namespace bandit {
namespace {

CucbOptions Options(int m, int k) {
  CucbOptions options;
  options.num_sellers = m;
  options.num_selected = k;
  return options;
}

TEST(CucbPolicyTest, CreateValidatesArgs) {
  EXPECT_FALSE(CucbPolicy::Create(Options(0, 1)).ok());
  EXPECT_FALSE(CucbPolicy::Create(Options(5, 0)).ok());
  EXPECT_FALSE(CucbPolicy::Create(Options(5, 6)).ok());
  EXPECT_TRUE(CucbPolicy::Create(Options(5, 2)).ok());
}

TEST(CucbPolicyTest, DefaultExplorationIsKPlusOne) {
  auto policy = CucbPolicy::Create(Options(5, 3));
  ASSERT_TRUE(policy.ok());
  EXPECT_DOUBLE_EQ(policy.value().estimator()->exploration(), 4.0);
}

TEST(CucbPolicyTest, FirstRoundSelectsAllSellers) {
  auto policy = CucbPolicy::Create(Options(6, 2));
  ASSERT_TRUE(policy.ok());
  auto selected = policy.value().SelectRound(1);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value(), (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(CucbPolicyTest, ColdStartAblationSkipsSelectAll) {
  CucbOptions options = Options(6, 2);
  options.select_all_first_round = false;
  auto policy = CucbPolicy::Create(options);
  ASSERT_TRUE(policy.ok());
  auto selected = policy.value().SelectRound(1);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value().size(), 2u);
}

TEST(CucbPolicyTest, LaterRoundsSelectTopKByUcb) {
  auto policy = CucbPolicy::Create(Options(3, 1));
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(policy.value()
                  .Observe({0, 1, 2}, {{0.9, 0.9}, {0.5, 0.5}, {0.1, 0.1}})
                  .ok());
  auto selected = policy.value().SelectRound(2);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value(), (std::vector<int>{0}));
}

TEST(CucbPolicyTest, RejectsInvalidRoundAndMismatchedObserve) {
  auto policy = CucbPolicy::Create(Options(3, 1));
  ASSERT_TRUE(policy.ok());
  EXPECT_FALSE(policy.value().SelectRound(0).ok());
  EXPECT_FALSE(policy.value().Observe({0, 1}, {{0.5}}).ok());
}

TEST(CucbPolicyTest, ConvergesToBestSellersOnEasyInstance) {
  // Well-separated qualities: after enough rounds the policy should almost
  // always pick the true top-2.
  auto env = QualityEnvironment::CreateWithQualities(
      {0.9, 0.8, 0.3, 0.2, 0.1}, 5, 0.05, 17);
  ASSERT_TRUE(env.ok());
  auto policy = CucbPolicy::Create(Options(5, 2));
  ASSERT_TRUE(policy.ok());

  int correct_in_tail = 0;
  const int kRounds = 600, kTail = 100;
  for (int t = 1; t <= kRounds; ++t) {
    auto selected = policy.value().SelectRound(t);
    ASSERT_TRUE(selected.ok());
    std::vector<std::vector<double>> obs;
    for (int i : selected.value()) {
      obs.push_back(env.value().ObserveSeller(i));
    }
    ASSERT_TRUE(policy.value().Observe(selected.value(), obs).ok());
    if (t > kRounds - kTail) {
      std::vector<int> s = selected.value();
      std::sort(s.begin(), s.end());
      if (s == std::vector<int>{0, 1}) ++correct_in_tail;
    }
  }
  EXPECT_GE(correct_in_tail, 80);  // >= 80% of the tail rounds
}

}  // namespace
}  // namespace bandit
}  // namespace cdt
