#include "bandit/nonstationary_policies.h"

#include <functional>

#include <gtest/gtest.h>

#include "bandit/cucb_policy.h"
#include "bandit/drift_environment.h"

namespace cdt {
namespace bandit {
namespace {

TEST(SlidingWindowCucbTest, Validation) {
  EXPECT_FALSE(SlidingWindowCucbPolicy::Create(0, 1, 10).ok());
  EXPECT_FALSE(SlidingWindowCucbPolicy::Create(5, 0, 10).ok());
  EXPECT_FALSE(SlidingWindowCucbPolicy::Create(5, 6, 10).ok());
  EXPECT_FALSE(SlidingWindowCucbPolicy::Create(5, 2, 0).ok());
  auto ok = SlidingWindowCucbPolicy::Create(5, 2, 10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().name(), "sw-cucb(10)");
}

TEST(SlidingWindowCucbTest, WindowEvictsOldSamples) {
  auto policy = SlidingWindowCucbPolicy::Create(2, 1, 4);
  ASSERT_TRUE(policy.ok());
  // Fill arm 0 with low values, then flood with high: the window forgets.
  ASSERT_TRUE(policy.value().Observe({0}, {{0.1, 0.1, 0.1, 0.1}}).ok());
  EXPECT_NEAR(policy.value().WindowedMean(0), 0.1, 1e-12);
  ASSERT_TRUE(policy.value().Observe({0}, {{0.9, 0.9, 0.9, 0.9}}).ok());
  EXPECT_NEAR(policy.value().WindowedMean(0), 0.9, 1e-12);
  EXPECT_EQ(policy.value().WindowedCount(0), 4u);
}

TEST(SlidingWindowCucbTest, FirstRoundSelectsAll) {
  auto policy = SlidingWindowCucbPolicy::Create(4, 2, 16);
  ASSERT_TRUE(policy.ok());
  auto selected = policy.value().SelectRound(1);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value().size(), 4u);
}

TEST(SlidingWindowCucbTest, RejectsBadObservations) {
  auto policy = SlidingWindowCucbPolicy::Create(2, 1, 4);
  ASSERT_TRUE(policy.ok());
  EXPECT_FALSE(policy.value().Observe({0}, {{1.5}}).ok());
  EXPECT_FALSE(policy.value().Observe({5}, {{0.5}}).ok());
  EXPECT_FALSE(policy.value().Observe({0, 1}, {{0.5}}).ok());
}

TEST(DiscountedUcbTest, Validation) {
  EXPECT_FALSE(DiscountedUcbPolicy::Create(0, 1, 0.99).ok());
  EXPECT_FALSE(DiscountedUcbPolicy::Create(5, 6, 0.99).ok());
  EXPECT_FALSE(DiscountedUcbPolicy::Create(5, 1, 0.0).ok());
  EXPECT_FALSE(DiscountedUcbPolicy::Create(5, 1, 1.0001).ok());
  EXPECT_TRUE(DiscountedUcbPolicy::Create(5, 1, 1.0).ok());
}

TEST(DiscountedUcbTest, DecayFadesStaleEvidence) {
  auto policy = DiscountedUcbPolicy::Create(2, 1, 0.5);
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(policy.value().Observe({0}, {{1.0, 1.0}}).ok());
  double n0 = policy.value().DiscountedCount(0);
  EXPECT_NEAR(n0, 2.0, 1e-12);
  // Observe only arm 1 for several rounds: arm 0's count halves each time.
  for (int t = 0; t < 5; ++t) {
    ASSERT_TRUE(policy.value().Observe({1}, {{0.5}}).ok());
  }
  EXPECT_NEAR(policy.value().DiscountedCount(0), 2.0 / 32.0, 1e-12);
  EXPECT_NEAR(policy.value().DiscountedMean(0), 1.0, 1e-9);
}

TEST(DiscountedUcbTest, GammaOneMatchesStationaryMean) {
  auto policy = DiscountedUcbPolicy::Create(2, 1, 1.0);
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(policy.value().Observe({0}, {{0.2, 0.4, 0.6}}).ok());
  ASSERT_TRUE(policy.value().Observe({0}, {{0.8}}).ok());
  EXPECT_NEAR(policy.value().DiscountedMean(0), 0.5, 1e-12);
  EXPECT_NEAR(policy.value().DiscountedCount(0), 4.0, 1e-12);
}

// Runs a policy against a drifting environment and returns the dynamic
// regret (per-PoI units) plus optionally applies a scripted scenario.
double RunDynamicRegret(SelectionPolicy& policy, DriftingEnvironment& env,
                        int rounds,
                        const std::function<void(std::int64_t)>& script) {
  double achieved = 0.0, oracle = 0.0;
  for (int t = 1; t <= rounds; ++t) {
    if (script) script(t);
    auto selected = policy.SelectRound(t);
    EXPECT_TRUE(selected.ok());
    std::vector<std::vector<double>> obs;
    for (int i : selected.value()) {
      obs.push_back(env.ObserveSeller(i));
      achieved += env.effective_quality(i);
    }
    // Normalise rounds where the policy selects more than K (round 1).
    oracle += env.OracleTopK(static_cast<int>(selected.value().size()));
    EXPECT_TRUE(policy.Observe(selected.value(), obs).ok());
    env.AdvanceRound();
  }
  return oracle - achieved;
}

// Property: under random-walk drift the sliding-window policy tracks the
// moving optimum better than the stationary CUCB estimator.
TEST(NonstationaryTrackingTest, SlidingWindowBeatsStationaryUnderDrift) {
  const int kSellers = 10, kSelect = 2, kRounds = 3000;
  DriftConfig drift;
  drift.kind = DriftKind::kRandomWalk;
  drift.step_stddev = 0.02;  // fast drift

  std::vector<double> initial;
  stats::Xoshiro256 qrng(99);
  for (int i = 0; i < kSellers; ++i) {
    initial.push_back(qrng.NextDouble(0.05, 0.95));
  }

  CucbOptions options;
  options.num_sellers = kSellers;
  options.num_selected = kSelect;
  auto stationary = CucbPolicy::Create(options);
  ASSERT_TRUE(stationary.ok());
  auto window = SlidingWindowCucbPolicy::Create(kSellers, kSelect, 200);
  ASSERT_TRUE(window.ok());

  auto env_a = DriftingEnvironment::Create(initial, 5, 0.1, drift, 1234);
  auto env_b = DriftingEnvironment::Create(initial, 5, 0.1, drift, 1234);
  ASSERT_TRUE(env_a.ok());
  ASSERT_TRUE(env_b.ok());
  double regret_stationary =
      RunDynamicRegret(stationary.value(), env_a.value(), kRounds, nullptr);
  double regret_window =
      RunDynamicRegret(window.value(), env_b.value(), kRounds, nullptr);
  EXPECT_LT(regret_window, regret_stationary);
}

// Property: after an abrupt collapse of the best seller's quality, the
// discounted policy recovers (re-ranks) while the stationary estimator
// clings to its stale mean — its canonical failure mode.
TEST(NonstationaryTrackingTest, DiscountedRecoversFromAbruptCollapse) {
  const int kSellers = 5, kSelect = 1, kRounds = 4000;
  std::vector<double> initial{0.9, 0.6, 0.4, 0.3, 0.2};
  DriftConfig drift;
  drift.kind = DriftKind::kNone;

  auto make_script = [](DriftingEnvironment& env) {
    return [&env](std::int64_t t) {
      if (t == 1500) {
        // Seller 0's device breaks: quality collapses.
        EXPECT_TRUE(env.SetNominalQuality(0, 0.05).ok());
      }
    };
  };

  CucbOptions options;
  options.num_sellers = kSellers;
  options.num_selected = kSelect;
  auto stationary = CucbPolicy::Create(options);
  ASSERT_TRUE(stationary.ok());
  auto discounted = DiscountedUcbPolicy::Create(kSellers, kSelect, 0.998);
  ASSERT_TRUE(discounted.ok());

  auto env_a = DriftingEnvironment::Create(initial, 5, 0.1, drift, 77);
  auto env_b = DriftingEnvironment::Create(initial, 5, 0.1, drift, 77);
  ASSERT_TRUE(env_a.ok());
  ASSERT_TRUE(env_b.ok());
  double regret_stationary = RunDynamicRegret(
      stationary.value(), env_a.value(), kRounds, make_script(env_a.value()));
  double regret_discounted = RunDynamicRegret(
      discounted.value(), env_b.value(), kRounds, make_script(env_b.value()));
  EXPECT_LT(regret_discounted, regret_stationary);
}

}  // namespace
}  // namespace bandit
}  // namespace cdt
