#include "bandit/drift_environment.h"

#include <gtest/gtest.h>

namespace cdt {
namespace bandit {
namespace {

DriftConfig WalkConfig(double step = 0.01) {
  DriftConfig drift;
  drift.kind = DriftKind::kRandomWalk;
  drift.step_stddev = step;
  return drift;
}

TEST(DriftConfigTest, Validation) {
  EXPECT_TRUE(WalkConfig().Validate().ok());
  EXPECT_FALSE(WalkConfig(0.0).Validate().ok());

  DriftConfig abrupt;
  abrupt.kind = DriftKind::kAbrupt;
  abrupt.period = 0;
  EXPECT_FALSE(abrupt.Validate().ok());
  abrupt.period = 100;
  EXPECT_TRUE(abrupt.Validate().ok());

  DriftConfig bad = WalkConfig();
  bad.quality_lo = 0.8;
  bad.quality_hi = 0.2;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(DriftingEnvironmentTest, CreateValidation) {
  EXPECT_FALSE(
      DriftingEnvironment::Create({}, 4, 0.1, WalkConfig(), 1).ok());
  EXPECT_FALSE(
      DriftingEnvironment::Create({0.5}, 0, 0.1, WalkConfig(), 1).ok());
  EXPECT_FALSE(
      DriftingEnvironment::Create({0.5}, 4, 0.0, WalkConfig(), 1).ok());
  EXPECT_FALSE(
      DriftingEnvironment::Create({1.5}, 4, 0.1, WalkConfig(), 1).ok());
  EXPECT_TRUE(
      DriftingEnvironment::Create({0.5, 0.7}, 4, 0.1, WalkConfig(), 1).ok());
}

TEST(DriftingEnvironmentTest, NoneKindIsStationary) {
  DriftConfig drift;
  drift.kind = DriftKind::kNone;
  auto env = DriftingEnvironment::Create({0.3, 0.9}, 4, 0.1, drift, 7);
  ASSERT_TRUE(env.ok());
  for (int t = 0; t < 100; ++t) env.value().AdvanceRound();
  EXPECT_DOUBLE_EQ(env.value().nominal_quality(0), 0.3);
  EXPECT_DOUBLE_EQ(env.value().nominal_quality(1), 0.9);
  EXPECT_EQ(env.value().round(), 100);
}

TEST(DriftingEnvironmentTest, RandomWalkStaysInSupport) {
  auto env =
      DriftingEnvironment::Create({0.01, 0.99, 0.5}, 4, 0.1,
                                  WalkConfig(0.05), 3);
  ASSERT_TRUE(env.ok());
  for (int t = 0; t < 2000; ++t) {
    env.value().AdvanceRound();
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(env.value().nominal_quality(i), 0.0);
      EXPECT_LE(env.value().nominal_quality(i), 1.0);
    }
  }
}

TEST(DriftingEnvironmentTest, RandomWalkActuallyMoves) {
  auto env = DriftingEnvironment::Create({0.5}, 4, 0.1, WalkConfig(0.02), 5);
  ASSERT_TRUE(env.ok());
  for (int t = 0; t < 500; ++t) env.value().AdvanceRound();
  EXPECT_NE(env.value().nominal_quality(0), 0.5);
}

TEST(DriftingEnvironmentTest, AbruptChangesOnlyAtPeriod) {
  DriftConfig drift;
  drift.kind = DriftKind::kAbrupt;
  drift.period = 10;
  auto env =
      DriftingEnvironment::Create({0.2, 0.4, 0.6}, 4, 0.1, drift, 11);
  ASSERT_TRUE(env.ok());
  std::vector<double> before{0.2, 0.4, 0.6};
  for (int t = 1; t <= 9; ++t) {
    env.value().AdvanceRound();
    for (int i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(env.value().nominal_quality(i), before[i]) << t;
    }
  }
  env.value().AdvanceRound();  // round 10: exactly one seller resamples
  int changed = 0;
  for (int i = 0; i < 3; ++i) {
    if (env.value().nominal_quality(i) != before[i]) ++changed;
  }
  EXPECT_LE(changed, 1);
}

TEST(DriftingEnvironmentTest, ObservationsInUnitInterval) {
  auto env = DriftingEnvironment::Create({0.95}, 8, 0.3, WalkConfig(), 13);
  ASSERT_TRUE(env.ok());
  for (int t = 0; t < 200; ++t) {
    for (double q : env.value().ObserveSeller(0)) {
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
    env.value().AdvanceRound();
  }
}

TEST(DriftingEnvironmentTest, OracleTracksCurrentQualities) {
  DriftConfig drift;
  drift.kind = DriftKind::kNone;
  auto env = DriftingEnvironment::Create({0.2, 0.9, 0.5}, 4, 0.05, drift, 1);
  ASSERT_TRUE(env.ok());
  double expected = env.value().effective_quality(1) +
                    env.value().effective_quality(2);
  EXPECT_NEAR(env.value().OracleTopK(2), expected, 1e-12);
}

}  // namespace
}  // namespace bandit
}  // namespace cdt
