#include "bandit/extension_policies.h"

#include <set>

#include <gtest/gtest.h>

#include "bandit/environment.h"

namespace cdt {
namespace bandit {
namespace {

template <typename Policy>
double RunPolicyMeanQuality(Policy& policy, QualityEnvironment& env,
                            int rounds) {
  double total = 0.0;
  std::int64_t picks = 0;
  for (int t = 1; t <= rounds; ++t) {
    auto selected = policy.SelectRound(t);
    EXPECT_TRUE(selected.ok());
    std::vector<std::vector<double>> obs;
    for (int i : selected.value()) {
      obs.push_back(env.ObserveSeller(i));
      total += env.effective_quality(i);
      ++picks;
    }
    EXPECT_TRUE(policy.Observe(selected.value(), obs).ok());
  }
  return total / static_cast<double>(picks);
}

TEST(EpsilonGreedyPolicyTest, Validation) {
  EXPECT_FALSE(EpsilonGreedyPolicy::Create(0, 1, 0.1, 1).ok());
  EXPECT_FALSE(EpsilonGreedyPolicy::Create(5, 6, 0.1, 1).ok());
  EXPECT_FALSE(EpsilonGreedyPolicy::Create(5, 1, 0.0, 1).ok());
  EXPECT_FALSE(EpsilonGreedyPolicy::Create(5, 1, 1.0, 1).ok());
  auto ok = EpsilonGreedyPolicy::Create(5, 1, 0.2, 1);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().name(), "0.2-greedy");
}

TEST(EpsilonGreedyPolicyTest, BeatsUniformOnEasyInstance) {
  auto env = QualityEnvironment::CreateWithQualities(
      {0.9, 0.7, 0.3, 0.2, 0.1}, 5, 0.05, 21);
  ASSERT_TRUE(env.ok());
  auto policy = EpsilonGreedyPolicy::Create(5, 1, 0.1, 3);
  ASSERT_TRUE(policy.ok());
  double mean_quality =
      RunPolicyMeanQuality(policy.value(), env.value(), 400);
  // Uniform selection would average ~0.44; exploitation should beat it.
  EXPECT_GT(mean_quality, 0.6);
}

TEST(ThompsonPolicyTest, Validation) {
  EXPECT_FALSE(ThompsonPolicy::Create(0, 1, 1).ok());
  EXPECT_FALSE(ThompsonPolicy::Create(3, 4, 1).ok());
  EXPECT_TRUE(ThompsonPolicy::Create(3, 2, 1).ok());
}

TEST(ThompsonPolicyTest, SelectsKDistinct) {
  auto policy = ThompsonPolicy::Create(8, 3, 5);
  ASSERT_TRUE(policy.ok());
  auto selected = policy.value().SelectRound(1);
  ASSERT_TRUE(selected.ok());
  std::set<int> unique(selected.value().begin(), selected.value().end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(ThompsonPolicyTest, ConvergesOnEasyInstance) {
  auto env = QualityEnvironment::CreateWithQualities(
      {0.95, 0.6, 0.3, 0.15, 0.05}, 5, 0.05, 29);
  ASSERT_TRUE(env.ok());
  auto policy = ThompsonPolicy::Create(5, 1, 13);
  ASSERT_TRUE(policy.ok());
  double mean_quality =
      RunPolicyMeanQuality(policy.value(), env.value(), 500);
  EXPECT_GT(mean_quality, 0.7);
}

}  // namespace
}  // namespace bandit
}  // namespace cdt
