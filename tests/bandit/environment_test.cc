#include "bandit/environment.h"

#include <gtest/gtest.h>

#include "stats/summary.h"

namespace cdt {
namespace bandit {
namespace {

TEST(EnvironmentConfigTest, Validation) {
  EnvironmentConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_sellers = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.num_pois = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.observation_stddev = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.quality_lo = 0.5;
  config.quality_hi = 0.5;
  EXPECT_FALSE(config.Validate().ok());
  config = {};
  config.quality_hi = 1.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(QualityEnvironmentTest, GeneratedQualitiesRespectRange) {
  EnvironmentConfig config;
  config.num_sellers = 100;
  config.quality_lo = 0.2;
  config.quality_hi = 0.8;
  auto env = QualityEnvironment::Create(config);
  ASSERT_TRUE(env.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(env.value().nominal_quality(i), 0.2);
    EXPECT_LE(env.value().nominal_quality(i), 0.8);
  }
}

TEST(QualityEnvironmentTest, ObservationsWithinUnitInterval) {
  auto env = QualityEnvironment::CreateWithQualities({0.1, 0.5, 0.95}, 8,
                                                     0.2, 11);
  ASSERT_TRUE(env.ok());
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 3; ++i) {
      for (double q : env.value().ObserveSeller(i)) {
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 1.0);
      }
    }
  }
}

TEST(QualityEnvironmentTest, ObservationCountIsL) {
  auto env = QualityEnvironment::CreateWithQualities({0.5}, 10, 0.1, 1);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env.value().ObserveSeller(0).size(), 10u);
}

TEST(QualityEnvironmentTest, EmpiricalMeanMatchesEffectiveQuality) {
  auto env = QualityEnvironment::CreateWithQualities({0.9}, 10, 0.3, 5);
  ASSERT_TRUE(env.ok());
  stats::RunningSummary summary;
  for (int i = 0; i < 5000; ++i) {
    for (double q : env.value().ObserveSeller(0)) summary.Add(q);
  }
  EXPECT_NEAR(summary.mean(), env.value().effective_quality(0), 0.01);
  // Truncation near the upper bound pulls the effective below nominal.
  EXPECT_LT(env.value().effective_quality(0),
            env.value().nominal_quality(0));
}

TEST(QualityEnvironmentTest, OptimalSetIsTopKByEffectiveQuality) {
  auto env = QualityEnvironment::CreateWithQualities(
      {0.3, 0.8, 0.5, 0.9, 0.1}, 4, 0.05, 2);
  ASSERT_TRUE(env.ok());
  EXPECT_EQ(env.value().OptimalSet(2), (std::vector<int>{3, 1}));
  EXPECT_NEAR(env.value().OptimalSetQuality(2),
              env.value().effective_quality(3) +
                  env.value().effective_quality(1),
              1e-12);
}

TEST(QualityEnvironmentTest, RejectsBadExplicitQualities) {
  EXPECT_FALSE(
      QualityEnvironment::CreateWithQualities({}, 4, 0.1, 1).ok());
  EXPECT_FALSE(
      QualityEnvironment::CreateWithQualities({1.2}, 4, 0.1, 1).ok());
  EXPECT_FALSE(
      QualityEnvironment::CreateWithQualities({0.5}, 0, 0.1, 1).ok());
}

TEST(QualityEnvironmentTest, SameSeedSameQualities) {
  EnvironmentConfig config;
  config.num_sellers = 20;
  config.seed = 99;
  auto a = QualityEnvironment::Create(config);
  auto b = QualityEnvironment::Create(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.value().nominal_quality(i),
                     b.value().nominal_quality(i));
  }
}

}  // namespace
}  // namespace bandit
}  // namespace cdt
