// Lazy top-K selector and heap-select correctness: both must reproduce the
// reference (iota + partial_sort over a full UCB scan) selection bit for
// bit under adversarial update patterns — ties, mass invalidation,
// cold-start arms, and restored-from-snapshot banks.

#include "bandit/topk.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "bandit/arm.h"
#include "bandit/cucb_policy.h"
#include "stats/rng.h"

namespace cdt {
namespace bandit {
namespace {

std::vector<int> ReferenceTopK(const EstimatorBank& bank, int k) {
  std::vector<double> ucb;
  bank.UcbValuesInto(&ucb);
  std::vector<int> out;
  TopKIndicesPartialSortInto(ucb, k, &out);
  return out;
}

EstimatorBank MakeBank(int m, double exploration) {
  auto bank = EstimatorBank::Create(m, exploration);
  EXPECT_TRUE(bank.ok());
  return std::move(bank).value();
}

// Quantized observation batch: coarse values manufacture exact mean ties.
std::vector<double> QuantizedBatch(stats::Xoshiro256& rng, int len,
                                   int levels) {
  std::vector<double> batch(static_cast<std::size_t>(len));
  for (double& q : batch) {
    q = std::floor(rng.NextDouble() * levels) / levels;
  }
  return batch;
}

TEST(TopKIndicesIntoTest, MatchesPartialSortOnRandomInputs) {
  stats::Xoshiro256 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    int m = 1 + static_cast<int>(rng.NextDouble() * 400);
    std::vector<double> values(static_cast<std::size_t>(m));
    for (double& v : values) {
      // Quantized so duplicates are common; sprinkle in ±inf sentinels
      // (cold arms and availability masks use them).
      double u = rng.NextDouble();
      if (u < 0.05) {
        v = std::numeric_limits<double>::infinity();
      } else if (u < 0.1) {
        v = -std::numeric_limits<double>::infinity();
      } else {
        v = std::floor(u * 16.0) / 16.0;
      }
    }
    int k = static_cast<int>(rng.NextDouble() * (m + 4));
    std::vector<int> heap_select, partial_sort;
    TopKIndicesInto(values, k, &heap_select);
    TopKIndicesPartialSortInto(values, k, &partial_sort);
    EXPECT_EQ(heap_select, partial_sort)
        << "m=" << m << " k=" << k << " trial=" << trial;
  }
}

TEST(TopKIndicesIntoTest, HandlesEdgeSizes) {
  std::vector<double> v{1.0, 2.0};
  std::vector<int> out{9, 9, 9};
  TopKIndicesInto(v, 0, &out);
  EXPECT_TRUE(out.empty());
  TopKIndicesInto(v, 5, &out);
  EXPECT_EQ(out, (std::vector<int>{1, 0}));
  std::vector<double> one{0.5};
  TopKIndicesInto(one, 1, &out);
  EXPECT_EQ(out, (std::vector<int>{0}));
}

TEST(LazyTopKSelectorTest, MatchesReferenceAcrossRounds) {
  const int m = 200, k = 10, batch_len = 5;
  EstimatorBank bank = MakeBank(m, static_cast<double>(k + 1));
  LazyTopKSelector selector;
  stats::Xoshiro256 rng(42);

  // Round 1: Algorithm 1 observes every arm (mass invalidation).
  for (int i = 0; i < m; ++i) {
    ASSERT_TRUE(bank.Update(i, QuantizedBatch(rng, batch_len, 8)).ok());
    selector.Invalidate(bank, i);
  }
  std::vector<int> lazy;
  for (int round = 2; round <= 500; ++round) {
    selector.SelectInto(bank, k, &lazy);
    ASSERT_EQ(lazy, ReferenceTopK(bank, k)) << "round " << round;
    for (int sel : lazy) {
      ASSERT_TRUE(bank.Update(sel, QuantizedBatch(rng, batch_len, 8)).ok());
      selector.Invalidate(bank, sel);
    }
  }
  // Quantized ties force conservative rebuilds (an exact tie at the pool
  // boundary is never trusted), but most rounds must still resolve from
  // the pool alone.
  EXPECT_LT(selector.full_rebuilds(), 250);
  EXPECT_GT(selector.entries_revalidated(), 0);
}

TEST(LazyTopKSelectorTest, SteadyStateAmortizesRebuilds) {
  const int m = 2000, k = 20;
  EstimatorBank bank = MakeBank(m, static_cast<double>(k + 1));
  LazyTopKSelector selector;
  stats::Xoshiro256 rng(5);
  // Continuous observations: tie-free values, the regime the pool margin
  // is sized for. Rebuilds should land every ~(P − K)/K rounds, far below
  // one per round.
  std::vector<double> batch(4);
  for (int i = 0; i < m; ++i) {
    for (double& q : batch) q = rng.NextDouble();
    ASSERT_TRUE(bank.Update(i, batch).ok());
    selector.Invalidate(bank, i);
  }
  const int rounds = 300;
  std::vector<int> lazy;
  for (int round = 2; round <= rounds; ++round) {
    selector.SelectInto(bank, k, &lazy);
    ASSERT_EQ(lazy, ReferenceTopK(bank, k)) << "round " << round;
    for (int sel : lazy) {
      for (double& q : batch) q = rng.NextDouble();
      ASSERT_TRUE(bank.Update(sel, batch).ok());
      selector.Invalidate(bank, sel);
    }
  }
  EXPECT_LT(selector.full_rebuilds(), rounds / 4);
  // The pool stays a small fraction of the bank.
  EXPECT_LT(selector.pool_size(), static_cast<std::size_t>(m) / 2);
}

TEST(LazyTopKSelectorTest, MassInvalidationFallsBackToRebuild) {
  const int m = 64, k = 8;
  EstimatorBank bank = MakeBank(m, static_cast<double>(k + 1));
  LazyTopKSelector selector;
  stats::Xoshiro256 rng(3);
  std::vector<int> lazy;
  for (int round = 1; round <= 20; ++round) {
    // Every arm updated every round: pending covers the whole bank, so the
    // selector must take the full-rescan route — and stay correct.
    for (int i = 0; i < m; ++i) {
      ASSERT_TRUE(bank.Update(i, QuantizedBatch(rng, 3, 4)).ok());
      selector.Invalidate(bank, i);
    }
    selector.SelectInto(bank, k, &lazy);
    ASSERT_EQ(lazy, ReferenceTopK(bank, k)) << "round " << round;
  }
  EXPECT_GE(selector.full_rebuilds(), 20);
}

TEST(LazyTopKSelectorTest, ColdStartEmitsUnexploredFirst) {
  const int m = 50, k = 12;
  EstimatorBank bank = MakeBank(m, 4.0);
  LazyTopKSelector selector;
  stats::Xoshiro256 rng(11);

  // No select-all round: only a drifting subset ever gets observed, the
  // rest stay cold (+inf UCB, ascending-index ties).
  std::vector<int> lazy;
  for (int round = 1; round <= 60; ++round) {
    selector.SelectInto(bank, k, &lazy);
    ASSERT_EQ(lazy, ReferenceTopK(bank, k)) << "round " << round;
    // Observe a couple of arbitrary arms (not necessarily the selected
    // ones) so warm/cold membership shifts between selections.
    for (int j = 0; j < 2; ++j) {
      int arm = (round * 7 + j * 13) % m;
      ASSERT_TRUE(bank.Update(arm, QuantizedBatch(rng, 4, 4)).ok());
      selector.Invalidate(bank, arm);
    }
  }
  // Selecting more arms than are warm must also match (k > warm count).
  EstimatorBank sparse = MakeBank(10, 2.0);
  LazyTopKSelector sparse_selector;
  ASSERT_TRUE(sparse.Update(4, {0.5}).ok());
  sparse_selector.Invalidate(sparse, 4);
  std::vector<int> got;
  sparse_selector.SelectInto(sparse, 10, &got);
  EXPECT_EQ(got, ReferenceTopK(sparse, 10));
}

TEST(LazyTopKSelectorTest, ExactTiesBreakByIndex) {
  const int m = 40, k = 6;
  EstimatorBank bank = MakeBank(m, static_cast<double>(k + 1));
  LazyTopKSelector selector;
  // Identical evidence everywhere: every warm arm has the same mean and
  // count, so all M UCB values are exactly equal.
  for (int i = 0; i < m; ++i) {
    ASSERT_TRUE(bank.Update(i, {0.5, 0.5, 0.5}).ok());
    selector.Invalidate(bank, i);
  }
  std::vector<int> lazy;
  selector.SelectInto(bank, k, &lazy);
  EXPECT_EQ(lazy, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(lazy, ReferenceTopK(bank, k));
  // Re-select without any update: still the same answer.
  selector.SelectInto(bank, k, &lazy);
  EXPECT_EQ(lazy, ReferenceTopK(bank, k));
}

TEST(LazyTopKSelectorTest, DetectsSnapshotRestore) {
  const int m = 30, k = 5;
  EstimatorBank bank = MakeBank(m, static_cast<double>(k + 1));
  LazyTopKSelector selector;
  stats::Xoshiro256 rng(17);
  for (int i = 0; i < m; ++i) {
    ASSERT_TRUE(bank.Update(i, QuantizedBatch(rng, 4, 8)).ok());
    selector.Invalidate(bank, i);
  }
  std::vector<int> lazy;
  selector.SelectInto(bank, k, &lazy);

  // Capture the state, keep learning, then restore — WITHOUT telling the
  // selector. The total-observations mismatch must force a resync.
  std::vector<ArmState> snapshot(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) snapshot[static_cast<std::size_t>(i)] = bank.arm(i);
  std::uint64_t snapshot_total = bank.total_observations();
  for (int round = 0; round < 5; ++round) {
    selector.SelectInto(bank, k, &lazy);
    for (int sel : lazy) {
      ASSERT_TRUE(bank.Update(sel, QuantizedBatch(rng, 4, 8)).ok());
      selector.Invalidate(bank, sel);
    }
  }
  ASSERT_TRUE(bank.Restore(snapshot, snapshot_total).ok());
  selector.SelectInto(bank, k, &lazy);
  EXPECT_EQ(lazy, ReferenceTopK(bank, k));

  // Same-total restore: swap two arms' states (the sum is unchanged, so
  // only the bank's epoch counter can reveal the swap).
  std::swap(snapshot[0], snapshot[1]);
  ASSERT_TRUE(bank.Restore(snapshot, snapshot_total).ok());
  selector.SelectInto(bank, k, &lazy);
  EXPECT_EQ(lazy, ReferenceTopK(bank, k));
}

TEST(CucbPolicyPathsTest, ReferenceAndOptimizedSelectIdentically) {
  CucbOptions options;
  options.num_sellers = 150;
  options.num_selected = 7;
  CucbOptions reference_options = options;
  reference_options.reference_selection_path = true;

  auto optimized = CucbPolicy::Create(options);
  auto reference = CucbPolicy::Create(reference_options);
  ASSERT_TRUE(optimized.ok());
  ASSERT_TRUE(reference.ok());

  stats::Xoshiro256 rng(1234);
  std::vector<int> a, b;
  std::vector<std::vector<double>> batches;
  for (std::int64_t round = 1; round <= 300; ++round) {
    ASSERT_TRUE(optimized.value().SelectRoundInto(round, &a).ok());
    ASSERT_TRUE(reference.value().SelectRoundInto(round, &b).ok());
    ASSERT_EQ(a, b) << "round " << round;
    batches.clear();
    for (std::size_t j = 0; j < a.size(); ++j) {
      batches.push_back(QuantizedBatch(rng, 6, 8));
    }
    ASSERT_TRUE(optimized.value().Observe(a, batches).ok());
    ASSERT_TRUE(reference.value().Observe(b, batches).ok());
  }
}

}  // namespace
}  // namespace bandit
}  // namespace cdt
