#include "bandit/baseline_policies.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace cdt {
namespace bandit {
namespace {

TEST(SampleDistinctTest, ProducesKDistinctInRange) {
  stats::Xoshiro256 rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    auto sample = SampleDistinct(rng, 10, 4);
    EXPECT_EQ(sample.size(), 4u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 4u);
    for (int i : sample) {
      EXPECT_GE(i, 0);
      EXPECT_LT(i, 10);
    }
  }
}

TEST(SampleDistinctTest, KCappedAtN) {
  stats::Xoshiro256 rng(2);
  auto sample = SampleDistinct(rng, 3, 7);
  EXPECT_EQ(sample.size(), 3u);
}

TEST(SampleDistinctTest, UniformOverSubsets) {
  stats::Xoshiro256 rng(3);
  std::vector<int> hits(5, 0);
  const int kTrials = 50000;
  for (int t = 0; t < kTrials; ++t) {
    for (int i : SampleDistinct(rng, 5, 2)) ++hits[i];
  }
  for (int h : hits) {
    EXPECT_NEAR(h, kTrials * 2 / 5, kTrials / 50);
  }
}

TEST(OraclePolicyTest, AlwaysSelectsTrueTopK) {
  auto policy = OraclePolicy::Create({0.2, 0.9, 0.5, 0.7}, 2);
  ASSERT_TRUE(policy.ok());
  for (int t = 1; t <= 5; ++t) {
    auto selected = policy.value().SelectRound(t);
    ASSERT_TRUE(selected.ok());
    EXPECT_EQ(selected.value(), (std::vector<int>{1, 3}));
  }
}

TEST(OraclePolicyTest, Validation) {
  EXPECT_FALSE(OraclePolicy::Create({}, 1).ok());
  EXPECT_FALSE(OraclePolicy::Create({0.5}, 0).ok());
  EXPECT_FALSE(OraclePolicy::Create({0.5}, 2).ok());
}

TEST(EpsilonFirstPolicyTest, ExploresThenExploits) {
  auto policy = EpsilonFirstPolicy::Create(4, 1, 100, 0.1, 7);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy.value().exploration_rounds(), 10);
  EXPECT_EQ(policy.value().name(), "0.1-first");

  // During exploration, feed arm 3 high rewards whenever it is chosen, and
  // arm contents otherwise low; afterwards it should exploit the best mean.
  for (int t = 1; t <= 10; ++t) {
    auto selected = policy.value().SelectRound(t);
    ASSERT_TRUE(selected.ok());
    std::vector<std::vector<double>> obs;
    for (int i : selected.value()) {
      obs.push_back({i == 3 ? 0.95 : 0.05});
    }
    ASSERT_TRUE(policy.value().Observe(selected.value(), obs).ok());
  }
  // Ensure arm 3 has been seen at least once; if not, seed guarantees vary,
  // so feed it directly (policies accept any observe set).
  ASSERT_TRUE(policy.value().Observe({3}, {{0.95}}).ok());
  auto selected = policy.value().SelectRound(11);
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value(), (std::vector<int>{3}));
}

TEST(EpsilonFirstPolicyTest, Validation) {
  EXPECT_FALSE(EpsilonFirstPolicy::Create(0, 1, 10, 0.1, 1).ok());
  EXPECT_FALSE(EpsilonFirstPolicy::Create(5, 0, 10, 0.1, 1).ok());
  EXPECT_FALSE(EpsilonFirstPolicy::Create(5, 1, 0, 0.1, 1).ok());
  EXPECT_FALSE(EpsilonFirstPolicy::Create(5, 1, 10, 0.0, 1).ok());
  EXPECT_FALSE(EpsilonFirstPolicy::Create(5, 1, 10, 1.0, 1).ok());
}

TEST(EpsilonFirstPolicyTest, ExplorationRoundsAtLeastOne) {
  auto policy = EpsilonFirstPolicy::Create(5, 1, 3, 0.05, 1);
  ASSERT_TRUE(policy.ok());
  EXPECT_GE(policy.value().exploration_rounds(), 1);
}

TEST(RandomPolicyTest, SelectsKDistinctEveryRound) {
  auto policy = RandomPolicy::Create(10, 3, 5);
  ASSERT_TRUE(policy.ok());
  for (int t = 1; t <= 50; ++t) {
    auto selected = policy.value().SelectRound(t);
    ASSERT_TRUE(selected.ok());
    std::set<int> unique(selected.value().begin(), selected.value().end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(RandomPolicyTest, CoversAllSellersEventually) {
  auto policy = RandomPolicy::Create(6, 2, 9);
  ASSERT_TRUE(policy.ok());
  std::set<int> seen;
  for (int t = 1; t <= 100; ++t) {
    auto selected = policy.value().SelectRound(t);
    ASSERT_TRUE(selected.ok());
    seen.insert(selected.value().begin(), selected.value().end());
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RandomPolicyTest, DeterministicForSeed) {
  auto a = RandomPolicy::Create(10, 3, 123);
  auto b = RandomPolicy::Create(10, 3, 123);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int t = 1; t <= 10; ++t) {
    EXPECT_EQ(a.value().SelectRound(t).value(),
              b.value().SelectRound(t).value());
  }
}

}  // namespace
}  // namespace bandit
}  // namespace cdt
