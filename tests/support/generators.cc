#include "support/generators.h"

#include <algorithm>

namespace cdt {
namespace testsupport {

game::GameConfig RandomGameConfig(stats::Xoshiro256& rng) {
  game::GameConfig config;
  int k = 1 + static_cast<int>(rng.NextBounded(25));
  for (int i = 0; i < k; ++i) {
    config.sellers.push_back(
        {rng.NextDouble(0.05, 2.0), rng.NextDouble(0.0, 2.0)});
    config.qualities.push_back(rng.NextDouble(0.01, 1.0));
  }
  config.platform = {rng.NextDouble(0.01, 2.0), rng.NextDouble(0.0, 3.0)};
  config.valuation = {rng.NextDouble(1.5, 2000.0)};
  // Mix of binding and non-binding boxes/caps.
  double p_hi = rng.NextDouble(0.5, 50.0);
  config.collection_price_bounds = {0.01, p_hi};
  config.consumer_price_bounds = {0.01, rng.NextDouble(5.0, 400.0)};
  config.max_sensing_time =
      rng.NextDouble() < 0.5 ? rng.NextDouble(0.1, 5.0) : 1e6;
  return config;
}

core::MechanismConfig RandomMechanismConfig(stats::Xoshiro256& rng) {
  core::MechanismConfig config;
  config.num_sellers = 2 + static_cast<int>(rng.NextBounded(24));
  config.num_selected =
      1 + static_cast<int>(rng.NextBounded(
              static_cast<std::uint64_t>(std::min(config.num_sellers, 8))));
  config.num_pois = 1 + static_cast<int>(rng.NextBounded(6));
  config.num_rounds = 30 + static_cast<std::int64_t>(rng.NextBounded(50));
  config.observation_stddev = rng.NextDouble(0.05, 0.3);
  config.seller_a_lo = rng.NextDouble(0.05, 0.5);
  config.seller_a_hi = config.seller_a_lo + rng.NextDouble(0.0, 1.5);
  config.seller_b_lo = rng.NextDouble(0.0, 0.5);
  config.seller_b_hi = config.seller_b_lo + rng.NextDouble(0.0, 1.5);
  config.theta = rng.NextDouble(0.01, 1.0);
  config.lambda = rng.NextDouble(0.0, 2.0);
  config.omega = rng.NextDouble(50.0, 2000.0);
  config.collection_price_min = 0.01;
  config.collection_price_max = rng.NextDouble(0.5, 20.0);
  config.consumer_price_min = 0.01;
  config.consumer_price_max = rng.NextDouble(5.0, 400.0);
  // Mix of binding and non-binding sensing-time caps.
  config.round_duration =
      rng.NextDouble() < 0.5 ? rng.NextDouble(0.5, 5.0) : 1000.0;
  config.initial_tau =
      rng.NextDouble(0.1, 1.0) * std::min(config.round_duration, 2.0);
  config.seed = rng.Next();
  return config;
}

}  // namespace testsupport
}  // namespace cdt
