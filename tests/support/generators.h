// Shared randomized-configuration generators for property and fuzz tests.
//
// Every generator draws from the caller's RNG so a test's GetParam() seed
// fully determines the configuration, and every draw is valid by
// construction (Validate() passes) so tests can focus on behaviour.

#ifndef CDT_TESTS_SUPPORT_GENERATORS_H_
#define CDT_TESTS_SUPPORT_GENERATORS_H_

#include "core/config.h"
#include "game/stackelberg.h"
#include "stats/rng.h"

namespace cdt {
namespace testsupport {

/// One-round HS game instance spanning the regimes the paper's interior
/// closed forms do not cover: tight sensing-time caps, tight price boxes,
/// near-zero qualities, and extreme platform costs.
game::GameConfig RandomGameConfig(stats::Xoshiro256& rng);

/// Full-mechanism configuration at property-test scale (small M, K, L and
/// a modest round budget) with randomized economics. Always validates.
core::MechanismConfig RandomMechanismConfig(stats::Xoshiro256& rng);

}  // namespace testsupport
}  // namespace cdt

#endif  // CDT_TESTS_SUPPORT_GENERATORS_H_
