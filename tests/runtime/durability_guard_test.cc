// The durability circuit breaker under deterministic disk faults:
// storage failures degrade instead of crashing, trading continues
// byte-identically to a fault-free run, re-arm probes restore full
// durability through a rebased log, a permanent fault ends in an
// explicit quarantine, and snapshot-compaction bounds log growth while
// preserving exact recovery.

#include <cstdint>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/config.h"
#include "market/trading_engine.h"
#include "persist/event_log.h"
#include "persist/io_hooks.h"
#include "persist/replay.h"
#include "persist/serialize.h"
#include "runtime/durability.h"
#include "runtime/marketplace.h"

namespace cdt {
namespace runtime {
namespace {

namespace fs = std::filesystem;
using persist::IoFault;
using persist::IoHooks;
using persist::IoOp;

MarketplaceSpec SmallSpec(std::int64_t rounds) {
  MarketplaceSpec spec;
  spec.config.num_sellers = 8;
  spec.config.num_selected = 2;
  spec.config.num_pois = 3;
  spec.config.num_rounds = rounds;
  spec.config.seed = 0xD17A;
  return spec;
}

Event Demand(const std::string& id, std::int64_t rounds) {
  Event event;
  event.type = EventType::kConsumerDemand;
  event.marketplace = id;
  event.rounds = rounds;
  return event;
}

std::string EngineBytes(const HostedMarketplace& marketplace) {
  std::string bytes;
  persist::EncodeEngineSnapshot(
      marketplace.run().engine().CaptureSnapshot(), &bytes);
  return bytes;
}

class DurabilityGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    IoHooks::Instance().Reset();
    dir_ = (fs::temp_directory_path() /
            ("cdt_durability_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    IoHooks::Instance().Reset();
    fs::remove_all(dir_);
  }

  std::int64_t ApplyDemand(HostedMarketplace& marketplace,
                           std::int64_t rounds) {
    std::int64_t remaining = 0;
    Status status =
        marketplace.ApplyEvent(Demand(marketplace.id(), rounds),
                               /*max_rounds=*/0, &remaining);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return remaining;
  }

  using Status = util::Status;
  std::string dir_;
};

TEST_F(DurabilityGuardTest, EnospcWindowDegradesRearmsAndStaysByteTrue) {
  // Reference: the same spec with no faults.
  HostedMarketplace::Options options;
  options.wal_dir = dir_;
  options.snapshot_every = 4;
  options.durability.degrade_after_failures = 3;
  options.durability.rearm_initial_rounds = 4;
  options.durability.rearm_max_rounds = 64;
  auto reference =
      HostedMarketplace::Create("ref", SmallSpec(60), options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ApplyDemand(*reference.value(), 60);
  const std::string want = EngineBytes(*reference.value());
  ASSERT_TRUE(reference.value()->FinishWal().ok());

  // Faulted: a 2-op ENOSPC window on writes. The first failed append
  // makes the log writer's error sticky, so the next two rounds fail
  // without consuming window ops and the breaker opens after 3
  // consecutive failed rounds; the window's second op then fails the
  // first re-arm probe and the doubled backoff clears it.
  IoHooks::Instance().EnableCounting();
  auto faulted = HostedMarketplace::Create("flt", SmallSpec(60), options);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  HostedMarketplace& marketplace = *faulted.value();
  ApplyDemand(marketplace, 10);
  IoFault fault;
  fault.op = IoOp::kWrite;
  fault.from_index = IoHooks::Instance().ops_seen(IoOp::kWrite);
  fault.count = 2;
  IoHooks::Instance().Arm(fault);
  ApplyDemand(marketplace, 50);

  ASSERT_NE(marketplace.guard(), nullptr);
  const DurabilityGuard::Stats stats = marketplace.guard()->stats();
  EXPECT_EQ(stats.health, DurabilityGuard::Health::kDurable);
  EXPECT_EQ(stats.degrades, 1u);
  EXPECT_EQ(stats.rearms, 1u);
  EXPECT_GE(stats.wal_failures, 4u);
  EXPECT_EQ(marketplace.state(), HostedMarketplace::State::kDone);

  // Faults never leaked into trading: the engines match byte for byte.
  EXPECT_EQ(EngineBytes(marketplace), want);
  ASSERT_TRUE(marketplace.FinishWal().ok());

  // The rebased, sealed WAL recovers the exact same engine.
  IoHooks::Instance().ClearFaults();
  auto recovered = HostedMarketplace::Recover("flt", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->state(), HostedMarketplace::State::kClosed);
  EXPECT_EQ(EngineBytes(*recovered.value()), want);

  // The rebased log starts past the degraded window: the lost rounds are
  // explicitly absent, not silently wrong.
  auto run = persist::LoadRecordedRun(
      MarketplaceLogPath(dir_, "flt"));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run.value().base_round, 10);
  EXPECT_TRUE(run.value().sealed);
}

TEST_F(DurabilityGuardTest, JournalFailureDegradesImmediately) {
  // An unjournaled seller flip would silently poison recovery, so one
  // failed journal append must open the breaker at once — no threshold.
  HostedMarketplace::Options options;
  options.wal_dir = dir_;
  options.snapshot_every = 4;
  auto created = HostedMarketplace::Create("jrn", SmallSpec(40), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  HostedMarketplace& marketplace = *created.value();
  IoHooks::Instance().EnableCounting();
  ApplyDemand(marketplace, 8);

  IoFault fault;
  fault.op = IoOp::kWrite;
  fault.from_index = IoHooks::Instance().ops_seen(IoOp::kWrite);
  fault.count = 1;
  IoHooks::Instance().Arm(fault);
  Event flip;
  flip.type = EventType::kSellerLeave;
  flip.marketplace = "jrn";
  flip.seller = 3;
  std::int64_t remaining = 0;
  ASSERT_TRUE(marketplace.ApplyEvent(flip, 0, &remaining).ok());

  ASSERT_NE(marketplace.guard(), nullptr);
  EXPECT_EQ(marketplace.guard()->health(),
            DurabilityGuard::Health::kDegraded);
  EXPECT_EQ(marketplace.state(), HostedMarketplace::State::kActive);

  // The flip took effect despite the failed journal append, and the
  // re-arm snapshot carries it: recovery reproduces the live engine.
  ApplyDemand(marketplace, 32);
  EXPECT_EQ(marketplace.guard()->health(),
            DurabilityGuard::Health::kDurable);
  const std::string want = EngineBytes(marketplace);
  ASSERT_TRUE(marketplace.FinishWal().ok());
  auto recovered = HostedMarketplace::Recover("jrn", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(EngineBytes(*recovered.value()), want);
}

TEST_F(DurabilityGuardTest, PermanentFaultExhaustsRearmsAndQuarantines) {
  HostedMarketplace::Options options;
  options.wal_dir = dir_;
  options.snapshot_every = 4;
  options.durability.degrade_after_failures = 2;
  options.durability.rearm_initial_rounds = 2;
  options.durability.max_rearm_attempts = 2;
  auto created = HostedMarketplace::Create("prm", SmallSpec(40), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  HostedMarketplace& marketplace = *created.value();
  const std::uint64_t quarantines_before =
      GlobalDurabilityTotals().quarantines;

  IoHooks::Instance().EnableCounting();
  ApplyDemand(marketplace, 5);
  IoFault fault;
  fault.op = IoOp::kWrite;
  fault.from_index = IoHooks::Instance().ops_seen(IoOp::kWrite);
  fault.count = 0;  // permanent: the disk never comes back
  IoHooks::Instance().Arm(fault);
  ApplyDemand(marketplace, 30);

  // Trading continued to the end of the dispatch, then the exhausted
  // breaker quarantined the marketplace — explicitly, with a counter.
  ASSERT_NE(marketplace.guard(), nullptr);
  EXPECT_EQ(marketplace.guard()->health(),
            DurabilityGuard::Health::kFailed);
  EXPECT_EQ(marketplace.state(), HostedMarketplace::State::kQuarantined);
  EXPECT_EQ(marketplace.rounds_settled(), 35);
  EXPECT_EQ(GlobalDurabilityTotals().quarantines, quarantines_before + 1);
  EXPECT_FALSE(marketplace.guard()->stats().last_error.ok());
}

TEST_F(DurabilityGuardTest, CompactionRebaseFailureDegradesInsteadOfCrashing) {
  // Rebase drops both writers before anything that can fail. If the
  // rebase snapshot write fails mid-compaction, the guard must open the
  // breaker immediately — one failure below the degrade threshold that
  // left the guard kDurable would dereference the null writer next
  // round. degrade_after_failures stays at the default 3 on purpose:
  // that is exactly the configuration the immediate degrade protects.
  HostedMarketplace::Options options;
  options.wal_dir = dir_;
  options.snapshot_every = 4;
  options.durability.degrade_after_failures = 3;
  options.durability.rearm_initial_rounds = 4;
  options.durability.compact_after_rounds = 8;
  auto reference = HostedMarketplace::Create("ref", SmallSpec(48), options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ApplyDemand(*reference.value(), 48);
  const std::string want = EngineBytes(*reference.value());
  ASSERT_TRUE(reference.value()->FinishWal().ok());

  IoHooks::Instance().EnableCounting();
  auto faulted = HostedMarketplace::Create("flt", SmallSpec(48), options);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  HostedMarketplace& marketplace = *faulted.value();
  ApplyDemand(marketplace, 7);
  // Round 8 (checkpoint + first compaction) issues writes in a fixed
  // order: round append, checkpoint snapshot, snapshot note, then the
  // rebase snapshot inside Compact. Fail exactly the rebase snapshot,
  // after Rebase has already dismantled the writers.
  IoFault fault;
  fault.op = IoOp::kWrite;
  fault.from_index = IoHooks::Instance().ops_seen(IoOp::kWrite) + 3;
  fault.count = 1;
  IoHooks::Instance().Arm(fault);
  ApplyDemand(marketplace, 41);

  ASSERT_NE(marketplace.guard(), nullptr);
  const DurabilityGuard::Stats stats = marketplace.guard()->stats();
  EXPECT_EQ(stats.health, DurabilityGuard::Health::kDurable);
  EXPECT_EQ(stats.degrades, 1u);
  EXPECT_EQ(stats.rearms, 1u);
  EXPECT_EQ(marketplace.state(), HostedMarketplace::State::kDone);

  // The fault never leaked into trading, and the re-armed WAL recovers
  // the exact engine.
  EXPECT_EQ(EngineBytes(marketplace), want);
  ASSERT_TRUE(marketplace.FinishWal().ok());
  IoHooks::Instance().ClearFaults();
  auto recovered = HostedMarketplace::Recover("flt", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(EngineBytes(*recovered.value()), want);
}

TEST_F(DurabilityGuardTest, RetentionRenameFailureDegradesNotQuarantines) {
  // With retain_compacted, Compact seals the outgoing log before
  // renaming it aside. A failed rename leaves a writer that can never
  // append again: the guard must degrade (and later re-arm) instead of
  // staying kDurable and tripping a FailedPrecondition — a programming
  // error, which would quarantine the marketplace — on the next round.
  HostedMarketplace::Options options;
  options.wal_dir = dir_;
  options.snapshot_every = 4;
  options.durability.degrade_after_failures = 3;
  options.durability.rearm_initial_rounds = 4;
  options.durability.compact_after_rounds = 8;
  options.durability.retain_compacted = true;
  auto reference = HostedMarketplace::Create("ref", SmallSpec(48), options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ApplyDemand(*reference.value(), 48);
  const std::string want = EngineBytes(*reference.value());
  ASSERT_TRUE(reference.value()->FinishWal().ok());

  IoHooks::Instance().EnableCounting();
  auto faulted = HostedMarketplace::Create("flt", SmallSpec(48), options);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  HostedMarketplace& marketplace = *faulted.value();
  ApplyDemand(marketplace, 7);
  // Round 8 renames in a fixed order: checkpoint snapshot, then the
  // retention rename (after Finish() sealed the writer), then the
  // rebase snapshot. Fail exactly the retention rename.
  IoFault fault;
  fault.op = IoOp::kRename;
  fault.from_index = IoHooks::Instance().ops_seen(IoOp::kRename) + 1;
  fault.count = 1;
  IoHooks::Instance().Arm(fault);
  ApplyDemand(marketplace, 41);

  ASSERT_NE(marketplace.guard(), nullptr);
  const DurabilityGuard::Stats stats = marketplace.guard()->stats();
  EXPECT_EQ(stats.health, DurabilityGuard::Health::kDurable);
  EXPECT_EQ(stats.degrades, 1u);
  EXPECT_EQ(stats.rearms, 1u);
  // One transient rename failure must never bypass the breaker.
  EXPECT_EQ(marketplace.state(), HostedMarketplace::State::kDone);

  EXPECT_EQ(EngineBytes(marketplace), want);
  ASSERT_TRUE(marketplace.FinishWal().ok());
  IoHooks::Instance().ClearFaults();
  auto recovered = HostedMarketplace::Recover("flt", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(EngineBytes(*recovered.value()), want);
}

TEST_F(DurabilityGuardTest, CompactionBoundsLogGrowthAndRecoversExactly) {
  HostedMarketplace::Options plain;
  plain.wal_dir = dir_;
  plain.snapshot_every = 4;
  auto reference =
      HostedMarketplace::Create("big", SmallSpec(48), plain);
  ASSERT_TRUE(reference.ok());
  ApplyDemand(*reference.value(), 48);
  const std::string want = EngineBytes(*reference.value());
  ASSERT_TRUE(reference.value()->FinishWal().ok());

  HostedMarketplace::Options compacting = plain;
  compacting.durability.compact_after_rounds = 8;
  compacting.durability.retain_compacted = true;
  auto compact =
      HostedMarketplace::Create("cmp", SmallSpec(48), compacting);
  ASSERT_TRUE(compact.ok()) << compact.status().ToString();
  ApplyDemand(*compact.value(), 48);
  EXPECT_EQ(EngineBytes(*compact.value()), want);
  ASSERT_TRUE(compact.value()->FinishWal().ok());

  const std::string big_log = MarketplaceLogPath(dir_, "big");
  const std::string cmp_log = MarketplaceLogPath(dir_, "cmp");
  EXPECT_LT(fs::file_size(cmp_log), fs::file_size(big_log));
  // The retained predecessor segment is itself a sealed, loadable log.
  auto retained = persist::LoadRecordedRun(cmp_log + ".old");
  ASSERT_TRUE(retained.ok()) << retained.status().ToString();
  EXPECT_TRUE(retained.value().sealed);

  auto run = persist::LoadRecordedRun(cmp_log);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_GT(run.value().base_round, 0);
  auto recovered = HostedMarketplace::Recover("cmp", compacting);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->state(), HostedMarketplace::State::kClosed);
  EXPECT_EQ(EngineBytes(*recovered.value()), want);
}

}  // namespace
}  // namespace runtime
}  // namespace cdt
