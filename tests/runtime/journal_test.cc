// Seller-departure journal: append/read round trips, crash-tear
// tolerance (torn final record dropped, complete prefix kept), CRC
// fail-closed on corruption, and append-mode reopen across "process
// generations" — the WAL properties marketplace recovery rests on.

#include "runtime/journal.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/atomic_io.h"

namespace cdt {
namespace runtime {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("cdt_journal_" + std::to_string(::getpid()) + ".events"))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string ReadBytes() {
    auto bytes = persist::ReadFileBytes(path_);
    EXPECT_TRUE(bytes.ok());
    return std::move(bytes).value();
  }

  void WriteBytes(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

JournalEntry Leave(std::int64_t effect_round, int seller) {
  JournalEntry entry;
  entry.type = EventType::kSellerLeave;
  entry.effect_round = effect_round;
  entry.seller = seller;
  return entry;
}

JournalEntry Return(std::int64_t effect_round, int seller) {
  JournalEntry entry;
  entry.type = EventType::kSellerReturn;
  entry.effect_round = effect_round;
  entry.seller = seller;
  return entry;
}

TEST_F(JournalTest, MissingFileIsEmptyJournal) {
  auto contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents.value().entries.empty());
  EXPECT_FALSE(contents.value().torn_tail);
}

TEST_F(JournalTest, AppendReadRoundTrip) {
  {
    auto writer = JournalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(Leave(4, 2)).ok());
    ASSERT_TRUE(writer.value()->Append(Return(9, 2)).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  auto contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());
  const auto& entries = contents.value().entries;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].type, EventType::kSellerLeave);
  EXPECT_EQ(entries[0].effect_round, 4);
  EXPECT_EQ(entries[0].seller, 2);
  EXPECT_EQ(entries[1].type, EventType::kSellerReturn);
  EXPECT_EQ(entries[1].effect_round, 9);
  EXPECT_FALSE(contents.value().torn_tail);
}

TEST_F(JournalTest, RejectsNonFlipEntryTypes) {
  auto writer = JournalWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  JournalEntry bogus;
  bogus.type = EventType::kRoundTick;
  EXPECT_FALSE(writer.value()->Append(bogus).ok());
}

TEST_F(JournalTest, ReopenAppendsAcrossGenerations) {
  {
    auto writer = JournalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(Leave(3, 1)).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  {
    auto writer = JournalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(Return(7, 1)).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  auto contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents.value().entries.size(), 2u);
  EXPECT_EQ(contents.value().entries[1].effect_round, 7);
}

TEST_F(JournalTest, TornTailIsDroppedAndReported) {
  {
    auto writer = JournalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(Leave(3, 1)).ok());
    ASSERT_TRUE(writer.value()->Append(Leave(5, 2)).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  // Chop the final record mid-frame: the crash tear.
  std::string bytes = ReadBytes();
  WriteBytes(bytes.substr(0, bytes.size() - 3));

  auto contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents.value().entries.size(), 1u);
  EXPECT_EQ(contents.value().entries[0].effect_round, 3);
  EXPECT_TRUE(contents.value().torn_tail);

  // Reopen truncates the fragment, and a fresh append lands cleanly
  // after the surviving record.
  {
    auto writer = JournalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(Return(8, 1)).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  contents = ReadJournal(path_);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents.value().entries.size(), 2u);
  EXPECT_EQ(contents.value().entries[1].effect_round, 8);
  EXPECT_FALSE(contents.value().torn_tail);
}

TEST_F(JournalTest, CorruptCompleteRecordFailsClosed) {
  {
    auto writer = JournalWriter::Open(path_);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(Leave(3, 1)).ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  std::string bytes = ReadBytes();
  bytes[bytes.size() - 6] ^= 0x40;  // flip a bit inside the record body
  WriteBytes(bytes);

  EXPECT_FALSE(ReadJournal(path_).ok());
  EXPECT_FALSE(JournalWriter::Open(path_).ok());
}

TEST_F(JournalTest, RejectsForeignFile) {
  WriteBytes("definitely not a journal");
  EXPECT_FALSE(ReadJournal(path_).ok());
}

}  // namespace
}  // namespace runtime
}  // namespace cdt
