// Admission and overload control: bounded queues never exceed their cap,
// every shed is counted with an exact reason (nothing silently dropped),
// coalesced ticks are deferred-and-merged rather than lost, the capacity
// gate bounds concurrent marketplaces, and budget-stopped marketplaces
// shed round traffic at admission. autostart=false lets each test submit
// its burst single-threaded, so the expected counts are exact, not racy.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/marketplace.h"
#include "runtime/service.h"

namespace cdt {
namespace runtime {
namespace {

using Admission = MarketplaceService::Admission;
using ShedPolicy = MarketplaceService::ShedPolicy;

std::shared_ptr<const MarketplaceSpec> SmallSpec(std::uint64_t seed) {
  auto spec = std::make_shared<MarketplaceSpec>();
  spec->config.num_sellers = 8;
  spec->config.num_selected = 2;
  spec->config.num_pois = 3;
  spec->config.num_rounds = 100;
  spec->config.seed = seed;
  return spec;
}

Event CreateEvent(const std::string& id, std::uint64_t seed) {
  Event event;
  event.type = EventType::kCreateMarketplace;
  event.marketplace = id;
  event.spec = SmallSpec(seed);
  return event;
}

Event Tick(const std::string& id) {
  Event event;
  event.type = EventType::kRoundTick;
  event.marketplace = id;
  return event;
}

Event Demand(const std::string& id, std::int64_t rounds) {
  Event event;
  event.type = EventType::kConsumerDemand;
  event.marketplace = id;
  event.rounds = rounds;
  return event;
}

Event CloseEvent(const std::string& id) {
  Event event;
  event.type = EventType::kCloseMarketplace;
  event.marketplace = id;
  return event;
}

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    wal_dir_ = (std::filesystem::temp_directory_path() /
                ("cdt_admission_" + std::to_string(::getpid())))
                   .string();
    std::filesystem::remove_all(wal_dir_);
  }
  void TearDown() override { std::filesystem::remove_all(wal_dir_); }

  MarketplaceService::Options BaseOptions(ShedPolicy policy,
                                          std::size_t capacity) {
    MarketplaceService::Options options;
    options.num_shards = 1;
    options.queue_capacity = capacity;
    options.wal_dir = wal_dir_;
    options.shed_policy = policy;
    options.autostart = false;
    options.watchdog_period = std::chrono::milliseconds(0);
    return options;
  }

  std::string wal_dir_;
};

TEST_F(AdmissionTest, RejectNewestShedsExactOverflowAndCapHolds) {
  auto service = MarketplaceService::Create(
      BaseOptions(ShedPolicy::kRejectNewest, 4));
  ASSERT_TRUE(service.ok());

  // Burst: a create plus 10 ticks against a queue of 4. Exactly the first
  // four submissions fit; the remaining seven shed with reason "overload".
  EXPECT_EQ(service.value()->Submit(CreateEvent("alpha", 7)),
            Admission::kAccepted);
  int accepted = 0;
  int shed = 0;
  for (int i = 0; i < 10; ++i) {
    if (service.value()->Submit(Tick("alpha")) == Admission::kAccepted) {
      ++accepted;
    } else {
      ++shed;
    }
  }
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(shed, 7);

  auto stats = service.value()->GetStats();
  EXPECT_EQ(stats.submitted, 11u);
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.shed.at("overload"), 7u);
  EXPECT_EQ(stats.total_shed, 7u);
  ASSERT_EQ(stats.shards.size(), 1u);
  // The hard invariant: the bounded queue never held more than its cap.
  EXPECT_LE(stats.shards[0].queue_high_water, 4u);

  // Only the admitted events execute: 3 ticks → 3 rounds, not 10.
  service.value()->Start();
  service.value()->Drain();
  stats = service.value()->GetStats();
  EXPECT_EQ(stats.events_processed, 4u);
  EXPECT_EQ(stats.rounds_settled, 3u);
}

TEST_F(AdmissionTest, CoalesceTicksDefersRoundsInsteadOfDroppingThem) {
  auto service = MarketplaceService::Create(
      BaseOptions(ShedPolicy::kCoalesceTicks, 4));
  ASSERT_TRUE(service.ok());

  EXPECT_EQ(service.value()->Submit(CreateEvent("alpha", 7)),
            Admission::kAccepted);
  int accepted = 0;
  int coalesced = 0;
  for (int i = 0; i < 10; ++i) {
    switch (service.value()->Submit(Tick("alpha"))) {
      case Admission::kAccepted: ++accepted; break;
      case Admission::kCoalesced: ++coalesced; break;
      case Admission::kShed: FAIL() << "tick was dropped"; break;
    }
  }
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(coalesced, 7);
  EXPECT_EQ(service.value()->coalescer().pending(), 7);

  auto stats = service.value()->GetStats();
  EXPECT_EQ(stats.coalesced_rounds, 7u);
  EXPECT_EQ(stats.total_shed, 0u);

  // Deferred-and-merged, never lost: all 10 rounds settle even though
  // only 3 tick events made it into the queue.
  service.value()->Start();
  service.value()->Drain();
  stats = service.value()->GetStats();
  EXPECT_EQ(stats.rounds_settled, 10u);
  EXPECT_EQ(service.value()->coalescer().pending(), 0);
}

TEST_F(AdmissionTest, BlockPolicyWaitsThenShedsOnTimeout) {
  auto options = BaseOptions(ShedPolicy::kBlock, 1);
  options.block_timeout = std::chrono::milliseconds(10);
  auto service = MarketplaceService::Create(options);
  ASSERT_TRUE(service.ok());

  EXPECT_EQ(service.value()->Submit(CreateEvent("alpha", 7)),
            Admission::kAccepted);
  // No worker is draining (autostart off): the blocking push waits its
  // 10ms budget, then sheds with reason "timeout".
  const auto before = std::chrono::steady_clock::now();
  EXPECT_EQ(service.value()->Submit(Tick("alpha")), Admission::kShed);
  const auto waited = std::chrono::steady_clock::now() - before;
  EXPECT_GE(waited, std::chrono::milliseconds(9));
  EXPECT_EQ(service.value()->GetStats().shed.at("timeout"), 1u);

  // With workers draining, the same push succeeds instead of timing out.
  service.value()->Start();
  auto generous = std::chrono::steady_clock::now() +
                  std::chrono::seconds(10);
  Admission admission = Admission::kShed;
  while (std::chrono::steady_clock::now() < generous) {
    admission = service.value()->Submit(Tick("alpha"));
    if (admission == Admission::kAccepted) break;
  }
  EXPECT_EQ(admission, Admission::kAccepted);
  service.value()->Drain();
}

TEST_F(AdmissionTest, CapacityGateBoundsConcurrentMarketplaces) {
  auto options = BaseOptions(ShedPolicy::kRejectNewest, 16);
  options.max_marketplaces = 2;
  auto service = MarketplaceService::Create(options);
  ASSERT_TRUE(service.ok());

  EXPECT_EQ(service.value()->Submit(CreateEvent("alpha", 1)),
            Admission::kAccepted);
  EXPECT_EQ(service.value()->Submit(CreateEvent("beta", 2)),
            Admission::kAccepted);
  EXPECT_EQ(service.value()->Submit(CreateEvent("gamma", 3)),
            Admission::kShed);
  EXPECT_EQ(service.value()->GetStats().shed.at("capacity"), 1u);

  // A close frees a slot at admission time: the next create is admitted.
  EXPECT_EQ(service.value()->Submit(CloseEvent("alpha")),
            Admission::kAccepted);
  EXPECT_EQ(service.value()->Submit(CreateEvent("gamma", 3)),
            Admission::kAccepted);

  service.value()->Start();
  service.value()->Drain();
}

TEST_F(AdmissionTest, BudgetStoppedMarketplaceShedsRoundTrafficAtAdmission) {
  auto options = BaseOptions(ShedPolicy::kRejectNewest, 16);
  auto service = MarketplaceService::Create(options);
  ASSERT_TRUE(service.ok());

  // A consumer budget so small the first settled round exhausts it.
  Event create = CreateEvent("alpha", 7);
  auto spec = std::make_shared<MarketplaceSpec>(*create.spec);
  spec->config.consumer_budget = 1e-9;
  create.spec = spec;

  EXPECT_EQ(service.value()->Submit(create), Admission::kAccepted);
  EXPECT_EQ(service.value()->Submit(Demand("alpha", 50)),
            Admission::kAccepted);
  service.value()->Start();

  // Wait for the worker to publish the budget stop.
  HostedMarketplace::State state = HostedMarketplace::State::kActive;
  for (int i = 0; i < 5000; ++i) {
    if (service.value()->directory().Lookup("alpha", &state) &&
        state == HostedMarketplace::State::kBudgetStopped) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(state, HostedMarketplace::State::kBudgetStopped);

  // Budget-aware backpressure: round traffic sheds at admission with
  // reason "budget" and never occupies a queue slot...
  EXPECT_EQ(service.value()->Submit(Tick("alpha")), Admission::kShed);
  EXPECT_EQ(service.value()->Submit(Demand("alpha", 5)), Admission::kShed);
  EXPECT_EQ(service.value()->GetStats().shed.at("budget"), 2u);

  // ...but a close still flows, so the WAL gets sealed.
  EXPECT_EQ(service.value()->Submit(CloseEvent("alpha")),
            Admission::kAccepted);
  service.value()->Drain();

  const auto stats = service.value()->GetStats();
  EXPECT_LT(stats.rounds_settled, 50u);
}

TEST_F(AdmissionTest, SubmitAfterDrainIsShedAsClosed) {
  auto service = MarketplaceService::Create(
      BaseOptions(ShedPolicy::kRejectNewest, 4));
  ASSERT_TRUE(service.ok());
  service.value()->Start();
  service.value()->Drain();
  EXPECT_EQ(service.value()->Submit(CreateEvent("alpha", 7)),
            Admission::kShed);
  EXPECT_EQ(service.value()->GetStats().shed.at("closed"), 1u);
}

}  // namespace
}  // namespace runtime
}  // namespace cdt
