// Bounded MPSC event queue: the overload-control primitive. The cap must
// be a hard invariant (high_water never exceeds capacity), shedding must
// be exact (TryPush reports kFull, never silently drops), and Close must
// drain-then-stop (admitted events are processed, late pushes refused).

#include "runtime/queue.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cdt {
namespace runtime {
namespace {

using PushResult = EventQueue::PushResult;
using PopResult = EventQueue::PopResult;

Event Tick(const std::string& marketplace) {
  Event event;
  event.type = EventType::kRoundTick;
  event.marketplace = marketplace;
  return event;
}

constexpr std::chrono::milliseconds kNoWait{0};

TEST(EventQueueTest, BoundedPushAndFifoPop) {
  EventQueue queue(3);
  EXPECT_EQ(queue.capacity(), 3u);
  EXPECT_EQ(queue.TryPush(Tick("a")), PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(Tick("b")), PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(Tick("c")), PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(Tick("d")), PushResult::kFull);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.high_water(), 3u);

  Event event;
  ASSERT_EQ(queue.Pop(&event, kNoWait), PopResult::kEvent);
  EXPECT_EQ(event.marketplace, "a");
  ASSERT_EQ(queue.Pop(&event, kNoWait), PopResult::kEvent);
  EXPECT_EQ(event.marketplace, "b");
  // Space freed: pushes are admitted again, high-water unchanged.
  EXPECT_EQ(queue.TryPush(Tick("e")), PushResult::kAccepted);
  EXPECT_EQ(queue.high_water(), 3u);
}

TEST(EventQueueTest, PopTimesOutOnEmptyQueue) {
  EventQueue queue(2);
  Event event;
  EXPECT_EQ(queue.Pop(&event, std::chrono::milliseconds(5)),
            PopResult::kTimeout);
}

TEST(EventQueueTest, CloseDrainsAdmittedEventsThenReportsDone) {
  EventQueue queue(4);
  EXPECT_EQ(queue.TryPush(Tick("a")), PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(Tick("b")), PushResult::kAccepted);
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.TryPush(Tick("late")), PushResult::kClosed);

  Event event;
  ASSERT_EQ(queue.Pop(&event, kNoWait), PopResult::kEvent);
  EXPECT_EQ(event.marketplace, "a");
  ASSERT_EQ(queue.Pop(&event, kNoWait), PopResult::kEvent);
  EXPECT_EQ(event.marketplace, "b");
  EXPECT_EQ(queue.Pop(&event, kNoWait), PopResult::kDone);
  EXPECT_EQ(queue.Pop(&event, kNoWait), PopResult::kDone);
}

TEST(EventQueueTest, PushWithTimeoutWaitsForSpace) {
  EventQueue queue(1);
  EXPECT_EQ(queue.TryPush(Tick("a")), PushResult::kAccepted);
  // No consumer: the blocking push must give up with kFull.
  EXPECT_EQ(queue.PushWithTimeout(Tick("b"), std::chrono::milliseconds(5)),
            PushResult::kFull);

  // With a consumer the wait succeeds.
  std::thread consumer([&queue] {
    Event event;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.Pop(&event, std::chrono::milliseconds(100));
  });
  EXPECT_EQ(
      queue.PushWithTimeout(Tick("c"), std::chrono::milliseconds(500)),
      PushResult::kAccepted);
  consumer.join();
}

TEST(EventQueueTest, HighWaterNeverExceedsCapacityUnderContention) {
  EventQueue queue(8);
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&queue, &accepted, t] {
      for (int i = 0; i < 200; ++i) {
        if (queue.TryPush(Tick("p" + std::to_string(t))) ==
            PushResult::kAccepted) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Concurrent consumer: drain until the producers finish and the queue
  // closes. Every admitted event (and nothing else) must come out.
  std::atomic<int> popped{0};
  std::thread consumer([&queue, &popped] {
    Event event;
    for (;;) {
      const PopResult result = queue.Pop(&event, std::chrono::milliseconds(5));
      if (result == PopResult::kDone) return;
      if (result == PopResult::kEvent) {
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (auto& producer : producers) producer.join();
  queue.Close();
  consumer.join();
  EXPECT_EQ(popped.load(), accepted.load());
  EXPECT_GT(accepted.load(), 0);
  EXPECT_LE(queue.high_water(), queue.capacity());
}

}  // namespace
}  // namespace runtime
}  // namespace cdt
