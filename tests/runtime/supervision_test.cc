// Supervision + crash recovery, end to end: a sharded service processes a
// deterministic event script (creates, demand, seller leave/return,
// closes); a chaos-injected crash kills one shard mid-traffic, the
// supervisor restarts it, and the killed marketplaces rebuild lazily from
// their WALs (snapshot restore + byte-verified tail replay + journal
// re-application). The proof obligation: every marketplace's sealed event
// log is BYTE-IDENTICAL to the one an uninterrupted reference run of the
// same script produces.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "persist/atomic_io.h"
#include "persist/replay.h"
#include "runtime/marketplace.h"
#include "runtime/service.h"

namespace cdt {
namespace runtime {
namespace {

std::shared_ptr<const MarketplaceSpec> SmallSpec(std::uint64_t seed) {
  auto spec = std::make_shared<MarketplaceSpec>();
  spec->config.num_sellers = 8;
  spec->config.num_selected = 2;
  spec->config.num_pois = 3;
  spec->config.num_rounds = 200;
  spec->config.seed = seed;
  return spec;
}

Event Create(const std::string& id, std::uint64_t seed) {
  Event event;
  event.type = EventType::kCreateMarketplace;
  event.marketplace = id;
  event.spec = SmallSpec(seed);
  return event;
}

Event Demand(const std::string& id, std::int64_t rounds) {
  Event event;
  event.type = EventType::kConsumerDemand;
  event.marketplace = id;
  event.rounds = rounds;
  return event;
}

Event Flip(const std::string& id, EventType type, int seller) {
  Event event;
  event.type = type;
  event.marketplace = id;
  event.seller = seller;
  return event;
}

Event Close(const std::string& id) {
  Event event;
  event.type = EventType::kCloseMarketplace;
  event.marketplace = id;
  return event;
}

/// The shared traffic script: two marketplaces, interleaved demand,
/// seller churn on alpha, clean closes at the end.
std::vector<Event> TrafficScript() {
  std::vector<Event> script;
  script.push_back(Create("alpha", 11));
  script.push_back(Create("beta", 22));
  script.push_back(Demand("alpha", 25));
  script.push_back(Demand("beta", 15));
  script.push_back(Flip("alpha", EventType::kSellerLeave, 3));
  script.push_back(Demand("alpha", 20));
  script.push_back(Demand("beta", 20));
  script.push_back(Flip("alpha", EventType::kSellerReturn, 3));
  script.push_back(Flip("alpha", EventType::kSellerLeave, 5));
  script.push_back(Demand("alpha", 15));
  script.push_back(Demand("beta", 10));
  script.push_back(Close("alpha"));
  script.push_back(Close("beta"));
  return script;
}

MarketplaceService::Options ServiceOptions(const std::string& wal_dir) {
  MarketplaceService::Options options;
  options.num_shards = 2;
  options.queue_capacity = 64;  // the whole script fits: nothing sheds
  options.wal_dir = wal_dir;
  options.snapshot_every = 10;
  options.max_rounds_per_dispatch = 8;
  options.autostart = false;
  options.watchdog_period = std::chrono::milliseconds(0);
  return options;
}

class SupervisionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    stem_ = (std::filesystem::temp_directory_path() /
             ("cdt_supervision_" + std::to_string(::getpid())))
                .string();
  }
  void TearDown() override {
    std::filesystem::remove_all(stem_ + "_ref");
    std::filesystem::remove_all(stem_ + "_chaos");
  }

  /// Runs the script to completion, polling the supervisor so injected
  /// crashes get restarted, then drains.
  void RunScript(MarketplaceService* service,
                 const std::vector<Event>& script) {
    std::uint64_t accepted = 0;
    for (const Event& event : script) {
      ASSERT_EQ(service->Submit(event),
                MarketplaceService::Admission::kAccepted);
      ++accepted;
    }
    service->Start();
    for (int i = 0; i < 20000; ++i) {
      service->supervisor().PollOnce();
      if (service->GetStats().events_processed >= accepted) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_GE(service->GetStats().events_processed, accepted);
    service->Drain();
  }

  std::string ExpectSealedLogBytes(const std::string& wal_dir,
                                   const std::string& id) {
    auto run = persist::LoadRecordedRun(MarketplaceLogPath(wal_dir, id));
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    auto bytes = persist::ReadFileBytes(MarketplaceLogPath(wal_dir, id));
    EXPECT_TRUE(bytes.ok());
    return std::move(bytes).value();
  }

  std::string stem_;
};

TEST_F(SupervisionTest, CrashRecoveryIsByteIdentical) {
  const std::string ref_dir = stem_ + "_ref";
  const std::string chaos_dir = stem_ + "_chaos";
  const std::vector<Event> script = TrafficScript();

  // Reference: uninterrupted run.
  {
    auto service = MarketplaceService::Create(ServiceOptions(ref_dir));
    ASSERT_TRUE(service.ok());
    RunScript(service.value().get(), script);
    const auto stats = service.value()->GetStats();
    EXPECT_EQ(stats.restarts, 0u);
    EXPECT_EQ(stats.total_shed, 0u);
  }

  // Chaos: kill the shard owning "alpha" after it processed 2 events —
  // mid-campaign, past the first snapshot, before the seller churn.
  {
    auto service = MarketplaceService::Create(ServiceOptions(chaos_dir));
    ASSERT_TRUE(service.ok());
    const int victim = service.value()->ShardFor("alpha");
    service.value()->shard(victim).ArmKillAfter(2);
    RunScript(service.value().get(), script);
    const auto stats = service.value()->GetStats();
    EXPECT_GE(stats.restarts, 1u);
    std::uint64_t recoveries = 0;
    for (const auto& shard : stats.shards) recoveries += shard.recoveries;
    EXPECT_GE(recoveries, 1u);
  }

  // Every marketplace's sealed WAL must match the reference run exactly,
  // byte for byte — crash, restart and recovery left no trace.
  for (const std::string id : {"alpha", "beta"}) {
    const std::string reference = ExpectSealedLogBytes(ref_dir, id);
    const std::string recovered = ExpectSealedLogBytes(chaos_dir, id);
    EXPECT_EQ(reference, recovered) << "marketplace " << id;
  }
}

TEST_F(SupervisionTest, SellerChurnSurvivesRecoveryThroughJournal) {
  const std::string ref_dir = stem_ + "_ref";
  const std::string chaos_dir = stem_ + "_chaos";
  const std::vector<Event> script = TrafficScript();

  {
    auto service = MarketplaceService::Create(ServiceOptions(ref_dir));
    ASSERT_TRUE(service.ok());
    RunScript(service.value().get(), script);
  }
  // Kill after the leave/return churn so recovery must re-apply
  // journaled flips at their exact effect rounds during tail replay.
  {
    auto service = MarketplaceService::Create(ServiceOptions(chaos_dir));
    ASSERT_TRUE(service.ok());
    const int victim = service.value()->ShardFor("alpha");
    // Events on alpha's shard: create + demand(25) + leave + demand(20)
    // + return + leave(5) + demand(15) + close (plus beta's when it
    // shares the shard). Kill after 6 processed events.
    service.value()->shard(victim).ArmKillAfter(6);
    RunScript(service.value().get(), script);
    EXPECT_GE(service.value()->GetStats().restarts, 1u);
  }
  for (const std::string id : {"alpha", "beta"}) {
    EXPECT_EQ(ExpectSealedLogBytes(ref_dir, id),
              ExpectSealedLogBytes(chaos_dir, id))
        << "marketplace " << id;
  }
}

TEST_F(SupervisionTest, WatchdogDetectsStallWithoutRestarting) {
  const std::string dir = stem_ + "_chaos";
  auto options = ServiceOptions(dir);
  options.stall_threshold = std::chrono::milliseconds(20);
  auto service = MarketplaceService::Create(options);
  ASSERT_TRUE(service.ok());

  service.value()->shard(0).ArmStallAfter(
      1, std::chrono::milliseconds(120));
  std::vector<Event> script;
  script.push_back(Create("alpha", 11));
  script.push_back(Demand("alpha", 5));
  script.push_back(Close("alpha"));
  // Make sure "alpha" lands on shard 0 for this test; if it does not,
  // stall the shard it actually lands on.
  const int owner = service.value()->ShardFor("alpha");
  if (owner != 0) {
    service.value()->shard(0).ArmStallAfter(0, std::chrono::milliseconds(0));
    service.value()->shard(owner).ArmStallAfter(
        1, std::chrono::milliseconds(120));
  }

  for (const Event& event : script) {
    ASSERT_EQ(service.value()->Submit(event),
              MarketplaceService::Admission::kAccepted);
  }
  service.value()->Start();
  bool saw_stall = false;
  for (int i = 0; i < 1000; ++i) {
    const auto report = service.value()->supervisor().PollOnce();
    if (report.stalled > 0 || report.currently_stalled > 0) {
      saw_stall = true;
    }
    if (service.value()->GetStats().events_processed >= 3 && saw_stall) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_GE(service.value()->supervisor().total_stalls(), 1u);
  // A stall is not a crash: no restart happened, and the work finished.
  EXPECT_EQ(service.value()->GetStats().restarts, 0u);
  service.value()->Drain();
  auto run =
      persist::LoadRecordedRun(MarketplaceLogPath(dir, "alpha"));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().rounds.size(), 5u);
}

TEST_F(SupervisionTest, RecoverRebuildsQuiescentMarketplaceFromWal) {
  // Crash with NO further traffic for the marketplace, then recover it
  // directly: snapshot + tail replay must land on the exact cursor.
  const std::string dir = stem_ + "_chaos";
  HostedMarketplace::Options options;
  options.wal_dir = dir;
  options.snapshot_every = 7;
  std::filesystem::create_directories(dir);

  MarketplaceSpec spec = *SmallSpec(33);
  {
    auto marketplace = HostedMarketplace::Create("gamma", spec, options);
    ASSERT_TRUE(marketplace.ok());
    Event demand = Demand("gamma", 23);
    std::int64_t remaining = 0;
    ASSERT_TRUE(
        marketplace.value()->ApplyEvent(demand, 0, &remaining).ok());
    Event leave = Flip("gamma", EventType::kSellerLeave, 1);
    ASSERT_TRUE(
        marketplace.value()->ApplyEvent(leave, 0, &remaining).ok());
    // Crash: drop the object without FinishWal — torn log on disk.
  }
  auto recovered = HostedMarketplace::Recover("gamma", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->rounds_settled(), 23);
  EXPECT_EQ(recovered.value()->state(), HostedMarketplace::State::kActive);
  // The journaled departure survived the crash.
  EXPECT_FALSE(recovered.value()->run().engine().seller_active(1));
  ASSERT_TRUE(recovered.value()->FinishWal().ok());
}

}  // namespace
}  // namespace runtime
}  // namespace cdt
