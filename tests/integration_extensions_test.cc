// Integration tests for the extension features working *together*:
// budgeted campaigns streamed to run logs and analysed offline, the
// marketplace under shared learning, and delayed feedback inside the full
// trading engine.

#include <filesystem>
#include <unistd.h>

#include <gtest/gtest.h>

#include "analysis/run_analysis.h"
#include "bandit/cucb_policy.h"
#include "bandit/delayed_feedback.h"
#include "core/cmab_hs.h"
#include "market/marketplace.h"
#include "market/run_log.h"
#include "market/trading_engine.h"
#include "stats/rng.h"

namespace cdt {
namespace {

TEST(ExtensionsIntegrationTest, BudgetedCampaignRoundTripsThroughRunLog) {
  std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("cdt_ext_" + std::to_string(::getpid()) + ".csv");

  core::MechanismConfig config;
  config.num_sellers = 12;
  config.num_selected = 3;
  config.num_pois = 3;
  config.num_rounds = 300;
  config.consumer_budget = 20000.0;
  config.seed = 25;
  auto run = core::CmabHs::Create(config);
  ASSERT_TRUE(run.ok());
  auto writer = market::RunLogWriter::Open(path.string());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(run.value()
                  ->RunAll([&](const market::RoundReport& report) {
                    ASSERT_TRUE(writer.value().Append(report).ok());
                  })
                  .ok());
  ASSERT_TRUE(writer.value().Close().ok());

  // The campaign stopped early on budget; the log must agree exactly with
  // the engine on executed rounds and spend.
  ASSERT_TRUE(run.value()->engine().budget_exhausted());
  auto rows = market::LoadRunLog(path.string());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(static_cast<std::int64_t>(rows.value().size()),
            run.value()->engine().current_round());
  double spend = 0.0;
  for (const market::RunLogRow& row : rows.value()) {
    spend += row.consumer_price * row.total_time;
  }
  EXPECT_NEAR(spend, run.value()->engine().consumer_spend(), 1e-6);
  EXPECT_LE(spend, config.consumer_budget + 1e-6);

  auto stats = analysis::Summarize(rows.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().rounds,
            run.value()->engine().current_round());
  std::filesystem::remove(path);
}

TEST(ExtensionsIntegrationTest, DelayedFeedbackInsideFullEngine) {
  // The trading engine runs unmodified with a delay-wrapped policy: the
  // wrapped estimator lags, the engine's own pricing estimates do not.
  bandit::EnvironmentConfig env_config;
  env_config.num_sellers = 10;
  env_config.num_pois = 3;
  env_config.seed = 6;
  auto env = bandit::QualityEnvironment::Create(env_config);
  ASSERT_TRUE(env.ok());

  bandit::CucbOptions options;
  options.num_sellers = 10;
  options.num_selected = 3;
  auto inner = bandit::CucbPolicy::Create(options);
  ASSERT_TRUE(inner.ok());
  auto delayed = bandit::DelayedFeedbackPolicy::Create(
      std::make_unique<bandit::CucbPolicy>(std::move(inner).value()), 4);
  ASSERT_TRUE(delayed.ok());

  market::EngineConfig engine_config;
  engine_config.job.num_pois = 3;
  engine_config.job.num_rounds = 30;
  engine_config.job.round_duration = 1000.0;
  engine_config.num_selected = 3;
  stats::Xoshiro256 rng(4);
  for (int i = 0; i < 10; ++i) {
    engine_config.seller_costs.push_back(
        {rng.NextDouble(0.1, 0.5), rng.NextDouble(0.1, 1.0)});
  }
  engine_config.platform_cost = {0.1, 1.0};
  engine_config.valuation = {1000.0};
  engine_config.consumer_price_bounds = {0.01, 100.0};
  engine_config.collection_price_bounds = {0.01, 5.0};

  auto engine = market::TradingEngine::Create(
      engine_config, &env.value(),
      std::make_unique<bandit::DelayedFeedbackPolicy>(
          std::move(delayed).value()));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value()->RunAll().ok());
  EXPECT_EQ(engine.value()->current_round(), 30);

  // Policy estimator saw 30 − 4 rounds of feedback; the engine's pricing
  // bank saw all 30. Round 1 observed all 10 sellers, later rounds 3.
  const auto* lagged = engine.value()->policy().estimator();
  ASSERT_NE(lagged, nullptr);
  std::uint64_t expected_prompt = (10u + 29u * 3u) * 3u;
  std::uint64_t expected_lagged = (10u + 25u * 3u) * 3u;
  EXPECT_EQ(engine.value()->pricing_estimates().total_observations(),
            expected_prompt);
  EXPECT_EQ(lagged->total_observations(), expected_lagged);
  EXPECT_NEAR(engine.value()->ledger().NetPosition(), 0.0, 1e-6);
}

TEST(ExtensionsIntegrationTest, MarketplaceLearningMatchesSoloQuality) {
  // After shared learning, the marketplace's estimate of each seller's
  // quality converges to the environment's effective quality.
  bandit::EnvironmentConfig env_config;
  env_config.num_sellers = 9;
  env_config.num_pois = 4;
  env_config.seed = 14;
  auto env = bandit::QualityEnvironment::Create(env_config);
  ASSERT_TRUE(env.ok());

  market::MarketplaceConfig config;
  config.base_job.num_pois = 4;
  config.base_job.num_rounds = 400;
  config.base_job.round_duration = 1000.0;
  market::MarketplaceJob a;
  a.name = "job-a";
  a.num_selected = 4;
  a.valuation = {900.0};
  a.consumer_price_bounds = {0.01, 100.0};
  a.collection_price_bounds = {0.01, 5.0};
  market::MarketplaceJob b = a;
  b.name = "job-b";
  b.num_selected = 5;
  b.valuation = {1100.0};
  config.jobs = {a, b};
  stats::Xoshiro256 rng(2);
  for (int i = 0; i < 9; ++i) {
    config.seller_costs.push_back(
        {rng.NextDouble(0.1, 0.5), rng.NextDouble(0.1, 1.0)});
  }
  config.platform_cost = {0.1, 1.0};

  auto marketplace = market::Marketplace::Create(config, &env.value());
  ASSERT_TRUE(marketplace.ok());
  ASSERT_TRUE(marketplace.value()->RunAll().ok());

  // With ΣK_j = M, every seller is selected every round: all estimates
  // converge tightly.
  for (int i = 0; i < 9; ++i) {
    const bandit::ArmState& arm =
        marketplace.value()->shared_estimates().arm(i);
    EXPECT_EQ(arm.observations, 400u * 4u);
    EXPECT_NEAR(arm.mean, env.value().effective_quality(i), 0.02)
        << "seller " << i;
  }
}

}  // namespace
}  // namespace cdt
