#include "stats/distributions.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/summary.h"

namespace cdt {
namespace stats {
namespace {

TEST(GaussianSamplerTest, MatchesRequestedMoments) {
  Xoshiro256 rng(17);
  GaussianSampler sampler;
  RunningSummary summary;
  for (int i = 0; i < 200000; ++i) {
    summary.Add(sampler.Sample(rng, 2.0, 3.0));
  }
  EXPECT_NEAR(summary.mean(), 2.0, 0.03);
  EXPECT_NEAR(summary.stddev(), 3.0, 0.03);
}

TEST(GaussianSamplerTest, SpareValueIsDeterministic) {
  Xoshiro256 rng_a(5), rng_b(5);
  GaussianSampler a, b;
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Sample(rng_a), b.Sample(rng_b));
  }
}

TEST(TruncatedGaussianTest, RejectsBadParameters) {
  EXPECT_FALSE(TruncatedGaussianSampler::Create(0.5, 0.0, 0.0, 1.0).ok());
  EXPECT_FALSE(TruncatedGaussianSampler::Create(0.5, 0.1, 1.0, 1.0).ok());
  EXPECT_FALSE(TruncatedGaussianSampler::Create(0.5, 0.1, 2.0, 1.0).ok());
}

TEST(TruncatedGaussianTest, SamplesStayInWindow) {
  auto sampler = TruncatedGaussianSampler::Create(0.9, 0.3, 0.0, 1.0);
  ASSERT_TRUE(sampler.ok());
  Xoshiro256 rng(23);
  for (int i = 0; i < 50000; ++i) {
    double x = sampler.value().Sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(TruncatedGaussianTest, EmpiricalMeanMatchesAnalyticMean) {
  // Property: sampled mean converges to the analytic truncated mean for a
  // range of centre/width combinations, including asymmetric truncation.
  struct Case {
    double mean, stddev;
  };
  for (const Case& c : {Case{0.5, 0.1}, Case{0.05, 0.2}, Case{0.95, 0.3},
                        Case{0.0, 0.5}, Case{1.0, 0.15}}) {
    auto sampler = TruncatedGaussianSampler::Create(c.mean, c.stddev, 0, 1);
    ASSERT_TRUE(sampler.ok());
    Xoshiro256 rng(31);
    RunningSummary summary;
    for (int i = 0; i < 100000; ++i) {
      summary.Add(sampler.value().Sample(rng));
    }
    double analytic = TruncatedGaussianMean(c.mean, c.stddev, 0.0, 1.0);
    EXPECT_NEAR(summary.mean(), analytic, 0.01)
        << "mean=" << c.mean << " stddev=" << c.stddev;
  }
}

TEST(TruncatedGaussianTest, DegenerateFarMeanClampsInsteadOfHanging) {
  auto sampler = TruncatedGaussianSampler::Create(50.0, 0.01, 0.0, 1.0);
  ASSERT_TRUE(sampler.ok());
  Xoshiro256 rng(7);
  double x = sampler.value().Sample(rng);
  EXPECT_DOUBLE_EQ(x, 1.0);  // clamped mean
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(NormalPdfTest, PeakAtZero) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_GT(NormalPdf(0.0), NormalPdf(0.5));
  EXPECT_NEAR(NormalPdf(3.0), NormalPdf(-3.0), 1e-15);
}

TEST(TruncatedGaussianMeanTest, SymmetricTruncationKeepsMean) {
  EXPECT_NEAR(TruncatedGaussianMean(0.5, 0.1, 0.0, 1.0), 0.5, 1e-9);
}

TEST(TruncatedGaussianMeanTest, AsymmetricTruncationShiftsInward) {
  // Centre near the upper bound: truncation pulls the mean below 0.95.
  double m = TruncatedGaussianMean(0.95, 0.3, 0.0, 1.0);
  EXPECT_LT(m, 0.95);
  EXPECT_GT(m, 0.0);
  // Centre near the lower bound: pulled upward.
  double m2 = TruncatedGaussianMean(0.05, 0.3, 0.0, 1.0);
  EXPECT_GT(m2, 0.05);
}

TEST(ZipfSamplerTest, RejectsBadParameters) {
  EXPECT_FALSE(ZipfSampler::Create(0, 1.0).ok());
  EXPECT_FALSE(ZipfSampler::Create(5, -0.1).ok());
}

TEST(ZipfSamplerTest, RankZeroIsMostPopular) {
  auto sampler = ZipfSampler::Create(20, 1.2);
  ASSERT_TRUE(sampler.ok());
  Xoshiro256 rng(3);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[sampler.value().Sample(rng)];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[5], counts[19]);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  auto sampler = ZipfSampler::Create(4, 0.0);
  ASSERT_TRUE(sampler.ok());
  Xoshiro256 rng(9);
  std::vector<int> counts(4, 0);
  const int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.value().Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 4, kDraws / 50);
}

TEST(ExponentialTest, MeanIsInverseRate) {
  Xoshiro256 rng(13);
  RunningSummary summary;
  for (int i = 0; i < 100000; ++i) {
    double x = SampleExponential(rng, 2.0);
    EXPECT_GE(x, 0.0);
    summary.Add(x);
  }
  EXPECT_NEAR(summary.mean(), 0.5, 0.01);
}

}  // namespace
}  // namespace stats
}  // namespace cdt
