#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "stats/rng.h"

namespace cdt {
namespace stats {
namespace {

TEST(HistogramTest, RejectsBadParameters) {
  EXPECT_FALSE(Histogram::Create(0.0, 1.0, 0).ok());
  EXPECT_FALSE(Histogram::Create(1.0, 0.0, 4).ok());
  EXPECT_FALSE(Histogram::Create(1.0, 1.0, 4).ok());
}

TEST(HistogramTest, BinsValuesCorrectly) {
  auto h = Histogram::Create(0.0, 1.0, 4);
  ASSERT_TRUE(h.ok());
  h.value().Add(0.1);   // bin 0
  h.value().Add(0.3);   // bin 1
  h.value().Add(0.6);   // bin 2
  h.value().Add(0.9);   // bin 3
  h.value().Add(1.0);   // inclusive upper edge -> last bin
  EXPECT_EQ(h.value().bin_count(0), 1u);
  EXPECT_EQ(h.value().bin_count(1), 1u);
  EXPECT_EQ(h.value().bin_count(2), 1u);
  EXPECT_EQ(h.value().bin_count(3), 2u);
  EXPECT_EQ(h.value().total(), 5u);
}

TEST(HistogramTest, TracksOutOfRangeSeparately) {
  auto h = Histogram::Create(0.0, 1.0, 2);
  ASSERT_TRUE(h.ok());
  h.value().Add(-0.5);
  h.value().Add(1.5);
  h.value().Add(0.5);
  EXPECT_EQ(h.value().underflow(), 1u);
  EXPECT_EQ(h.value().overflow(), 1u);
  EXPECT_EQ(h.value().total(), 1u);
}

TEST(HistogramTest, FractionAndMode) {
  auto h = Histogram::Create(0.0, 10.0, 10);
  ASSERT_TRUE(h.ok());
  for (int i = 0; i < 8; ++i) h.value().Add(4.5);
  for (int i = 0; i < 2; ++i) h.value().Add(8.5);
  EXPECT_DOUBLE_EQ(h.value().Fraction(4), 0.8);
  EXPECT_DOUBLE_EQ(h.value().ModeMidpoint(), 4.5);
}

TEST(HistogramTest, UniformDrawsFillBinsEvenly) {
  auto h = Histogram::Create(0.0, 1.0, 10);
  ASSERT_TRUE(h.ok());
  Xoshiro256 rng(77);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) h.value().Add(rng.NextDouble());
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_NEAR(h.value().Fraction(b), 0.1, 0.01);
  }
}

TEST(HistogramTest, ToStringRendersBars) {
  auto h = Histogram::Create(0.0, 1.0, 2);
  ASSERT_TRUE(h.ok());
  h.value().Add(0.25);
  std::string s = h.value().ToString(10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace stats
}  // namespace cdt
