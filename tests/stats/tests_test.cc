#include "stats/tests.h"

#include <cmath>

#include <gtest/gtest.h>

#include "stats/distributions.h"
#include "stats/rng.h"

namespace cdt {
namespace stats {
namespace {

TEST(RegularizedGammaPTest, KnownValues) {
  // P(1, x) = 1 − e^{−x}.
  EXPECT_NEAR(RegularizedGammaP(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(RegularizedGammaP(1.0, 5.0), 1.0 - std::exp(-5.0), 1e-12);
  // P(0.5, x) = erf(sqrt(x)).
  EXPECT_NEAR(RegularizedGammaP(0.5, 2.0), std::erf(std::sqrt(2.0)), 1e-10);
  EXPECT_DOUBLE_EQ(RegularizedGammaP(3.0, 0.0), 0.0);
}

TEST(ChiSquareSurvivalTest, KnownQuantiles) {
  // Classic table values: P[X >= 3.841 | k=1] = 0.05.
  EXPECT_NEAR(ChiSquareSurvival(3.841, 1), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquareSurvival(5.991, 2), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquareSurvival(16.919, 9), 0.05, 1e-3);
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(0.0, 5), 1.0);
}

TEST(ChiSquareGofTest, Validation) {
  EXPECT_FALSE(ChiSquareGoodnessOfFit({1, 2}, {0.5}).ok());
  EXPECT_FALSE(ChiSquareGoodnessOfFit({1}, {1.0}).ok());
  EXPECT_FALSE(ChiSquareGoodnessOfFit({1, 2}, {0.5, 0.0}).ok());
  EXPECT_FALSE(ChiSquareGoodnessOfFit({0, 0}, {0.5, 0.5}).ok());
}

TEST(ChiSquareGofTest, PerfectFitHasZeroStatistic) {
  auto result = ChiSquareGoodnessOfFit({250, 250, 250, 250},
                                       {0.25, 0.25, 0.25, 0.25});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().statistic, 0.0, 1e-12);
  EXPECT_EQ(result.value().degrees_of_freedom, 3);
  EXPECT_NEAR(result.value().p_value, 1.0, 1e-12);
}

TEST(ChiSquareGofTest, UniformRngPassesAtFivePercent) {
  Xoshiro256 rng(321);
  std::vector<std::uint64_t> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextBounded(10)];
  auto result =
      ChiSquareGoodnessOfFit(counts, std::vector<double>(10, 0.1));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().p_value, 0.01);
}

TEST(ChiSquareGofTest, SkewedCountsRejected) {
  auto result = ChiSquareGoodnessOfFit({900, 50, 50},
                                       {1.0 / 3, 1.0 / 3, 1.0 / 3});
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().p_value, 1e-6);
}

TEST(KsStatisticTest, Validation) {
  EXPECT_FALSE(
      KolmogorovSmirnovStatistic({}, [](double x) { return x; }).ok());
}

TEST(KsStatisticTest, UniformSamplesAgainstUniformCdf) {
  Xoshiro256 rng(77);
  std::vector<double> samples(5000);
  for (double& x : samples) x = rng.NextDouble();
  auto d = KolmogorovSmirnovStatistic(
      samples, [](double x) { return std::min(1.0, std::max(0.0, x)); });
  ASSERT_TRUE(d.ok());
  EXPECT_LT(d.value(), 0.03);  // well below any rejection threshold
  EXPECT_GT(KolmogorovSmirnovPValue(d.value(), samples.size()), 0.01);
}

TEST(KsStatisticTest, WrongDistributionRejected) {
  // Squared uniforms vs the uniform CDF.
  Xoshiro256 rng(78);
  std::vector<double> samples(2000);
  for (double& x : samples) {
    double u = rng.NextDouble();
    x = u * u;
  }
  auto d = KolmogorovSmirnovStatistic(
      samples, [](double x) { return std::min(1.0, std::max(0.0, x)); });
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d.value(), 0.2);
  EXPECT_LT(KolmogorovSmirnovPValue(d.value(), samples.size()), 1e-6);
}

TEST(KsStatisticTest, GaussianSamplerMatchesNormalCdf) {
  Xoshiro256 rng(79);
  GaussianSampler sampler;
  std::vector<double> samples(5000);
  for (double& x : samples) x = sampler.Sample(rng);
  auto d = KolmogorovSmirnovStatistic(samples, NormalCdf);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(KolmogorovSmirnovPValue(d.value(), samples.size()), 0.01);
}

TEST(KsPValueTest, Monotonicity) {
  EXPECT_GT(KolmogorovSmirnovPValue(0.01, 1000),
            KolmogorovSmirnovPValue(0.05, 1000));
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovPValue(0.0, 100), 1.0);
}

}  // namespace
}  // namespace stats
}  // namespace cdt
