#include "stats/rng.h"

#include <set>

#include <gtest/gtest.h>

namespace cdt {
namespace stats {
namespace {

TEST(SplitMix64Test, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Xoshiro256Test, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Xoshiro256Test, NextDoubleInUnitInterval) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro256Test, NextDoubleRangeRespectsBounds) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Xoshiro256Test, NextBoundedCoversRangeWithoutBias) {
  Xoshiro256 rng(11);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.NextBounded(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 100);  // within 10% relative
  }
}

TEST(Xoshiro256Test, NextBoundedZeroIsZero) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.NextBounded(0), 0u);
  EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Xoshiro256Test, NextIntInclusiveRange) {
  Xoshiro256 rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t x = rng.NextInt(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(Xoshiro256Test, ForkProducesDecorrelatedStream) {
  Xoshiro256 parent(42);
  Xoshiro256 child = parent.Fork();
  // The child must not replay the parent's continuation.
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (parent.Next() != child.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro256Test, MeanOfUniformDrawsIsHalf) {
  Xoshiro256 rng(2024);
  double sum = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~std::uint64_t{0});
  Xoshiro256 rng(1);
  EXPECT_GE(rng(), Xoshiro256::min());
}

}  // namespace
}  // namespace stats
}  // namespace cdt
