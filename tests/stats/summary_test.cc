#include "stats/summary.h"

#include <gtest/gtest.h>

namespace cdt {
namespace stats {
namespace {

TEST(RunningSummaryTest, EmptyIsZero) {
  RunningSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningSummaryTest, MatchesDirectComputation) {
  RunningSummary s;
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
  for (double x : xs) s.Add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.sum(), 20.0);
  // Population variance: mean of squared deviations = (9+4+1+0+36)/5 = 10.
  EXPECT_DOUBLE_EQ(s.variance(), 10.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 12.5);
}

TEST(RunningSummaryTest, SingleValue) {
  RunningSummary s;
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 0.0);
}

TEST(RunningSummaryTest, MergeEqualsSequential) {
  RunningSummary a, b, whole;
  for (int i = 0; i < 50; ++i) {
    double x = 0.1 * i * i - 3.0 * i;
    whole.Add(x);
    (i < 20 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningSummaryTest, MergeWithEmptySides) {
  RunningSummary a, empty;
  a.Add(1.0);
  a.Add(2.0);
  RunningSummary a_copy = a;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
  empty.Merge(a_copy);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(RunningSummaryTest, NumericallyStableForLargeOffsets) {
  RunningSummary s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.mean(), 1e9 + 0.5, 1e-3);
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(MeanTest, ErrorsOnEmpty) {
  EXPECT_FALSE(Mean({}).ok());
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}).value(), 3.0);
}

TEST(PercentileTest, InterpolatesBetweenValues) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100).value(), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50).value(), 2.5);
}

TEST(PercentileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Percentile({5.0, 1.0, 3.0}, 50).value(), 3.0);
}

TEST(PercentileTest, RejectsBadArgs) {
  EXPECT_FALSE(Percentile({}, 50).ok());
  EXPECT_FALSE(Percentile({1.0}, -1).ok());
  EXPECT_FALSE(Percentile({1.0}, 101).ok());
}

}  // namespace
}  // namespace stats
}  // namespace cdt
