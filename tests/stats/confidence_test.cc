#include "stats/confidence.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace cdt {
namespace stats {
namespace {

TEST(UcbRadiusTest, InfiniteForUnexploredArm) {
  EXPECT_TRUE(std::isinf(UcbRadius(0, 100, 2.0)));
}

TEST(UcbRadiusTest, MatchesPaperFormula) {
  // eps = sqrt((K+1) ln(total) / n) with K+1 = 11, total = 3000, n = 10.
  double expected = std::sqrt(11.0 * std::log(3000.0) / 10.0);
  EXPECT_NEAR(UcbRadius(10, 3000, 11.0), expected, 1e-12);
}

TEST(UcbRadiusTest, ShrinksWithMoreObservations) {
  double wide = UcbRadius(10, 1000, 2.0);
  double narrow = UcbRadius(1000, 1000, 2.0);
  EXPECT_GT(wide, narrow);
}

TEST(UcbRadiusTest, GrowsWithTotalObservations) {
  EXPECT_LT(UcbRadius(10, 100, 2.0), UcbRadius(10, 100000, 2.0));
}

TEST(UcbRadiusTest, GuardsTinyTotals) {
  // ln(1) = 0 would kill exploration entirely; the implementation floors
  // the log argument at 2.
  EXPECT_GT(UcbRadius(1, 1, 2.0), 0.0);
}

TEST(HoeffdingTailTest, DecreasesInDeviation) {
  EXPECT_GT(HoeffdingTailBound(100, 1.0), HoeffdingTailBound(100, 5.0));
}

TEST(HoeffdingTailTest, TrivialCases) {
  EXPECT_DOUBLE_EQ(HoeffdingTailBound(0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(HoeffdingTailBound(10, 0.0), 1.0);
}

TEST(HoeffdingTailTest, MatchesClosedForm) {
  // P <= exp(-2 a^2 / n) with a = 3, n = 50.
  EXPECT_NEAR(HoeffdingTailBound(50, 3.0), std::exp(-18.0 / 50.0), 1e-12);
}

TEST(HoeffdingHalfWidthTest, ShrinksWithSamples) {
  EXPECT_GT(HoeffdingHalfWidth(10, 0.05), HoeffdingHalfWidth(1000, 0.05));
  EXPECT_TRUE(std::isinf(HoeffdingHalfWidth(0, 0.05)));
}

TEST(HoeffdingHalfWidthTest, CoverageSemantics) {
  // 95% CI for n=200 Bernoulli-like variables ~ 0.096.
  EXPECT_NEAR(HoeffdingHalfWidth(200, 0.05),
              std::sqrt(std::log(40.0) / 400.0), 1e-12);
}

}  // namespace
}  // namespace stats
}  // namespace cdt
