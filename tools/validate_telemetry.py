#!/usr/bin/env python3
"""Validate CDT telemetry exports against tools/telemetry_schema.json.

Checks three artifacts (any subset may be given):

  --trace trace.json      Chrome trace-event JSON: structure, "X" events
                          with non-negative ts/dur, the required span names
                          from the schema, and that every non-round span is
                          contained in some "round" span on the same tid
                          (the nesting Perfetto renders as a tree).
  --jsonl metrics.jsonl   JSONL metric snapshot: one JSON object per line,
                          every metric in the schema catalogue with the
                          declared type/label keys/label values, histogram
                          buckets ascending with bucket counts summing to
                          `count`, and all `required` metrics present.
  --prom metrics.prom     Prometheus text exposition: HELP/TYPE headers,
                          parsable sample lines, cumulative bucket counts,
                          and family names from the catalogue.

Exit code 0 when every given artifact validates; 1 otherwise with one
"ERROR <artifact>: ..." line per failure. Stdlib only (json/re/argparse) so
it runs anywhere CI has a python3.

Usage (the CI fault smoke):
  quickstart rounds=200 faults=0.3 trace-out=/tmp/t.json metrics-out=/tmp/m.prom
  python3 tools/validate_telemetry.py --schema tools/telemetry_schema.json \
      --trace /tmp/t.json --prom /tmp/m.prom --jsonl /tmp/m.prom.jsonl
"""

import argparse
import json
import math
import re
import sys

errors = []


def err(artifact, message):
    errors.append(f"ERROR {artifact}: {message}")


def load_schema(path):
    with open(path, "r", encoding="utf-8") as f:
        schema = json.load(f)
    for key in ("metrics", "label_values", "required_spans"):
        if key not in schema:
            err("schema", f"missing top-level key {key!r}")
    return schema


# ----------------------------------------------------------------- trace ---


def validate_trace(path, schema):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err("trace", f"cannot parse {path}: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        err("trace", "traceEvents is missing or not a list")
        return

    spans = []  # (name, tid, start_us, end_us)
    for i, e in enumerate(events):
        if not isinstance(e, dict) or "ph" not in e or "name" not in e:
            err("trace", f"event {i} lacks ph/name")
            continue
        if e["ph"] == "M":
            continue  # metadata
        if e["ph"] != "X":
            err("trace", f"event {i} has unexpected phase {e['ph']!r}")
            continue
        for key in ("ts", "dur", "pid", "tid"):
            if not isinstance(e.get(key), (int, float)):
                err("trace", f"event {i} ({e['name']}) lacks numeric {key}")
                break
        else:
            if e["ts"] < 0 or e["dur"] < 0:
                err("trace", f"event {i} ({e['name']}) has negative ts/dur")
            spans.append((e["name"], e["tid"], e["ts"], e["ts"] + e["dur"]))

    names = {s[0] for s in spans}
    for required in schema.get("required_spans", []):
        if required not in names:
            err("trace", f"required span {required!r} never recorded")

    rounds = [s for s in spans if s[0] == "round"]
    for name, tid, start, end in spans:
        if name == "round":
            continue
        if not any(
            r[1] == tid and r[2] <= start and end <= r[3] for r in rounds
        ):
            err("trace", f"span {name!r} not nested in any round span")
            break  # one report is enough; traces can hold thousands of spans


# ----------------------------------------------------------------- jsonl ---


def check_labels(artifact, name, labels, spec, schema):
    if sorted(labels.keys()) != sorted(spec.get("labels", [])):
        err(
            artifact,
            f"{name}: label keys {sorted(labels)} != schema "
            f"{sorted(spec.get('labels', []))}",
        )
        return
    for key, value in labels.items():
        allowed = schema.get("label_values", {}).get(key)
        if allowed is not None and value not in allowed:
            err(artifact, f"{name}: label {key}={value!r} not in {allowed}")


def validate_jsonl(path, schema):
    catalogue = schema.get("metrics", {})
    seen = set()
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        err("jsonl", f"cannot read {path}: {e}")
        return

    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            m = json.loads(line)
        except json.JSONDecodeError as e:
            err("jsonl", f"line {lineno} is not valid JSON: {e}")
            continue
        name = m.get("name")
        spec = catalogue.get(name)
        if spec is None:
            err("jsonl", f"line {lineno}: unknown metric {name!r}")
            continue
        seen.add(name)
        if m.get("type") != spec["type"]:
            err(
                "jsonl",
                f"{name}: type {m.get('type')!r} != schema {spec['type']!r}",
            )
        check_labels("jsonl", name, m.get("labels", {}), spec, schema)

        if spec["type"] in ("counter", "gauge"):
            if not isinstance(m.get("value"), (int, float)):
                err("jsonl", f"{name}: missing numeric value")
            elif spec["type"] == "counter" and m["value"] < 0:
                err("jsonl", f"{name}: counter is negative ({m['value']})")
        else:  # histogram
            buckets = m.get("buckets")
            if not isinstance(buckets, list) or not buckets:
                err("jsonl", f"{name}: histogram lacks buckets")
                continue
            if buckets[-1].get("le") != "+Inf":
                err("jsonl", f"{name}: last bucket le must be +Inf")
            finite = [b.get("le") for b in buckets[:-1]]
            if any(not isinstance(le, (int, float)) for le in finite):
                err("jsonl", f"{name}: non-numeric finite bucket bound")
            elif finite != sorted(finite) or len(set(finite)) != len(finite):
                err("jsonl", f"{name}: bucket bounds not strictly ascending")
            counts = [b.get("count", -1) for b in buckets]
            if any(not isinstance(c, int) or c < 0 for c in counts):
                err("jsonl", f"{name}: negative or missing bucket count")
            elif sum(counts) != m.get("count"):
                err(
                    "jsonl",
                    f"{name}: bucket counts sum to {sum(counts)} "
                    f"but count={m.get('count')}",
                )
            if not isinstance(m.get("sum"), (int, float)) or (
                isinstance(m.get("sum"), float) and math.isnan(m["sum"])
            ):
                err("jsonl", f"{name}: histogram sum missing or NaN")

    for name, spec in catalogue.items():
        if spec.get("required") and name not in seen:
            err("jsonl", f"required metric {name!r} missing from snapshot")


# ------------------------------------------------------------------ prom ---

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$"
)


def family_of(sample_name):
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def validate_prom(path, schema):
    catalogue = schema.get("metrics", {})
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        err("prom", f"cannot read {path}: {e}")
        return

    typed = {}  # family -> declared type
    cumulative = {}  # (family, labels-minus-le) -> last bucket count
    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                err("prom", f"line {lineno}: malformed TYPE comment")
                continue
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            err("prom", f"line {lineno}: unparsable sample {line!r}")
            continue
        sample, labels, value = m.group(1), m.group(2) or "", m.group(3)
        family = family_of(sample)
        if family not in typed:
            err("prom", f"line {lineno}: sample {sample} before its TYPE")
        if family not in catalogue:
            err("prom", f"line {lineno}: unknown metric family {family!r}")
        try:
            v = float(value)
        except ValueError:
            err("prom", f"line {lineno}: non-numeric value {value!r}")
            continue
        if sample.endswith("_bucket"):
            series = (family, re.sub(r',?le="[^"]*"', "", labels))
            if v < cumulative.get(series, 0.0):
                err("prom", f"line {lineno}: bucket counts not cumulative")
            cumulative[series] = v

    for family, declared in typed.items():
        spec = catalogue.get(family)
        if spec is not None and declared != spec["type"]:
            err(
                "prom",
                f"{family}: TYPE {declared!r} != schema {spec['type']!r}",
            )
    for name, spec in catalogue.items():
        if spec.get("required") and name not in typed:
            err("prom", f"required metric {name!r} missing from exposition")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema", default="tools/telemetry_schema.json")
    parser.add_argument("--trace")
    parser.add_argument("--jsonl")
    parser.add_argument("--prom")
    args = parser.parse_args()

    schema = load_schema(args.schema)
    if not (args.trace or args.jsonl or args.prom):
        parser.error("nothing to validate: pass --trace/--jsonl/--prom")
    if args.trace:
        validate_trace(args.trace, schema)
    if args.jsonl:
        validate_jsonl(args.jsonl, schema)
    if args.prom:
        validate_prom(args.prom, schema)

    if errors:
        print("\n".join(errors), file=sys.stderr)
        return 1
    checked = [a for a in (args.trace, args.jsonl, args.prom) if a]
    print(f"telemetry OK: {', '.join(checked)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
