// cdt_replay — inspect, verify and resume recorded CDT event logs.
//
//   cdt_replay inspect <log>                 header, config, round count
//   cdt_replay verify <log>                  re-run + byte-compare (gate)
//   cdt_replay export-csv <log> <csv>        decode rounds to run-log CSV
//   cdt_replay resume <log> <snapshot>       restore + tail-replay, then
//                                            finish the campaign live
//
// `verify` is the replay upgrade gate: exit 0 means this build reproduces
// the recorded trace bit-for-bit. `inspect` and `export-csv` tolerate torn
// logs (crashed recordings); `verify` demands a sealed one.

#include <cinttypes>
#include <cstdio>
#include <string>

#include "core/cmab_hs.h"
#include "market/run_log.h"
#include "persist/event_log.h"
#include "persist/replay.h"
#include "util/signal.h"

namespace {

using namespace cdt;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "cdt_replay: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: cdt_replay inspect <log>\n"
               "       cdt_replay verify <log>\n"
               "       cdt_replay export-csv <log> <csv>\n"
               "       cdt_replay resume <log> <snapshot>\n");
  return 2;
}

int Inspect(const std::string& path) {
  auto recorded = persist::LoadRecordedRun(path, /*allow_torn_tail=*/true);
  if (!recorded.ok()) return Fail(recorded.status());
  const persist::RecordedRun& run = recorded.value();
  std::printf("log:            %s\n", path.c_str());
  std::printf("format version: %" PRIu64 "\n", persist::kFormatVersion);
  std::printf("config crc:     %u\n", run.config_crc);
  std::printf("policy:         %s\n", run.policy.Name().c_str());
  std::printf("scale:          M=%d K=%d L=%d N=%" PRId64 " seed=%" PRIu64
              "\n",
              run.config.num_sellers, run.config.num_selected,
              run.config.num_pois, run.config.num_rounds, run.config.seed);
  std::printf("faults:         default=%g corrupt=%g partial=%g "
              "settlement=%g\n",
              run.config.faults.default_rate, run.config.faults.corrupt_rate,
              run.config.faults.partial_rate,
              run.config.faults.settlement_failure_rate);
  std::printf("rounds:         %zu of %" PRId64 "\n", run.rounds.size(),
              run.config.num_rounds);
  std::printf("snapshots:      %zu", run.snapshot_rounds.size());
  if (!run.snapshot_rounds.empty()) {
    std::printf(" (last after round %" PRId64 ")",
                run.snapshot_rounds.back());
  }
  std::printf("\n");
  std::printf("sealed:         %s%s\n", run.sealed ? "yes" : "no",
              run.torn_tail ? " (torn tail absorbed)" : "");
  return 0;
}

int Verify(const std::string& path) {
  auto recorded = persist::LoadRecordedRun(path);
  if (!recorded.ok()) return Fail(recorded.status());
  auto verified = persist::VerifyReplay(recorded.value());
  if (!verified.ok()) return Fail(verified.status());
  std::printf("verified %" PRId64 " rounds of %s bit-for-bit\n",
              verified.value().rounds_verified, path.c_str());
  return 0;
}

int ExportCsv(const std::string& log_path, const std::string& csv_path) {
  auto recorded =
      persist::LoadRecordedRun(log_path, /*allow_torn_tail=*/true);
  if (!recorded.ok()) return Fail(recorded.status());
  auto writer = market::RunLogWriter::Open(csv_path);
  if (!writer.ok()) return Fail(writer.status());
  for (const market::RoundReport& report : recorded.value().rounds) {
    if (util::ShutdownRequested()) {
      std::fprintf(stderr, "cdt_replay: interrupted, closing CSV early\n");
      break;
    }
    util::Status status = writer.value().Append(report);
    if (!status.ok()) return Fail(status);
  }
  util::Status closed = writer.value().Close();
  if (!closed.ok()) return Fail(closed);
  std::printf("wrote %" PRId64 " rows to %s\n",
              writer.value().rows_written(), csv_path.c_str());
  return 0;
}

int Resume(const std::string& log_path, const std::string& snapshot_path) {
  auto recorded =
      persist::LoadRecordedRun(log_path, /*allow_torn_tail=*/true);
  if (!recorded.ok()) return Fail(recorded.status());
  auto snapshot = persist::ReadSnapshotFile(snapshot_path);
  if (!snapshot.ok()) return Fail(snapshot.status());
  auto resumed =
      persist::ResumeFromSnapshot(recorded.value(), snapshot.value());
  if (!resumed.ok()) return Fail(resumed.status());
  std::printf("restored snapshot (round %" PRId64
              "), tail-replayed through round %" PRId64 "\n",
              resumed.value().snapshot_round, resumed.value().resumed_round);
  // Finish the rest of the campaign live, exiting cleanly on SIGINT or
  // SIGTERM (the rounds already settled stay reported).
  std::int64_t live_rounds = 0;
  bool interrupted = false;
  while (resumed.value().run->engine().current_round() <
         recorded.value().config.num_rounds) {
    if (util::ShutdownRequested()) {
      interrupted = true;
      break;
    }
    auto report = resumed.value().run->RunRound();
    if (!report.ok()) {
      if (resumed.value().run->engine().budget_exhausted()) break;
      return Fail(report.status());
    }
    ++live_rounds;
  }
  std::printf("ran %" PRId64 " further rounds live (campaign at round %"
              PRId64 " of %" PRId64 ")%s\n",
              live_rounds, resumed.value().run->engine().current_round(),
              recorded.value().config.num_rounds,
              interrupted ? " — interrupted" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  cdt::util::InstallShutdownHandlers();
  const std::string command = argv[1];
  if (command == "inspect") return Inspect(argv[2]);
  if (command == "verify") return Verify(argv[2]);
  if (command == "export-csv") {
    if (argc < 4) return Usage();
    return ExportCsv(argv[2], argv[3]);
  }
  if (command == "resume") {
    if (argc < 4) return Usage();
    return Resume(argv[2], argv[3]);
  }
  return Usage();
}
