// cdt_fsck — offline WAL checker/repairer for a marketplace WAL
// directory. Walks every event log (*.cdtlog) and snapshot (*.cdtsnap),
// CRC-verifying record framing, footer totals and snapshot payloads:
//
//   * torn tails (crash mid-append) are truncated back to the last
//     complete record so crash recovery can reattach;
//   * irreparable artifacts (bit rot, framing damage) are quarantined —
//     renamed to <file>.quarantined — so recovery fails loudly with
//     NotFound instead of replaying poison;
//   * artifacts from a different format version are reported and left
//     intact (use a matching build to read them);
//   * orphaned atomic-write temp files (*.tmp) are swept when
//     --repair=true (report-only runs just count them).
//
//   cdt_fsck --wal-dir=DIR [--repair=true|false]
//            [--quarantine=true|false]
//
// --repair=false --quarantine=false is a pure read-only check. Exit code
// 0 = every artifact clean or repaired; 1 = at least one artifact
// quarantined or version-skewed (operator attention needed); 2 = usage /
// I/O error. Run this only while the service is stopped — the startup
// scrub inside cdt_service does the same work in-process.

#include <cstdio>
#include <string>

#include "persist/scrub.h"
#include "util/config.h"
#include "util/status.h"

namespace {

using namespace cdt;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "cdt_fsck: %s\n", status.ToString().c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = util::ConfigMap::FromArgs(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status());
  const util::ConfigMap& flags = parsed.value();

  auto wal_dir = flags.GetString("wal-dir", "");
  auto repair = flags.GetBool("repair", true);
  auto quarantine = flags.GetBool("quarantine", true);
  for (const util::Status& status :
       {wal_dir.status(), repair.status(), quarantine.status()}) {
    if (!status.ok()) return Fail(status);
  }
  if (wal_dir.value().empty()) {
    return Fail(util::Status::InvalidArgument(
        "usage: cdt_fsck --wal-dir=DIR [--repair=BOOL] "
        "[--quarantine=BOOL]"));
  }

  persist::ScrubOptions options;
  options.repair = repair.value();
  options.quarantine = quarantine.value();
  auto scrubbed = persist::ScrubWalDirectory(wal_dir.value(), options);
  if (!scrubbed.ok()) return Fail(scrubbed.status());
  const persist::ScrubReport& report = scrubbed.value();

  for (const persist::ScrubOutcome& file : report.files) {
    std::printf("%-12s %s%s%s\n", persist::ArtifactHealthName(file.health),
                file.path.c_str(), file.detail.empty() ? "" : "  — ",
                file.detail.c_str());
  }
  std::printf("scanned=%zu clean=%d repaired=%d quarantined=%d "
              "version_skew=%d orphan_temps_found=%d "
              "orphan_temps_removed=%d\n",
              report.files.size(), report.clean, report.repaired,
              report.quarantined, report.version_skew,
              report.orphan_temps_found, report.orphan_temps_removed);
  for (const auto& entry : report.quarantine_reasons) {
    std::printf("quarantined{reason=%s}=%d\n", entry.first.c_str(),
                entry.second);
  }
  if (!options.repair || !options.quarantine) {
    std::printf("(report-only flags set: nothing was modified beyond the "
                "selected actions)\n");
  }
  return (report.quarantined > 0 || report.version_skew > 0) ? 1 : 0;
}
