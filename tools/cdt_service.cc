// cdt_service — run the resilient sharded marketplace runtime as a
// long-lived process: host N synthetic marketplaces, push round traffic
// through the admission-controlled shard fleet, and drain gracefully on
// SIGINT/SIGTERM so every marketplace's WAL ends footer-sealed.
//
//   cdt_service [--wal-dir=DIR] [--shards=N] [--marketplaces=N]
//               [--rounds=N] [--queue-capacity=N] [--snapshot-every=N]
//               [--shed-policy=reject|coalesce|block]
//               [--max-rounds-per-dispatch=N] [--seed=N]
//               [--metrics-out=FILE] [--chaos-kill-shard=IDX]
//               [--compact-after-rounds=N] [--scrub-on-start=BOOL]
//
// Startup scrubs the WAL directory (orphan temps swept, torn tails
// repaired, irreparable artifacts quarantined) and the run ends with a
// durability health line — degrades/re-arms/quarantines are explicit,
// never silent.
//
// Traffic model: each marketplace gets a create, then demand events in
// bursts until --rounds rounds are requested, then a close. With
// --chaos-kill-shard the named shard crashes mid-traffic and the watchdog
// restarts it — the service still drains to sealed WALs, demonstrating
// the recovery path end to end.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "runtime/service.h"
#include "util/config.h"
#include "util/signal.h"
#include "util/status.h"

namespace {

using namespace cdt;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "cdt_service: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = util::ConfigMap::FromArgs(argc, argv);
  if (!parsed.ok()) return Fail(parsed.status());
  const util::ConfigMap& flags = parsed.value();

  runtime::MarketplaceService::Options options;
  auto wal_dir = flags.GetString("wal-dir", "cdt_service_wal");
  auto shards = flags.GetInt("shards", 4);
  auto marketplaces = flags.GetInt("marketplaces", 8);
  auto rounds = flags.GetInt("rounds", 500);
  auto queue_capacity = flags.GetInt("queue-capacity", 256);
  auto snapshot_every = flags.GetInt("snapshot-every", 100);
  auto shed_policy = flags.GetString("shed-policy", "coalesce");
  auto max_dispatch = flags.GetInt("max-rounds-per-dispatch", 64);
  auto seed = flags.GetInt("seed", 42);
  auto metrics_out = flags.GetString("metrics-out", "");
  auto chaos_kill = flags.GetInt("chaos-kill-shard", -1);
  auto compact_after = flags.GetInt("compact-after-rounds", 0);
  auto scrub_on_start = flags.GetBool("scrub-on-start", true);
  for (const util::Status& status :
       {wal_dir.status(), shards.status(), marketplaces.status(),
        rounds.status(), queue_capacity.status(), snapshot_every.status(),
        shed_policy.status(), max_dispatch.status(), seed.status(),
        metrics_out.status(), chaos_kill.status(), compact_after.status(),
        scrub_on_start.status()}) {
    if (!status.ok()) return Fail(status);
  }

  options.wal_dir = wal_dir.value();
  options.num_shards = static_cast<int>(shards.value());
  options.queue_capacity =
      static_cast<std::size_t>(queue_capacity.value());
  options.snapshot_every = snapshot_every.value();
  options.durability.compact_after_rounds = compact_after.value();
  options.scrub_on_start = scrub_on_start.value();
  options.max_rounds_per_dispatch = max_dispatch.value();
  if (shed_policy.value() == "reject") {
    options.shed_policy =
        runtime::MarketplaceService::ShedPolicy::kRejectNewest;
  } else if (shed_policy.value() == "coalesce") {
    options.shed_policy =
        runtime::MarketplaceService::ShedPolicy::kCoalesceTicks;
  } else if (shed_policy.value() == "block") {
    options.shed_policy = runtime::MarketplaceService::ShedPolicy::kBlock;
  } else {
    return Fail(util::Status::InvalidArgument(
        "unknown --shed-policy '" + shed_policy.value() +
        "' (want reject|coalesce|block)"));
  }

  if (!metrics_out.value().empty()) obs::Enable();
  util::InstallShutdownHandlers();

  auto service = runtime::MarketplaceService::Create(options);
  if (!service.ok()) return Fail(service.status());

  // Synthetic traffic: small Table-II-shaped marketplaces with distinct
  // seeds, demand pushed in bursts so the admission path sees pressure.
  const std::int64_t total_rounds = rounds.value();
  const std::int64_t burst = 25;
  std::vector<std::string> ids;
  for (long long i = 0; i < marketplaces.value(); ++i) {
    ids.push_back("market-" + std::to_string(i));
    runtime::Event create;
    create.type = runtime::EventType::kCreateMarketplace;
    create.marketplace = ids.back();
    auto spec = std::make_shared<runtime::MarketplaceSpec>();
    spec->config.num_sellers = 20;
    spec->config.num_selected = 4;
    spec->config.num_pois = 5;
    spec->config.num_rounds = total_rounds;
    spec->config.seed = static_cast<std::uint64_t>(seed.value()) +
                        static_cast<std::uint64_t>(i);
    create.spec = std::move(spec);
    (void)service.value()->Submit(create);
  }

  if (chaos_kill.value() >= 0 &&
      chaos_kill.value() < service.value()->num_shards()) {
    service.value()
        ->shard(static_cast<int>(chaos_kill.value()))
        .ArmKillAfter(3);
    std::fprintf(stderr,
                 "[chaos] shard %lld will crash after 3 events\n",
                 chaos_kill.value());
  }

  std::int64_t requested = 0;
  bool interrupted = false;
  while (requested < total_rounds) {
    if (util::ShutdownRequested()) {
      interrupted = true;
      break;
    }
    const std::int64_t chunk = std::min(burst, total_rounds - requested);
    for (const std::string& id : ids) {
      runtime::Event demand;
      demand.type = runtime::EventType::kConsumerDemand;
      demand.marketplace = id;
      demand.rounds = chunk;
      (void)service.value()->Submit(demand);
    }
    requested += chunk;
    // Pace the producer so workers keep up without unbounded shedding.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!interrupted) {
    for (const std::string& id : ids) {
      runtime::Event close;
      close.type = runtime::EventType::kCloseMarketplace;
      close.marketplace = id;
      (void)service.value()->Submit(close);
    }
  }

  // Graceful drain either way: on interrupt the queues finish their
  // admitted events and every live marketplace's WAL is sealed.
  service.value()->Drain();

  const auto stats = service.value()->GetStats();
  std::printf("submitted=%llu accepted=%llu coalesced_rounds=%llu "
              "shed=%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.coalesced_rounds),
              static_cast<unsigned long long>(stats.total_shed));
  std::printf("events_processed=%llu rounds_settled=%llu restarts=%llu "
              "stalls=%llu\n",
              static_cast<unsigned long long>(stats.events_processed),
              static_cast<unsigned long long>(stats.rounds_settled),
              static_cast<unsigned long long>(stats.restarts),
              static_cast<unsigned long long>(stats.stalls));
  for (const auto& entry : stats.shed) {
    std::printf("shed{reason=%s}=%llu\n", entry.first.c_str(),
                static_cast<unsigned long long>(entry.second));
  }
  std::printf("scrub repaired=%llu quarantined=%llu version_skew=%llu "
              "orphans_removed=%llu\n",
              static_cast<unsigned long long>(stats.scrub_repaired),
              static_cast<unsigned long long>(stats.scrub_quarantined),
              static_cast<unsigned long long>(stats.scrub_version_skew),
              static_cast<unsigned long long>(stats.scrub_orphans_removed));
  std::printf("durability wal_failures=%llu degrades=%llu rearms=%llu "
              "failed=%llu quarantined=%llu compactions=%llu\n",
              static_cast<unsigned long long>(stats.durability.wal_failures),
              static_cast<unsigned long long>(stats.durability.degrades),
              static_cast<unsigned long long>(stats.durability.rearms),
              static_cast<unsigned long long>(stats.durability.failures),
              static_cast<unsigned long long>(stats.durability.quarantines),
              static_cast<unsigned long long>(stats.durability.compactions));
  if (interrupted) {
    std::printf("interrupted: drained %zu marketplaces to sealed WALs\n",
                ids.size());
  }

  if (!metrics_out.value().empty()) {
    util::Status written =
        obs::WritePrometheusText(obs::registry(), metrics_out.value());
    if (written.ok()) {
      written = obs::WriteMetricsJsonl(obs::registry(),
                                       metrics_out.value() + ".jsonl");
    }
    if (!written.ok()) return Fail(written);
    std::printf("metrics written to %s and %s.jsonl\n",
                metrics_out.value().c_str(), metrics_out.value().c_str());
  }
  return 0;
}
