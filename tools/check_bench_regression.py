#!/usr/bin/env python3
"""Gate the large-M benchmark families against a checked-in baseline.

Compares a fresh Google-Benchmark JSON report against the matching
section of a combined BENCH_<pr>.json baseline (one top-level key per
bench binary, see docs/PERFORMANCE.md).

Only the large-M families are considered (names matching --family-regex,
default: the LargeM / PaperK / UcbScan / *SelectRound families). Within
them, rows whose name matches --gate-regex (default: the M=1e4 rows)
FAIL the run when they regress more than --threshold over the baseline;
every other row is report-only — the M=1e5/1e6 rows take long enough
that CI noise would make a hard gate flaky, but their trend is still
printed into the job log and the uploaded artifact.

Stdlib only; exits 0 when every gated row holds, 1 otherwise.
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def _rows(report):
    """name -> real_time in ns for every non-aggregate benchmark row."""
    out = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        unit = bench.get("time_unit", "ns")
        out[name] = float(bench["real_time"]) * _UNIT_NS[unit]
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="combined BENCH_<pr>.json baseline")
    parser.add_argument("--current", required=True,
                        help="fresh --benchmark_format=json report")
    parser.add_argument("--binary", required=True,
                        help="baseline key to compare against, "
                             "e.g. micro_engine")
    parser.add_argument("--family-regex",
                        default=r"LargeM|PaperK|UcbScan|SelectRound",
                        help="rows considered at all")
    parser.add_argument("--gate-regex", default=r"/10000\b|/10000/",
                        help="rows that hard-fail on regression")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="max allowed current/baseline time ratio")
    args = parser.parse_args()

    import re
    family = re.compile(args.family_regex)
    gate = re.compile(args.gate_regex)

    with open(args.baseline) as f:
        combined = json.load(f)
    if args.binary not in combined:
        print(f"baseline has no '{args.binary}' section", file=sys.stderr)
        return 1
    base = _rows(combined[args.binary])
    with open(args.current) as f:
        cur = _rows(json.load(f))

    failures = []
    seen_any = False
    for name in sorted(cur):
        if not family.search(name):
            continue
        seen_any = True
        if name not in base:
            print(f"  [new]    {name}: {cur[name] / 1e3:.1f} us "
                  "(no baseline row)")
            continue
        ratio = cur[name] / base[name]
        gated = bool(gate.search(name))
        tag = "GATE" if gated else "info"
        print(f"  [{tag}]   {name}: {cur[name] / 1e3:.1f} us vs "
              f"{base[name] / 1e3:.1f} us baseline ({ratio:.2f}x)")
        if gated and ratio > args.threshold:
            failures.append((name, ratio))

    if not seen_any:
        print("no large-M benchmark rows found in the current report",
              file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} gated row(s) regressed beyond "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print("\nall gated rows within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
