// Offline analysis over persisted run logs (market::RunLogRow): summary
// statistics, metric extraction, moving-average smoothing, cumulative
// regret curves and selection-convergence detection. Lets users audit a
// long campaign from its CSV without re-simulation.

#ifndef CDT_ANALYSIS_RUN_ANALYSIS_H_
#define CDT_ANALYSIS_RUN_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "market/run_log.h"
#include "util/status.h"

namespace cdt {
namespace analysis {

/// Whole-run aggregate of a run log.
struct RunStatistics {
  std::int64_t rounds = 0;
  double total_consumer_profit = 0.0;
  double total_platform_profit = 0.0;
  double total_seller_profit = 0.0;
  double total_expected_revenue = 0.0;
  double total_observed_revenue = 0.0;
  double mean_consumer_price = 0.0;
  double mean_collection_price = 0.0;
  double mean_total_time = 0.0;
  /// Rounds flagged as initial exploration.
  std::int64_t exploration_rounds = 0;
};

/// Aggregates a run log; errors on empty input.
util::Result<RunStatistics> Summarize(
    const std::vector<market::RunLogRow>& rows);

/// Selectable metric columns.
enum class Metric {
  kConsumerProfit,
  kPlatformProfit,
  kSellerProfitTotal,
  kConsumerPrice,
  kCollectionPrice,
  kTotalTime,
  kExpectedQualityRevenue,
  kObservedQualityRevenue,
};

/// Extracts one metric column in round order.
std::vector<double> ExtractMetric(const std::vector<market::RunLogRow>& rows,
                                  Metric metric);

/// Centred-as-possible trailing moving average with window `window` >= 1
/// (the first window-1 entries average the available prefix).
util::Result<std::vector<double>> MovingAverage(
    const std::vector<double>& values, std::size_t window);

/// Cumulative regret curve: prefix sums of
/// (optimal_round_revenue − expected_quality_revenue). Initial-exploration
/// rounds are included (they are part of Algorithm 1's cost).
util::Result<std::vector<double>> CumulativeRegretCurve(
    const std::vector<market::RunLogRow>& rows,
    double optimal_round_revenue);

/// First 1-based round index from which the *selected set* (order
/// ignored) stays identical for at least `stable_rounds` consecutive
/// rounds and through the end of the log; 0 when never converged.
util::Result<std::int64_t> DetectSelectionConvergence(
    const std::vector<market::RunLogRow>& rows, std::int64_t stable_rounds);

}  // namespace analysis
}  // namespace cdt

#endif  // CDT_ANALYSIS_RUN_ANALYSIS_H_
