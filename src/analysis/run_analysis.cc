#include "analysis/run_analysis.h"

#include <algorithm>
#include <set>

namespace cdt {
namespace analysis {

using market::RunLogRow;
using util::Result;
using util::Status;

Result<RunStatistics> Summarize(const std::vector<RunLogRow>& rows) {
  if (rows.empty()) {
    return Status::InvalidArgument("cannot summarise an empty run log");
  }
  RunStatistics stats;
  stats.rounds = static_cast<std::int64_t>(rows.size());
  for (const RunLogRow& row : rows) {
    stats.total_consumer_profit += row.consumer_profit;
    stats.total_platform_profit += row.platform_profit;
    stats.total_seller_profit += row.seller_profit_total;
    stats.total_expected_revenue += row.expected_quality_revenue;
    stats.total_observed_revenue += row.observed_quality_revenue;
    stats.mean_consumer_price += row.consumer_price;
    stats.mean_collection_price += row.collection_price;
    stats.mean_total_time += row.total_time;
    if (row.initial_exploration) ++stats.exploration_rounds;
  }
  double n = static_cast<double>(rows.size());
  stats.mean_consumer_price /= n;
  stats.mean_collection_price /= n;
  stats.mean_total_time /= n;
  return stats;
}

std::vector<double> ExtractMetric(const std::vector<RunLogRow>& rows,
                                  Metric metric) {
  std::vector<double> out;
  out.reserve(rows.size());
  for (const RunLogRow& row : rows) {
    switch (metric) {
      case Metric::kConsumerProfit:
        out.push_back(row.consumer_profit);
        break;
      case Metric::kPlatformProfit:
        out.push_back(row.platform_profit);
        break;
      case Metric::kSellerProfitTotal:
        out.push_back(row.seller_profit_total);
        break;
      case Metric::kConsumerPrice:
        out.push_back(row.consumer_price);
        break;
      case Metric::kCollectionPrice:
        out.push_back(row.collection_price);
        break;
      case Metric::kTotalTime:
        out.push_back(row.total_time);
        break;
      case Metric::kExpectedQualityRevenue:
        out.push_back(row.expected_quality_revenue);
        break;
      case Metric::kObservedQualityRevenue:
        out.push_back(row.observed_quality_revenue);
        break;
    }
  }
  return out;
}

Result<std::vector<double>> MovingAverage(const std::vector<double>& values,
                                          std::size_t window) {
  if (window == 0) {
    return Status::InvalidArgument("window must be >= 1");
  }
  std::vector<double> out(values.size());
  double running = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    running += values[i];
    if (i >= window) running -= values[i - window];
    std::size_t denom = std::min(i + 1, window);
    out[i] = running / static_cast<double>(denom);
  }
  return out;
}

Result<std::vector<double>> CumulativeRegretCurve(
    const std::vector<RunLogRow>& rows, double optimal_round_revenue) {
  if (optimal_round_revenue <= 0.0) {
    return Status::InvalidArgument("optimal_round_revenue must be > 0");
  }
  std::vector<double> out(rows.size());
  double total = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    total += optimal_round_revenue - rows[i].expected_quality_revenue;
    out[i] = total;
  }
  return out;
}

Result<std::int64_t> DetectSelectionConvergence(
    const std::vector<RunLogRow>& rows, std::int64_t stable_rounds) {
  if (stable_rounds <= 0) {
    return Status::InvalidArgument("stable_rounds must be > 0");
  }
  if (rows.empty()) return static_cast<std::int64_t>(0);

  std::vector<std::set<int>> sets;
  sets.reserve(rows.size());
  for (const RunLogRow& row : rows) {
    Result<std::vector<int>> ids = market::ParseSelectedSet(row.selected);
    if (!ids.ok()) return ids.status();
    sets.emplace_back(ids.value().begin(), ids.value().end());
  }
  // Walk backwards: find the start of the final stable streak.
  std::size_t start = sets.size() - 1;
  while (start > 0 && sets[start - 1] == sets.back()) --start;
  std::int64_t streak = static_cast<std::int64_t>(sets.size() - start);
  if (streak >= stable_rounds) {
    return static_cast<std::int64_t>(start + 1);  // 1-based round
  }
  return static_cast<std::int64_t>(0);
}

}  // namespace analysis
}  // namespace cdt
