// Algorithm comparison runner for the paper's evaluation (Sec. V): runs the
// same environment (identical true qualities and cost draws) under several
// seller-selection policies and reports total revenue, regret, mean profits
// and the Δ-profit-vs-optimal metrics (Δ-PoC, Δ-PoP, Δ-PoS).

#ifndef CDT_CORE_COMPARISON_H_
#define CDT_CORE_COMPARISON_H_

#include <string>
#include <vector>

#include "bandit/regret.h"
#include "core/cmab_hs.h"
#include "core/config.h"

namespace cdt {
namespace core {

/// Per-algorithm outcome of a comparison run.
struct AlgorithmResult {
  std::string name;
  double expected_revenue = 0.0;
  double observed_revenue = 0.0;
  double regret = 0.0;
  double mean_consumer_profit = 0.0;
  double mean_platform_profit = 0.0;
  double mean_seller_profit_total = 0.0;
  double mean_seller_profit_each = 0.0;
  /// Mean per-round |profit − optimal's profit| (the paper's Δ metrics);
  /// zero for the optimal algorithm itself.
  double delta_consumer = 0.0;
  double delta_platform = 0.0;
  double delta_seller = 0.0;
  /// Checkpointed snapshots when requested.
  std::vector<MetricsCheckpoint> checkpoints;
};

/// Whole-comparison outcome.
struct ComparisonResult {
  std::vector<AlgorithmResult> algorithms;
  /// Δmin/Δmax gaps of the shared environment.
  bandit::GapStatistics gaps;
  /// Theorem-19 bound for the CMAB-HS policy on this instance.
  double theorem19_bound = 0.0;
};

/// Options for RunComparison.
struct ComparisonOptions {
  /// Policies to run. The optimal policy is always run (first) as the
  /// Δ baseline, whether or not listed here.
  std::vector<PolicySpec> policies = {
      {PolicyKind::kCmabHs, 0.0},
      {PolicyKind::kEpsilonFirst, 0.1},
      {PolicyKind::kEpsilonFirst, 0.5},
      {PolicyKind::kRandom, 0.0},
  };
  /// Metric checkpoints (ascending rounds; empty = final only).
  std::vector<std::int64_t> checkpoints;
  /// Keep per-round profit trajectories for Δ metrics. Costs O(N) memory
  /// per run; disable to skip the Δ columns.
  bool compute_deltas = true;
  /// Concurrent policy runs (each policy is an independent, identically
  /// seeded simulation, so the result — including every Δ metric — is
  /// bit-for-bit independent of this value). 1 = serial; <= 0 is clamped
  /// to 1. Note parallel runs hold all policies' trajectories in memory
  /// at once when compute_deltas is set.
  int jobs = 1;
};

/// Runs every policy over an identically seeded environment.
util::Result<ComparisonResult> RunComparison(const MechanismConfig& config,
                                             const ComparisonOptions& options);

}  // namespace core
}  // namespace cdt

#endif  // CDT_CORE_COMPARISON_H_
