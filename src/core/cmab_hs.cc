#include "core/cmab_hs.h"

#include <sstream>

#include "bandit/baseline_policies.h"
#include "bandit/cucb_policy.h"
#include "bandit/extension_policies.h"

namespace cdt {
namespace core {

using util::Result;
using util::Status;

std::string PolicySpec::Name() const {
  switch (kind) {
    case PolicyKind::kCmabHs:
      return "cmab-hs";
    case PolicyKind::kOptimal:
      return "optimal";
    case PolicyKind::kEpsilonFirst: {
      std::ostringstream os;
      os << epsilon << "-first";
      return os.str();
    }
    case PolicyKind::kRandom:
      return "random";
    case PolicyKind::kEpsilonGreedy: {
      std::ostringstream os;
      os << epsilon << "-greedy";
      return os.str();
    }
    case PolicyKind::kThompson:
      return "thompson";
  }
  return "unknown";
}

namespace {

Result<std::unique_ptr<bandit::SelectionPolicy>> MakePolicy(
    const MechanismConfig& config, const PolicySpec& spec,
    const bandit::QualityEnvironment& environment) {
  // Policy RNG stream is derived from, but distinct from, the master seed.
  std::uint64_t policy_seed = config.seed ^ 0x9E3779B97F4A7C15ULL;
  switch (spec.kind) {
    case PolicyKind::kCmabHs: {
      bandit::CucbOptions options;
      options.num_sellers = config.num_sellers;
      options.num_selected = config.num_selected;
      options.exploration = config.exploration;
      options.select_all_first_round = config.select_all_first_round;
      options.reference_selection_path = config.reference_selection_path;
      Result<bandit::CucbPolicy> policy =
          bandit::CucbPolicy::Create(options);
      if (!policy.ok()) return policy.status();
      return std::unique_ptr<bandit::SelectionPolicy>(
          new bandit::CucbPolicy(std::move(policy).value()));
    }
    case PolicyKind::kOptimal: {
      Result<bandit::OraclePolicy> policy = bandit::OraclePolicy::Create(
          environment.effective_qualities(), config.num_selected);
      if (!policy.ok()) return policy.status();
      return std::unique_ptr<bandit::SelectionPolicy>(
          new bandit::OraclePolicy(std::move(policy).value()));
    }
    case PolicyKind::kEpsilonFirst: {
      Result<bandit::EpsilonFirstPolicy> policy =
          bandit::EpsilonFirstPolicy::Create(
              config.num_sellers, config.num_selected, config.num_rounds,
              spec.epsilon, policy_seed);
      if (!policy.ok()) return policy.status();
      return std::unique_ptr<bandit::SelectionPolicy>(
          new bandit::EpsilonFirstPolicy(std::move(policy).value()));
    }
    case PolicyKind::kRandom: {
      Result<bandit::RandomPolicy> policy = bandit::RandomPolicy::Create(
          config.num_sellers, config.num_selected, policy_seed);
      if (!policy.ok()) return policy.status();
      return std::unique_ptr<bandit::SelectionPolicy>(
          new bandit::RandomPolicy(std::move(policy).value()));
    }
    case PolicyKind::kEpsilonGreedy: {
      Result<bandit::EpsilonGreedyPolicy> policy =
          bandit::EpsilonGreedyPolicy::Create(config.num_sellers,
                                              config.num_selected,
                                              spec.epsilon, policy_seed);
      if (!policy.ok()) return policy.status();
      return std::unique_ptr<bandit::SelectionPolicy>(
          new bandit::EpsilonGreedyPolicy(std::move(policy).value()));
    }
    case PolicyKind::kThompson: {
      Result<bandit::ThompsonPolicy> policy = bandit::ThompsonPolicy::Create(
          config.num_sellers, config.num_selected, policy_seed);
      if (!policy.ok()) return policy.status();
      return std::unique_ptr<bandit::SelectionPolicy>(
          new bandit::ThompsonPolicy(std::move(policy).value()));
    }
  }
  return Status::InvalidArgument("unknown policy kind");
}

}  // namespace

Result<std::unique_ptr<CmabHs>> CmabHs::Create(
    const MechanismConfig& config, const PolicySpec& spec,
    std::vector<std::int64_t> checkpoints) {
  CDT_RETURN_NOT_OK(config.Validate());
  Result<bandit::QualityEnvironment> env =
      bandit::QualityEnvironment::Create(config.MakeEnvironmentConfig());
  if (!env.ok()) return env.status();
  auto environment = std::make_unique<bandit::QualityEnvironment>(
      std::move(env).value());

  Result<std::unique_ptr<bandit::SelectionPolicy>> policy =
      MakePolicy(config, spec, *environment);
  if (!policy.ok()) return policy.status();

  market::EngineConfig engine_config = config.MakeEngineConfig();
  engine_config.use_true_qualities_for_game =
      spec.kind == PolicyKind::kOptimal;
  Result<std::unique_ptr<market::TradingEngine>> engine =
      market::TradingEngine::Create(std::move(engine_config),
                                    environment.get(),
                                    std::move(policy).value());
  if (!engine.ok()) return engine.status();

  Result<MetricsCollector> metrics = MetricsCollector::Create(
      environment->effective_qualities(), config.num_selected,
      config.num_pois, std::move(checkpoints));
  if (!metrics.ok()) return metrics.status();

  return std::unique_ptr<CmabHs>(
      new CmabHs(config, spec, std::move(environment),
                 std::move(engine).value(),
                 std::make_unique<MetricsCollector>(
                     std::move(metrics).value())));
}

Result<market::RoundReport> CmabHs::RunRound() {
  Result<market::RoundReport> report = engine_->RunRound();
  if (!report.ok()) return report.status();
  CDT_RETURN_NOT_OK(metrics_->Record(report.value()));
  return report;
}

Status CmabHs::RunAll(
    const std::function<void(const market::RoundReport&)>& callback) {
  while (engine_->current_round() < config_.num_rounds) {
    Result<market::RoundReport> report = RunRound();
    if (!report.ok()) {
      // A configured consumer budget running out is a clean stop.
      if (engine_->budget_exhausted()) return Status::OK();
      return report.status();
    }
    if (callback) callback(report.value());
  }
  return Status::OK();
}

}  // namespace core
}  // namespace cdt
