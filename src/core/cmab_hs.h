// The CMAB-HS mechanism facade — the library's primary public entry point.
//
// Wires together the quality environment, a seller-selection policy and the
// trading engine from one MechanismConfig, and exposes the round loop of
// Algorithm 1 plus streaming metrics.
//
//   core::MechanismConfig config;            // Table II defaults
//   auto run = core::CmabHs::Create(config); // policy = CMAB-HS (CUCB)
//   run.value()->RunAll();
//   std::cout << run.value()->metrics().regret();

#ifndef CDT_CORE_CMAB_HS_H_
#define CDT_CORE_CMAB_HS_H_

#include <functional>
#include <memory>
#include <string>

#include "core/config.h"
#include "core/metrics.h"
#include "market/trading_engine.h"

namespace cdt {
namespace core {

/// Which seller-selection algorithm drives the run.
enum class PolicyKind {
  kCmabHs,         // the paper's extended-UCB policy (Algorithm 1)
  kOptimal,        // oracle: true top-K every round
  kEpsilonFirst,   // explore εN rounds, then exploit
  kRandom,         // uniform K sellers each round
  kEpsilonGreedy,  // extension: per-round ε exploration
  kThompson,       // extension: Gaussian Thompson sampling
};

/// Policy selection plus its parameter (ε where applicable).
struct PolicySpec {
  PolicyKind kind = PolicyKind::kCmabHs;
  double epsilon = 0.1;

  std::string Name() const;
};

/// One end-to-end CDT simulation run.
class CmabHs {
 public:
  /// Builds the environment, policy, engine and metrics for `config`.
  /// `checkpoints` (ascending round numbers) trigger metric snapshots.
  static util::Result<std::unique_ptr<CmabHs>> Create(
      const MechanismConfig& config, const PolicySpec& policy = {},
      std::vector<std::int64_t> checkpoints = {});

  /// Runs one round and feeds the metrics collector.
  util::Result<market::RoundReport> RunRound();

  /// Runs all remaining rounds; `callback` (may be null) sees every report.
  util::Status RunAll(
      const std::function<void(const market::RoundReport&)>& callback =
          nullptr);

  const MechanismConfig& config() const { return config_; }
  const PolicySpec& policy_spec() const { return policy_spec_; }
  const bandit::QualityEnvironment& environment() const {
    return *environment_;
  }
  const market::TradingEngine& engine() const { return *engine_; }
  /// Mutable engine access for the persistence layer (attaching a
  /// RunRecorder observer, restoring a snapshot before the first round).
  market::TradingEngine& mutable_engine() { return *engine_; }
  MetricsCollector& metrics() { return *metrics_; }
  const MetricsCollector& metrics() const { return *metrics_; }

 private:
  CmabHs(MechanismConfig config, PolicySpec spec,
         std::unique_ptr<bandit::QualityEnvironment> environment,
         std::unique_ptr<market::TradingEngine> engine,
         std::unique_ptr<MetricsCollector> metrics)
      : config_(std::move(config)),
        policy_spec_(spec),
        environment_(std::move(environment)),
        engine_(std::move(engine)),
        metrics_(std::move(metrics)) {}

  MechanismConfig config_;
  PolicySpec policy_spec_;
  std::unique_ptr<bandit::QualityEnvironment> environment_;
  std::unique_ptr<market::TradingEngine> engine_;
  std::unique_ptr<MetricsCollector> metrics_;
};

}  // namespace core
}  // namespace cdt

#endif  // CDT_CORE_CMAB_HS_H_
