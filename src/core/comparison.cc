#include "core/comparison.h"

#include <cmath>

namespace cdt {
namespace core {

using util::Result;
using util::Status;

namespace {

AlgorithmResult Summarize(const CmabHs& run) {
  const MetricsCollector& m = run.metrics();
  AlgorithmResult out;
  out.name = run.policy_spec().Name();
  out.expected_revenue = m.expected_revenue();
  out.observed_revenue = m.observed_revenue();
  out.regret = m.regret();
  out.mean_consumer_profit = m.consumer_profit().mean();
  out.mean_platform_profit = m.platform_profit().mean();
  out.mean_seller_profit_total = m.seller_profit_total().mean();
  out.mean_seller_profit_each = m.seller_profit_each().mean();
  out.checkpoints = m.checkpoints();
  return out;
}

double MeanAbsDelta(const std::vector<double>& a,
                    const std::vector<double>& b) {
  std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += std::fabs(a[i] - b[i]);
  return total / static_cast<double>(n);
}

}  // namespace

Result<ComparisonResult> RunComparison(const MechanismConfig& config,
                                       const ComparisonOptions& options) {
  CDT_RETURN_NOT_OK(config.Validate());

  ComparisonResult result;

  // Optimal baseline first (Δ reference).
  PolicySpec optimal_spec{PolicyKind::kOptimal, 0.0};
  Result<std::unique_ptr<CmabHs>> optimal =
      CmabHs::Create(config, optimal_spec, options.checkpoints);
  if (!optimal.ok()) return optimal.status();
  optimal.value()->metrics().set_keep_trajectories(options.compute_deltas);
  CDT_RETURN_NOT_OK(optimal.value()->RunAll());
  result.algorithms.push_back(Summarize(*optimal.value()));

  // Instance-level gap statistics + Theorem 19 bound (need K < M).
  if (config.num_selected < config.num_sellers) {
    Result<bandit::GapStatistics> gaps = bandit::ComputeGaps(
        optimal.value()->environment().effective_qualities(),
        config.num_selected);
    if (!gaps.ok()) return gaps.status();
    result.gaps = gaps.value();
    result.theorem19_bound = bandit::Theorem19RegretBound(
        config.num_sellers, config.num_selected, config.num_rounds,
        config.num_pois, result.gaps);
  }

  const MetricsCollector& base = optimal.value()->metrics();

  for (const PolicySpec& spec : options.policies) {
    if (spec.kind == PolicyKind::kOptimal) continue;  // already run
    Result<std::unique_ptr<CmabHs>> run =
        CmabHs::Create(config, spec, options.checkpoints);
    if (!run.ok()) return run.status();
    run.value()->metrics().set_keep_trajectories(options.compute_deltas);
    CDT_RETURN_NOT_OK(run.value()->RunAll());
    AlgorithmResult algo = Summarize(*run.value());
    if (options.compute_deltas) {
      const MetricsCollector& m = run.value()->metrics();
      algo.delta_consumer =
          MeanAbsDelta(base.consumer_trajectory(), m.consumer_trajectory());
      algo.delta_platform =
          MeanAbsDelta(base.platform_trajectory(), m.platform_trajectory());
      algo.delta_seller =
          MeanAbsDelta(base.seller_trajectory(), m.seller_trajectory());
    }
    result.algorithms.push_back(std::move(algo));
  }
  return result;
}

}  // namespace core
}  // namespace cdt
