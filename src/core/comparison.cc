#include "core/comparison.h"

#include <cmath>
#include <memory>

#include "util/thread_pool.h"

namespace cdt {
namespace core {

using util::Result;
using util::Status;

namespace {

AlgorithmResult Summarize(const CmabHs& run) {
  const MetricsCollector& m = run.metrics();
  AlgorithmResult out;
  out.name = run.policy_spec().Name();
  out.expected_revenue = m.expected_revenue();
  out.observed_revenue = m.observed_revenue();
  out.regret = m.regret();
  out.mean_consumer_profit = m.consumer_profit().mean();
  out.mean_platform_profit = m.platform_profit().mean();
  out.mean_seller_profit_total = m.seller_profit_total().mean();
  out.mean_seller_profit_each = m.seller_profit_each().mean();
  out.checkpoints = m.checkpoints();
  return out;
}

double MeanAbsDelta(const std::vector<double>& a,
                    const std::vector<double>& b) {
  std::size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) total += std::fabs(a[i] - b[i]);
  return total / static_cast<double>(n);
}

}  // namespace

Result<ComparisonResult> RunComparison(const MechanismConfig& config,
                                       const ComparisonOptions& options) {
  CDT_RETURN_NOT_OK(config.Validate());

  // The run list: optimal baseline first (Δ reference), then every
  // non-optimal policy in the requested order.
  std::vector<PolicySpec> specs;
  specs.push_back(PolicySpec{PolicyKind::kOptimal, 0.0});
  for (const PolicySpec& spec : options.policies) {
    if (spec.kind == PolicyKind::kOptimal) continue;  // always run already
    specs.push_back(spec);
  }

  // Every run is an independent, identically seeded simulation, so they
  // can execute concurrently; results land in per-spec slots and all
  // summarizing below walks them in spec order, making the output
  // bit-for-bit independent of the job count.
  std::vector<std::unique_ptr<CmabHs>> runs(specs.size());
  util::ThreadPool pool(options.jobs);
  CDT_RETURN_NOT_OK(pool.ParallelFor(
      0, specs.size(), [&](std::size_t i) -> util::Status {
        Result<std::unique_ptr<CmabHs>> run =
            CmabHs::Create(config, specs[i], options.checkpoints);
        if (!run.ok()) return run.status();
        run.value()->metrics().set_keep_trajectories(options.compute_deltas);
        CDT_RETURN_NOT_OK(run.value()->RunAll());
        runs[i] = std::move(run).value();
        return util::Status::OK();
      }));

  ComparisonResult result;
  const CmabHs& optimal = *runs[0];
  result.algorithms.push_back(Summarize(optimal));

  // Instance-level gap statistics + Theorem 19 bound (need K < M).
  if (config.num_selected < config.num_sellers) {
    Result<bandit::GapStatistics> gaps = bandit::ComputeGaps(
        optimal.environment().effective_qualities(), config.num_selected);
    if (!gaps.ok()) return gaps.status();
    result.gaps = gaps.value();
    result.theorem19_bound = bandit::Theorem19RegretBound(
        config.num_sellers, config.num_selected, config.num_rounds,
        config.num_pois, result.gaps);
  }

  const MetricsCollector& base = optimal.metrics();
  for (std::size_t i = 1; i < runs.size(); ++i) {
    AlgorithmResult algo = Summarize(*runs[i]);
    if (options.compute_deltas) {
      const MetricsCollector& m = runs[i]->metrics();
      algo.delta_consumer =
          MeanAbsDelta(base.consumer_trajectory(), m.consumer_trajectory());
      algo.delta_platform =
          MeanAbsDelta(base.platform_trajectory(), m.platform_trajectory());
      algo.delta_seller =
          MeanAbsDelta(base.seller_trajectory(), m.seller_trajectory());
    }
    result.algorithms.push_back(std::move(algo));
  }
  return result;
}

}  // namespace core
}  // namespace cdt
