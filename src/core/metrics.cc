#include "core/metrics.h"

namespace cdt {
namespace core {

using util::Result;
using util::Status;

double SellerFaultStats::delivery_rate() const {
  const std::int64_t attempts = deliveries + defaults + corruptions;
  if (attempts == 0) return 1.0;
  return static_cast<double>(deliveries) / static_cast<double>(attempts);
}

Result<MetricsCollector> MetricsCollector::Create(
    std::vector<double> qualities, int k, int num_pois,
    std::vector<std::int64_t> checkpoints) {
  for (std::size_t i = 1; i < checkpoints.size(); ++i) {
    if (checkpoints[i] <= checkpoints[i - 1]) {
      return Status::InvalidArgument("checkpoints must be ascending");
    }
  }
  Result<bandit::RegretTracker> tracker =
      bandit::RegretTracker::Create(std::move(qualities), k, num_pois);
  if (!tracker.ok()) return tracker.status();
  return MetricsCollector(std::move(tracker).value(), std::move(checkpoints));
}

SellerFaultStats& MetricsCollector::FaultStats(int seller) {
  if (seller_faults_.size() <= static_cast<std::size_t>(seller)) {
    seller_faults_.resize(static_cast<std::size_t>(seller) + 1);
  }
  return seller_faults_[static_cast<std::size_t>(seller)];
}

Status MetricsCollector::Record(const market::RoundReport& report) {
  // Regret credits only the sellers whose data was actually accepted: a
  // voided round contributes zero revenue and corrupted reports earn
  // nothing, so faults show up as regret instead of phantom revenue.
  const std::vector<int> delivered = market::DeliveredDataSellers(report);
  CDT_RETURN_NOT_OK(tracker_.RecordRound(delivered));
  observed_revenue_extra_ += report.observed_quality_revenue;

  if (report.degraded) ++degraded_rounds_;
  if (report.voided) ++voided_rounds_;
  fault_events_ += static_cast<std::int64_t>(report.faults.size());
  for (const market::FaultEvent& event : report.faults) {
    ++fault_counts_[static_cast<std::size_t>(event.kind)];
    if (event.seller < 0) continue;
    SellerFaultStats& stats = FaultStats(event.seller);
    switch (event.kind) {
      case market::FaultKind::kSellerDefault:
        ++stats.defaults;
        break;
      case market::FaultKind::kCorruptedReport:
        ++stats.corruptions;
        break;
      case market::FaultKind::kPartialDelivery:
        ++stats.partials;
        break;
      case market::FaultKind::kQuarantine:
        ++stats.quarantine_drops;
        break;
      default:
        break;
    }
  }
  for (int seller : delivered) ++FaultStats(seller).deliveries;

  consumer_.Add(report.consumer_profit);
  platform_.Add(report.platform_profit);
  seller_total_.Add(report.seller_profit_total);
  if (!report.selected.empty()) {
    seller_each_.Add(report.seller_profit_total /
                     static_cast<double>(report.selected.size()));
  }
  if (keep_trajectories_) {
    consumer_traj_.push_back(report.consumer_profit);
    platform_traj_.push_back(report.platform_profit);
    seller_traj_.push_back(report.seller_profit_total);
  }
  if (next_checkpoint_ < checkpoint_rounds_.size() &&
      report.round == checkpoint_rounds_[next_checkpoint_]) {
    snapshots_.push_back(Snapshot());
    ++next_checkpoint_;
  }
  return Status::OK();
}

MetricsCheckpoint MetricsCollector::Snapshot() const {
  MetricsCheckpoint cp;
  cp.round = tracker_.rounds();
  cp.expected_revenue = tracker_.cumulative_expected_revenue();
  cp.observed_revenue = observed_revenue_extra_;
  cp.regret = tracker_.regret();
  cp.mean_consumer_profit = consumer_.mean();
  cp.mean_platform_profit = platform_.mean();
  cp.mean_seller_profit_total = seller_total_.mean();
  cp.mean_seller_profit_each = seller_each_.mean();
  return cp;
}

}  // namespace core
}  // namespace cdt
