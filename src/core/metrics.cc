#include "core/metrics.h"

namespace cdt {
namespace core {

using util::Result;
using util::Status;

Result<MetricsCollector> MetricsCollector::Create(
    std::vector<double> qualities, int k, int num_pois,
    std::vector<std::int64_t> checkpoints) {
  for (std::size_t i = 1; i < checkpoints.size(); ++i) {
    if (checkpoints[i] <= checkpoints[i - 1]) {
      return Status::InvalidArgument("checkpoints must be ascending");
    }
  }
  Result<bandit::RegretTracker> tracker =
      bandit::RegretTracker::Create(std::move(qualities), k, num_pois);
  if (!tracker.ok()) return tracker.status();
  return MetricsCollector(std::move(tracker).value(), std::move(checkpoints));
}

Status MetricsCollector::Record(const market::RoundReport& report) {
  CDT_RETURN_NOT_OK(tracker_.RecordRound(report.selected));
  observed_revenue_extra_ += report.observed_quality_revenue;

  consumer_.Add(report.consumer_profit);
  platform_.Add(report.platform_profit);
  seller_total_.Add(report.seller_profit_total);
  if (!report.selected.empty()) {
    seller_each_.Add(report.seller_profit_total /
                     static_cast<double>(report.selected.size()));
  }
  if (keep_trajectories_) {
    consumer_traj_.push_back(report.consumer_profit);
    platform_traj_.push_back(report.platform_profit);
    seller_traj_.push_back(report.seller_profit_total);
  }
  if (next_checkpoint_ < checkpoint_rounds_.size() &&
      report.round == checkpoint_rounds_[next_checkpoint_]) {
    snapshots_.push_back(Snapshot());
    ++next_checkpoint_;
  }
  return Status::OK();
}

MetricsCheckpoint MetricsCollector::Snapshot() const {
  MetricsCheckpoint cp;
  cp.round = tracker_.rounds();
  cp.expected_revenue = tracker_.cumulative_expected_revenue();
  cp.observed_revenue = observed_revenue_extra_;
  cp.regret = tracker_.regret();
  cp.mean_consumer_profit = consumer_.mean();
  cp.mean_platform_profit = platform_.mean();
  cp.mean_seller_profit_total = seller_total_.mean();
  cp.mean_seller_profit_each = seller_each_.mean();
  return cp;
}

}  // namespace core
}  // namespace cdt
