// Streaming per-run metric collection: cumulative revenue & regret plus
// per-party profit summaries, with optional checkpointing at designated
// rounds (used to plot one long run as a series over N).

#ifndef CDT_CORE_METRICS_H_
#define CDT_CORE_METRICS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "bandit/regret.h"
#include "market/types.h"
#include "stats/summary.h"
#include "util/status.h"

namespace cdt {
namespace core {

/// Per-seller delivery/fault tallies aggregated from the round reports'
/// fault events (the engine's ReliabilityTracker holds the live breaker
/// state; this is the offline view a metrics consumer can keep).
struct SellerFaultStats {
  std::int64_t deliveries = 0;
  std::int64_t defaults = 0;
  std::int64_t corruptions = 0;
  std::int64_t partials = 0;
  std::int64_t quarantine_drops = 0;

  /// deliveries / (deliveries + defaults + corruptions); 1 when unseen.
  double delivery_rate() const;
};

/// A snapshot of cumulative metrics after some round.
struct MetricsCheckpoint {
  std::int64_t round = 0;
  double expected_revenue = 0.0;
  double observed_revenue = 0.0;
  double regret = 0.0;
  double mean_consumer_profit = 0.0;   // avg PoC per round so far
  double mean_platform_profit = 0.0;   // avg PoP per round so far
  double mean_seller_profit_total = 0.0;
  double mean_seller_profit_each = 0.0;  // avg PoS per selected seller
};

/// Consumes RoundReports and accumulates revenue/regret/profit statistics.
class MetricsCollector {
 public:
  /// `qualities` are ground-truth expected qualities (for regret), k is the
  /// oracle selection size, num_pois is L. `checkpoints` (ascending rounds,
  /// may be empty) trigger stored snapshots.
  static util::Result<MetricsCollector> Create(
      std::vector<double> qualities, int k, int num_pois,
      std::vector<std::int64_t> checkpoints = {});

  /// Feeds one round.
  util::Status Record(const market::RoundReport& report);

  std::int64_t rounds() const { return tracker_.rounds(); }
  double expected_revenue() const {
    return tracker_.cumulative_expected_revenue();
  }
  double observed_revenue() const { return observed_revenue_extra_; }
  double regret() const { return tracker_.regret(); }

  const stats::RunningSummary& consumer_profit() const { return consumer_; }
  const stats::RunningSummary& platform_profit() const { return platform_; }
  const stats::RunningSummary& seller_profit_total() const {
    return seller_total_;
  }
  const stats::RunningSummary& seller_profit_each() const {
    return seller_each_;
  }

  /// Per-round profit trajectories (kept only when `keep_trajectories` was
  /// enabled; used by the Δ-profit comparison).
  void set_keep_trajectories(bool keep) { keep_trajectories_ = keep; }
  const std::vector<double>& consumer_trajectory() const {
    return consumer_traj_;
  }
  const std::vector<double>& platform_trajectory() const {
    return platform_traj_;
  }
  const std::vector<double>& seller_trajectory() const {
    return seller_traj_;
  }

  const std::vector<MetricsCheckpoint>& checkpoints() const {
    return snapshots_;
  }

  // --- fault / degradation accounting -------------------------------
  std::int64_t degraded_rounds() const { return degraded_rounds_; }
  std::int64_t voided_rounds() const { return voided_rounds_; }
  std::int64_t fault_events() const { return fault_events_; }
  std::int64_t fault_count(market::FaultKind kind) const {
    return fault_counts_[static_cast<std::size_t>(kind)];
  }
  /// Indexed by seller; grows lazily to the largest seller seen.
  const std::vector<SellerFaultStats>& seller_faults() const {
    return seller_faults_;
  }

  /// Builds a checkpoint of the current cumulative state.
  MetricsCheckpoint Snapshot() const;

 private:
  MetricsCollector(bandit::RegretTracker tracker,
                   std::vector<std::int64_t> checkpoints)
      : tracker_(std::move(tracker)),
        checkpoint_rounds_(std::move(checkpoints)) {}

  /// Ensures seller_faults_ covers `seller` and returns its entry.
  SellerFaultStats& FaultStats(int seller);

  bandit::RegretTracker tracker_;
  double observed_revenue_extra_ = 0.0;
  std::int64_t degraded_rounds_ = 0;
  std::int64_t voided_rounds_ = 0;
  std::int64_t fault_events_ = 0;
  std::array<std::int64_t, market::kNumFaultKinds> fault_counts_{};
  std::vector<SellerFaultStats> seller_faults_;
  std::vector<std::int64_t> checkpoint_rounds_;
  std::size_t next_checkpoint_ = 0;
  std::vector<MetricsCheckpoint> snapshots_;

  stats::RunningSummary consumer_;
  stats::RunningSummary platform_;
  stats::RunningSummary seller_total_;
  stats::RunningSummary seller_each_;

  bool keep_trajectories_ = false;
  std::vector<double> consumer_traj_;
  std::vector<double> platform_traj_;
  std::vector<double> seller_traj_;
};

}  // namespace core
}  // namespace cdt

#endif  // CDT_CORE_METRICS_H_
