#include "core/config.h"

#include "stats/rng.h"

namespace cdt {
namespace core {

using util::Status;

Status MechanismConfig::Validate() const {
  if (num_sellers <= 0) {
    return Status::InvalidArgument("num_sellers must be > 0");
  }
  if (num_selected <= 0 || num_selected > num_sellers) {
    return Status::InvalidArgument("need 1 <= K <= M");
  }
  if (num_pois <= 0) return Status::InvalidArgument("num_pois must be > 0");
  if (num_rounds <= 0) {
    return Status::InvalidArgument("num_rounds must be > 0");
  }
  if (observation_stddev <= 0.0) {
    return Status::InvalidArgument("observation_stddev must be > 0");
  }
  if (quality_lo < 0.0 || quality_hi > 1.0 || quality_lo >= quality_hi) {
    return Status::InvalidArgument("quality range must be within [0, 1]");
  }
  if (seller_a_lo <= 0.0 || seller_a_lo > seller_a_hi) {
    return Status::InvalidArgument("invalid seller a range");
  }
  if (seller_b_lo < 0.0 || seller_b_lo > seller_b_hi) {
    return Status::InvalidArgument("invalid seller b range");
  }
  if (theta <= 0.0 || lambda < 0.0) {
    return Status::InvalidArgument("need theta > 0, lambda >= 0");
  }
  if (omega <= 1.0) return Status::InvalidArgument("need omega > 1");
  if (consumer_price_min <= 0.0 ||
      consumer_price_min > consumer_price_max) {
    return Status::InvalidArgument("invalid consumer price bounds");
  }
  if (collection_price_min <= 0.0 ||
      collection_price_min > collection_price_max) {
    return Status::InvalidArgument("invalid collection price bounds");
  }
  if (round_duration <= 0.0 || initial_tau <= 0.0 ||
      initial_tau > round_duration) {
    return Status::InvalidArgument("need 0 < initial_tau <= round_duration");
  }
  if (quality_floor <= 0.0 || quality_floor > 1.0) {
    return Status::InvalidArgument("quality_floor must lie in (0, 1]");
  }
  if (consumer_budget < 0.0) {
    return Status::InvalidArgument("consumer_budget must be >= 0");
  }
  CDT_RETURN_NOT_OK(faults.Validate());
  CDT_RETURN_NOT_OK(recovery.Validate());
  return Status::OK();
}

bandit::EnvironmentConfig MechanismConfig::MakeEnvironmentConfig() const {
  bandit::EnvironmentConfig env;
  env.num_sellers = num_sellers;
  env.num_pois = num_pois;
  env.observation_stddev = observation_stddev;
  env.quality_lo = quality_lo;
  env.quality_hi = quality_hi;
  // Offset keeps the quality stream independent of the cost stream below.
  env.seed = seed;
  return env;
}

std::vector<game::SellerCostParams> MechanismConfig::MakeSellerCosts() const {
  stats::Xoshiro256 rng(seed ^ 0xC057C057C057C057ULL);
  std::vector<game::SellerCostParams> costs(
      static_cast<std::size_t>(num_sellers));
  for (game::SellerCostParams& c : costs) {
    c.a = rng.NextDouble(seller_a_lo, seller_a_hi);
    c.b = rng.NextDouble(seller_b_lo, seller_b_hi);
  }
  return costs;
}

market::EngineConfig MechanismConfig::MakeEngineConfig() const {
  market::EngineConfig engine;
  engine.job.num_pois = num_pois;
  engine.job.num_rounds = num_rounds;
  engine.job.round_duration = round_duration;
  engine.job.description = "crowdsensing data collection";
  engine.num_selected = num_selected;
  engine.seller_costs = MakeSellerCosts();
  engine.platform_cost.theta = theta;
  engine.platform_cost.lambda = lambda;
  engine.valuation.omega = omega;
  engine.consumer_price_bounds = {consumer_price_min, consumer_price_max};
  engine.collection_price_bounds = {collection_price_min,
                                    collection_price_max};
  engine.initial_tau = initial_tau;
  engine.quality_floor = quality_floor;
  engine.track_transfers = track_transfers;
  engine.check_invariants = check_invariants;
  engine.consumer_budget = consumer_budget;
  engine.faults = faults;
  engine.recovery = recovery;
  // Tie the fault stream to the master seed (distinct from the quality and
  // cost streams) unless the profile carries an explicit override.
  if (engine.faults.seed == market::FaultProfile{}.seed) {
    engine.faults.seed = seed ^ 0xFA017FA017FA017FULL;
  }
  return engine;
}

}  // namespace core
}  // namespace cdt
