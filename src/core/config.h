// Top-level mechanism configuration. Defaults reproduce Table II of the
// paper: M=300, K=10, L=10, N=1e5, a_i∈[0.1,0.5], b_i∈[0.1,1], θ=0.1, λ=1,
// ω=1000, qualities uniform in [0,1] with truncated-Gaussian observations.

#ifndef CDT_CORE_CONFIG_H_
#define CDT_CORE_CONFIG_H_

#include <cstdint>
#include <vector>

#include "bandit/environment.h"
#include "game/cost.h"
#include "market/trading_engine.h"
#include "util/status.h"

namespace cdt {
namespace core {

/// Everything needed to instantiate one CDT simulation.
struct MechanismConfig {
  // --- scale (Table II) ---
  int num_sellers = 300;            // M
  int num_selected = 10;            // K
  int num_pois = 10;                // L
  std::int64_t num_rounds = 100000; // N

  // --- quality environment ---
  double observation_stddev = 0.1;
  double quality_lo = 0.0;
  double quality_hi = 1.0;

  // --- economics (Table II) ---
  double seller_a_lo = 0.1, seller_a_hi = 0.5;  // a_i range
  double seller_b_lo = 0.1, seller_b_hi = 1.0;  // b_i range
  double theta = 0.1;                           // θ
  double lambda = 1.0;                          // λ
  double omega = 1000.0;                        // ω
  double consumer_price_min = 0.01, consumer_price_max = 100.0;
  double collection_price_min = 0.01, collection_price_max = 5.0;
  double round_duration = 1000.0;               // T (non-binding by default)
  double initial_tau = 1.0;                     // τ^0 for round-1 exploration

  // --- mechanism knobs ---
  /// UCB exploration constant; <= 0 means the paper's (K+1).
  double exploration = 0.0;
  /// Algorithm 1's round-1 select-all initial exploration.
  bool select_all_first_round = true;
  /// Route CMAB-HS selection through the pre-optimization full-rescan path
  /// (Eq. 19 scan over all M arms + partial_sort) instead of the
  /// incremental lazy top-K selector. Byte-identical economics either way
  /// (pinned by the determinism suite); kept for baseline comparison.
  /// Not persisted: snapshots/replays always resolve the default path.
  bool reference_selection_path = false;
  double quality_floor = 1e-3;
  bool track_transfers = false;
  /// Arm the per-round economic-invariant checker (ledger conservation,
  /// individual rationality, stationarity, bandit sanity). Defaults on so
  /// tests and examples always run under the net; the benchmark harnesses
  /// disable it for Release sweeps.
  bool check_invariants = true;
  /// Budget extension: 0 = unlimited (the paper's setting); > 0 stops the
  /// campaign once the consumer's cumulative reward payments reach it.
  double consumer_budget = 0.0;
  /// Fault injection (all rates zero, the default, disables it entirely;
  /// the injector seed derives from the master seed unless overridden).
  market::FaultProfile faults;
  /// Settlement retry/backoff and quarantine circuit-breaker knobs.
  market::RecoveryOptions recovery;

  /// Master seed; derives the quality, observation and policy streams.
  std::uint64_t seed = 42;

  util::Status Validate() const;

  /// Derived: the bandit environment configuration.
  bandit::EnvironmentConfig MakeEnvironmentConfig() const;

  /// Derived: per-seller cost parameters drawn deterministically from the
  /// master seed (independent of the quality stream).
  std::vector<game::SellerCostParams> MakeSellerCosts() const;

  /// Derived: the trading-engine configuration (seller costs included).
  market::EngineConfig MakeEngineConfig() const;
};

}  // namespace core
}  // namespace cdt

#endif  // CDT_CORE_CONFIG_H_
