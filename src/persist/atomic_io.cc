#include "persist/atomic_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "persist/io_hooks.h"

namespace cdt {
namespace persist {

using util::Result;
using util::Status;

namespace {

AtomicWriteHook* FailureHook() {
  static AtomicWriteHook hook;
  return &hook;
}

Status IoError(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + std::strerror(errno));
}

/// Directory component of `path` ("." when there is none).
std::string DirName(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAll(int fd, std::string_view bytes, const std::string& path) {
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    ssize_t written = ::write(fd, data, left);
    if (written < 0) {
      if (errno == EINTR) continue;
      return IoError("write", path);
    }
    data += written;
    left -= static_cast<std::size_t>(written);
  }
  return Status::OK();
}

}  // namespace

void SetAtomicWriteFailureHookForTest(AtomicWriteHook hook) {
  *FailureHook() = std::move(hook);
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string temp_path = path + ".tmp";
  int fd = ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open", temp_path);

  Status status;
  bool injected = false;
  const IoDecision write_fault = IoHooks::Instance().Check(IoOp::kWrite);
  if (write_fault.error != 0) {
    // Simulated ENOSPC / EIO mid-write; a short write leaves a torn
    // prefix behind, like a real device running out of space.
    if (write_fault.short_write && !bytes.empty()) {
      (void)WriteAll(fd, bytes.substr(0, bytes.size() / 2), temp_path);
    }
    errno = write_fault.error;
    status = IoError("write", temp_path);
    injected = true;
  } else {
    status = WriteAll(fd, bytes, temp_path);
  }
  if (status.ok()) {
    const IoDecision fsync_fault = IoHooks::Instance().Check(IoOp::kFsync);
    if (fsync_fault.error != 0) {
      errno = fsync_fault.error;
      status = IoError("fsync", temp_path);
      injected = true;
    } else if (::fsync(fd) != 0) {
      status = IoError("fsync", temp_path);
    }
  }
  if (::close(fd) != 0 && status.ok()) {
    status = IoError("close", temp_path);
  }
  if (status.ok() && *FailureHook()) {
    status = (*FailureHook())(temp_path);
  }
  if (status.ok()) {
    const IoDecision rename_fault = IoHooks::Instance().Check(IoOp::kRename);
    if (rename_fault.error != 0) {
      errno = rename_fault.error;
      status = IoError("rename", path);
      injected = true;
    }
  }
  if (!status.ok()) {
    // Injected faults model a crash before cleanup runs: leave the temp
    // file behind so the orphan-sweep path has something real to sweep.
    if (!injected) ::unlink(temp_path.c_str());
    return status;
  }

  if (::rename(temp_path.c_str(), path.c_str()) != 0) {
    Status rename_status = IoError("rename", path);
    ::unlink(temp_path.c_str());
    return rename_status;
  }

  // Persist the rename itself: fsync the containing directory.
  int dir_fd = ::open(DirName(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return IoError("open directory of", path);
  Status dir_status;
  if (::fsync(dir_fd) != 0) dir_status = IoError("fsync directory of", path);
  ::close(dir_fd);
  return dir_status;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  const IoDecision read_fault = IoHooks::Instance().Check(IoOp::kRead);
  if (read_fault.error != 0) {
    errno = read_fault.error;
    return IoError("read", path);
  }
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return IoError("open", path);
  }
  std::string bytes;
  char buffer[1 << 16];
  std::size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, read);
  }
  if (std::ferror(file)) {
    std::fclose(file);
    return IoError("read", path);
  }
  std::fclose(file);
  ApplyBitRot(read_fault, &bytes);
  return bytes;
}

}  // namespace persist
}  // namespace cdt
