// Self-healing WAL scrub: CRC-walk event logs and snapshot files,
// repair torn tails by truncating back to the last complete record,
// quarantine irreparable artifacts (rename to *.quarantined) with
// counted reasons, and sweep orphaned AtomicWriteFile temps.
//
// Outcome taxonomy per artifact:
//   kClean       — every record verified (sealed logs: footer too).
//   kRepaired    — a torn tail was truncated away; the surviving prefix
//                  verifies. Repair is idempotent: scrubbing a repaired
//                  file again is a no-op byte-for-byte.
//   kQuarantined — corruption inside a complete record (bit rot), a bad
//                  footer, or unrecognizable structure; the file is
//                  renamed to `<path>.quarantined` so recovery fails
//                  loudly (NotFound) instead of consuming poison.
//   kVersionSkew — a different format version; the file is left intact
//                  (a newer/older build owns it; not bit rot).
//
// Journals are deliberately NOT scrubbed here: runtime::JournalWriter::
// Open already truncates torn journal tails itself on every open, and a
// journal CRC mismatch must fail recovery (the flips cannot be
// reconstructed), which quarantining the whole marketplace handles.

#ifndef CDT_PERSIST_SCRUB_H_
#define CDT_PERSIST_SCRUB_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace cdt {
namespace persist {

enum class ArtifactHealth { kClean, kRepaired, kQuarantined, kVersionSkew };

const char* ArtifactHealthName(ArtifactHealth health);

struct ScrubOutcome {
  std::string path;
  ArtifactHealth health = ArtifactHealth::kClean;
  /// Human-readable reason ("torn tail", "record CRC mismatch", ...).
  std::string detail;
  /// Bytes dropped by a tail repair.
  std::int64_t truncated_bytes = 0;
  /// Event logs only: a verified footer was present.
  bool sealed = false;
};

struct ScrubOptions {
  /// Truncate torn tails in place and (directory scrubs) remove orphaned
  /// *.tmp files. Off = report-only.
  bool repair = true;
  /// Rename irreparable artifacts to *.quarantined. Off = report-only.
  bool quarantine = true;
};

/// Scrubs one event log / snapshot file. NotFound if missing; IoError
/// only when the filesystem itself fails (verdicts, including
/// quarantine, are reported in the outcome, not as errors).
util::Result<ScrubOutcome> ScrubEventLogFile(const std::string& path,
                                             const ScrubOptions& options);
util::Result<ScrubOutcome> ScrubSnapshotFile(const std::string& path,
                                             const ScrubOptions& options);

struct ScrubReport {
  std::vector<ScrubOutcome> files;
  int clean = 0;
  int repaired = 0;
  int quarantined = 0;
  int version_skew = 0;
  int orphan_temps_found = 0;
  int orphan_temps_removed = 0;  // <= found; 0 when repair is off
  /// Quarantine reason -> count (for metrics / operator triage).
  std::map<std::string, int> quarantine_reasons;
};

/// Scrubs every *.cdtlog and *.cdtsnap directly under `dir` (sorted
/// order, deterministic) and, when `options.repair` is set, removes
/// orphaned *.tmp files (report-only runs just count them). Skips
/// *.quarantined and *.old artifacts.
util::Result<ScrubReport> ScrubWalDirectory(const std::string& dir,
                                            const ScrubOptions& options);

/// Removes AtomicWriteFile orphans (*.tmp) directly under `dir`. Only
/// safe when no writer is live in the directory (service startup,
/// cdt_fsck). Returns the number removed.
util::Result<int> SweepOrphanTempFiles(const std::string& dir);

}  // namespace persist
}  // namespace cdt

#endif  // CDT_PERSIST_SCRUB_H_
