// Replay side of record/replay: load a recorded event log, rebuild the
// run from its embedded config (every stream in the simulator derives
// from seeds, so the rebuild is exact), and byte-compare each re-executed
// round's canonical RoundReport encoding against the recorded payload.
// Any divergence — an economics change, a reordered draw, a numeric
// drift — fails loudly with the first divergent round. This is the
// replay-verified upgrade gate: tests/data/ carries a golden recorded
// trace that every build must replay bit-for-bit.
//
// Also hosts snapshot resume: restore an engine from a snapshot file and
// tail-replay the recorded rounds past it, verifying each, leaving a live
// run positioned exactly where the recording stopped.

#ifndef CDT_PERSIST_REPLAY_H_
#define CDT_PERSIST_REPLAY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cmab_hs.h"
#include "persist/event_log.h"
#include "util/status.h"

namespace cdt {
namespace persist {

/// A fully parsed event log.
struct RecordedRun {
  core::MechanismConfig config;
  core::PolicySpec policy;
  /// CRC-32 of the config payload; pairs the log with snapshot files.
  std::uint32_t config_crc = 0;
  /// Rounds [1, base_round] were compacted away (they live only in the
  /// paired snapshot); the first record in `rounds` is round
  /// base_round + 1. Zero for ordinary (non-rebased) logs.
  std::int64_t base_round = 0;
  /// Decoded round reports, in order (round base_round + i at index i-1).
  std::vector<market::RoundReport> rounds;
  /// The raw canonical payload bytes of each round (replay compares
  /// against these, not the re-encoded decode — no codec round trip in
  /// the trust chain).
  std::vector<std::string> round_payloads;
  /// Rounds after which a snapshot was durably written, in order.
  std::vector<std::int64_t> snapshot_rounds;
  /// True when the log ended with a verified footer (clean finish).
  bool sealed = false;
  /// True when a truncated final record was absorbed (crash case).
  bool torn_tail = false;
};

/// Loads and fully validates a recorded log. With `allow_torn_tail` the
/// crash case (truncated final record, missing footer) loads what is
/// complete; without it any truncation or missing footer is an error.
/// CRC mismatches and version skew always fail either way.
util::Result<RecordedRun> LoadRecordedRun(const std::string& path,
                                          bool allow_torn_tail = false);

/// The canonical byte encoding replay compares — exposed so recorder,
/// replayer and tests share one definition.
std::string CanonicalRoundBytes(const market::RoundReport& report);

/// Outcome of a successful verification.
struct ReplayResult {
  std::int64_t rounds_verified = 0;
};

/// Rebuilds the run from `recorded.config`/`policy`, re-executes every
/// recorded round and byte-compares. Returns the first divergence (round
/// number and differing field context in the message) as an Internal
/// error; OK means the build reproduces the recording bit-for-bit.
/// Rebased logs (base_round > 0) cannot be replayed from round 1 —
/// resume from their snapshot instead (FailedPrecondition).
util::Result<ReplayResult> VerifyReplay(const RecordedRun& recorded);

/// A run resumed from snapshot + tail-replay: `run` is live and
/// positioned after round `resumed_round` (== recorded.rounds.size()),
/// ready for RunRound to continue the campaign. Note the run's
/// MetricsCollector only covers post-snapshot rounds; campaign-level CSV
/// output should splice recorded rounds with live ones (see
/// tools/cdt_replay and the recovery test).
struct ResumedRun {
  std::unique_ptr<core::CmabHs> run;
  /// The round the snapshot covered through.
  std::int64_t snapshot_round = 0;
  /// Rounds consumed after tail-replay (snapshot + verified tail).
  std::int64_t resumed_round = 0;
};

/// Restores from `snapshot` (which must pair with `recorded` — config
/// CRCs are compared) and tail-replays recorded rounds
/// (snapshot_round, end], verifying each byte-for-byte.
util::Result<ResumedRun> ResumeFromSnapshot(const RecordedRun& recorded,
                                            const SnapshotFile& snapshot);

}  // namespace persist
}  // namespace cdt

#endif  // CDT_PERSIST_REPLAY_H_
