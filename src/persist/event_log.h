// The versioned, CRC-guarded binary event log behind record/replay.
//
// File layout:
//
//   [8-byte magic "CDTEVLOG"] [varint format version]
//   record*                    — each: [type byte] [varint payload length]
//                                      [payload] [fixed32 CRC-32 of
//                                       type byte + payload]
//
// Record types: kConfig (exactly one, first — the MechanismConfig +
// PolicySpec that rebuilt the run), kRound (one canonical RoundReport per
// settled round, in order), kSnapshotNote (marks that a snapshot file was
// durably written after the named round), kFooter (round count + a rolling
// CRC chained over every round payload — present only in cleanly finished
// logs), kRebase (immediately after kConfig: this log starts at
// base_round instead of 0 — rounds [1, base_round] live only in the
// paired snapshot; written by snapshot-compaction and degraded-mode
// re-arm).
//
// Readers fail closed on an unknown format version (kVersionMismatch),
// on CRC mismatch or an unknown record type in a complete record
// (kCorruption — bit rot), and on structural damage (kParseError). A torn
// tail (truncated final record — the crash case) is tolerated only when
// Options::allow_torn_tail is set, and is reported via torn_tail();
// verification paths read with allow_torn_tail off.

#ifndef CDT_PERSIST_EVENT_LOG_H_
#define CDT_PERSIST_EVENT_LOG_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "core/cmab_hs.h"
#include "core/config.h"
#include "market/snapshot.h"
#include "market/types.h"
#include "util/status.h"

namespace cdt {
namespace persist {

/// Current event-log / snapshot-file format version. Bump on ANY layout
/// change — readers reject other versions outright (the fail-closed gate).
inline constexpr std::uint64_t kFormatVersion = 1;

/// File magics (8 bytes each).
inline constexpr char kLogMagic[9] = "CDTEVLOG";
inline constexpr char kSnapshotMagic[9] = "CDTSNAPS";

/// Record type tags.
enum class RecordType : std::uint8_t {
  kConfig = 0x01,
  kRound = 0x02,
  kSnapshotNote = 0x03,
  kFooter = 0x04,
  kRebase = 0x05,
};

/// One framed record as returned by EventLogReader: the payload view
/// borrows the reader's buffer and is valid for the reader's lifetime.
struct LogRecord {
  RecordType type = RecordType::kConfig;
  std::string_view payload;
};

/// Streaming writer. Records are flushed to the OS per append; Finish()
/// writes the footer and fsyncs, making the finished log durable. A log
/// abandoned without Finish() (crash) is still readable up to its last
/// complete record with allow_torn_tail.
class EventLogWriter {
 public:
  /// Creates/truncates `path` and writes the header + config record.
  static util::Result<std::unique_ptr<EventLogWriter>> Open(
      const std::string& path, const core::MechanismConfig& config,
      const core::PolicySpec& policy);

  /// Reopens an existing unfinished log to continue appending — the
  /// crash-recovery path. Validates every complete record, truncates a
  /// torn final record, and restores the writer's round count, config CRC
  /// and rolling CRC so appended rounds continue gap-free and the eventual
  /// footer covers the whole log. Refuses sealed logs (footer present) and
  /// fails closed on CRC mismatch or version skew in the surviving prefix.
  static util::Result<std::unique_ptr<EventLogWriter>> OpenForAppend(
      const std::string& path);

  /// Starts a log whose first round will be `base_round + 1` — the
  /// compaction / degraded-mode re-arm path. Rounds [1, base_round] must
  /// be covered by a snapshot written BEFORE this call. The new log is
  /// built in a temp file and atomically renamed over `path`, so a crash
  /// mid-rebase leaves the previous log intact; the returned writer keeps
  /// appending to the renamed file. With `base_round == 0` this is
  /// Open() with an atomic swap.
  static util::Result<std::unique_ptr<EventLogWriter>> OpenRebased(
      const std::string& path, const core::MechanismConfig& config,
      const core::PolicySpec& policy, std::int64_t base_round);

  ~EventLogWriter();
  EventLogWriter(const EventLogWriter&) = delete;
  EventLogWriter& operator=(const EventLogWriter&) = delete;

  /// Appends one round record; rounds must arrive in order, gap-free.
  util::Status AppendRound(const market::RoundReport& report);

  /// Notes that a snapshot covering rounds [1, round] was durably written.
  util::Status AppendSnapshotNote(std::int64_t round);

  /// Writes the footer, flushes and fsyncs, closes the file. Idempotent;
  /// further appends fail. Errors are sticky — once any write fails the
  /// writer refuses everything after, returning the first error.
  util::Status Finish();

  std::int64_t rounds_written() const { return rounds_written_; }
  /// CRC-32 of the config record's payload — ties snapshot files to the
  /// exact recorded configuration.
  std::uint32_t config_crc() const { return config_crc_; }
  const std::string& path() const { return path_; }

 private:
  EventLogWriter(std::string path, std::FILE* file);

  util::Status AppendRecord(RecordType type, std::string_view payload);

  std::string path_;
  std::FILE* file_;  // null once closed
  util::Status status_;
  std::string scratch_;
  std::int64_t rounds_written_ = 0;
  std::uint32_t config_crc_ = 0;
  /// CRC chained over every round payload, committed in the footer.
  std::uint32_t rolling_crc_ = 0;
};

/// Reads a whole log into memory and iterates its records.
class EventLogReader {
 public:
  struct Options {
    /// Tolerate a truncated final record (the crash-recovery case). CRC
    /// mismatches on complete records always fail regardless.
    bool allow_torn_tail = false;
  };

  /// Opens and validates magic + format version (unknown versions fail).
  static util::Result<std::unique_ptr<EventLogReader>> Open(
      const std::string& path, const Options& options);
  static util::Result<std::unique_ptr<EventLogReader>> Open(
      const std::string& path) {
    return Open(path, Options());
  }

  /// Returns the next record, or NotFound when the log is exhausted (a
  /// clean end). ParseError on any malformed or CRC-failed record.
  util::Status Next(LogRecord* record);

  /// True once Next() hit a truncated final record that allow_torn_tail
  /// absorbed (only ever set after Next returned NotFound).
  bool torn_tail() const { return torn_tail_; }
  std::uint64_t version() const { return version_; }

 private:
  EventLogReader(std::string buffer, std::size_t pos, std::uint64_t version,
                 Options options)
      : buffer_(std::move(buffer)),
        pos_(pos),
        version_(version),
        options_(options) {}

  std::string buffer_;
  std::size_t pos_;
  std::uint64_t version_;
  Options options_;
  bool torn_tail_ = false;
  bool done_ = false;
};

// --- typed payload helpers ---------------------------------------------

/// Encodes / decodes the kConfig payload (MechanismConfig + PolicySpec).
void EncodeConfigPayload(const core::MechanismConfig& config,
                         const core::PolicySpec& policy, std::string* out);
util::Status DecodeConfigPayload(std::string_view payload,
                                 core::MechanismConfig* config,
                                 core::PolicySpec* policy);

/// Footer payload: round count + rolling CRC over all round payloads.
struct FooterInfo {
  std::int64_t round_count = 0;
  std::uint32_t rolling_crc = 0;
};
void EncodeFooterPayload(const FooterInfo& footer, std::string* out);
util::Status DecodeFooterPayload(std::string_view payload,
                                 FooterInfo* footer);

/// Snapshot-note payload: the round the snapshot covers through.
util::Status DecodeSnapshotNotePayload(std::string_view payload,
                                       std::int64_t* round);

/// Rebase payload: the round this log's numbering starts after (the
/// first kRound record in a rebased log carries round base_round + 1).
util::Status DecodeRebasePayload(std::string_view payload,
                                 std::int64_t* base_round);

// --- snapshot files -----------------------------------------------------

/// A parsed snapshot file: the engine state plus the config CRC of the
/// event log it belongs to (restores refuse a mismatched pairing).
struct SnapshotFile {
  std::uint32_t config_crc = 0;
  market::EngineSnapshot snapshot;
};

/// Atomically writes a snapshot file (temp + fsync + rename; see
/// atomic_io.h) so a crash mid-write never corrupts the previous snapshot.
util::Status WriteSnapshotFile(const std::string& path,
                               std::uint32_t config_crc,
                               const market::EngineSnapshot& snapshot);

/// Reads and validates a snapshot file (magic, version, CRC).
util::Result<SnapshotFile> ReadSnapshotFile(const std::string& path);

}  // namespace persist
}  // namespace cdt

#endif  // CDT_PERSIST_EVENT_LOG_H_
