#include "persist/event_log.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "persist/atomic_io.h"
#include "persist/codec.h"
#include "persist/io_hooks.h"
#include "persist/serialize.h"

namespace cdt {
namespace persist {

using util::Result;
using util::Status;

namespace {

constexpr std::size_t kMagicSize = 8;

/// Upper bound on a single record payload (64 MiB) — rejects absurd
/// lengths from corrupt input before any allocation or long skip.
constexpr std::uint64_t kMaxPayloadSize = 64ull << 20;

Status WriteError(const std::string& path) {
  return Status::IoError("event log write to '" + path +
                         "' failed: " + std::strerror(errno));
}

bool KnownRecordType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(RecordType::kConfig) &&
         type <= static_cast<std::uint8_t>(RecordType::kRebase);
}

}  // namespace

// --- EventLogWriter -----------------------------------------------------

EventLogWriter::EventLogWriter(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

EventLogWriter::~EventLogWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<EventLogWriter>> EventLogWriter::Open(
    const std::string& path, const core::MechanismConfig& config,
    const core::PolicySpec& policy) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create event log '" + path +
                           "': " + std::strerror(errno));
  }
  std::unique_ptr<EventLogWriter> writer(
      new EventLogWriter(path, file));

  std::string header(kLogMagic, kMagicSize);
  PutVarint64(&header, kFormatVersion);
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
    return WriteError(path);
  }

  std::string payload;
  EncodeConfigPayload(config, policy, &payload);
  writer->config_crc_ = Crc32(payload);
  CDT_RETURN_NOT_OK(writer->AppendRecord(RecordType::kConfig, payload));
  return writer;
}

Result<std::unique_ptr<EventLogWriter>> EventLogWriter::OpenForAppend(
    const std::string& path) {
  auto bytes = ReadFileBytes(path);
  CDT_RETURN_NOT_OK(bytes.status());
  const std::string& buffer = bytes.value();

  if (buffer.size() < kMagicSize ||
      std::memcmp(buffer.data(), kLogMagic, kMagicSize) != 0) {
    return Status::ParseError("'" + path + "' is not a CDT event log");
  }
  ByteReader header(std::string_view(buffer).substr(kMagicSize));
  std::uint64_t version;
  CDT_RETURN_NOT_OK(header.ReadVarint64(&version));
  if (version != kFormatVersion) {
    return Status::VersionMismatch(
        "event log '" + path + "' has format version " +
        std::to_string(version) + "; this build appends only version " +
        std::to_string(kFormatVersion));
  }

  // Walk every record, remembering where the last complete valid one
  // ends. A truncated final record (the crash tear) is dropped by
  // truncating the file back to valid_end; corruption in a *complete*
  // record fails closed instead — appending after it would bless it.
  std::size_t valid_end = kMagicSize + header.position();
  std::size_t pos = valid_end;
  bool saw_config = false;
  bool saw_rebase = false;
  std::int64_t base_round = 0;
  std::int64_t rounds = 0;
  std::uint32_t config_crc = 0;
  std::uint32_t rolling_crc = 0;
  while (pos < buffer.size()) {
    ByteReader reader(std::string_view(buffer).substr(pos));
    std::uint8_t type;
    std::uint64_t length = 0;
    std::string_view payload;
    std::uint32_t stored_crc = 0;
    Status status = reader.ReadByte(&type);
    if (status.ok() && !KnownRecordType(type)) {
      return Status::Corruption("unknown event-log record type byte " +
                                std::to_string(int{type}));
    }
    if (status.ok()) status = reader.ReadVarint64(&length);
    if (status.ok() && length > kMaxPayloadSize) {
      return Status::Corruption("event-log record payload length " +
                                std::to_string(length) + " exceeds limit");
    }
    if (status.ok()) {
      status = reader.ReadBytes(static_cast<std::size_t>(length), &payload);
    }
    if (status.ok()) status = reader.ReadFixed32(&stored_crc);
    if (!status.ok()) break;  // torn tail — truncate back to valid_end
    std::uint32_t crc = Crc32(std::string_view(buffer).substr(pos, 1));
    crc = Crc32(payload, crc);
    if (crc != stored_crc) {
      return Status::Corruption(
          "event-log record CRC mismatch at offset " + std::to_string(pos) +
          "; refusing to append after corruption");
    }
    switch (static_cast<RecordType>(type)) {
      case RecordType::kConfig:
        if (saw_config) {
          return Status::ParseError("duplicate config record in '" + path +
                                    "'");
        }
        saw_config = true;
        config_crc = Crc32(payload);
        break;
      case RecordType::kRound:
        rolling_crc = Crc32(payload, rolling_crc);
        ++rounds;
        break;
      case RecordType::kSnapshotNote:
        break;
      case RecordType::kRebase: {
        if (!saw_config || saw_rebase || rounds != 0) {
          return Status::ParseError(
              "rebase record out of position in '" + path + "'");
        }
        CDT_RETURN_NOT_OK(DecodeRebasePayload(payload, &base_round));
        saw_rebase = true;
        rounds = base_round;
        break;
      }
      case RecordType::kFooter:
        return Status::FailedPrecondition(
            "event log '" + path + "' is sealed (footer present); "
            "cannot append to a finished log");
    }
    pos += reader.position();
    valid_end = pos;
  }
  if (!saw_config) {
    return Status::ParseError("event log '" + path +
                              "' has no complete config record");
  }

  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return Status::IoError("cannot reopen event log '" + path +
                           "': " + std::strerror(errno));
  }
  std::unique_ptr<EventLogWriter> writer(new EventLogWriter(path, file));
  if (::ftruncate(fileno(file), static_cast<off_t>(valid_end)) != 0 ||
      std::fseek(file, static_cast<long>(valid_end), SEEK_SET) != 0) {
    return WriteError(path);
  }
  writer->rounds_written_ = rounds;
  writer->config_crc_ = config_crc;
  writer->rolling_crc_ = rolling_crc;
  return writer;
}

Result<std::unique_ptr<EventLogWriter>> EventLogWriter::OpenRebased(
    const std::string& path, const core::MechanismConfig& config,
    const core::PolicySpec& policy, std::int64_t base_round) {
  if (base_round < 0) {
    return Status::InvalidArgument("rebase round must be >= 0, got " +
                                   std::to_string(base_round));
  }
  // Build the new log in a temp file and atomically swap it over `path`:
  // a crash mid-rebase leaves the previous log (and the fresh snapshot
  // written before this call) intact, so recovery still has a consistent
  // pair. The FILE* stays valid across the rename, so the returned
  // writer appends to the already-renamed file.
  const std::string temp_path = path + ".tmp";
  std::FILE* file = std::fopen(temp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create event log '" + temp_path +
                           "': " + std::strerror(errno));
  }
  std::unique_ptr<EventLogWriter> writer(new EventLogWriter(path, file));

  Status status;
  std::string header(kLogMagic, kMagicSize);
  PutVarint64(&header, kFormatVersion);
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size()) {
    status = WriteError(temp_path);
  }
  if (status.ok()) {
    std::string payload;
    EncodeConfigPayload(config, policy, &payload);
    writer->config_crc_ = Crc32(payload);
    status = writer->AppendRecord(RecordType::kConfig, payload);
  }
  if (status.ok() && base_round > 0) {
    std::string payload;
    PutZigzag64(&payload, base_round);
    status = writer->AppendRecord(RecordType::kRebase, payload);
  }
  bool injected = false;
  if (status.ok()) {
    const IoDecision fsync_fault = IoHooks::Instance().Check(IoOp::kFsync);
    if (fsync_fault.error != 0) {
      errno = fsync_fault.error;
      status = WriteError(temp_path);
      injected = true;
    } else if (std::fflush(file) != 0 || ::fsync(fileno(file)) != 0) {
      status = WriteError(temp_path);
    }
  }
  if (status.ok()) {
    const IoDecision rename_fault = IoHooks::Instance().Check(IoOp::kRename);
    if (rename_fault.error != 0) {
      errno = rename_fault.error;
      status = WriteError(path);
      injected = true;
    } else if (::rename(temp_path.c_str(), path.c_str()) != 0) {
      status = WriteError(path);
    }
  }
  if (!status.ok()) {
    writer.reset();  // closes the FILE*
    // Injected faults model a crash before cleanup — leave the temp for
    // the orphan sweep; real failures clean up immediately.
    if (!injected) ::unlink(temp_path.c_str());
    return status;
  }
  writer->rounds_written_ = base_round;
  return writer;
}

Status EventLogWriter::AppendRecord(RecordType type,
                                    std::string_view payload) {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) {
    return Status::FailedPrecondition("event log already finished");
  }
  scratch_.clear();
  PutByte(&scratch_, static_cast<std::uint8_t>(type));
  PutVarint64(&scratch_, payload.size());
  scratch_.append(payload.data(), payload.size());
  // CRC covers type byte + payload (not the length, which framing guards).
  std::uint32_t crc = Crc32(std::string_view(&scratch_[0], 1));
  crc = Crc32(payload, crc);
  PutFixed32(&scratch_, crc);
  const IoDecision write_fault = IoHooks::Instance().Check(IoOp::kWrite);
  if (write_fault.error != 0) {
    // Simulated device failure: a short write leaves a torn frame (the
    // tail-repair case); either way the writer goes sticky-failed.
    if (write_fault.short_write && scratch_.size() > 1) {
      (void)std::fwrite(scratch_.data(), 1, scratch_.size() / 2, file_);
      (void)std::fflush(file_);
    }
    errno = write_fault.error;
    status_ = WriteError(path_);
    return status_;
  }
  if (std::fwrite(scratch_.data(), 1, scratch_.size(), file_) !=
          scratch_.size() ||
      std::fflush(file_) != 0) {
    status_ = WriteError(path_);
    return status_;
  }
  return Status::OK();
}

Status EventLogWriter::AppendRound(const market::RoundReport& report) {
  if (!status_.ok()) return status_;
  if (report.round != rounds_written_ + 1) {
    return Status::InvalidArgument(
        "event log rounds must be gap-free: expected round " +
        std::to_string(rounds_written_ + 1) + ", got " +
        std::to_string(report.round));
  }
  std::string payload;
  EncodeRoundReport(report, &payload);
  CDT_RETURN_NOT_OK(AppendRecord(RecordType::kRound, payload));
  rolling_crc_ = Crc32(payload, rolling_crc_);
  ++rounds_written_;
  return Status::OK();
}

Status EventLogWriter::AppendSnapshotNote(std::int64_t round) {
  std::string payload;
  PutZigzag64(&payload, round);
  return AppendRecord(RecordType::kSnapshotNote, payload);
}

Status EventLogWriter::Finish() {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) return Status::OK();
  std::string payload;
  EncodeFooterPayload({rounds_written_, rolling_crc_}, &payload);
  CDT_RETURN_NOT_OK(AppendRecord(RecordType::kFooter, payload));
  Status status;
  const IoDecision fsync_fault = IoHooks::Instance().Check(IoOp::kFsync);
  if (fsync_fault.error != 0) {
    errno = fsync_fault.error;
    status = WriteError(path_);
  } else if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    status = WriteError(path_);
  }
  if (std::fclose(file_) != 0 && status.ok()) {
    status = WriteError(path_);
  }
  file_ = nullptr;
  status_ = status.ok() ? Status::OK()
                        : Status::IoError("event log finish failed: " +
                                          status.message());
  return status_;
}

// --- EventLogReader -----------------------------------------------------

Result<std::unique_ptr<EventLogReader>> EventLogReader::Open(
    const std::string& path, const Options& options) {
  auto bytes = ReadFileBytes(path);
  CDT_RETURN_NOT_OK(bytes.status());
  std::string buffer = std::move(bytes).value();

  if (buffer.size() < kMagicSize ||
      std::memcmp(buffer.data(), kLogMagic, kMagicSize) != 0) {
    return Status::ParseError("'" + path + "' is not a CDT event log");
  }
  ByteReader header(
      std::string_view(buffer).substr(kMagicSize));
  std::uint64_t version;
  CDT_RETURN_NOT_OK(header.ReadVarint64(&version));
  if (version != kFormatVersion) {
    // Fail closed: this build only understands its own format version.
    // Distinct from kCorruption so operators can tell a build mismatch
    // from bit rot.
    return Status::VersionMismatch(
        "event log '" + path + "' has format version " +
        std::to_string(version) + "; this build reads only version " +
        std::to_string(kFormatVersion));
  }
  std::size_t pos = kMagicSize + header.position();
  return std::unique_ptr<EventLogReader>(
      new EventLogReader(std::move(buffer), pos, version, options));
}

Status EventLogReader::Next(LogRecord* record) {
  if (done_) return Status::NotFound("event log exhausted");
  if (pos_ >= buffer_.size()) {
    done_ = true;
    return Status::NotFound("event log exhausted");
  }

  ByteReader reader(std::string_view(buffer_).substr(pos_));
  std::uint8_t type;
  std::uint64_t length = 0;
  std::string_view payload;
  std::uint32_t stored_crc = 0;
  Status status = reader.ReadByte(&type);
  bool known_type = status.ok() && KnownRecordType(type);
  if (status.ok() && !known_type) {
    return Status::Corruption("unknown event-log record type byte " +
                              std::to_string(int{type}));
  }
  if (status.ok()) status = reader.ReadVarint64(&length);
  if (status.ok() && length > kMaxPayloadSize) {
    return Status::Corruption("event-log record payload length " +
                              std::to_string(length) + " exceeds limit");
  }
  if (status.ok()) {
    status = reader.ReadBytes(static_cast<std::size_t>(length), &payload);
  }
  if (status.ok()) status = reader.ReadFixed32(&stored_crc);
  if (!status.ok()) {
    // Ran off the end of the buffer: a torn tail if tolerated, else a
    // hard parse error. (A complete-but-corrupt record is caught by CRC.)
    if (options_.allow_torn_tail) {
      torn_tail_ = true;
      done_ = true;
      return Status::NotFound("event log exhausted (torn tail)");
    }
    return Status::ParseError("event log truncated mid-record: " +
                              status.message());
  }

  std::uint32_t crc = Crc32(std::string_view(buffer_).substr(pos_, 1));
  crc = Crc32(payload, crc);
  if (crc != stored_crc) {
    return Status::Corruption("event-log record CRC mismatch at offset " +
                              std::to_string(pos_));
  }
  pos_ += reader.position();
  record->type = static_cast<RecordType>(type);
  record->payload = payload;
  return Status::OK();
}

// --- typed payload helpers ---------------------------------------------

void EncodeConfigPayload(const core::MechanismConfig& config,
                         const core::PolicySpec& policy, std::string* out) {
  EncodeMechanismConfig(config, out);
  EncodePolicySpec(policy, out);
}

Status DecodeConfigPayload(std::string_view payload,
                           core::MechanismConfig* config,
                           core::PolicySpec* policy) {
  ByteReader reader(payload);
  CDT_RETURN_NOT_OK(DecodeMechanismConfig(&reader, config));
  CDT_RETURN_NOT_OK(DecodePolicySpec(&reader, policy));
  if (!reader.empty()) {
    return Status::ParseError("trailing bytes after config payload");
  }
  return Status::OK();
}

void EncodeFooterPayload(const FooterInfo& footer, std::string* out) {
  PutZigzag64(out, footer.round_count);
  PutFixed32(out, footer.rolling_crc);
}

Status DecodeFooterPayload(std::string_view payload, FooterInfo* footer) {
  ByteReader reader(payload);
  CDT_RETURN_NOT_OK(reader.ReadZigzag64(&footer->round_count));
  CDT_RETURN_NOT_OK(reader.ReadFixed32(&footer->rolling_crc));
  if (!reader.empty()) {
    return Status::ParseError("trailing bytes after footer payload");
  }
  return Status::OK();
}

Status DecodeSnapshotNotePayload(std::string_view payload,
                                 std::int64_t* round) {
  ByteReader reader(payload);
  CDT_RETURN_NOT_OK(reader.ReadZigzag64(round));
  if (!reader.empty()) {
    return Status::ParseError("trailing bytes after snapshot note");
  }
  return Status::OK();
}

Status DecodeRebasePayload(std::string_view payload,
                           std::int64_t* base_round) {
  ByteReader reader(payload);
  CDT_RETURN_NOT_OK(reader.ReadZigzag64(base_round));
  if (!reader.empty()) {
    return Status::ParseError("trailing bytes after rebase record");
  }
  if (*base_round < 0) {
    return Status::ParseError("negative rebase round " +
                              std::to_string(*base_round));
  }
  return Status::OK();
}

// --- snapshot files -----------------------------------------------------

Status WriteSnapshotFile(const std::string& path, std::uint32_t config_crc,
                         const market::EngineSnapshot& snapshot) {
  std::string payload;
  PutFixed32(&payload, config_crc);
  EncodeEngineSnapshot(snapshot, &payload);

  std::string bytes(kSnapshotMagic, kMagicSize);
  PutVarint64(&bytes, kFormatVersion);
  PutVarint64(&bytes, payload.size());
  bytes.append(payload);
  PutFixed32(&bytes, Crc32(payload));
  return AtomicWriteFile(path, bytes);
}

Result<SnapshotFile> ReadSnapshotFile(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  CDT_RETURN_NOT_OK(bytes.status());
  const std::string& buffer = bytes.value();

  if (buffer.size() < kMagicSize ||
      std::memcmp(buffer.data(), kSnapshotMagic, kMagicSize) != 0) {
    return Status::ParseError("'" + path + "' is not a CDT snapshot file");
  }
  ByteReader reader(std::string_view(buffer).substr(kMagicSize));
  std::uint64_t version;
  CDT_RETURN_NOT_OK(reader.ReadVarint64(&version));
  if (version != kFormatVersion) {
    return Status::VersionMismatch(
        "snapshot file '" + path + "' has format version " +
        std::to_string(version) + "; this build reads only version " +
        std::to_string(kFormatVersion));
  }
  std::uint64_t length;
  CDT_RETURN_NOT_OK(reader.ReadVarint64(&length));
  if (length > kMaxPayloadSize || length > reader.remaining()) {
    return Status::ParseError("snapshot payload length corrupt");
  }
  std::string_view payload;
  CDT_RETURN_NOT_OK(reader.ReadBytes(static_cast<std::size_t>(length),
                                     &payload));
  std::uint32_t stored_crc;
  CDT_RETURN_NOT_OK(reader.ReadFixed32(&stored_crc));
  if (!reader.empty()) {
    return Status::ParseError("trailing bytes after snapshot record");
  }
  if (Crc32(payload) != stored_crc) {
    return Status::Corruption("snapshot file '" + path + "' CRC mismatch");
  }

  SnapshotFile result;
  ByteReader body(payload);
  CDT_RETURN_NOT_OK(body.ReadFixed32(&result.config_crc));
  CDT_RETURN_NOT_OK(DecodeEngineSnapshot(&body, &result.snapshot));
  if (!body.empty()) {
    return Status::ParseError("trailing bytes after snapshot state");
  }
  return result;
}

}  // namespace persist
}  // namespace cdt
