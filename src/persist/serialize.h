// Canonical binary serialization of the domain structures the persistence
// layer records: the full MechanismConfig + PolicySpec (everything needed
// to rebuild a deterministic run), the per-round RoundReport (the replay
// gate byte-compares these), and the EngineSnapshot (restore without full
// replay). Field order is fixed and guarded by the event-log format
// version — any layout change must bump persist::kFormatVersion so old
// readers fail closed instead of misparsing.

#ifndef CDT_PERSIST_SERIALIZE_H_
#define CDT_PERSIST_SERIALIZE_H_

#include <string>

#include "core/cmab_hs.h"
#include "core/config.h"
#include "market/snapshot.h"
#include "market/types.h"
#include "persist/codec.h"
#include "util/status.h"

namespace cdt {
namespace persist {

// Every Encode* appends the canonical bytes to `out`; every Decode*
// consumes exactly what the encoder wrote and fails with ParseError on
// truncated or out-of-range input, leaving *value partially written.

void EncodeMechanismConfig(const core::MechanismConfig& config,
                           std::string* out);
util::Status DecodeMechanismConfig(ByteReader* in,
                                   core::MechanismConfig* config);

void EncodePolicySpec(const core::PolicySpec& spec, std::string* out);
util::Status DecodePolicySpec(ByteReader* in, core::PolicySpec* spec);

void EncodeRoundReport(const market::RoundReport& report, std::string* out);
util::Status DecodeRoundReport(ByteReader* in, market::RoundReport* report);

void EncodeEngineSnapshot(const market::EngineSnapshot& snapshot,
                          std::string* out);
util::Status DecodeEngineSnapshot(ByteReader* in,
                                  market::EngineSnapshot* snapshot);

}  // namespace persist
}  // namespace cdt

#endif  // CDT_PERSIST_SERIALIZE_H_
