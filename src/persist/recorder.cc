#include "persist/recorder.h"

#include <utility>

#include "market/trading_engine.h"

namespace cdt {
namespace persist {

using util::Result;
using util::Status;

Result<std::unique_ptr<RunRecorder>> RunRecorder::Create(
    Options options, const core::MechanismConfig& config,
    const core::PolicySpec& policy) {
  if (options.log_path.empty()) {
    return Status::InvalidArgument("RunRecorder needs a log_path");
  }
  if (options.snapshot_every < 0) {
    return Status::InvalidArgument("snapshot_every must be >= 0");
  }
  if (options.snapshot_every > 0 && options.snapshot_path.empty()) {
    return Status::InvalidArgument(
        "snapshot_every > 0 needs a snapshot_path");
  }
  auto log = EventLogWriter::Open(options.log_path, config, policy);
  CDT_RETURN_NOT_OK(log.status());
  return std::unique_ptr<RunRecorder>(
      new RunRecorder(std::move(options), std::move(log).value()));
}

Result<std::unique_ptr<RunRecorder>> RunRecorder::Attach(Options options) {
  if (options.log_path.empty()) {
    return Status::InvalidArgument("RunRecorder needs a log_path");
  }
  if (options.snapshot_every < 0) {
    return Status::InvalidArgument("snapshot_every must be >= 0");
  }
  if (options.snapshot_every > 0 && options.snapshot_path.empty()) {
    return Status::InvalidArgument(
        "snapshot_every > 0 needs a snapshot_path");
  }
  auto log = EventLogWriter::OpenForAppend(options.log_path);
  CDT_RETURN_NOT_OK(log.status());
  return std::unique_ptr<RunRecorder>(
      new RunRecorder(std::move(options), std::move(log).value()));
}

Status RunRecorder::OnRound(const market::TradingEngine& engine,
                            const market::RoundReport& report) {
  CDT_RETURN_NOT_OK(log_->AppendRound(report));
  const bool checkpoint = options_.snapshot_every > 0 &&
                          !options_.snapshot_path.empty() &&
                          report.round % options_.snapshot_every == 0;
  if (checkpoint) {
    // Snapshot first, note second: the log never claims a snapshot that
    // did not reach disk.
    CDT_RETURN_NOT_OK(WriteSnapshotFile(options_.snapshot_path,
                                        log_->config_crc(),
                                        engine.CaptureSnapshot()));
    CDT_RETURN_NOT_OK(log_->AppendSnapshotNote(report.round));
  }
  return Status::OK();
}

Status RunRecorder::CheckpointNow(const market::TradingEngine& engine) {
  if (options_.snapshot_path.empty()) return Status::OK();
  const std::int64_t round = engine.current_round();
  // Snapshot notes must follow the round they cover; before round 1 there
  // is nothing to checkpoint.
  if (round < 1 || round != log_->rounds_written()) return Status::OK();
  CDT_RETURN_NOT_OK(WriteSnapshotFile(options_.snapshot_path,
                                      log_->config_crc(),
                                      engine.CaptureSnapshot()));
  return log_->AppendSnapshotNote(round);
}

Status RunRecorder::Finish() { return log_->Finish(); }

}  // namespace persist
}  // namespace cdt
