#include "persist/io_hooks.h"

namespace cdt {
namespace persist {

IoHooks& IoHooks::Instance() {
  static IoHooks* hooks = new IoHooks();
  return *hooks;
}

void IoHooks::Arm(const IoFault& fault) {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_.push_back(fault);
  enabled_.store(true, std::memory_order_relaxed);
}

void IoHooks::EnableCounting() {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_.store(true, std::memory_order_relaxed);
}

void IoHooks::ClearFaults() {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_.clear();
}

void IoHooks::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_.clear();
  for (int i = 0; i < kNumIoOps; ++i) counters_[i] = 0;
  injected_ = 0;
  enabled_.store(false, std::memory_order_relaxed);
}

IoDecision IoHooks::Check(IoOp op) {
  if (!enabled_.load(std::memory_order_relaxed)) return IoDecision{};
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t index = counters_[static_cast<int>(op)]++;
  for (const IoFault& fault : faults_) {
    if (fault.op != op) continue;
    if (index < fault.from_index) continue;
    if (fault.count != 0 && index - fault.from_index >= fault.count) continue;
    ++injected_;
    IoDecision decision;
    if (op == IoOp::kRead && fault.error == 0) {
      decision.bitrot = true;
      decision.bitrot_bit = fault.bitrot_bit;
    } else {
      decision.error = fault.error;
      decision.short_write = fault.short_write && op == IoOp::kWrite;
    }
    return decision;
  }
  return IoDecision{};
}

std::uint64_t IoHooks::ops_seen(IoOp op) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[static_cast<int>(op)];
}

std::uint64_t IoHooks::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

void ApplyBitRot(const IoDecision& decision, std::string* bytes) {
  if (!decision.bitrot || bytes == nullptr || bytes->empty()) return;
  const std::uint64_t bit = decision.bitrot_bit % (bytes->size() * 8);
  (*bytes)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
}

}  // namespace persist
}  // namespace cdt
