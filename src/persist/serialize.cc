#include "persist/serialize.h"

#include <cstddef>

#include "market/faults.h"
#include "market/ledger.h"

namespace cdt {
namespace persist {

using util::Status;

// --- MechanismConfig ----------------------------------------------------

void EncodeMechanismConfig(const core::MechanismConfig& config,
                           std::string* out) {
  // Scale.
  PutZigzag64(out, config.num_sellers);
  PutZigzag64(out, config.num_selected);
  PutZigzag64(out, config.num_pois);
  PutZigzag64(out, config.num_rounds);
  // Quality environment.
  PutDouble(out, config.observation_stddev);
  PutDouble(out, config.quality_lo);
  PutDouble(out, config.quality_hi);
  // Economics.
  PutDouble(out, config.seller_a_lo);
  PutDouble(out, config.seller_a_hi);
  PutDouble(out, config.seller_b_lo);
  PutDouble(out, config.seller_b_hi);
  PutDouble(out, config.theta);
  PutDouble(out, config.lambda);
  PutDouble(out, config.omega);
  PutDouble(out, config.consumer_price_min);
  PutDouble(out, config.consumer_price_max);
  PutDouble(out, config.collection_price_min);
  PutDouble(out, config.collection_price_max);
  PutDouble(out, config.round_duration);
  PutDouble(out, config.initial_tau);
  // Mechanism knobs.
  PutDouble(out, config.exploration);
  PutBool(out, config.select_all_first_round);
  PutDouble(out, config.quality_floor);
  PutBool(out, config.track_transfers);
  PutBool(out, config.check_invariants);
  PutDouble(out, config.consumer_budget);
  // Fault profile.
  PutDouble(out, config.faults.default_rate);
  PutDouble(out, config.faults.corrupt_rate);
  PutDouble(out, config.faults.partial_rate);
  PutDouble(out, config.faults.partial_fraction_lo);
  PutDouble(out, config.faults.partial_fraction_hi);
  PutDouble(out, config.faults.settlement_failure_rate);
  PutFixed64(out, config.faults.seed);
  // Recovery options.
  PutZigzag64(out, config.recovery.max_settlement_retries);
  PutDouble(out, config.recovery.backoff_initial);
  PutDouble(out, config.recovery.backoff_multiplier);
  PutDouble(out, config.recovery.backoff_cap);
  PutZigzag64(out, config.recovery.quarantine_threshold);
  PutZigzag64(out, config.recovery.quarantine_cooldown);
  PutZigzag64(out, config.recovery.probation_successes);
  // Master seed.
  PutFixed64(out, config.seed);
}

namespace {

Status ReadInt(ByteReader* in, int* value, const char* what) {
  std::int64_t v;
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&v));
  if (v < INT32_MIN || v > INT32_MAX) {
    return Status::ParseError(std::string(what) + " overflows int32");
  }
  *value = static_cast<int>(v);
  return Status::OK();
}

}  // namespace

Status DecodeMechanismConfig(ByteReader* in, core::MechanismConfig* config) {
  CDT_RETURN_NOT_OK(ReadInt(in, &config->num_sellers, "num_sellers"));
  CDT_RETURN_NOT_OK(ReadInt(in, &config->num_selected, "num_selected"));
  CDT_RETURN_NOT_OK(ReadInt(in, &config->num_pois, "num_pois"));
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&config->num_rounds));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->observation_stddev));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->quality_lo));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->quality_hi));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->seller_a_lo));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->seller_a_hi));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->seller_b_lo));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->seller_b_hi));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->theta));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->lambda));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->omega));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->consumer_price_min));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->consumer_price_max));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->collection_price_min));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->collection_price_max));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->round_duration));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->initial_tau));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->exploration));
  CDT_RETURN_NOT_OK(in->ReadBool(&config->select_all_first_round));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->quality_floor));
  CDT_RETURN_NOT_OK(in->ReadBool(&config->track_transfers));
  CDT_RETURN_NOT_OK(in->ReadBool(&config->check_invariants));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->consumer_budget));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->faults.default_rate));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->faults.corrupt_rate));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->faults.partial_rate));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->faults.partial_fraction_lo));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->faults.partial_fraction_hi));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->faults.settlement_failure_rate));
  CDT_RETURN_NOT_OK(in->ReadFixed64(&config->faults.seed));
  CDT_RETURN_NOT_OK(
      ReadInt(in, &config->recovery.max_settlement_retries, "retries"));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->recovery.backoff_initial));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->recovery.backoff_multiplier));
  CDT_RETURN_NOT_OK(in->ReadDouble(&config->recovery.backoff_cap));
  CDT_RETURN_NOT_OK(
      ReadInt(in, &config->recovery.quarantine_threshold, "threshold"));
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&config->recovery.quarantine_cooldown));
  CDT_RETURN_NOT_OK(
      ReadInt(in, &config->recovery.probation_successes, "probation"));
  CDT_RETURN_NOT_OK(in->ReadFixed64(&config->seed));
  return Status::OK();
}

// --- PolicySpec ---------------------------------------------------------

void EncodePolicySpec(const core::PolicySpec& spec, std::string* out) {
  PutByte(out, static_cast<std::uint8_t>(spec.kind));
  PutDouble(out, spec.epsilon);
}

Status DecodePolicySpec(ByteReader* in, core::PolicySpec* spec) {
  std::uint8_t kind;
  CDT_RETURN_NOT_OK(in->ReadByte(&kind));
  if (kind > static_cast<std::uint8_t>(core::PolicyKind::kThompson)) {
    return Status::ParseError("unknown policy kind byte");
  }
  spec->kind = static_cast<core::PolicyKind>(kind);
  CDT_RETURN_NOT_OK(in->ReadDouble(&spec->epsilon));
  return Status::OK();
}

// --- RoundReport --------------------------------------------------------

namespace {

void EncodeFaultEvent(const market::FaultEvent& event, std::string* out) {
  PutZigzag64(out, event.round);
  PutByte(out, static_cast<std::uint8_t>(event.kind));
  PutZigzag64(out, event.seller);
  PutDouble(out, event.severity);
  PutBool(out, event.recovered);
}

Status DecodeFaultEvent(ByteReader* in, market::FaultEvent* event) {
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&event->round));
  std::uint8_t kind;
  CDT_RETURN_NOT_OK(in->ReadByte(&kind));
  if (kind >= market::kNumFaultKinds) {
    return Status::ParseError("unknown fault kind byte");
  }
  event->kind = static_cast<market::FaultKind>(kind);
  CDT_RETURN_NOT_OK(ReadInt(in, &event->seller, "fault seller"));
  CDT_RETURN_NOT_OK(in->ReadDouble(&event->severity));
  CDT_RETURN_NOT_OK(in->ReadBool(&event->recovered));
  return Status::OK();
}

}  // namespace

void EncodeRoundReport(const market::RoundReport& report, std::string* out) {
  PutZigzag64(out, report.round);
  PutBool(out, report.initial_exploration);
  PutIntVector(out, report.selected);
  PutDoubleVector(out, report.game_qualities);
  PutDouble(out, report.consumer_price);
  PutDouble(out, report.collection_price);
  PutDoubleVector(out, report.tau);
  PutDouble(out, report.total_time);
  PutDouble(out, report.consumer_profit);
  PutDouble(out, report.platform_profit);
  PutDoubleVector(out, report.seller_profits);
  PutDouble(out, report.seller_profit_total);
  PutDouble(out, report.expected_quality_revenue);
  PutDouble(out, report.observed_quality_revenue);
  PutBool(out, report.degraded);
  PutBool(out, report.resettled);
  PutBool(out, report.voided);
  PutDoubleVector(out, report.contracted_tau);
  PutVarint64(out, report.faults.size());
  for (const market::FaultEvent& event : report.faults) {
    EncodeFaultEvent(event, out);
  }
  PutZigzag64(out, report.settlement_attempts);
  PutDouble(out, report.settlement_backoff);
}

Status DecodeRoundReport(ByteReader* in, market::RoundReport* report) {
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&report->round));
  CDT_RETURN_NOT_OK(in->ReadBool(&report->initial_exploration));
  CDT_RETURN_NOT_OK(in->ReadIntVector(&report->selected));
  CDT_RETURN_NOT_OK(in->ReadDoubleVector(&report->game_qualities));
  CDT_RETURN_NOT_OK(in->ReadDouble(&report->consumer_price));
  CDT_RETURN_NOT_OK(in->ReadDouble(&report->collection_price));
  CDT_RETURN_NOT_OK(in->ReadDoubleVector(&report->tau));
  CDT_RETURN_NOT_OK(in->ReadDouble(&report->total_time));
  CDT_RETURN_NOT_OK(in->ReadDouble(&report->consumer_profit));
  CDT_RETURN_NOT_OK(in->ReadDouble(&report->platform_profit));
  CDT_RETURN_NOT_OK(in->ReadDoubleVector(&report->seller_profits));
  CDT_RETURN_NOT_OK(in->ReadDouble(&report->seller_profit_total));
  CDT_RETURN_NOT_OK(in->ReadDouble(&report->expected_quality_revenue));
  CDT_RETURN_NOT_OK(in->ReadDouble(&report->observed_quality_revenue));
  CDT_RETURN_NOT_OK(in->ReadBool(&report->degraded));
  CDT_RETURN_NOT_OK(in->ReadBool(&report->resettled));
  CDT_RETURN_NOT_OK(in->ReadBool(&report->voided));
  CDT_RETURN_NOT_OK(in->ReadDoubleVector(&report->contracted_tau));
  std::uint64_t fault_count;
  CDT_RETURN_NOT_OK(in->ReadVarint64(&fault_count));
  // A serialized FaultEvent is at least 12 bytes.
  if (fault_count > in->remaining() / 12) {
    return Status::ParseError("fault event count exceeds payload");
  }
  report->faults.clear();
  report->faults.reserve(static_cast<std::size_t>(fault_count));
  for (std::uint64_t i = 0; i < fault_count; ++i) {
    market::FaultEvent event;
    CDT_RETURN_NOT_OK(DecodeFaultEvent(in, &event));
    report->faults.push_back(event);
  }
  CDT_RETURN_NOT_OK(
      ReadInt(in, &report->settlement_attempts, "settlement_attempts"));
  CDT_RETURN_NOT_OK(in->ReadDouble(&report->settlement_backoff));
  return Status::OK();
}

// --- EngineSnapshot -----------------------------------------------------

namespace {

void EncodeArms(const std::vector<bandit::ArmState>& arms,
                std::uint64_t total, std::string* out) {
  PutVarint64(out, arms.size());
  for (const bandit::ArmState& arm : arms) {
    PutVarint64(out, arm.observations);
    PutDouble(out, arm.mean);
  }
  PutVarint64(out, total);
}

Status DecodeArms(ByteReader* in, std::vector<bandit::ArmState>* arms,
                  std::uint64_t* total) {
  std::uint64_t count;
  CDT_RETURN_NOT_OK(in->ReadVarint64(&count));
  // Each serialized arm is at least 9 bytes (1-byte varint + fixed64).
  if (count > in->remaining() / 9) {
    return Status::ParseError("arm count exceeds payload");
  }
  arms->clear();
  arms->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    bandit::ArmState arm;
    CDT_RETURN_NOT_OK(in->ReadVarint64(&arm.observations));
    CDT_RETURN_NOT_OK(in->ReadDouble(&arm.mean));
    arms->push_back(arm);
  }
  return in->ReadVarint64(total);
}

void EncodeReliability(const market::SellerReliability& seller,
                       std::string* out) {
  PutZigzag64(out, seller.deliveries);
  PutZigzag64(out, seller.partials);
  PutZigzag64(out, seller.defaults);
  PutZigzag64(out, seller.corruptions);
  PutZigzag64(out, seller.quarantine_drops);
  PutZigzag64(out, seller.times_opened);
  PutZigzag64(out, seller.consecutive_faults);
  PutZigzag64(out, seller.probation_progress);
  PutByte(out, static_cast<std::uint8_t>(seller.state));
  PutZigzag64(out, seller.opened_round);
}

Status DecodeReliability(ByteReader* in, market::SellerReliability* seller) {
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&seller->deliveries));
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&seller->partials));
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&seller->defaults));
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&seller->corruptions));
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&seller->quarantine_drops));
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&seller->times_opened));
  CDT_RETURN_NOT_OK(
      ReadInt(in, &seller->consecutive_faults, "consecutive_faults"));
  CDT_RETURN_NOT_OK(
      ReadInt(in, &seller->probation_progress, "probation_progress"));
  std::uint8_t state;
  CDT_RETURN_NOT_OK(in->ReadByte(&state));
  if (state > static_cast<std::uint8_t>(market::BreakerState::kProbation)) {
    return Status::ParseError("unknown breaker state byte");
  }
  seller->state = static_cast<market::BreakerState>(state);
  return in->ReadZigzag64(&seller->opened_round);
}

}  // namespace

void EncodeEngineSnapshot(const market::EngineSnapshot& snapshot,
                          std::string* out) {
  PutZigzag64(out, snapshot.next_round);
  PutBool(out, snapshot.budget_exhausted);
  PutDouble(out, snapshot.consumer_spend);
  EncodeArms(snapshot.pricing_arms, snapshot.pricing_total_observations, out);
  PutBool(out, snapshot.has_policy_arms);
  if (snapshot.has_policy_arms) {
    EncodeArms(snapshot.policy_arms, snapshot.policy_total_observations, out);
  }
  PutDoubleVector(out, snapshot.ledger_balances);
  PutDouble(out, snapshot.ledger_consumer_outflow);
  PutDouble(out, snapshot.ledger_seller_inflow);
  PutVarint64(out, snapshot.ledger_transfers.size());
  for (const market::Transfer& transfer : snapshot.ledger_transfers) {
    PutZigzag64(out, transfer.round);
    PutZigzag64(out, transfer.from);
    PutZigzag64(out, transfer.to);
    PutDouble(out, transfer.amount);
    PutString(out, transfer.memo);
  }
  PutVarint64(out, snapshot.reliability.size());
  for (const market::SellerReliability& seller : snapshot.reliability) {
    EncodeReliability(seller, out);
  }
  PutZigzag64(out, snapshot.reliability_total_faults);
  for (std::int64_t count : snapshot.fault_counts) {
    PutZigzag64(out, count);
  }
  for (std::uint64_t word : snapshot.environment.rng_state) {
    PutFixed64(out, word);
  }
  PutVarint64(out, snapshot.environment.has_spare.size());
  for (std::uint8_t flag : snapshot.environment.has_spare) {
    PutByte(out, flag);
  }
  PutDoubleVector(out, snapshot.environment.spare);
  // Optional tail: the seller-departure bitmap (runtime seller-leave
  // events). Omitted entirely when every seller is active, so snapshots
  // from runs that never saw a departure keep the original byte layout
  // and pre-overlay snapshots decode unchanged.
  if (!snapshot.seller_active.empty()) {
    PutVarint64(out, snapshot.seller_active.size());
    for (std::uint8_t flag : snapshot.seller_active) {
      PutByte(out, flag);
    }
  }
}

Status DecodeEngineSnapshot(ByteReader* in,
                            market::EngineSnapshot* snapshot) {
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&snapshot->next_round));
  CDT_RETURN_NOT_OK(in->ReadBool(&snapshot->budget_exhausted));
  CDT_RETURN_NOT_OK(in->ReadDouble(&snapshot->consumer_spend));
  CDT_RETURN_NOT_OK(DecodeArms(in, &snapshot->pricing_arms,
                               &snapshot->pricing_total_observations));
  CDT_RETURN_NOT_OK(in->ReadBool(&snapshot->has_policy_arms));
  if (snapshot->has_policy_arms) {
    CDT_RETURN_NOT_OK(DecodeArms(in, &snapshot->policy_arms,
                                 &snapshot->policy_total_observations));
  } else {
    snapshot->policy_arms.clear();
    snapshot->policy_total_observations = 0;
  }
  CDT_RETURN_NOT_OK(in->ReadDoubleVector(&snapshot->ledger_balances));
  CDT_RETURN_NOT_OK(in->ReadDouble(&snapshot->ledger_consumer_outflow));
  CDT_RETURN_NOT_OK(in->ReadDouble(&snapshot->ledger_seller_inflow));
  std::uint64_t transfer_count;
  CDT_RETURN_NOT_OK(in->ReadVarint64(&transfer_count));
  // A serialized Transfer is at least 12 bytes.
  if (transfer_count > in->remaining() / 12) {
    return Status::ParseError("transfer count exceeds payload");
  }
  snapshot->ledger_transfers.clear();
  snapshot->ledger_transfers.reserve(
      static_cast<std::size_t>(transfer_count));
  for (std::uint64_t i = 0; i < transfer_count; ++i) {
    market::Transfer transfer;
    CDT_RETURN_NOT_OK(in->ReadZigzag64(&transfer.round));
    std::int64_t account;
    CDT_RETURN_NOT_OK(in->ReadZigzag64(&account));
    if (account < INT32_MIN || account > INT32_MAX) {
      return Status::ParseError("transfer account overflows int32");
    }
    transfer.from = static_cast<std::int32_t>(account);
    CDT_RETURN_NOT_OK(in->ReadZigzag64(&account));
    if (account < INT32_MIN || account > INT32_MAX) {
      return Status::ParseError("transfer account overflows int32");
    }
    transfer.to = static_cast<std::int32_t>(account);
    CDT_RETURN_NOT_OK(in->ReadDouble(&transfer.amount));
    CDT_RETURN_NOT_OK(in->ReadString(&transfer.memo));
    snapshot->ledger_transfers.push_back(std::move(transfer));
  }
  std::uint64_t seller_count;
  CDT_RETURN_NOT_OK(in->ReadVarint64(&seller_count));
  // A serialized SellerReliability is at least 10 bytes.
  if (seller_count > in->remaining() / 10) {
    return Status::ParseError("reliability count exceeds payload");
  }
  snapshot->reliability.clear();
  snapshot->reliability.reserve(static_cast<std::size_t>(seller_count));
  for (std::uint64_t i = 0; i < seller_count; ++i) {
    market::SellerReliability seller;
    CDT_RETURN_NOT_OK(DecodeReliability(in, &seller));
    snapshot->reliability.push_back(seller);
  }
  CDT_RETURN_NOT_OK(in->ReadZigzag64(&snapshot->reliability_total_faults));
  for (std::int64_t& count : snapshot->fault_counts) {
    CDT_RETURN_NOT_OK(in->ReadZigzag64(&count));
  }
  for (std::uint64_t& word : snapshot->environment.rng_state) {
    CDT_RETURN_NOT_OK(in->ReadFixed64(&word));
  }
  std::uint64_t spare_count;
  CDT_RETURN_NOT_OK(in->ReadVarint64(&spare_count));
  if (spare_count > in->remaining()) {
    return Status::ParseError("spare flag count exceeds payload");
  }
  snapshot->environment.has_spare.clear();
  snapshot->environment.has_spare.reserve(
      static_cast<std::size_t>(spare_count));
  for (std::uint64_t i = 0; i < spare_count; ++i) {
    std::uint8_t flag;
    CDT_RETURN_NOT_OK(in->ReadByte(&flag));
    if (flag > 1) return Status::ParseError("spare flag byte not 0/1");
    snapshot->environment.has_spare.push_back(flag);
  }
  CDT_RETURN_NOT_OK(in->ReadDoubleVector(&snapshot->environment.spare));
  // Optional tail (see EncodeEngineSnapshot): absent in pre-overlay
  // snapshots and in snapshots with every seller active.
  snapshot->seller_active.clear();
  if (!in->empty()) {
    std::uint64_t active_count;
    CDT_RETURN_NOT_OK(in->ReadVarint64(&active_count));
    if (active_count > in->remaining()) {
      return Status::ParseError("seller-activity count exceeds payload");
    }
    snapshot->seller_active.reserve(static_cast<std::size_t>(active_count));
    for (std::uint64_t i = 0; i < active_count; ++i) {
      std::uint8_t flag;
      CDT_RETURN_NOT_OK(in->ReadByte(&flag));
      if (flag > 1) return Status::ParseError("activity flag byte not 0/1");
      snapshot->seller_active.push_back(flag);
    }
  }
  return Status::OK();
}

}  // namespace persist
}  // namespace cdt
