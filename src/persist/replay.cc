#include "persist/replay.h"

#include <utility>

#include "market/trading_engine.h"
#include "persist/codec.h"
#include "persist/serialize.h"

namespace cdt {
namespace persist {

using util::Result;
using util::Status;

Result<RecordedRun> LoadRecordedRun(const std::string& path,
                                    bool allow_torn_tail) {
  EventLogReader::Options options;
  options.allow_torn_tail = allow_torn_tail;
  auto reader = EventLogReader::Open(path, options);
  CDT_RETURN_NOT_OK(reader.status());
  EventLogReader& log = *reader.value();

  RecordedRun run;
  bool have_config = false;
  bool have_footer = false;
  FooterInfo footer;
  std::uint32_t rolling_crc = 0;

  LogRecord record;
  while (true) {
    Status status = log.Next(&record);
    if (status.code() == util::StatusCode::kNotFound) break;
    CDT_RETURN_NOT_OK(status);
    if (have_footer) {
      return Status::ParseError("event log has records after its footer");
    }
    switch (record.type) {
      case RecordType::kConfig: {
        if (have_config) {
          return Status::ParseError("event log has two config records");
        }
        CDT_RETURN_NOT_OK(
            DecodeConfigPayload(record.payload, &run.config, &run.policy));
        run.config_crc = Crc32(record.payload);
        have_config = true;
        break;
      }
      case RecordType::kRound: {
        if (!have_config) {
          return Status::ParseError(
              "event log round record before config record");
        }
        market::RoundReport report;
        ByteReader payload(record.payload);
        CDT_RETURN_NOT_OK(DecodeRoundReport(&payload, &report));
        if (!payload.empty()) {
          return Status::ParseError("trailing bytes after round payload");
        }
        const auto expected =
            run.base_round +
            static_cast<std::int64_t>(run.rounds.size()) + 1;
        if (report.round != expected) {
          return Status::ParseError(
              "event log rounds out of order: expected round " +
              std::to_string(expected) + ", got " +
              std::to_string(report.round));
        }
        rolling_crc = Crc32(record.payload, rolling_crc);
        run.rounds.push_back(std::move(report));
        run.round_payloads.emplace_back(record.payload);
        break;
      }
      case RecordType::kSnapshotNote: {
        std::int64_t round;
        CDT_RETURN_NOT_OK(DecodeSnapshotNotePayload(record.payload, &round));
        if (round < 1 ||
            round > run.base_round +
                        static_cast<std::int64_t>(run.rounds.size())) {
          return Status::ParseError(
              "snapshot note for round " + std::to_string(round) +
              " does not follow that round's record");
        }
        run.snapshot_rounds.push_back(round);
        break;
      }
      case RecordType::kRebase: {
        if (!have_config || !run.rounds.empty() || run.base_round != 0) {
          return Status::ParseError(
              "rebase record out of position (must immediately follow "
              "the config record)");
        }
        CDT_RETURN_NOT_OK(
            DecodeRebasePayload(record.payload, &run.base_round));
        break;
      }
      case RecordType::kFooter: {
        CDT_RETURN_NOT_OK(DecodeFooterPayload(record.payload, &footer));
        have_footer = true;
        break;
      }
    }
  }

  if (!have_config) {
    return Status::ParseError("event log has no config record");
  }
  if (have_footer) {
    const std::int64_t total =
        run.base_round + static_cast<std::int64_t>(run.rounds.size());
    if (footer.round_count != total) {
      return Status::ParseError(
          "footer claims " + std::to_string(footer.round_count) +
          " rounds, log holds " + std::to_string(total));
    }
    if (footer.rolling_crc != rolling_crc) {
      return Status::ParseError("footer rolling CRC mismatch");
    }
  } else if (!allow_torn_tail) {
    return Status::ParseError(
        "event log has no footer (unfinished recording); pass "
        "allow_torn_tail to load the recoverable prefix");
  }
  run.sealed = have_footer;
  run.torn_tail = log.torn_tail();
  return run;
}

std::string CanonicalRoundBytes(const market::RoundReport& report) {
  std::string bytes;
  EncodeRoundReport(report, &bytes);
  return bytes;
}

namespace {

/// Human-readable context for the first divergent round: which scalar
/// fields moved, so a gate failure names the suspect subsystem.
std::string DivergenceDetail(const market::RoundReport& recorded,
                             const market::RoundReport& replayed) {
  std::string detail;
  auto note = [&detail](const char* field) {
    if (!detail.empty()) detail += ", ";
    detail += field;
  };
  if (recorded.selected != replayed.selected) note("selected");
  if (recorded.game_qualities != replayed.game_qualities) {
    note("game_qualities");
  }
  if (recorded.consumer_price != replayed.consumer_price) {
    note("consumer_price");
  }
  if (recorded.collection_price != replayed.collection_price) {
    note("collection_price");
  }
  if (recorded.tau != replayed.tau) note("tau");
  if (recorded.consumer_profit != replayed.consumer_profit) {
    note("consumer_profit");
  }
  if (recorded.platform_profit != replayed.platform_profit) {
    note("platform_profit");
  }
  if (recorded.seller_profits != replayed.seller_profits) {
    note("seller_profits");
  }
  if (recorded.observed_quality_revenue !=
      replayed.observed_quality_revenue) {
    note("observed_quality_revenue");
  }
  if (recorded.degraded != replayed.degraded ||
      recorded.resettled != replayed.resettled ||
      recorded.voided != replayed.voided ||
      recorded.faults.size() != replayed.faults.size()) {
    note("fault/recovery metadata");
  }
  if (detail.empty()) detail = "non-scalar field";
  return detail;
}

}  // namespace

Result<ReplayResult> VerifyReplay(const RecordedRun& recorded) {
  if (recorded.base_round != 0) {
    return Status::FailedPrecondition(
        "rebased log starts at round " +
        std::to_string(recorded.base_round + 1) +
        "; rounds before that were compacted into its snapshot — resume "
        "from the snapshot instead of a full replay");
  }
  auto run = core::CmabHs::Create(recorded.config, recorded.policy);
  CDT_RETURN_NOT_OK(run.status());
  core::CmabHs& live = *run.value();

  ReplayResult result;
  for (std::size_t i = 0; i < recorded.rounds.size(); ++i) {
    auto report = live.RunRound();
    CDT_RETURN_NOT_OK(report.status());
    const std::string bytes = CanonicalRoundBytes(report.value());
    if (bytes != recorded.round_payloads[i]) {
      return Status::Internal(
          "replay diverged at round " + std::to_string(i + 1) +
          " (differing fields: " +
          DivergenceDetail(recorded.rounds[i], report.value()) +
          ") — the build no longer reproduces the recorded trace");
    }
    ++result.rounds_verified;
  }
  return result;
}

Result<ResumedRun> ResumeFromSnapshot(const RecordedRun& recorded,
                                      const SnapshotFile& snapshot) {
  if (snapshot.config_crc != recorded.config_crc) {
    return Status::FailedPrecondition(
        "snapshot belongs to a different recording (config CRC "
        "mismatch)");
  }
  const std::int64_t snapshot_round = snapshot.snapshot.next_round - 1;
  const std::int64_t recorded_rounds =
      recorded.base_round + static_cast<std::int64_t>(recorded.rounds.size());
  if (snapshot_round < 0 || snapshot_round > recorded_rounds) {
    return Status::FailedPrecondition(
        "snapshot covers round " + std::to_string(snapshot_round) +
        " but the log holds only " + std::to_string(recorded_rounds) +
        " rounds");
  }
  if (snapshot_round < recorded.base_round) {
    return Status::FailedPrecondition(
        "snapshot covers round " + std::to_string(snapshot_round) +
        " but the log was rebased at round " +
        std::to_string(recorded.base_round) +
        "; rounds in between were compacted away");
  }

  auto run = core::CmabHs::Create(recorded.config, recorded.policy);
  CDT_RETURN_NOT_OK(run.status());
  core::CmabHs& live = *run.value();
  CDT_RETURN_NOT_OK(
      live.mutable_engine().RestoreSnapshot(snapshot.snapshot));

  // Tail-replay: re-execute the recorded rounds past the snapshot and
  // hold them to the same byte-identical standard as a full replay.
  for (std::int64_t round = snapshot_round + 1; round <= recorded_rounds;
       ++round) {
    auto report = live.RunRound();
    CDT_RETURN_NOT_OK(report.status());
    const std::string bytes = CanonicalRoundBytes(report.value());
    const auto index =
        static_cast<std::size_t>(round - recorded.base_round - 1);
    if (bytes != recorded.round_payloads[index]) {
      return Status::Internal(
          "tail-replay diverged at round " + std::to_string(round) +
          " (differing fields: " +
          DivergenceDetail(recorded.rounds[index], report.value()) + ")");
    }
  }

  ResumedRun resumed;
  resumed.run = std::move(run).value();
  resumed.snapshot_round = snapshot_round;
  resumed.resumed_round = recorded_rounds;
  return resumed;
}

}  // namespace persist
}  // namespace cdt
