// RunRecorder: a RoundObserver that streams every settled round into an
// event log and periodically checkpoints the engine into an atomically
// written snapshot file — the producer side of record/replay. Attach it to
// a TradingEngine (via CmabHs::mutable_engine()->AddObserver) before the
// first round; call Finish() after the campaign for a footer-sealed log.

#ifndef CDT_PERSIST_RECORDER_H_
#define CDT_PERSIST_RECORDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/cmab_hs.h"
#include "core/config.h"
#include "market/invariants.h"
#include "persist/event_log.h"
#include "util/status.h"

namespace cdt {
namespace persist {

class RunRecorder : public market::RoundObserver {
 public:
  struct Options {
    /// Event-log destination (created/truncated).
    std::string log_path;
    /// Snapshot destination; rewritten in place (atomically) at every
    /// checkpoint. Empty disables snapshots even if snapshot_every > 0.
    std::string snapshot_path;
    /// Rounds between engine snapshots; 0 disables. The snapshot after
    /// round r covers rounds [1, r]; restore = snapshot + tail-replay.
    std::int64_t snapshot_every = 0;
  };

  /// Opens the log and writes its config record. The config/policy pair
  /// must be the exact one the observed engine was built from — replay
  /// rebuilds the run from these bytes.
  static util::Result<std::unique_ptr<RunRecorder>> Create(
      Options options, const core::MechanismConfig& config,
      const core::PolicySpec& policy);

  /// Reattaches to an existing unfinished log (crash recovery): reopens
  /// `options.log_path` in append mode, dropping a torn final record, and
  /// continues recording from the round after the last complete one. The
  /// observed engine must already be positioned there (snapshot restore +
  /// tail replay) — AppendRound enforces the gap-free round sequence.
  static util::Result<std::unique_ptr<RunRecorder>> Attach(Options options);

  /// Appends the round record; at checkpoint rounds also captures and
  /// durably writes a snapshot, then notes it in the log (the note is
  /// only present when the snapshot file already hit disk).
  util::Status OnRound(const market::TradingEngine& engine,
                       const market::RoundReport& report) override;

  /// Forces a checkpoint outside the snapshot_every cadence (e.g. a
  /// graceful drain's final snapshot). No-op when snapshots are disabled
  /// or no round has settled yet.
  util::Status CheckpointNow(const market::TradingEngine& engine);

  /// Seals the log with its footer (fsync + close). Idempotent. A crash
  /// before Finish leaves a torn but recoverable log.
  util::Status Finish();

  std::int64_t rounds_recorded() const { return log_->rounds_written(); }
  std::uint32_t config_crc() const { return log_->config_crc(); }

 private:
  RunRecorder(Options options, std::unique_ptr<EventLogWriter> log)
      : options_(std::move(options)), log_(std::move(log)) {}

  Options options_;
  std::unique_ptr<EventLogWriter> log_;
};

}  // namespace persist
}  // namespace cdt

#endif  // CDT_PERSIST_RECORDER_H_
