#include "persist/codec.h"

#include <cstring>

namespace cdt {
namespace persist {

using util::Status;

// --- encoding -----------------------------------------------------------

void PutVarint64(std::string* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutZigzag64(std::string* out, std::int64_t value) {
  std::uint64_t u = static_cast<std::uint64_t>(value);
  PutVarint64(out, (u << 1) ^ (u >> 63 ? ~std::uint64_t{0} : 0));
}

void PutFixed32(std::string* out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void PutFixed64(std::string* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void PutDouble(std::string* out, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed64(out, bits);
}

void PutBool(std::string* out, bool value) {
  out->push_back(value ? '\1' : '\0');
}

void PutByte(std::string* out, std::uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void PutString(std::string* out, std::string_view value) {
  PutVarint64(out, value.size());
  out->append(value.data(), value.size());
}

void PutDoubleVector(std::string* out, const std::vector<double>& values) {
  PutVarint64(out, values.size());
  for (double v : values) PutDouble(out, v);
}

void PutIntVector(std::string* out, const std::vector<int>& values) {
  PutVarint64(out, values.size());
  for (int v : values) PutZigzag64(out, v);
}

// --- decoding -----------------------------------------------------------

namespace {

Status Truncated(const char* what) {
  return Status::ParseError(std::string("truncated input reading ") + what);
}

}  // namespace

Status ByteReader::ReadVarint64(std::uint64_t* value) {
  std::uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos_ >= data_.size()) return Truncated("varint");
    std::uint8_t byte = static_cast<std::uint8_t>(data_[pos_++]);
    if (shift == 63 && (byte & 0x7F) > 1) {
      return Status::ParseError("varint overflows 64 bits");
    }
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return Status::OK();
    }
  }
  return Status::ParseError("varint longer than 10 bytes");
}

Status ByteReader::ReadZigzag64(std::int64_t* value) {
  std::uint64_t u;
  CDT_RETURN_NOT_OK(ReadVarint64(&u));
  *value = static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  return Status::OK();
}

Status ByteReader::ReadFixed32(std::uint32_t* value) {
  if (remaining() < 4) return Truncated("fixed32");
  std::uint32_t result = 0;
  for (int i = 0; i < 4; ++i) {
    result |= static_cast<std::uint32_t>(
                  static_cast<std::uint8_t>(data_[pos_ + i]))
              << (8 * i);
  }
  pos_ += 4;
  *value = result;
  return Status::OK();
}

Status ByteReader::ReadFixed64(std::uint64_t* value) {
  if (remaining() < 8) return Truncated("fixed64");
  std::uint64_t result = 0;
  for (int i = 0; i < 8; ++i) {
    result |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(data_[pos_ + i]))
              << (8 * i);
  }
  pos_ += 8;
  *value = result;
  return Status::OK();
}

Status ByteReader::ReadDouble(double* value) {
  std::uint64_t bits = 0;
  CDT_RETURN_NOT_OK(ReadFixed64(&bits));
  std::memcpy(value, &bits, sizeof(*value));
  return Status::OK();
}

Status ByteReader::ReadBool(bool* value) {
  std::uint8_t byte = 0;
  CDT_RETURN_NOT_OK(ReadByte(&byte));
  if (byte > 1) return Status::ParseError("bool byte not 0/1");
  *value = byte != 0;
  return Status::OK();
}

Status ByteReader::ReadByte(std::uint8_t* value) {
  if (empty()) return Truncated("byte");
  *value = static_cast<std::uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status ByteReader::ReadString(std::string* value) {
  std::string_view bytes;
  std::uint64_t length;
  CDT_RETURN_NOT_OK(ReadVarint64(&length));
  if (length > remaining()) return Truncated("string body");
  CDT_RETURN_NOT_OK(ReadBytes(static_cast<std::size_t>(length), &bytes));
  value->assign(bytes);
  return Status::OK();
}

Status ByteReader::ReadBytes(std::size_t length, std::string_view* value) {
  if (length > remaining()) return Truncated("byte range");
  *value = data_.substr(pos_, length);
  pos_ += length;
  return Status::OK();
}

Status ByteReader::ReadDoubleVector(std::vector<double>* values) {
  std::uint64_t count;
  CDT_RETURN_NOT_OK(ReadVarint64(&count));
  // Each element consumes 8 bytes, so the count is bounded by what is
  // actually present — rejects absurd counts before any allocation.
  if (count > remaining() / 8) return Truncated("double vector");
  values->clear();
  values->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    double v;
    CDT_RETURN_NOT_OK(ReadDouble(&v));
    values->push_back(v);
  }
  return Status::OK();
}

Status ByteReader::ReadIntVector(std::vector<int>* values) {
  std::uint64_t count;
  CDT_RETURN_NOT_OK(ReadVarint64(&count));
  if (count > remaining()) return Truncated("int vector");
  values->clear();
  values->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int64_t v;
    CDT_RETURN_NOT_OK(ReadZigzag64(&v));
    if (v < INT32_MIN || v > INT32_MAX) {
      return Status::ParseError("int vector element overflows int32");
    }
    values->push_back(static_cast<int>(v));
  }
  return Status::OK();
}

// --- integrity -----------------------------------------------------------

namespace {

struct Crc32Table {
  std::uint32_t entries[256];

  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

std::uint32_t Crc32(std::string_view data, std::uint32_t seed) {
  static const Crc32Table table;
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (char c : data) {
    crc = (crc >> 8) ^ table.entries[(crc ^ static_cast<std::uint8_t>(c)) &
                                     0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace persist
}  // namespace cdt
