// Crash-safe file IO for the persistence layer.
//
// AtomicWriteFile writes via a temp file in the destination directory,
// fsyncs the data, renames into place, then fsyncs the directory — a
// reader never observes a half-written file, and a crash at any point
// leaves either the old content or the new content, never a torn mix.
// A test-only failure hook injects write/fsync errors so the durability
// suite can prove the failure paths clean up after themselves.

#ifndef CDT_PERSIST_ATOMIC_IO_H_
#define CDT_PERSIST_ATOMIC_IO_H_

#include <functional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cdt {
namespace persist {

/// Atomically replaces `path` with `bytes` (temp file + fsync + rename +
/// directory fsync). On error the temp file is removed and the original
/// `path` (if any) is untouched.
util::Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// Reads a whole file; NotFound when it does not exist.
util::Result<std::string> ReadFileBytes(const std::string& path);

/// Test hook: invoked after the temp file's bytes are written but before
/// the rename; a non-OK return aborts the atomic write (which must then
/// unlink the temp file and leave the destination untouched). Pass nullptr
/// to clear. Not thread-safe — tests install/clear it around single-threaded
/// sections only.
using AtomicWriteHook =
    std::function<util::Status(const std::string& temp_path)>;
void SetAtomicWriteFailureHookForTest(AtomicWriteHook hook);

}  // namespace persist
}  // namespace cdt

#endif  // CDT_PERSIST_ATOMIC_IO_H_
