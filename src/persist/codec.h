// Binary codec primitives for the persistence layer: LEB128 varints,
// zigzag-mapped signed integers, fixed-width little-endian words, doubles
// persisted as exact IEEE-754 bit patterns (byte-identical round trips are
// the whole point), length-prefixed strings, and CRC-32 for record guards.
//
// Encoding appends to a std::string sink; decoding goes through ByteReader,
// which bounds-checks every read and reports truncation through
// util::Status instead of crashing — the fuzz suite feeds it bit-flipped
// and truncated inputs under asan/ubsan.

#ifndef CDT_PERSIST_CODEC_H_
#define CDT_PERSIST_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cdt {
namespace persist {

// --- encoding (append to `out`) ---------------------------------------

/// LEB128: 7 bits per byte, high bit = continuation. At most 10 bytes.
void PutVarint64(std::string* out, std::uint64_t value);

/// Zigzag-mapped signed varint: small magnitudes stay small either sign.
void PutZigzag64(std::string* out, std::int64_t value);

/// Little-endian fixed words.
void PutFixed32(std::string* out, std::uint32_t value);
void PutFixed64(std::string* out, std::uint64_t value);

/// IEEE-754 bit pattern as fixed64 — exact round trip, NaNs included.
void PutDouble(std::string* out, double value);

void PutBool(std::string* out, bool value);
void PutByte(std::string* out, std::uint8_t value);

/// Varint length prefix + raw bytes.
void PutString(std::string* out, std::string_view value);

/// Varint count prefix + per-element PutDouble / PutZigzag64.
void PutDoubleVector(std::string* out, const std::vector<double>& values);
void PutIntVector(std::string* out, const std::vector<int>& values);

// --- decoding ----------------------------------------------------------

/// Bounds-checked sequential reader over a borrowed byte range. Every
/// Read* fails with ParseError on truncation or malformed input and leaves
/// the cursor unspecified afterwards (callers stop at the first error).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return pos_ >= data_.size(); }
  std::size_t position() const { return pos_; }

  util::Status ReadVarint64(std::uint64_t* value);
  util::Status ReadZigzag64(std::int64_t* value);
  util::Status ReadFixed32(std::uint32_t* value);
  util::Status ReadFixed64(std::uint64_t* value);
  util::Status ReadDouble(double* value);
  util::Status ReadBool(bool* value);
  util::Status ReadByte(std::uint8_t* value);
  util::Status ReadString(std::string* value);
  /// Borrows `length` bytes from the underlying range (no copy).
  util::Status ReadBytes(std::size_t length, std::string_view* value);
  util::Status ReadDoubleVector(std::vector<double>* values);
  util::Status ReadIntVector(std::vector<int>* values);

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- integrity ----------------------------------------------------------

/// CRC-32 (ISO 3309, reflected 0xEDB88320), same polynomial as zlib.
/// Chainable: pass the previous value to extend a running checksum.
std::uint32_t Crc32(std::string_view data, std::uint32_t seed = 0);

}  // namespace persist
}  // namespace cdt

#endif  // CDT_PERSIST_CODEC_H_
