#include "persist/scrub.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string_view>
#include <utility>

#include "persist/atomic_io.h"
#include "persist/codec.h"
#include "persist/event_log.h"

namespace cdt {
namespace persist {

using util::Result;
using util::Status;

namespace {

constexpr std::size_t kMagicSize = 8;
constexpr std::uint64_t kMaxPayloadSize = 64ull << 20;

bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix.data(),
                   suffix.size()) == 0;
}

/// Moves an irreparable artifact aside so recovery sees NotFound (loud)
/// instead of poison. Report-only mode leaves the file in place.
Status QuarantineFile(const std::string& path, const ScrubOptions& options) {
  if (!options.quarantine) return Status::OK();
  const std::string target = path + ".quarantined";
  std::remove(target.c_str());
  if (std::rename(path.c_str(), target.c_str()) != 0) {
    return Status::IoError("cannot quarantine '" + path +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

/// Collects every regular file directly under `dir`. Traversal failures
/// (including mid-iteration ones, which the range-for idiom would throw
/// as filesystem_error) come back as IoError, never as an exception.
Status ListRegularFiles(const std::string& dir,
                        std::vector<std::string>* paths) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  const fs::directory_iterator end;
  // increment(ec) resets the iterator to end() on failure, so the loop
  // terminates and the error surfaces after it.
  for (; !ec && it != end; it.increment(ec)) {
    std::error_code type_ec;
    if (!it->is_regular_file(type_ec)) continue;
    paths->push_back(it->path().string());
  }
  if (ec) {
    return Status::IoError("cannot scan directory '" + dir +
                           "': " + ec.message());
  }
  return Status::OK();
}

}  // namespace

const char* ArtifactHealthName(ArtifactHealth health) {
  switch (health) {
    case ArtifactHealth::kClean:
      return "clean";
    case ArtifactHealth::kRepaired:
      return "repaired";
    case ArtifactHealth::kQuarantined:
      return "quarantined";
    case ArtifactHealth::kVersionSkew:
      return "version_skew";
  }
  return "unknown";
}

Result<ScrubOutcome> ScrubEventLogFile(const std::string& path,
                                       const ScrubOptions& options) {
  auto bytes = ReadFileBytes(path);
  CDT_RETURN_NOT_OK(bytes.status());
  const std::string& buffer = bytes.value();

  ScrubOutcome outcome;
  outcome.path = path;
  auto quarantine = [&](std::string reason) -> Result<ScrubOutcome> {
    outcome.health = ArtifactHealth::kQuarantined;
    outcome.detail = std::move(reason);
    CDT_RETURN_NOT_OK(QuarantineFile(path, options));
    return outcome;
  };

  if (buffer.size() < kMagicSize ||
      std::memcmp(buffer.data(), kLogMagic, kMagicSize) != 0) {
    return quarantine("bad_magic");
  }
  ByteReader header(std::string_view(buffer).substr(kMagicSize));
  std::uint64_t version = 0;
  if (!header.ReadVarint64(&version).ok()) {
    return quarantine("truncated_header");
  }
  if (version != kFormatVersion) {
    outcome.health = ArtifactHealth::kVersionSkew;
    outcome.detail = "format version " + std::to_string(version);
    return outcome;
  }

  // Same walk as EventLogWriter::OpenForAppend, but every fail-closed
  // verdict becomes a quarantine and a torn tail becomes a repair.
  std::size_t valid_end = kMagicSize + header.position();
  std::size_t pos = valid_end;
  bool saw_config = false;
  bool saw_footer = false;
  bool saw_rebase = false;
  std::int64_t base_round = 0;
  std::int64_t rounds = 0;
  std::uint32_t rolling_crc = 0;
  FooterInfo footer;
  bool torn = false;
  while (pos < buffer.size()) {
    if (saw_footer) return quarantine("records_after_footer");
    ByteReader reader(std::string_view(buffer).substr(pos));
    std::uint8_t type = 0;
    std::uint64_t length = 0;
    std::string_view payload;
    std::uint32_t stored_crc = 0;
    Status status = reader.ReadByte(&type);
    if (status.ok() &&
        (type < static_cast<std::uint8_t>(RecordType::kConfig) ||
         type > static_cast<std::uint8_t>(RecordType::kRebase))) {
      return quarantine("unknown_record_type");
    }
    if (status.ok()) status = reader.ReadVarint64(&length);
    if (status.ok() && length > kMaxPayloadSize) {
      return quarantine("oversized_payload");
    }
    if (status.ok()) {
      status = reader.ReadBytes(static_cast<std::size_t>(length), &payload);
    }
    if (status.ok()) status = reader.ReadFixed32(&stored_crc);
    if (!status.ok()) {
      torn = true;
      break;
    }
    std::uint32_t crc = Crc32(std::string_view(buffer).substr(pos, 1));
    crc = Crc32(payload, crc);
    if (crc != stored_crc) return quarantine("record_crc_mismatch");
    switch (static_cast<RecordType>(type)) {
      case RecordType::kConfig:
        if (saw_config) return quarantine("duplicate_config");
        saw_config = true;
        break;
      case RecordType::kRound:
        rolling_crc = Crc32(payload, rolling_crc);
        ++rounds;
        break;
      case RecordType::kSnapshotNote:
        break;
      case RecordType::kRebase: {
        if (!saw_config || saw_rebase || rounds != 0) {
          return quarantine("misplaced_rebase");
        }
        if (!DecodeRebasePayload(payload, &base_round).ok()) {
          return quarantine("bad_rebase");
        }
        saw_rebase = true;
        rounds = base_round;
        break;
      }
      case RecordType::kFooter:
        if (!DecodeFooterPayload(payload, &footer).ok()) {
          return quarantine("bad_footer");
        }
        saw_footer = true;
        break;
    }
    pos += reader.position();
    valid_end = pos;
  }

  if (!saw_config) {
    // Nothing recoverable survives without the config record.
    return quarantine("no_config");
  }
  if (saw_footer &&
      (footer.round_count != rounds || footer.rolling_crc != rolling_crc)) {
    return quarantine("footer_mismatch");
  }
  outcome.sealed = saw_footer;

  if (torn) {
    outcome.health = ArtifactHealth::kRepaired;
    outcome.truncated_bytes =
        static_cast<std::int64_t>(buffer.size() - valid_end);
    outcome.detail = "torn tail (" + std::to_string(outcome.truncated_bytes) +
                     " bytes)";
    if (options.repair &&
        ::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
      return Status::IoError("cannot truncate torn tail of '" + path +
                             "': " + std::strerror(errno));
    }
    return outcome;
  }
  outcome.health = ArtifactHealth::kClean;
  return outcome;
}

Result<ScrubOutcome> ScrubSnapshotFile(const std::string& path,
                                       const ScrubOptions& options) {
  ScrubOutcome outcome;
  outcome.path = path;
  auto snapshot = ReadSnapshotFile(path);
  if (snapshot.ok()) {
    outcome.health = ArtifactHealth::kClean;
    return outcome;
  }
  const Status& status = snapshot.status();
  switch (status.code()) {
    case util::StatusCode::kNotFound:
    case util::StatusCode::kIoError:
      return status;
    case util::StatusCode::kVersionMismatch:
      outcome.health = ArtifactHealth::kVersionSkew;
      outcome.detail = status.message();
      return outcome;
    default:
      // Snapshots are written atomically, so any damage is bit rot, not
      // a tear — there is no prefix worth saving.
      outcome.health = ArtifactHealth::kQuarantined;
      outcome.detail = "snapshot_corrupt";
      CDT_RETURN_NOT_OK(QuarantineFile(path, options));
      return outcome;
  }
}

Result<ScrubReport> ScrubWalDirectory(const std::string& dir,
                                      const ScrubOptions& options) {
  std::vector<std::string> files;
  CDT_RETURN_NOT_OK(ListRegularFiles(dir, &files));
  std::vector<std::string> logs;
  std::vector<std::string> snapshots;
  std::vector<std::string> temps;
  for (const std::string& path : files) {
    if (EndsWith(path, ".tmp")) {
      temps.push_back(path);
    } else if (EndsWith(path, ".cdtlog")) {
      logs.push_back(path);
    } else if (EndsWith(path, ".cdtsnap")) {
      snapshots.push_back(path);
    }
  }
  std::sort(temps.begin(), temps.end());
  std::sort(logs.begin(), logs.end());
  std::sort(snapshots.begin(), snapshots.end());

  ScrubReport report;
  for (const std::string& temp : temps) {
    ++report.orphan_temps_found;
    // Removing an orphan is a (safe) mutation all the same: report-only
    // mode must leave it in place, so the sweep rides the repair flag.
    if (options.repair && std::remove(temp.c_str()) == 0) {
      ++report.orphan_temps_removed;
    }
  }
  auto tally = [&report](ScrubOutcome outcome) {
    switch (outcome.health) {
      case ArtifactHealth::kClean:
        ++report.clean;
        break;
      case ArtifactHealth::kRepaired:
        ++report.repaired;
        break;
      case ArtifactHealth::kQuarantined:
        ++report.quarantined;
        ++report.quarantine_reasons[outcome.detail];
        break;
      case ArtifactHealth::kVersionSkew:
        ++report.version_skew;
        break;
    }
    report.files.push_back(std::move(outcome));
  };
  for (const std::string& path : logs) {
    auto outcome = ScrubEventLogFile(path, options);
    CDT_RETURN_NOT_OK(outcome.status());
    tally(std::move(outcome).value());
  }
  for (const std::string& path : snapshots) {
    auto outcome = ScrubSnapshotFile(path, options);
    CDT_RETURN_NOT_OK(outcome.status());
    tally(std::move(outcome).value());
  }
  return report;
}

Result<int> SweepOrphanTempFiles(const std::string& dir) {
  std::vector<std::string> files;
  CDT_RETURN_NOT_OK(ListRegularFiles(dir, &files));
  int removed = 0;
  for (const std::string& path : files) {
    if (EndsWith(path, ".tmp") && std::remove(path.c_str()) == 0) ++removed;
  }
  return removed;
}

}  // namespace persist
}  // namespace cdt
