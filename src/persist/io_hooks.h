// Deterministic I/O fault injection for the persistence layer.
//
// IoHooks generalizes the test-only AtomicWriteFile failure hook into a
// seedless, index-addressed fault shim: every instrumented I/O site asks
// the singleton whether the Nth write / fsync / rename / read should fail,
// and faults are armed over exact operation-index windows so chaos
// scenarios replay bit-for-bit across runs and machines. When nothing is
// armed the fast path is a single relaxed atomic load and no counters
// advance, so production builds pay nothing.
//
// Supported fault shapes:
//   - kWrite: fail with a simulated errno (ENOSPC, EIO, ...); optionally
//     emit a torn half-record first (`short_write`) so tail-repair paths
//     see realistic partial frames.
//   - kFsync / kRename: fail with a simulated errno. Injected
//     rename/fsync failures in AtomicWriteFile deliberately leave the
//     temp file behind (simulating a crash before cleanup) so the
//     orphan-sweep path is exercised.
//   - kRead: either fail with a simulated errno or flip one deterministic
//     bit in the returned bytes (read-side bit rot).

#ifndef CDT_PERSIST_IO_HOOKS_H_
#define CDT_PERSIST_IO_HOOKS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cdt {
namespace persist {

/// Instrumented operation classes. Each class has its own index counter.
enum class IoOp : int { kWrite = 0, kFsync = 1, kRename = 2, kRead = 3 };
inline constexpr int kNumIoOps = 4;

/// One armed fault: applies to ops of class `op` whose index falls in
/// `[from_index, from_index + count)`; `count == 0` means "forever from
/// from_index" (a permanent fault).
struct IoFault {
  IoOp op = IoOp::kWrite;
  std::uint64_t from_index = 0;
  std::uint64_t count = 1;
  /// errno the instrumented site simulates (ignored for bit rot).
  int error = 28;  // ENOSPC
  /// kWrite only: write roughly half the frame for real before failing.
  bool short_write = false;
  /// kRead only: when `error == 0`, flip this bit index (mod file size)
  /// in the returned bytes instead of failing the read.
  std::uint64_t bitrot_bit = 0;
};

/// What an instrumented site should do for the current operation.
struct IoDecision {
  int error = 0;  // 0 = proceed normally
  bool short_write = false;
  bool bitrot = false;
  std::uint64_t bitrot_bit = 0;
};

/// Process-wide fault-injection registry. Thread-safe; deterministic as
/// long as the instrumented operation sequence is deterministic (single
/// writer thread, scripted traffic).
class IoHooks {
 public:
  static IoHooks& Instance();

  /// Arms a fault window. Enables counting as a side effect.
  void Arm(const IoFault& fault);

  /// Enables op counting without arming any fault (calibration runs).
  void EnableCounting();

  /// Clears armed faults but keeps counters advancing.
  void ClearFaults();

  /// Clears faults AND counters and disables counting entirely.
  void Reset();

  /// Consults the registry for the next operation of class `op`,
  /// advancing that class's counter when enabled. Default decision is
  /// "proceed".
  IoDecision Check(IoOp op);

  /// Operations of class `op` observed since the last Reset.
  std::uint64_t ops_seen(IoOp op) const;

  /// Total faults injected since the last Reset.
  std::uint64_t faults_injected() const;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

 private:
  IoHooks() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::uint64_t counters_[kNumIoOps] = {0, 0, 0, 0};
  std::uint64_t injected_ = 0;
  std::vector<IoFault> faults_;
};

/// Applies a pending kRead bit-rot decision to freshly read bytes.
void ApplyBitRot(const IoDecision& decision, std::string* bytes);

}  // namespace persist
}  // namespace cdt

#endif  // CDT_PERSIST_IO_HOOKS_H_
