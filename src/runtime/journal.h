// Seller-departure journal: the runtime-owned sidecar WAL that makes
// leave/return events crash-recoverable without touching the engine's
// event-log format. Round records stay a pure function of (config, seed);
// the journal pins each activity flip to the round cursor it took effect
// at (`effect_round` = the engine's next_round when the flip was applied),
// so recovery can interleave re-application with tail replay:
//
//   entries with effect_round <= snapshot round are already inside the
//   snapshot's seller_active bitmap; entries past it are re-applied when
//   the rebuilt engine's cursor reaches them.
//
// File layout: [8-byte magic "CDTRTJNL"] [varint format version] then one
// fixed-frame record per entry — [type byte] [zigzag effect_round]
// [zigzag seller] [fixed32 CRC-32 of the preceding bytes]. Every append
// is flushed before the corresponding engine state can advance, and the
// reader tolerates a torn final record (the crash case) while failing
// closed on CRC mismatch in a complete one.

#ifndef CDT_RUNTIME_JOURNAL_H_
#define CDT_RUNTIME_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "runtime/event.h"
#include "util/status.h"

namespace cdt {
namespace runtime {

/// One journaled activity flip.
struct JournalEntry {
  /// kSellerLeave or kSellerReturn only.
  EventType type = EventType::kSellerLeave;
  /// The engine's next_round when the flip was applied: the first round
  /// whose coalition selection saw the new activity state.
  std::int64_t effect_round = 1;
  int seller = -1;
};

/// Parsed journal: complete entries in append order.
struct JournalContents {
  std::vector<JournalEntry> entries;
  /// True when a truncated final record was dropped (crash tear).
  bool torn_tail = false;
};

/// Reads `path`, validating magic/version and every record CRC. A missing
/// file is an empty journal (no flips ever happened); a torn tail is
/// absorbed and reported; corruption in a complete record fails closed.
util::Result<JournalContents> ReadJournal(const std::string& path);

/// Append-mode journal writer. Open() creates the file (with header) when
/// absent, otherwise validates the existing content and truncates a torn
/// final record before positioning at the end — the same writer serves
/// first-run and crash-recovery paths. Appends flush to the OS before
/// returning so the journal is never behind the engine state it explains.
class JournalWriter {
 public:
  static util::Result<std::unique_ptr<JournalWriter>> Open(
      const std::string& path);

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  util::Status Append(const JournalEntry& entry);

  /// fsync + close; idempotent. Errors are sticky like EventLogWriter's.
  util::Status Close();

  const std::string& path() const { return path_; }

 private:
  JournalWriter(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_;  // null once closed
  util::Status status_;
};

}  // namespace runtime
}  // namespace cdt

#endif  // CDT_RUNTIME_JOURNAL_H_
