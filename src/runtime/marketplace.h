// HostedMarketplace: one marketplace under runtime supervision — a live
// CmabHs run wired through the persistence layer so every settled round is
// write-ahead logged, checkpointed, and rebuildable after a crash.
//
// Per-marketplace WAL files, all under the service's wal_dir:
//
//   <id>.cdtlog   — event log (config + per-round records + footer)
//   <id>.cdtsnap  — latest engine snapshot, atomically rewritten
//   <id>.events   — seller leave/return journal (see journal.h)
//
// Recovery contract (the chaos harness asserts it byte-for-byte): Recover()
// rebuilds the engine as `snapshot + verified tail-replay`, re-applying
// journaled activity flips at the exact round cursors they originally took
// effect, then reattaches the log and journal in append mode — the resumed
// marketplace continues producing the same round bytes an uninterrupted
// run would have. A compacted (rebased) log replays only its tail past the
// base round and therefore requires its snapshot.
//
// Storage faults do not crash the marketplace: the WAL writers live behind
// a DurabilityGuard circuit breaker (durable → degraded → failed). Only a
// guard whose re-arm budget is exhausted quarantines the marketplace, and
// that transition is explicitly counted.

#ifndef CDT_RUNTIME_MARKETPLACE_H_
#define CDT_RUNTIME_MARKETPLACE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/cmab_hs.h"
#include "runtime/durability.h"
#include "runtime/event.h"
#include "runtime/journal.h"
#include "util/status.h"

namespace cdt {
namespace runtime {

/// WAL file locations for marketplace `id` under `wal_dir`.
std::string MarketplaceLogPath(const std::string& wal_dir,
                               const std::string& id);
std::string MarketplaceSnapshotPath(const std::string& wal_dir,
                                    const std::string& id);
std::string MarketplaceJournalPath(const std::string& wal_dir,
                                   const std::string& id);

class HostedMarketplace {
 public:
  enum class State {
    kActive,        // accepting and executing events
    kQuarantined,   // isolated after an engine error; events are shed
    kBudgetStopped, // consumer budget exhausted; round events are shed
    kDone,          // all configured rounds settled; round events are shed
    kClosed,        // WAL sealed (FinishWal ran); every event is shed
  };

  struct Options {
    /// Directory holding every marketplace's WAL files. Must exist.
    std::string wal_dir;
    /// Rounds between engine checkpoints; 0 disables snapshots (recovery
    /// then replays from round 1).
    std::int64_t snapshot_every = 0;
    /// Durability breaker / compaction knobs (see DurabilityGuard).
    DurabilityGuard::Tuning durability;
  };

  /// Admits a fresh marketplace: builds the run from `spec`, opens its WAL
  /// (truncating leftovers from a previous incarnation of the id) and
  /// starts recording.
  static util::Result<std::unique_ptr<HostedMarketplace>> Create(
      const std::string& id, const MarketplaceSpec& spec,
      const Options& options);

  /// Rebuilds a marketplace from its WAL after a crash: loads the torn
  /// log, restores the latest usable snapshot (or replays from round 1),
  /// re-applies journaled activity flips at their recorded cursors while
  /// byte-verifying the replayed tail, then reopens log + journal in
  /// append mode. A sealed log recovers into kClosed (read-only).
  static util::Result<std::unique_ptr<HostedMarketplace>> Recover(
      const std::string& id, const Options& options);

  /// Applies one event, running at most `max_rounds` trading rounds in
  /// this dispatch (deadline-bounded processing — the shard re-enqueues
  /// leftovers). `*rounds_remaining` reports the rounds still owed by a
  /// demand/tick event; state transitions (budget stop, completion) zero
  /// it. Event types that cannot apply in the current state are shed
  /// silently (OK, remaining 0) — the admission layer already counted
  /// them. An engine failure quarantines the marketplace and surfaces the
  /// error to the shard.
  util::Status ApplyEvent(const Event& event, std::int64_t max_rounds,
                          std::int64_t* rounds_remaining);

  /// Graceful drain: final snapshot, footer-sealed log, synced journal.
  /// Idempotent; the marketplace is kClosed afterwards.
  util::Status FinishWal();

  const std::string& id() const { return id_; }
  State state() const { return state_; }
  /// Rounds settled so far (the engine's cursor).
  std::int64_t rounds_settled() const {
    return run_->engine().current_round();
  }
  std::int64_t total_rounds() const { return run_->config().num_rounds; }
  const core::CmabHs& run() const { return *run_; }

  void Quarantine() { if (state_ == State::kActive) state_ = State::kQuarantined; }

  /// The durability breaker (null once kClosed via a sealed recovery).
  const DurabilityGuard* guard() const { return guard_; }

  /// "active", "quarantined", "budget_stopped", "done", "closed".
  static const char* StateName(State state);

 private:
  HostedMarketplace(std::string id, std::unique_ptr<core::CmabHs> run)
      : id_(std::move(id)), run_(std::move(run)) {}

  /// Runs up to `budget` rounds, updating state on budget stop or
  /// completion. Returns rounds actually settled via `*settled`.
  util::Status RunRounds(std::int64_t budget, std::int64_t* settled);

  /// Quarantines (with the durability-specific counter) when the guard's
  /// breaker exhausted its re-arm budget.
  void QuarantineIfGuardFailed();

  std::string id_;
  std::unique_ptr<core::CmabHs> run_;
  DurabilityGuard* guard_ = nullptr;  // owned by the engine (observer)
  State state_ = State::kActive;
};

}  // namespace runtime
}  // namespace cdt

#endif  // CDT_RUNTIME_MARKETPLACE_H_
