// MarketplaceService: the long-running front door of the runtime. Routes
// every event to the shard owning its marketplace (FNV-1a over the id),
// applies admission control before anything touches a queue, and owns the
// worker fleet plus its supervisor.
//
// Admission control, in order:
//   1. capacity gate  — max_marketplaces caps concurrent marketplaces
//                       (creates past the cap shed, reason "capacity");
//   2. state gate     — events for budget-stopped / done / quarantined /
//                       closed marketplaces shed immediately (reason =
//                       state name) without occupying a queue slot — the
//                       budget-aware extension of the engine's kBudgetStop;
//   3. bounded queue  — a full shard queue sheds per ShedPolicy:
//                       kRejectNewest drops the event (reason "overload"),
//                       kCoalesceTicks parks round ticks for merged
//                       execution later (nothing lost, "coalesced"),
//                       kBlock waits up to block_timeout for space, then
//                       sheds (reason "timeout").
//
// Every shed is counted in cdt_runtime_shed_total{reason} and in the
// per-reason map GetStats() returns, so overload behaviour is exact and
// testable, never silent.

#ifndef CDT_RUNTIME_SERVICE_H_
#define CDT_RUNTIME_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "market/faults.h"
#include "runtime/durability.h"
#include "runtime/event.h"
#include "runtime/shard.h"
#include "runtime/supervisor.h"
#include "util/status.h"

namespace cdt {
namespace runtime {

class MarketplaceService {
 public:
  enum class ShedPolicy { kRejectNewest, kCoalesceTicks, kBlock };

  struct Options {
    int num_shards = 4;
    std::size_t queue_capacity = 256;
    /// WAL directory (created if missing).
    std::string wal_dir;
    /// Rounds between per-marketplace checkpoints; 0 disables.
    std::int64_t snapshot_every = 0;
    /// Per-marketplace durability breaker / compaction knobs.
    DurabilityGuard::Tuning durability;
    /// Scrub the WAL directory before opening it: removes orphan .tmp
    /// files, truncates torn log tails, quarantines irreparable
    /// artifacts. Counted in cdt_persist_scrub_* metrics.
    bool scrub_on_start = true;
    std::int64_t max_rounds_per_dispatch = 64;
    ShedPolicy shed_policy = ShedPolicy::kRejectNewest;
    /// kBlock: how long Submit may wait for queue space.
    std::chrono::milliseconds block_timeout{100};
    /// Concurrent marketplaces the service admits; 0 = unlimited.
    int max_marketplaces = 0;
    /// Crash-loop breaker knobs (see ShardWorker::Options).
    market::RecoveryOptions recovery_breaker;
    std::chrono::milliseconds stall_threshold{500};
    /// Watchdog sweep period; 0 disables the background watchdog (tests
    /// drive supervisor().PollOnce() themselves).
    std::chrono::milliseconds watchdog_period{50};
    /// Start worker threads in Create. Off lets tests submit a burst
    /// single-threaded for exact admission accounting, then Start().
    bool autostart = true;
  };

  enum class Admission {
    kAccepted,   // enqueued to the owning shard
    kCoalesced,  // round tick parked for merged execution (not lost)
    kShed,       // dropped; reason counted
  };

  static util::Result<std::unique_ptr<MarketplaceService>> Create(
      Options options);
  ~MarketplaceService();
  MarketplaceService(const MarketplaceService&) = delete;
  MarketplaceService& operator=(const MarketplaceService&) = delete;

  /// Starts workers + watchdog (idempotent).
  void Start();

  /// Admission-controlled submit; never blocks beyond block_timeout.
  Admission Submit(Event event);

  /// Graceful shutdown: stop admitting, drain every queue (workers seal
  /// all WALs), stop the watchdog. Idempotent.
  void Drain();

  /// Owning shard of a marketplace id (FNV-1a 64 mod num_shards).
  int ShardFor(const std::string& marketplace) const;

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t coalesced_rounds = 0;
    /// Sheds by reason (admission- and worker-side combined).
    std::map<std::string, std::uint64_t> shed;
    std::uint64_t total_shed = 0;
    std::uint64_t events_processed = 0;
    std::uint64_t rounds_settled = 0;
    std::uint64_t restarts = 0;
    std::uint64_t stalls = 0;
    std::vector<ShardStats> shards;
    /// Startup-scrub results for this service's WAL directory.
    std::uint64_t scrub_repaired = 0;
    std::uint64_t scrub_quarantined = 0;
    std::uint64_t scrub_version_skew = 0;
    std::uint64_t scrub_orphans_removed = 0;
    /// Process-wide durability breaker totals (all services combined).
    DurabilityTotals durability;
  };
  Stats GetStats() const;

  /// Chaos/test access.
  ShardWorker& shard(int index) { return *shards_[index]; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  Supervisor& supervisor() { return *supervisor_; }
  StateDirectory& directory() { return directory_; }
  TickCoalescer& coalescer() { return coalescer_; }
  const Options& options() const { return options_; }

 private:
  explicit MarketplaceService(Options options);

  void CountShed(const std::string& reason);

  Options options_;
  TickCoalescer coalescer_;
  StateDirectory directory_;
  std::vector<std::unique_ptr<ShardWorker>> shards_;
  std::unique_ptr<Supervisor> supervisor_;

  std::atomic<bool> started_{false};
  std::atomic<bool> drained_{false};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  /// Concurrent-marketplace accounting for the capacity gate (counted at
  /// admission: creates in, closes out).
  std::atomic<int> admitted_marketplaces_{0};

  mutable std::mutex shed_mu_;
  std::map<std::string, std::uint64_t> shed_by_reason_;

  /// Startup-scrub tallies (set once in Create, before workers exist).
  std::uint64_t scrub_repaired_ = 0;
  std::uint64_t scrub_quarantined_ = 0;
  std::uint64_t scrub_version_skew_ = 0;
  std::uint64_t scrub_orphans_removed_ = 0;
};

}  // namespace runtime
}  // namespace cdt

#endif  // CDT_RUNTIME_SERVICE_H_
