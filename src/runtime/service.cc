#include "runtime/service.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <thread>
#include <utility>

#include "obs/telemetry.h"
#include "persist/scrub.h"

namespace cdt {
namespace runtime {

using util::Result;
using util::Status;

namespace {

/// mkdir -p: nested WAL paths are valid (e.g. per-run subdirectories).
Status EnsureDirectory(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (!ec && std::filesystem::is_directory(path)) return Status::OK();
  return Status::IoError("cannot create WAL directory '" + path + "': " +
                         (ec ? ec.message() : "not a directory"));
}

obs::Counter* ShedMetric(const std::string& reason) {
  return obs::registry().GetCounter(
      "cdt_runtime_shed_total",
      "Events shed by admission or workers, by reason", {{"reason", reason}});
}

/// cdt_persist carries no obs dependency, so the runtime exports the
/// scrub results on the persistence layer's behalf.
void CountScrub(const persist::ScrubReport& report) {
  auto files = [](const char* result) {
    return obs::registry().GetCounter(
        "cdt_persist_scrub_files_total",
        "WAL artifacts scrubbed at service startup, by result",
        {{"result", result}});
  };
  files("clean")->Add(static_cast<double>(report.clean));
  files("repaired")->Add(static_cast<double>(report.repaired));
  files("quarantined")->Add(static_cast<double>(report.quarantined));
  files("version_skew")->Add(static_cast<double>(report.version_skew));
  obs::registry()
      .GetCounter("cdt_persist_scrub_orphans_removed_total",
                  "Orphaned atomic-write temp files removed by the scrubber")
      ->Add(static_cast<double>(report.orphan_temps_removed));
}

}  // namespace

MarketplaceService::MarketplaceService(Options options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<MarketplaceService>> MarketplaceService::Create(
    Options options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (options.wal_dir.empty()) {
    return Status::InvalidArgument("MarketplaceService needs a wal_dir");
  }
  CDT_RETURN_NOT_OK(options.recovery_breaker.Validate());
  CDT_RETURN_NOT_OK(EnsureDirectory(options.wal_dir));

  std::unique_ptr<MarketplaceService> service(
      new MarketplaceService(std::move(options)));
  const Options& opts = service->options_;

  if (opts.scrub_on_start) {
    // Self-heal the WAL directory before any writer opens it: sweep
    // orphaned .tmp files, truncate torn log tails, quarantine anything
    // irreparable so recovery fails loudly (NotFound) instead of
    // replaying poison. Single-threaded here — no writer races.
    auto scrubbed = persist::ScrubWalDirectory(opts.wal_dir, {});
    CDT_RETURN_NOT_OK(scrubbed.status());
    const persist::ScrubReport& report = scrubbed.value();
    service->scrub_repaired_ = static_cast<std::uint64_t>(report.repaired);
    service->scrub_quarantined_ =
        static_cast<std::uint64_t>(report.quarantined);
    service->scrub_version_skew_ =
        static_cast<std::uint64_t>(report.version_skew);
    service->scrub_orphans_removed_ =
        static_cast<std::uint64_t>(report.orphan_temps_removed);
    CountScrub(report);
  }

  for (int i = 0; i < opts.num_shards; ++i) {
    ShardWorker::Options shard_options;
    shard_options.index = i;
    shard_options.queue_capacity = opts.queue_capacity;
    shard_options.marketplace.wal_dir = opts.wal_dir;
    shard_options.marketplace.snapshot_every = opts.snapshot_every;
    shard_options.marketplace.durability = opts.durability;
    shard_options.max_rounds_per_dispatch = opts.max_rounds_per_dispatch;
    shard_options.recovery_breaker = opts.recovery_breaker;
    shard_options.coalescer =
        opts.shed_policy == ShedPolicy::kCoalesceTicks ? &service->coalescer_
                                                       : nullptr;
    shard_options.directory = &service->directory_;
    service->shards_.push_back(
        std::make_unique<ShardWorker>(std::move(shard_options)));
  }
  std::vector<ShardWorker*> supervised;
  supervised.reserve(service->shards_.size());
  for (auto& shard : service->shards_) supervised.push_back(shard.get());
  Supervisor::Options supervisor_options;
  supervisor_options.stall_threshold = opts.stall_threshold;
  service->supervisor_ = std::make_unique<Supervisor>(
      std::move(supervised), supervisor_options);

  if (opts.autostart) service->Start();
  return service;
}

MarketplaceService::~MarketplaceService() { Drain(); }

void MarketplaceService::Start() {
  if (started_.exchange(true)) return;
  for (auto& shard : shards_) shard->Start();
  if (options_.watchdog_period.count() > 0) {
    supervisor_->StartWatchdog(options_.watchdog_period);
  }
}

int MarketplaceService::ShardFor(const std::string& marketplace) const {
  // FNV-1a 64: cheap, deterministic, stable across runs — the routing key
  // is part of the replay contract (same id → same shard → same queue).
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : marketplace) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<int>(hash % static_cast<std::uint64_t>(
                                     shards_.size()));
}

void MarketplaceService::CountShed(const std::string& reason) {
  ShedMetric(reason)->Increment();
  std::lock_guard<std::mutex> lock(shed_mu_);
  ++shed_by_reason_[reason];
}

MarketplaceService::Admission MarketplaceService::Submit(Event event) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (drained_.load(std::memory_order_acquire)) {
    CountShed("closed");
    return Admission::kShed;
  }

  // 1. Capacity gate.
  if (event.type == EventType::kCreateMarketplace) {
    if (event.spec == nullptr) {
      CountShed("invalid");
      return Admission::kShed;
    }
    if (options_.max_marketplaces > 0) {
      int current = admitted_marketplaces_.load(std::memory_order_relaxed);
      for (;;) {
        if (current >= options_.max_marketplaces) {
          CountShed("capacity");
          return Admission::kShed;
        }
        if (admitted_marketplaces_.compare_exchange_weak(
                current, current + 1, std::memory_order_relaxed)) {
          break;
        }
      }
    } else {
      admitted_marketplaces_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // 2. State gate — budget-aware backpressure: events addressed to a
  // marketplace that can no longer trade are shed before they cost a
  // queue slot.
  HostedMarketplace::State state;
  if (event.type != EventType::kCreateMarketplace &&
      directory_.Lookup(event.marketplace, &state) &&
      state != HostedMarketplace::State::kActive) {
    if (event.type == EventType::kCloseMarketplace &&
        state != HostedMarketplace::State::kClosed) {
      // Closes still flow: sealing a stopped marketplace's WAL is valid.
    } else {
      CountShed(state == HostedMarketplace::State::kBudgetStopped
                    ? "budget"
                    : HostedMarketplace::StateName(state));
      return Admission::kShed;
    }
  }

  // 3. Bounded queue + shed policy.
  const bool is_tick = event.type == EventType::kRoundTick ||
                       event.type == EventType::kConsumerDemand;
  const std::string marketplace = event.marketplace;
  const std::int64_t rounds =
      event.type == EventType::kRoundTick ? 1 : event.rounds;
  const bool is_create = event.type == EventType::kCreateMarketplace;
  const bool is_close = event.type == EventType::kCloseMarketplace;
  EventQueue& queue = shards_[static_cast<std::size_t>(
                                  ShardFor(marketplace))]
                          ->queue();

  EventQueue::PushResult pushed;
  if (options_.shed_policy == ShedPolicy::kBlock) {
    pushed = queue.PushWithTimeout(std::move(event),
                                   options_.block_timeout);
  } else {
    pushed = queue.TryPush(std::move(event));
  }

  switch (pushed) {
    case EventQueue::PushResult::kAccepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      if (is_close) {
        admitted_marketplaces_.fetch_sub(1, std::memory_order_relaxed);
      }
      return Admission::kAccepted;
    case EventQueue::PushResult::kClosed:
      if (is_create) {
        admitted_marketplaces_.fetch_sub(1, std::memory_order_relaxed);
      }
      CountShed("closed");
      return Admission::kShed;
    case EventQueue::PushResult::kFull:
      break;
  }

  // Queue full.
  if (is_create) {
    admitted_marketplaces_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (options_.shed_policy == ShedPolicy::kCoalesceTicks && is_tick) {
    coalescer_.Defer(marketplace, rounds);
    obs::registry()
        .GetCounter("cdt_runtime_ticks_coalesced_total",
                    "Round ticks parked for merged execution under "
                    "queue pressure")
        ->Add(static_cast<double>(rounds));
    return Admission::kCoalesced;
  }
  CountShed(options_.shed_policy == ShedPolicy::kBlock ? "timeout"
                                                       : "overload");
  return Admission::kShed;
}

void MarketplaceService::Drain() {
  if (drained_.exchange(true)) return;
  for (auto& shard : shards_) shard->RequestDrain();
  // A crashed shard would strand its queued events, and a shard can still
  // crash *during* the drain (after any single sweep): keep sweeping until
  // every worker has exited cleanly over an empty queue. The crash-loop
  // breaker sheds events of marketplaces that fail repeatedly, so each
  // restart makes progress; the deadline is a last-resort bound.
  if (supervisor_ != nullptr) {
    supervisor_->StopWatchdog();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    for (;;) {
      supervisor_->PollOnce();
      bool quiet = true;
      for (auto& shard : shards_) {
        if (shard->running() || shard->crashed() ||
            shard->queue().size() > 0) {
          quiet = false;
          break;
        }
      }
      if (quiet || std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  for (auto& shard : shards_) shard->Join();
}

MarketplaceService::Stats MarketplaceService::GetStats() const {
  Stats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.coalesced_rounds =
      static_cast<std::uint64_t>(coalescer_.total_deferred());
  {
    std::lock_guard<std::mutex> lock(shed_mu_);
    stats.shed = shed_by_reason_;
  }
  for (const auto& entry : stats.shed) stats.total_shed += entry.second;
  for (const auto& shard : shards_) {
    ShardStats shard_stats = shard->Stats();
    stats.events_processed += shard_stats.events_processed;
    stats.rounds_settled += shard_stats.rounds_settled;
    stats.total_shed += shard_stats.shed_by_worker;
    stats.shards.push_back(shard_stats);
  }
  if (supervisor_ != nullptr) {
    stats.restarts = supervisor_->total_restarts();
    stats.stalls = supervisor_->total_stalls();
  }
  stats.scrub_repaired = scrub_repaired_;
  stats.scrub_quarantined = scrub_quarantined_;
  stats.scrub_version_skew = scrub_version_skew_;
  stats.scrub_orphans_removed = scrub_orphans_removed_;
  stats.durability = GlobalDurabilityTotals();
  return stats;
}

}  // namespace runtime
}  // namespace cdt
