#include "runtime/durability.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

#include "market/trading_engine.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "persist/io_hooks.h"

namespace cdt {
namespace runtime {

using util::Result;
using util::Status;
using util::StatusCode;

namespace {

std::atomic<std::uint64_t> g_wal_failures{0};
std::atomic<std::uint64_t> g_degrades{0};
std::atomic<std::uint64_t> g_rearms{0};
std::atomic<std::uint64_t> g_failures{0};
std::atomic<std::uint64_t> g_compactions{0};
std::atomic<std::uint64_t> g_quarantines{0};

void Count(const char* name, const char* help,
           std::atomic<std::uint64_t>* total) {
  total->fetch_add(1, std::memory_order_relaxed);
  obs::registry().GetCounter(name, help, {})->Increment();
}

/// Storage failures feed the breaker; anything else (a round-numbering
/// bug, an already-finished writer) is a programming error that must
/// propagate loudly.
bool IsStorageFailure(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

}  // namespace

DurabilityTotals GlobalDurabilityTotals() {
  DurabilityTotals totals;
  totals.wal_failures = g_wal_failures.load(std::memory_order_relaxed);
  totals.degrades = g_degrades.load(std::memory_order_relaxed);
  totals.rearms = g_rearms.load(std::memory_order_relaxed);
  totals.failures = g_failures.load(std::memory_order_relaxed);
  totals.compactions = g_compactions.load(std::memory_order_relaxed);
  totals.quarantines = g_quarantines.load(std::memory_order_relaxed);
  return totals;
}

void CountDurabilityQuarantine() {
  Count("cdt_runtime_durability_quarantined_total",
        "Marketplaces quarantined after their durability breaker failed",
        &g_quarantines);
}

const char* DurabilityGuard::HealthName(Health health) {
  switch (health) {
    case Health::kDurable:
      return "durable";
    case Health::kDegraded:
      return "degraded";
    case Health::kFailed:
      return "failed";
  }
  return "unknown";
}

static Status ValidateOptions(const DurabilityGuard::Options& options) {
  if (options.log_path.empty()) {
    return Status::InvalidArgument("DurabilityGuard needs a log_path");
  }
  if (options.journal_path.empty()) {
    return Status::InvalidArgument("DurabilityGuard needs a journal_path");
  }
  if (options.snapshot_every < 0) {
    return Status::InvalidArgument("snapshot_every must be >= 0");
  }
  if (options.snapshot_every > 0 && options.snapshot_path.empty()) {
    return Status::InvalidArgument("snapshot_every > 0 needs a snapshot_path");
  }
  if (options.tuning.degrade_after_failures < 1) {
    return Status::InvalidArgument("degrade_after_failures must be >= 1");
  }
  if (options.tuning.rearm_initial_rounds < 1 ||
      options.tuning.rearm_max_rounds < options.tuning.rearm_initial_rounds) {
    return Status::InvalidArgument("re-arm backoff must satisfy 1 <= initial "
                                   "<= max");
  }
  if (options.tuning.compact_after_rounds < 0) {
    return Status::InvalidArgument("compact_after_rounds must be >= 0");
  }
  if (options.tuning.compact_after_rounds > 0 &&
      options.snapshot_path.empty()) {
    return Status::InvalidArgument(
        "compaction needs a snapshot_path (the rebased log resumes from "
        "the snapshot)");
  }
  return Status::OK();
}

Result<std::unique_ptr<DurabilityGuard>> DurabilityGuard::Create(
    Options options, const core::MechanismConfig& config,
    const core::PolicySpec& policy) {
  CDT_RETURN_NOT_OK(ValidateOptions(options));
  auto log = persist::EventLogWriter::Open(options.log_path, config, policy);
  CDT_RETURN_NOT_OK(log.status());
  auto journal = JournalWriter::Open(options.journal_path);
  CDT_RETURN_NOT_OK(journal.status());
  std::unique_ptr<DurabilityGuard> guard(
      new DurabilityGuard(std::move(options), config, policy));
  guard->config_crc_ = log.value()->config_crc();
  guard->log_ = std::move(log).value();
  guard->journal_ = std::move(journal).value();
  return guard;
}

Result<std::unique_ptr<DurabilityGuard>> DurabilityGuard::Attach(
    Options options, const core::MechanismConfig& config,
    const core::PolicySpec& policy) {
  CDT_RETURN_NOT_OK(ValidateOptions(options));
  auto log = persist::EventLogWriter::OpenForAppend(options.log_path);
  CDT_RETURN_NOT_OK(log.status());
  auto journal = JournalWriter::Open(options.journal_path);
  CDT_RETURN_NOT_OK(journal.status());
  std::unique_ptr<DurabilityGuard> guard(
      new DurabilityGuard(std::move(options), config, policy));
  guard->config_crc_ = log.value()->config_crc();
  guard->last_rebase_round_ =
      log.value()->rounds_written();  // conservative: never compacted
  guard->log_ = std::move(log).value();
  guard->journal_ = std::move(journal).value();
  return guard;
}

Status DurabilityGuard::OnRound(const market::TradingEngine& engine,
                                const market::RoundReport& report) {
  switch (health_) {
    case Health::kFailed:
      return Status::OK();  // the host quarantines; nothing to write
    case Health::kDegraded:
      if (report.round >= next_rearm_round_) TryRearm(engine, report.round);
      return Status::OK();
    case Health::kDurable:
      break;
  }
  Status status = AppendDurable(engine, report);
  if (!status.ok()) {
    if (!IsStorageFailure(status)) return status;
    RecordWalFailure(status, report.round);
    return Status::OK();
  }
  consecutive_failures_ = 0;
  if (tuning().compact_after_rounds > 0 &&
      report.round - last_rebase_round_ >= tuning().compact_after_rounds) {
    Status compacted = Compact(engine, report.round);
    if (!compacted.ok()) {
      if (!IsStorageFailure(compacted)) return compacted;
      // Compact dismantles the writers before it can fail — the outgoing
      // segment is sealed (retention) or already dropped by Rebase — so
      // there is nothing left to append to in place. Open the breaker
      // now instead of merely counting toward the threshold: a guard
      // left kDurable here would touch dead writers next round.
      RecordWalFailure(compacted, report.round);
      Degrade(report.round);
    }
  }
  return Status::OK();
}

Status DurabilityGuard::AppendDurable(const market::TradingEngine& engine,
                                      const market::RoundReport& report) {
  CDT_RETURN_NOT_OK(log_->AppendRound(report));
  const bool checkpoint = options_.snapshot_every > 0 &&
                          report.round % options_.snapshot_every == 0;
  if (checkpoint) {
    // Snapshot first, note second: the log never claims a snapshot that
    // did not reach disk (same discipline as RunRecorder).
    CDT_RETURN_NOT_OK(persist::WriteSnapshotFile(
        options_.snapshot_path, config_crc_, engine.CaptureSnapshot()));
    CDT_RETURN_NOT_OK(log_->AppendSnapshotNote(report.round));
  }
  return Status::OK();
}

void DurabilityGuard::Journal(const JournalEntry& entry) {
  if (journal_ == nullptr) return;  // degraded: rides in the next snapshot
  Status status = journal_->Append(entry);
  if (status.ok()) return;
  last_error_ = status;
  ++wal_failures_;
  Count("cdt_runtime_durability_wal_failures_total",
        "WAL write failures absorbed by durability guards",
        &g_wal_failures);
  // The flip is applied but not journaled: the current log can no longer
  // reproduce the engine, so continuing to append rounds would poison
  // recovery silently. Degrade now; the re-arm snapshot's activity
  // bitmap carries the flip instead.
  Degrade(entry.effect_round - 1);
}

Status DurabilityGuard::CheckpointNow(const market::TradingEngine& engine) {
  if (health_ != Health::kDurable) return Status::OK();
  if (options_.snapshot_path.empty()) return Status::OK();
  const std::int64_t round = engine.current_round();
  if (round < 1 || round != log_->rounds_written()) return Status::OK();
  Status status = persist::WriteSnapshotFile(
      options_.snapshot_path, config_crc_, engine.CaptureSnapshot());
  if (status.ok()) status = log_->AppendSnapshotNote(round);
  if (!status.ok() && IsStorageFailure(status)) {
    RecordWalFailure(status, round);
    return Status::OK();
  }
  return status;
}

Status DurabilityGuard::Rebase(const market::TradingEngine& engine,
                               std::int64_t round) {
  if (options_.snapshot_path.empty()) {
    return Status::FailedPrecondition(
        "cannot rebase '" + options_.log_path +
        "' without a snapshot path (snapshots are disabled)");
  }
  log_.reset();
  journal_.reset();
  // The snapshot must land before the rebased log exists: a crash in
  // between leaves the old log + new snapshot, which still recovers.
  CDT_RETURN_NOT_OK(persist::WriteSnapshotFile(
      options_.snapshot_path, config_crc_, engine.CaptureSnapshot()));
  auto log = persist::EventLogWriter::OpenRebased(options_.log_path, config_,
                                                  policy_, round);
  CDT_RETURN_NOT_OK(log.status());
  if (round >= 1) {
    CDT_RETURN_NOT_OK(log.value()->AppendSnapshotNote(round));
  }
  // Journaled flips all have effect_round <= round, so they are inside
  // the snapshot's activity bitmap — the journal restarts empty.
  std::remove(options_.journal_path.c_str());
  auto journal = JournalWriter::Open(options_.journal_path);
  CDT_RETURN_NOT_OK(journal.status());
  log_ = std::move(log).value();
  journal_ = std::move(journal).value();
  last_rebase_round_ = round;
  return Status::OK();
}

Status DurabilityGuard::Compact(const market::TradingEngine& engine,
                                std::int64_t round) {
  if (tuning().retain_compacted) {
    // Seal the outgoing segment so the retained artifact is a valid,
    // footer-complete log in its own right.
    CDT_RETURN_NOT_OK(log_->Finish());
    // Past this point the writer is sealed and can never accept another
    // append: any failure below must surface as a storage failure so
    // OnRound degrades (dropping the dead writer) rather than retrying.
    const std::string retained = options_.log_path + ".old";
    std::remove(retained.c_str());
    const persist::IoDecision rename_fault =
        persist::IoHooks::Instance().Check(persist::IoOp::kRename);
    if (rename_fault.error != 0) {
      errno = rename_fault.error;
      return Status::IoError("cannot retain compacted segment as '" +
                             retained + "': injected rename fault");
    }
    if (std::rename(options_.log_path.c_str(), retained.c_str()) != 0) {
      return Status::IoError("cannot retain compacted segment as '" +
                             retained + "'");
    }
  }
  CDT_RETURN_NOT_OK(Rebase(engine, round));
  ++compactions_;
  Count("cdt_runtime_durability_compactions_total",
        "Snapshot-compactions (log rebased onto its snapshot)",
        &g_compactions);
  return Status::OK();
}

void DurabilityGuard::TryRearm(const market::TradingEngine& engine,
                               std::int64_t round) {
  if (tuning().max_rearm_attempts > 0 &&
      rearm_attempts_ >= tuning().max_rearm_attempts) {
    MarkFailed();
    return;
  }
  ++rearm_attempts_;
  Status status = Rebase(engine, round);
  if (status.ok()) {
    health_ = Health::kDurable;
    consecutive_failures_ = 0;
    ++rearms_;
    Count("cdt_runtime_durability_rearms_total",
          "Degraded marketplaces restored to full durability",
          &g_rearms);
    return;
  }
  last_error_ = status;
  ++wal_failures_;
  Count("cdt_runtime_durability_wal_failures_total",
        "WAL write failures absorbed by durability guards",
        &g_wal_failures);
  if (tuning().max_rearm_attempts > 0 &&
      rearm_attempts_ >= tuning().max_rearm_attempts) {
    MarkFailed();
    return;
  }
  rearm_backoff_ = std::min(rearm_backoff_ * 2, tuning().rearm_max_rounds);
  next_rearm_round_ = round + rearm_backoff_;
}

void DurabilityGuard::RecordWalFailure(const Status& status,
                                       std::int64_t round) {
  last_error_ = status;
  ++wal_failures_;
  Count("cdt_runtime_durability_wal_failures_total",
        "WAL write failures absorbed by durability guards",
        &g_wal_failures);
  // Failed atomic writes may strand our own temp file (ENOSPC mid-write,
  // simulated crash): clear this marketplace's stem immediately. The
  // directory-wide sweep runs at service startup, where no writer races.
  if (!options_.snapshot_path.empty()) {
    std::remove((options_.snapshot_path + ".tmp").c_str());
  }
  std::remove((options_.log_path + ".tmp").c_str());
  if (++consecutive_failures_ >= tuning().degrade_after_failures) {
    Degrade(round);
  }
}

void DurabilityGuard::Degrade(std::int64_t round) {
  if (health_ != Health::kDurable) return;
  health_ = Health::kDegraded;
  ++degrades_;
  Count("cdt_runtime_durability_degraded_total",
        "Durability breakers opened (marketplace trading without a WAL)",
        &g_degrades);
  // Drop the poisoned writers: sticky errors make in-place retries
  // futile, and re-arm opens fresh files anyway.
  log_.reset();
  journal_.reset();
  rearm_attempts_ = 0;
  rearm_backoff_ = tuning().rearm_initial_rounds;
  next_rearm_round_ = round + rearm_backoff_;
}

void DurabilityGuard::MarkFailed() {
  if (health_ == Health::kFailed) return;
  health_ = Health::kFailed;
  Count("cdt_runtime_durability_failed_total",
        "Durability breakers that exhausted their re-arm budget",
        &g_failures);
}

Status DurabilityGuard::Finish(const market::TradingEngine& engine) {
  switch (health_) {
    case Health::kDurable: {
      Status status = CheckpointNow(engine);
      if (health_ != Health::kDurable) {
        // The final checkpoint itself tripped the breaker.
        return last_error_;
      }
      Status finish = log_->Finish();
      if (status.ok()) status = finish;
      Status closed = journal_->Close();
      if (status.ok()) status = closed;
      return status;
    }
    case Health::kDegraded: {
      // One last probe outside the backoff schedule: if the fault has
      // cleared, the drain still ends in a sealed, recoverable WAL.
      Status status = Rebase(engine, engine.current_round());
      if (!status.ok()) {
        last_error_ = status;
        return status;
      }
      health_ = Health::kDurable;
      ++rearms_;
      Count("cdt_runtime_durability_rearms_total",
            "Degraded marketplaces restored to full durability",
            &g_rearms);
      Status finish = log_->Finish();
      Status closed = journal_->Close();
      return !finish.ok() ? finish : closed;
    }
    case Health::kFailed:
      return last_error_.ok()
                 ? Status::FailedPrecondition("durability breaker failed")
                 : last_error_;
  }
  return Status::Internal("unreachable durability health state");
}

DurabilityGuard::Stats DurabilityGuard::stats() const {
  Stats stats;
  stats.health = health_;
  stats.wal_failures = wal_failures_;
  stats.degrades = degrades_;
  stats.rearms = rearms_;
  stats.compactions = compactions_;
  stats.last_error = last_error_;
  return stats;
}

}  // namespace runtime
}  // namespace cdt
