#include "runtime/supervisor.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace cdt {
namespace runtime {

Supervisor::Supervisor(std::vector<ShardWorker*> shards, Options options)
    : options_(options),
      shards_(std::move(shards)),
      in_stall_(shards_.size(), false) {}

Supervisor::~Supervisor() { StopWatchdog(); }

Supervisor::SweepReport Supervisor::PollOnce() {
  std::lock_guard<std::mutex> lock(sweep_mu_);
  SweepReport report;
  obs::MetricsRegistry& registry = obs::registry();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardWorker* shard = shards_[i];
    const obs::LabelSet shard_label = {
        {"shard", std::to_string(shard->index())}};

    if (shard->crashed()) {
      in_stall_[i] = false;
      if (options_.restart_crashed) {
        shard->Restart();
        ++report.restarted;
        total_restarts_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }

    const auto age = shard->heartbeat_age();
    registry
        .GetGauge("cdt_runtime_heartbeat_age_seconds",
                  "Age of the shard worker's latest heartbeat", shard_label)
        ->Set(static_cast<double>(age.count()) * 1e-3);
    const bool stalled =
        shard->running() && age > options_.stall_threshold;
    if (stalled && !in_stall_[i]) {
      ++report.stalled;
      total_stalls_.fetch_add(1, std::memory_order_relaxed);
      registry
          .GetCounter("cdt_runtime_stalls_total",
                      "Stall episodes detected by the watchdog",
                      shard_label)
          ->Increment();
    }
    in_stall_[i] = stalled;
    if (stalled) ++report.currently_stalled;
  }
  return report;
}

void Supervisor::StartWatchdog(std::chrono::milliseconds period) {
  if (watchdog_.joinable()) return;
  stop_watchdog_.store(false, std::memory_order_release);
  watchdog_ = std::thread([this, period] {
    while (!stop_watchdog_.load(std::memory_order_acquire)) {
      PollOnce();
      std::this_thread::sleep_for(period);
    }
  });
}

void Supervisor::StopWatchdog() {
  if (!watchdog_.joinable()) return;
  stop_watchdog_.store(true, std::memory_order_release);
  watchdog_.join();
}

}  // namespace runtime
}  // namespace cdt
