#include "runtime/journal.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "persist/atomic_io.h"
#include "persist/codec.h"
#include "persist/io_hooks.h"

namespace cdt {
namespace runtime {

using persist::ByteReader;
using persist::Crc32;
using util::Result;
using util::Status;

namespace {

constexpr char kJournalMagic[9] = "CDTRTJNL";
constexpr std::size_t kMagicSize = 8;
constexpr std::uint64_t kJournalVersion = 1;

bool ValidEntryType(std::uint8_t type) {
  return type == static_cast<std::uint8_t>(EventType::kSellerLeave) ||
         type == static_cast<std::uint8_t>(EventType::kSellerReturn);
}

Status WriteError(const std::string& path) {
  return Status::IoError("journal write to '" + path +
                         "' failed: " + std::strerror(errno));
}

void EncodeEntry(const JournalEntry& entry, std::string* out) {
  persist::PutByte(out, static_cast<std::uint8_t>(entry.type));
  persist::PutZigzag64(out, entry.effect_round);
  persist::PutZigzag64(out, entry.seller);
  persist::PutFixed32(out, Crc32(*out));
}

/// Walks the journal body, filling `contents` and reporting where the
/// valid prefix ends (for the writer's torn-tail truncation).
Status ScanJournal(const std::string& path, const std::string& buffer,
                   JournalContents* contents, std::size_t* valid_end) {
  if (buffer.size() < kMagicSize ||
      std::memcmp(buffer.data(), kJournalMagic, kMagicSize) != 0) {
    return Status::ParseError("'" + path + "' is not a CDT runtime journal");
  }
  ByteReader header(std::string_view(buffer).substr(kMagicSize));
  std::uint64_t version;
  CDT_RETURN_NOT_OK(header.ReadVarint64(&version));
  if (version != kJournalVersion) {
    return Status::VersionMismatch(
        "journal '" + path + "' has format version " +
        std::to_string(version) + "; this build reads only version " +
        std::to_string(kJournalVersion));
  }
  std::size_t pos = kMagicSize + header.position();
  *valid_end = pos;
  while (pos < buffer.size()) {
    ByteReader reader(std::string_view(buffer).substr(pos));
    std::uint8_t type;
    JournalEntry entry;
    std::int64_t seller = 0;
    std::uint32_t stored_crc = 0;
    Status status = reader.ReadByte(&type);
    if (status.ok() && !ValidEntryType(type)) {
      return Status::Corruption("journal '" + path +
                                "' has invalid entry type byte " +
                                std::to_string(int{type}));
    }
    if (status.ok()) status = reader.ReadZigzag64(&entry.effect_round);
    if (status.ok()) status = reader.ReadZigzag64(&seller);
    std::size_t crc_covered = reader.position();
    if (status.ok()) status = reader.ReadFixed32(&stored_crc);
    if (!status.ok()) {
      // Ran off the end mid-record: the crash tear. Complete entries
      // before it stand; the writer truncates the fragment away.
      contents->torn_tail = true;
      return Status::OK();
    }
    std::uint32_t crc =
        Crc32(std::string_view(buffer).substr(pos, crc_covered));
    if (crc != stored_crc) {
      return Status::Corruption("journal '" + path +
                                "' entry CRC mismatch at offset " +
                                std::to_string(pos));
    }
    entry.type = static_cast<EventType>(type);
    entry.seller = static_cast<int>(seller);
    contents->entries.push_back(entry);
    pos += reader.position();
    *valid_end = pos;
  }
  return Status::OK();
}

}  // namespace

Result<JournalContents> ReadJournal(const std::string& path) {
  auto bytes = persist::ReadFileBytes(path);
  if (bytes.status().code() == util::StatusCode::kNotFound) {
    return JournalContents{};  // never written: no flips happened
  }
  CDT_RETURN_NOT_OK(bytes.status());
  JournalContents contents;
  std::size_t valid_end = 0;
  CDT_RETURN_NOT_OK(ScanJournal(path, bytes.value(), &contents, &valid_end));
  return contents;
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path) {
  auto bytes = persist::ReadFileBytes(path);
  if (bytes.status().code() == util::StatusCode::kNotFound) {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) {
      return Status::IoError("cannot create journal '" + path +
                             "': " + std::strerror(errno));
    }
    std::string header(kJournalMagic, kMagicSize);
    persist::PutVarint64(&header, kJournalVersion);
    if (std::fwrite(header.data(), 1, header.size(), file) !=
            header.size() ||
        std::fflush(file) != 0) {
      std::fclose(file);
      return WriteError(path);
    }
    return std::unique_ptr<JournalWriter>(new JournalWriter(path, file));
  }
  CDT_RETURN_NOT_OK(bytes.status());

  JournalContents contents;
  std::size_t valid_end = 0;
  CDT_RETURN_NOT_OK(ScanJournal(path, bytes.value(), &contents, &valid_end));
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return Status::IoError("cannot reopen journal '" + path +
                           "': " + std::strerror(errno));
  }
  std::unique_ptr<JournalWriter> writer(new JournalWriter(path, file));
  if (::ftruncate(fileno(file), static_cast<off_t>(valid_end)) != 0 ||
      std::fseek(file, static_cast<long>(valid_end), SEEK_SET) != 0) {
    return WriteError(path);
  }
  return writer;
}

Status JournalWriter::Append(const JournalEntry& entry) {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal already closed");
  }
  if (entry.type != EventType::kSellerLeave &&
      entry.type != EventType::kSellerReturn) {
    return Status::InvalidArgument("journal entries are leave/return only");
  }
  std::string frame;
  EncodeEntry(entry, &frame);
  const persist::IoDecision write_fault =
      persist::IoHooks::Instance().Check(persist::IoOp::kWrite);
  if (write_fault.error != 0) {
    if (write_fault.short_write && frame.size() > 1) {
      (void)std::fwrite(frame.data(), 1, frame.size() / 2, file_);
      (void)std::fflush(file_);
    }
    errno = write_fault.error;
    status_ = WriteError(path_);
    return status_;
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    status_ = WriteError(path_);
    return status_;
  }
  return Status::OK();
}

Status JournalWriter::Close() {
  if (!status_.ok()) return status_;
  if (file_ == nullptr) return Status::OK();
  Status status;
  const persist::IoDecision fsync_fault =
      persist::IoHooks::Instance().Check(persist::IoOp::kFsync);
  if (fsync_fault.error != 0) {
    errno = fsync_fault.error;
    status = WriteError(path_);
  } else if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    status = WriteError(path_);
  }
  if (std::fclose(file_) != 0 && status.ok()) {
    status = WriteError(path_);
  }
  file_ = nullptr;
  status_ = status;
  return status_;
}

}  // namespace runtime
}  // namespace cdt
