// Bounded MPSC event queue: many producer threads (the service's admission
// path), one consumer (the shard worker). The bound is the overload-control
// primitive — TryPush never blocks and never grows the queue past its
// capacity, so shedding decisions happen at admission time and memory per
// shard is fixed. The high-water mark is tracked so tests (and the chaos
// harness) can assert the cap was never violated.

#ifndef CDT_RUNTIME_QUEUE_H_
#define CDT_RUNTIME_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

#include "runtime/event.h"

namespace cdt {
namespace runtime {

class EventQueue {
 public:
  enum class PushResult {
    kAccepted,  // enqueued
    kFull,      // at capacity — caller sheds or coalesces per policy
    kClosed,    // queue closed (drain in progress) — caller sheds
  };

  enum class PopResult {
    kEvent,    // *out holds the next event
    kTimeout,  // nothing arrived within the wait — beat the heartbeat
    kDone,     // closed and drained — worker exits
  };

  explicit EventQueue(std::size_t capacity);

  /// Non-blocking bounded push (any thread).
  PushResult TryPush(Event event);

  /// Blocking push with a deadline (the kBlock backpressure policy):
  /// waits for space up to `timeout`, then reports kFull.
  PushResult PushWithTimeout(Event event, std::chrono::milliseconds timeout);

  /// Consumer side: waits up to `timeout` for an event. kDone only after
  /// Close() AND the queue emptied — a drain processes every accepted
  /// event before the worker exits.
  PopResult Pop(Event* out, std::chrono::milliseconds timeout);

  /// No further pushes accepted; consumers drain what was admitted.
  void Close();

  bool closed() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Deepest the queue ever got — asserted <= capacity by the overload
  /// tests and the chaos harness.
  std::size_t high_water() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Event> events_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace runtime
}  // namespace cdt

#endif  // CDT_RUNTIME_QUEUE_H_
