#include "runtime/marketplace.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "market/trading_engine.h"
#include "persist/event_log.h"
#include "persist/replay.h"

namespace cdt {
namespace runtime {

using util::Result;
using util::Status;
using util::StatusCode;

std::string MarketplaceLogPath(const std::string& wal_dir,
                               const std::string& id) {
  return wal_dir + "/" + id + ".cdtlog";
}

std::string MarketplaceSnapshotPath(const std::string& wal_dir,
                                    const std::string& id) {
  return wal_dir + "/" + id + ".cdtsnap";
}

std::string MarketplaceJournalPath(const std::string& wal_dir,
                                   const std::string& id) {
  return wal_dir + "/" + id + ".events";
}

const char* HostedMarketplace::StateName(State state) {
  switch (state) {
    case State::kActive: return "active";
    case State::kQuarantined: return "quarantined";
    case State::kBudgetStopped: return "budget_stopped";
    case State::kDone: return "done";
    case State::kClosed: return "closed";
  }
  return "unknown";
}

Result<std::unique_ptr<HostedMarketplace>> HostedMarketplace::Create(
    const std::string& id, const MarketplaceSpec& spec,
    const Options& options) {
  if (options.wal_dir.empty()) {
    return Status::InvalidArgument("HostedMarketplace needs a wal_dir");
  }
  auto run = core::CmabHs::Create(spec.config, spec.policy);
  CDT_RETURN_NOT_OK(run.status());

  // A fresh incarnation of the id owns its WAL stem outright: stale
  // snapshot/journal files from a previous life would otherwise pair with
  // the new log and corrupt a later recovery.
  std::remove(MarketplaceSnapshotPath(options.wal_dir, id).c_str());
  std::remove(MarketplaceJournalPath(options.wal_dir, id).c_str());

  DurabilityGuard::Options guard_options;
  guard_options.log_path = MarketplaceLogPath(options.wal_dir, id);
  guard_options.journal_path = MarketplaceJournalPath(options.wal_dir, id);
  guard_options.snapshot_every = options.snapshot_every;
  if (options.snapshot_every > 0 ||
      options.durability.compact_after_rounds > 0) {
    guard_options.snapshot_path = MarketplaceSnapshotPath(options.wal_dir, id);
  }
  guard_options.tuning = options.durability;
  auto guard = DurabilityGuard::Create(std::move(guard_options), spec.config,
                                       spec.policy);
  CDT_RETURN_NOT_OK(guard.status());

  std::unique_ptr<HostedMarketplace> marketplace(
      new HostedMarketplace(id, std::move(run).value()));
  marketplace->guard_ = guard.value().get();
  marketplace->run_->mutable_engine().AddObserver(std::move(guard).value());
  return marketplace;
}

Result<std::unique_ptr<HostedMarketplace>> HostedMarketplace::Recover(
    const std::string& id, const Options& options) {
  const std::string log_path = MarketplaceLogPath(options.wal_dir, id);
  const std::string snap_path = MarketplaceSnapshotPath(options.wal_dir, id);
  const std::string journal_path =
      MarketplaceJournalPath(options.wal_dir, id);

  auto loaded = persist::LoadRecordedRun(log_path, /*allow_torn_tail=*/true);
  CDT_RETURN_NOT_OK(loaded.status());
  const persist::RecordedRun& recorded = loaded.value();
  const std::int64_t base_round = recorded.base_round;
  const std::int64_t last_round =
      base_round + static_cast<std::int64_t>(recorded.rounds.size());

  auto journal_read = ReadJournal(journal_path);
  CDT_RETURN_NOT_OK(journal_read.status());
  const std::vector<JournalEntry>& flips = journal_read.value().entries;

  // Prefer snapshot + tail-replay; any snapshot problem (missing file,
  // config mismatch, restore-unsafe policy) degrades to a full replay —
  // slower, never wrong. A rebased (compacted) log holds no rounds before
  // its base, so there the snapshot is mandatory.
  std::unique_ptr<core::CmabHs> run;
  std::int64_t resume_round = 0;
  auto snap = persist::ReadSnapshotFile(snap_path);
  if (snap.ok() && snap.value().config_crc == recorded.config_crc) {
    const std::int64_t snap_round = snap.value().snapshot.next_round - 1;
    if (snap_round >= base_round && snap_round <= last_round) {
      auto candidate = core::CmabHs::Create(recorded.config, recorded.policy);
      CDT_RETURN_NOT_OK(candidate.status());
      if (candidate.value()
              ->mutable_engine()
              .RestoreSnapshot(snap.value().snapshot)
              .ok()) {
        run = std::move(candidate).value();
        resume_round = snap_round;
      }
    }
  }
  if (run == nullptr) {
    if (base_round > 0) {
      return Status::Corruption(
          "marketplace '" + id + "' has a log rebased at round " +
          std::to_string(base_round) +
          " but no usable snapshot — rounds before the base are "
          "unrecoverable");
    }
    auto candidate = core::CmabHs::Create(recorded.config, recorded.policy);
    CDT_RETURN_NOT_OK(candidate.status());
    run = std::move(candidate).value();
  }

  // Interleaved, byte-verified tail replay: journaled activity flips
  // re-apply exactly when the cursor reaches their effect round, so every
  // re-executed coalition sees the activity state the original saw.
  // Flips already inside the snapshot's bitmap (effect_round <= the
  // snapshot's round) are skipped; re-application ignores per-flip status
  // like the live path does (deterministic refusals refuse again here).
  std::size_t next_flip = 0;
  while (next_flip < flips.size() &&
         flips[next_flip].effect_round <= resume_round) {
    ++next_flip;
  }
  for (std::int64_t round = resume_round + 1; round <= last_round; ++round) {
    while (next_flip < flips.size() &&
           flips[next_flip].effect_round == round) {
      const JournalEntry& flip = flips[next_flip];
      (void)run->mutable_engine().SetSellerActive(
          flip.seller, flip.type == EventType::kSellerReturn);
      ++next_flip;
    }
    auto report = run->RunRound();
    CDT_RETURN_NOT_OK(report.status());
    if (persist::CanonicalRoundBytes(report.value()) !=
        recorded
            .round_payloads[static_cast<std::size_t>(round - base_round - 1)]) {
      return Status::Internal(
          "marketplace '" + id + "' recovery diverged at round " +
          std::to_string(round) +
          " — WAL does not reproduce under this build");
    }
  }
  // Flips applied after the last settled round but before the crash.
  while (next_flip < flips.size()) {
    const JournalEntry& flip = flips[next_flip];
    (void)run->mutable_engine().SetSellerActive(
        flip.seller, flip.type == EventType::kSellerReturn);
    ++next_flip;
  }

  std::unique_ptr<HostedMarketplace> marketplace(
      new HostedMarketplace(id, std::move(run)));
  if (recorded.sealed) {
    // Cleanly finished before the crash: nothing to append, read-only.
    marketplace->state_ = State::kClosed;
    return marketplace;
  }

  DurabilityGuard::Options guard_options;
  guard_options.log_path = log_path;
  guard_options.journal_path = journal_path;
  guard_options.snapshot_every = options.snapshot_every;
  if (options.snapshot_every > 0 ||
      options.durability.compact_after_rounds > 0) {
    guard_options.snapshot_path = snap_path;
  }
  guard_options.tuning = options.durability;
  auto guard = DurabilityGuard::Attach(std::move(guard_options),
                                       recorded.config, recorded.policy);
  CDT_RETURN_NOT_OK(guard.status());
  marketplace->guard_ = guard.value().get();
  marketplace->run_->mutable_engine().AddObserver(std::move(guard).value());

  if (resume_round == 0 && options.snapshot_every > 0 && last_round > 0) {
    // Full replay because the snapshot was missing or unusable: restore the
    // snapshot now so the next crash does not pay the full replay again.
    // Storage failures here feed the breaker, never fail the recovery.
    CDT_RETURN_NOT_OK(
        marketplace->guard_->CheckpointNow(marketplace->run_->engine()));
  }

  if (marketplace->rounds_settled() >= marketplace->total_rounds()) {
    marketplace->state_ = State::kDone;
  }
  return marketplace;
}

Status HostedMarketplace::RunRounds(std::int64_t budget,
                                    std::int64_t* settled) {
  *settled = 0;
  while (*settled < budget) {
    if (rounds_settled() >= total_rounds()) {
      state_ = State::kDone;
      return Status::OK();
    }
    auto report = run_->RunRound();
    if (!report.ok()) {
      if (report.status().code() == StatusCode::kFailedPrecondition &&
          run_->engine().budget_exhausted()) {
        state_ = State::kBudgetStopped;
        return Status::OK();
      }
      return report.status();
    }
    ++*settled;
  }
  if (rounds_settled() >= total_rounds()) state_ = State::kDone;
  return Status::OK();
}

Status HostedMarketplace::ApplyEvent(const Event& event,
                                     std::int64_t max_rounds,
                                     std::int64_t* rounds_remaining) {
  *rounds_remaining = 0;
  switch (event.type) {
    case EventType::kCreateMarketplace:
      return Status::OK();  // creation happened when this object was built
    case EventType::kCloseMarketplace:
      return FinishWal();
    case EventType::kSellerLeave:
    case EventType::kSellerReturn: {
      if (state_ != State::kActive) return Status::OK();  // shed
      // WAL discipline: journal first, then mutate. Re-application during
      // recovery reaches the same engine state, so a deterministic
      // refusal here refuses identically there. A journal failure no
      // longer quarantines — the guard absorbs it by degrading (the flip
      // then rides in the re-arm snapshot's activity bitmap).
      JournalEntry entry;
      entry.type = event.type;
      entry.effect_round = rounds_settled() + 1;
      entry.seller = event.seller;
      if (guard_ != nullptr) guard_->Journal(entry);
      Status status = run_->mutable_engine().SetSellerActive(
          event.seller, event.type == EventType::kSellerReturn);
      if (!status.ok() &&
          status.code() != StatusCode::kFailedPrecondition &&
          status.code() != StatusCode::kInvalidArgument &&
          status.code() != StatusCode::kOutOfRange) {
        Quarantine();
        return status;
      }
      QuarantineIfGuardFailed();
      return Status::OK();
    }
    case EventType::kRoundTick:
    case EventType::kConsumerDemand: {
      if (state_ != State::kActive) return Status::OK();  // shed
      const std::int64_t want =
          event.type == EventType::kRoundTick
              ? 1
              : std::max<std::int64_t>(0, event.rounds);
      const std::int64_t chunk =
          max_rounds > 0 ? std::min(want, max_rounds) : want;
      std::int64_t settled = 0;
      Status status = RunRounds(chunk, &settled);
      if (!status.ok()) {
        Quarantine();
        return status;
      }
      QuarantineIfGuardFailed();
      if (state_ == State::kActive) *rounds_remaining = want - settled;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown runtime event type");
}

void HostedMarketplace::QuarantineIfGuardFailed() {
  if (guard_ == nullptr || state_ != State::kActive) return;
  if (guard_->health() != DurabilityGuard::Health::kFailed) return;
  CountDurabilityQuarantine();
  Quarantine();
}

Status HostedMarketplace::FinishWal() {
  if (state_ == State::kClosed) return Status::OK();
  Status status;
  if (guard_ != nullptr) {
    // Final checkpoint + footer seal + journal sync; a degraded guard
    // makes one last rebase attempt so a cleared fault still drains to a
    // sealed, recoverable WAL.
    status = guard_->Finish(run_->engine());
  }
  state_ = State::kClosed;
  return status;
}

}  // namespace runtime
}  // namespace cdt
