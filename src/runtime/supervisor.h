// Supervisor: the watchdog over a fleet of shard workers. Each sweep
// restarts crashed shards (their marketplaces rebuild lazily from WALs)
// and flags stalled ones — a shard whose heartbeat has not moved within
// the stall threshold while it is supposedly running. Stalls are
// detected and counted, never killed: a stalled thread cannot be safely
// terminated from outside, and the chaos harness's injected stalls end on
// their own, which is exactly the "slow but alive" case the heartbeat
// age distinguishes from a crash.
//
// PollOnce() is the whole policy — tests drive it directly for
// determinism; StartWatchdog() runs it on a background cadence for the
// live service.

#ifndef CDT_RUNTIME_SUPERVISOR_H_
#define CDT_RUNTIME_SUPERVISOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/shard.h"

namespace cdt {
namespace runtime {

class Supervisor {
 public:
  struct Options {
    /// Heartbeat age past which a running shard counts as stalled.
    std::chrono::milliseconds stall_threshold{500};
    /// Restart crashed shards on sweep (off lets tests inspect the
    /// wreckage before recovery).
    bool restart_crashed = true;
  };

  /// What one sweep did.
  struct SweepReport {
    int restarted = 0;
    /// Shards newly entering the stalled state this sweep.
    int stalled = 0;
    /// Shards currently stalled (entered this sweep or earlier).
    int currently_stalled = 0;
  };

  /// Borrows the shards; they must outlive the supervisor.
  Supervisor(std::vector<ShardWorker*> shards, Options options);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// One watchdog sweep: restart crashed shards, update stall flags and
  /// the per-shard heartbeat-age gauges.
  SweepReport PollOnce();

  /// Runs PollOnce every `period` on a background thread.
  void StartWatchdog(std::chrono::milliseconds period);
  void StopWatchdog();

  std::uint64_t total_restarts() const {
    return total_restarts_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_stalls() const {
    return total_stalls_.load(std::memory_order_relaxed);
  }

 private:
  Options options_;
  std::vector<ShardWorker*> shards_;
  /// Serializes sweeps (the watchdog thread vs. test-driven PollOnce).
  std::mutex sweep_mu_;
  /// Sticky per-shard stall flag: a stall is counted once per episode.
  std::vector<bool> in_stall_;

  std::atomic<std::uint64_t> total_restarts_{0};
  std::atomic<std::uint64_t> total_stalls_{0};

  std::thread watchdog_;
  std::atomic<bool> stop_watchdog_{false};
};

}  // namespace runtime
}  // namespace cdt

#endif  // CDT_RUNTIME_SUPERVISOR_H_
