#include "runtime/queue.h"

#include <utility>

namespace cdt {
namespace runtime {

EventQueue::EventQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

EventQueue::PushResult EventQueue::TryPush(Event event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (events_.size() >= capacity_) return PushResult::kFull;
    events_.push_back(std::move(event));
    if (events_.size() > high_water_) high_water_ = events_.size();
  }
  not_empty_.notify_one();
  return PushResult::kAccepted;
}

EventQueue::PushResult EventQueue::PushWithTimeout(
    Event event, std::chrono::milliseconds timeout) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_full_.wait_for(lock, timeout, [this] {
          return closed_ || events_.size() < capacity_;
        })) {
      return PushResult::kFull;
    }
    if (closed_) return PushResult::kClosed;
    events_.push_back(std::move(event));
    if (events_.size() > high_water_) high_water_ = events_.size();
  }
  not_empty_.notify_one();
  return PushResult::kAccepted;
}

EventQueue::PopResult EventQueue::Pop(Event* out,
                                      std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!not_empty_.wait_for(lock, timeout,
                           [this] { return closed_ || !events_.empty(); })) {
    return PopResult::kTimeout;
  }
  if (events_.empty()) return PopResult::kDone;  // closed and drained
  *out = std::move(events_.front());
  events_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return PopResult::kEvent;
}

void EventQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool EventQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t EventQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t EventQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace runtime
}  // namespace cdt
