// DurabilityGuard: the per-marketplace durability circuit breaker.
//
// The guard owns a marketplace's WAL writers (event log + seller-flip
// journal) and sits on the engine as a RoundObserver. Storage failures no
// longer crash the shard; instead the guard walks an explicit
// health-state machine:
//
//   kDurable   — every settled round is appended + checkpointed; the
//                recovery contract (snapshot + byte-verified tail replay)
//                holds in full.
//   kDegraded  — repeated WAL failures tripped the breaker (or a journal
//                append failed, which would silently poison recovery).
//                The poisoned writers are dropped and trading CONTINUES
//                WITHOUT durability. Re-arm probes run on a capped
//                exponential round backoff: each probe writes a fresh
//                snapshot of the whole campaign state and swings in a
//                rebased log (see EventLogWriter::OpenRebased), restoring
//                durability without replaying the lost window. Rounds
//                settled while degraded are not recoverable after a crash
//                — that is the honest trade against killing the shard.
//   kFailed    — the re-arm budget is exhausted; the host quarantines the
//                marketplace (explicitly counted, never silently wrong).
//
// The same snapshot-then-rebase move doubles as snapshot-compaction: at a
// configured round cadence the guard rewrites the log to start at the
// snapshot round, bounding per-marketplace log growth (and therefore
// ENOSPC pressure) with an optional retained, footer-sealed predecessor
// segment (<log>.old).
//
// This is the ReliabilityTracker pattern (market/faults.h) applied to
// storage, but round-counted instead of wall-clock so chaos runs are
// deterministic.

#ifndef CDT_RUNTIME_DURABILITY_H_
#define CDT_RUNTIME_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/config.h"
#include "market/invariants.h"
#include "persist/event_log.h"
#include "runtime/journal.h"
#include "util/status.h"

namespace cdt {
namespace runtime {

/// Process-wide durability totals, aggregated across every guard (and
/// mirrored in cdt_runtime_durability_* metrics) for health export.
struct DurabilityTotals {
  std::uint64_t wal_failures = 0;
  std::uint64_t degrades = 0;
  std::uint64_t rearms = 0;
  std::uint64_t failures = 0;
  std::uint64_t compactions = 0;
  std::uint64_t quarantines = 0;
};
DurabilityTotals GlobalDurabilityTotals();

/// Counted by the host when a kFailed guard forces a quarantine.
void CountDurabilityQuarantine();

class DurabilityGuard final : public market::RoundObserver {
 public:
  enum class Health { kDurable, kDegraded, kFailed };
  static const char* HealthName(Health health);

  /// Breaker / compaction knobs. All thresholds are in rounds or
  /// failure counts — never wall-clock — to keep chaos deterministic.
  struct Tuning {
    /// Consecutive failed rounds (append or checkpoint) before the
    /// breaker opens and the guard degrades.
    int degrade_after_failures = 3;
    /// First re-arm probe fires this many rounds after degrading...
    std::int64_t rearm_initial_rounds = 4;
    /// ...doubling per failed probe, capped here.
    std::int64_t rearm_max_rounds = 64;
    /// Failed probes before kFailed (0 = probe forever).
    int max_rearm_attempts = 0;
    /// Compact (snapshot-then-rebase) once the log holds this many
    /// rounds past its base. 0 disables compaction.
    std::int64_t compact_after_rounds = 0;
    /// Keep the sealed outgoing segment as <log_path>.old on compaction.
    bool retain_compacted = false;
  };

  struct Options {
    std::string log_path;
    std::string snapshot_path;  // empty only when snapshot_every == 0
    std::string journal_path;
    std::int64_t snapshot_every = 0;
    Tuning tuning;
  };

  struct Stats {
    Health health = Health::kDurable;
    std::uint64_t wal_failures = 0;
    std::uint64_t degrades = 0;
    std::uint64_t rearms = 0;
    std::uint64_t compactions = 0;
    util::Status last_error;
  };

  /// Fresh marketplace: creates the log (header + config) and journal.
  static util::Result<std::unique_ptr<DurabilityGuard>> Create(
      Options options, const core::MechanismConfig& config,
      const core::PolicySpec& policy);

  /// Crash recovery: reopens an existing unsealed log and journal in
  /// append mode. `config`/`policy` must be the recorded ones (they
  /// parameterize later re-arm rebases).
  static util::Result<std::unique_ptr<DurabilityGuard>> Attach(
      Options options, const core::MechanismConfig& config,
      const core::PolicySpec& policy);

  /// RoundObserver: appends/checkpoints when durable, absorbs storage
  /// failures into the breaker, runs re-arm probes while degraded and
  /// compaction at cadence. Only non-storage errors (a round-numbering
  /// bug, say) propagate and fail the round.
  util::Status OnRound(const market::TradingEngine& engine,
                       const market::RoundReport& report) override;

  /// Journals a seller flip. Absorbing: a journal failure while durable
  /// degrades immediately (an unjournaled flip would otherwise poison
  /// recovery silently); while degraded/failed the flip simply rides in
  /// the next re-arm snapshot's activity bitmap.
  void Journal(const JournalEntry& entry);

  /// Writes a snapshot + note now when durable and the log is at the
  /// engine's round (used to restore full durability right after a
  /// full-replay recovery). Storage failures feed the breaker; only
  /// non-storage errors propagate.
  util::Status CheckpointNow(const market::TradingEngine& engine);

  /// Graceful drain. Durable: final checkpoint + footer seal + journal
  /// sync. Degraded: one last snapshot-and-rebase attempt so a cleared
  /// fault still drains to a sealed WAL. Failed: returns the breaker's
  /// last error.
  util::Status Finish(const market::TradingEngine& engine);

  Health health() const { return health_; }
  Stats stats() const;
  std::int64_t last_rebase_round() const { return last_rebase_round_; }

 private:
  DurabilityGuard(Options options, const core::MechanismConfig& config,
                  const core::PolicySpec& policy)
      : options_(std::move(options)), config_(config), policy_(policy) {}

  const Tuning& tuning() const { return options_.tuning; }

  util::Status AppendDurable(const market::TradingEngine& engine,
                             const market::RoundReport& report);
  /// Snapshot the full campaign state, swing in a rebased log starting
  /// at `round`, reset the journal. The core of re-arm and compaction.
  util::Status Rebase(const market::TradingEngine& engine,
                      std::int64_t round);
  util::Status Compact(const market::TradingEngine& engine,
                       std::int64_t round);
  void TryRearm(const market::TradingEngine& engine, std::int64_t round);
  void RecordWalFailure(const util::Status& status, std::int64_t round);
  void Degrade(std::int64_t round);
  void MarkFailed();

  Options options_;
  core::MechanismConfig config_;
  core::PolicySpec policy_;
  // Invariant: health_ == kDurable implies both writers are live. Every
  // path that dismantles them (Rebase, Compact) either swings in fresh
  // writers or leaves the guard degraded/failed — never kDurable with a
  // null writer.
  std::unique_ptr<persist::EventLogWriter> log_;
  std::unique_ptr<JournalWriter> journal_;
  std::uint32_t config_crc_ = 0;

  Health health_ = Health::kDurable;
  int consecutive_failures_ = 0;
  int rearm_attempts_ = 0;
  std::int64_t rearm_backoff_ = 0;
  std::int64_t next_rearm_round_ = 0;
  std::int64_t last_rebase_round_ = 0;

  std::uint64_t wal_failures_ = 0;
  std::uint64_t degrades_ = 0;
  std::uint64_t rearms_ = 0;
  std::uint64_t compactions_ = 0;
  util::Status last_error_;
};

}  // namespace runtime
}  // namespace cdt

#endif  // CDT_RUNTIME_DURABILITY_H_
