#include "runtime/shard.h"

#include <algorithm>
#include <utility>

#include "obs/telemetry.h"
#include "util/status.h"

namespace cdt {
namespace runtime {

using util::Status;
using util::StatusCode;

namespace {

std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Service-wide shed counter, labelled by reason (shared with service.cc
/// via the registry — same name + labels resolves to the same handle).
obs::Counter* ShedCounter(const char* reason) {
  return obs::registry().GetCounter(
      "cdt_runtime_shed_total",
      "Events shed by admission or workers, by reason",
      {{"reason", reason}});
}

}  // namespace

// --- TickCoalescer ------------------------------------------------------

void TickCoalescer::Defer(const std::string& marketplace,
                          std::int64_t rounds) {
  if (rounds <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  pending_[marketplace] += rounds;
  total_deferred_ += rounds;
}

std::int64_t TickCoalescer::Claim(const std::string& marketplace) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(marketplace);
  if (it == pending_.end()) return 0;
  const std::int64_t rounds = it->second;
  pending_.erase(it);
  return rounds;
}

std::int64_t TickCoalescer::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto& entry : pending_) total += entry.second;
  return total;
}

std::int64_t TickCoalescer::total_deferred() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_deferred_;
}

// --- StateDirectory -----------------------------------------------------

void StateDirectory::Publish(const std::string& marketplace,
                             HostedMarketplace::State state) {
  std::lock_guard<std::mutex> lock(mu_);
  states_[marketplace] = state;
}

bool StateDirectory::Lookup(const std::string& marketplace,
                            HostedMarketplace::State* state) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(marketplace);
  if (it == states_.end()) return false;
  *state = it->second;
  return true;
}

int StateDirectory::CountInState(HostedMarketplace::State state) const {
  std::lock_guard<std::mutex> lock(mu_);
  int count = 0;
  for (const auto& entry : states_) {
    if (entry.second == state) ++count;
  }
  return count;
}

// --- ShardWorker --------------------------------------------------------

ShardWorker::ShardWorker(Options options)
    : options_(std::move(options)), queue_(options_.queue_capacity) {
  const obs::LabelSet shard_label = {
      {"shard", std::to_string(options_.index)}};
  obs::MetricsRegistry& registry = obs::registry();
  events_metric_ = registry.GetCounter(
      "cdt_runtime_events_total", "Events processed by the shard worker",
      shard_label);
  rounds_metric_ = registry.GetCounter(
      "cdt_runtime_rounds_total", "Trading rounds settled by the shard",
      shard_label);
  errors_metric_ = registry.GetCounter(
      "cdt_runtime_event_errors_total",
      "Events whose application failed (marketplace quarantined)",
      shard_label);
  recoveries_metric_ = registry.GetCounter(
      "cdt_runtime_recoveries_total",
      "Marketplaces rebuilt from their WAL after a crash", shard_label);
  queue_depth_metric_ = registry.GetGauge(
      "cdt_runtime_queue_depth", "Events waiting in the shard queue",
      shard_label);
  marketplaces_metric_ = registry.GetGauge(
      "cdt_runtime_marketplaces_active",
      "Live marketplaces owned by the shard", shard_label);
  quarantined_metric_ = registry.GetGauge(
      "cdt_runtime_marketplaces_quarantined",
      "Marketplaces isolated after an engine failure", shard_label);
  dispatch_metric_ = registry.GetHistogram(
      "cdt_runtime_event_dispatch_seconds",
      "Wall time spent applying one event", obs::DefaultLatencyBuckets(),
      shard_label);
  Beat();
}

ShardWorker::~ShardWorker() {
  RequestDrain();
  Join();
}

void ShardWorker::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  Join();
  crashed_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  Beat();
  thread_ = std::thread([this] { Run(); });
}

void ShardWorker::RequestDrain() { queue_.Close(); }

void ShardWorker::Join() {
  if (thread_.joinable()) thread_.join();
}

void ShardWorker::Restart() {
  if (!crashed_.load(std::memory_order_acquire)) return;
  Join();
  restarts_.fetch_add(1, std::memory_order_relaxed);
  obs::registry()
      .GetCounter("cdt_runtime_restarts_total",
                  "Crashed shard workers restarted by the supervisor",
                  {{"shard", std::to_string(options_.index)}})
      ->Increment();
  Start();
}

std::chrono::milliseconds ShardWorker::heartbeat_age() const {
  const std::int64_t last = last_beat_ns_.load(std::memory_order_acquire);
  const std::int64_t age_ns = SteadyNowNs() - last;
  return std::chrono::milliseconds(std::max<std::int64_t>(0, age_ns) /
                                   1000000);
}

void ShardWorker::ArmKillAfter(std::uint64_t events) {
  kill_after_.store(events, std::memory_order_release);
}

void ShardWorker::ArmStallAfter(std::uint64_t events,
                                std::chrono::milliseconds duration) {
  stall_ms_.store(duration.count(), std::memory_order_release);
  stall_after_.store(events, std::memory_order_release);
}

ShardStats ShardWorker::Stats() const {
  ShardStats stats;
  stats.index = options_.index;
  stats.running = running();
  stats.crashed = crashed();
  stats.queue_depth = queue_.size();
  stats.queue_high_water = queue_.high_water();
  stats.events_processed = events_processed_.load(std::memory_order_relaxed);
  stats.rounds_settled = rounds_settled_.load(std::memory_order_relaxed);
  stats.event_errors = event_errors_.load(std::memory_order_relaxed);
  stats.shed_by_worker = shed_by_worker_.load(std::memory_order_relaxed);
  stats.recoveries = recoveries_.load(std::memory_order_relaxed);
  stats.restarts = restarts_.load(std::memory_order_relaxed);
  return stats;
}

void ShardWorker::Beat() {
  beats_.fetch_add(1, std::memory_order_release);
  last_beat_ns_.store(SteadyNowNs(), std::memory_order_release);
}

void ShardWorker::PublishState(const std::string& id,
                               HostedMarketplace::State state) {
  if (options_.directory != nullptr) options_.directory->Publish(id, state);
}

market::ReliabilityTracker* ShardWorker::BreakerFor(const std::string& id) {
  auto it = breakers_.find(id);
  if (it == breakers_.end()) {
    it = breakers_
             .emplace(id, std::make_unique<market::ReliabilityTracker>(
                              1, options_.recovery_breaker))
             .first;
  }
  return it->second.get();
}

HostedMarketplace* ShardWorker::RecoverMarketplace(const std::string& id) {
  market::ReliabilityTracker* breaker = BreakerFor(id);
  const auto seq = static_cast<std::int64_t>(
      events_processed_.load(std::memory_order_relaxed));
  if (!breaker->Available(0, seq)) {
    // Crash-looping marketplace cooling down: shed instead of burning the
    // worker on recovery attempts that keep failing.
    breaker->RecordQuarantineDrop(0);
    ShedCounter("crashloop")->Increment();
    shed_by_worker_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  std::chrono::milliseconds backoff = options_.recovery_backoff;
  Status status;
  for (int attempt = 0; attempt < std::max(1, options_.recovery_attempts);
       ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, options_.recovery_backoff_cap);
      Beat();
    }
    auto recovered = HostedMarketplace::Recover(id, options_.marketplace);
    if (recovered.ok()) {
      breaker->RecordDelivery(0, seq, /*partial=*/false);
      recoveries_.fetch_add(1, std::memory_order_relaxed);
      recoveries_metric_->Increment();
      HostedMarketplace* marketplace = recovered.value().get();
      marketplaces_[id] = std::move(recovered).value();
      PublishState(id, marketplace->state());
      return marketplace;
    }
    status = recovered.status();
    // Only IO errors are worth retrying — a parse error or divergence is
    // deterministic and will fail identically on every attempt.
    if (status.code() != StatusCode::kIoError) break;
  }
  breaker->RecordFault(0, seq, market::FaultKind::kSettlementFailure);
  if (status.code() == StatusCode::kNotFound ||
      status.code() == StatusCode::kIoError) {
    ShedCounter("unknown")->Increment();
  } else {
    ShedCounter("unrecoverable")->Increment();
  }
  shed_by_worker_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void ShardWorker::ProcessEvent(const Event& event) {
  const std::int64_t start_ns = SteadyNowNs();
  auto it = marketplaces_.find(event.marketplace);
  HostedMarketplace* marketplace =
      it != marketplaces_.end() ? it->second.get() : nullptr;

  if (marketplace == nullptr) {
    if (event.type == EventType::kCreateMarketplace) {
      if (event.spec == nullptr) {
        ShedCounter("invalid")->Increment();
        shed_by_worker_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      auto created = HostedMarketplace::Create(event.marketplace,
                                               *event.spec,
                                               options_.marketplace);
      if (!created.ok()) {
        event_errors_.fetch_add(1, std::memory_order_relaxed);
        errors_metric_->Increment();
        ShedCounter("create_failed")->Increment();
        return;
      }
      marketplaces_[event.marketplace] = std::move(created).value();
      PublishState(event.marketplace, HostedMarketplace::State::kActive);
      marketplaces_metric_->Set(static_cast<double>(marketplaces_.size()));
      return;
    }
    // Lazy WAL recovery: unknown id, but its durable state may be on
    // disk from before a crash.
    marketplace = RecoverMarketplace(event.marketplace);
    if (marketplace == nullptr) return;
    marketplaces_metric_->Set(static_cast<double>(marketplaces_.size()));
  } else if (event.type == EventType::kCreateMarketplace) {
    ShedCounter("duplicate")->Increment();
    shed_by_worker_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (marketplace->state() != HostedMarketplace::State::kActive &&
      event.type != EventType::kCloseMarketplace) {
    ShedCounter(HostedMarketplace::StateName(marketplace->state()))
        ->Increment();
    shed_by_worker_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Merge ticks the admission path parked while this shard's queue was
  // full (kCoalesceTicks policy) into this dispatch.
  Event to_apply = event;
  if (options_.coalescer != nullptr &&
      (event.type == EventType::kRoundTick ||
       event.type == EventType::kConsumerDemand)) {
    const std::int64_t parked =
        options_.coalescer->Claim(event.marketplace);
    if (parked > 0) {
      to_apply.type = EventType::kConsumerDemand;
      to_apply.rounds =
          (event.type == EventType::kRoundTick ? 1 : event.rounds) + parked;
    }
  }

  const std::int64_t before = marketplace->rounds_settled();
  std::int64_t remaining = 0;
  Status status = marketplace->ApplyEvent(
      to_apply, options_.max_rounds_per_dispatch, &remaining);
  // Deadline-bounded processing: large demands run in chunks with a
  // heartbeat between each, so the watchdog can tell "busy" from "hung".
  while (status.ok() && remaining > 0) {
    Beat();
    Event continuation = to_apply;
    continuation.type = EventType::kConsumerDemand;
    continuation.rounds = remaining;
    status = marketplace->ApplyEvent(
        continuation, options_.max_rounds_per_dispatch, &remaining);
  }
  const std::int64_t settled = marketplace->rounds_settled() - before;
  if (settled > 0) {
    rounds_settled_.fetch_add(static_cast<std::uint64_t>(settled),
                              std::memory_order_relaxed);
    rounds_metric_->Add(static_cast<double>(settled));
  }
  if (!status.ok()) {
    event_errors_.fetch_add(1, std::memory_order_relaxed);
    errors_metric_->Increment();
  }
  PublishState(event.marketplace, marketplace->state());
  if (marketplace->state() == HostedMarketplace::State::kClosed) {
    marketplaces_.erase(event.marketplace);
    marketplaces_metric_->Set(static_cast<double>(marketplaces_.size()));
  }
  if (options_.directory != nullptr) {
    quarantined_metric_->Set(static_cast<double>(
        options_.directory->CountInState(
            HostedMarketplace::State::kQuarantined)));
  }
  dispatch_metric_->Record(
      static_cast<double>(SteadyNowNs() - start_ns) * 1e-9);
}

void ShardWorker::Run() {
  for (;;) {
    Event event;
    const EventQueue::PopResult popped =
        queue_.Pop(&event, options_.pop_timeout);
    Beat();
    queue_depth_metric_->Set(static_cast<double>(queue_.size()));
    if (popped == EventQueue::PopResult::kDone) break;
    if (popped == EventQueue::PopResult::kTimeout) continue;

    // Chaos: a one-shot stall before this event (watchdog sees a stale
    // heartbeat but no crash).
    const std::uint64_t processed =
        events_processed_.load(std::memory_order_relaxed);
    if (stall_after_.load(std::memory_order_acquire) != 0 &&
        processed + 1 == stall_after_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          stall_ms_.load(std::memory_order_acquire)));
      stall_after_.store(0, std::memory_order_release);
    }

    ProcessEvent(event);
    events_processed_.fetch_add(1, std::memory_order_relaxed);
    events_metric_->Increment();
    Beat();

    // Chaos: simulated crash at an event boundary — the event above was
    // fully applied (and WAL-logged); in-memory state dies, WALs stay
    // torn on disk, queued events survive for the restarted worker.
    const std::uint64_t kill_after =
        kill_after_.load(std::memory_order_acquire);
    if (kill_after != 0 &&
        events_processed_.load(std::memory_order_relaxed) >= kill_after) {
      kill_after_.store(0, std::memory_order_release);
      marketplaces_.clear();
      breakers_.clear();
      crashed_.store(true, std::memory_order_release);
      running_.store(false, std::memory_order_release);
      return;
    }
  }

  // Graceful drain: seal every live marketplace's WAL (final snapshot +
  // footer) so the next process generation recovers cleanly.
  for (auto& entry : marketplaces_) {
    const Status status = entry.second->FinishWal();
    if (!status.ok()) {
      event_errors_.fetch_add(1, std::memory_order_relaxed);
      errors_metric_->Increment();
    }
    PublishState(entry.first, entry.second->state());
  }
  marketplaces_.clear();
  marketplaces_metric_->Set(0.0);
  running_.store(false, std::memory_order_release);
}

}  // namespace runtime
}  // namespace cdt
