// Event vocabulary of the marketplace runtime: everything a client can ask
// a hosted marketplace to do arrives as one of these, routed to the owning
// shard's bounded queue and applied in FIFO order by the shard worker.
//
// Determinism contract: a marketplace's economics are a pure function of
// its (config, policy) pair and the subsequence of events addressed to it.
// Shards preserve per-marketplace FIFO order, round execution is the
// engine's deterministic round loop, and seller leave/return events are
// journaled with the round cursor they took effect at — so a crashed shard
// can be rebuilt from its write-ahead state to the exact same bytes an
// uninterrupted run produces.

#ifndef CDT_RUNTIME_EVENT_H_
#define CDT_RUNTIME_EVENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/cmab_hs.h"
#include "core/config.h"

namespace cdt {
namespace runtime {

enum class EventType : std::uint8_t {
  /// Admit a new marketplace (spec carries its config + policy).
  kCreateMarketplace = 1,
  /// Run one trading round ("the platform's clock ticked").
  kRoundTick = 2,
  /// Consumer demand for `rounds` further rounds of data collection.
  kConsumerDemand = 3,
  /// A seller departed; it sits out every coalition until it returns.
  kSellerLeave = 4,
  /// A departed seller re-registered.
  kSellerReturn = 5,
  /// Seal the marketplace's WAL and retire it.
  kCloseMarketplace = 6,
};

/// Config + policy of a marketplace to admit.
struct MarketplaceSpec {
  core::MechanismConfig config;
  core::PolicySpec policy;
};

/// One unit of work for a shard worker. Cheap to copy except for `spec`,
/// which is shared (creates are rare).
struct Event {
  EventType type = EventType::kRoundTick;
  /// Target marketplace id; routing key and WAL file stem.
  std::string marketplace;
  /// kSellerLeave / kSellerReturn: the seller index.
  int seller = -1;
  /// kConsumerDemand: rounds demanded; kRoundTick treats it as 1.
  std::int64_t rounds = 1;
  /// kCreateMarketplace only.
  std::shared_ptr<const MarketplaceSpec> spec;
};

/// "create", "tick", "demand", "leave", "return", "close".
inline const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kCreateMarketplace: return "create";
    case EventType::kRoundTick: return "tick";
    case EventType::kConsumerDemand: return "demand";
    case EventType::kSellerLeave: return "leave";
    case EventType::kSellerReturn: return "return";
    case EventType::kCloseMarketplace: return "close";
  }
  return "unknown";
}

}  // namespace runtime
}  // namespace cdt

#endif  // CDT_RUNTIME_EVENT_H_
