// ShardWorker: one supervised worker thread owning a bounded event queue
// and every marketplace whose id hashes to it. The worker is the only
// thread that touches its marketplaces — cross-thread surface is limited
// to the queue, atomics (heartbeat, counters), the state directory and
// the tick coalescer, so per-marketplace execution needs no locks and
// stays strictly FIFO (the determinism contract of event.h).
//
// Supervision surface: a monotone heartbeat the watchdog ages, a crashed
// flag the watchdog restarts on, and lazy WAL recovery — a restarted
// worker holds no marketplaces; the first event addressed to an id with a
// WAL on disk rebuilds it via HostedMarketplace::Recover. Recovery of a
// crash-looping marketplace is gated by the ReliabilityTracker breaker
// (closed → open after consecutive failed recoveries → cooldown →
// probation), reusing the engine's seller-quarantine pattern one level up.
//
// Chaos hooks (ArmKillAfter / ArmStallAfter) fire at event boundaries
// only, so an injected crash never half-applies an event — the invariant
// the byte-identity chaos harness rests on.

#ifndef CDT_RUNTIME_SHARD_H_
#define CDT_RUNTIME_SHARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "market/faults.h"
#include "obs/metrics.h"
#include "runtime/event.h"
#include "runtime/marketplace.h"
#include "runtime/queue.h"
#include "util/status.h"

namespace cdt {
namespace runtime {

/// Admission-side tick deferral (the kCoalesceTicks shed policy): when a
/// shard queue is full, a round tick is not dropped but parked here; the
/// worker claims parked rounds the next time it executes rounds for the
/// marketplace. Rounds are deferred and merged, never lost.
class TickCoalescer {
 public:
  void Defer(const std::string& marketplace, std::int64_t rounds);
  /// Returns and clears the parked rounds for `marketplace`.
  std::int64_t Claim(const std::string& marketplace);
  /// Rounds currently parked across all marketplaces.
  std::int64_t pending() const;
  /// Cumulative rounds ever deferred.
  std::int64_t total_deferred() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::int64_t> pending_;
  std::int64_t total_deferred_ = 0;
};

/// Marketplace states published by workers for the admission path (the
/// service sheds events to budget-stopped / quarantined / finished
/// marketplaces without occupying queue slots).
class StateDirectory {
 public:
  void Publish(const std::string& marketplace, HostedMarketplace::State state);
  /// False when the marketplace is unknown (never created or not yet
  /// published); `*state` is untouched then.
  bool Lookup(const std::string& marketplace,
              HostedMarketplace::State* state) const;
  int CountInState(HostedMarketplace::State state) const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, HostedMarketplace::State> states_;
};

/// Cross-thread snapshot of one shard's health and throughput.
struct ShardStats {
  int index = 0;
  bool running = false;
  bool crashed = false;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t rounds_settled = 0;
  std::uint64_t event_errors = 0;
  std::uint64_t shed_by_worker = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t restarts = 0;
};

class ShardWorker {
 public:
  struct Options {
    int index = 0;
    std::size_t queue_capacity = 256;
    HostedMarketplace::Options marketplace;
    /// Max trading rounds one dispatch executes before re-beating the
    /// heartbeat (deadline-bounded round processing). <= 0 = unbounded.
    std::int64_t max_rounds_per_dispatch = 64;
    /// Queue wait per loop iteration — also the heartbeat cadence when
    /// idle.
    std::chrono::milliseconds pop_timeout{20};
    /// Breaker knobs for crash-looping marketplace recovery (the
    /// "round" fed to the tracker is the shard's event sequence number).
    market::RecoveryOptions recovery_breaker;
    /// Transient-IO retry schedule for a single recovery attempt.
    int recovery_attempts = 3;
    std::chrono::milliseconds recovery_backoff{5};
    std::chrono::milliseconds recovery_backoff_cap{50};
    /// Shared admission-side structures (owned by the service; may be
    /// null in stand-alone tests).
    TickCoalescer* coalescer = nullptr;
    StateDirectory* directory = nullptr;
  };

  explicit ShardWorker(Options options);
  ~ShardWorker();
  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Spawns the worker thread (idempotent while running).
  void Start();

  /// Closes the queue: the worker drains every admitted event, seals the
  /// WAL of each live marketplace, then exits.
  void RequestDrain();

  /// Joins the worker thread if joinable.
  void Join();

  /// Supervisor restart after a crash: joins the dead thread and spawns a
  /// fresh one over the same queue. Marketplace state rebuilds lazily
  /// from WALs as events arrive.
  void Restart();

  EventQueue& queue() { return queue_; }
  int index() const { return options_.index; }

  bool running() const { return running_.load(std::memory_order_acquire); }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Monotone beat counter and the steady-clock age of the latest beat.
  std::uint64_t heartbeat() const {
    return beats_.load(std::memory_order_acquire);
  }
  std::chrono::milliseconds heartbeat_age() const;

  // --- chaos hooks (arm before Start; fire at event boundaries) --------
  /// Simulate a crash after `events` processed events: the thread dies,
  /// in-memory marketplaces are wiped, WALs are left torn. 0 disarms.
  void ArmKillAfter(std::uint64_t events);
  /// Stall (sleep) once for `duration` after `events` processed events.
  void ArmStallAfter(std::uint64_t events, std::chrono::milliseconds duration);

  ShardStats Stats() const;

 private:
  void Run();
  void Beat();
  void ProcessEvent(const Event& event);
  /// Recover with capped-backoff IO retries, gated by the crash-loop
  /// breaker. Returns nullptr when recovery is impossible or gated (the
  /// event is shed).
  HostedMarketplace* RecoverMarketplace(const std::string& id);
  market::ReliabilityTracker* BreakerFor(const std::string& id);
  void PublishState(const std::string& id, HostedMarketplace::State state);

  Options options_;
  EventQueue queue_;
  std::thread thread_;

  // Worker-thread-only state.
  std::map<std::string, std::unique_ptr<HostedMarketplace>> marketplaces_;
  /// Per-marketplace crash-loop breaker (1 "seller" = the marketplace).
  std::unordered_map<std::string,
                     std::unique_ptr<market::ReliabilityTracker>>
      breakers_;

  // Cross-thread state.
  std::atomic<bool> running_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> beats_{0};
  std::atomic<std::int64_t> last_beat_ns_{0};
  std::atomic<std::uint64_t> events_processed_{0};
  std::atomic<std::uint64_t> rounds_settled_{0};
  std::atomic<std::uint64_t> event_errors_{0};
  std::atomic<std::uint64_t> shed_by_worker_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> kill_after_{0};
  std::atomic<std::uint64_t> stall_after_{0};
  std::atomic<std::int64_t> stall_ms_{0};

  // Metric handles (label {"shard": index}); resolved once, stable.
  obs::Counter* events_metric_;
  obs::Counter* rounds_metric_;
  obs::Counter* errors_metric_;
  obs::Counter* recoveries_metric_;
  obs::Gauge* queue_depth_metric_;
  obs::Gauge* marketplaces_metric_;
  obs::Gauge* quarantined_metric_;
  obs::Histogram* dispatch_metric_;
};

}  // namespace runtime
}  // namespace cdt

#endif  // CDT_RUNTIME_SHARD_H_
