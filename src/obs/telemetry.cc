#include "obs/telemetry.h"

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace cdt {
namespace obs {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

Tracer& tracer() {
  // Leaked on purpose: see the header note on static destruction order.
  static Tracer* const t = new Tracer();
  return *t;
}

MetricsRegistry& registry() {
  static MetricsRegistry* const r = new MetricsRegistry();
  return *r;
}

void Enable() { internal::g_enabled.store(true, std::memory_order_relaxed); }

void Disable() { internal::g_enabled.store(false, std::memory_order_relaxed); }

void ResetForTesting() {
  Disable();
  tracer().Clear();
  registry().Reset();
}

}  // namespace obs
}  // namespace cdt
