#include "obs/telemetry_observer.h"

#include <algorithm>
#include <vector>

#include "market/trading_engine.h"

namespace cdt {
namespace obs {

using market::FaultKind;
using market::FaultKindName;
using market::RoundReport;
using market::TradingEngine;
using util::Status;

TelemetryObserver::TelemetryObserver() {
  MetricsRegistry& reg = registry();
  rounds_total_ =
      reg.GetCounter("cdt_rounds_total", "Rounds settled by the engine.");
  rounds_exploration_total_ = reg.GetCounter(
      "cdt_rounds_exploration_total",
      "Initial-exploration rounds (Algorithm 1 select-all).");
  rounds_degraded_total_ = reg.GetCounter(
      "cdt_rounds_degraded_total", "Rounds rewritten by fault recovery.");
  rounds_resettled_total_ = reg.GetCounter(
      "cdt_rounds_resettled_total",
      "Rounds re-settled on the survivor coalition after defaults.");
  rounds_voided_total_ = reg.GetCounter(
      "cdt_rounds_voided_total",
      "Rounds voided: no delivery, no payments, bandit state untouched.");
  for (int k = 0; k < market::kNumFaultKinds; ++k) {
    faults_total_[static_cast<std::size_t>(k)] = reg.GetCounter(
        "cdt_faults_total", "Fault events recorded by the engine, by kind.",
        {{"kind", FaultKindName(static_cast<FaultKind>(k))}});
  }
  settlement_retries_total_ = reg.GetCounter(
      "cdt_settlement_retries_total",
      "Settlement attempts beyond the first, across all rounds.");
  settlement_backoff_seconds_total_ = reg.GetCounter(
      "cdt_settlement_backoff_seconds_total",
      "Simulated settlement backoff accumulated across all rounds.");
  regret_ = reg.GetGauge(
      "cdt_regret",
      "Cumulative expected quality-revenue regret vs the oracle coalition.");
  round_regret_ = reg.GetGauge(
      "cdt_round_regret", "Last round's expected regret vs the oracle.");
  profit_consumer_ =
      reg.GetGauge("cdt_profit_cumulative", "Cumulative profit by party.",
                   {{"party", "consumer"}});
  profit_platform_ =
      reg.GetGauge("cdt_profit_cumulative", "Cumulative profit by party.",
                   {{"party", "platform"}});
  profit_sellers_ =
      reg.GetGauge("cdt_profit_cumulative", "Cumulative profit by party.",
                   {{"party", "sellers"}});
  ledger_consumer_outflow_ = reg.GetGauge(
      "cdt_ledger_consumer_outflow",
      "Total amount the consumer has paid out (ledger ConsumerOutflow).");
  ledger_seller_inflow_ = reg.GetGauge(
      "cdt_ledger_seller_inflow",
      "Total amount sellers have received (ledger SellerInflow).");
  breaker_open_sellers_ = reg.GetGauge(
      "cdt_breaker_open_sellers",
      "Sellers whose circuit breaker is open and still cooling down.");
  breaker_opened_total_ = reg.GetCounter(
      "cdt_breaker_opened_total",
      "Circuit-breaker closed/probation -> open transitions.");
  picks_explore_total_ = reg.GetCounter(
      "cdt_bandit_picks_total",
      "Per-seller selections, split by exploration vs exploitation.",
      {{"mode", "explore"}});
  picks_exploit_total_ = reg.GetCounter(
      "cdt_bandit_picks_total",
      "Per-seller selections, split by exploration vs exploitation.",
      {{"mode", "exploit"}});
  exploration_ratio_ = reg.GetGauge(
      "cdt_bandit_exploration_ratio",
      "Fraction of all per-seller picks that were exploratory.");
}

Status TelemetryObserver::OnRound(const TradingEngine& engine,
                                  const RoundReport& report) {
  if (!enabled()) return Status::OK();

  rounds_total_->Increment();
  if (report.initial_exploration) rounds_exploration_total_->Increment();
  if (report.degraded) rounds_degraded_total_->Increment();
  if (report.resettled) rounds_resettled_total_->Increment();
  if (report.voided) rounds_voided_total_->Increment();

  for (int k = 0; k < market::kNumFaultKinds; ++k) {
    int n = report.CountFaults(static_cast<FaultKind>(k));
    if (n > 0) {
      faults_total_[static_cast<std::size_t>(k)]->Add(
          static_cast<double>(n));
    }
  }
  if (report.settlement_attempts > 1) {
    settlement_retries_total_->Add(
        static_cast<double>(report.settlement_attempts - 1));
  }
  if (report.settlement_backoff > 0.0) {
    settlement_backoff_seconds_total_->Add(report.settlement_backoff);
  }

  consumer_profit_cum_ += report.consumer_profit;
  platform_profit_cum_ += report.platform_profit;
  seller_profit_cum_ += report.seller_profit_total;
  profit_consumer_->Set(consumer_profit_cum_);
  profit_platform_->Set(platform_profit_cum_);
  profit_sellers_->Set(seller_profit_cum_);

  oracle_revenue_cum_ += engine.oracle_round_revenue();
  expected_revenue_cum_ += report.expected_quality_revenue;
  regret_->Set(oracle_revenue_cum_ - expected_revenue_cum_);
  round_regret_->Set(engine.oracle_round_revenue() -
                     report.expected_quality_revenue);

  ledger_consumer_outflow_->Set(engine.ledger().ConsumerOutflow());
  ledger_seller_inflow_->Set(engine.ledger().SellerInflow());

  const market::ReliabilityTracker& rel = engine.reliability();
  breaker_open_sellers_->Set(
      static_cast<double>(rel.QuarantinedCount(report.round)));
  std::int64_t opened = 0;
  for (int i = 0; i < rel.num_sellers(); ++i) {
    opened += rel.seller(i).times_opened;
  }
  if (opened > breaker_opened_seen_) {
    breaker_opened_total_->Add(
        static_cast<double>(opened - breaker_opened_seen_));
  }
  breaker_opened_seen_ = opened;

  // Exploration split: a pick is exploratory when the seller is outside
  // the current greedy (top-K-by-mean) set — i.e. the UCB bonus, not the
  // estimate, carried it into the coalition. The estimator is read after
  // this round's update, a one-round skew that is irrelevant for a
  // diagnostic ratio. Policies without an estimator are skipped.
  const bandit::EstimatorBank* bank = engine.policy().estimator();
  if (bank != nullptr && !report.selected.empty()) {
    bank->TopKByMeanInto(engine.config().num_selected, &greedy_scratch_);
    const std::vector<int>& greedy = greedy_scratch_;
    double explore = 0.0;
    for (int seller : report.selected) {
      if (std::find(greedy.begin(), greedy.end(), seller) == greedy.end()) {
        explore += 1.0;
      }
    }
    double exploit = static_cast<double>(report.selected.size()) - explore;
    if (explore > 0.0) picks_explore_total_->Add(explore);
    if (exploit > 0.0) picks_exploit_total_->Add(exploit);
    double total =
        picks_explore_total_->value() + picks_exploit_total_->value();
    if (total > 0.0) {
      exploration_ratio_->Set(picks_explore_total_->value() / total);
    }
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace cdt
