// Process-wide telemetry runtime: one atomic arming flag plus lazily
// constructed global Tracer / MetricsRegistry singletons.
//
// Design constraints (see docs/OBSERVABILITY.md):
//
//   * Compile-out-able — building with -DCDT_TELEMETRY=0 (CMake option
//     CDT_TELEMETRY=OFF) turns every instrumentation macro into a no-op
//     and constant-folds obs::enabled() to false, so the engine hot path
//     carries no telemetry code at all.
//   * Near-zero when dormant — with telemetry compiled in but not armed
//     (the default), every instrumentation site is guarded by the single
//     relaxed atomic load in obs::enabled(); no clocks are read, no
//     handles resolved, no locks taken.
//   * Handles are forever — metric handles returned by the registry stay
//     valid for the life of the process (instrumentation caches them in
//     function-local statics), so the registry never deletes metrics;
//     ResetForTesting() zeroes values instead.
//
// The singletons are leaked on purpose: exporters run before main()
// returns and leaking sidesteps static-destruction-order hazards.

#ifndef CDT_OBS_TELEMETRY_H_
#define CDT_OBS_TELEMETRY_H_

#include <atomic>

// CMake normally defines CDT_TELEMETRY=0/1 globally; standalone consumers
// of the headers default to "compiled in".
#ifndef CDT_TELEMETRY
#define CDT_TELEMETRY 1
#endif

namespace cdt {
namespace obs {

class Tracer;
class MetricsRegistry;

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True when telemetry is compiled in AND armed at runtime. The only check
/// instrumentation performs on the hot path.
inline bool enabled() {
#if CDT_TELEMETRY
  return internal::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// The process-wide span tracer (constructed on first use, never
/// destroyed). Safe to call whether or not telemetry is armed.
Tracer& tracer();

/// The process-wide metrics registry (constructed on first use, never
/// destroyed). Safe to call whether or not telemetry is armed.
MetricsRegistry& registry();

/// Arms / disarms every instrumentation site. Disarming does not clear
/// recorded spans or metric values — exporters can still flush them.
void Enable();
void Disable();

/// Disarms telemetry, clears the global tracer and zeroes every metric in
/// the global registry. Metric handles stay valid (values reset to 0).
void ResetForTesting();

}  // namespace obs
}  // namespace cdt

#define CDT_OBS_INTERNAL_CONCAT2(a, b) a##b
#define CDT_OBS_INTERNAL_CONCAT(a, b) CDT_OBS_INTERNAL_CONCAT2(a, b)

#if CDT_TELEMETRY
/// Runs `stmt` only when telemetry is compiled in and armed.
#define CDT_TELEMETRY_ONLY(stmt)            \
  do {                                      \
    if (::cdt::obs::enabled()) {            \
      stmt;                                 \
    }                                       \
  } while (0)
#else
#define CDT_TELEMETRY_ONLY(stmt) \
  do {                           \
  } while (0)
#endif

#endif  // CDT_OBS_TELEMETRY_H_
