#include "obs/tracer.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace cdt {
namespace obs {

std::uint32_t CurrentThreadId() {
  static std::atomic<std::uint32_t> next_id{1};
  thread_local const std::uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer::Tracer(std::size_t capacity) {
  CDT_CHECK(capacity > 0) << "tracer capacity must be > 0";
  ring_.resize(capacity);
}

void Tracer::Record(const char* name, std::int64_t start_ns,
                    std::int64_t end_ns) {
  const std::uint32_t tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  ring_[head_] = SpanEvent{name, tid, start_ns, end_ns};
  head_ = (head_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++total_;
}

std::vector<SpanEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanEvent> out;
  out.reserve(size_);
  // Oldest retained span sits at head_ - size_ (mod capacity).
  std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - size_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  head_ = 0;
  size_ = 0;
  total_ = 0;
}

ScopedSpan::ScopedSpan(const char* name, Tracer* tracer,
                       Histogram* latency_histogram)
    : name_(name),
      tracer_(tracer),
      hist_(latency_histogram),
      start_ns_(MonotonicNowNs()),
      active_(true) {}

void ScopedSpan::Start(const char* name, Histogram* latency_histogram) {
  name_ = name;
  tracer_ = &tracer();
  hist_ = latency_histogram;
  start_ns_ = MonotonicNowNs();
  active_ = true;
}

void ScopedSpan::Finish() {
  const std::int64_t end_ns = MonotonicNowNs();
  if (tracer_ != nullptr) tracer_->Record(name_, start_ns_, end_ns);
  if (hist_ != nullptr) {
    hist_->Record(static_cast<double>(end_ns - start_ns_) * 1e-9);
  }
}

}  // namespace obs
}  // namespace cdt
