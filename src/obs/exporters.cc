#include "obs/exporters.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace cdt {
namespace obs {

using util::Status;

namespace {

/// JSON / Prometheus-label string escaping (control chars, quotes, '\\').
std::string EscapeString(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// {k="v",k2="v2"} rendered for Prometheus; "" when label-free.
std::string PrometheusLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += EscapeString(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

/// Prometheus labels with an extra `le` pair appended (histogram buckets).
std::string PrometheusBucketLabels(const LabelSet& labels,
                                   const std::string& le) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += k;
    out += "=\"";
    out += EscapeString(v);
    out += "\",";
  }
  out += "le=\"";
  out += le;
  out += "\"}";
  return out;
}

/// JSON object of the label set.
std::string JsonLabels(const LabelSet& labels) {
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"";
    out += EscapeString(labels[i].first);
    out += "\":\"";
    out += EscapeString(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

const char* TypeName(MetricsRegistry::Type type) {
  switch (type) {
    case MetricsRegistry::Type::kCounter:
      return "counter";
    case MetricsRegistry::Type::kGauge:
      return "gauge";
    case MetricsRegistry::Type::kHistogram:
      return "histogram";
  }
  return "?";
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << content;
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace

std::string FormatMetricValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  // Integral fast path (covers counters and bucket counts).
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest precision that round-trips exactly.
  char buf[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  return buf;
}

std::string ChromeTraceJson(const std::vector<SpanEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"cdt\"}}";
  for (const SpanEvent& e : events) {
    // Complete ("X") events; ts/dur in microseconds with ns resolution.
    out += ",\n{\"name\":\"";
    out += EscapeString(e.name != nullptr ? e.name : "?");
    out += "\",\"ph\":\"X\",\"ts\":";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.start_ns) * 1e-3);
    out += buf;
    out += ",\"dur\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(e.duration_ns()) * 1e-3);
    out += buf;
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string ChromeTraceJson(const Tracer& tracer) {
  return ChromeTraceJson(tracer.Snapshot());
}

std::string PrometheusText(
    const std::vector<MetricsRegistry::MetricSnapshot>& snapshots) {
  std::string out;
  std::string last_name;
  for (const MetricsRegistry::MetricSnapshot& m : snapshots) {
    if (m.name != last_name) {
      // HELP/TYPE headers once per metric family.
      out += "# HELP " + m.name + " " + m.help + "\n";
      out += "# TYPE " + m.name + " " + TypeName(m.type) + "\n";
      last_name = m.name;
    }
    switch (m.type) {
      case MetricsRegistry::Type::kCounter:
      case MetricsRegistry::Type::kGauge:
        out += m.name + PrometheusLabels(m.labels) + " " +
               FormatMetricValue(m.value) + "\n";
        break;
      case MetricsRegistry::Type::kHistogram: {
        const Histogram::Snapshot& h = m.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          cumulative += h.counts[i];
          out += m.name + "_bucket" +
                 PrometheusBucketLabels(m.labels,
                                        FormatMetricValue(h.bounds[i])) +
                 " " + std::to_string(cumulative) + "\n";
        }
        cumulative += h.counts.back();
        out += m.name + "_bucket" + PrometheusBucketLabels(m.labels, "+Inf") +
               " " + std::to_string(cumulative) + "\n";
        out += m.name + "_sum" + PrometheusLabels(m.labels) + " " +
               FormatMetricValue(h.sum) + "\n";
        out += m.name + "_count" + PrometheusLabels(m.labels) + " " +
               std::to_string(h.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string PrometheusText(const MetricsRegistry& registry) {
  return PrometheusText(registry.Collect());
}

std::string MetricsJsonl(
    const std::vector<MetricsRegistry::MetricSnapshot>& snapshots) {
  std::string out;
  for (const MetricsRegistry::MetricSnapshot& m : snapshots) {
    out += "{\"name\":\"" + EscapeString(m.name) + "\",\"type\":\"";
    out += TypeName(m.type);
    out += "\",\"labels\":" + JsonLabels(m.labels);
    switch (m.type) {
      case MetricsRegistry::Type::kCounter:
      case MetricsRegistry::Type::kGauge:
        out += ",\"value\":" + FormatMetricValue(m.value);
        break;
      case MetricsRegistry::Type::kHistogram: {
        const Histogram::Snapshot& h = m.histogram;
        out += ",\"count\":" + std::to_string(h.count);
        out += ",\"sum\":" + FormatMetricValue(h.sum);
        out += ",\"rejected\":" + std::to_string(h.rejected);
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          if (i > 0) out += ",";
          out += "{\"le\":" + FormatMetricValue(h.bounds[i]) +
                 ",\"count\":" + std::to_string(h.counts[i]) + "}";
        }
        if (!h.bounds.empty()) out += ",";
        out += "{\"le\":\"+Inf\",\"count\":" + std::to_string(h.counts.back()) +
               "}]";
        break;
      }
    }
    out += "}\n";
  }
  return out;
}

std::string MetricsJsonl(const MetricsRegistry& registry) {
  return MetricsJsonl(registry.Collect());
}

Status WriteChromeTrace(const Tracer& tracer, const std::string& path) {
  return WriteFile(path, ChromeTraceJson(tracer));
}

Status WritePrometheusText(const MetricsRegistry& registry,
                           const std::string& path) {
  return WriteFile(path, PrometheusText(registry));
}

Status WriteMetricsJsonl(const MetricsRegistry& registry,
                         const std::string& path) {
  return WriteFile(path, MetricsJsonl(registry));
}

}  // namespace obs
}  // namespace cdt
