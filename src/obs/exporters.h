// Telemetry exporters:
//
//   * ChromeTraceJson  — Chrome trace-event JSON ("X" complete events)
//     loadable in chrome://tracing and https://ui.perfetto.dev;
//   * PrometheusText   — the Prometheus text exposition format (HELP/TYPE
//     comments, `le`-bucketed histograms with _sum/_count);
//   * MetricsJsonl     — one JSON object per metric per line, the
//     machine-readable snapshot consumed by tools/validate_telemetry.py.
//
// All three are deterministic for a given snapshot (stable metric order,
// shortest-round-trip number formatting), so exporter outputs can be
// golden-tested byte for byte.

#ifndef CDT_OBS_EXPORTERS_H_
#define CDT_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "util/status.h"

namespace cdt {
namespace obs {

/// Shortest decimal string that round-trips to exactly `v` (integral
/// values print without a decimal point). Deterministic across platforms.
std::string FormatMetricValue(double v);

/// Renders spans as a Chrome trace-event JSON document.
std::string ChromeTraceJson(const std::vector<SpanEvent>& events);
std::string ChromeTraceJson(const Tracer& tracer);

/// Renders the registry in the Prometheus text exposition format.
std::string PrometheusText(const std::vector<MetricsRegistry::MetricSnapshot>&
                               snapshots);
std::string PrometheusText(const MetricsRegistry& registry);

/// Renders the registry as JSONL: one JSON object per metric per line.
std::string MetricsJsonl(const std::vector<MetricsRegistry::MetricSnapshot>&
                             snapshots);
std::string MetricsJsonl(const MetricsRegistry& registry);

/// File-writing wrappers (create/truncate; report IO errors via Status).
util::Status WriteChromeTrace(const Tracer& tracer, const std::string& path);
util::Status WritePrometheusText(const MetricsRegistry& registry,
                                 const std::string& path);
util::Status WriteMetricsJsonl(const MetricsRegistry& registry,
                               const std::string& path);

}  // namespace obs
}  // namespace cdt

#endif  // CDT_OBS_EXPORTERS_H_
