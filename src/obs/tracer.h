// Low-overhead span tracer: RAII ScopedSpans record (name, thread, start,
// duration) into a fixed-capacity thread-safe ring buffer, exported as
// Chrome trace-event JSON (chrome://tracing / Perfetto) by the exporters.
//
// Span names must be string literals (or otherwise outlive the tracer):
// the ring buffer stores the pointer, never copies, so the record path is
// two monotonic-clock reads plus one short critical section. A dormant
// span (telemetry disabled) costs exactly one relaxed atomic load.

#ifndef CDT_OBS_TRACER_H_
#define CDT_OBS_TRACER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/telemetry.h"

namespace cdt {
namespace obs {

class Histogram;

/// Nanoseconds on the monotonic (steady) clock.
inline std::int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Process-unique small id of the calling thread (stable for its life).
std::uint32_t CurrentThreadId();

/// One completed span. `name` is a borrowed string literal.
struct SpanEvent {
  const char* name = nullptr;
  std::uint32_t tid = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;

  std::int64_t duration_ns() const { return end_ns - start_ns; }
};

/// Thread-safe fixed-capacity span ring buffer. Once full, new spans
/// overwrite the oldest (dropped() reports how many were evicted), so a
/// long run keeps its most recent window — the part a trace viewer needs.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Appends one completed span (called by ~ScopedSpan).
  void Record(const char* name, std::int64_t start_ns, std::int64_t end_ns);

  /// The retained spans, oldest first.
  std::vector<SpanEvent> Snapshot() const;

  /// Spans ever recorded, including evicted ones.
  std::uint64_t total_recorded() const;

  /// Spans evicted by ring wrap-around.
  std::uint64_t dropped() const;

  std::size_t capacity() const { return ring_.size(); }

  /// Forgets every retained span and zeroes the counters.
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<SpanEvent> ring_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;  // retained spans (<= capacity)
  std::uint64_t total_ = 0;
};

/// RAII span: starts timing at construction when telemetry is armed,
/// records into the global tracer (and optionally a latency histogram, in
/// seconds) at destruction. When telemetry is dormant the constructor is a
/// single atomic load and the destructor a predictable branch.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* latency_histogram = nullptr) {
    if (enabled()) Start(name, latency_histogram);
  }

  /// Test constructor: records into `tracer` unconditionally.
  ScopedSpan(const char* name, Tracer* tracer,
             Histogram* latency_histogram = nullptr);

  ~ScopedSpan() {
    if (active_) Finish();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void Start(const char* name, Histogram* latency_histogram);
  void Finish();

  const char* name_ = nullptr;
  Tracer* tracer_ = nullptr;
  Histogram* hist_ = nullptr;
  std::int64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace obs
}  // namespace cdt

#if CDT_TELEMETRY
/// Scoped span around the rest of the current block.
#define CDT_SPAN(name)                                               \
  ::cdt::obs::ScopedSpan CDT_OBS_INTERNAL_CONCAT(cdt_scoped_span_,   \
                                                 __LINE__)(name)
/// Scoped span that additionally feeds a latency histogram. `hist_fn` is a
/// zero-argument callable returning ::cdt::obs::Histogram*; it runs once
/// per call site, on the first armed pass (cached in a local static).
#define CDT_SPAN_TIMED(name, hist_fn)                                      \
  ::cdt::obs::ScopedSpan CDT_OBS_INTERNAL_CONCAT(cdt_scoped_span_,         \
                                                 __LINE__)(                \
      name, []() -> ::cdt::obs::Histogram* {                               \
        if (!::cdt::obs::enabled()) return nullptr;                        \
        static ::cdt::obs::Histogram* const h = (hist_fn)();               \
        return h;                                                          \
      }())
#else
#define CDT_SPAN(name) ((void)0)
#define CDT_SPAN_TIMED(name, hist_fn) ((void)0)
#endif

#endif  // CDT_OBS_TRACER_H_
