// TelemetryObserver: the RoundObserver that folds every settled round of a
// TradingEngine into the global obs::registry() — round/fault/degradation
// counters, ledger-flow and regret gauges, settlement retry/backoff totals
// and the exploration-vs-exploitation split of the bandit's picks.
//
// TradingEngine::Create installs one automatically when telemetry is
// compiled in (CDT_TELEMETRY=1); until obs::Enable() arms the runtime the
// observer costs one relaxed atomic load per round. It only reads engine
// state, so enabling telemetry can never perturb the economics.
//
// The file lives under src/obs/ with the rest of the telemetry subsystem
// but is compiled into cdt_market (it needs TradingEngine), keeping the
// cdt_obs -> cdt_util dependency edge acyclic.

#ifndef CDT_OBS_TELEMETRY_OBSERVER_H_
#define CDT_OBS_TELEMETRY_OBSERVER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "market/faults.h"
#include "market/invariants.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace cdt {
namespace obs {

/// Publishes per-round engine state as metrics (see docs/OBSERVABILITY.md
/// for the full catalogue). Stateful — cumulative profits, regret and the
/// breaker-transition baseline accumulate across the rounds it observes —
/// so, like InvariantChecker, it must watch a run from its first round.
class TelemetryObserver : public market::RoundObserver {
 public:
  /// Resolves every metric handle once; handles stay valid for the life of
  /// the process (the registry never deletes metrics).
  TelemetryObserver();

  util::Status OnRound(const market::TradingEngine& engine,
                       const market::RoundReport& report) override;

 private:
  // Round counters.
  Counter* rounds_total_;
  Counter* rounds_exploration_total_;
  Counter* rounds_degraded_total_;
  Counter* rounds_resettled_total_;
  Counter* rounds_voided_total_;

  // Fault counters, one per FaultKind (labelled by kind name).
  std::array<Counter*, market::kNumFaultKinds> faults_total_;

  // Settlement recovery.
  Counter* settlement_retries_total_;
  Counter* settlement_backoff_seconds_total_;

  // Regret (cumulative and last-round) against the oracle coalition.
  Gauge* regret_;
  Gauge* round_regret_;

  // Cumulative profits per party.
  Gauge* profit_consumer_;
  Gauge* profit_platform_;
  Gauge* profit_sellers_;

  // Ledger flows (read straight off the engine's ledger).
  Gauge* ledger_consumer_outflow_;
  Gauge* ledger_seller_inflow_;

  // Circuit breaker: currently quarantined sellers and open transitions.
  Gauge* breaker_open_sellers_;
  Counter* breaker_opened_total_;

  // Bandit exploration-vs-exploitation split of the selected coalition.
  Counter* picks_explore_total_;
  Counter* picks_exploit_total_;
  Gauge* exploration_ratio_;

  /// Greedy top-K-by-mean scratch for the exploration split, reused every
  /// observed round.
  std::vector<int> greedy_scratch_;

  double consumer_profit_cum_ = 0.0;
  double platform_profit_cum_ = 0.0;
  double seller_profit_cum_ = 0.0;
  double oracle_revenue_cum_ = 0.0;
  double expected_revenue_cum_ = 0.0;
  std::int64_t breaker_opened_seen_ = 0;
};

}  // namespace obs
}  // namespace cdt

#endif  // CDT_OBS_TELEMETRY_OBSERVER_H_
