#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace cdt {
namespace obs {

namespace {

/// Lock-free accumulate for atomic<double> (fetch_add on floating atomics
/// compiles to a CAS loop anyway; spell it out for pre-C++20 libstdc++s).
void AtomicAdd(std::atomic<double>* target, double v) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + v,
                                        std::memory_order_relaxed)) {
  }
}

/// name + '\0' + k1 + '\0' + v1 + ... over sorted labels.
std::string EntryKey(const std::string& name, const LabelSet& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key.push_back('\0');
    key.append(k);
    key.push_back('\0');
    key.append(v);
  }
  return key;
}

LabelSet SortedLabels(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

}  // namespace

void Counter::Add(double v) {
  if (!(v >= 0.0) || !std::isfinite(v)) return;  // NaN-safe: !(NaN >= 0)
  AtomicAdd(&value_, v);
}

void Gauge::Add(double v) {
  if (!std::isfinite(v)) return;
  AtomicAdd(&value_, v);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  CDT_CHECK(!bounds_.empty()) << "histogram needs >= 1 bucket bound";
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    CDT_CHECK(std::isfinite(bounds_[i]))
        << "histogram bounds must be finite (bound " << i << ")";
    if (i > 0) {
      CDT_CHECK(bounds_[i - 1] < bounds_[i])
          << "histogram bounds must be strictly ascending";
    }
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Record(double v) {
  if (!std::isfinite(v)) {  // inf-guard: NaN and ±Inf never reach sum_
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // First bound >= v: inclusive upper bounds (Prometheus `le`). Values at
  // or below bounds_[0] — including 0 and negatives — land in bucket 0;
  // values above the last bound land in the +Inf overflow slot.
  std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.rejected = rejected_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
  count_.store(0);
  sum_.store(0.0);
  rejected_.store(0);
}

std::vector<double> LogBuckets(double lo, double hi, int count) {
  CDT_CHECK(lo > 0.0 && std::isfinite(lo)) << "LogBuckets lo must be > 0";
  CDT_CHECK(hi > lo && std::isfinite(hi)) << "LogBuckets hi must be > lo";
  CDT_CHECK(count >= 2) << "LogBuckets needs >= 2 buckets";
  std::vector<double> bounds(static_cast<std::size_t>(count));
  const double ratio = std::log(hi / lo) / static_cast<double>(count - 1);
  for (int i = 0; i < count; ++i) {
    bounds[static_cast<std::size_t>(i)] =
        lo * std::exp(ratio * static_cast<double>(i));
  }
  bounds.back() = hi;  // exact endpoint, no exp/log round-off
  return bounds;
}

const std::vector<double>& DefaultLatencyBuckets() {
  static const std::vector<double>* const kBuckets =
      new std::vector<double>(LogBuckets(1e-7, 10.0, 16));
  return *kBuckets;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    const std::string& name, const std::string& help, const LabelSet& labels,
    Type type) {
  LabelSet sorted = SortedLabels(labels);
  std::string key = EntryKey(name, sorted);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    CDT_CHECK(it->second->type == type)
        << "metric '" << name << "' re-registered with a different type";
    return it->second.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->labels = std::move(sorted);
  entry->type = type;
  Entry* raw = entry.get();
  entries_.emplace(std::move(key), std::move(entry));
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const LabelSet& labels) {
  Entry* entry = FindOrCreate(name, help, labels, Type::kCounter);
  if (entry->counter == nullptr) entry->counter = std::make_unique<Counter>();
  return entry->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const LabelSet& labels) {
  Entry* entry = FindOrCreate(name, help, labels, Type::kGauge);
  if (entry->gauge == nullptr) entry->gauge = std::make_unique<Gauge>();
  return entry->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const std::vector<double>& bounds,
                                         const LabelSet& labels) {
  Entry* entry = FindOrCreate(name, help, labels, Type::kHistogram);
  if (entry->histogram == nullptr) {
    entry->histogram = std::make_unique<Histogram>(bounds);
  }
  return entry->histogram.get();
}

std::vector<MetricsRegistry::MetricSnapshot> MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  // entries_ is keyed by name + sorted labels, so map order is already the
  // deterministic (name, labels) export order.
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot snap;
    snap.name = entry->name;
    snap.help = entry->help;
    snap.labels = entry->labels;
    snap.type = entry->type;
    switch (entry->type) {
      case Type::kCounter:
        snap.value = entry->counter->value();
        break;
      case Type::kGauge:
        snap.value = entry->gauge->value();
        break;
      case Type::kHistogram:
        snap.histogram = entry->histogram->snapshot();
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    switch (entry->type) {
      case Type::kCounter:
        entry->counter->Reset();
        break;
      case Type::kGauge:
        entry->gauge->Reset();
        break;
      case Type::kHistogram:
        entry->histogram->Reset();
        break;
    }
  }
}

}  // namespace obs
}  // namespace cdt
