// Metrics primitives: Counter, Gauge and Histogram (fixed log-scaled
// buckets), owned by a MetricsRegistry keyed on (name, label set).
//
// Hot-path discipline: Add/Set/Record touch only lock-free atomics; the
// registry mutex is taken only at handle resolution (instrumentation
// caches handles in function-local statics) and at export snapshots.
// Handles returned by the registry stay valid for the registry's life —
// metrics are never deleted, Reset() zeroes values instead.

#ifndef CDT_OBS_METRICS_H_
#define CDT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cdt {
namespace obs {

/// Label key/value pairs; the registry sorts them by key on registration
/// so {a=1,b=2} and {b=2,a=1} name the same metric.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotone counter. Negative or non-finite increments are ignored.
class Counter {
 public:
  void Increment() { Add(1.0); }
  void Add(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-write-wins gauge.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with inclusive upper bounds (Prometheus `le`
/// semantics) plus an implicit +Inf overflow bucket.
///
/// Edge cases: zero and negative samples land in the first bucket; samples
/// above the last finite bound land in the overflow bucket; NaN and ±Inf
/// samples are rejected outright (counted by rejected()) so they can never
/// poison sum() — the "inf-guard".
class Histogram {
 public:
  /// `bounds` must be finite, strictly ascending and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Record(double v);

  const std::vector<double>& bounds() const { return bounds_; }

  struct Snapshot {
    std::vector<double> bounds;        // finite upper bounds
    std::vector<std::uint64_t> counts; // size bounds+1; last is +Inf
    std::uint64_t count = 0;           // accepted samples
    double sum = 0.0;                  // sum of accepted samples
    std::uint64_t rejected = 0;        // NaN / ±Inf samples dropped
  };
  Snapshot snapshot() const;

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// `count` log-scaled (geometric) bucket bounds from `lo` to `hi`
/// inclusive; lo/hi must be positive and finite with lo < hi, count >= 2.
std::vector<double> LogBuckets(double lo, double hi, int count);

/// The default latency buckets shared by every *_seconds histogram:
/// 16 log-scaled bounds from 100 ns to 10 s.
const std::vector<double>& DefaultLatencyBuckets();

/// Registry of named metrics. GetX registers on first use and returns the
/// existing handle afterwards; help text is fixed by the first caller.
/// Name+labels collisions across different metric types are a programming
/// error and abort (CDT_CHECK) — metric names are a stable public API.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const LabelSet& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::vector<double>& bounds,
                          const LabelSet& labels = {});

  enum class Type { kCounter, kGauge, kHistogram };

  /// One exported metric instance.
  struct MetricSnapshot {
    std::string name;
    std::string help;
    LabelSet labels;  // sorted by key
    Type type = Type::kCounter;
    double value = 0.0;            // counter / gauge
    Histogram::Snapshot histogram; // histogram only
  };

  /// A consistent snapshot of every registered metric, sorted by
  /// (name, labels) for deterministic export.
  std::vector<MetricSnapshot> Collect() const;

  std::size_t size() const;

  /// Zeroes every metric value; handles stay valid.
  void Reset();

 private:
  struct Entry {
    std::string name;
    std::string help;
    LabelSet labels;
    Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const std::string& help,
                      const LabelSet& labels, Type type);

  mutable std::mutex mu_;
  /// Keyed by name + '\0'-joined sorted labels; pointers are stable.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace obs
}  // namespace cdt

#endif  // CDT_OBS_METRICS_H_
