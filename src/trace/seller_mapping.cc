#include "trace/seller_mapping.h"

#include <algorithm>
#include <map>
#include <set>

namespace cdt {
namespace trace {

using util::Result;
using util::Status;

Result<std::vector<EligibleSeller>> MapSellers(const Trace& trace,
                                               const std::vector<Poi>& pois) {
  if (pois.empty()) {
    return Status::InvalidArgument("PoI set must not be empty");
  }
  std::set<std::int32_t> poi_zones;
  for (const Poi& poi : pois) poi_zones.insert(poi.zone_id);

  struct Acc {
    std::int64_t visits = 0;
    std::set<std::int32_t> zones;
  };
  std::map<std::int64_t, Acc> by_taxi;
  for (const TripRecord& trip : trace.trips) {
    bool pickup_hit = poi_zones.count(trip.pickup_zone) > 0;
    bool dropoff_hit = poi_zones.count(trip.dropoff_zone) > 0;
    if (!pickup_hit && !dropoff_hit) continue;
    Acc& acc = by_taxi[trip.taxi_id];
    if (pickup_hit) {
      ++acc.visits;
      acc.zones.insert(trip.pickup_zone);
    }
    if (dropoff_hit) {
      ++acc.visits;
      acc.zones.insert(trip.dropoff_zone);
    }
  }

  std::vector<EligibleSeller> sellers;
  sellers.reserve(by_taxi.size());
  for (const auto& [taxi, acc] : by_taxi) {
    EligibleSeller s;
    s.taxi_id = taxi;
    s.poi_visits = acc.visits;
    s.distinct_pois = static_cast<std::int32_t>(acc.zones.size());
    sellers.push_back(s);
  }
  std::sort(sellers.begin(), sellers.end(),
            [](const EligibleSeller& a, const EligibleSeller& b) {
              if (a.poi_visits != b.poi_visits) {
                return a.poi_visits > b.poi_visits;
              }
              return a.taxi_id < b.taxi_id;
            });
  return sellers;
}

Result<std::vector<EligibleSeller>> SelectSellerPool(
    std::vector<EligibleSeller> eligible, std::size_t m) {
  if (m == 0) {
    return Status::InvalidArgument("seller pool size must be >= 1");
  }
  if (eligible.size() < m) {
    return Status::FailedPrecondition(
        "only " + std::to_string(eligible.size()) +
        " eligible sellers, need " + std::to_string(m));
  }
  eligible.resize(m);
  return eligible;
}

}  // namespace trace
}  // namespace cdt
