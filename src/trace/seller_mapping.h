// Taxi → seller mapping: the paper treats "taxis which pick up or drop off
// passengers at these points" (the PoIs) as sellers able to complete the
// data-collection job. This module derives the eligible seller pool from a
// trace and a PoI set.

#ifndef CDT_TRACE_SELLER_MAPPING_H_
#define CDT_TRACE_SELLER_MAPPING_H_

#include <cstdint>
#include <vector>

#include "trace/poi.h"
#include "util/status.h"

namespace cdt {
namespace trace {

/// One eligible seller derived from the trace.
struct EligibleSeller {
  std::int64_t taxi_id = 0;
  /// How many of this taxi's trips touch a PoI (activity proxy).
  std::int64_t poi_visits = 0;
  /// Distinct PoIs the taxi touched.
  std::int32_t distinct_pois = 0;
};

/// Sellers eligible for the job: taxis with >= 1 PoI pick-up/drop-off,
/// ordered by descending poi_visits (ties by taxi id).
util::Result<std::vector<EligibleSeller>> MapSellers(
    const Trace& trace, const std::vector<Poi>& pois);

/// Truncates an eligibility list to the top `m` sellers, mirroring the
/// paper's "choose M taxis as satisfied sellers, M in [50, 300]".
util::Result<std::vector<EligibleSeller>> SelectSellerPool(
    std::vector<EligibleSeller> eligible, std::size_t m);

}  // namespace trace
}  // namespace cdt

#endif  // CDT_TRACE_SELLER_MAPPING_H_
