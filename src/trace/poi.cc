#include "trace/poi.h"

#include <algorithm>
#include <map>

namespace cdt {
namespace trace {

using util::Result;
using util::Status;

Result<std::vector<Poi>> ExtractPois(const Trace& trace,
                                     std::size_t num_pois) {
  if (num_pois == 0) {
    return Status::InvalidArgument("num_pois must be >= 1");
  }
  std::map<std::int32_t, std::int64_t> visits;
  for (const TripRecord& trip : trace.trips) {
    ++visits[trip.pickup_zone];
    ++visits[trip.dropoff_zone];
  }
  if (visits.size() < num_pois) {
    return Status::FailedPrecondition(
        "trace has only " + std::to_string(visits.size()) +
        " active zones, need " + std::to_string(num_pois));
  }
  std::vector<Poi> pois;
  pois.reserve(visits.size());
  for (const auto& [zone, count] : visits) {
    Poi poi;
    poi.zone_id = zone;
    poi.visit_count = count;
    if (zone >= 0 &&
        static_cast<std::size_t>(zone) < trace.zones.size()) {
      poi.location = trace.zones[static_cast<std::size_t>(zone)];
    }
    pois.push_back(poi);
  }
  std::sort(pois.begin(), pois.end(), [](const Poi& a, const Poi& b) {
    if (a.visit_count != b.visit_count) return a.visit_count > b.visit_count;
    return a.zone_id < b.zone_id;
  });
  pois.resize(num_pois);
  return pois;
}

}  // namespace trace
}  // namespace cdt
