// Seller availability model derived from the trip trace. The paper assumes
// every seller can sense in every round; real taxis work shifts. This
// module extracts each taxi's active hours-of-day from its trips and
// exposes a deterministic per-round availability mask (round → hour bucket
// → active?), used by the availability-aware selection extension.

#ifndef CDT_TRACE_AVAILABILITY_H_
#define CDT_TRACE_AVAILABILITY_H_

#include <cstdint>
#include <vector>

#include "trace/trip.h"
#include "util/status.h"

namespace cdt {
namespace trace {

/// Per-seller periodic availability (default: 24 one-hour buckets).
class AvailabilityModel {
 public:
  /// Builds masks for `taxi_ids` (the seller pool, in seller-index order)
  /// from their trips: a seller is available in a bucket iff it has at
  /// least `min_trips` trips whose timestamp falls in that bucket
  /// (mod the period).
  static util::Result<AvailabilityModel> FromTrips(
      const std::vector<TripRecord>& trips,
      const std::vector<std::int64_t>& taxi_ids, int buckets = 24,
      std::int64_t seconds_per_bucket = 3600, int min_trips = 1);

  /// Uniform availability (every seller always on) — the paper's model.
  static AvailabilityModel AlwaysAvailable(int num_sellers);

  int num_sellers() const { return static_cast<int>(masks_.size()); }
  int buckets() const { return buckets_; }

  /// Deterministic availability of `seller` in 1-based `round`:
  /// bucket = (round - 1) % buckets.
  bool IsAvailable(int seller, std::int64_t round) const;

  /// Fraction of buckets in which the seller is available.
  double AvailabilityRate(int seller) const;

  /// Number of sellers available in `round`.
  int AvailableCount(std::int64_t round) const;

  const std::vector<std::vector<bool>>& masks() const { return masks_; }

 private:
  AvailabilityModel(std::vector<std::vector<bool>> masks, int buckets)
      : masks_(std::move(masks)), buckets_(buckets) {}

  std::vector<std::vector<bool>> masks_;  // [seller][bucket]
  int buckets_;
};

}  // namespace trace
}  // namespace cdt

#endif  // CDT_TRACE_AVAILABILITY_H_
