// Synthetic trace generator standing in for the Kaggle "Chicago Taxi Trips"
// dataset used in the paper's evaluation (Sec. V-A). The real trace is not
// available offline; this generator reproduces the properties the paper's
// pipeline consumes: ~27k trip records over 300 taxis, zone popularity with
// a heavy downtown skew, per-taxi activity heterogeneity, and trip miles
// correlated with pick-up/drop-off zone distance. See DESIGN.md §3.

#ifndef CDT_TRACE_GENERATOR_H_
#define CDT_TRACE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "stats/rng.h"
#include "trace/trip.h"
#include "util/status.h"

namespace cdt {
namespace trace {

/// Parameters of the synthetic trace.
struct TraceConfig {
  std::int64_t num_taxis = 300;       // paper: 300 taxis found in the trace
  std::int64_t num_records = 27465;   // paper: 27465 records
  std::int32_t num_zones = 77;        // Chicago community areas
  double zone_zipf_exponent = 1.0;    // popularity skew across zones
  double taxi_zipf_exponent = 0.6;    // activity skew across taxis
  std::int64_t duration_seconds = 30LL * 24 * 3600;  // 30-day window
  double grid_extent_miles = 25.0;    // city bounding box edge
  std::uint64_t seed = 20210419;      // default deterministic seed

  /// Validates ranges (positive counts, non-negative exponents).
  util::Status Validate() const;
};

/// A generated trace: trips sorted by timestamp plus zone centroids.
struct Trace {
  TraceConfig config;
  std::vector<TripRecord> trips;
  std::vector<ZoneLocation> zones;  // indexed by zone id

  /// Distinct taxi count actually present in `trips`.
  std::int64_t DistinctTaxis() const;
};

/// Deterministically generates a trace from `config`.
util::Result<Trace> GenerateTrace(const TraceConfig& config);

}  // namespace trace
}  // namespace cdt

#endif  // CDT_TRACE_GENERATOR_H_
