#include "trace/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/distributions.h"

namespace cdt {
namespace trace {

using util::Result;
using util::Status;

Status TraceConfig::Validate() const {
  if (num_taxis <= 0) return Status::InvalidArgument("num_taxis must be > 0");
  if (num_records <= 0) {
    return Status::InvalidArgument("num_records must be > 0");
  }
  if (num_zones <= 1) return Status::InvalidArgument("num_zones must be > 1");
  if (zone_zipf_exponent < 0.0 || taxi_zipf_exponent < 0.0) {
    return Status::InvalidArgument("zipf exponents must be >= 0");
  }
  if (duration_seconds <= 0) {
    return Status::InvalidArgument("duration_seconds must be > 0");
  }
  if (grid_extent_miles <= 0.0) {
    return Status::InvalidArgument("grid_extent_miles must be > 0");
  }
  return Status::OK();
}

std::int64_t Trace::DistinctTaxis() const {
  std::set<std::int64_t> ids;
  for (const TripRecord& t : trips) ids.insert(t.taxi_id);
  return static_cast<std::int64_t>(ids.size());
}

Result<Trace> GenerateTrace(const TraceConfig& config) {
  CDT_RETURN_NOT_OK(config.Validate());
  stats::Xoshiro256 rng(config.seed);

  Trace trace;
  trace.config = config;

  // Zone centroids: uniform over the city grid, with zone 0 ("downtown")
  // pinned at the centre so the Zipf-popular zones cluster geographically.
  trace.zones.resize(static_cast<std::size_t>(config.num_zones));
  double half = config.grid_extent_miles / 2.0;
  trace.zones[0] = {half, half};
  for (std::size_t z = 1; z < trace.zones.size(); ++z) {
    trace.zones[z] = {rng.NextDouble(0.0, config.grid_extent_miles),
                      rng.NextDouble(0.0, config.grid_extent_miles)};
  }

  auto zone_sampler = stats::ZipfSampler::Create(
      static_cast<std::size_t>(config.num_zones), config.zone_zipf_exponent);
  if (!zone_sampler.ok()) return zone_sampler.status();
  auto taxi_sampler = stats::ZipfSampler::Create(
      static_cast<std::size_t>(config.num_taxis), config.taxi_zipf_exponent);
  if (!taxi_sampler.ok()) return taxi_sampler.status();

  // Shuffle taxi ranks so taxi id is not correlated with activity level.
  std::vector<std::int64_t> taxi_of_rank(
      static_cast<std::size_t>(config.num_taxis));
  for (std::size_t i = 0; i < taxi_of_rank.size(); ++i) {
    taxi_of_rank[i] = static_cast<std::int64_t>(i + 1);  // ids are 1-based
  }
  for (std::size_t i = taxi_of_rank.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(rng.NextBounded(i));
    std::swap(taxi_of_rank[i - 1], taxi_of_rank[j]);
  }

  stats::GaussianSampler noise;
  trace.trips.reserve(static_cast<std::size_t>(config.num_records));
  for (std::int64_t r = 0; r < config.num_records; ++r) {
    TripRecord trip;
    trip.taxi_id = taxi_of_rank[taxi_sampler.value().Sample(rng)];
    trip.timestamp =
        static_cast<std::int64_t>(rng.NextBounded(
            static_cast<std::uint64_t>(config.duration_seconds)));
    trip.pickup_zone =
        static_cast<std::int32_t>(zone_sampler.value().Sample(rng));
    trip.dropoff_zone =
        static_cast<std::int32_t>(zone_sampler.value().Sample(rng));
    const ZoneLocation& a =
        trace.zones[static_cast<std::size_t>(trip.pickup_zone)];
    const ZoneLocation& b =
        trace.zones[static_cast<std::size_t>(trip.dropoff_zone)];
    double euclid = std::hypot(a.x - b.x, a.y - b.y);
    // Street distance exceeds Euclidean; add multiplicative noise. Same-zone
    // trips get a short intra-zone distance.
    double base = euclid > 0.0 ? euclid * 1.3 : 0.8;
    double miles = base * std::max(0.2, 1.0 + 0.15 * noise.Sample(rng));
    trip.trip_miles = miles;
    trace.trips.push_back(trip);
  }

  std::sort(trace.trips.begin(), trace.trips.end(),
            [](const TripRecord& a, const TripRecord& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.taxi_id < b.taxi_id;
            });
  return trace;
}

}  // namespace trace
}  // namespace cdt
