// PoI extraction: the paper "selects some pick-up/drop-off points as the
// PoIs" — we rank zones by total pick-up + drop-off traffic and take the
// top-L as Points of Interest.

#ifndef CDT_TRACE_POI_H_
#define CDT_TRACE_POI_H_

#include <cstdint>
#include <vector>

#include "trace/generator.h"
#include "util/status.h"

namespace cdt {
namespace trace {

/// One extracted Point of Interest.
struct Poi {
  std::int32_t zone_id = 0;
  ZoneLocation location;
  std::int64_t visit_count = 0;  // pick-ups + drop-offs in the trace
};

/// Returns the `num_pois` busiest zones, ordered by descending traffic
/// (ties broken by zone id). Errors when the trace has fewer active zones.
util::Result<std::vector<Poi>> ExtractPois(const Trace& trace,
                                           std::size_t num_pois);

}  // namespace trace
}  // namespace cdt

#endif  // CDT_TRACE_POI_H_
