// Trip record schema for the (synthetic) Chicago-taxi-like trace the paper
// evaluates on. Each entry mirrors the fields the paper names: taxi id,
// timestamp, trip miles, and pick-up / drop-off locations.

#ifndef CDT_TRACE_TRIP_H_
#define CDT_TRACE_TRIP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/csv.h"
#include "util/status.h"

namespace cdt {
namespace trace {

/// A geographic zone centroid (abstract city grid coordinates).
struct ZoneLocation {
  double x = 0.0;
  double y = 0.0;
};

/// One taxi trip record.
struct TripRecord {
  std::int64_t taxi_id = 0;
  /// Seconds since the start of the trace window.
  std::int64_t timestamp = 0;
  double trip_miles = 0.0;
  /// Zone ids for pick-up and drop-off.
  std::int32_t pickup_zone = 0;
  std::int32_t dropoff_zone = 0;

  bool operator==(const TripRecord& other) const = default;
};

/// CSV header used by the loader/saver.
util::CsvRow TripCsvHeader();

/// Serialises a trip into a CSV row matching TripCsvHeader().
util::CsvRow TripToCsvRow(const TripRecord& trip);

/// Parses a CSV row (validated field count and numeric content).
util::Result<TripRecord> TripFromCsvRow(const util::CsvRow& row);

}  // namespace trace
}  // namespace cdt

#endif  // CDT_TRACE_TRIP_H_
