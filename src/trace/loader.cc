#include "trace/loader.h"

#include "util/csv.h"

namespace cdt {
namespace trace {

using util::Result;
using util::Status;

Status SaveTrips(const std::string& path,
                 const std::vector<TripRecord>& trips) {
  util::CsvTable table;
  table.header = TripCsvHeader();
  table.rows.reserve(trips.size());
  for (const TripRecord& trip : trips) {
    table.rows.push_back(TripToCsvRow(trip));
  }
  return util::WriteCsvFile(path, table);
}

Result<std::vector<TripRecord>> LoadTrips(const std::string& path) {
  Result<util::CsvTable> table = util::ReadCsvFile(path);
  if (!table.ok()) return table.status();
  if (table.value().header != TripCsvHeader()) {
    return Status::ParseError("unexpected trip CSV header in " + path);
  }
  std::vector<TripRecord> trips;
  trips.reserve(table.value().rows.size());
  for (std::size_t i = 0; i < table.value().rows.size(); ++i) {
    Result<TripRecord> trip = TripFromCsvRow(table.value().rows[i]);
    if (!trip.ok()) {
      return Status::ParseError("row " + std::to_string(i + 1) + ": " +
                                trip.status().message());
    }
    trips.push_back(trip.value());
  }
  return trips;
}

}  // namespace trace
}  // namespace cdt
