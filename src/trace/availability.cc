#include "trace/availability.h"

#include <map>

namespace cdt {
namespace trace {

using util::Result;
using util::Status;

Result<AvailabilityModel> AvailabilityModel::FromTrips(
    const std::vector<TripRecord>& trips,
    const std::vector<std::int64_t>& taxi_ids, int buckets,
    std::int64_t seconds_per_bucket, int min_trips) {
  if (taxi_ids.empty()) {
    return Status::InvalidArgument("need >= 1 taxi id");
  }
  if (buckets <= 0) return Status::InvalidArgument("buckets must be > 0");
  if (seconds_per_bucket <= 0) {
    return Status::InvalidArgument("seconds_per_bucket must be > 0");
  }
  if (min_trips <= 0) {
    return Status::InvalidArgument("min_trips must be > 0");
  }

  std::map<std::int64_t, std::size_t> index_of;
  for (std::size_t i = 0; i < taxi_ids.size(); ++i) {
    if (index_of.count(taxi_ids[i]) > 0) {
      return Status::InvalidArgument("duplicate taxi id " +
                                     std::to_string(taxi_ids[i]));
    }
    index_of[taxi_ids[i]] = i;
  }

  std::vector<std::vector<int>> counts(
      taxi_ids.size(), std::vector<int>(static_cast<std::size_t>(buckets), 0));
  for (const TripRecord& trip : trips) {
    auto it = index_of.find(trip.taxi_id);
    if (it == index_of.end()) continue;
    std::size_t bucket = static_cast<std::size_t>(
        (trip.timestamp / seconds_per_bucket) %
        static_cast<std::int64_t>(buckets));
    ++counts[it->second][bucket];
  }

  std::vector<std::vector<bool>> masks(
      taxi_ids.size(),
      std::vector<bool>(static_cast<std::size_t>(buckets), false));
  for (std::size_t i = 0; i < taxi_ids.size(); ++i) {
    bool any = false;
    for (std::size_t b = 0; b < static_cast<std::size_t>(buckets); ++b) {
      masks[i][b] = counts[i][b] >= min_trips;
      any = any || masks[i][b];
    }
    // A seller with no qualifying bucket would be unselectable forever;
    // keep it reachable in its single busiest bucket.
    if (!any) {
      std::size_t best = 0;
      for (std::size_t b = 1; b < static_cast<std::size_t>(buckets); ++b) {
        if (counts[i][b] > counts[i][best]) best = b;
      }
      masks[i][best] = true;
    }
  }
  return AvailabilityModel(std::move(masks), buckets);
}

AvailabilityModel AvailabilityModel::AlwaysAvailable(int num_sellers) {
  std::vector<std::vector<bool>> masks(
      static_cast<std::size_t>(num_sellers), std::vector<bool>(1, true));
  return AvailabilityModel(std::move(masks), 1);
}

bool AvailabilityModel::IsAvailable(int seller, std::int64_t round) const {
  std::size_t bucket = static_cast<std::size_t>(
      (round - 1) % static_cast<std::int64_t>(buckets_));
  return masks_.at(static_cast<std::size_t>(seller))[bucket];
}

double AvailabilityModel::AvailabilityRate(int seller) const {
  const std::vector<bool>& mask =
      masks_.at(static_cast<std::size_t>(seller));
  int on = 0;
  for (bool b : mask) on += b ? 1 : 0;
  return static_cast<double>(on) / static_cast<double>(mask.size());
}

int AvailabilityModel::AvailableCount(std::int64_t round) const {
  int count = 0;
  for (int i = 0; i < num_sellers(); ++i) {
    if (IsAvailable(i, round)) ++count;
  }
  return count;
}

}  // namespace trace
}  // namespace cdt
