// CSV persistence for traces: save a generated trace to disk and load it
// back. Allows experiments to pin an exact trace file and lets users drop in
// the real Chicago trace (same schema) when they have it.

#ifndef CDT_TRACE_LOADER_H_
#define CDT_TRACE_LOADER_H_

#include <string>
#include <vector>

#include "trace/trip.h"
#include "util/status.h"

namespace cdt {
namespace trace {

/// Writes trips as CSV (header: taxi_id,timestamp,trip_miles,pickup_zone,
/// dropoff_zone).
util::Status SaveTrips(const std::string& path,
                       const std::vector<TripRecord>& trips);

/// Reads trips from a CSV file written by SaveTrips (or the real dataset
/// exported to the same schema). Validates every row.
util::Result<std::vector<TripRecord>> LoadTrips(const std::string& path);

}  // namespace trace
}  // namespace cdt

#endif  // CDT_TRACE_LOADER_H_
