#include "trace/trip.h"

#include "util/string_util.h"

namespace cdt {
namespace trace {

using util::CsvRow;
using util::Result;
using util::Status;

CsvRow TripCsvHeader() {
  return {"taxi_id", "timestamp", "trip_miles", "pickup_zone",
          "dropoff_zone"};
}

CsvRow TripToCsvRow(const TripRecord& trip) {
  return {std::to_string(trip.taxi_id), std::to_string(trip.timestamp),
          util::FormatDouble(trip.trip_miles, 3),
          std::to_string(trip.pickup_zone),
          std::to_string(trip.dropoff_zone)};
}

Result<TripRecord> TripFromCsvRow(const CsvRow& row) {
  if (row.size() != 5) {
    return Status::ParseError("trip row must have 5 fields, got " +
                              std::to_string(row.size()));
  }
  auto taxi = util::ParseInt(row[0]);
  if (!taxi.ok()) return taxi.status();
  auto ts = util::ParseInt(row[1]);
  if (!ts.ok()) return ts.status();
  auto miles = util::ParseDouble(row[2]);
  if (!miles.ok()) return miles.status();
  auto pickup = util::ParseInt(row[3]);
  if (!pickup.ok()) return pickup.status();
  auto dropoff = util::ParseInt(row[4]);
  if (!dropoff.ok()) return dropoff.status();

  TripRecord trip;
  trip.taxi_id = taxi.value();
  trip.timestamp = ts.value();
  trip.trip_miles = miles.value();
  trip.pickup_zone = static_cast<std::int32_t>(pickup.value());
  trip.dropoff_zone = static_cast<std::int32_t>(dropoff.value());
  if (trip.trip_miles < 0.0) {
    return Status::ParseError("negative trip miles");
  }
  return trip;
}

}  // namespace trace
}  // namespace cdt
