#include "market/invariants.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "game/profit.h"
#include "game/stackelberg.h"
#include "market/trading_engine.h"

namespace cdt {
namespace market {

using util::Status;

const char* InvariantKindName(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kLedgerConservation:
      return "LedgerConservation";
    case InvariantKind::kIndividualRationality:
      return "IndividualRationality";
    case InvariantKind::kStationarity:
      return "Stationarity";
    case InvariantKind::kBanditSanity:
      return "BanditSanity";
  }
  return "Unknown";
}

std::string InvariantViolation::ToString() const {
  std::ostringstream os;
  os << "[" << InvariantKindName(kind) << "] round " << round << " " << check
     << ": " << detail << " (|residual|=" << magnitude << ")";
  return os.str();
}

namespace {

double RelScale(double a, double b) {
  return std::max({1.0, std::fabs(a), std::fabs(b)});
}

std::string Num(double x) {
  std::ostringstream os;
  os.precision(12);
  os << x;
  return os.str();
}

}  // namespace

InvariantChecker::InvariantChecker(InvariantOptions options)
    : options_(options) {}

void InvariantChecker::AddViolation(InvariantKind kind, std::int64_t round,
                                    std::string check, std::string detail,
                                    double magnitude) {
  ++violation_count_;
  if (violations_.size() >= options_.max_violations) {
    truncated_ = true;
    return;
  }
  InvariantViolation v;
  v.kind = kind;
  v.round = round;
  v.check = std::move(check);
  v.detail = std::move(detail);
  v.magnitude = magnitude;
  violations_.push_back(std::move(v));
}

Status InvariantChecker::ResetBaseline(const Ledger& ledger,
                                       const bandit::EstimatorBank* estimates,
                                       std::int64_t last_round) {
  if (last_round < 0) {
    return Status::InvalidArgument("baseline round must be >= 0");
  }
  expected_consumer_outflow_ = ledger.ConsumerOutflow();
  expected_seller_inflow_ = ledger.SellerInflow();
  expected_seller_balance_.assign(
      static_cast<std::size_t>(ledger.num_sellers()), 0.0);
  for (int i = 0; i < ledger.num_sellers(); ++i) {
    util::Result<double> balance = ledger.Balance(i);
    if (!balance.ok()) return balance.status();
    expected_seller_balance_[static_cast<std::size_t>(i)] = balance.value();
  }
  if (estimates != nullptr) {
    prev_total_observations_ = estimates->total_observations();
    prev_arm_observations_.assign(
        static_cast<std::size_t>(estimates->num_arms()), 0);
    for (int i = 0; i < estimates->num_arms(); ++i) {
      prev_arm_observations_[static_cast<std::size_t>(i)] =
          estimates->arm(i).observations;
    }
  } else {
    prev_total_observations_ = 0;
    prev_arm_observations_.clear();
  }
  last_round_ = last_round;
  cumulative_regret_ = 0.0;
  return Status::OK();
}

Status InvariantChecker::OnRound(const TradingEngine& engine,
                                 const RoundReport& report) {
  const EngineConfig& config = engine.config();
  EngineStateView view;
  view.ledger = &engine.ledger();
  view.estimates = &engine.pricing_estimates();
  view.seller_costs = &config.seller_costs;
  view.platform_cost = config.platform_cost;
  view.valuation = config.valuation;
  view.consumer_price_bounds = config.consumer_price_bounds;
  view.collection_price_bounds = config.collection_price_bounds;
  view.max_sensing_time = config.job.round_duration;
  view.num_pois = config.job.num_pois;
  view.num_selected = config.num_selected;
  view.oracle_round_revenue = engine.oracle_round_revenue();
  return Check(view, report);
}

Status InvariantChecker::Check(const EngineStateView& view,
                               const RoundReport& report) {
  std::size_t before = violation_count_;

  // Basic report shape; everything downstream indexes these in lockstep.
  // (A voided round keeps its committed coalition with zeroed tau, so k
  // stays positive even when nothing was delivered.)
  std::size_t k = report.selected.size();
  if (report.tau.size() != k || report.seller_profits.size() != k ||
      report.game_qualities.size() != k || k == 0 ||
      (!report.contracted_tau.empty() && report.contracted_tau.size() != k)) {
    AddViolation(InvariantKind::kLedgerConservation, report.round,
                 "report.shape",
                 "selected/tau/profits/qualities sizes disagree (" +
                     std::to_string(k) + "/" + std::to_string(report.tau.size()) +
                     "/" + std::to_string(report.seller_profits.size()) + "/" +
                     std::to_string(report.game_qualities.size()) + ")",
                 static_cast<double>(k));
  } else {
    if (report.round <= last_round_) {
      AddViolation(InvariantKind::kBanditSanity, report.round,
                   "round.monotone",
                   "round " + std::to_string(report.round) +
                       " not after previously observed round " +
                       std::to_string(last_round_),
                   static_cast<double>(last_round_ - report.round + 1));
    }
    if (view.ledger != nullptr) CheckLedger(view, report);
    CheckProfits(view, report);
    if (options_.check_stationarity) CheckStationarity(view, report);
    if (options_.check_bandit) CheckBandit(view, report);
  }
  last_round_ = std::max(last_round_, report.round);

  if (violation_count_ == before) return Status::OK();
  std::size_t fresh = violation_count_ - before;
  std::ostringstream os;
  os << "invariant violation in round " << report.round << ": ";
  if (before < violations_.size()) {
    os << violations_[before].ToString();
  } else {
    os << "(record truncated after " << violations_.size() << " entries)";
  }
  if (fresh > 1) os << " [+" << fresh - 1 << " more]";
  return Status::Internal(os.str());
}

void InvariantChecker::CheckLedger(const EngineStateView& view,
                                   const RoundReport& report) {
  const Ledger& ledger = *view.ledger;
  double tol = options_.ledger_tolerance;
  auto expect_eq = [&](const char* check, double got, double want) {
    double residual = std::fabs(got - want);
    if (residual > tol * RelScale(got, want)) {
      AddViolation(InvariantKind::kLedgerConservation, report.round, check,
                   "got " + Num(got) + ", want " + Num(want), residual);
    }
  };

  double reward = report.consumer_price * report.total_time;
  double payments = 0.0;
  for (double tau : report.tau) payments += report.collection_price * tau;
  expected_consumer_outflow_ += reward;
  expected_seller_inflow_ += payments;
  if (expected_seller_balance_.size() <
      static_cast<std::size_t>(ledger.num_sellers())) {
    expected_seller_balance_.resize(
        static_cast<std::size_t>(ledger.num_sellers()), 0.0);
  }
  for (std::size_t j = 0; j < report.selected.size(); ++j) {
    int seller = report.selected[j];
    if (seller < 0 || seller >= ledger.num_sellers()) {
      AddViolation(InvariantKind::kLedgerConservation, report.round,
                   "ledger.seller_index",
                   "selected seller " + std::to_string(seller) +
                       " outside ledger account range",
                   static_cast<double>(seller));
      continue;
    }
    expected_seller_balance_[static_cast<std::size_t>(seller)] +=
        report.collection_price * report.tau[j];
  }

  // Double-entry: the sum of all balances cancels to zero. The residual is
  // pure floating-point cancellation error, which grows with the total
  // money volume moved, so the tolerance scales with the cumulative flows
  // rather than the (zero) expected value.
  double net = ledger.NetPosition();
  double volume = ledger.ConsumerOutflow() + ledger.SellerInflow();
  if (std::fabs(net) > tol * std::max(1.0, volume)) {
    AddViolation(InvariantKind::kLedgerConservation, report.round,
                 "ledger.net_position",
                 "net position " + Num(net) + " after moving " + Num(volume) +
                     " total",
                 std::fabs(net));
  }
  // Consumer outflow == platform inflow == Σ_t p^{J,t} Στ^t.
  expect_eq("ledger.consumer_outflow", ledger.ConsumerOutflow(),
            expected_consumer_outflow_);
  // Platform outflow == Σ seller payments == Σ_t Σ_i p^t τ_i^t.
  expect_eq("ledger.seller_inflow", ledger.SellerInflow(),
            expected_seller_inflow_);
  util::Result<double> consumer = ledger.Balance(kConsumerAccount);
  util::Result<double> platform = ledger.Balance(kPlatformAccount);
  if (consumer.ok() && platform.ok()) {
    expect_eq("ledger.consumer_balance", consumer.value(),
              -expected_consumer_outflow_);
    expect_eq("ledger.platform_balance", platform.value(),
              expected_consumer_outflow_ - expected_seller_inflow_);
  } else {
    AddViolation(InvariantKind::kLedgerConservation, report.round,
                 "ledger.accounts", "consumer/platform accounts unreadable",
                 0.0);
  }
  for (std::size_t j = 0; j < report.selected.size(); ++j) {
    int seller = report.selected[j];
    if (seller < 0 || seller >= ledger.num_sellers()) continue;
    util::Result<double> balance = ledger.Balance(seller);
    if (!balance.ok()) continue;
    double want = expected_seller_balance_[static_cast<std::size_t>(seller)];
    double residual = std::fabs(balance.value() - want);
    if (residual > tol * RelScale(balance.value(), want)) {
      AddViolation(InvariantKind::kLedgerConservation, report.round,
                   "ledger.seller_balance",
                   "seller " + std::to_string(seller) + " balance " +
                       Num(balance.value()) + ", want " + Num(want),
                   residual);
    }
  }
  // Per-round conservation identity linking money flow to the reported
  // platform profit: p^J Στ − p Στ = Ω + C^J(Στ)  (Eq. 7).
  double aggregation_cost =
      game::PlatformCost(view.platform_cost, report.total_time);
  expect_eq("ledger.flow_identity", reward - payments,
            report.platform_profit + aggregation_cost);
}

void InvariantChecker::CheckProfits(const EngineStateView& view,
                                    const RoundReport& report) {
  double tol = options_.ledger_tolerance;
  auto expect_eq = [&](const char* check, double got, double want) {
    double residual = std::fabs(got - want);
    if (residual > tol * RelScale(got, want)) {
      AddViolation(InvariantKind::kIndividualRationality, report.round, check,
                   "reported " + Num(got) + ", recomputed " + Num(want),
                   residual);
    }
  };

  // Finiteness of everything the round reports.
  bool finite = std::isfinite(report.consumer_price) &&
                std::isfinite(report.collection_price) &&
                std::isfinite(report.total_time) &&
                std::isfinite(report.consumer_profit) &&
                std::isfinite(report.platform_profit) &&
                std::isfinite(report.seller_profit_total);
  for (double tau : report.tau) finite = finite && std::isfinite(tau);
  for (double psi : report.seller_profits) finite = finite && std::isfinite(psi);
  if (!finite) {
    AddViolation(InvariantKind::kIndividualRationality, report.round,
                 "report.finite", "non-finite price/time/profit in report",
                 0.0);
    return;
  }

  // Eq. 5/7/9 consistency: the reported profits must equal the profit
  // functions evaluated at the reported strategies.
  expect_eq("report.total_time", report.total_time,
            game::TotalTime(report.tau));
  double quality_sum = 0.0;
  for (double q : report.game_qualities) quality_sum += q;
  double mean_quality =
      quality_sum / static_cast<double>(report.game_qualities.size());
  expect_eq("report.consumer_profit", report.consumer_profit,
            game::ConsumerProfit(report.consumer_price, mean_quality,
                                 report.total_time, view.valuation));
  expect_eq("report.platform_profit", report.platform_profit,
            game::PlatformProfit(report.consumer_price,
                                 report.collection_price, report.total_time,
                                 view.platform_cost));
  double psi_total = 0.0;
  bool costs_ok = view.seller_costs != nullptr;
  for (std::size_t j = 0; j < report.selected.size(); ++j) {
    int seller = report.selected[j];
    if (!costs_ok || seller < 0 ||
        seller >= static_cast<int>(view.seller_costs->size())) {
      costs_ok = false;
      break;
    }
    double psi = game::SellerProfit(
        report.collection_price, report.tau[j],
        (*view.seller_costs)[static_cast<std::size_t>(seller)],
        report.game_qualities[j]);
    double residual = std::fabs(psi - report.seller_profits[j]);
    if (residual > tol * RelScale(psi, report.seller_profits[j])) {
      AddViolation(InvariantKind::kIndividualRationality, report.round,
                   "report.seller_profit",
                   "seller " + std::to_string(seller) + " reported " +
                       Num(report.seller_profits[j]) + ", recomputed " +
                       Num(psi),
                   residual);
    }
    psi_total += report.seller_profits[j];
  }
  expect_eq("report.seller_profit_total", report.seller_profit_total,
            psi_total);

  // Individual rationality (Thm. 14): at the Stage-3 best response of
  // Eq. (20) a seller never incurs a loss — the interior optimum dominates
  // τ = 0 whose profit is exactly zero. Round-1 exploration imposes τ^0
  // instead of a best response, so IR is only guaranteed for regular rounds.
  if (!report.initial_exploration) {
    for (std::size_t j = 0; j < report.selected.size(); ++j) {
      double payment = report.collection_price * report.tau[j];
      double floor = -options_.ir_epsilon * std::max(1.0, std::fabs(payment));
      if (report.seller_profits[j] < floor) {
        AddViolation(InvariantKind::kIndividualRationality, report.round,
                     "ir.seller",
                     "seller " + std::to_string(report.selected[j]) +
                         " realises " + Num(report.seller_profits[j]) +
                         " < 0 at its best response (payment " +
                         Num(payment) + ")",
                     std::fabs(report.seller_profits[j]));
      }
    }
  }
}

void InvariantChecker::CheckStationarity(const EngineStateView& view,
                                         const RoundReport& report) {
  // Round-1 exploration plays the fixed (p_max, τ^0) opening, not an
  // equilibrium — there is nothing stationary to verify. A voided round
  // traded nothing (zero tau, zero flows), so no stage played either.
  if (report.initial_exploration || report.voided) return;
  if (view.seller_costs == nullptr) return;

  double tol = options_.stationarity_tolerance;
  double pj = report.consumer_price;
  double p = report.collection_price;

  // Rebuild the round's game exactly as the engine priced it.
  game::GameConfig game_config;
  game_config.sellers.reserve(report.selected.size());
  for (int seller : report.selected) {
    if (seller < 0 ||
        seller >= static_cast<int>(view.seller_costs->size())) {
      AddViolation(InvariantKind::kStationarity, report.round,
                   "stationarity.config",
                   "selected seller " + std::to_string(seller) +
                       " has no cost parameters",
                   static_cast<double>(seller));
      return;
    }
    game_config.sellers.push_back(
        (*view.seller_costs)[static_cast<std::size_t>(seller)]);
  }
  game_config.qualities = report.game_qualities;
  game_config.platform = view.platform_cost;
  game_config.valuation = view.valuation;
  game_config.consumer_price_bounds = view.consumer_price_bounds;
  game_config.collection_price_bounds = view.collection_price_bounds;
  game_config.max_sensing_time = view.max_sensing_time;
  util::Result<game::StackelbergSolver> solver =
      game::StackelbergSolver::Create(std::move(game_config));
  if (!solver.ok()) {
    AddViolation(InvariantKind::kStationarity, report.round,
                 "stationarity.config",
                 "round game not solvable: " + solver.status().ToString(),
                 0.0);
    return;
  }

  // Prices must lie inside their feasible boxes (Def. 5).
  auto expect_in_box = [&](const char* check, double price,
                           const util::Interval& box) {
    double slack = tol * std::max(1.0, std::fabs(price));
    if (price < box.lo - slack || price > box.hi + slack) {
      AddViolation(InvariantKind::kStationarity, report.round, check,
                   "price " + Num(price) + " outside [" + Num(box.lo) + ", " +
                       Num(box.hi) + "]",
                   std::max(box.lo - price, price - box.hi));
    }
  };
  expect_in_box("stationarity.consumer_box", pj, view.consumer_price_bounds);
  expect_in_box("stationarity.collection_box", p,
                view.collection_price_bounds);

  // Stage 3 (Thm. 14 / Eq. 20): every contracted τ_i is the seller's best
  // response, and interior times satisfy the first-order condition
  // p = q̄(2aτ + b). Under partial delivery the contracted best responses
  // live in contracted_tau and the delivered times must only stay within
  // [0, contracted].
  const std::vector<double>& contracted =
      report.contracted_tau.empty() ? report.tau : report.contracted_tau;
  if (!report.contracted_tau.empty()) {
    for (std::size_t j = 0; j < report.tau.size(); ++j) {
      double slack = tol * std::max(1.0, std::fabs(contracted[j]));
      if (report.tau[j] < -slack || report.tau[j] > contracted[j] + slack) {
        AddViolation(InvariantKind::kStationarity, report.round,
                     "stationarity.delivered_bounds",
                     "seller " + std::to_string(report.selected[j]) +
                         " delivered tau " + Num(report.tau[j]) +
                         " outside [0, contracted " + Num(contracted[j]) +
                         "]",
                     std::max(-report.tau[j],
                              report.tau[j] - contracted[j]));
      }
    }
  }
  double t_cap = view.max_sensing_time;
  bool all_interior = true;
  for (std::size_t j = 0; j < contracted.size(); ++j) {
    double tau = contracted[j];
    double best = solver.value().SellerBestTime(static_cast<int>(j), p);
    double residual = std::fabs(tau - best);
    if (residual > tol * std::max(1.0, std::fabs(best))) {
      AddViolation(InvariantKind::kStationarity, report.round,
                   "stationarity.tau",
                   "seller " + std::to_string(report.selected[j]) + " tau " +
                       Num(tau) + ", best response " + Num(best),
                   residual);
    }
    double q = report.game_qualities[j];
    const game::SellerCostParams& cost =
        (*view.seller_costs)[static_cast<std::size_t>(report.selected[j])];
    // KKT check of Thm. 14: at the reported τ either the first-order
    // condition p = q̄(2aτ + b) holds, or the marginal profit points into
    // the active box bound. Classifying by the FOC sign (rather than by
    // distance to the bounds) keeps tiny-but-interior optima legal.
    double foc = p - q * (2.0 * cost.a * tau + cost.b);
    double foc_tol = tol * std::max(1.0, std::fabs(p));
    if (std::fabs(foc) <= foc_tol) {
      if (!(tau > 0.0) || !(tau < t_cap)) all_interior = false;
    } else if (foc > 0.0) {
      all_interior = false;
      // Marginal profit positive at τ: only consistent with the τ = T cap.
      if (tau < t_cap - tol * std::max(1.0, t_cap)) {
        AddViolation(InvariantKind::kStationarity, report.round,
                     "stationarity.seller_foc",
                     "seller " + std::to_string(report.selected[j]) +
                         " tau " + Num(tau) +
                         " below the cap despite positive marginal profit " +
                         Num(foc),
                     foc);
      }
    } else {
      all_interior = false;
      // Marginal profit negative at τ: only consistent with τ = 0.
      if (tau > tol) {
        AddViolation(InvariantKind::kStationarity, report.round,
                     "stationarity.seller_foc",
                     "seller " + std::to_string(report.selected[j]) +
                         " tau " + Num(tau) +
                         " > 0 despite negative marginal profit " + Num(foc),
                     -foc);
      }
    }
  }

  // Stage 2 (Eq. 7): the platform's price is profit-maximising against the
  // sellers' best responses. Value comparison (the argmax can sit on a
  // profit plateau) against the re-solved exact best response.
  double p_star = solver.value().PlatformBestPrice(pj);
  double omega_at = solver.value().PlatformProfitAnticipating(pj, p);
  double omega_star = solver.value().PlatformProfitAnticipating(pj, p_star);
  if (omega_star - omega_at > tol * std::max(1.0, std::fabs(omega_star))) {
    AddViolation(InvariantKind::kStationarity, report.round,
                 "stationarity.platform_opt",
                 "platform profit " + Num(omega_at) + " at p=" + Num(p) +
                     " improvable to " + Num(omega_star) + " at p=" +
                     Num(p_star),
                 omega_star - omega_at);
  }
  // Interior regime: the corrected Theorem-15 closed form (the stationary
  // point of Eq. 7) must reproduce the price.
  if (all_interior) {
    double p_interior = solver.value().PlatformBestPriceInterior(pj);
    const util::Interval& box = view.collection_price_bounds;
    bool unclamped = p_interior > box.lo + tol && p_interior < box.hi - tol;
    if (unclamped &&
        std::fabs(p - p_interior) > tol * std::max(1.0, std::fabs(p))) {
      AddViolation(InvariantKind::kStationarity, report.round,
                   "stationarity.platform_foc",
                   "interior regime but p " + Num(p) +
                       " differs from the Thm. 15 stationary point " +
                       Num(p_interior),
                   std::fabs(p - p_interior));
    }
  }

  // Stage 1 (Eq. 8 / Thm. 16): the consumer's price maximises the
  // anticipated profit; value comparison against a full re-solve. After a
  // default re-settlement p^J stays committed from the pre-fault
  // coalition, so it is not optimal for the survivor game — the consumer
  // optimality claim only applies to un-resettled rounds.
  if (report.resettled) return;
  double pj_star = solver.value().ConsumerBestPrice();
  double f_at = solver.value().ConsumerProfitAnticipating(pj);
  double f_star = solver.value().ConsumerProfitAnticipating(pj_star);
  if (f_star - f_at > tol * std::max(1.0, std::fabs(f_star))) {
    AddViolation(InvariantKind::kStationarity, report.round,
                 "stationarity.consumer_opt",
                 "consumer profit " + Num(f_at) + " at pJ=" + Num(pj) +
                     " improvable to " + Num(f_star) + " at pJ=" +
                     Num(pj_star),
                 f_star - f_at);
  }
}

void InvariantChecker::CheckBandit(const EngineStateView& view,
                                   const RoundReport& report) {
  // Only batches that passed validation feed the estimators: a voided
  // round delivers nothing, and a corrupted report is discarded so it can
  // never bias the quality estimates.
  const std::vector<int> delivered = DeliveredDataSellers(report);
  auto was_delivered = [&delivered](int seller) {
    return std::find(delivered.begin(), delivered.end(), seller) !=
           delivered.end();
  };
  if (view.estimates != nullptr) {
    const bandit::EstimatorBank& bank = *view.estimates;
    if (prev_arm_observations_.size() <
        static_cast<std::size_t>(bank.num_arms())) {
      prev_arm_observations_.resize(static_cast<std::size_t>(bank.num_arms()),
                                    0);
    }
    // Counters are monotone: the round adds exactly L observations per
    // delivering seller, nothing is lost and nothing decays.
    std::uint64_t expected_inc =
        static_cast<std::uint64_t>(view.num_pois) * delivered.size();
    std::uint64_t total = bank.total_observations();
    if (total != prev_total_observations_ + expected_inc) {
      AddViolation(
          InvariantKind::kBanditSanity, report.round, "bandit.total_counter",
          "total observations " + std::to_string(total) + ", expected " +
              std::to_string(prev_total_observations_ + expected_inc),
          std::fabs(static_cast<double>(total) -
                    static_cast<double>(prev_total_observations_ +
                                        expected_inc)));
    }
    prev_total_observations_ = total;
    for (int seller : report.selected) {
      if (seller < 0 || seller >= bank.num_arms()) {
        AddViolation(InvariantKind::kBanditSanity, report.round,
                     "bandit.arm_index",
                     "selected seller " + std::to_string(seller) +
                         " outside the estimator bank",
                     static_cast<double>(seller));
        continue;
      }
      const bandit::ArmState& arm = bank.arm(seller);
      std::uint64_t prev =
          prev_arm_observations_[static_cast<std::size_t>(seller)];
      std::uint64_t arm_inc =
          was_delivered(seller) ? static_cast<std::uint64_t>(view.num_pois)
                                : 0;
      if (arm.observations != prev + arm_inc) {
        AddViolation(InvariantKind::kBanditSanity, report.round,
                     "bandit.arm_counter",
                     "seller " + std::to_string(seller) + " counter " +
                         std::to_string(arm.observations) + ", expected " +
                         std::to_string(prev + arm_inc),
                     0.0);
      }
      prev_arm_observations_[static_cast<std::size_t>(seller)] =
          arm.observations;
      if (!(arm.mean >= -1e-9 && arm.mean <= 1.0 + 1e-9)) {
        AddViolation(InvariantKind::kBanditSanity, report.round,
                     "bandit.mean_range",
                     "seller " + std::to_string(seller) +
                         " mean quality estimate " + Num(arm.mean) +
                         " outside [0, 1]",
                     std::fabs(arm.mean - 0.5) - 0.5);
      }
      if (arm.observations > 0 && !std::isfinite(bank.UcbValue(seller))) {
        AddViolation(InvariantKind::kBanditSanity, report.round,
                     "bandit.ucb_finite",
                     "seller " + std::to_string(seller) +
                         " has a non-finite UCB index despite " +
                         std::to_string(arm.observations) + " observations",
                     0.0);
      }
    }
  }

  // Regret monotonicity under the oracle definition (Eq. 34): a K-sized
  // selection can never beat the oracle's expected revenue, so every
  // increment is non-negative and the cumulative regret non-decreasing.
  if (view.oracle_round_revenue > 0.0 &&
      report.selected.size() ==
          static_cast<std::size_t>(view.num_selected)) {
    double increment =
        view.oracle_round_revenue - report.expected_quality_revenue;
    double slack =
        options_.ledger_tolerance *
        std::max(1.0, std::fabs(view.oracle_round_revenue));
    if (increment < -slack) {
      AddViolation(InvariantKind::kBanditSanity, report.round,
                   "bandit.regret_monotone",
                   "round expected revenue " +
                       Num(report.expected_quality_revenue) +
                       " exceeds the oracle optimum " +
                       Num(view.oracle_round_revenue),
                   -increment);
    } else {
      cumulative_regret_ += std::max(0.0, increment);
    }
  }
}

}  // namespace market
}  // namespace cdt
