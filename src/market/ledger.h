// Payment ledger: double-entry accounting of every monetary transfer in the
// CDT system (Def. 5's settlement step). Balances must conserve money —
// every transfer debits exactly one account and credits exactly one — which
// the test suite asserts as an invariant across whole simulations.

#ifndef CDT_MARKET_LEDGER_H_
#define CDT_MARKET_LEDGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace cdt {
namespace market {

/// Account identifiers. Seller accounts are kSellerBase + seller index.
enum AccountId : std::int32_t {
  kConsumerAccount = -2,
  kPlatformAccount = -1,
  kSellerBase = 0,
};

/// One recorded transfer.
struct Transfer {
  std::int64_t round = 0;
  std::int32_t from = 0;
  std::int32_t to = 0;
  double amount = 0.0;
  std::string memo;
};

/// Double-entry ledger over the consumer, the platform, and M sellers.
class Ledger {
 public:
  /// `keep_history` false maintains balances only (O(1) memory) — used by
  /// large-N benchmark sweeps; transfers() is then empty.
  explicit Ledger(int num_sellers, bool keep_history = true);

  /// Records a transfer; negative amounts are rejected (use the reverse
  /// direction instead) as are unknown accounts.
  util::Status Record(std::int64_t round, std::int32_t from, std::int32_t to,
                      double amount, std::string memo);

  /// Net balance of an account (credits minus debits; starts at 0).
  util::Result<double> Balance(std::int32_t account) const;

  /// Σ of all balances — exactly 0 under double entry (up to float error).
  double NetPosition() const;

  /// Total amount the consumer has paid out (maintained even without
  /// history).
  double ConsumerOutflow() const { return consumer_outflow_; }

  /// Total amount sellers have received (maintained even without history).
  double SellerInflow() const { return seller_inflow_; }

  const std::vector<Transfer>& transfers() const { return transfers_; }
  int num_sellers() const { return num_sellers_; }
  bool keep_history() const { return keep_history_; }

  /// Restores a previously captured ledger state (snapshot/replay):
  /// per-slot balances (consumer, platform, sellers — size M+2), the
  /// outflow/inflow aggregates, and the transfer history. A history is
  /// only accepted when this ledger keeps one; a history-keeping ledger
  /// accepts an empty history (recorded with track_transfers off).
  util::Status Restore(std::vector<double> balances, double consumer_outflow,
                       double seller_inflow, std::vector<Transfer> transfers);

 private:
  bool ValidAccount(std::int32_t account) const;
  std::size_t SlotOf(std::int32_t account) const;

  int num_sellers_;
  bool keep_history_;
  // Slot 0: consumer, slot 1: platform, slots 2..: sellers.
  std::vector<double> balances_;
  std::vector<Transfer> transfers_;
  double consumer_outflow_ = 0.0;
  double seller_inflow_ = 0.0;
};

}  // namespace market
}  // namespace cdt

#endif  // CDT_MARKET_LEDGER_H_
