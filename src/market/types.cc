#include "market/types.h"

namespace cdt {
namespace market {

using util::Status;

Status Job::Validate() const {
  if (num_pois <= 0) return Status::InvalidArgument("job needs >= 1 PoI");
  if (num_rounds <= 0) {
    return Status::InvalidArgument("job needs >= 1 round");
  }
  if (!(round_duration > 0.0)) {
    return Status::InvalidArgument("round duration must be > 0");
  }
  return Status::OK();
}

}  // namespace market
}  // namespace cdt
