#include "market/types.h"

#include <cmath>

namespace cdt {
namespace market {

using util::Status;

Status Job::Validate() const {
  if (num_pois <= 0) return Status::InvalidArgument("job needs >= 1 PoI");
  if (num_rounds <= 0) {
    return Status::InvalidArgument("job needs >= 1 round");
  }
  if (!(round_duration > 0.0)) {
    return Status::InvalidArgument("round duration must be > 0");
  }
  return Status::OK();
}

int RoundReport::CountFaults(FaultKind kind) const {
  int count = 0;
  for (const FaultEvent& e : faults) {
    if (e.kind == kind) ++count;
  }
  return count;
}

std::vector<int> DeliveredDataSellers(const RoundReport& report) {
  if (report.voided) return {};
  std::vector<int> delivered;
  delivered.reserve(report.selected.size());
  for (int seller : report.selected) {
    bool corrupted = false;
    for (const FaultEvent& e : report.faults) {
      if (e.kind == FaultKind::kCorruptedReport && e.seller == seller) {
        corrupted = true;
        break;
      }
    }
    if (!corrupted) delivered.push_back(seller);
  }
  return delivered;
}

Status ValidateQualityFloor(double quality_floor) {
  if (!std::isfinite(quality_floor) || !(quality_floor > 0.0) ||
      quality_floor > 1.0) {
    return Status::InvalidArgument("quality_floor must be in (0, 1]");
  }
  return Status::OK();
}

Status ValidatePriceBounds(const util::Interval& bounds,
                           const std::string& what) {
  if (!std::isfinite(bounds.lo) || !std::isfinite(bounds.hi) ||
      !bounds.valid() || bounds.lo < 0.0) {
    return Status::InvalidArgument(
        what + " must be a finite interval with 0 <= lo <= hi");
  }
  return Status::OK();
}

}  // namespace market
}  // namespace cdt
