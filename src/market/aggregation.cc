#include "market/aggregation.h"

namespace cdt {
namespace market {

using util::Result;
using util::Status;

Result<DataStatistics> AggregateRound(
    const std::vector<std::vector<double>>& observations,
    const std::vector<double>& tau) {
  if (observations.empty()) {
    return Status::InvalidArgument("nothing to aggregate");
  }
  if (observations.size() != tau.size()) {
    return Status::InvalidArgument("observations/tau size mismatch");
  }
  std::size_t width = observations[0].size();
  if (width == 0) {
    return Status::InvalidArgument("observation rows must be non-empty");
  }
  for (const auto& row : observations) {
    if (row.size() != width) {
      return Status::InvalidArgument("ragged observation rows");
    }
  }

  DataStatistics stats;
  stats.num_sellers = static_cast<int>(observations.size());
  stats.poi_means.assign(width, 0.0);
  double grand_total = 0.0;
  double weighted_total = 0.0;
  double weight_sum = 0.0;
  for (std::size_t j = 0; j < observations.size(); ++j) {
    double row_sum = 0.0;
    for (std::size_t l = 0; l < width; ++l) {
      stats.poi_means[l] += observations[j][l];
      row_sum += observations[j][l];
    }
    grand_total += row_sum;
    double w = tau[j] > 0.0 ? tau[j] : 0.0;
    weighted_total += w * row_sum / static_cast<double>(width);
    weight_sum += w;
  }
  for (double& m : stats.poi_means) {
    m /= static_cast<double>(observations.size());
  }
  stats.overall_mean =
      grand_total /
      (static_cast<double>(observations.size()) * static_cast<double>(width));
  stats.weighted_mean =
      weight_sum > 0.0 ? weighted_total / weight_sum : stats.overall_mean;
  return stats;
}

}  // namespace market
}  // namespace cdt
