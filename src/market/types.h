// Shared market-layer types: the data-collection Job (Def. 1) and the
// per-round trading report emitted by the engine.

#ifndef CDT_MARKET_TYPES_H_
#define CDT_MARKET_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace cdt {
namespace market {

/// The consumer's long-term data-collection job Job = <L, N, T, Des>.
struct Job {
  int num_pois = 0;            // |L|
  std::int64_t num_rounds = 0; // N
  double round_duration = 0.0; // T
  std::string description;     // Des

  util::Status Validate() const;
};

/// Everything that happened in one trading round.
struct RoundReport {
  std::int64_t round = 0;  // 1-based
  /// True for Algorithm 1's round-1 select-all exploration.
  bool initial_exploration = false;

  std::vector<int> selected;          // selected seller indices
  /// Quality estimates q̄_i the round's game was priced with (pre-update).
  std::vector<double> game_qualities;
  double consumer_price = 0.0;        // p^{J,t}
  double collection_price = 0.0;      // p^t
  std::vector<double> tau;            // τ_i per selected seller
  double total_time = 0.0;            // Στ

  double consumer_profit = 0.0;             // Φ^t
  double platform_profit = 0.0;             // Ω^t
  std::vector<double> seller_profits;       // Ψ_i^t per selected seller
  double seller_profit_total = 0.0;         // Σ Ψ_i^t

  /// L · Σ_{i∈S} q_i using ground-truth expected qualities.
  double expected_quality_revenue = 0.0;
  /// Σ_{i∈S} Σ_l q_{i,l}^t actually observed.
  double observed_quality_revenue = 0.0;
};

}  // namespace market
}  // namespace cdt

#endif  // CDT_MARKET_TYPES_H_
