// Shared market-layer types: the data-collection Job (Def. 1) and the
// per-round trading report emitted by the engine.

#ifndef CDT_MARKET_TYPES_H_
#define CDT_MARKET_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "market/faults.h"
#include "util/math_util.h"
#include "util/status.h"

namespace cdt {
namespace market {

/// The consumer's long-term data-collection job Job = <L, N, T, Des>.
struct Job {
  int num_pois = 0;            // |L|
  std::int64_t num_rounds = 0; // N
  double round_duration = 0.0; // T
  std::string description;     // Des

  util::Status Validate() const;
};

/// Everything that happened in one trading round.
struct RoundReport {
  std::int64_t round = 0;  // 1-based
  /// True for Algorithm 1's round-1 select-all exploration.
  bool initial_exploration = false;

  std::vector<int> selected;          // selected seller indices
  /// Quality estimates q̄_i the round's game was priced with (pre-update).
  std::vector<double> game_qualities;
  double consumer_price = 0.0;        // p^{J,t}
  double collection_price = 0.0;      // p^t
  std::vector<double> tau;            // τ_i per selected seller
  double total_time = 0.0;            // Στ

  double consumer_profit = 0.0;             // Φ^t
  double platform_profit = 0.0;             // Ω^t
  std::vector<double> seller_profits;       // Ψ_i^t per selected seller
  double seller_profit_total = 0.0;         // Σ Ψ_i^t

  /// L · Σ_{i∈S} q_i using ground-truth expected qualities.
  double expected_quality_revenue = 0.0;
  /// Σ_{i∈S} Σ_l q_{i,l}^t actually observed.
  double observed_quality_revenue = 0.0;

  // --- Fault / recovery metadata (all defaults = clean round) ---------
  /// True when any fault rewrote the round (re-settlement, partial
  /// delivery, void). Clean rounds are bit-for-bit unaffected.
  bool degraded = false;
  /// True when defaults shrank the coalition and Stage 2/3 were re-solved
  /// over the survivors at the committed consumer price.
  bool resettled = false;
  /// True when nothing could be delivered or settled: tau is all zeros,
  /// no payments flowed, and the bandit state was left untouched.
  bool voided = false;
  /// Stage-3 best responses τ* the round contracted for; populated only
  /// when it differs from `tau` (partial delivery or a voided round).
  std::vector<double> contracted_tau;
  /// Structured fault/recovery events of this round.
  std::vector<FaultEvent> faults;
  /// Settlement attempts (1 = clean) and total simulated backoff spent.
  int settlement_attempts = 1;
  double settlement_backoff = 0.0;

  /// Number of `faults` entries of the given kind.
  int CountFaults(FaultKind kind) const;
};

/// Sellers whose data was actually accepted this round: the selected
/// coalition minus corrupted reporters, or nobody for a voided round.
/// (Defaulters are already absent from `selected` after re-settlement.)
std::vector<int> DeliveredDataSellers(const RoundReport& report);

// Shared config checks used by both EngineConfig::Validate and
// MarketplaceConfig::Validate so the two cannot drift (NaN-safe).

/// quality_floor must be finite and in (0, 1].
util::Status ValidateQualityFloor(double quality_floor);

/// Price interval must be finite, non-empty, with a non-negative floor.
/// `what` names the interval in error messages.
util::Status ValidatePriceBounds(const util::Interval& bounds,
                                 const std::string& what);

}  // namespace market
}  // namespace cdt

#endif  // CDT_MARKET_TYPES_H_
