// The CDT trading engine: executes the full Fig.-2 workflow / Algorithm 1
// round by round — seller selection via a pluggable bandit policy, the HS
// game for the incentive strategy, data collection against the quality
// environment, aggregation, payments, and quality-estimate updates.

#ifndef CDT_MARKET_TRADING_ENGINE_H_
#define CDT_MARKET_TRADING_ENGINE_H_

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "bandit/arm.h"
#include "bandit/environment.h"
#include "bandit/policy.h"
#include "game/stackelberg.h"
#include "market/faults.h"
#include "market/invariants.h"
#include "market/ledger.h"
#include "market/snapshot.h"
#include "market/types.h"

namespace cdt {
namespace market {

/// Engine configuration; economic defaults follow Table II.
struct EngineConfig {
  Job job;                       // L, N, T
  int num_selected = 0;          // K
  /// Per-seller cost parameters (size M).
  std::vector<game::SellerCostParams> seller_costs;
  game::PlatformCostParams platform_cost;   // θ, λ
  game::ValuationParams valuation;          // ω
  util::Interval consumer_price_bounds{1e-3, 1e9};
  util::Interval collection_price_bounds{1e-3, 1e9};
  /// τ^0: sensing time of every seller in the initial exploration round.
  double initial_tau = 1.0;
  /// Floor applied to learned qualities before the game (Eq. 20 divides by
  /// q̄_i a_i, so q̄ must stay strictly positive).
  double quality_floor = 1e-3;
  /// Oracle mode: price the game with the environment's true effective
  /// qualities instead of learned estimates (the "optimal" baseline).
  bool use_true_qualities_for_game = false;
  /// Consumer budget extension (0 = unlimited, the paper's setting): the
  /// trading stops before any round whose reward payment would push the
  /// consumer's cumulative outflow beyond the budget.
  double consumer_budget = 0.0;
  /// Record every monetary transfer in the ledger (memory ~ N·K; disable
  /// for large-N benchmark sweeps — balances are still maintained).
  bool track_transfers = false;
  /// Arm the economic-invariant checker: after every settled round an
  /// InvariantChecker verifies ledger conservation, individual rationality,
  /// Stackelberg stationarity and bandit sanity, and a violation aborts the
  /// run with a structured error. On by default so tests and examples run
  /// under the net; Release benchmark sweeps switch it off.
  bool check_invariants = true;
  /// Fault injection (all rates zero, the default, disables it). With a
  /// fault-free profile every round is bit-for-bit identical to an engine
  /// built without this field: the injector draws from its own hash-keyed
  /// stream and never touches the environment's RNG.
  FaultProfile faults;
  /// Graceful-degradation knobs: settlement retry/backoff schedule and the
  /// per-seller quarantine circuit breaker.
  RecoveryOptions recovery;
  /// Optional externally owned reliability tracker, e.g. shared with an
  /// AvailabilityAwareCucbPolicy through QuarantineAvailability so
  /// quarantined sellers are already excluded at selection time. Must
  /// outlive the engine and match the seller count; nullptr (default)
  /// makes the engine own its tracker.
  ReliabilityTracker* reliability = nullptr;

  util::Status Validate(int num_sellers) const;
};

/// Runs a CDT simulation: one QualityEnvironment (ground truth), one
/// SelectionPolicy (seller selection), and the HS game each round.
class TradingEngine {
 public:
  /// The engine borrows `environment` and owns `policy`. The environment's
  /// seller/PoI counts must match the config.
  static util::Result<std::unique_ptr<TradingEngine>> Create(
      EngineConfig config, bandit::QualityEnvironment* environment,
      std::unique_ptr<bandit::SelectionPolicy> policy);

  /// Executes the next round; call at most N times. With a consumer budget
  /// configured, fails with FailedPrecondition once the budget cannot cover
  /// the next round's reward (budget_exhausted() then reports true).
  util::Result<RoundReport> RunRound();

  /// True when a configured consumer budget stopped the trading early.
  bool budget_exhausted() const { return budget_exhausted_; }

  /// Cumulative rewards the consumer has paid so far.
  double consumer_spend() const { return consumer_spend_; }

  /// Runs all remaining rounds, invoking `callback` (may be null) per round.
  util::Status RunAll(
      const std::function<void(const RoundReport&)>& callback = nullptr);

  std::int64_t current_round() const { return next_round_ - 1; }
  const EngineConfig& config() const { return config_; }
  const Ledger& ledger() const { return ledger_; }
  const bandit::SelectionPolicy& policy() const { return *policy_; }
  const bandit::QualityEnvironment& environment() const {
    return *environment_;
  }

  /// The engine's own learned quality estimates used for game pricing
  /// (independent of any estimator the policy maintains).
  const bandit::EstimatorBank& pricing_estimates() const { return bank_; }

  /// Registers an observer invoked after every settled round, in
  /// registration order; a non-OK status aborts the run. Returns a
  /// non-owning pointer for later inspection.
  RoundObserver* AddObserver(std::unique_ptr<RoundObserver> observer);

  /// The checker installed by check_invariants (nullptr when disarmed).
  const InvariantChecker* invariant_checker() const { return checker_; }

  /// Oracle per-round expected revenue L · Σ_{S*} q (regret baseline).
  double oracle_round_revenue() const { return oracle_round_revenue_; }

  /// Per-seller reliability statistics and circuit-breaker state.
  const ReliabilityTracker& reliability() const { return *reliability_; }

  /// Marks a seller as departed (active=false) or returned (active=true).
  /// Inactive sellers are dropped from every coalition at the quarantine
  /// gate — silently, they are not faults — until they return; the bandit
  /// keeps their learned state. Deterministic: the same call sequence at
  /// the same round cursors reproduces the same rounds, and the activity
  /// bitmap rides in EngineSnapshot so restores resume exactly. If
  /// deactivation would leave every seller inactive the call is refused
  /// (the engine degrades, it never deadlocks).
  util::Status SetSellerActive(int seller, bool active);

  /// False while the seller has departed via SetSellerActive.
  bool seller_active(int seller) const {
    return seller_active_.empty() ||
           seller_active_[static_cast<std::size_t>(seller)] != 0;
  }

  /// Number of currently departed sellers.
  int inactive_sellers() const { return inactive_count_; }

  /// Every fault/recovery event of the run, in round order.
  const std::vector<FaultEvent>& fault_log() const { return fault_log_; }

  /// Number of logged events of the given kind.
  std::int64_t fault_count(FaultKind kind) const {
    return fault_counts_[static_cast<std::size_t>(kind)];
  }

  /// Captures the engine's full mutable state (plus the borrowed
  /// environment's observation stream) after the last settled round, so a
  /// later RestoreSnapshot resumes the campaign bit-for-bit.
  EngineSnapshot CaptureSnapshot() const;

  /// Applies a snapshot captured from an engine with identical
  /// configuration. Must be called before any round has run; fails closed
  /// when the policy cannot restore exactly (snapshot_safe() false), on
  /// any size/seller-count mismatch, or on corrupt counters — the engine
  /// is left untouched on error except when a late sub-restore fails
  /// (the returned status then says the engine must be discarded).
  /// The cumulative fault_log() is not persisted: after a restore it
  /// contains only post-restore events (fault_count() totals survive).
  util::Status RestoreSnapshot(const EngineSnapshot& snapshot);

 private:
  TradingEngine(EngineConfig config, bandit::QualityEnvironment* environment,
                std::unique_ptr<bandit::SelectionPolicy> policy,
                bandit::EstimatorBank bank);

  /// Learned (or true, in oracle mode) quality of a seller, floored.
  double GameQuality(int seller) const;

  /// Appends a fault event to both the round report and the run log.
  void LogFault(RoundReport* report, FaultKind kind, int seller,
                double severity, bool recovered);

  /// Re-evaluates total time and all profits at the report's current
  /// (prices, tau) — used after recovery rewrote the round's strategies.
  void RecomputeProfits(RoundReport* report) const;

  /// Marks the round undeliverable: zero tau, zero flows, recomputed
  /// (zero) profits; every fault event of the round becomes unrecovered.
  void VoidRound(RoundReport* report);

  /// Settles payments for the round through the ledger.
  util::Status SettlePayments(const RoundReport& report);

  /// Points the reusable solve workspace at the coalition `selected` (cost
  /// parameters + current learned qualities) and returns the ready solver.
  /// The first call constructs the solver (full GameConfig::Validate);
  /// later calls re-target it via StackelbergSolver::ResetCoalition, which
  /// re-checks only the round-varying qualities and performs zero heap
  /// allocations in steady state. On error the workspace is untouched and
  /// the next call re-prepares from scratch.
  util::Result<const game::StackelbergSolver*> PrepareSolver(
      const std::vector<int>& selected);

  EngineConfig config_;
  bandit::QualityEnvironment* environment_;  // borrowed
  std::unique_ptr<bandit::SelectionPolicy> policy_;
  bandit::EstimatorBank bank_;
  Ledger ledger_;
  std::vector<std::unique_ptr<RoundObserver>> observers_;
  InvariantChecker* checker_ = nullptr;  // owned via observers_
  double oracle_round_revenue_ = 0.0;
  std::int64_t next_round_ = 1;
  bool budget_exhausted_ = false;
  double consumer_spend_ = 0.0;

  /// Seller-departure overlay (SetSellerActive). Lazily sized on first
  /// deactivation; empty means everyone is active (the common case adds
  /// no per-round work).
  std::vector<std::uint8_t> seller_active_;
  int inactive_count_ = 0;

  /// Solve workspace (PrepareSolver): coalition staging buffers and the
  /// round-reused solver. The buffers swap back and forth with the solver's
  /// config vectors, so both sides keep their capacity across rounds.
  std::vector<game::SellerCostParams> solve_sellers_;
  std::vector<double> solve_qualities_;
  std::optional<game::StackelbergSolver> solver_;
  /// Selection scratch handed to SelectionPolicy::SelectRoundInto.
  std::vector<int> selected_scratch_;
  /// Collection-stage scratches: accepted learner ids, their batches, and
  /// the recycled batch buffers. Batches move pool → batches → pool each
  /// round, so the inner buffers keep their capacity (no per-seller
  /// allocation in steady state).
  std::vector<int> learners_scratch_;
  std::vector<std::vector<double>> batches_scratch_;
  std::vector<std::vector<double>> batch_pool_;

  /// Non-null only when the config's fault profile is armed.
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<ReliabilityTracker> owned_reliability_;
  ReliabilityTracker* reliability_ = nullptr;  // owned or borrowed
  std::vector<FaultEvent> fault_log_;
  std::array<std::int64_t, kNumFaultKinds> fault_counts_{};
};

}  // namespace market
}  // namespace cdt

#endif  // CDT_MARKET_TRADING_ENGINE_H_
