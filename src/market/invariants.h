// Economic-invariant checking for the CDT trading pipeline.
//
// The Stackelberg equilibrium (Thms. 14-16) and Algorithm 1's payment flow
// imply hard invariants that must hold on *every* round of *every* run, not
// just in hand-picked test cases:
//
//   (a) ledger conservation — consumer outflow equals platform inflow,
//       platform inflow equals seller payments plus platform profit plus
//       the aggregation cost C^J (Eq. 8), and the double-entry net position
//       stays zero;
//   (b) individual rationality — every selected seller's realised profit
//       Ψ_i = p τ_i − C_i(τ_i, q̄_i) is non-negative (up to ε) at the
//       Stage-3 best response of Eq. (20);
//   (c) stationarity — the solved prices (p^{J*}, p*) satisfy the
//       first-order conditions of Eqs. (7)-(8) within tolerance when the
//       interior regime holds, and otherwise coincide with a re-solved
//       stage optimum (box-boundary / active-set cases);
//   (d) bandit sanity — UCB statistics finite, observation counters
//       monotone, and cumulative oracle regret non-decreasing.
//
// TradingEngine invokes RoundObservers after each settled round; the
// shipped InvariantChecker implementation reports violations through
// util::Status and keeps structured InvariantViolation records. Unit tests
// and external drivers can also feed the checker directly through an
// EngineStateView (e.g. with a deliberately mutated ledger).

#ifndef CDT_MARKET_INVARIANTS_H_
#define CDT_MARKET_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bandit/arm.h"
#include "game/cost.h"
#include "game/valuation.h"
#include "market/ledger.h"
#include "market/types.h"
#include "util/math_util.h"
#include "util/status.h"

namespace cdt {
namespace market {

class TradingEngine;

/// Families of checked invariants.
enum class InvariantKind {
  kLedgerConservation,
  kIndividualRationality,
  kStationarity,
  kBanditSanity,
};

/// "LedgerConservation", "IndividualRationality", ...
const char* InvariantKindName(InvariantKind kind);

/// One structured violation record.
struct InvariantViolation {
  InvariantKind kind = InvariantKind::kLedgerConservation;
  std::int64_t round = 0;
  /// Stable check identifier, e.g. "ledger.net_position" or "ir.seller".
  std::string check;
  /// Human-readable description carrying the offending numbers.
  std::string detail;
  /// Residual magnitude that exceeded the tolerance.
  double magnitude = 0.0;

  /// "[LedgerConservation] round 7 ledger.net_position: ... (|r|=1.2e-3)".
  std::string ToString() const;
};

/// Tolerances and toggles for the shipped checker.
struct InvariantOptions {
  /// Relative tolerance (with a max(1, ·) floor) for money accounting.
  double ledger_tolerance = 1e-7;
  /// ε for individual rationality: Ψ_i >= −ε · max(1, p τ_i).
  double ir_epsilon = 1e-7;
  /// Relative tolerance for stationarity/FOC residuals and for profit-value
  /// comparisons against the re-solved stage optima.
  double stationarity_tolerance = 1e-5;
  /// Stationarity re-solves the round's game; disable to cut the cost in
  /// half when only accounting invariants are of interest.
  bool check_stationarity = true;
  bool check_bandit = true;
  /// Stop recording after this many violations (reporting stays truthful
  /// about the overflow through violations_truncated()).
  std::size_t max_violations = 32;
};

/// Everything the checker reads from the engine after one round. Decoupled
/// from TradingEngine so tests can fabricate inconsistent states (mutated
/// ledger entries, doctored reports) and assert they are detected.
struct EngineStateView {
  const Ledger* ledger = nullptr;
  /// The engine's pricing estimates (Eqs. 17-18); may be null to skip the
  /// bandit checks.
  const bandit::EstimatorBank* estimates = nullptr;
  /// Per-seller cost parameters, size M (indexed by seller id).
  const std::vector<game::SellerCostParams>* seller_costs = nullptr;
  game::PlatformCostParams platform_cost;
  game::ValuationParams valuation;
  util::Interval consumer_price_bounds{0.0, 0.0};
  util::Interval collection_price_bounds{0.0, 0.0};
  double max_sensing_time = 0.0;  // T
  int num_pois = 0;               // L
  int num_selected = 0;           // K
  /// Oracle per-round expected revenue L · Σ_{S*} q (0 disables the regret
  /// monotonicity check).
  double oracle_round_revenue = 0.0;
};

/// Per-round observer hook; the engine invokes observers after settlement.
/// A non-OK status aborts the run and propagates out of RunRound/RunAll.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  virtual util::Status OnRound(const TradingEngine& engine,
                               const RoundReport& report) = 0;
};

/// The shipped invariant-checking observer. Stateful: tracks cumulative
/// money flows, bandit counters and regret across the rounds it has seen,
/// so it must observe a run from its first round.
class InvariantChecker : public RoundObserver {
 public:
  explicit InvariantChecker(InvariantOptions options = {});

  /// Builds the EngineStateView from the live engine and calls Check().
  util::Status OnRound(const TradingEngine& engine,
                       const RoundReport& report) override;

  /// Runs every enabled invariant family against one round; returns an
  /// error status when the round added violations. Callable directly with
  /// fabricated views (no engine required).
  util::Status Check(const EngineStateView& view, const RoundReport& report);

  /// Re-seeds the cumulative expectations from a mid-run engine state
  /// (snapshot restore): ledger aggregates, per-seller balances, bandit
  /// counters and the round cursor become the new baseline. Cumulative
  /// regret restarts at zero, which keeps the monotonicity check valid —
  /// it asserts non-decrease, not an absolute level.
  util::Status ResetBaseline(const Ledger& ledger,
                             const bandit::EstimatorBank* estimates,
                             std::int64_t last_round);

  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  /// Total violations observed (can exceed violations().size() once the
  /// max_violations cap truncates the stored records).
  std::size_t violation_count() const { return violation_count_; }
  /// True when more violations occurred than max_violations kept.
  bool violations_truncated() const { return truncated_; }
  const InvariantOptions& options() const { return options_; }

  // --- individual invariant families (each appends violations) ---

  /// (a) Money conservation between the report and the ledger.
  void CheckLedger(const EngineStateView& view, const RoundReport& report);

  /// (b) Individual rationality plus Eq. 5/7/9 profit-report consistency.
  void CheckProfits(const EngineStateView& view, const RoundReport& report);

  /// (c) Stage-1..3 stationarity of the reported equilibrium prices/times.
  void CheckStationarity(const EngineStateView& view,
                         const RoundReport& report);

  /// (d) Bandit counters, UCB finiteness and regret monotonicity.
  void CheckBandit(const EngineStateView& view, const RoundReport& report);

 private:
  void AddViolation(InvariantKind kind, std::int64_t round, std::string check,
                    std::string detail, double magnitude);

  InvariantOptions options_;
  std::vector<InvariantViolation> violations_;
  std::size_t violation_count_ = 0;
  bool truncated_ = false;

  // Cumulative expectations maintained round over round.
  std::int64_t last_round_ = 0;
  double expected_consumer_outflow_ = 0.0;
  double expected_seller_inflow_ = 0.0;
  /// Expected per-seller cumulative inflow, lazily sized to M.
  std::vector<double> expected_seller_balance_;
  std::uint64_t prev_total_observations_ = 0;
  std::vector<std::uint64_t> prev_arm_observations_;
  double cumulative_regret_ = 0.0;
};

}  // namespace market
}  // namespace cdt

#endif  // CDT_MARKET_INVARIANTS_H_
