#include "market/trading_engine.h"

#include <algorithm>

#include "game/profit.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/telemetry_observer.h"
#include "obs/tracer.h"

namespace cdt {
namespace market {

using util::Result;
using util::Status;

#if CDT_TELEMETRY
namespace {

// Handle getters for CDT_SPAN_TIMED: each site caches the result in a
// function-local static, so the registry mutex is touched once per site.
obs::Histogram* RoundLatencyHistogram() {
  return obs::registry().GetHistogram(
      "cdt_round_latency_seconds",
      "End-to-end wall-clock seconds of one trading round.",
      obs::DefaultLatencyBuckets());
}

obs::Histogram* BanditSelectHistogram() {
  return obs::registry().GetHistogram(
      "cdt_bandit_select_seconds",
      "Wall-clock seconds of the CMAB seller-selection step.",
      obs::DefaultLatencyBuckets());
}

}  // namespace
#endif  // CDT_TELEMETRY

Status EngineConfig::Validate(int num_sellers) const {
  CDT_RETURN_NOT_OK(job.Validate());
  if (num_selected <= 0 || num_selected > num_sellers) {
    return Status::InvalidArgument("need 1 <= K <= M");
  }
  if (static_cast<int>(seller_costs.size()) != num_sellers) {
    return Status::InvalidArgument("need one cost parameter set per seller");
  }
  for (const game::SellerCostParams& s : seller_costs) {
    CDT_RETURN_NOT_OK(s.Validate());
  }
  CDT_RETURN_NOT_OK(platform_cost.Validate());
  CDT_RETURN_NOT_OK(valuation.Validate());
  CDT_RETURN_NOT_OK(
      ValidatePriceBounds(consumer_price_bounds, "consumer price bounds"));
  CDT_RETURN_NOT_OK(
      ValidatePriceBounds(collection_price_bounds, "collection price bounds"));
  if (!(initial_tau > 0.0) || initial_tau > job.round_duration) {
    return Status::InvalidArgument("initial_tau must lie in (0, T]");
  }
  CDT_RETURN_NOT_OK(ValidateQualityFloor(quality_floor));
  if (consumer_budget < 0.0) {
    return Status::InvalidArgument("consumer_budget must be >= 0");
  }
  CDT_RETURN_NOT_OK(faults.Validate());
  CDT_RETURN_NOT_OK(recovery.Validate());
  return Status::OK();
}

TradingEngine::TradingEngine(EngineConfig config,
                             bandit::QualityEnvironment* environment,
                             std::unique_ptr<bandit::SelectionPolicy> policy,
                             bandit::EstimatorBank bank)
    : config_(std::move(config)),
      environment_(environment),
      policy_(std::move(policy)),
      bank_(std::move(bank)),
      ledger_(environment_->num_sellers(), config_.track_transfers) {}

Result<std::unique_ptr<TradingEngine>> TradingEngine::Create(
    EngineConfig config, bandit::QualityEnvironment* environment,
    std::unique_ptr<bandit::SelectionPolicy> policy) {
  if (environment == nullptr) {
    return Status::InvalidArgument("environment must not be null");
  }
  if (policy == nullptr) {
    return Status::InvalidArgument("policy must not be null");
  }
  CDT_RETURN_NOT_OK(config.Validate(environment->num_sellers()));
  if (policy->num_sellers() != environment->num_sellers()) {
    return Status::InvalidArgument(
        "policy and environment disagree on the seller count");
  }
  if (config.job.num_pois != environment->num_pois()) {
    return Status::InvalidArgument(
        "job and environment disagree on the PoI count");
  }
  if (config.reliability != nullptr &&
      config.reliability->num_sellers() != environment->num_sellers()) {
    return Status::InvalidArgument(
        "reliability tracker and environment disagree on the seller count");
  }
  // The pricing bank mirrors Eq. (17)-(18); its exploration constant is
  // irrelevant (only means are consumed) but must be positive.
  Result<bandit::EstimatorBank> bank =
      bandit::EstimatorBank::Create(environment->num_sellers(), 1.0);
  if (!bank.ok()) return bank.status();
  bool check_invariants = config.check_invariants;
  auto engine = std::unique_ptr<TradingEngine>(
      new TradingEngine(std::move(config), environment, std::move(policy),
                        std::move(bank).value()));
  engine->oracle_round_revenue_ =
      static_cast<double>(engine->config_.job.num_pois) *
      environment->OptimalSetQuality(engine->config_.num_selected);
  if (engine->config_.faults.any()) {
    engine->injector_ = std::make_unique<FaultInjector>(engine->config_.faults);
  }
  if (engine->config_.reliability != nullptr) {
    engine->reliability_ = engine->config_.reliability;
  } else {
    engine->owned_reliability_ = std::make_unique<ReliabilityTracker>(
        environment->num_sellers(), engine->config_.recovery);
    engine->reliability_ = engine->owned_reliability_.get();
  }
  if (check_invariants) {
    engine->checker_ = static_cast<InvariantChecker*>(
        engine->AddObserver(std::make_unique<InvariantChecker>()));
  }
#if CDT_TELEMETRY
  // Metrics publisher; dormant (one atomic load per round) until
  // obs::Enable() arms the runtime. Reads engine state only, so the
  // economics are bit-for-bit identical with telemetry on or off.
  engine->AddObserver(std::make_unique<obs::TelemetryObserver>());
#endif
  return engine;
}

RoundObserver* TradingEngine::AddObserver(
    std::unique_ptr<RoundObserver> observer) {
  observers_.push_back(std::move(observer));
  return observers_.back().get();
}

double TradingEngine::GameQuality(int seller) const {
  double q;
  if (config_.use_true_qualities_for_game) {
    q = environment_->effective_quality(seller);
  } else {
    const bandit::ArmState& arm = bank_.arm(seller);
    q = arm.observations > 0 ? arm.mean : config_.quality_floor;
  }
  return std::min(1.0, std::max(config_.quality_floor, q));
}

Result<const game::StackelbergSolver*> TradingEngine::PrepareSolver(
    const std::vector<int>& selected) {
  solve_sellers_.clear();
  solve_qualities_.clear();
  solve_sellers_.reserve(selected.size());
  solve_qualities_.reserve(selected.size());
  for (int i : selected) {
    solve_sellers_.push_back(
        config_.seller_costs[static_cast<std::size_t>(i)]);
    solve_qualities_.push_back(GameQuality(i));
  }
  if (solver_.has_value()) {
    CDT_RETURN_NOT_OK(
        solver_->ResetCoalition(&solve_sellers_, &solve_qualities_));
    return &*solver_;
  }
  game::GameConfig game_config;
  game_config.sellers = std::move(solve_sellers_);
  game_config.qualities = std::move(solve_qualities_);
  game_config.platform = config_.platform_cost;
  game_config.valuation = config_.valuation;
  game_config.consumer_price_bounds = config_.consumer_price_bounds;
  game_config.collection_price_bounds = config_.collection_price_bounds;
  game_config.max_sensing_time = config_.job.round_duration;
  Result<game::StackelbergSolver> solver =
      game::StackelbergSolver::Create(std::move(game_config));
  if (!solver.ok()) return solver.status();
  solver_.emplace(std::move(solver).value());
  return &*solver_;
}

void TradingEngine::LogFault(RoundReport* report, FaultKind kind, int seller,
                             double severity, bool recovered) {
  FaultEvent event;
  event.round = report->round;
  event.kind = kind;
  event.seller = seller;
  event.severity = severity;
  event.recovered = recovered;
  report->faults.push_back(event);
}

void TradingEngine::RecomputeProfits(RoundReport* report) const {
  const std::size_t k = report->selected.size();
  report->total_time = game::TotalTime(report->tau);
  double quality_sum = 0.0;
  for (double q : report->game_qualities) quality_sum += q;
  double mean_quality =
      k > 0 ? quality_sum / static_cast<double>(k) : 0.0;
  report->consumer_profit = game::ConsumerProfit(
      report->consumer_price, mean_quality, report->total_time,
      config_.valuation);
  report->platform_profit = game::PlatformProfit(
      report->consumer_price, report->collection_price, report->total_time,
      config_.platform_cost);
  report->seller_profits.assign(k, 0.0);
  report->seller_profit_total = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    report->seller_profits[j] = game::SellerProfit(
        report->collection_price, report->tau[j],
        config_.seller_costs[static_cast<std::size_t>(report->selected[j])],
        report->game_qualities[j]);
    report->seller_profit_total += report->seller_profits[j];
  }
}

void TradingEngine::VoidRound(RoundReport* report) {
  report->degraded = true;
  report->voided = true;
  if (report->contracted_tau.empty()) report->contracted_tau = report->tau;
  std::fill(report->tau.begin(), report->tau.end(), 0.0);
  RecomputeProfits(report);
  report->expected_quality_revenue = 0.0;
  report->observed_quality_revenue = 0.0;
  for (FaultEvent& e : report->faults) e.recovered = false;
}

Result<RoundReport> TradingEngine::RunRound() {
  if (next_round_ > config_.job.num_rounds) {
    return Status::FailedPrecondition("all rounds already executed");
  }
  std::int64_t t = next_round_;
  CDT_SPAN_TIMED("round", RoundLatencyHistogram);

  {
    CDT_SPAN_TIMED("bandit.select", BanditSelectHistogram);
    CDT_RETURN_NOT_OK(policy_->SelectRoundInto(t, &selected_scratch_));
  }
  // The scratch is the round's working selection; fault paths may replace
  // it wholesale (quarantine / resettle), which is fine — it regrows once.
  std::vector<int>& selected = selected_scratch_;
  if (selected.empty()) {
    return Status::Internal("policy selected no sellers");
  }

  RoundReport report;
  report.round = t;

  // Quarantine gate: sellers whose circuit breaker is open — and sellers
  // who departed via SetSellerActive — sit out the round, unless dropping
  // them would empty the coalition entirely, in which case the round
  // proceeds unfiltered (degrade, never deadlock). Breaker drops are
  // logged as kQuarantine faults; departures are not faults and leave the
  // round's fault record untouched. With no injector, no external tracker
  // and no departures the clean path is untouched.
  if (injector_ != nullptr || config_.reliability != nullptr ||
      inactive_count_ > 0) {
    CDT_SPAN("engine.quarantine_gate");
    std::vector<int> admitted;
    std::vector<int> quarantined;
    bool departed_drop = false;
    admitted.reserve(selected.size());
    for (int seller : selected) {
      if (!seller_active(seller)) {
        departed_drop = true;
      } else if (reliability_->Available(seller, t)) {
        admitted.push_back(seller);
      } else {
        quarantined.push_back(seller);
      }
    }
    if (!admitted.empty() && (!quarantined.empty() || departed_drop)) {
      selected = std::move(admitted);
      for (int seller : quarantined) {
        reliability_->RecordQuarantineDrop(seller);
        LogFault(&report, FaultKind::kQuarantine, seller, 0.0, true);
      }
    }
  }

  report.selected = selected;
  report.initial_exploration =
      selected.size() > static_cast<std::size_t>(config_.num_selected);

  if (report.initial_exploration) {
    // Algorithm 1, steps 2-4: τ_i = τ^0, p = p_max, and p^J chosen as the
    // smallest price with non-negative platform profit (break-even):
    //   (p^J − p)Στ − θ(Στ)² − λΣτ = 0  ⇒  p^J = p + θΣτ + λ.
    double p = config_.collection_price_bounds.hi;
    report.tau.assign(selected.size(), config_.initial_tau);
    report.total_time = game::TotalTime(report.tau);
    double pj = p + config_.platform_cost.theta * report.total_time +
                config_.platform_cost.lambda;
    pj = std::max(pj, config_.consumer_price_bounds.lo);
    report.collection_price = p;
    report.consumer_price = pj;

    double quality_sum = 0.0;
    report.seller_profits.resize(selected.size());
    report.game_qualities.resize(selected.size());
    for (std::size_t j = 0; j < selected.size(); ++j) {
      double q = GameQuality(selected[j]);
      report.game_qualities[j] = q;
      quality_sum += q;
      report.seller_profits[j] = game::SellerProfit(
          p, report.tau[j],
          config_.seller_costs[static_cast<std::size_t>(selected[j])], q);
    }
    double mean_quality = quality_sum / static_cast<double>(selected.size());
    report.consumer_profit = game::ConsumerProfit(
        pj, mean_quality, report.total_time, config_.valuation);
    report.platform_profit = game::PlatformProfit(
        pj, p, report.total_time, config_.platform_cost);
  } else {
    // Regular round: play the three-stage HS game among the consumer, the
    // platform, and the selected sellers (Algorithm 1, step 11). The
    // solver workspace is reused round to round — full validation ran when
    // it was first built; only the learned qualities are re-checked.
    Result<const game::StackelbergSolver*> solver = PrepareSolver(selected);
    if (!solver.ok()) return solver.status();
    report.game_qualities = solver.value()->config().qualities;
    game::StrategyProfile profile = solver.value()->Solve();
    report.consumer_price = profile.consumer_price;
    report.collection_price = profile.collection_price;
    report.tau = std::move(profile.tau);
    report.total_time = profile.total_time;
    report.consumer_profit = profile.consumer_profit;
    report.platform_profit = profile.platform_profit;
    report.seller_profits = std::move(profile.seller_profits);
  }
  for (double psi : report.seller_profits) report.seller_profit_total += psi;

  // Fault plan: one deterministic outcome draw per committed seller.
  std::vector<SellerFaultDraw> draws;
  bool have_defaults = false;
  if (injector_ != nullptr) {
    draws.resize(selected.size());
    for (std::size_t j = 0; j < selected.size(); ++j) {
      draws[j] = injector_->DrawSeller(t, selected[j]);
      if (draws[j].outcome == DeliveryOutcome::kDefaulted) {
        have_defaults = true;
      }
    }
  }

  // Seller defaults: the coalition shrinks to the survivors and the round
  // is re-settled at the committed consumer price — Stage 2 and 3 re-solve
  // over the survivor game, so Theorem 14-16 stationarity keeps holding
  // for the delivered coalition. If nobody survives the round is voided.
  if (have_defaults) {
    CDT_SPAN("engine.resettle");
    report.degraded = true;
    std::vector<int> survivors;
    std::vector<SellerFaultDraw> survivor_draws;
    survivors.reserve(selected.size());
    survivor_draws.reserve(selected.size());
    for (std::size_t j = 0; j < selected.size(); ++j) {
      if (draws[j].outcome == DeliveryOutcome::kDefaulted) {
        reliability_->RecordFault(selected[j], t, FaultKind::kSellerDefault);
        LogFault(&report, FaultKind::kSellerDefault, selected[j], 0.0, true);
      } else {
        survivors.push_back(selected[j]);
        survivor_draws.push_back(draws[j]);
      }
    }
    if (survivors.empty()) {
      VoidRound(&report);
    } else if (report.initial_exploration) {
      // Exploration plays fixed prices; just drop the defaulters. The
      // break-even p^J was set for the full coalition, so the platform
      // keeps a non-negative margin on the shrunken one.
      report.resettled = true;
      selected = std::move(survivors);
      draws = std::move(survivor_draws);
      report.selected = selected;
      report.tau.assign(selected.size(), config_.initial_tau);
      report.game_qualities.resize(selected.size());
      for (std::size_t j = 0; j < selected.size(); ++j) {
        report.game_qualities[j] = GameQuality(selected[j]);
      }
      RecomputeProfits(&report);
    } else {
      // Regular round: hold the consumer to its committed p^J and re-run
      // the platform/seller stages over the survivors.
      Result<const game::StackelbergSolver*> solver =
          PrepareSolver(survivors);
      if (!solver.ok()) {
        VoidRound(&report);
      } else {
        report.resettled = true;
        selected = std::move(survivors);
        draws = std::move(survivor_draws);
        report.selected = selected;
        report.game_qualities = solver.value()->config().qualities;
        report.collection_price =
            solver.value()->PlatformBestPrice(report.consumer_price);
        report.tau =
            solver.value()->SellerBestTimes(report.collection_price);
        RecomputeProfits(&report);
      }
    }
  }

  // Partial delivery: the seller senses only a fraction of its contracted
  // τ* and is paid pro-rata. Ψ is concave with Ψ(0) = 0, so the pro-rated
  // profit stays non-negative and IR survives the degradation.
  if (!report.voided && injector_ != nullptr) {
    bool any_partial = false;
    for (std::size_t j = 0; j < report.selected.size(); ++j) {
      if (draws[j].outcome == DeliveryOutcome::kPartial &&
          report.tau[j] > 0.0) {
        any_partial = true;
        break;
      }
    }
    if (any_partial) {
      report.degraded = true;
      report.contracted_tau = report.tau;
      for (std::size_t j = 0; j < report.selected.size(); ++j) {
        if (draws[j].outcome != DeliveryOutcome::kPartial ||
            !(report.tau[j] > 0.0)) {
          continue;
        }
        report.tau[j] *= draws[j].fraction;
        LogFault(&report, FaultKind::kPartialDelivery, report.selected[j],
                 draws[j].fraction, true);
      }
      RecomputeProfits(&report);
    }
  }

  // Budget gate: the round is abandoned (no data collected, no payments)
  // when the consumer cannot afford the delivered coalition's reward.
  if (!report.voided && config_.consumer_budget > 0.0) {
    double reward = report.consumer_price * report.total_time;
    if (consumer_spend_ + reward > config_.consumer_budget) {
      budget_exhausted_ = true;
      FaultEvent stop;
      stop.round = t;
      stop.kind = FaultKind::kBudgetStop;
      stop.severity = config_.consumer_budget - consumer_spend_;
      fault_log_.push_back(stop);
      ++fault_counts_[static_cast<std::size_t>(FaultKind::kBudgetStop)];
      return Status::FailedPrecondition(
          "consumer budget exhausted after " +
          std::to_string(next_round_ - 1) + " rounds");
    }
  }

  // Settlement, with capped-exponential-backoff retries under transient
  // failures. Exhausting the retry budget voids the round: no payments
  // flow and no data is accepted, so the ledger and the bandit state stay
  // exactly as if the round had not traded.
  if (!report.voided) {
    CDT_SPAN("engine.settlement");
    bool settled = true;
    if (injector_ != nullptr) {
      int failures = 0;
      while (injector_->SettlementAttemptFails(t, failures)) {
        ++failures;
        if (failures > config_.recovery.max_settlement_retries) {
          settled = false;
          break;
        }
        report.settlement_backoff +=
            BackoffDelay(config_.recovery, failures - 1);
      }
      report.settlement_attempts = failures + (settled ? 1 : 0);
      if (failures > 0) {
        report.degraded = true;
        LogFault(&report, FaultKind::kSettlementFailure, -1,
                 static_cast<double>(failures), settled);
      }
    }
    if (settled) {
      CDT_RETURN_NOT_OK(SettlePayments(report));
    } else {
      VoidRound(&report);
    }
  }

  // Data collection: observe the environment for every delivering seller.
  // Each batch — injected or not — must pass validation before it feeds
  // the pricing bank, the policy's learner, or the revenue accounting, so
  // corrupted reports can never bias the quality estimates.
  if (!report.voided) {
    CDT_SPAN("engine.collect");
    std::vector<int>& learners = learners_scratch_;
    std::vector<std::vector<double>>& batches = batches_scratch_;
    learners.clear();
    batches.clear();
    learners.reserve(report.selected.size());
    batches.reserve(report.selected.size());
    for (std::size_t j = 0; j < report.selected.size(); ++j) {
      int seller = report.selected[j];
      // Recycled batch buffer: slot batches.size() of the pool (rejected
      // batches leave the slot in place for the next seller).
      if (batch_pool_.size() <= batches.size()) batch_pool_.emplace_back();
      std::vector<double>& observation = batch_pool_[batches.size()];
      environment_->ObserveSellerInto(seller, &observation);
      if (injector_ != nullptr &&
          draws[j].outcome == DeliveryOutcome::kCorrupted) {
        injector_->Corrupt(t, seller, &observation);
      }
      if (!ValidObservationBatch(observation)) {
        report.degraded = true;
        reliability_->RecordFault(seller, t, FaultKind::kCorruptedReport);
        LogFault(&report, FaultKind::kCorruptedReport, seller, 0.0, true);
        continue;
      }
      double sum = 0.0;
      for (double q : observation) sum += q;
      report.observed_quality_revenue += sum;
      report.expected_quality_revenue +=
          static_cast<double>(config_.job.num_pois) *
          environment_->effective_quality(seller);
      CDT_RETURN_NOT_OK(bank_.Update(seller, observation));
      bool partial = injector_ != nullptr &&
                     draws[j].outcome == DeliveryOutcome::kPartial;
      reliability_->RecordDelivery(seller, t, partial);
      learners.push_back(seller);
      batches.push_back(std::move(observation));
    }
    if (!learners.empty()) {
      CDT_RETURN_NOT_OK(policy_->Observe(learners, batches));
    }
    // Hand the moved-out buffers back to their pool slots so their
    // capacity survives into the next round.
    for (std::size_t j = 0; j < batches.size(); ++j) {
      batch_pool_[j] = std::move(batches[j]);
    }
    batches.clear();
  }

  for (const FaultEvent& e : report.faults) {
    fault_log_.push_back(e);
    ++fault_counts_[static_cast<std::size_t>(e.kind)];
  }
  ++next_round_;
  for (const std::unique_ptr<RoundObserver>& observer : observers_) {
    CDT_RETURN_NOT_OK(observer->OnRound(*this, report));
  }
  return report;
}

Status TradingEngine::SetSellerActive(int seller, bool active) {
  const int num_sellers = environment_->num_sellers();
  if (seller < 0 || seller >= num_sellers) {
    return Status::OutOfRange("seller index " + std::to_string(seller) +
                              " outside [0, " + std::to_string(num_sellers) +
                              ")");
  }
  if (seller_active_.empty()) {
    if (active) return Status::OK();  // everyone already active
    seller_active_.assign(static_cast<std::size_t>(num_sellers), 1);
  }
  std::uint8_t& slot = seller_active_[static_cast<std::size_t>(seller)];
  if ((slot != 0) == active) return Status::OK();  // no-op transition
  if (!active && inactive_count_ + 1 >= num_sellers) {
    return Status::FailedPrecondition(
        "deactivating seller " + std::to_string(seller) +
        " would leave no active sellers");
  }
  slot = active ? 1 : 0;
  inactive_count_ += active ? -1 : 1;
  if (inactive_count_ == 0) seller_active_.clear();
  return Status::OK();
}

EngineSnapshot TradingEngine::CaptureSnapshot() const {
  EngineSnapshot snapshot;
  snapshot.next_round = next_round_;
  snapshot.budget_exhausted = budget_exhausted_;
  snapshot.consumer_spend = consumer_spend_;

  snapshot.pricing_arms.reserve(static_cast<std::size_t>(bank_.num_arms()));
  for (int i = 0; i < bank_.num_arms(); ++i) {
    snapshot.pricing_arms.push_back(bank_.arm(i));
  }
  snapshot.pricing_total_observations = bank_.total_observations();

  if (const bandit::EstimatorBank* policy_bank = policy_->estimator()) {
    snapshot.has_policy_arms = true;
    snapshot.policy_arms.reserve(
        static_cast<std::size_t>(policy_bank->num_arms()));
    for (int i = 0; i < policy_bank->num_arms(); ++i) {
      snapshot.policy_arms.push_back(policy_bank->arm(i));
    }
    snapshot.policy_total_observations = policy_bank->total_observations();
  }

  snapshot.ledger_balances.reserve(
      static_cast<std::size_t>(ledger_.num_sellers()) + 2);
  snapshot.ledger_balances.push_back(
      ledger_.Balance(kConsumerAccount).value());
  snapshot.ledger_balances.push_back(
      ledger_.Balance(kPlatformAccount).value());
  for (int i = 0; i < ledger_.num_sellers(); ++i) {
    snapshot.ledger_balances.push_back(ledger_.Balance(i).value());
  }
  snapshot.ledger_consumer_outflow = ledger_.ConsumerOutflow();
  snapshot.ledger_seller_inflow = ledger_.SellerInflow();
  snapshot.ledger_transfers = ledger_.transfers();

  snapshot.reliability = reliability_->sellers();
  snapshot.reliability_total_faults = reliability_->total_faults();
  snapshot.fault_counts = fault_counts_;

  snapshot.environment = environment_->SaveState();

  // Empty when everyone is active — the encoding then appends nothing, so
  // snapshots of runs that never saw a departure keep their exact
  // pre-overlay byte layout.
  snapshot.seller_active = seller_active_;
  return snapshot;
}

Status TradingEngine::RestoreSnapshot(const EngineSnapshot& snapshot) {
  if (next_round_ != 1) {
    return Status::FailedPrecondition(
        "snapshot restore requires a freshly built engine");
  }
  if (snapshot.next_round < 1 ||
      snapshot.next_round > config_.job.num_rounds + 1) {
    return Status::OutOfRange("snapshot round cursor outside the campaign");
  }
  if (!policy_->snapshot_safe()) {
    return Status::FailedPrecondition(
        "policy '" + policy_->name() +
        "' keeps private state and cannot restore exactly");
  }
  bandit::EstimatorBank* policy_bank = policy_->mutable_estimator();
  if (snapshot.has_policy_arms != (policy_bank != nullptr)) {
    return Status::InvalidArgument(
        "snapshot and policy disagree on whether a policy estimator exists");
  }
  if (!(snapshot.consumer_spend >= 0.0)) {
    return Status::OutOfRange("negative consumer spend in snapshot");
  }
  for (std::int64_t count : snapshot.fault_counts) {
    if (count < 0) {
      return Status::OutOfRange("negative fault counter in snapshot");
    }
  }
  if (!snapshot.seller_active.empty() &&
      snapshot.seller_active.size() !=
          static_cast<std::size_t>(environment_->num_sellers())) {
    return Status::InvalidArgument(
        "snapshot seller-activity bitmap does not match the seller count");
  }
  // Sub-restores validate before mutating; once one has succeeded a later
  // failure leaves the engine partially restored, so callers must discard
  // the engine on any non-OK status.
  CDT_RETURN_NOT_OK(bank_.Restore(snapshot.pricing_arms,
                                  snapshot.pricing_total_observations));
  if (policy_bank != nullptr) {
    CDT_RETURN_NOT_OK(policy_bank->Restore(
        snapshot.policy_arms, snapshot.policy_total_observations));
  }
  CDT_RETURN_NOT_OK(ledger_.Restore(
      snapshot.ledger_balances, snapshot.ledger_consumer_outflow,
      snapshot.ledger_seller_inflow, snapshot.ledger_transfers));
  CDT_RETURN_NOT_OK(reliability_->Restore(
      snapshot.reliability, snapshot.reliability_total_faults));
  CDT_RETURN_NOT_OK(environment_->RestoreState(snapshot.environment));

  next_round_ = snapshot.next_round;
  budget_exhausted_ = snapshot.budget_exhausted;
  consumer_spend_ = snapshot.consumer_spend;
  fault_counts_ = snapshot.fault_counts;
  fault_log_.clear();
  seller_active_ = snapshot.seller_active;
  inactive_count_ = 0;
  for (std::uint8_t flag : seller_active_) {
    if (flag == 0) ++inactive_count_;
  }
  if (inactive_count_ == 0) seller_active_.clear();

  if (checker_ != nullptr) {
    CDT_RETURN_NOT_OK(
        checker_->ResetBaseline(ledger_, &bank_, next_round_ - 1));
  }
  return Status::OK();
}

Status TradingEngine::SettlePayments(const RoundReport& report) {
  // Consumer → platform: p^J · Στ; platform → seller i: p · τ_i. Balances
  // are always maintained; the per-transfer history obeys track_transfers.
  double reward = report.consumer_price * report.total_time;
  consumer_spend_ += reward;
  CDT_RETURN_NOT_OK(ledger_.Record(report.round, kConsumerAccount,
                                   kPlatformAccount, reward,
                                   "data service reward"));
  for (std::size_t j = 0; j < report.selected.size(); ++j) {
    CDT_RETURN_NOT_OK(ledger_.Record(
        report.round, kPlatformAccount,
        static_cast<std::int32_t>(report.selected[j]),
        report.collection_price * report.tau[j], "data collection pay"));
  }
  return Status::OK();
}

Status TradingEngine::RunAll(
    const std::function<void(const RoundReport&)>& callback) {
  while (next_round_ <= config_.job.num_rounds) {
    Result<RoundReport> report = RunRound();
    if (!report.ok()) {
      // A configured budget running out ends the campaign cleanly; the
      // stop is visible as a kBudgetStop entry in fault_log() and through
      // budget_exhausted().
      if (budget_exhausted_) return Status::OK();
      return report.status();
    }
    if (callback) callback(report.value());
  }
  return Status::OK();
}

}  // namespace market
}  // namespace cdt
