#include "market/trading_engine.h"

#include <algorithm>

#include "game/profit.h"

namespace cdt {
namespace market {

using util::Result;
using util::Status;

Status EngineConfig::Validate(int num_sellers) const {
  CDT_RETURN_NOT_OK(job.Validate());
  if (num_selected <= 0 || num_selected > num_sellers) {
    return Status::InvalidArgument("need 1 <= K <= M");
  }
  if (static_cast<int>(seller_costs.size()) != num_sellers) {
    return Status::InvalidArgument("need one cost parameter set per seller");
  }
  for (const game::SellerCostParams& s : seller_costs) {
    CDT_RETURN_NOT_OK(s.Validate());
  }
  CDT_RETURN_NOT_OK(platform_cost.Validate());
  CDT_RETURN_NOT_OK(valuation.Validate());
  if (!consumer_price_bounds.valid() || !collection_price_bounds.valid()) {
    return Status::InvalidArgument("invalid price bounds");
  }
  if (!(initial_tau > 0.0) || initial_tau > job.round_duration) {
    return Status::InvalidArgument("initial_tau must lie in (0, T]");
  }
  if (!(quality_floor > 0.0) || quality_floor > 1.0) {
    return Status::InvalidArgument("quality_floor must lie in (0, 1]");
  }
  if (consumer_budget < 0.0) {
    return Status::InvalidArgument("consumer_budget must be >= 0");
  }
  return Status::OK();
}

TradingEngine::TradingEngine(EngineConfig config,
                             bandit::QualityEnvironment* environment,
                             std::unique_ptr<bandit::SelectionPolicy> policy,
                             bandit::EstimatorBank bank)
    : config_(std::move(config)),
      environment_(environment),
      policy_(std::move(policy)),
      bank_(std::move(bank)),
      ledger_(environment_->num_sellers(), config_.track_transfers) {}

Result<std::unique_ptr<TradingEngine>> TradingEngine::Create(
    EngineConfig config, bandit::QualityEnvironment* environment,
    std::unique_ptr<bandit::SelectionPolicy> policy) {
  if (environment == nullptr) {
    return Status::InvalidArgument("environment must not be null");
  }
  if (policy == nullptr) {
    return Status::InvalidArgument("policy must not be null");
  }
  CDT_RETURN_NOT_OK(config.Validate(environment->num_sellers()));
  if (policy->num_sellers() != environment->num_sellers()) {
    return Status::InvalidArgument(
        "policy and environment disagree on the seller count");
  }
  if (config.job.num_pois != environment->num_pois()) {
    return Status::InvalidArgument(
        "job and environment disagree on the PoI count");
  }
  // The pricing bank mirrors Eq. (17)-(18); its exploration constant is
  // irrelevant (only means are consumed) but must be positive.
  Result<bandit::EstimatorBank> bank =
      bandit::EstimatorBank::Create(environment->num_sellers(), 1.0);
  if (!bank.ok()) return bank.status();
  bool check_invariants = config.check_invariants;
  auto engine = std::unique_ptr<TradingEngine>(
      new TradingEngine(std::move(config), environment, std::move(policy),
                        std::move(bank).value()));
  engine->oracle_round_revenue_ =
      static_cast<double>(engine->config_.job.num_pois) *
      environment->OptimalSetQuality(engine->config_.num_selected);
  if (check_invariants) {
    engine->checker_ = static_cast<InvariantChecker*>(
        engine->AddObserver(std::make_unique<InvariantChecker>()));
  }
  return engine;
}

RoundObserver* TradingEngine::AddObserver(
    std::unique_ptr<RoundObserver> observer) {
  observers_.push_back(std::move(observer));
  return observers_.back().get();
}

double TradingEngine::GameQuality(int seller) const {
  double q;
  if (config_.use_true_qualities_for_game) {
    q = environment_->effective_quality(seller);
  } else {
    const bandit::ArmState& arm = bank_.arm(seller);
    q = arm.observations > 0 ? arm.mean : config_.quality_floor;
  }
  return std::min(1.0, std::max(config_.quality_floor, q));
}

Result<RoundReport> TradingEngine::RunRound() {
  if (next_round_ > config_.job.num_rounds) {
    return Status::FailedPrecondition("all rounds already executed");
  }
  std::int64_t t = next_round_;

  Result<std::vector<int>> selected_result = policy_->SelectRound(t);
  if (!selected_result.ok()) return selected_result.status();
  std::vector<int> selected = std::move(selected_result).value();
  if (selected.empty()) {
    return Status::Internal("policy selected no sellers");
  }

  RoundReport report;
  report.round = t;
  report.selected = selected;
  report.initial_exploration =
      selected.size() > static_cast<std::size_t>(config_.num_selected);

  if (report.initial_exploration) {
    // Algorithm 1, steps 2-4: τ_i = τ^0, p = p_max, and p^J chosen as the
    // smallest price with non-negative platform profit (break-even):
    //   (p^J − p)Στ − θ(Στ)² − λΣτ = 0  ⇒  p^J = p + θΣτ + λ.
    double p = config_.collection_price_bounds.hi;
    report.tau.assign(selected.size(), config_.initial_tau);
    report.total_time = game::TotalTime(report.tau);
    double pj = p + config_.platform_cost.theta * report.total_time +
                config_.platform_cost.lambda;
    pj = std::max(pj, config_.consumer_price_bounds.lo);
    report.collection_price = p;
    report.consumer_price = pj;

    double quality_sum = 0.0;
    report.seller_profits.resize(selected.size());
    report.game_qualities.resize(selected.size());
    for (std::size_t j = 0; j < selected.size(); ++j) {
      double q = GameQuality(selected[j]);
      report.game_qualities[j] = q;
      quality_sum += q;
      report.seller_profits[j] = game::SellerProfit(
          p, report.tau[j],
          config_.seller_costs[static_cast<std::size_t>(selected[j])], q);
    }
    double mean_quality = quality_sum / static_cast<double>(selected.size());
    report.consumer_profit = game::ConsumerProfit(
        pj, mean_quality, report.total_time, config_.valuation);
    report.platform_profit = game::PlatformProfit(
        pj, p, report.total_time, config_.platform_cost);
  } else {
    // Regular round: play the three-stage HS game among the consumer, the
    // platform, and the selected sellers (Algorithm 1, step 11).
    game::GameConfig game_config;
    game_config.sellers.reserve(selected.size());
    game_config.qualities.reserve(selected.size());
    for (int i : selected) {
      game_config.sellers.push_back(
          config_.seller_costs[static_cast<std::size_t>(i)]);
      game_config.qualities.push_back(GameQuality(i));
    }
    report.game_qualities = game_config.qualities;
    game_config.platform = config_.platform_cost;
    game_config.valuation = config_.valuation;
    game_config.consumer_price_bounds = config_.consumer_price_bounds;
    game_config.collection_price_bounds = config_.collection_price_bounds;
    game_config.max_sensing_time = config_.job.round_duration;
    Result<game::StackelbergSolver> solver =
        game::StackelbergSolver::Create(std::move(game_config));
    if (!solver.ok()) return solver.status();
    game::StrategyProfile profile = solver.value().Solve();
    report.consumer_price = profile.consumer_price;
    report.collection_price = profile.collection_price;
    report.tau = std::move(profile.tau);
    report.total_time = profile.total_time;
    report.consumer_profit = profile.consumer_profit;
    report.platform_profit = profile.platform_profit;
    report.seller_profits = std::move(profile.seller_profits);
  }
  for (double psi : report.seller_profits) report.seller_profit_total += psi;

  // Budget gate: the round is abandoned (no data collected, no payments)
  // when the consumer cannot afford its reward.
  if (config_.consumer_budget > 0.0) {
    double reward = report.consumer_price * report.total_time;
    if (consumer_spend_ + reward > config_.consumer_budget) {
      budget_exhausted_ = true;
      return Status::FailedPrecondition(
          "consumer budget exhausted after " +
          std::to_string(next_round_ - 1) + " rounds");
    }
  }

  // Data collection: observe the environment for every selected seller and
  // feed both the policy's learner and the engine's pricing estimates.
  std::vector<std::vector<double>> observations(selected.size());
  for (std::size_t j = 0; j < selected.size(); ++j) {
    observations[j] = environment_->ObserveSeller(selected[j]);
    double sum = 0.0;
    for (double q : observations[j]) sum += q;
    report.observed_quality_revenue += sum;
    report.expected_quality_revenue +=
        static_cast<double>(config_.job.num_pois) *
        environment_->effective_quality(selected[j]);
    CDT_RETURN_NOT_OK(bank_.Update(selected[j], observations[j]));
  }
  CDT_RETURN_NOT_OK(policy_->Observe(selected, observations));

  CDT_RETURN_NOT_OK(SettlePayments(report));
  ++next_round_;
  for (const std::unique_ptr<RoundObserver>& observer : observers_) {
    CDT_RETURN_NOT_OK(observer->OnRound(*this, report));
  }
  return report;
}

Status TradingEngine::SettlePayments(const RoundReport& report) {
  // Consumer → platform: p^J · Στ; platform → seller i: p · τ_i. Balances
  // are always maintained; the per-transfer history obeys track_transfers.
  double reward = report.consumer_price * report.total_time;
  consumer_spend_ += reward;
  CDT_RETURN_NOT_OK(ledger_.Record(report.round, kConsumerAccount,
                                   kPlatformAccount, reward,
                                   "data service reward"));
  for (std::size_t j = 0; j < report.selected.size(); ++j) {
    CDT_RETURN_NOT_OK(ledger_.Record(
        report.round, kPlatformAccount,
        static_cast<std::int32_t>(report.selected[j]),
        report.collection_price * report.tau[j], "data collection pay"));
  }
  return Status::OK();
}

Status TradingEngine::RunAll(
    const std::function<void(const RoundReport&)>& callback) {
  while (next_round_ <= config_.job.num_rounds) {
    Result<RoundReport> report = RunRound();
    if (!report.ok()) {
      // A configured budget running out ends the campaign cleanly.
      if (budget_exhausted_) return Status::OK();
      return report.status();
    }
    if (callback) callback(report.value());
  }
  return Status::OK();
}

}  // namespace market
}  // namespace cdt
