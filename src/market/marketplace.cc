#include "market/marketplace.h"

#include <algorithm>
#include <limits>

#include "game/profit.h"

namespace cdt {
namespace market {

using util::Result;
using util::Status;

Status MarketplaceConfig::Validate(int num_sellers) const {
  CDT_RETURN_NOT_OK(base_job.Validate());
  if (jobs.empty()) {
    return Status::InvalidArgument("marketplace needs >= 1 job");
  }
  int total_k = 0;
  for (const MarketplaceJob& job : jobs) {
    if (job.name.empty()) {
      return Status::InvalidArgument("jobs need non-empty names");
    }
    if (job.num_selected <= 0) {
      return Status::InvalidArgument("job '" + job.name + "': K must be > 0");
    }
    CDT_RETURN_NOT_OK(job.valuation.Validate());
    // Same interval checks as EngineConfig::Validate, via the shared
    // helper, so the marketplace cannot admit a job its engine rejects.
    CDT_RETURN_NOT_OK(ValidatePriceBounds(
        job.consumer_price_bounds,
        "job '" + job.name + "' consumer price bounds"));
    CDT_RETURN_NOT_OK(ValidatePriceBounds(
        job.collection_price_bounds,
        "job '" + job.name + "' collection price bounds"));
    total_k += job.num_selected;
  }
  if (total_k > num_sellers) {
    return Status::FailedPrecondition(
        "jobs demand " + std::to_string(total_k) + " sellers per round but "
        "the pool has only " + std::to_string(num_sellers));
  }
  if (static_cast<int>(seller_costs.size()) != num_sellers) {
    return Status::InvalidArgument("need one cost parameter set per seller");
  }
  for (const game::SellerCostParams& s : seller_costs) {
    CDT_RETURN_NOT_OK(s.Validate());
  }
  CDT_RETURN_NOT_OK(platform_cost.Validate());
  CDT_RETURN_NOT_OK(ValidateQualityFloor(quality_floor));
  return Status::OK();
}

Marketplace::Marketplace(MarketplaceConfig config,
                         bandit::QualityEnvironment* environment,
                         bandit::EstimatorBank bank)
    : config_(std::move(config)),
      environment_(environment),
      bank_(std::move(bank)) {
  summaries_.reserve(config_.jobs.size());
  for (const MarketplaceJob& job : config_.jobs) {
    JobSummary summary;
    summary.job_name = job.name;
    summaries_.push_back(std::move(summary));
  }
}

Result<std::unique_ptr<Marketplace>> Marketplace::Create(
    MarketplaceConfig config, bandit::QualityEnvironment* environment) {
  if (environment == nullptr) {
    return Status::InvalidArgument("environment must not be null");
  }
  CDT_RETURN_NOT_OK(config.Validate(environment->num_sellers()));
  if (config.base_job.num_pois != environment->num_pois()) {
    return Status::InvalidArgument(
        "job and environment disagree on the PoI count");
  }
  double exploration = config.exploration;
  if (exploration <= 0.0) {
    int max_k = 0;
    for (const MarketplaceJob& job : config.jobs) {
      max_k = std::max(max_k, job.num_selected);
    }
    exploration = static_cast<double>(max_k + 1);
  }
  Result<bandit::EstimatorBank> bank =
      bandit::EstimatorBank::Create(environment->num_sellers(), exploration);
  if (!bank.ok()) return bank.status();
  return std::unique_ptr<Marketplace>(new Marketplace(
      std::move(config), environment, std::move(bank).value()));
}

double Marketplace::GameQuality(int seller) const {
  const bandit::ArmState& arm = bank_.arm(seller);
  double q = arm.observations > 0 ? arm.mean : config_.quality_floor;
  return std::min(1.0, std::max(config_.quality_floor, q));
}

Result<MarketplaceRoundReport> Marketplace::RunRound() {
  if (next_round_ > config_.base_job.num_rounds) {
    return Status::FailedPrecondition("all rounds already executed");
  }
  std::int64_t t = next_round_;
  MarketplaceRoundReport round_report;
  round_report.round = t;

  // Rotating priority: the job that picks first advances each round so no
  // consumer is permanently disadvantaged in seller contention.
  std::size_t num_jobs = config_.jobs.size();
  std::size_t start = static_cast<std::size_t>((t - 1) %
                                               static_cast<std::int64_t>(
                                                   num_jobs));

  std::vector<bool> taken(static_cast<std::size_t>(
                              environment_->num_sellers()),
                          false);
  bank_.UcbValuesInto(&ucb_scratch_);
  const std::vector<double>& ucb = ucb_scratch_;

  for (std::size_t step = 0; step < num_jobs; ++step) {
    std::size_t j = (start + step) % num_jobs;
    const MarketplaceJob& job = config_.jobs[j];

    // Top-K_j available sellers by shared UCB.
    std::vector<int> selected;
    selected.reserve(static_cast<std::size_t>(job.num_selected));
    // Simple partial selection over the availability mask; M is small
    // enough (<= a few hundred) that a linear scan per pick is fine.
    for (int pick = 0; pick < job.num_selected; ++pick) {
      int best = -1;
      double best_value = -std::numeric_limits<double>::infinity();
      for (int i = 0; i < environment_->num_sellers(); ++i) {
        if (taken[static_cast<std::size_t>(i)]) continue;
        double v = ucb[static_cast<std::size_t>(i)];
        if (v > best_value) {
          best_value = v;
          best = i;
        }
      }
      if (best < 0) break;  // unreachable: Validate caps Σ K_j <= M
      taken[static_cast<std::size_t>(best)] = true;
      selected.push_back(best);
    }

    // The job's own HS game.
    game::GameConfig game_config;
    for (int i : selected) {
      game_config.sellers.push_back(
          config_.seller_costs[static_cast<std::size_t>(i)]);
      game_config.qualities.push_back(GameQuality(i));
    }
    game_config.platform = config_.platform_cost;
    game_config.valuation = job.valuation;
    game_config.consumer_price_bounds = job.consumer_price_bounds;
    game_config.collection_price_bounds = job.collection_price_bounds;
    game_config.max_sensing_time = config_.base_job.round_duration;
    Result<game::StackelbergSolver> solver =
        game::StackelbergSolver::Create(game_config);
    if (!solver.ok()) return solver.status();
    game::StrategyProfile profile = solver.value().Solve();

    JobRoundReport job_report;
    job_report.job_name = job.name;
    RoundReport& report = job_report.report;
    report.round = t;
    report.selected = selected;
    report.game_qualities = std::move(game_config.qualities);
    report.consumer_price = profile.consumer_price;
    report.collection_price = profile.collection_price;
    report.tau = std::move(profile.tau);
    report.total_time = profile.total_time;
    report.consumer_profit = profile.consumer_profit;
    report.platform_profit = profile.platform_profit;
    report.seller_profits = std::move(profile.seller_profits);
    for (double psi : report.seller_profits) {
      report.seller_profit_total += psi;
    }

    // Data collection + shared learning.
    for (std::size_t s = 0; s < selected.size(); ++s) {
      std::vector<double> obs = environment_->ObserveSeller(selected[s]);
      double sum = 0.0;
      for (double q : obs) sum += q;
      report.observed_quality_revenue += sum;
      report.expected_quality_revenue +=
          static_cast<double>(config_.base_job.num_pois) *
          environment_->effective_quality(selected[s]);
      CDT_RETURN_NOT_OK(bank_.Update(selected[s], obs));
    }

    JobSummary& summary = summaries_[j];
    ++summary.rounds;
    summary.consumer_profit_total += report.consumer_profit;
    summary.platform_profit_total += report.platform_profit;
    summary.seller_profit_total += report.seller_profit_total;
    summary.expected_quality_revenue += report.expected_quality_revenue;

    round_report.jobs.push_back(std::move(job_report));
  }
  ++next_round_;
  return round_report;
}

Status Marketplace::RunAll() {
  while (next_round_ <= config_.base_job.num_rounds) {
    Result<MarketplaceRoundReport> report = RunRound();
    if (!report.ok()) return report.status();
  }
  return Status::OK();
}

}  // namespace market
}  // namespace cdt
