#include "market/faults.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "stats/rng.h"

namespace cdt {
namespace market {
namespace {

using util::Status;

// Stream tags separating the injector's independent decision channels.
constexpr std::uint64_t kOutcomeStream = 0xFA17'0001ULL;
constexpr std::uint64_t kFractionStream = 0xFA17'0002ULL;
constexpr std::uint64_t kSettlementStream = 0xFA17'0003ULL;
constexpr std::uint64_t kCorruptStream = 0xFA17'0004ULL;

Status CheckRate(double rate, const char* name) {
  if (!(rate >= 0.0) || rate > 1.0) {
    return Status::InvalidArgument(std::string(name) +
                                   " must be a probability in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSellerDefault:
      return "default";
    case FaultKind::kCorruptedReport:
      return "corrupt";
    case FaultKind::kPartialDelivery:
      return "partial";
    case FaultKind::kSettlementFailure:
      return "settlement";
    case FaultKind::kQuarantine:
      return "quarantine";
    case FaultKind::kBudgetStop:
      return "budget";
  }
  return "unknown";
}

std::string FaultEvent::ToString() const {
  std::ostringstream os;
  os << "[" << FaultKindName(kind) << "] round " << round;
  if (seller >= 0) os << " seller " << seller;
  if (severity != 0.0) os << " severity=" << severity;
  if (!recovered) os << " UNRECOVERED";
  return os.str();
}

std::string EncodeFaultSummary(const std::vector<FaultEvent>& events) {
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) os << ';';
    const FaultEvent& e = events[i];
    os << FaultKindName(e.kind) << ':' << e.seller;
    if (e.severity != 0.0) os << '@' << e.severity;
    if (!e.recovered) os << '!';
  }
  return os.str();
}

bool FaultProfile::any() const {
  return default_rate > 0.0 || corrupt_rate > 0.0 || partial_rate > 0.0 ||
         settlement_failure_rate > 0.0;
}

Status FaultProfile::Validate() const {
  CDT_RETURN_NOT_OK(CheckRate(default_rate, "default_rate"));
  CDT_RETURN_NOT_OK(CheckRate(corrupt_rate, "corrupt_rate"));
  CDT_RETURN_NOT_OK(CheckRate(partial_rate, "partial_rate"));
  CDT_RETURN_NOT_OK(
      CheckRate(settlement_failure_rate, "settlement_failure_rate"));
  if (default_rate + corrupt_rate + partial_rate > 1.0) {
    return Status::InvalidArgument(
        "default_rate + corrupt_rate + partial_rate must not exceed 1");
  }
  if (!(partial_fraction_lo > 0.0) || !(partial_fraction_hi < 1.0) ||
      partial_fraction_lo > partial_fraction_hi) {
    return Status::InvalidArgument(
        "partial fraction bounds must satisfy 0 < lo <= hi < 1");
  }
  if (settlement_failure_rate >= 1.0) {
    return Status::InvalidArgument(
        "settlement_failure_rate must be < 1 or no retry budget can succeed");
  }
  return Status::OK();
}

double FaultInjector::UnitDraw(std::uint64_t stream, std::uint64_t a,
                               std::uint64_t b) const {
  // Two SplitMix64 passes over (seed, stream, a, b). Each key component is
  // pre-whitened so that nearby rounds / seller indices land in unrelated
  // parts of the stream; the outcome depends only on the key, never on how
  // many draws happened before it.
  stats::SplitMix64 mix(profile_.seed ^
                        (stream * 0x9E3779B97F4A7C15ULL));
  std::uint64_t h = mix.Next();
  h ^= (a + 1) * 0xBF58476D1CE4E5B9ULL;
  h ^= (b + 1) * 0x94D049BB133111EBULL;
  stats::SplitMix64 finish(h);
  return static_cast<double>(finish.Next() >> 11) * 0x1.0p-53;
}

SellerFaultDraw FaultInjector::DrawSeller(std::int64_t round,
                                          int seller) const {
  SellerFaultDraw draw;
  const double u = UnitDraw(kOutcomeStream, static_cast<std::uint64_t>(round),
                            static_cast<std::uint64_t>(seller));
  if (u < profile_.default_rate) {
    draw.outcome = DeliveryOutcome::kDefaulted;
    draw.fraction = 0.0;
  } else if (u < profile_.default_rate + profile_.corrupt_rate) {
    draw.outcome = DeliveryOutcome::kCorrupted;
  } else if (u < profile_.default_rate + profile_.corrupt_rate +
                     profile_.partial_rate) {
    draw.outcome = DeliveryOutcome::kPartial;
    const double v =
        UnitDraw(kFractionStream, static_cast<std::uint64_t>(round),
                 static_cast<std::uint64_t>(seller));
    draw.fraction = profile_.partial_fraction_lo +
                    v * (profile_.partial_fraction_hi -
                         profile_.partial_fraction_lo);
  }
  return draw;
}

bool FaultInjector::SettlementAttemptFails(std::int64_t round,
                                           int attempt) const {
  if (profile_.settlement_failure_rate <= 0.0) return false;
  const double u =
      UnitDraw(kSettlementStream, static_cast<std::uint64_t>(round),
               static_cast<std::uint64_t>(attempt));
  return u < profile_.settlement_failure_rate;
}

void FaultInjector::Corrupt(std::int64_t round, int seller,
                            std::vector<double>* observations) const {
  if (observations == nullptr || observations->empty()) return;
  // Cycle through the failure modes a hostile or broken device produces:
  // NaN, overflow, negative readings, and >1 "qualities".
  static const double kPoison[] = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(), -0.75, 2.5};
  const std::uint64_t key =
      (static_cast<std::uint64_t>(round) << 20) ^
      static_cast<std::uint64_t>(seller);
  for (std::size_t l = 0; l < observations->size(); ++l) {
    // Always damage the first sample so the batch can never validate.
    if (l != 0 && UnitDraw(kCorruptStream, key, l) < 0.5) continue;
    (*observations)[l] = kPoison[(l + static_cast<std::size_t>(seller)) % 4];
  }
}

bool ValidObservationBatch(const std::vector<double>& observations) {
  for (double q : observations) {
    if (!std::isfinite(q) || q < 0.0 || q > 1.0) return false;
  }
  return true;
}

Status RecoveryOptions::Validate() const {
  if (max_settlement_retries < 0) {
    return Status::InvalidArgument("max_settlement_retries must be >= 0");
  }
  if (!(backoff_initial >= 0.0) || !std::isfinite(backoff_initial)) {
    return Status::InvalidArgument("backoff_initial must be finite and >= 0");
  }
  if (!(backoff_multiplier >= 1.0) || !std::isfinite(backoff_multiplier)) {
    return Status::InvalidArgument("backoff_multiplier must be >= 1");
  }
  if (!(backoff_cap >= backoff_initial) || !std::isfinite(backoff_cap)) {
    return Status::InvalidArgument(
        "backoff_cap must be finite and >= backoff_initial");
  }
  if (quarantine_threshold < 1) {
    return Status::InvalidArgument("quarantine_threshold must be >= 1");
  }
  if (quarantine_cooldown < 1) {
    return Status::InvalidArgument("quarantine_cooldown must be >= 1");
  }
  if (probation_successes < 1) {
    return Status::InvalidArgument("probation_successes must be >= 1");
  }
  return Status::OK();
}

double BackoffDelay(const RecoveryOptions& options, int attempt) {
  double delay = options.backoff_initial;
  for (int i = 0; i < attempt; ++i) {
    delay *= options.backoff_multiplier;
    if (delay >= options.backoff_cap) return options.backoff_cap;
  }
  return std::min(delay, options.backoff_cap);
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kProbation:
      return "probation";
  }
  return "unknown";
}

double SellerReliability::delivery_rate() const {
  const std::int64_t attempts = deliveries + defaults + corruptions;
  if (attempts == 0) return 1.0;
  return static_cast<double>(deliveries) / static_cast<double>(attempts);
}

ReliabilityTracker::ReliabilityTracker(int num_sellers,
                                       RecoveryOptions options)
    : options_(options),
      sellers_(static_cast<std::size_t>(std::max(num_sellers, 0))) {}

bool ReliabilityTracker::Available(int seller, std::int64_t round) const {
  const SellerReliability& s = sellers_.at(static_cast<std::size_t>(seller));
  if (s.state != BreakerState::kOpen) return true;
  return round >= s.opened_round + options_.quarantine_cooldown;
}

void ReliabilityTracker::MaybeEnterProbation(SellerReliability* s,
                                             std::int64_t round) {
  if (s->state == BreakerState::kOpen &&
      round >= s->opened_round + options_.quarantine_cooldown) {
    s->state = BreakerState::kProbation;
    s->probation_progress = 0;
  }
}

void ReliabilityTracker::RecordDelivery(int seller, std::int64_t round,
                                        bool partial) {
  SellerReliability& s = sellers_.at(static_cast<std::size_t>(seller));
  MaybeEnterProbation(&s, round);
  ++s.deliveries;
  if (partial) ++s.partials;
  s.consecutive_faults = 0;
  if (s.state == BreakerState::kProbation) {
    if (++s.probation_progress >= options_.probation_successes) {
      s.state = BreakerState::kClosed;
      s.probation_progress = 0;
    }
  }
}

void ReliabilityTracker::RecordFault(int seller, std::int64_t round,
                                     FaultKind kind) {
  SellerReliability& s = sellers_.at(static_cast<std::size_t>(seller));
  MaybeEnterProbation(&s, round);
  if (kind == FaultKind::kCorruptedReport) {
    ++s.corruptions;
  } else {
    ++s.defaults;
  }
  ++total_faults_;
  ++s.consecutive_faults;
  // A fault on probation trips the breaker immediately; a closed breaker
  // waits for the configured run of consecutive faults.
  const bool trip = s.state == BreakerState::kProbation ||
                    (s.state == BreakerState::kClosed &&
                     s.consecutive_faults >= options_.quarantine_threshold);
  if (trip) {
    s.state = BreakerState::kOpen;
    s.opened_round = round;
    s.probation_progress = 0;
    s.consecutive_faults = 0;
    ++s.times_opened;
  }
}

void ReliabilityTracker::RecordQuarantineDrop(int seller) {
  ++sellers_.at(static_cast<std::size_t>(seller)).quarantine_drops;
}

Status ReliabilityTracker::Restore(std::vector<SellerReliability> sellers,
                                   std::int64_t total_faults) {
  if (sellers.size() != sellers_.size()) {
    return Status::InvalidArgument(
        "reliability restore seller count mismatch: have " +
        std::to_string(sellers_.size()) + ", snapshot has " +
        std::to_string(sellers.size()));
  }
  if (total_faults < 0) {
    return Status::InvalidArgument("negative total fault count");
  }
  for (const SellerReliability& s : sellers) {
    if (s.deliveries < 0 || s.partials < 0 || s.defaults < 0 ||
        s.corruptions < 0 || s.quarantine_drops < 0 || s.times_opened < 0 ||
        s.consecutive_faults < 0 || s.probation_progress < 0 ||
        s.opened_round < 0) {
      return Status::InvalidArgument("negative reliability counter");
    }
  }
  sellers_ = std::move(sellers);
  total_faults_ = total_faults;
  return Status::OK();
}

int ReliabilityTracker::QuarantinedCount(std::int64_t round) const {
  int count = 0;
  for (int i = 0; i < num_sellers(); ++i) {
    if (!Available(i, round)) ++count;
  }
  return count;
}

bandit::AvailabilityFn QuarantineAvailability(
    const ReliabilityTracker* tracker) {
  return [tracker](int seller, std::int64_t round) {
    return tracker->Available(seller, round);
  };
}

}  // namespace market
}  // namespace cdt
