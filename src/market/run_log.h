// Round-report persistence: stream a trading run to CSV (one row per
// round) and load it back for offline analysis. Long campaigns can thus be
// audited or re-plotted without re-simulation.

#ifndef CDT_MARKET_RUN_LOG_H_
#define CDT_MARKET_RUN_LOG_H_

#include <fstream>
#include <string>
#include <vector>

#include "market/types.h"
#include "util/status.h"

namespace cdt {
namespace market {

/// One persisted row (the scalar slice of a RoundReport; per-seller
/// vectors are folded into the selected-set string and totals).
struct RunLogRow {
  std::int64_t round = 0;
  bool initial_exploration = false;
  std::string selected;  // "+"-joined seller indices
  double consumer_price = 0.0;
  double collection_price = 0.0;
  double total_time = 0.0;
  double consumer_profit = 0.0;
  double platform_profit = 0.0;
  double seller_profit_total = 0.0;
  double expected_quality_revenue = 0.0;
  double observed_quality_revenue = 0.0;
  bool degraded = false;
  bool voided = false;
  int num_faults = 0;
  /// EncodeFaultSummary() of the round's fault events ("" = clean round).
  std::string faults;
};

/// Converts a full report into its persisted row.
RunLogRow ToRunLogRow(const RoundReport& report);

/// Parses the "+"-joined selected-set string back into indices.
util::Result<std::vector<int>> ParseSelectedSet(const std::string& text);

/// Streaming CSV writer: open once, append per round, close (flushes and
/// verifies the stream reached disk). Any I/O failure is sticky: once an
/// Append/Flush fails, every later Append/Flush/Close reports the original
/// error instead of silently dropping tail rows.
class RunLogWriter {
 public:
  /// Opens `path` for writing and emits the header.
  static util::Result<RunLogWriter> Open(const std::string& path);

  /// Appends one round.
  util::Status Append(const RoundReport& report);

  /// Pushes buffered rows to the OS and checks the stream state.
  util::Status Flush();

  /// Flushes, fsyncs the file to disk, closes, and reports any error seen
  /// over the writer's life; further appends fail. Idempotent: repeat
  /// calls return the same status. The fsync closes the durability gap a
  /// crash right after Close used to have — a closed run log is on disk,
  /// not just in the page cache.
  util::Status Close();

  std::int64_t rows_written() const { return rows_; }

 private:
  RunLogWriter(std::ofstream stream, std::string path)
      : out_(std::move(stream)), path_(std::move(path)) {}

  /// Records the first I/O failure so later calls keep reporting it.
  util::Status Poison(const std::string& message);

  std::ofstream out_;
  std::string path_;
  std::int64_t rows_ = 0;
  bool closed_ = false;
  util::Status error_ = util::Status::OK();
};

/// Loads a run log written by RunLogWriter; validates every row.
util::Result<std::vector<RunLogRow>> LoadRunLog(const std::string& path);

}  // namespace market
}  // namespace cdt

#endif  // CDT_MARKET_RUN_LOG_H_
