#include "market/ledger.h"

namespace cdt {
namespace market {

using util::Result;
using util::Status;

Ledger::Ledger(int num_sellers, bool keep_history)
    : num_sellers_(num_sellers),
      keep_history_(keep_history),
      balances_(static_cast<std::size_t>(num_sellers) + 2, 0.0) {}

bool Ledger::ValidAccount(std::int32_t account) const {
  if (account == kConsumerAccount || account == kPlatformAccount) return true;
  return account >= kSellerBase && account < num_sellers_;
}

std::size_t Ledger::SlotOf(std::int32_t account) const {
  if (account == kConsumerAccount) return 0;
  if (account == kPlatformAccount) return 1;
  return static_cast<std::size_t>(account) + 2;
}

Status Ledger::Record(std::int64_t round, std::int32_t from, std::int32_t to,
                      double amount, std::string memo) {
  if (!ValidAccount(from) || !ValidAccount(to)) {
    return Status::InvalidArgument("unknown ledger account");
  }
  if (from == to) {
    return Status::InvalidArgument("self-transfer is not allowed");
  }
  if (amount < 0.0) {
    return Status::InvalidArgument(
        "negative transfer; record the reverse direction instead");
  }
  balances_[SlotOf(from)] -= amount;
  balances_[SlotOf(to)] += amount;
  if (from == kConsumerAccount) consumer_outflow_ += amount;
  if (to == kConsumerAccount) consumer_outflow_ -= amount;
  if (to >= kSellerBase) seller_inflow_ += amount;
  if (from >= kSellerBase) seller_inflow_ -= amount;
  if (keep_history_) {
    Transfer t;
    t.round = round;
    t.from = from;
    t.to = to;
    t.amount = amount;
    t.memo = std::move(memo);
    transfers_.push_back(std::move(t));
  }
  return Status::OK();
}

Result<double> Ledger::Balance(std::int32_t account) const {
  if (!ValidAccount(account)) {
    return Status::InvalidArgument("unknown ledger account");
  }
  return balances_[SlotOf(account)];
}

double Ledger::NetPosition() const {
  double net = 0.0;
  for (double b : balances_) net += b;
  return net;
}

Status Ledger::Restore(std::vector<double> balances, double consumer_outflow,
                       double seller_inflow,
                       std::vector<Transfer> transfers) {
  if (balances.size() != balances_.size()) {
    return Status::InvalidArgument(
        "ledger restore balance count mismatch: have " +
        std::to_string(balances_.size()) + " slots, snapshot has " +
        std::to_string(balances.size()));
  }
  if (!keep_history_ && !transfers.empty()) {
    return Status::InvalidArgument(
        "snapshot carries transfer history but this ledger keeps none");
  }
  for (const Transfer& t : transfers) {
    if (!ValidAccount(t.from) || !ValidAccount(t.to) || t.amount < 0.0) {
      return Status::InvalidArgument("invalid transfer in ledger snapshot");
    }
  }
  balances_ = std::move(balances);
  consumer_outflow_ = consumer_outflow;
  seller_inflow_ = seller_inflow;
  transfers_ = std::move(transfers);
  return Status::OK();
}

}  // namespace market
}  // namespace cdt
