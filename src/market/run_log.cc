#include "market/run_log.h"

#include <fcntl.h>
#include <unistd.h>

#include "util/csv.h"
#include "util/string_util.h"

namespace cdt {
namespace market {

using util::Result;
using util::Status;

namespace {

const char* const kHeader[] = {
    "round",          "initial_exploration",      "selected",
    "consumer_price", "collection_price",         "total_time",
    "consumer_profit", "platform_profit",         "seller_profit_total",
    "expected_quality_revenue", "observed_quality_revenue",
    "degraded",       "voided",                   "num_faults",
    "faults"};
constexpr std::size_t kColumns = sizeof(kHeader) / sizeof(kHeader[0]);

util::CsvRow HeaderRow() {
  return util::CsvRow(kHeader, kHeader + kColumns);
}

}  // namespace

RunLogRow ToRunLogRow(const RoundReport& report) {
  RunLogRow row;
  row.round = report.round;
  row.initial_exploration = report.initial_exploration;
  std::vector<std::string> ids;
  ids.reserve(report.selected.size());
  for (int i : report.selected) ids.push_back(std::to_string(i));
  row.selected = util::Join(ids, '+');
  row.consumer_price = report.consumer_price;
  row.collection_price = report.collection_price;
  row.total_time = report.total_time;
  row.consumer_profit = report.consumer_profit;
  row.platform_profit = report.platform_profit;
  row.seller_profit_total = report.seller_profit_total;
  row.expected_quality_revenue = report.expected_quality_revenue;
  row.observed_quality_revenue = report.observed_quality_revenue;
  row.degraded = report.degraded;
  row.voided = report.voided;
  row.num_faults = static_cast<int>(report.faults.size());
  row.faults = EncodeFaultSummary(report.faults);
  return row;
}

Result<std::vector<int>> ParseSelectedSet(const std::string& text) {
  std::vector<int> out;
  if (text.empty()) return out;
  for (const std::string& part : util::Split(text, '+')) {
    Result<long long> id = util::ParseInt(part);
    if (!id.ok()) return id.status();
    out.push_back(static_cast<int>(id.value()));
  }
  return out;
}

Result<RunLogWriter> RunLogWriter::Open(const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open run log for writing: " + path);
  }
  out << util::FormatCsvLine(HeaderRow()) << '\n';
  if (!out.good()) {
    return Status::IoError("failed writing run-log header: " + path);
  }
  return RunLogWriter(std::move(out), path);
}

Status RunLogWriter::Poison(const std::string& message) {
  if (error_.ok()) error_ = Status::IoError(message);
  return error_;
}

Status RunLogWriter::Append(const RoundReport& report) {
  if (closed_) {
    return Status::FailedPrecondition("run log already closed");
  }
  if (!error_.ok()) return error_;
  RunLogRow row = ToRunLogRow(report);
  util::CsvRow cells{
      std::to_string(row.round),
      row.initial_exploration ? "1" : "0",
      row.selected,
      util::FormatDouble(row.consumer_price, 9),
      util::FormatDouble(row.collection_price, 9),
      util::FormatDouble(row.total_time, 9),
      util::FormatDouble(row.consumer_profit, 9),
      util::FormatDouble(row.platform_profit, 9),
      util::FormatDouble(row.seller_profit_total, 9),
      util::FormatDouble(row.expected_quality_revenue, 9),
      util::FormatDouble(row.observed_quality_revenue, 9),
      row.degraded ? "1" : "0",
      row.voided ? "1" : "0",
      std::to_string(row.num_faults),
      row.faults};
  out_ << util::FormatCsvLine(cells) << '\n';
  if (!out_.good()) return Poison("run-log write failed");
  ++rows_;
  return Status::OK();
}

Status RunLogWriter::Flush() {
  if (closed_) {
    return Status::FailedPrecondition("run log already closed");
  }
  if (!error_.ok()) return error_;
  out_.flush();
  if (!out_.good()) return Poison("run-log flush failed");
  return Status::OK();
}

Status RunLogWriter::Close() {
  if (closed_) return error_;
  closed_ = true;
  out_.flush();
  if (!out_.good()) Poison("run-log flush-on-close failed");
  out_.close();
  if (out_.fail()) Poison("run-log close failed");
  // ofstream exposes no descriptor, so durability takes a reopen + fsync.
  if (error_.ok()) {
    int fd = ::open(path_.c_str(), O_WRONLY);
    if (fd < 0) {
      Poison("run-log reopen for fsync failed: " + path_);
    } else {
      if (::fsync(fd) != 0) Poison("run-log fsync failed: " + path_);
      ::close(fd);
    }
  }
  return error_;
}

Result<std::vector<RunLogRow>> LoadRunLog(const std::string& path) {
  Result<util::CsvTable> table = util::ReadCsvFile(path);
  if (!table.ok()) return table.status();
  if (table.value().header != HeaderRow()) {
    return Status::ParseError("unexpected run-log header in " + path);
  }
  std::vector<RunLogRow> rows;
  rows.reserve(table.value().rows.size());
  for (std::size_t r = 0; r < table.value().rows.size(); ++r) {
    const util::CsvRow& cells = table.value().rows[r];
    auto fail = [&](const Status& status) {
      return Status::ParseError("row " + std::to_string(r + 1) + ": " +
                                status.message());
    };
    RunLogRow row;
    auto round = util::ParseInt(cells[0]);
    if (!round.ok()) return fail(round.status());
    row.round = round.value();
    row.initial_exploration = cells[1] == "1";
    // Validate the selected set even though it stays in string form.
    auto selected = ParseSelectedSet(cells[2]);
    if (!selected.ok()) return fail(selected.status());
    row.selected = cells[2];
    double* fields[] = {&row.consumer_price,
                        &row.collection_price,
                        &row.total_time,
                        &row.consumer_profit,
                        &row.platform_profit,
                        &row.seller_profit_total,
                        &row.expected_quality_revenue,
                        &row.observed_quality_revenue};
    for (std::size_t f = 0; f < 8; ++f) {
      auto value = util::ParseDouble(cells[f + 3]);
      if (!value.ok()) return fail(value.status());
      *fields[f] = value.value();
    }
    row.degraded = cells[11] == "1";
    row.voided = cells[12] == "1";
    auto num_faults = util::ParseInt(cells[13]);
    if (!num_faults.ok()) return fail(num_faults.status());
    row.num_faults = static_cast<int>(num_faults.value());
    row.faults = cells[14];
    if (row.voided && !row.degraded) {
      return fail(Status::ParseError("voided row not marked degraded"));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace market
}  // namespace cdt
