// Engine snapshots: the full mutable state of a TradingEngine mid-campaign
// — bandit learning state, ledger, reliability breaker state, budget and
// round cursor, plus the environment's observation-stream state — so a
// persisted run can restore as `snapshot + tail-replay` instead of
// replaying from round 1. Captured/applied by TradingEngine, serialized by
// src/persist/ (see docs/PERSISTENCE.md).

#ifndef CDT_MARKET_SNAPSHOT_H_
#define CDT_MARKET_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <vector>

#include "bandit/arm.h"
#include "bandit/environment.h"
#include "market/faults.h"
#include "market/ledger.h"

namespace cdt {
namespace market {

/// Everything TradingEngine::RestoreSnapshot needs to resume a campaign
/// bit-for-bit after the round `next_round - 1` settled.
struct EngineSnapshot {
  // --- round cursor / budget ------------------------------------------
  std::int64_t next_round = 1;
  bool budget_exhausted = false;
  double consumer_spend = 0.0;

  // --- learning state --------------------------------------------------
  /// The engine's pricing estimates (Eqs. 17-18).
  std::vector<bandit::ArmState> pricing_arms;
  std::uint64_t pricing_total_observations = 0;
  /// The selection policy's estimator bank, when it maintains one.
  bool has_policy_arms = false;
  std::vector<bandit::ArmState> policy_arms;
  std::uint64_t policy_total_observations = 0;

  // --- accounting ------------------------------------------------------
  /// Per-slot balances (consumer, platform, sellers — size M+2).
  std::vector<double> ledger_balances;
  double ledger_consumer_outflow = 0.0;
  double ledger_seller_inflow = 0.0;
  /// Transfer history; empty when the ledger maintains balances only.
  std::vector<Transfer> ledger_transfers;

  // --- reliability / fault accounting ---------------------------------
  std::vector<SellerReliability> reliability;
  std::int64_t reliability_total_faults = 0;
  std::array<std::int64_t, kNumFaultKinds> fault_counts{};

  // --- observation stream ----------------------------------------------
  bandit::EnvironmentState environment;

  // --- seller-departure overlay ----------------------------------------
  /// TradingEngine::SetSellerActive bitmap (1 = active). Empty means every
  /// seller is active — the serialized form then appends nothing, keeping
  /// pre-overlay snapshots byte-compatible.
  std::vector<std::uint8_t> seller_active;
};

}  // namespace market
}  // namespace cdt

#endif  // CDT_MARKET_SNAPSHOT_H_
