// Fault injection and graceful degradation for the CDT trading pipeline.
//
// The paper's mechanism assumes every selected seller delivers its Stage-3
// sensing time; real crowdsensing markets face dropouts, corrupted reports
// and flaky settlement. This module provides
//
//   * FaultInjector — a deterministic, seeded source of per-round faults:
//     seller defaults (commit then fail to deliver), corrupted quality
//     reports (non-finite / out-of-range samples), partial delivery
//     (τ_delivered < τ*), and transient settlement failures. Draws are
//     stateless functions of (seed, round, seller), so outcomes never
//     depend on coalition composition or call order and a fault-free
//     profile leaves a run bit-for-bit identical to an uninjected one.
//
//   * RecoveryOptions + ReliabilityTracker — the engine-side degradation
//     policy: capped exponential settlement backoff and a per-seller
//     circuit breaker (closed → open after a run of consecutive faults →
//     cooldown → probation re-entry → closed) whose gate plugs into the
//     existing bandit::AvailabilityFn machinery via QuarantineAvailability.
//
// TradingEngine consumes both: it re-settles faulted rounds on the
// delivered coalition (re-solving Stage 2/3 over the survivors so the
// Theorem 14-16 stationarity invariants keep holding), pro-rates payment
// for partial delivery, and records only genuinely observed qualities so
// bandit estimates stay unbiased. See docs/ROBUSTNESS.md.

#ifndef CDT_MARKET_FAULTS_H_
#define CDT_MARKET_FAULTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bandit/availability_policy.h"
#include "util/status.h"

namespace cdt {
namespace market {

/// Families of fault / degradation events recorded by the engine.
enum class FaultKind {
  kSellerDefault,      // committed seller delivered nothing
  kCorruptedReport,    // delivered data failed validation, discarded
  kPartialDelivery,    // delivered τ = fraction · τ* for fraction < 1
  kSettlementFailure,  // transient settlement failure (retried)
  kQuarantine,         // circuit breaker dropped the seller pre-game
  kBudgetStop,         // consumer budget ended the campaign early
};
constexpr int kNumFaultKinds = 6;

/// "default", "corrupt", "partial", "settlement", "quarantine", "budget".
const char* FaultKindName(FaultKind kind);

/// One structured fault/recovery record, kept per round in
/// RoundReport::faults and cumulatively in TradingEngine::fault_log().
struct FaultEvent {
  std::int64_t round = 0;
  FaultKind kind = FaultKind::kSellerDefault;
  /// Affected seller; -1 for round-level events (settlement, budget).
  int seller = -1;
  /// Kind-specific magnitude: delivered fraction for partial delivery,
  /// failed-attempt count for settlement, unspent budget for budget stop.
  double severity = 0.0;
  /// False when recovery could not absorb the fault (round voided).
  bool recovered = true;

  /// "[partial] round 7 seller 3 severity=0.42".
  std::string ToString() const;
};

/// Joins events as "kind:seller@severity" (';'-separated, '!' marks an
/// unrecovered event) — the compact run-log encoding.
std::string EncodeFaultSummary(const std::vector<FaultEvent>& events);

/// Per-seller-per-round fault outcomes drawn by the injector.
enum class DeliveryOutcome { kDelivered, kDefaulted, kCorrupted, kPartial };

struct SellerFaultDraw {
  DeliveryOutcome outcome = DeliveryOutcome::kDelivered;
  /// Delivered fraction of τ* in (0, 1); only meaningful for kPartial.
  double fraction = 1.0;
};

/// Fault rates; all zero (the default) disables injection entirely.
struct FaultProfile {
  /// P(a selected seller defaults) per round.
  double default_rate = 0.0;
  /// P(a delivered batch is corrupted) per round.
  double corrupt_rate = 0.0;
  /// P(a seller delivers only a fraction of τ*) per round.
  double partial_rate = 0.0;
  /// Delivered fraction for partial faults, uniform in [lo, hi] ⊂ (0, 1).
  double partial_fraction_lo = 0.25;
  double partial_fraction_hi = 0.75;
  /// P(one settlement attempt fails); retried per RecoveryOptions.
  double settlement_failure_rate = 0.0;
  /// Fault stream seed, independent of the environment/policy streams.
  std::uint64_t seed = 0x0FA01;

  /// True when any rate is positive (injection armed).
  bool any() const;
  util::Status Validate() const;
};

/// Deterministic fault source. Every draw is a pure function of
/// (profile.seed, round, seller), so injection is reproducible and
/// independent of the engine's other randomness.
class FaultInjector {
 public:
  /// `profile` must already be validated.
  explicit FaultInjector(FaultProfile profile) : profile_(profile) {}

  const FaultProfile& profile() const { return profile_; }

  /// The seller's delivery outcome for the round.
  SellerFaultDraw DrawSeller(std::int64_t round, int seller) const;

  /// Whether settlement attempt `attempt` (0-based) of `round` fails.
  bool SettlementAttemptFails(std::int64_t round, int attempt) const;

  /// Damages an observation batch in place (non-finite and out-of-range
  /// entries) so downstream validation must reject it.
  void Corrupt(std::int64_t round, int seller,
               std::vector<double>* observations) const;

 private:
  /// Uniform [0, 1) draw keyed by (stream, a, b).
  double UnitDraw(std::uint64_t stream, std::uint64_t a, std::uint64_t b)
      const;

  FaultProfile profile_;
};

/// True when every sample is finite and within [0, 1] — the engine's
/// acceptance test for a delivered quality report.
bool ValidObservationBatch(const std::vector<double>& observations);

/// Engine-side degradation knobs.
struct RecoveryOptions {
  /// Settlement retries after the first failed attempt.
  int max_settlement_retries = 4;
  /// Capped exponential backoff between settlement attempts (simulated
  /// seconds; the engine accounts, it does not sleep).
  double backoff_initial = 0.5;
  double backoff_multiplier = 2.0;
  double backoff_cap = 4.0;
  /// Consecutive faults that open a seller's circuit breaker.
  int quarantine_threshold = 3;
  /// Rounds the breaker stays open before probation re-entry.
  std::int64_t quarantine_cooldown = 25;
  /// Clean deliveries on probation required to close the breaker.
  int probation_successes = 2;

  util::Status Validate() const;
};

/// Backoff before retry `attempt` (0-based): min(cap, initial · mult^attempt).
double BackoffDelay(const RecoveryOptions& options, int attempt);

/// Circuit-breaker state of one seller.
enum class BreakerState { kClosed, kOpen, kProbation };
const char* BreakerStateName(BreakerState state);

/// Per-seller reliability statistics plus breaker state.
struct SellerReliability {
  std::int64_t deliveries = 0;        // full + partial deliveries
  std::int64_t partials = 0;          // partial-delivery subset
  std::int64_t defaults = 0;
  std::int64_t corruptions = 0;
  std::int64_t quarantine_drops = 0;  // selections vetoed by the breaker
  std::int64_t times_opened = 0;      // breaker open transitions
  int consecutive_faults = 0;
  int probation_progress = 0;
  BreakerState state = BreakerState::kClosed;
  /// Round of the most recent open transition.
  std::int64_t opened_round = 0;

  /// deliveries / (deliveries + defaults + corruptions); 1 when unseen.
  double delivery_rate() const;
};

/// Tracks every seller's reliability and drives the quarantine breaker.
/// Owned by the engine by default; construct one externally and hand it to
/// EngineConfig::reliability to share the gate with a selection policy.
class ReliabilityTracker {
 public:
  /// `options` must already be validated.
  ReliabilityTracker(int num_sellers, RecoveryOptions options);

  int num_sellers() const { return static_cast<int>(sellers_.size()); }
  const RecoveryOptions& options() const { return options_; }
  const SellerReliability& seller(int i) const { return sellers_.at(i); }

  /// Breaker gate: false while the seller's breaker is open and the
  /// cooldown has not elapsed by `round`. Probation sellers are available.
  bool Available(int seller, std::int64_t round) const;

  /// A clean (or partial) delivery in `round`; advances probation and
  /// resets the consecutive-fault run.
  void RecordDelivery(int seller, std::int64_t round, bool partial);

  /// A default or corruption in `round`; may open (or re-open) the breaker.
  void RecordFault(int seller, std::int64_t round, FaultKind kind);

  /// The engine dropped the seller from a coalition via the breaker gate.
  void RecordQuarantineDrop(int seller);

  std::int64_t total_faults() const { return total_faults_; }

  /// Full per-seller state, for snapshot capture.
  const std::vector<SellerReliability>& sellers() const { return sellers_; }

  /// Restores a previously captured tracker state (snapshot/replay).
  util::Status Restore(std::vector<SellerReliability> sellers,
                       std::int64_t total_faults);

  /// Sellers whose breaker is open and still cooling down at `round`.
  int QuarantinedCount(std::int64_t round) const;

 private:
  /// Open → probation once the cooldown has elapsed.
  void MaybeEnterProbation(SellerReliability* s, std::int64_t round);

  RecoveryOptions options_;
  std::vector<SellerReliability> sellers_;
  std::int64_t total_faults_ = 0;
};

/// Adapts the breaker gate into the bandit layer's availability shape so an
/// AvailabilityAwareCucbPolicy never proposes a quarantined seller in the
/// first place. `tracker` must outlive the returned function.
bandit::AvailabilityFn QuarantineAvailability(
    const ReliabilityTracker* tracker);

}  // namespace market
}  // namespace cdt

#endif  // CDT_MARKET_FAULTS_H_
