// The platform's data-aggregation service (Fig. 2, step "aggregate data"):
// turns the selected sellers' raw per-PoI observations into the statistics
// product delivered to the consumer.

#ifndef CDT_MARKET_AGGREGATION_H_
#define CDT_MARKET_AGGREGATION_H_

#include <vector>

#include "util/status.h"

namespace cdt {
namespace market {

/// The statistics the consumer purchases.
struct DataStatistics {
  /// Mean observed quality per PoI across contributing sellers.
  std::vector<double> poi_means;
  /// Unweighted mean over all observations.
  double overall_mean = 0.0;
  /// Sensing-time-weighted mean (longer τ ⇒ more data ⇒ more weight).
  double weighted_mean = 0.0;
  /// Number of contributing sellers.
  int num_sellers = 0;
};

/// Aggregates one round: `observations[j]` holds seller j's L per-PoI
/// samples; `tau[j]` is seller j's sensing time (weights). All observation
/// rows must share the same width L >= 1 and tau must match in size.
util::Result<DataStatistics> AggregateRound(
    const std::vector<std::vector<double>>& observations,
    const std::vector<double>& tau);

}  // namespace market
}  // namespace cdt

#endif  // CDT_MARKET_AGGREGATION_H_
