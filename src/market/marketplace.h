// Multi-consumer marketplace extension. The paper's system model has
// "some data consumers" but its mechanism serves one job; this module runs
// several concurrent jobs over a shared seller pool:
//  * one shared quality-estimate bank (the platform learns from every
//    job's observations);
//  * per round, jobs pick sellers in rotating priority order, each taking
//    its top-K_j by UCB among the sellers not yet assigned this round
//    (a seller serves at most one job per round);
//  * each job then plays its own three-stage HS game with its consumer's
//    valuation and price boxes.

#ifndef CDT_MARKET_MARKETPLACE_H_
#define CDT_MARKET_MARKETPLACE_H_

#include <memory>
#include <string>
#include <vector>

#include "bandit/arm.h"
#include "bandit/environment.h"
#include "game/stackelberg.h"
#include "market/types.h"

namespace cdt {
namespace market {

/// One consumer's concurrent job.
struct MarketplaceJob {
  std::string name;
  int num_selected = 0;  // K_j
  game::ValuationParams valuation;
  util::Interval consumer_price_bounds{1e-3, 1e9};
  util::Interval collection_price_bounds{1e-3, 1e9};
};

/// Marketplace-wide configuration.
struct MarketplaceConfig {
  /// Shared L / N / T.
  Job base_job;
  std::vector<MarketplaceJob> jobs;
  /// Per-seller cost parameters (size M).
  std::vector<game::SellerCostParams> seller_costs;
  game::PlatformCostParams platform_cost;
  double quality_floor = 1e-3;
  /// UCB exploration constant for the shared selection; <= 0 means
  /// (max_j K_j + 1).
  double exploration = 0.0;

  util::Status Validate(int num_sellers) const;
};

/// One job's slice of a marketplace round.
struct JobRoundReport {
  std::string job_name;
  RoundReport report;
};

/// One whole marketplace round.
struct MarketplaceRoundReport {
  std::int64_t round = 0;
  /// In this round's priority order (rotates by round).
  std::vector<JobRoundReport> jobs;
};

/// Cumulative per-job outcomes.
struct JobSummary {
  std::string job_name;
  std::int64_t rounds = 0;
  double consumer_profit_total = 0.0;
  double platform_profit_total = 0.0;
  double seller_profit_total = 0.0;
  double expected_quality_revenue = 0.0;
};

/// The concurrent-jobs trading engine.
class Marketplace {
 public:
  /// Borrows `environment`; all jobs observe through it.
  static util::Result<std::unique_ptr<Marketplace>> Create(
      MarketplaceConfig config, bandit::QualityEnvironment* environment);

  /// Executes the next round across all jobs.
  util::Result<MarketplaceRoundReport> RunRound();

  /// Runs every remaining round.
  util::Status RunAll();

  std::int64_t current_round() const { return next_round_ - 1; }
  const MarketplaceConfig& config() const { return config_; }
  const bandit::EstimatorBank& shared_estimates() const { return bank_; }
  const std::vector<JobSummary>& summaries() const { return summaries_; }

 private:
  Marketplace(MarketplaceConfig config,
              bandit::QualityEnvironment* environment,
              bandit::EstimatorBank bank);

  double GameQuality(int seller) const;

  MarketplaceConfig config_;
  bandit::QualityEnvironment* environment_;  // borrowed
  bandit::EstimatorBank bank_;
  std::vector<JobSummary> summaries_;
  std::int64_t next_round_ = 1;
  /// Shared-UCB scratch, reused every round (capacity M after round 1).
  std::vector<double> ucb_scratch_;
};

}  // namespace market
}  // namespace cdt

#endif  // CDT_MARKET_MARKETPLACE_H_
