// Stackelberg-Equilibrium verification (Def. 13 / Theorem 20).
//
// The checker probes unilateral deviations from a strategy profile:
//  * consumer deviations in p^J — evaluated with the platform and sellers
//    re-playing their best responses (the stage-1 objective the consumer
//    actually optimises, per Theorems 14–16);
//  * platform deviations in p — with the sellers re-playing best responses;
//  * seller deviations in τ_i — with every other strategy held fixed
//    (Eq. 16 verbatim).
// A profile passes when no probed deviation improves the deviator's profit
// by more than `tolerance`.

#ifndef CDT_GAME_EQUILIBRIUM_H_
#define CDT_GAME_EQUILIBRIUM_H_

#include <string>

#include "game/stackelberg.h"

namespace cdt {
namespace game {

/// Outcome of an equilibrium check.
struct EquilibriumReport {
  bool is_equilibrium = false;
  /// Largest profit improvement any probed deviation achieved (<= tolerance
  /// when is_equilibrium).
  double max_violation = 0.0;
  /// Which party achieved max_violation: "consumer", "platform",
  /// "seller<i>", or "" when no violation.
  std::string worst_deviator;
};

/// Options controlling the deviation probes.
struct EquilibriumCheckOptions {
  /// Deviations probed per dimension (grid over the feasible box).
  std::size_t probes = 128;
  /// Allowed numeric slack.
  double tolerance = 1e-6;
  /// Seller deviations are probed over [0, tau_probe_span * τ_i* + 1].
  double tau_probe_span = 3.0;
};

/// Verifies Def. 13 for `profile` under `solver`'s game.
util::Result<EquilibriumReport> CheckEquilibrium(
    const StackelbergSolver& solver, const StrategyProfile& profile,
    const EquilibriumCheckOptions& options = {});

}  // namespace game
}  // namespace cdt

#endif  // CDT_GAME_EQUILIBRIUM_H_
