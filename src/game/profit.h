// Profit functions of the three parties (Defs. 9–11, Eqs. 5, 7, 9).
// These are pure evaluators; the Stackelberg solver optimises over them.

#ifndef CDT_GAME_PROFIT_H_
#define CDT_GAME_PROFIT_H_

#include <vector>

#include "game/cost.h"
#include "game/valuation.h"

namespace cdt {
namespace game {

/// Ψ_i (Eq. 5): seller i's payment minus data-collection cost, for a
/// *selected* seller (χ_i = 1).
double SellerProfit(double unit_price, double tau,
                    const SellerCostParams& cost, double quality);

/// Ω (Eq. 7): platform reward from the consumer, minus payments to sellers,
/// minus the aggregation cost.
double PlatformProfit(double consumer_price, double collection_price,
                      double total_time, const PlatformCostParams& cost);

/// Φ (Eq. 9): consumer valuation minus total payment.
double ConsumerProfit(double consumer_price, double mean_quality,
                      double total_time, const ValuationParams& valuation);

/// Σ τ_i helper.
double TotalTime(const std::vector<double>& tau);

}  // namespace game
}  // namespace cdt

#endif  // CDT_GAME_PROFIT_H_
