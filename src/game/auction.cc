#include "game/auction.h"

#include <algorithm>
#include <numeric>

#include "game/profit.h"

namespace cdt {
namespace game {

using util::Result;
using util::Status;

Status AuctionConfig::Validate() const {
  if (sellers.empty() || sellers.size() != qualities.size()) {
    return Status::InvalidArgument(
        "auction needs matching non-empty sellers/qualities");
  }
  for (const SellerCostParams& s : sellers) {
    CDT_RETURN_NOT_OK(s.Validate());
  }
  for (double q : qualities) {
    if (q <= 0.0 || q > 1.0) {
      return Status::OutOfRange("qualities must lie in (0, 1]");
    }
  }
  if (num_winners <= 0 ||
      static_cast<std::size_t>(num_winners) >= sellers.size()) {
    return Status::InvalidArgument(
        "need 1 <= num_winners < #sellers (the clearing price is the first "
        "rejected ask)");
  }
  if (!(reference_time > 0.0)) {
    return Status::InvalidArgument("reference_time must be > 0");
  }
  CDT_RETURN_NOT_OK(platform.Validate());
  if (platform_margin < 0.0) {
    return Status::InvalidArgument("platform_margin must be >= 0");
  }
  CDT_RETURN_NOT_OK(valuation.Validate());
  if (!(max_sensing_time > 0.0)) {
    return Status::InvalidArgument("max_sensing_time must be > 0");
  }
  return Status::OK();
}

double QualityAdjustedAsk(const SellerCostParams& seller,
                          double reference_time) {
  // C(τ̂, q̄) / (τ̂ q̄) = a τ̂ + b — the q̄ factors cancel, so the ask ranks
  // sellers by cost per quality-weighted unit of sensing time.
  return seller.a * reference_time + seller.b;
}

Result<AuctionOutcome> RunProcurementAuction(const AuctionConfig& config) {
  CDT_RETURN_NOT_OK(config.Validate());

  std::vector<int> order(config.sellers.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> asks(config.sellers.size());
  for (std::size_t i = 0; i < asks.size(); ++i) {
    asks[i] = QualityAdjustedAsk(config.sellers[i], config.reference_time);
  }
  std::stable_sort(order.begin(), order.end(), [&asks](int x, int y) {
    return asks[static_cast<std::size_t>(x)] <
           asks[static_cast<std::size_t>(y)];
  });

  AuctionOutcome outcome;
  int k = config.num_winners;
  outcome.winners.assign(order.begin(), order.begin() + k);
  // Critical payment: the first rejected quality-adjusted ask. A winner is
  // paid clearing_price · q̄_i per unit time — exactly the highest unit
  // rate at which it would still have won, so truthful asking is optimal.
  outcome.clearing_price =
      asks[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])];

  double total_payment = 0.0;
  outcome.tau.resize(outcome.winners.size());
  outcome.winner_profits.resize(outcome.winners.size());
  double quality_sum = 0.0;
  for (std::size_t j = 0; j < outcome.winners.size(); ++j) {
    int i = outcome.winners[j];
    double q = config.qualities[static_cast<std::size_t>(i)];
    const SellerCostParams& s =
        config.sellers[static_cast<std::size_t>(i)];
    double unit_price = outcome.clearing_price * q;
    // Stage-3 best response to the awarded unit price (Thm. 14 applies to
    // any posted price), clamped to [0, T].
    double tau = (unit_price - q * s.b) / (2.0 * q * s.a);
    tau = std::min(config.max_sensing_time, std::max(0.0, tau));
    outcome.tau[j] = tau;
    outcome.total_time += tau;
    total_payment += unit_price * tau;
    outcome.winner_profits[j] = SellerProfit(unit_price, tau, s, q);
    quality_sum += q;
  }

  double mean_quality =
      quality_sum / static_cast<double>(outcome.winners.size());
  double aggregation_cost = PlatformCost(config.platform, outcome.total_time);
  double platform_cost_total = total_payment + aggregation_cost;
  if (outcome.total_time > 0.0) {
    outcome.consumer_price = (1.0 + config.platform_margin) *
                             platform_cost_total / outcome.total_time;
  } else {
    outcome.consumer_price = 0.0;
  }
  double reward = outcome.consumer_price * outcome.total_time;
  outcome.platform_profit = reward - platform_cost_total;
  outcome.consumer_profit =
      ConsumerValuation(config.valuation, mean_quality, outcome.total_time) -
      reward;
  return outcome;
}

}  // namespace game
}  // namespace cdt
