#include "game/equilibrium.h"

#include <algorithm>

#include "util/math_util.h"

namespace cdt {
namespace game {

using util::Result;
using util::Status;

Result<EquilibriumReport> CheckEquilibrium(
    const StackelbergSolver& solver, const StrategyProfile& profile,
    const EquilibriumCheckOptions& options) {
  if (options.probes < 2) {
    return Status::InvalidArgument("need >= 2 probes");
  }
  if (profile.tau.size() !=
      static_cast<std::size_t>(solver.num_sellers())) {
    return Status::InvalidArgument("profile/solver size mismatch");
  }
  EquilibriumReport report;
  report.max_violation = 0.0;

  auto consider = [&report](double improvement, const std::string& who) {
    if (improvement > report.max_violation) {
      report.max_violation = improvement;
      report.worst_deviator = who;
    }
  };

  const GameConfig& config = solver.config();

  // Stage 1: consumer deviations over the consumer price box.
  {
    double base = solver.ConsumerProfitAnticipating(profile.consumer_price);
    Result<std::vector<double>> grid =
        util::Linspace(config.consumer_price_bounds.lo,
                       config.consumer_price_bounds.hi, options.probes);
    if (!grid.ok()) return grid.status();
    for (double pj : grid.value()) {
      consider(solver.ConsumerProfitAnticipating(pj) - base, "consumer");
    }
  }

  // Stage 2: platform deviations over the collection price box.
  {
    double base = solver.PlatformProfitAnticipating(
        profile.consumer_price, profile.collection_price);
    Result<std::vector<double>> grid =
        util::Linspace(config.collection_price_bounds.lo,
                       config.collection_price_bounds.hi, options.probes);
    if (!grid.ok()) return grid.status();
    for (double p : grid.value()) {
      consider(
          solver.PlatformProfitAnticipating(profile.consumer_price, p) - base,
          "platform");
    }
  }

  // Stage 3: per-seller deviations in τ_i with everything else fixed
  // (Eq. 16; Ψ_i depends on a seller's own τ only).
  for (int i = 0; i < solver.num_sellers(); ++i) {
    std::size_t idx = static_cast<std::size_t>(i);
    double base = profile.seller_profits[idx];
    double hi = std::min(config.max_sensing_time,
                         options.tau_probe_span * profile.tau[idx] + 1.0);
    Result<std::vector<double>> grid =
        util::Linspace(0.0, hi, options.probes);
    if (!grid.ok()) return grid.status();
    for (double tau : grid.value()) {
      double deviated = SellerProfit(profile.collection_price, tau,
                                     config.sellers[idx],
                                     config.qualities[idx]);
      consider(deviated - base, "seller" + std::to_string(i));
    }
  }

  report.is_equilibrium = report.max_violation <= options.tolerance;
  if (report.is_equilibrium) report.worst_deviator.clear();
  return report;
}

}  // namespace game
}  // namespace cdt
