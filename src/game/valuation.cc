#include "game/valuation.h"

#include <cmath>

namespace cdt {
namespace game {

using util::Status;

Status ValuationParams::Validate() const {
  // Negated comparison so a NaN omega fails instead of slipping through.
  if (!std::isfinite(omega) || !(omega > 1.0)) {
    return Status::InvalidArgument("valuation parameter omega must be > 1");
  }
  return Status::OK();
}

double ConsumerValuation(const ValuationParams& params, double mean_quality,
                         double total_time) {
  return params.omega * std::log(1.0 + mean_quality * total_time);
}

double ConsumerMarginalValuation(const ValuationParams& params,
                                 double mean_quality, double total_time) {
  return params.omega * mean_quality / (1.0 + mean_quality * total_time);
}

}  // namespace game
}  // namespace cdt
