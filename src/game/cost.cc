#include "game/cost.h"

#include <cmath>

namespace cdt {
namespace game {

using util::Status;

Status SellerCostParams::Validate() const {
  // Negated comparisons so NaN parameters fail instead of slipping through
  // and poisoning the closed forms (Thm. 14 divides by q̄_i a_i).
  if (!std::isfinite(a) || !(a > 0.0)) {
    return Status::InvalidArgument("seller cost parameter a must be > 0");
  }
  if (!std::isfinite(b) || !(b >= 0.0)) {
    return Status::InvalidArgument("seller cost parameter b must be >= 0");
  }
  return Status::OK();
}

double SellerCost(const SellerCostParams& params, double tau,
                  double quality) {
  return (params.a * tau * tau + params.b * tau) * quality;
}

double SellerMarginalCost(const SellerCostParams& params, double tau,
                          double quality) {
  return (2.0 * params.a * tau + params.b) * quality;
}

Status PlatformCostParams::Validate() const {
  if (!std::isfinite(theta) || !(theta > 0.0)) {
    return Status::InvalidArgument("platform cost parameter theta must be > 0");
  }
  if (!std::isfinite(lambda) || !(lambda >= 0.0)) {
    return Status::InvalidArgument(
        "platform cost parameter lambda must be >= 0");
  }
  return Status::OK();
}

double PlatformCost(const PlatformCostParams& params, double total_time) {
  return params.theta * total_time * total_time + params.lambda * total_time;
}

}  // namespace game
}  // namespace cdt
