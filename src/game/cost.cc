#include "game/cost.h"

namespace cdt {
namespace game {

using util::Status;

Status SellerCostParams::Validate() const {
  if (a <= 0.0) {
    return Status::InvalidArgument("seller cost parameter a must be > 0");
  }
  if (b < 0.0) {
    return Status::InvalidArgument("seller cost parameter b must be >= 0");
  }
  return Status::OK();
}

double SellerCost(const SellerCostParams& params, double tau,
                  double quality) {
  return (params.a * tau * tau + params.b * tau) * quality;
}

double SellerMarginalCost(const SellerCostParams& params, double tau,
                          double quality) {
  return (2.0 * params.a * tau + params.b) * quality;
}

Status PlatformCostParams::Validate() const {
  if (theta <= 0.0) {
    return Status::InvalidArgument("platform cost parameter theta must be > 0");
  }
  if (lambda < 0.0) {
    return Status::InvalidArgument(
        "platform cost parameter lambda must be >= 0");
  }
  return Status::OK();
}

double PlatformCost(const PlatformCostParams& params, double total_time) {
  return params.theta * total_time * total_time + params.lambda * total_time;
}

}  // namespace game
}  // namespace cdt
