// Cost models of Def. 4: the seller's quadratic data-collection cost
// (Eq. 6) and the platform's quadratic data-aggregation cost (Eq. 8).

#ifndef CDT_GAME_COST_H_
#define CDT_GAME_COST_H_

#include "util/status.h"

namespace cdt {
namespace game {

/// Per-seller cost parameters: C_i(τ, q̄) = (a τ² + b τ) q̄ with a > 0,
/// b >= 0 (strict convexity in τ).
struct SellerCostParams {
  double a = 0.0;
  double b = 0.0;

  util::Status Validate() const;
};

/// Seller i's data-collection cost for sensing time `tau` at estimated
/// quality `quality` (Eq. 6).
double SellerCost(const SellerCostParams& params, double tau, double quality);

/// Marginal cost dC_i/dτ = (2aτ + b) q̄.
double SellerMarginalCost(const SellerCostParams& params, double tau,
                          double quality);

/// Platform cost parameters: C^J(τ) = θ(Στ)² + λΣτ with θ > 0, λ >= 0.
struct PlatformCostParams {
  double theta = 0.0;
  double lambda = 0.0;

  util::Status Validate() const;
};

/// Platform aggregation cost for total sensing time `total_time` (Eq. 8).
double PlatformCost(const PlatformCostParams& params, double total_time);

}  // namespace game
}  // namespace cdt

#endif  // CDT_GAME_COST_H_
