// The consumer's diminishing-marginal-return valuation (Eq. 10):
//   φ(τ, q̄) = ω ln(1 + q̄ Στ),  ω > 1.

#ifndef CDT_GAME_VALUATION_H_
#define CDT_GAME_VALUATION_H_

#include "util/status.h"

namespace cdt {
namespace game {

/// Consumer valuation parameter; ω > 1 per Def. 11.
struct ValuationParams {
  double omega = 0.0;

  util::Status Validate() const;
};

/// φ(τ, q̄) for total sensing time `total_time` and mean quality
/// `mean_quality` of the selected sellers.
double ConsumerValuation(const ValuationParams& params, double mean_quality,
                         double total_time);

/// Marginal valuation dφ/dΣτ = ω q̄ / (1 + q̄ Στ).
double ConsumerMarginalValuation(const ValuationParams& params,
                                 double mean_quality, double total_time);

}  // namespace game
}  // namespace cdt

#endif  // CDT_GAME_VALUATION_H_
