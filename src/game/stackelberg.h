// The three-stage Hierarchical Stackelberg game solver (Sec. III-B).
//
// Backward induction over Def. 12:
//   Stage 3 (sellers):  τ_i* = (p − q̄_i b_i) / (2 q̄_i a_i)        (Thm. 14)
//   Stage 2 (platform): p*  = (p^J A − (λA − 2θAB − B)) / (2A(1+θA))
//   Stage 1 (consumer): p^{J*} = (3 q̄ Λ + √Δ − 2) / (4 q̄ Θ)        (Thm. 16)
// with A = Σ 1/(2 q̄_i a_i), B = Σ b_i/(2 a_i), Θ = A/(2(1+θA)),
// Λ = (λA − 2θAB − B)/(2(1+θA)) + B and Δ = (q̄Λ − 2)² + 8 Θ ω q̄².
//
// NOTE on Theorem 15: the paper prints the stage-2 numerator constant as
// (λA − 2θBA + B); differentiating Eq. (7) gives (λA − 2θAB − B) — the B
// term's sign is a typo. We implement the corrected constant (and propagate
// it into Λ); PlatformBestPricePaperPrinted() preserves the printed form so
// tests can demonstrate it is not profit-maximising. See DESIGN.md §1.
//
// All stage outputs are projected onto their feasible boxes: prices into
// their [min, max] intervals (Def. 5) and sensing times into [0, T].

#ifndef CDT_GAME_STACKELBERG_H_
#define CDT_GAME_STACKELBERG_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "game/cost.h"
#include "game/profit.h"
#include "game/valuation.h"
#include "util/math_util.h"
#include "util/status.h"

namespace cdt {
namespace game {

/// Inputs of one round's game: the K selected sellers (cost parameters and
/// learned qualities), the platform and consumer parameters, and the
/// feasible boxes for each strategy.
struct GameConfig {
  std::vector<SellerCostParams> sellers;  // size K
  std::vector<double> qualities;          // q̄_i, size K, each in (0, 1]
  PlatformCostParams platform;
  ValuationParams valuation;
  /// [p^J_min, p^J_max] — consumer unit data-service price box.
  util::Interval consumer_price_bounds{1e-6, 1e9};
  /// [p_min, p_max] — platform unit data-collection price box.
  util::Interval collection_price_bounds{1e-6, 1e9};
  /// Round duration T: each τ_i is clamped into [0, T].
  double max_sensing_time = std::numeric_limits<double>::infinity();

  util::Status Validate() const;
};

/// Derived constants of Theorems 15–16.
struct Aggregates {
  double a_sum = 0.0;        // A = Σ 1/(2 q̄_i a_i)
  double b_sum = 0.0;        // B = Σ b_i/(2 a_i)
  double theta_coef = 0.0;   // Θ = A / (2 (1 + θA))
  double lambda_coef = 0.0;  // Λ = (λA − 2θAB − B)/(2(1+θA)) + B
  double mean_quality = 0.0; // q̄ = mean of selected sellers' qualities
};

/// One full strategy profile plus the resulting profits.
struct StrategyProfile {
  double consumer_price = 0.0;    // p^J
  double collection_price = 0.0;  // p
  std::vector<double> tau;        // τ_i, size K
  double total_time = 0.0;        // Στ
  double consumer_profit = 0.0;   // Φ
  double platform_profit = 0.0;   // Ω
  std::vector<double> seller_profits;  // Ψ_i, size K
};

/// Closed-form solver for one round's game.
class StackelbergSolver {
 public:
  /// Validates the configuration; all getters below are then total.
  static util::Result<StackelbergSolver> Create(GameConfig config);

  /// Re-targets the solver at a new coalition without tearing it down:
  /// swaps the caller's seller/quality buffers into the config (the caller
  /// receives the old buffers back, keeping their capacity for the next
  /// round) and rebuilds the aggregates and supply-kink structure in place.
  /// Only the qualities are re-validated — they are the learned inputs that
  /// change round to round; the seller cost parameters must already be
  /// valid, as Create() or a prior ResetCoalition established. On error the
  /// buffers are not swapped and the solver is unchanged. Steady state this
  /// performs zero heap allocations.
  util::Status ResetCoalition(std::vector<SellerCostParams>* sellers,
                              std::vector<double>* qualities);

  const GameConfig& config() const { return config_; }
  const Aggregates& aggregates() const { return agg_; }
  int num_sellers() const { return static_cast<int>(config_.sellers.size()); }

  /// Stage 3: seller i's best-response sensing time to `collection_price`,
  /// clamped into [0, T] (interior form: Thm. 14 / Eq. 20).
  double SellerBestTime(int i, double collection_price) const;

  /// All sellers' stage-3 best responses.
  std::vector<double> SellerBestTimes(double collection_price) const;

  /// Stage 2: the platform's *exact* best-response price to
  /// `consumer_price` within the collection-price box. Implemented as a
  /// sweep over the piecewise-quadratic profit: each seller contributes an
  /// activation kink at p = q̄_i b_i (below which its τ_i clamps to 0) and a
  /// saturation kink at p = q̄_i b_i + 2 q̄_i a_i T (above which τ_i clamps
  /// to T); between kinks the Theorem-15 formula applies with the active
  /// sellers' aggregates. Coincides with Theorem 15 whenever the interior
  /// solution keeps every seller strictly inside (0, T).
  double PlatformBestPrice(double consumer_price) const;

  /// Stage 2, paper-interior form (corrected Thm. 15, all sellers assumed
  /// active and unsaturated), clamped to the box.
  double PlatformBestPriceInterior(double consumer_price) const;

  /// Stage 2 with the paper's *printed* (typo) constant — NOT used by
  /// Solve(); retained so tests/benches can compare. Unclamped.
  double PlatformBestPricePaperPrinted(double consumer_price) const;

  /// Stage 1: the consumer's optimal price within its box. Uses the
  /// Theorem-16 closed form when the induced solution is interior (every
  /// τ_i in (0, T), prices unclamped); otherwise falls back to numeric
  /// maximisation of the exact anticipated profit.
  double ConsumerBestPrice() const;

  /// Stage 1, paper-interior form (Thm. 16 / Eq. 22), clamped to the box.
  double ConsumerBestPriceInterior() const;

  /// Full backward induction; the returned profile is the Stackelberg
  /// Equilibrium of Theorem 20 (projected onto the feasible boxes).
  StrategyProfile Solve() const;

  /// Consumer profit at `consumer_price` with the platform and sellers
  /// playing their (clamped) best responses — the stage-1 objective.
  double ConsumerProfitAnticipating(double consumer_price) const;

  /// Platform profit at (`consumer_price`, `collection_price`) with the
  /// sellers playing their best responses — the stage-2 objective.
  double PlatformProfitAnticipating(double consumer_price,
                                    double collection_price) const;

  /// Evaluates an explicit strategy profile (no best responses).
  StrategyProfile EvaluateProfile(double consumer_price,
                                  double collection_price,
                                  const std::vector<double>& tau) const;

  /// Total best-response sensing time Στ_i(p) at collection price `p`,
  /// evaluated in O(log K) from the precomputed kink structure.
  double TotalTimeAt(double collection_price) const;

 private:
  /// One kink of the piecewise-linear supply curve Στ(p): at prices in
  /// [price, next kink) the curve is S(p) = a·p − b + c.
  struct SupplyKink {
    double price;
    double a;  // slope aggregate Σ 1/(2 q̄_i a_i) over active, unsaturated
    double b;  // offset aggregate Σ b_i/(2 a_i) over the same set
    double c;  // T · (number of saturated sellers)
  };

  /// One activation/saturation event while building the kink structure.
  /// `src` is the event's position in generation order (seller order);
  /// it lets consecutive builds reuse the previous round's ordering.
  struct KinkEvent {
    double price;
    double delta_a, delta_b, delta_c;
    int src;
  };

  /// Per-segment constants of the stage-2 best-response sweep, derived
  /// from kinks_ once per coalition (BuildSegmentTable). Everything a
  /// PlatformBestPrice query re-derived per segment — the endpoint supply
  /// and its θS²/λS profit terms, the Theorem-15 numerator constant and
  /// denominator, and the consumer-price window in which the segment's
  /// interior optimum can land inside the segment — is a coalition
  /// constant, so hoisting it turns each query into a flat scan over
  /// contiguous arrays. Each constant is computed with the exact
  /// expression the per-query code used, so query results are
  /// bit-identical to the naive re-derivation (pinned by test).
  struct SegmentTable {
    std::vector<double> end_price;   // segment upper endpoint (last = hi)
    std::vector<double> end_supply;  // S at the endpoint, clamped >= 0
    std::vector<double> end_d1;      // θ·S·S at the endpoint
    std::vector<double> end_d2;      // λ·S at the endpoint
    std::vector<double> c;           // λa − 2θa·b_eff − b_eff
    std::vector<double> denom;       // 2a(1+θa)
    /// Widened p^J window where the segment's interior optimum may fall
    /// strictly inside the segment; the exact (original-expression) test
    /// re-runs inside the window, so widening only costs false positives.
    std::vector<double> window_lo;
    std::vector<double> window_hi;
    double init_supply = 0.0;  // S at box.lo under segment 0, clamped
    double init_d1 = 0.0;      // θ·S·S at box.lo
    double init_d2 = 0.0;      // λ·S at box.lo
  };

  StackelbergSolver(GameConfig config, Aggregates agg)
      : config_(std::move(config)), agg_(agg) {
    BuildSupplyKinks();
  }

  void BuildSupplyKinks();

  /// Rebuilds seg_ from kinks_ (tail of every BuildSupplyKinks).
  void BuildSegmentTable();

  /// Sorts event_scratch_ under the total order (price, delta_a, delta_b,
  /// delta_c, src). When the previous build produced the same number of
  /// events (the common ResetCoalition case: coalition size is K every
  /// round), the previous ordering seeds a budgeted insertion sort —
  /// learned qualities drift slowly, so the permuted sequence is nearly
  /// sorted and the pass is ~O(K) — with std::sort as the fallback once
  /// the move budget is exhausted. Both routes yield the identical unique
  /// sorted sequence, so the kink accumulation is byte-stable either way.
  void SortKinkEvents();

  /// True when (consumer_price, collection_price) reproduce the interior
  /// regime: prices strictly inside their boxes' interiors is not required,
  /// but every seller must be strictly active and unsaturated.
  bool InteriorRegimeHolds(double collection_price) const;

  GameConfig config_;
  Aggregates agg_;
  /// Sorted by price; kinks_[0].price == collection box lower bound, so a
  /// binary search always lands on a valid segment.
  std::vector<SupplyKink> kinks_;
  /// Hoisted per-segment query constants (parallel to kinks_).
  SegmentTable seg_;
  /// One interior stage-2 candidate surviving the exact in-segment test.
  struct InteriorHit {
    int j;     // segment index
    double p;  // interior optimum p*_j(p^J)
    double v;  // platform profit at p
  };

  /// Endpoint-line profits of the current query (PlatformBestPrice
  /// scratch; the solver is not thread-safe, like the rest of the class).
  mutable std::vector<double> line_profit_scratch_;
  mutable std::vector<InteriorHit> interior_scratch_;
  /// Scratch reused across BuildSupplyKinks calls (ResetCoalition).
  std::vector<KinkEvent> event_scratch_;
  /// Incremental-sort state: the previous build's sorted ordering as src
  /// positions (order_[j] = src of the event at sorted rank j) plus the
  /// permutation-apply scratch. Cleared implicitly by a size mismatch.
  std::vector<int> order_;
  std::vector<KinkEvent> sort_scratch_;
  /// How many builds took the seeded insertion-sort route vs fell back to
  /// std::sort (introspection for tests and the perf docs).
  std::int64_t incremental_kink_sorts_ = 0;
  std::int64_t full_kink_sorts_ = 0;

 public:
  std::int64_t incremental_kink_sorts() const {
    return incremental_kink_sorts_;
  }
  std::int64_t full_kink_sorts() const { return full_kink_sorts_; }
};

/// Computes the Theorem 15/16 aggregates for a validated config.
Aggregates ComputeAggregates(const GameConfig& config);

}  // namespace game
}  // namespace cdt

#endif  // CDT_GAME_STACKELBERG_H_
