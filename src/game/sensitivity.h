// Equilibrium sensitivity analysis: central finite-difference derivatives
// of the Stackelberg-equilibrium outcomes (prices, total time, profits)
// with respect to the model parameters (a_i, b_i, θ, λ, ω, q̄_i). This is
// the quantitative backbone of the paper's Figs. 15-18 discussion ("PoC
// declines sharply in a_6 then levels off") — the elasticities make those
// statements precise.

#ifndef CDT_GAME_SENSITIVITY_H_
#define CDT_GAME_SENSITIVITY_H_

#include <string>
#include <vector>

#include "game/stackelberg.h"

namespace cdt {
namespace game {

/// Which scalar parameter to perturb.
struct ParameterRef {
  enum class Kind {
    kSellerA,    // a_i (index required)
    kSellerB,    // b_i (index required)
    kQuality,    // q̄_i (index required)
    kTheta,      // θ
    kLambda,     // λ
    kOmega,      // ω
  };
  Kind kind = Kind::kTheta;
  int index = 0;  // seller index where applicable

  std::string Name() const;
};

/// d(outcome)/d(parameter) at the current equilibrium.
struct SensitivityRow {
  std::string parameter;
  double d_consumer_price = 0.0;    // ∂p^J*/∂x
  double d_collection_price = 0.0;  // ∂p*/∂x
  double d_total_time = 0.0;        // ∂Στ*/∂x
  double d_consumer_profit = 0.0;   // ∂Φ*/∂x
  double d_platform_profit = 0.0;   // ∂Ω*/∂x
  double d_seller_profit = 0.0;     // ∂ΣΨ*/∂x
};

/// Computes one parameter's sensitivities via a symmetric relative step
/// (`rel_step` of the parameter value, floored at `abs_floor`). Perturbed
/// configs must stay valid (e.g. θ − h > 0); the step shrinks if needed.
util::Result<SensitivityRow> ComputeSensitivity(
    const GameConfig& config, const ParameterRef& parameter,
    double rel_step = 1e-4, double abs_floor = 1e-7);

/// Convenience: sensitivities for θ, λ, ω and seller `seller_index`'s
/// a/b/q̄ in one table.
util::Result<std::vector<SensitivityRow>> ComputeStandardSensitivities(
    const GameConfig& config, int seller_index = 0);

}  // namespace game
}  // namespace cdt

#endif  // CDT_GAME_SENSITIVITY_H_
