#include "game/profit.h"

namespace cdt {
namespace game {

double SellerProfit(double unit_price, double tau,
                    const SellerCostParams& cost, double quality) {
  return unit_price * tau - SellerCost(cost, tau, quality);
}

double PlatformProfit(double consumer_price, double collection_price,
                      double total_time, const PlatformCostParams& cost) {
  return (consumer_price - collection_price) * total_time -
         PlatformCost(cost, total_time);
}

double ConsumerProfit(double consumer_price, double mean_quality,
                      double total_time, const ValuationParams& valuation) {
  return ConsumerValuation(valuation, mean_quality, total_time) -
         consumer_price * total_time;
}

double TotalTime(const std::vector<double>& tau) {
  double total = 0.0;
  for (double t : tau) total += t;
  return total;
}

}  // namespace game
}  // namespace cdt
