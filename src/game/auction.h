// Reverse-auction incentive baseline, standing in for the auction-based
// mechanisms of the paper's related work ([9], [10]): instead of the
// three-stage Stackelberg game, the platform procures sensing time through
// a sealed-bid reverse auction with a uniform critical-payment clearing
// price (truthful by the standard Myerson argument for single-parameter
// bidders). Used by ablation benches to compare the HS mechanism against
// an auction mechanism on the same instances.

#ifndef CDT_GAME_AUCTION_H_
#define CDT_GAME_AUCTION_H_

#include <vector>

#include "game/cost.h"
#include "game/valuation.h"
#include "util/status.h"

namespace cdt {
namespace game {

/// Configuration of one round's procurement auction.
struct AuctionConfig {
  /// Candidate sellers (cost parameters + learned qualities, size M' >= 1;
  /// typically the K pre-selected sellers plus alternates).
  std::vector<SellerCostParams> sellers;
  std::vector<double> qualities;
  /// Number of winners (1 <= K < M' for a defined clearing price).
  int num_winners = 0;
  /// Reference workload used to quote unit asks: a seller's ask is its
  /// average unit cost at τ̂, (a τ̂ + b) q̄.
  double reference_time = 1.0;
  /// Platform economics: the consumer price is set to give the platform a
  /// relative margin over its total cost (auction payments + aggregation).
  PlatformCostParams platform;
  double platform_margin = 0.1;
  ValuationParams valuation;
  /// Cap applied to each winner's chosen sensing time.
  double max_sensing_time = 1e9;

  util::Status Validate() const;
};

/// Outcome of one auction round.
struct AuctionOutcome {
  /// Winning seller indices (ascending quality-adjusted ask).
  std::vector<int> winners;
  /// Uniform per-unit-time payment: the first rejected quality-adjusted
  /// ask, scaled back by each winner's quality — every winner is paid the
  /// same unit price `clearing_price`.
  double clearing_price = 0.0;
  /// Winners' chosen sensing times (best response to clearing_price).
  std::vector<double> tau;
  double total_time = 0.0;
  double consumer_price = 0.0;  // margin-based pass-through price
  double consumer_profit = 0.0;
  double platform_profit = 0.0;
  std::vector<double> winner_profits;  // Ψ per winner
};

/// Runs the auction: quote asks, pick the K cheapest per quality unit, pay
/// the critical (first-rejected) price, let winners choose τ, and price
/// the consumer at cost(1 + margin).
util::Result<AuctionOutcome> RunProcurementAuction(
    const AuctionConfig& config);

/// The quality-adjusted unit ask of seller i: (a_i τ̂ + b_i) — the cost per
/// unit of *quality-weighted* sensing time (the q̄ factors cancel).
double QualityAdjustedAsk(const SellerCostParams& seller,
                          double reference_time);

}  // namespace game
}  // namespace cdt

#endif  // CDT_GAME_AUCTION_H_
