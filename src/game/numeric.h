// Derivative-free numeric optimisation used to *verify* the closed-form
// Stackelberg solution: a coarse grid scan followed by golden-section
// refinement around the best cell. Robust to the mild non-concavity of the
// consumer objective (Fig. 3 of the paper).

#ifndef CDT_GAME_NUMERIC_H_
#define CDT_GAME_NUMERIC_H_

#include <cstddef>
#include <functional>

#include "util/math_util.h"
#include "util/status.h"

namespace cdt {
namespace game {

/// Result of a 1-D maximisation.
struct MaximizeResult {
  double argmax = 0.0;
  double max_value = 0.0;
};

/// Maximises `f` on the closed interval `domain`.
///
/// Scans `grid_points` equally spaced samples, then refines with a
/// golden-section search on the bracket around the best sample. Exact up to
/// `tol` for functions that are unimodal on that bracket, which the grid
/// guarantees for the piecewise-monotone objectives in this library when
/// grid_points is large enough (>= 64 recommended).
util::Result<MaximizeResult> MaximizeOnInterval(
    const std::function<double(double)>& f, const util::Interval& domain,
    std::size_t grid_points = 256, double tol = 1e-10);

}  // namespace game
}  // namespace cdt

#endif  // CDT_GAME_NUMERIC_H_
