#include "game/sensitivity.h"

#include <cmath>

namespace cdt {
namespace game {

using util::Result;
using util::Status;

std::string ParameterRef::Name() const {
  switch (kind) {
    case Kind::kSellerA:
      return "a_" + std::to_string(index);
    case Kind::kSellerB:
      return "b_" + std::to_string(index);
    case Kind::kQuality:
      return "q_" + std::to_string(index);
    case Kind::kTheta:
      return "theta";
    case Kind::kLambda:
      return "lambda";
    case Kind::kOmega:
      return "omega";
  }
  return "?";
}

namespace {

/// Reads/writes the referenced scalar inside a config.
Result<double*> ParameterSlot(GameConfig* config,
                              const ParameterRef& parameter) {
  std::size_t i = static_cast<std::size_t>(parameter.index);
  switch (parameter.kind) {
    case ParameterRef::Kind::kSellerA:
    case ParameterRef::Kind::kSellerB:
    case ParameterRef::Kind::kQuality:
      if (parameter.index < 0 || i >= config->sellers.size()) {
        return Status::OutOfRange("seller index out of range");
      }
      break;
    default:
      break;
  }
  switch (parameter.kind) {
    case ParameterRef::Kind::kSellerA:
      return &config->sellers[i].a;
    case ParameterRef::Kind::kSellerB:
      return &config->sellers[i].b;
    case ParameterRef::Kind::kQuality:
      return &config->qualities[i];
    case ParameterRef::Kind::kTheta:
      return &config->platform.theta;
    case ParameterRef::Kind::kLambda:
      return &config->platform.lambda;
    case ParameterRef::Kind::kOmega:
      return &config->valuation.omega;
  }
  return Status::Internal("unhandled parameter kind");
}

struct Outcomes {
  double consumer_price, collection_price, total_time;
  double consumer_profit, platform_profit, seller_profit;
};

Result<Outcomes> SolveOutcomes(const GameConfig& config) {
  Result<StackelbergSolver> solver = StackelbergSolver::Create(config);
  if (!solver.ok()) return solver.status();
  StrategyProfile profile = solver.value().Solve();
  Outcomes out;
  out.consumer_price = profile.consumer_price;
  out.collection_price = profile.collection_price;
  out.total_time = profile.total_time;
  out.consumer_profit = profile.consumer_profit;
  out.platform_profit = profile.platform_profit;
  out.seller_profit = 0.0;
  for (double psi : profile.seller_profits) out.seller_profit += psi;
  return out;
}

}  // namespace

Result<SensitivityRow> ComputeSensitivity(const GameConfig& config,
                                          const ParameterRef& parameter,
                                          double rel_step, double abs_floor) {
  if (rel_step <= 0.0 || abs_floor <= 0.0) {
    return Status::InvalidArgument("steps must be positive");
  }
  CDT_RETURN_NOT_OK(config.Validate());

  GameConfig up = config;
  GameConfig down = config;
  Result<double*> up_slot = ParameterSlot(&up, parameter);
  if (!up_slot.ok()) return up_slot.status();
  Result<double*> down_slot = ParameterSlot(&down, parameter);
  if (!down_slot.ok()) return down_slot.status();

  double base = *up_slot.value();
  double h = std::max(std::fabs(base) * rel_step, abs_floor);
  // Shrink the step until both perturbed configs validate (e.g. q̄ <= 1).
  for (int attempt = 0; attempt < 60; ++attempt) {
    *up_slot.value() = base + h;
    *down_slot.value() = base - h;
    if (up.Validate().ok() && down.Validate().ok()) break;
    h *= 0.5;
  }
  if (!up.Validate().ok() || !down.Validate().ok()) {
    return Status::FailedPrecondition(
        "no admissible finite-difference step for " + parameter.Name());
  }

  Result<Outcomes> plus = SolveOutcomes(up);
  if (!plus.ok()) return plus.status();
  Result<Outcomes> minus = SolveOutcomes(down);
  if (!minus.ok()) return minus.status();

  double inv = 1.0 / (2.0 * h);
  SensitivityRow row;
  row.parameter = parameter.Name();
  row.d_consumer_price =
      (plus.value().consumer_price - minus.value().consumer_price) * inv;
  row.d_collection_price =
      (plus.value().collection_price - minus.value().collection_price) * inv;
  row.d_total_time =
      (plus.value().total_time - minus.value().total_time) * inv;
  row.d_consumer_profit =
      (plus.value().consumer_profit - minus.value().consumer_profit) * inv;
  row.d_platform_profit =
      (plus.value().platform_profit - minus.value().platform_profit) * inv;
  row.d_seller_profit =
      (plus.value().seller_profit - minus.value().seller_profit) * inv;
  return row;
}

Result<std::vector<SensitivityRow>> ComputeStandardSensitivities(
    const GameConfig& config, int seller_index) {
  std::vector<ParameterRef> parameters = {
      {ParameterRef::Kind::kTheta, 0},
      {ParameterRef::Kind::kLambda, 0},
      {ParameterRef::Kind::kOmega, 0},
      {ParameterRef::Kind::kSellerA, seller_index},
      {ParameterRef::Kind::kSellerB, seller_index},
      {ParameterRef::Kind::kQuality, seller_index},
  };
  std::vector<SensitivityRow> rows;
  rows.reserve(parameters.size());
  for (const ParameterRef& parameter : parameters) {
    Result<SensitivityRow> row = ComputeSensitivity(config, parameter);
    if (!row.ok()) return row.status();
    rows.push_back(std::move(row).value());
  }
  return rows;
}

}  // namespace game
}  // namespace cdt
