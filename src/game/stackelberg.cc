#include "game/stackelberg.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/tracer.h"

namespace cdt {
namespace game {

using util::Result;
using util::Status;

#if CDT_TELEMETRY
namespace {

// Per-stage solve-time histogram; each Solve() site caches its handle in a
// function-local static (see CDT_SPAN_TIMED).
obs::Histogram* StageSolveHistogram(const char* stage) {
  return obs::registry().GetHistogram(
      "cdt_stage_solve_seconds",
      "Wall-clock seconds solving one Stackelberg stage.",
      obs::DefaultLatencyBuckets(), {{"stage", stage}});
}

}  // namespace
#endif  // CDT_TELEMETRY

Status GameConfig::Validate() const {
  if (sellers.empty()) {
    return Status::InvalidArgument("game needs >= 1 selected seller");
  }
  if (sellers.size() != qualities.size()) {
    return Status::InvalidArgument(
        "sellers and qualities must have equal size");
  }
  for (const SellerCostParams& s : sellers) {
    CDT_RETURN_NOT_OK(s.Validate());
  }
  for (double q : qualities) {
    // Non-finite qualities are rejected outright: every closed form below
    // divides by q̄_i, and a NaN would flow straight into the ledger.
    if (!std::isfinite(q)) {
      return Status::InvalidArgument(
          "learned qualities must be finite for the game to be defined");
    }
    if (!(q > 0.0) || q > 1.0) {
      return Status::OutOfRange(
          "learned qualities must lie in (0, 1] for the game to be defined");
    }
  }
  CDT_RETURN_NOT_OK(platform.Validate());
  CDT_RETURN_NOT_OK(valuation.Validate());
  if (!consumer_price_bounds.valid() || consumer_price_bounds.lo < 0.0) {
    return Status::InvalidArgument("invalid consumer price bounds");
  }
  if (!collection_price_bounds.valid() || collection_price_bounds.lo < 0.0) {
    return Status::InvalidArgument("invalid collection price bounds");
  }
  if (!(max_sensing_time > 0.0)) {
    return Status::InvalidArgument("max_sensing_time must be > 0");
  }
  return Status::OK();
}

Aggregates ComputeAggregates(const GameConfig& config) {
  Aggregates agg;
  double quality_sum = 0.0;
  for (std::size_t i = 0; i < config.sellers.size(); ++i) {
    double q = config.qualities[i];
    double a = config.sellers[i].a;
    double b = config.sellers[i].b;
    agg.a_sum += 1.0 / (2.0 * q * a);
    agg.b_sum += b / (2.0 * a);
    quality_sum += q;
  }
  agg.mean_quality = quality_sum / static_cast<double>(config.sellers.size());
  double theta = config.platform.theta;
  double lambda = config.platform.lambda;
  double denom = 2.0 * (1.0 + theta * agg.a_sum);
  agg.theta_coef = agg.a_sum / denom;
  // Corrected stage-2 constant: C = λA − 2θAB − B (see header note).
  double c = lambda * agg.a_sum - 2.0 * theta * agg.a_sum * agg.b_sum -
             agg.b_sum;
  agg.lambda_coef = c / denom + agg.b_sum;
  return agg;
}

Result<StackelbergSolver> StackelbergSolver::Create(GameConfig config) {
  CDT_RETURN_NOT_OK(config.Validate());
  Aggregates agg = ComputeAggregates(config);
  return StackelbergSolver(std::move(config), agg);
}

Status StackelbergSolver::ResetCoalition(
    std::vector<SellerCostParams>* sellers, std::vector<double>* qualities) {
  if (sellers->empty()) {
    return Status::InvalidArgument("game needs >= 1 selected seller");
  }
  if (sellers->size() != qualities->size()) {
    return Status::InvalidArgument(
        "sellers and qualities must have equal size");
  }
  // Only the round-varying inputs are re-checked; the cost parameters are
  // structural and were validated when the caller built them (same error
  // wording as GameConfig::Validate so failures read identically).
  for (double q : *qualities) {
    if (!std::isfinite(q)) {
      return Status::InvalidArgument(
          "learned qualities must be finite for the game to be defined");
    }
    if (!(q > 0.0) || q > 1.0) {
      return Status::OutOfRange(
          "learned qualities must lie in (0, 1] for the game to be defined");
    }
  }
  config_.sellers.swap(*sellers);
  config_.qualities.swap(*qualities);
  agg_ = ComputeAggregates(config_);
  BuildSupplyKinks();
  return Status::OK();
}

double StackelbergSolver::SellerBestTime(int i, double collection_price)
    const {
  double q = config_.qualities[static_cast<std::size_t>(i)];
  const SellerCostParams& s = config_.sellers[static_cast<std::size_t>(i)];
  // Thm. 14 / Eq. (20): interior optimum of the strictly concave Ψ_i,
  // projected onto [0, T].
  double tau = (collection_price - q * s.b) / (2.0 * q * s.a);
  util::Interval feasible{0.0, config_.max_sensing_time};
  return feasible.Clamp(tau);
}

std::vector<double> StackelbergSolver::SellerBestTimes(
    double collection_price) const {
  std::vector<double> tau(config_.sellers.size());
  for (std::size_t i = 0; i < tau.size(); ++i) {
    tau[i] = SellerBestTime(static_cast<int>(i), collection_price);
  }
  return tau;
}

double StackelbergSolver::PlatformBestPriceInterior(
    double consumer_price) const {
  double a = agg_.a_sum;
  double b = agg_.b_sum;
  double theta = config_.platform.theta;
  double lambda = config_.platform.lambda;
  double c = lambda * a - 2.0 * theta * a * b - b;  // corrected constant
  double p = (consumer_price * a - c) / (2.0 * a * (1.0 + theta * a));
  return config_.collection_price_bounds.Clamp(p);
}

double StackelbergSolver::PlatformBestPricePaperPrinted(
    double consumer_price) const {
  double a = agg_.a_sum;
  double b = agg_.b_sum;
  double theta = config_.platform.theta;
  double lambda = config_.platform.lambda;
  double c = lambda * a - 2.0 * theta * b * a + b;  // printed Thm. 15 form
  return (consumer_price * a - c) / (2.0 * a * (1.0 + theta * a));
}

void StackelbergSolver::BuildSupplyKinks() {
  const util::Interval& box = config_.collection_price_bounds;
  double t_cap = config_.max_sensing_time;

  // Kink events of Στ(p) = Σ clamp((p − q_i b_i)/(2 q_i a_i), 0, T):
  // activation at p = q_i b_i, saturation at p = q_i b_i + 2 q_i a_i T.
  std::vector<KinkEvent>& events = event_scratch_;
  events.clear();
  events.reserve(2 * config_.sellers.size());
  double a_lin = 0.0, b_lin = 0.0, c_const = 0.0;  // state at p = box.lo
  for (std::size_t i = 0; i < config_.sellers.size(); ++i) {
    double q = config_.qualities[i];
    double a = config_.sellers[i].a;
    double b = config_.sellers[i].b;
    double activate = q * b;
    double saturate = activate + 2.0 * q * a * t_cap;
    double inv = 1.0 / (2.0 * q * a);
    double off = b / (2.0 * a);
    if (box.lo > activate) {
      if (box.lo >= saturate) {
        c_const += t_cap;
      } else {
        a_lin += inv;
        b_lin += off;
      }
    }
    if (activate > box.lo && activate < box.hi) {
      events.push_back(
          {activate, inv, off, 0.0, static_cast<int>(events.size())});
    }
    if (saturate > box.lo && saturate < box.hi && std::isfinite(saturate)) {
      events.push_back(
          {saturate, -inv, -off, t_cap, static_cast<int>(events.size())});
    }
  }
  SortKinkEvents();

  kinks_.clear();
  kinks_.reserve(events.size() + 1);
  kinks_.push_back({box.lo, a_lin, b_lin, c_const});
  for (const KinkEvent& e : events) {
    a_lin += e.delta_a;
    b_lin += e.delta_b;
    c_const += e.delta_c;
    if (e.price == kinks_.back().price) {
      kinks_.back() = {e.price, a_lin, b_lin, c_const};
    } else {
      kinks_.push_back({e.price, a_lin, b_lin, c_const});
    }
  }
  BuildSegmentTable();
}

void StackelbergSolver::BuildSegmentTable() {
  const util::Interval& box = config_.collection_price_bounds;
  const double theta = config_.platform.theta;
  const double lambda = config_.platform.lambda;
  const std::size_t n = kinks_.size();
  seg_.end_price.resize(n);
  seg_.end_supply.resize(n);
  seg_.end_d1.resize(n);
  seg_.end_d2.resize(n);
  seg_.c.resize(n);
  seg_.denom.resize(n);
  seg_.window_lo.resize(n);
  seg_.window_hi.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const SupplyKink& k = kinks_[j];
    const double seg_lo = k.price;
    const double seg_hi = j + 1 < n ? kinks_[j + 1].price : box.hi;
    // Endpoint candidate: (p^J − seg_hi)·s − θ·s·s − λ·s with s a
    // coalition constant — exactly profit_at(seg_hi, k)'s expressions.
    double s = k.a * seg_hi - k.b + k.c;
    if (s < 0.0) s = 0.0;
    seg_.end_price[j] = seg_hi;
    seg_.end_supply[j] = s;
    seg_.end_d1[j] = theta * s * s;
    seg_.end_d2[j] = lambda * s;
    if (k.a > 0.0) {
      const double b_eff = k.b - k.c;
      const double c = lambda * k.a - 2.0 * theta * k.a * b_eff - b_eff;
      const double denom = 2.0 * k.a * (1.0 + theta * k.a);
      seg_.c[j] = c;
      seg_.denom[j] = denom;
      // p*_j(p^J) = (p^J·a − c)/denom is increasing in p^J, so it lies
      // strictly inside (seg_lo, seg_hi) on a single p^J interval. The
      // window is widened so the exact strict test in the query can never
      // be pruned away by the inversion's rounding.
      const double lo = (seg_lo * denom + c) / k.a;
      const double hi = (seg_hi * denom + c) / k.a;
      seg_.window_lo[j] = lo - 1e-9 * (1.0 + std::fabs(lo));
      seg_.window_hi[j] = hi + 1e-9 * (1.0 + std::fabs(hi));
    } else {
      seg_.c[j] = 0.0;
      seg_.denom[j] = 1.0;
      // Empty window: flat segments have no interior optimum.
      seg_.window_lo[j] = std::numeric_limits<double>::infinity();
      seg_.window_hi[j] = -std::numeric_limits<double>::infinity();
    }
  }
  const SupplyKink& front = kinks_.front();
  double s0 = front.a * box.lo - front.b + front.c;
  if (s0 < 0.0) s0 = 0.0;
  seg_.init_supply = s0;
  seg_.init_d1 = theta * s0 * s0;
  seg_.init_d2 = lambda * s0;
}

void StackelbergSolver::SortKinkEvents() {
  std::vector<KinkEvent>& events = event_scratch_;
  // Strict total order: equal prices are resolved by the deltas (so the
  // kink accumulation sees one canonical sequence no matter which sort
  // algorithm produced it), and fully-equal events by generation order.
  auto less = [](const KinkEvent& x, const KinkEvent& y) {
    if (x.price != y.price) return x.price < y.price;
    if (x.delta_a != y.delta_a) return x.delta_a < y.delta_a;
    if (x.delta_b != y.delta_b) return x.delta_b < y.delta_b;
    if (x.delta_c != y.delta_c) return x.delta_c < y.delta_c;
    return x.src < y.src;
  };
  const std::size_t n = events.size();
  if (order_.size() == n && n > 1) {
    // Seed with the previous build's ordering. Coalitions and learned
    // qualities drift slowly between rounds, so after applying the old
    // permutation the sequence is nearly sorted and insertion sort
    // finishes in ~O(n); a move budget bounds the adversarial case, where
    // we give up and let std::sort redo it from the permuted order (the
    // result is the same unique sequence either way).
    sort_scratch_.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
      sort_scratch_[j] = events[static_cast<std::size_t>(order_[j])];
    }
    std::size_t budget = 8 * n + 64;
    bool within_budget = true;
    for (std::size_t i = 1; i < n; ++i) {
      KinkEvent e = sort_scratch_[i];
      std::size_t j = i;
      while (j > 0 && less(e, sort_scratch_[j - 1])) {
        sort_scratch_[j] = sort_scratch_[j - 1];
        --j;
        if (--budget == 0) {
          within_budget = false;
          break;
        }
      }
      sort_scratch_[j] = e;
      if (!within_budget) break;
    }
    if (within_budget) {
      events.swap(sort_scratch_);
      ++incremental_kink_sorts_;
    } else {
      std::sort(events.begin(), events.end(), less);
      ++full_kink_sorts_;
    }
  } else {
    std::sort(events.begin(), events.end(), less);
    ++full_kink_sorts_;
  }
  order_.resize(n);
  for (std::size_t j = 0; j < n; ++j) order_[j] = events[j].src;
}

double StackelbergSolver::TotalTimeAt(double collection_price) const {
  const util::Interval& box = config_.collection_price_bounds;
  double p = box.Clamp(collection_price);
  // Last kink with price <= p.
  auto it = std::upper_bound(
      kinks_.begin(), kinks_.end(), p,
      [](double x, const SupplyKink& k) { return x < k.price; });
  const SupplyKink& k = *(it - 1);
  double s = k.a * p - k.b + k.c;
  return s > 0.0 ? s : 0.0;
}

double StackelbergSolver::PlatformBestPrice(double consumer_price) const {
  // Candidate set and per-candidate arithmetic are identical to the naive
  // per-segment sweep (box.lo, then per segment: interior optimum when it
  // lies strictly inside, then the upper endpoint), but every coalition
  // constant comes precomputed from seg_ — the endpoint candidates reduce
  // to a flat line scan and only the few segments whose p^J window admits
  // an interior optimum pay the Theorem-15 division. Ties keep the naive
  // sweep's first-candidate-wins semantics (updates were strict).
  const util::Interval& box = config_.collection_price_bounds;
  const double theta = config_.platform.theta;
  const double lambda = config_.platform.lambda;
  const std::size_t n = kinks_.size();

  line_profit_scratch_.resize(n);
  double* v = line_profit_scratch_.data();
  const double* ep = seg_.end_price.data();
  const double* es = seg_.end_supply.data();
  const double* d1 = seg_.end_d1.data();
  const double* d2 = seg_.end_d2.data();
  for (std::size_t j = 0; j < n; ++j) {
    v[j] = (consumer_price - ep[j]) * es[j] - d1[j] - d2[j];
  }
  double best = v[0];
  for (std::size_t j = 1; j < n; ++j) best = std::max(best, v[j]);

  interior_scratch_.clear();
  const double* wlo = seg_.window_lo.data();
  const double* whi = seg_.window_hi.data();
  for (std::size_t j = 0; j < n; ++j) {
    if (!(consumer_price > wlo[j] && consumer_price < whi[j])) continue;
    const SupplyKink& k = kinks_[j];
    const double p_star =
        (consumer_price * k.a - seg_.c[j]) / seg_.denom[j];
    if (p_star > k.price && p_star < ep[j]) {
      double s = k.a * p_star - k.b + k.c;
      if (s < 0.0) s = 0.0;  // numerical guard; S(p) >= 0 by construction
      const double val =
          (consumer_price - p_star) * s - theta * s * s - lambda * s;
      interior_scratch_.push_back({static_cast<int>(j), p_star, val});
      if (val > best) best = val;
    }
  }

  const double v_init = (consumer_price - box.lo) * seg_.init_supply -
                        seg_.init_d1 - seg_.init_d2;
  if (v_init >= best) return box.lo;
  // Walk the segments in sweep order; within a segment the interior
  // candidate precedes the endpoint. The first candidate attaining the
  // maximum is the naive sweep's winner.
  std::size_t hit = 0;
  for (std::size_t j = 0; j < n; ++j) {
    if (hit < interior_scratch_.size() &&
        static_cast<std::size_t>(interior_scratch_[hit].j) == j) {
      if (interior_scratch_[hit].v == best) return interior_scratch_[hit].p;
      ++hit;
    }
    if (v[j] == best) return ep[j];
  }
  return box.lo;  // NaN inputs only; the naive sweep kept box.lo too
}

bool StackelbergSolver::InteriorRegimeHolds(double collection_price) const {
  for (std::size_t i = 0; i < config_.sellers.size(); ++i) {
    double q = config_.qualities[i];
    double a = config_.sellers[i].a;
    double b = config_.sellers[i].b;
    double tau = (collection_price - q * b) / (2.0 * q * a);
    if (tau <= 0.0 || tau >= config_.max_sensing_time) return false;
  }
  return true;
}

double StackelbergSolver::ConsumerBestPriceInterior() const {
  double qbar = agg_.mean_quality;
  double theta_c = agg_.theta_coef;    // Θ
  double lambda_c = agg_.lambda_coef;  // Λ
  double omega = config_.valuation.omega;
  // Δ = (q̄Λ + 2)² − 8 q̄ (Λ − Θ ω q̄) = (q̄Λ − 2)² + 8 Θ ω q̄² > 0.
  double t = qbar * lambda_c - 2.0;
  double delta = t * t + 8.0 * theta_c * omega * qbar * qbar;
  double pj = (3.0 * qbar * lambda_c + std::sqrt(delta) - 2.0) /
              (4.0 * qbar * theta_c);
  return config_.consumer_price_bounds.Clamp(pj);
}

double StackelbergSolver::ConsumerBestPrice() const {
  // Fast path: Theorem 16. Its functional form Φ(p^J) = ω ln(·) − Θ(p^J)²
  // + Λp^J presumes the *interior* regime — the stage-2 price unclamped by
  // its box and every seller strictly active and unsaturated. Verify all of
  // that before trusting the closed form; otherwise fall back to numeric
  // maximisation of the exact anticipated profit.
  double pj = ConsumerBestPriceInterior();
  // A clamped pj equals a box edge; require the raw optimum itself to lie
  // strictly inside so that Case 1 of Theorem 16 applies.
  double qbar = agg_.mean_quality;
  double t = qbar * agg_.lambda_coef - 2.0;
  double delta =
      t * t + 8.0 * agg_.theta_coef * config_.valuation.omega * qbar * qbar;
  double pj_raw = (3.0 * qbar * agg_.lambda_coef + std::sqrt(delta) - 2.0) /
                  (4.0 * qbar * agg_.theta_coef);
  if (pj_raw > config_.consumer_price_bounds.lo &&
      pj_raw < config_.consumer_price_bounds.hi) {
    // Unclamped stage-2 interior response at pj.
    double a = agg_.a_sum;
    double b = agg_.b_sum;
    double theta = config_.platform.theta;
    double lambda = config_.platform.lambda;
    double c = lambda * a - 2.0 * theta * a * b - b;
    double p_raw = (pj * a - c) / (2.0 * a * (1.0 + theta * a));
    const util::Interval& pbox = config_.collection_price_bounds;
    if (p_raw > pbox.lo && p_raw < pbox.hi && InteriorRegimeHolds(p_raw)) {
      return pj;
    }
  }
  // Fallback: the anticipated profit F(p^J) = Φ(p^J, p*(p^J)) is piecewise
  // smooth — on every supply segment where the platform's best response is
  // interior, F has exactly the Theorem-16 form with that segment's
  // aggregates. Candidates: each segment's closed-form stationary point,
  // a coarse grid (for regime-switch maxima), and the box endpoints; the
  // best candidate is then refined by golden section on its bracket.
  const util::Interval& box = config_.consumer_price_bounds;
  std::vector<double> candidates;
  candidates.reserve(kinks_.size() + 70);
  candidates.push_back(box.lo);
  candidates.push_back(box.hi);
  double omega = config_.valuation.omega;
  double theta = config_.platform.theta;
  double lambda = config_.platform.lambda;
  for (std::size_t j = 0; j < kinks_.size(); ++j) {
    const SupplyKink& kink = kinks_[j];
    if (kink.a <= 0.0) continue;
    double a = kink.a;
    double b_eff = kink.b - kink.c;
    double denom = 2.0 * (1.0 + theta * a);
    double theta_c = a / denom;
    double c = lambda * a - 2.0 * theta * a * b_eff - b_eff;
    double lambda_c = c / denom + b_eff;
    double tt = qbar * lambda_c - 2.0;
    double dd = tt * tt + 8.0 * theta_c * omega * qbar * qbar;
    double cand = (3.0 * qbar * lambda_c + std::sqrt(dd) - 2.0) /
                  (4.0 * qbar * theta_c);
    if (cand > box.lo && cand < box.hi) candidates.push_back(cand);
    // Regime-switch candidates: the p^J at which this segment's stage-2
    // optimum p*_j(p^J) = (p^J a − c)/(2a(1+θa)) crosses the segment's
    // boundary kinks — the anticipated profit has kinks there.
    double seg_lo = kink.price;
    double seg_hi = j + 1 < kinks_.size()
                        ? kinks_[j + 1].price
                        : config_.collection_price_bounds.hi;
    for (double boundary : {seg_lo, seg_hi}) {
      double pj_cross = denom * boundary + c / a;
      if (pj_cross > box.lo && pj_cross < box.hi) {
        candidates.push_back(pj_cross);
      }
    }
  }
  constexpr int kGrid = 128;
  double step = box.width() / kGrid;
  for (int i = 1; i < kGrid; ++i) {
    candidates.push_back(box.lo + step * static_cast<double>(i));
  }

  double best = box.lo;
  double best_value = ConsumerProfitAnticipating(box.lo);
  for (double cand : candidates) {
    double v = ConsumerProfitAnticipating(cand);
    if (v > best_value) {
      best_value = v;
      best = cand;
    }
  }
  // Golden refinement on the bracket around the winner.
  double lo = std::max(box.lo, best - step);
  double hi = std::min(box.hi, best + step);
  auto [argmax, value] = util::GoldenSectionMax(
      [this](double price) { return ConsumerProfitAnticipating(price); }, lo,
      hi, 1e-12);
  if (value > best_value) {
    best_value = value;
    best = argmax;
  }
  // Jump refinement: the platform's *global* best response can switch
  // supply segments discontinuously as p^J varies (tie between two
  // segments' optima), and the anticipated profit F then jumps — its
  // maximum may sit exactly at the switch point, which neither the grid
  // nor golden section locates. Bisect on the segment identity of the
  // best response within the bracket and evaluate both sides of the jump.
  auto segment_of = [this](double pj) {
    double p = PlatformBestPrice(pj);
    auto it = std::upper_bound(
        kinks_.begin(), kinks_.end(), p,
        [](double x, const SupplyKink& k) { return x < k.price; });
    return static_cast<std::size_t>(it - kinks_.begin());
  };
  double jlo = lo, jhi = hi;
  if (segment_of(jlo) != segment_of(jhi)) {
    std::size_t seg_lo = segment_of(jlo);
    for (int iter = 0; iter < 60 && jhi - jlo > 1e-12; ++iter) {
      double mid = 0.5 * (jlo + jhi);
      if (segment_of(mid) == seg_lo) {
        jlo = mid;
      } else {
        jhi = mid;
      }
    }
    for (double cand : {jlo, jhi}) {
      double v = ConsumerProfitAnticipating(cand);
      if (v > best_value) {
        best_value = v;
        best = cand;
      }
    }
  }
  return best;
}

StrategyProfile StackelbergSolver::Solve() const {
  // Backward induction over the three stages (Thms. 16, 15, 14), each
  // under its own span/latency histogram. The stage methods themselves
  // stay uninstrumented: ConsumerBestPrice calls PlatformBestPrice many
  // times while anticipating, which would flood the trace with sub-spans.
  CDT_SPAN("game.solve");
  double pj;
  {
    CDT_SPAN_TIMED("game.stage1.consumer_price",
                   [] { return StageSolveHistogram("consumer"); });
    pj = ConsumerBestPrice();
  }
  double p;
  {
    CDT_SPAN_TIMED("game.stage2.platform_price",
                   [] { return StageSolveHistogram("platform"); });
    p = PlatformBestPrice(pj);
  }
  std::vector<double> tau;
  {
    CDT_SPAN_TIMED("game.stage3.seller_times",
                   [] { return StageSolveHistogram("sellers"); });
    tau = SellerBestTimes(p);
  }
  return EvaluateProfile(pj, p, tau);
}

double StackelbergSolver::ConsumerProfitAnticipating(
    double consumer_price) const {
  double p = PlatformBestPrice(consumer_price);
  return ConsumerProfit(consumer_price, agg_.mean_quality, TotalTimeAt(p),
                        config_.valuation);
}

double StackelbergSolver::PlatformProfitAnticipating(
    double consumer_price, double collection_price) const {
  return PlatformProfit(consumer_price, collection_price,
                        TotalTimeAt(collection_price), config_.platform);
}

StrategyProfile StackelbergSolver::EvaluateProfile(
    double consumer_price, double collection_price,
    const std::vector<double>& tau) const {
  StrategyProfile profile;
  profile.consumer_price = consumer_price;
  profile.collection_price = collection_price;
  profile.tau = tau;
  profile.total_time = TotalTime(tau);
  profile.consumer_profit =
      ConsumerProfit(consumer_price, agg_.mean_quality, profile.total_time,
                     config_.valuation);
  profile.platform_profit = PlatformProfit(
      consumer_price, collection_price, profile.total_time, config_.platform);
  profile.seller_profits.resize(tau.size());
  for (std::size_t i = 0; i < tau.size(); ++i) {
    profile.seller_profits[i] =
        SellerProfit(collection_price, tau[i], config_.sellers[i],
                     config_.qualities[i]);
  }
  return profile;
}

}  // namespace game
}  // namespace cdt
