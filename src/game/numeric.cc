#include "game/numeric.h"

#include <algorithm>

namespace cdt {
namespace game {

using util::Result;
using util::Status;

Result<MaximizeResult> MaximizeOnInterval(
    const std::function<double(double)>& f, const util::Interval& domain,
    std::size_t grid_points, double tol) {
  if (!domain.valid()) {
    return Status::InvalidArgument("invalid maximisation domain");
  }
  if (grid_points < 3) {
    return Status::InvalidArgument("grid_points must be >= 3");
  }
  if (domain.width() == 0.0) {
    return MaximizeResult{domain.lo, f(domain.lo)};
  }
  Result<std::vector<double>> grid =
      util::Linspace(domain.lo, domain.hi, grid_points);
  if (!grid.ok()) return grid.status();

  std::size_t best = 0;
  double best_value = f(grid.value()[0]);
  for (std::size_t i = 1; i < grid.value().size(); ++i) {
    double v = f(grid.value()[i]);
    if (v > best_value) {
      best_value = v;
      best = i;
    }
  }
  // Refine on the bracket spanning the neighbours of the best sample.
  double lo = grid.value()[best > 0 ? best - 1 : 0];
  double hi = grid.value()[std::min(best + 1, grid.value().size() - 1)];
  auto [argmax, value] = util::GoldenSectionMax(f, lo, hi, tol);
  MaximizeResult result;
  if (value >= best_value) {
    result.argmax = argmax;
    result.max_value = value;
  } else {
    result.argmax = grid.value()[best];
    result.max_value = best_value;
  }
  return result;
}

}  // namespace game
}  // namespace cdt
