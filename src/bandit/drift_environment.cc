#include "bandit/drift_environment.h"

#include <algorithm>
#include <cmath>

namespace cdt {
namespace bandit {

using util::Result;
using util::Status;

Status DriftConfig::Validate() const {
  if (kind == DriftKind::kRandomWalk && step_stddev <= 0.0) {
    return Status::InvalidArgument("random-walk drift needs step_stddev > 0");
  }
  if (kind == DriftKind::kAbrupt && period <= 0) {
    return Status::InvalidArgument("abrupt drift needs period > 0");
  }
  if (quality_lo < 0.0 || quality_hi > 1.0 || quality_lo >= quality_hi) {
    return Status::InvalidArgument("quality support must be within [0, 1]");
  }
  return Status::OK();
}

Result<DriftingEnvironment> DriftingEnvironment::Create(
    std::vector<double> initial_qualities, int num_pois,
    double observation_stddev, const DriftConfig& drift, std::uint64_t seed) {
  if (initial_qualities.empty()) {
    return Status::InvalidArgument("need >= 1 seller quality");
  }
  if (num_pois <= 0) return Status::InvalidArgument("num_pois must be > 0");
  if (observation_stddev <= 0.0) {
    return Status::InvalidArgument("observation_stddev must be > 0");
  }
  CDT_RETURN_NOT_OK(drift.Validate());
  for (double q : initial_qualities) {
    if (q < drift.quality_lo || q > drift.quality_hi) {
      return Status::OutOfRange("initial quality outside the drift support");
    }
  }
  return DriftingEnvironment(std::move(initial_qualities), num_pois,
                             observation_stddev, drift, seed);
}

double DriftingEnvironment::effective_quality(int seller) const {
  return stats::TruncatedGaussianMean(nominal_.at(seller),
                                      observation_stddev_, 0.0, 1.0);
}

std::vector<double> DriftingEnvironment::EffectiveQualities() const {
  std::vector<double> out(nominal_.size());
  for (std::size_t i = 0; i < nominal_.size(); ++i) {
    out[i] = effective_quality(static_cast<int>(i));
  }
  return out;
}

std::vector<double> DriftingEnvironment::ObserveSeller(int seller) {
  double centre = nominal_.at(seller);
  std::vector<double> out(static_cast<std::size_t>(num_pois_));
  for (double& x : out) {
    // Rejection sampling against [0, 1], mirroring the stationary
    // environment's truncated Gaussian.
    double draw;
    int attempts = 0;
    do {
      draw = gaussian_.Sample(rng_, centre, observation_stddev_);
    } while ((draw < 0.0 || draw > 1.0) && ++attempts < 256);
    x = std::min(1.0, std::max(0.0, draw));
  }
  return out;
}

void DriftingEnvironment::AdvanceRound() {
  ++round_;
  switch (drift_.kind) {
    case DriftKind::kNone:
      break;
    case DriftKind::kRandomWalk: {
      for (double& q : nominal_) {
        q += gaussian_.Sample(rng_, 0.0, drift_.step_stddev);
        // Reflect into the support so the walk does not absorb at edges.
        if (q < drift_.quality_lo) q = 2.0 * drift_.quality_lo - q;
        if (q > drift_.quality_hi) q = 2.0 * drift_.quality_hi - q;
        q = std::min(drift_.quality_hi, std::max(drift_.quality_lo, q));
      }
      break;
    }
    case DriftKind::kAbrupt: {
      if (round_ % drift_.period == 0) {
        std::size_t victim = static_cast<std::size_t>(
            rng_.NextBounded(nominal_.size()));
        nominal_[victim] =
            rng_.NextDouble(drift_.quality_lo, drift_.quality_hi);
      }
      break;
    }
  }
}

Status DriftingEnvironment::SetNominalQuality(int seller, double quality) {
  if (seller < 0 || static_cast<std::size_t>(seller) >= nominal_.size()) {
    return Status::OutOfRange("seller index out of range");
  }
  if (quality < drift_.quality_lo || quality > drift_.quality_hi) {
    return Status::OutOfRange("quality outside the drift support");
  }
  nominal_[static_cast<std::size_t>(seller)] = quality;
  return Status::OK();
}

double DriftingEnvironment::OracleTopK(int k) const {
  std::vector<double> effective = EffectiveQualities();
  std::sort(effective.begin(), effective.end(), std::greater<double>());
  int take = std::min<int>(k, static_cast<int>(effective.size()));
  double total = 0.0;
  for (int i = 0; i < take; ++i) total += effective[static_cast<std::size_t>(i)];
  return total;
}

}  // namespace bandit
}  // namespace cdt
