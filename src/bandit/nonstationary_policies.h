// Non-stationary selection policies for the drifting-quality extension:
// sliding-window CUCB (estimates from the last W observations per arm) and
// discounted UCB (exponentially decayed counts/means). Both reduce to the
// paper's CMAB-HS behaviour as W → ∞ / γ → 1.

#ifndef CDT_BANDIT_NONSTATIONARY_POLICIES_H_
#define CDT_BANDIT_NONSTATIONARY_POLICIES_H_

#include <deque>

#include "bandit/policy.h"

namespace cdt {
namespace bandit {

/// Sliding-window CUCB: per-arm mean and count computed over the most
/// recent `window` observations; the UCB radius uses the windowed counts.
class SlidingWindowCucbPolicy : public SelectionPolicy {
 public:
  /// `window` is the per-arm observation budget (>= 1); exploration <= 0
  /// defaults to the paper's K+1.
  static util::Result<SlidingWindowCucbPolicy> Create(int num_sellers, int k,
                                                      std::size_t window,
                                                      double exploration = 0.0);

  std::string name() const override;
  int num_sellers() const override {
    return static_cast<int>(arms_.size());
  }

  util::Result<std::vector<int>> SelectRound(std::int64_t round) override;

  /// Allocation-free selection via the reused UCB scratch.
  util::Status SelectRoundInto(std::int64_t round,
                               std::vector<int>* out) override;

  util::Status Observe(
      const std::vector<int>& selected,
      const std::vector<std::vector<double>>& observations) override;

  /// Windowed mean of one arm (0 when empty).
  double WindowedMean(int arm) const;
  /// Windowed observation count of one arm.
  std::size_t WindowedCount(int arm) const;

 private:
  struct WindowArm {
    std::deque<double> samples;
    double sum = 0.0;
  };

  SlidingWindowCucbPolicy(int num_sellers, int k, std::size_t window,
                          double exploration)
      : arms_(static_cast<std::size_t>(num_sellers)),
        k_(k),
        window_(window),
        exploration_(exploration) {}

  std::vector<WindowArm> arms_;
  int k_;
  std::size_t window_;
  double exploration_;
  /// UCB scores scratch, reused every round.
  std::vector<double> ucb_scratch_;
};

/// Discounted UCB: n_i and sums decay by γ every round, so stale evidence
/// fades and the radius re-opens for arms whose estimates age out.
class DiscountedUcbPolicy : public SelectionPolicy {
 public:
  /// `gamma` in (0, 1]; exploration <= 0 defaults to K+1.
  static util::Result<DiscountedUcbPolicy> Create(int num_sellers, int k,
                                                  double gamma,
                                                  double exploration = 0.0);

  std::string name() const override;
  int num_sellers() const override {
    return static_cast<int>(counts_.size());
  }

  util::Result<std::vector<int>> SelectRound(std::int64_t round) override;

  /// Allocation-free selection via the reused UCB scratch.
  util::Status SelectRoundInto(std::int64_t round,
                               std::vector<int>* out) override;

  util::Status Observe(
      const std::vector<int>& selected,
      const std::vector<std::vector<double>>& observations) override;

  double DiscountedCount(int arm) const { return counts_.at(arm); }
  double DiscountedMean(int arm) const;

 private:
  DiscountedUcbPolicy(int num_sellers, int k, double gamma,
                      double exploration)
      : counts_(static_cast<std::size_t>(num_sellers), 0.0),
        sums_(static_cast<std::size_t>(num_sellers), 0.0),
        k_(k),
        gamma_(gamma),
        exploration_(exploration) {}

  std::vector<double> counts_;
  std::vector<double> sums_;
  int k_;
  double gamma_;
  double exploration_;
  /// UCB scores scratch, reused every round.
  std::vector<double> ucb_scratch_;
};

}  // namespace bandit
}  // namespace cdt

#endif  // CDT_BANDIT_NONSTATIONARY_POLICIES_H_
