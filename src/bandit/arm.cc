#include "bandit/arm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/confidence.h"

namespace cdt {
namespace bandit {

using util::Result;
using util::Status;

void TopKIndicesInto(const std::vector<double>& values, int k,
                     std::vector<int>* out) {
  std::vector<int>& order = *out;
  order.resize(values.size());
  std::iota(order.begin(), order.end(), 0);
  int take = std::min<int>(k, static_cast<int>(order.size()));
  if (take <= 0) {
    order.clear();
    return;
  }
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&values](int a, int b) {
                      double va = values[static_cast<std::size_t>(a)];
                      double vb = values[static_cast<std::size_t>(b)];
                      if (va != vb) return va > vb;
                      return a < b;
                    });
  order.resize(static_cast<std::size_t>(take));
}

std::vector<int> TopKIndices(const std::vector<double>& values, int k) {
  std::vector<int> order;
  TopKIndicesInto(values, k, &order);
  return order;
}

EstimatorBank::EstimatorBank(int num_arms, double exploration)
    : arms_(static_cast<std::size_t>(num_arms)), exploration_(exploration) {}

Result<EstimatorBank> EstimatorBank::Create(int num_arms,
                                            double exploration) {
  if (num_arms <= 0) {
    return Status::InvalidArgument("EstimatorBank requires >= 1 arm");
  }
  if (exploration <= 0.0) {
    return Status::InvalidArgument("exploration constant must be > 0");
  }
  return EstimatorBank(num_arms, exploration);
}

Status EstimatorBank::Update(int i, const std::vector<double>& observations) {
  if (i < 0 || i >= num_arms()) {
    return Status::OutOfRange("arm index " + std::to_string(i) +
                              " out of range");
  }
  if (observations.empty()) {
    return Status::InvalidArgument("empty observation batch");
  }
  for (double q : observations) {
    // Negated form so NaN (incomparable) is rejected with the range.
    if (!(q >= 0.0 && q <= 1.0)) {
      return Status::OutOfRange("quality observation outside [0, 1]");
    }
  }
  ArmState& arm = arms_[static_cast<std::size_t>(i)];
  // Eq. (18): q̄ <- (q̄ * n + Σ q_l) / (n + L); Eq. (17): n <- n + L.
  double batch_sum = 0.0;
  for (double q : observations) batch_sum += q;
  double n_old = static_cast<double>(arm.observations);
  double n_new = n_old + static_cast<double>(observations.size());
  arm.mean = (arm.mean * n_old + batch_sum) / n_new;
  arm.observations += observations.size();
  total_observations_ += observations.size();
  return Status::OK();
}

Status EstimatorBank::Restore(const std::vector<ArmState>& arms,
                              std::uint64_t total_observations) {
  if (arms.size() != arms_.size()) {
    return Status::InvalidArgument(
        "estimator restore arm count mismatch: have " +
        std::to_string(arms_.size()) + ", snapshot has " +
        std::to_string(arms.size()));
  }
  std::uint64_t sum = 0;
  for (const ArmState& arm : arms) {
    if (!(arm.mean >= 0.0 && arm.mean <= 1.0)) {
      return Status::OutOfRange("restored arm mean outside [0, 1]");
    }
    if (arm.observations == 0 && arm.mean != 0.0) {
      return Status::InvalidArgument("unexplored arm with non-zero mean");
    }
    sum += arm.observations;
  }
  if (sum != total_observations) {
    return Status::InvalidArgument(
        "restored total_observations disagrees with per-arm counters");
  }
  arms_ = arms;
  total_observations_ = total_observations;
  return Status::OK();
}

double EstimatorBank::UcbValue(int i) const {
  const ArmState& arm = arms_.at(static_cast<std::size_t>(i));
  return arm.mean + stats::UcbRadius(arm.observations, total_observations_,
                                     exploration_);
}

std::vector<double> EstimatorBank::UcbValues() const {
  std::vector<double> out;
  UcbValuesInto(&out);
  return out;
}

void EstimatorBank::UcbValuesInto(std::vector<double>* out) const {
  out->resize(arms_.size());
  // The radius is sqrt((c · ln T) / n_i) with c · ln T shared by every
  // arm; hoisting it keeps the scan bit-identical to the per-arm call
  // (same association: (c * log) / n) while doing one log instead of M.
  const double scaled_log =
      exploration_ *
      std::log(
          std::max<double>(static_cast<double>(total_observations_), 2.0));
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    const ArmState& arm = arms_[i];
    (*out)[i] =
        arm.observations == 0
            ? std::numeric_limits<double>::infinity()
            : arm.mean + std::sqrt(scaled_log /
                                   static_cast<double>(arm.observations));
  }
}

std::vector<int> EstimatorBank::TopKByUcb(int k) const {
  return TopKIndices(UcbValues(), k);
}

void EstimatorBank::TopKByUcbInto(int k, std::vector<double>* ucb_scratch,
                                  std::vector<int>* out) const {
  UcbValuesInto(ucb_scratch);
  TopKIndicesInto(*ucb_scratch, k, out);
}

std::vector<int> EstimatorBank::TopKByMean(int k) const {
  std::vector<double> means(arms_.size());
  for (std::size_t i = 0; i < arms_.size(); ++i) means[i] = arms_[i].mean;
  return TopKIndices(means, k);
}

}  // namespace bandit
}  // namespace cdt
