#include "bandit/arm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/confidence.h"

namespace cdt {
namespace bandit {

using util::Result;
using util::Status;

namespace {

/// True when candidate (va, a) ranks ahead of (vb, b) under the selection
/// order: descending value, ascending index on ties.
inline bool RanksAhead(double va, int a, double vb, int b) {
  if (va != vb) return va > vb;
  return a < b;
}

}  // namespace

void TopKIndicesInto(const std::vector<double>& values, int k,
                     std::vector<int>* out) {
  std::vector<int>& best = *out;
  const int m = static_cast<int>(values.size());
  const int take = std::min(k, m);
  if (take <= 0) {
    best.clear();
    return;
  }
  // Bounded heap-select: keep the running top-`take` in a heap whose front
  // is the *worst* kept entry (heap comparator = RanksAhead, so the heap
  // maximum under "ranks ahead" inverted sits at the front). A candidate
  // is examined against the front only — O(1) per non-entering candidate,
  // no full-M index permutation, no iota.
  auto heap_cmp = [&values](int a, int b) {
    return RanksAhead(values[static_cast<std::size_t>(a)], a,
                      values[static_cast<std::size_t>(b)], b);
  };
  best.resize(static_cast<std::size_t>(take));
  std::iota(best.begin(), best.begin() + take, 0);
  std::make_heap(best.begin(), best.end(), heap_cmp);
  for (int i = take; i < m; ++i) {
    const int worst = best.front();
    // A later index never displaces an equal value (ties rank by index),
    // so a strict value comparison suffices.
    if (values[static_cast<std::size_t>(i)] >
        values[static_cast<std::size_t>(worst)]) {
      std::pop_heap(best.begin(), best.end(), heap_cmp);
      best.back() = i;
      std::push_heap(best.begin(), best.end(), heap_cmp);
    }
  }
  std::sort(best.begin(), best.end(), heap_cmp);
}

void TopKIndicesPartialSortInto(const std::vector<double>& values, int k,
                                std::vector<int>* out) {
  std::vector<int>& order = *out;
  order.resize(values.size());
  std::iota(order.begin(), order.end(), 0);
  int take = std::min<int>(k, static_cast<int>(order.size()));
  if (take <= 0) {
    order.clear();
    return;
  }
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&values](int a, int b) {
                      double va = values[static_cast<std::size_t>(a)];
                      double vb = values[static_cast<std::size_t>(b)];
                      if (va != vb) return va > vb;
                      return a < b;
                    });
  order.resize(static_cast<std::size_t>(take));
}

std::vector<int> TopKIndices(const std::vector<double>& values, int k) {
  std::vector<int> order;
  TopKIndicesInto(values, k, &order);
  return order;
}

EstimatorBank::EstimatorBank(int num_arms, double exploration)
    : means_(static_cast<std::size_t>(num_arms), 0.0),
      observations_(static_cast<std::size_t>(num_arms), 0),
      counts_(static_cast<std::size_t>(num_arms), 0.0),
      bonus_bases_(static_cast<std::size_t>(num_arms), 0.0),
      cold_list_(static_cast<std::size_t>(num_arms)),
      num_unexplored_(num_arms),
      exploration_(exploration) {
  std::iota(cold_list_.begin(), cold_list_.end(), 0);
}

Result<EstimatorBank> EstimatorBank::Create(int num_arms,
                                            double exploration) {
  if (num_arms <= 0) {
    return Status::InvalidArgument("EstimatorBank requires >= 1 arm");
  }
  if (exploration <= 0.0) {
    return Status::InvalidArgument("exploration constant must be > 0");
  }
  return EstimatorBank(num_arms, exploration);
}

const std::vector<int>& EstimatorBank::cold_arms() const {
  if (static_cast<int>(cold_list_.size()) != num_unexplored_) {
    // Updates only flip arms warm, so compaction is a stable filter: the
    // surviving entries keep their ascending order.
    cold_list_.erase(
        std::remove_if(cold_list_.begin(), cold_list_.end(),
                       [this](int i) {
                         return observations_[static_cast<std::size_t>(i)] !=
                                0;
                       }),
        cold_list_.end());
  }
  return cold_list_;
}

double EstimatorBank::scaled_log() const {
  return exploration_ *
         std::log(
             std::max<double>(static_cast<double>(total_observations_), 2.0));
}

double EstimatorBank::bonus_scalar() const {
  return std::sqrt(std::log(
      std::max<double>(static_cast<double>(total_observations_), 2.0)));
}

Status EstimatorBank::Update(int i, const std::vector<double>& observations) {
  if (i < 0 || i >= num_arms()) {
    return Status::OutOfRange("arm index " + std::to_string(i) +
                              " out of range");
  }
  if (observations.empty()) {
    return Status::InvalidArgument("empty observation batch");
  }
  for (double q : observations) {
    // Negated form so NaN (incomparable) is rejected with the range.
    if (!(q >= 0.0 && q <= 1.0)) {
      return Status::OutOfRange("quality observation outside [0, 1]");
    }
  }
  const std::size_t idx = static_cast<std::size_t>(i);
  // Eq. (18): q̄ <- (q̄ * n + Σ q_l) / (n + L); Eq. (17): n <- n + L.
  double batch_sum = 0.0;
  for (double q : observations) batch_sum += q;
  double n_old = counts_[idx];
  double n_new = n_old + static_cast<double>(observations.size());
  means_[idx] = (means_[idx] * n_old + batch_sum) / n_new;
  observations_[idx] += observations.size();
  counts_[idx] = n_new;
  bonus_bases_[idx] = std::sqrt(exploration_ / n_new);
  if (n_old == 0.0) --num_unexplored_;  // cold_list_ compacts lazily
  total_observations_ += observations.size();
  return Status::OK();
}

Status EstimatorBank::Restore(const std::vector<ArmState>& arms,
                              std::uint64_t total_observations) {
  if (arms.size() != means_.size()) {
    return Status::InvalidArgument(
        "estimator restore arm count mismatch: have " +
        std::to_string(means_.size()) + ", snapshot has " +
        std::to_string(arms.size()));
  }
  std::uint64_t sum = 0;
  for (const ArmState& arm : arms) {
    if (!(arm.mean >= 0.0 && arm.mean <= 1.0)) {
      return Status::OutOfRange("restored arm mean outside [0, 1]");
    }
    if (arm.observations == 0 && arm.mean != 0.0) {
      return Status::InvalidArgument("unexplored arm with non-zero mean");
    }
    sum += arm.observations;
  }
  if (sum != total_observations) {
    return Status::InvalidArgument(
        "restored total_observations disagrees with per-arm counters");
  }
  cold_list_.clear();
  for (std::size_t i = 0; i < arms.size(); ++i) {
    means_[i] = arms[i].mean;
    observations_[i] = arms[i].observations;
    counts_[i] = static_cast<double>(arms[i].observations);
    if (arms[i].observations == 0) {
      bonus_bases_[i] = 0.0;
      cold_list_.push_back(static_cast<int>(i));
    } else {
      bonus_bases_[i] = std::sqrt(exploration_ / counts_[i]);
    }
  }
  num_unexplored_ = static_cast<int>(cold_list_.size());
  total_observations_ = total_observations;
  ++epoch_;  // incremental consumers must resynchronise
  return Status::OK();
}

double EstimatorBank::UcbValue(int i) const {
  const std::size_t idx = static_cast<std::size_t>(i);
  return means_.at(idx) + stats::UcbRadius(observations_.at(idx),
                                           total_observations_,
                                           exploration_);
}

std::vector<double> EstimatorBank::UcbValues() const {
  std::vector<double> out;
  UcbValuesInto(&out);
  return out;
}

void EstimatorBank::UcbValuesInto(std::vector<double>* out) const {
  const std::size_t m = means_.size();
  out->resize(m);
  // The radius is sqrt((c · ln T) / n_i) with c · ln T shared by every
  // arm; hoisting it keeps the scan bit-identical to the per-arm call
  // (same association: (c * log) / n) while doing one log instead of M.
  // The loop is branch-free over the columns: a cold arm has counts == 0.0
  // and mean == 0.0 (a Restore invariant), so sl / 0.0 == +inf reproduces
  // the unexplored sentinel without a per-element test.
  const double sl = scaled_log();
  const double* means = means_.data();
  const double* counts = counts_.data();
  double* dst = out->data();
  for (std::size_t i = 0; i < m; ++i) {
    dst[i] = means[i] + std::sqrt(sl / counts[i]);
  }
}

void EstimatorBank::UcbValuesReferenceInto(std::vector<double>* out) const {
  const std::size_t m = means_.size();
  out->resize(m);
  const double sl = scaled_log();
  for (std::size_t i = 0; i < m; ++i) {
    (*out)[i] =
        observations_[i] == 0
            ? std::numeric_limits<double>::infinity()
            : means_[i] + std::sqrt(sl /
                                    static_cast<double>(observations_[i]));
  }
}

std::vector<int> EstimatorBank::TopKByUcb(int k) const {
  return TopKIndices(UcbValues(), k);
}

void EstimatorBank::TopKByUcbInto(int k, std::vector<double>* ucb_scratch,
                                  std::vector<int>* out) const {
  UcbValuesInto(ucb_scratch);
  TopKIndicesInto(*ucb_scratch, k, out);
}

std::vector<int> EstimatorBank::TopKByMean(int k) const {
  std::vector<int> out;
  TopKByMeanInto(k, &out);
  return out;
}

void EstimatorBank::TopKByMeanInto(int k, std::vector<int>* out) const {
  TopKIndicesInto(means_, k, out);
}

}  // namespace bandit
}  // namespace cdt
